// Ablation: previous-CLR memory (Appendix C).  Storing the previous CLR
// lets the sender switch back immediately when a transient CLR change
// reverses, which is strictly more conservative.  Scenario: a clean
// receiver plus a receiver whose path suffers a short congestion burst;
// with the option on, the rate during the minute after the burst must not
// exceed the rate without it.

#include <iostream>

#include "bench_util.hpp"
#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

struct Outcome {
  double mean_after_kbps;
  int clr_switches;
};

// The burst script lives at 90..95 s on the reference 180 s timeline and
// warps proportionally with --duration.
Outcome run(bool remember, double clr_loss, double burst_loss,
            const TimeWarp& warp, std::uint64_t seed,
            const EquationBackend* eq) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 1e9;
  trunk.delay = 5_ms;
  LinkConfig steady;
  steady.rate_bps = 1e9;
  steady.delay = 15_ms;
  steady.loss_rate = clr_loss;  // the long-term CLR
  LinkConfig bursty;
  bursty.rate_bps = 1e9;
  bursty.delay = 15_ms;
  bursty.loss_rate = 0.002;
  Star star = make_star(topo, trunk, {steady, bursty});
  TfmccConfig cfg;
  cfg.remember_previous_clr = remember;
  cfg.equation = eq;
  TfmccFlow flow{sim, topo, star.sender, cfg};
  flow.add_joined_receiver(star.leaves[0]);
  flow.add_joined_receiver(star.leaves[1]);
  flow.sender().start(SimTime::zero());
  sim.run_until(warp(90_sec));
  // Transient burst on the normally-clean path: it briefly becomes CLR.
  star.leaf_links[1].first->set_loss_rate(burst_loss);
  sim.run_until(warp(95_sec));
  star.leaf_links[1].first->set_loss_rate(0.002);
  sim.run_until(warp(180_sec));
  Outcome o;
  o.mean_after_kbps = flow.goodput(0).mean_kbps(warp(95_sec), warp(180_sec));
  o.clr_switches = static_cast<int>(flow.sender().clr_history().size());
  return o;
}

}  // namespace

TFMCC_SCENARIO(ablation_clr_memory,
               "Ablation: Appendix C previous-CLR memory",
               tfmcc::param("clr_loss", 0.01,
                            "loss rate of the long-term CLR's path", 0.0),
               tfmcc::param("burst_loss", 0.08,
                            "loss rate during the transient burst", 0.0),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;

  figure_header(opts.out(), "Ablation", "Appendix C: storing the previous CLR");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const std::uint64_t seed = opts.seed_or(311);
  const double clr_loss = opts.param_or("clr_loss", 0.01);
  const double burst_loss = opts.param_or("burst_loss", 0.08);
  const tfmcc::TimeWarp warp{tfmcc::SimTime::seconds(180),
                             opts.duration_or(tfmcc::SimTime::seconds(180))};
  const Outcome without = run(false, clr_loss, burst_loss, warp, seed, eq);
  const Outcome with = run(true, clr_loss, burst_loss, warp, seed, eq);

  tfmcc::CsvWriter csv(opts.out(),
                       {"variant", "mean_after_burst_kbps", "clr_switches"});
  csv.row("no_memory", without.mean_after_kbps, without.clr_switches);
  csv.row("with_memory", with.mean_after_kbps, with.clr_switches);

  check(opts.out(), with.mean_after_kbps < without.mean_after_kbps * 1.3,
        "previous-CLR memory is not less conservative after a transient");
  note(opts.out(), "without memory: " + std::to_string(without.mean_after_kbps) +
       " kbit/s, " + std::to_string(without.clr_switches) +
       " switches; with: " + std::to_string(with.mean_after_kbps) +
       " kbit/s, " + std::to_string(with.clr_switches) + " switches");
  return 0;
}
