// Ablation: float vs fixed-point control equation.  The table-driven
// scaled-integer backend (tfrc/equation_fixed.hpp) trades double-precision
// evaluation of the Padhye equation for two 500-entry lookup tables with
// linear interpolation — the form a kernel or embedded implementation
// would use.  This scenario quantifies the fidelity cost:
//   (a) rate fidelity: relative error of the fixed-point throughput vs the
//       float backend over a log-grid of loss event rates crossed with an
//       RTT ladder, plus the reverse-lookup round-trip error;
//   (b) loss tracking: divergence between an integer EWMA (micro-units,
//       tenths weight) and the equivalent double EWMA over a scripted
//       loss-rate trajectory (ramp up, congestion step down).
// Below p = 1e-4 the fixed backend saturates by design (the table floor,
// like the kernel's TFRC_SMALLEST_P), so the error bound is only checked
// for p >= 1e-4.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "tfrc/equation_fixed.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(ablation_fixedpoint,
               "Ablation: fixed-point equation backend fidelity vs float",
               tfmcc::param("p_points", 60,
                            "log-grid points over [p_min, 0.5]", 8),
               tfmcc::param("p_min", 1e-6, "lowest swept loss event rate",
                            1e-9),
               tfmcc::param("ewma_steps", 200,
                            "steps of the loss-tracking trajectory", 10),
               tfmcc::param("packet_bytes", 1000.0, "segment size", 1.0)) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;
  namespace fp = tfmcc::fixedpoint;

  figure_header(opts.out(), "Ablation",
                "Fixed-point equation backend: fidelity vs float");

  const int p_points = opts.param_or("p_points", 60);
  const double p_min = opts.param_or("p_min", 1e-6);
  const int ewma_steps = opts.param_or("ewma_steps", 200);
  const double s = opts.param_or("packet_bytes", 1000.0);
  const tfmcc::EquationBackend& flt = tfmcc::float_equation_backend();
  const tfmcc::EquationBackend& fix = tfmcc::fixed_equation_backend();

  // (a) Rate fidelity over p x RTT.  The grid is log-spaced so the table's
  // two segments (dense below p = 0.05, coarse above) are both exercised;
  // the RTT ladder spans LAN to satellite-class paths.
  tfmcc::CsvWriter csv(opts.out(),
                       {"rtt_ms", "p", "x_float_Bps", "x_fixed_Bps",
                        "rel_err", "p_roundtrip_rel_err"});
  const double kPMax = 0.5;
  double max_err_checked = 0.0;     // p in [1e-4, 0.5]
  double max_err_saturated = 0.0;   // p below the table floor
  double max_roundtrip_err = 0.0;   // p in [1e-4, 0.5]
  for (const std::int64_t rtt_ms : {10, 50, 200, 500}) {
    const tfmcc::SimTime rtt = tfmcc::SimTime::millis(rtt_ms);
    for (int i = 0; i < p_points; ++i) {
      const double frac =
          p_points > 1 ? static_cast<double>(i) / (p_points - 1) : 1.0;
      const double p = p_min * std::pow(kPMax / p_min, frac);
      const double x_f = flt.throughput_Bps(s, rtt, p);
      const double x_i = fix.throughput_Bps(s, rtt, p);
      const double rel_err = std::fabs(x_i - x_f) / x_f;

      // Round trip p -> f(p) -> p through the reverse lookup.
      const auto p_scaled = static_cast<std::uint32_t>(
          std::lround(p * static_cast<double>(fp::kPScale)));
      const std::uint32_t p_back =
          fp::calc_x_reverse_lookup(fp::lookup_f(p_scaled));
      const double rt_err =
          p_scaled == 0
              ? 0.0
              : std::fabs(static_cast<double>(p_back) -
                          static_cast<double>(std::max(p_scaled,
                                                       fp::kSmallestP))) /
                    static_cast<double>(std::max(p_scaled, fp::kSmallestP));

      csv.row(rtt_ms, p, x_f, x_i, rel_err, rt_err);
      if (p >= 1e-4) {
        max_err_checked = std::max(max_err_checked, rel_err);
        max_roundtrip_err = std::max(max_roundtrip_err, rt_err);
      } else {
        max_err_saturated = std::max(max_err_saturated, rel_err);
      }
    }
  }

  // (b) Loss tracking: integer vs double EWMA (90% history, the kernel's
  // tenths weighting) over a scripted trajectory — a log-ramp from 0.1% to
  // 10% loss followed by a step back down to 0.5%.
  tfmcc::CsvWriter ewma_csv(
      opts.out(), {"step", "p_true", "p_float_ewma", "p_fixed_ewma",
                   "divergence_rel"});
  double max_track_err = 0.0;
  double avg_f = 0.0;
  std::uint32_t avg_i = 0;
  const int ramp = (2 * ewma_steps) / 3;
  for (int t = 0; t < ewma_steps; ++t) {
    double p_true;
    if (t < ramp) {
      p_true = 0.001 * std::pow(100.0, static_cast<double>(t) /
                                           std::max(1, ramp - 1));
    } else {
      p_true = 0.005;
    }
    const auto p_scaled = static_cast<std::uint32_t>(
        std::lround(p_true * static_cast<double>(fp::kPScale)));
    avg_f = avg_f == 0.0 ? p_true : 0.9 * avg_f + 0.1 * p_true;
    avg_i = fp::ewma(avg_i, p_scaled, 9);
    const double fixed_p =
        static_cast<double>(avg_i) / static_cast<double>(fp::kPScale);
    const double div_rel = std::fabs(fixed_p - avg_f) / avg_f;
    max_track_err = std::max(max_track_err, div_rel);
    ewma_csv.row(t, p_true, avg_f, fixed_p, div_rel);
  }

  note(opts.out(), "max relative rate error for p in [1e-4, 0.5]: " +
                       std::to_string(max_err_checked) +
                       "; below the table floor (saturated): " +
                       std::to_string(max_err_saturated));
  note(opts.out(), "max reverse-lookup round-trip error: " +
                       std::to_string(max_roundtrip_err) +
                       "; max EWMA tracking divergence: " +
                       std::to_string(max_track_err));
  check(opts.out(), max_err_checked <= 0.05,
        "fixed-point rate within 5% of float for p in [1e-4, 0.5]");
  check(opts.out(), max_roundtrip_err <= 0.05,
        "reverse lookup round-trips p within 5% above the table floor");
  check(opts.out(), max_track_err <= 0.01,
        "integer EWMA tracks the double EWMA within 1%");
  return 0;
}
