// Ablation: fidelity of the hybrid full/model receiver tier.  Runs the
// fig12-class single-bottleneck session at sizes where the full simulation
// is still affordable, once with every receiver a full agent and once on
// the hybrid tier (same seed, same bottleneck), and compares the reported
// rate column — the sender's achieved throughput over the steady-state
// half of the run — plus the RTT-acquisition fraction.
//
// Declared fidelity bound: <= 5% divergence on the rate columns.  The rate
// is bottleneck-governed and the CLR dynamics are preserved by the modeled
// tier (shared loss process behind each tap, per-receiver RTTs, analytic
// candidate short-list), so the hybrid curve must track the full one.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "scenario_util.hpp"

namespace {

struct FidelityPoint {
  double kbps{0.0};    // sender throughput over the measurement window
  double acq{0.0};     // fraction of receivers with a measured RTT
  double fb_round{0.0};  // feedback messages per round
};

}  // namespace

TFMCC_SCENARIO(ablation_hybrid_fidelity,
               "Ablation: hybrid receiver tier vs full simulation",
               tfmcc::param("n_max", 1000,
                            "skip receiver counts above this", 1),
               tfmcc::param("full_receivers", 16,
                            "hybrid runs: receivers kept as full agents", 1),
               tfmcc::param("model_taps", 4,
                            "hybrid runs: modeled-receiver blocks", 1),
               tfmcc::param("bottleneck_bps", 500e3, "bottleneck rate", 1e3),
               tfmcc::param("fidelity_pct", 5.0,
                            "declared rate-divergence bound, percent", 0.1),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Ablation",
                       "Hybrid receiver-tier fidelity vs full simulation");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  // 300 s horizon, measuring the final third: fig12 shows the full tier
  // needs ~200 s to finish RTT acquisition at n=1000, and until it does the
  // unacquired receivers' conservative initial-RTT rates depress the CLR.
  // The fidelity claim is about steady state, so measure past that transient.
  const SimTime horizon = opts.duration_or(300_sec);
  const SimTime meas_from = horizon - horizon / 3.0;
  const int n_max = opts.param_or("n_max", 1000);
  const double bn_bps = opts.param_or("bottleneck_bps", 500e3);
  const int n_full_agents = opts.param_or("full_receivers", 16);
  const int n_taps_req = opts.param_or("model_taps", 4);
  const double bound_pct = opts.param_or("fidelity_pct", 5.0);

  // One run of the fig12-class session; hybrid == false puts every receiver
  // in the full tier.  Same seed both ways: identical sender RNG stream and
  // bottleneck, so the comparison isolates the receiver-tier substitution.
  const auto run_once = [&](int n, bool hybrid) {
    Simulator sim{opts.seed_or(141)};
    Topology topo{sim};
    LinkConfig bn;
    bn.jitter = bench::kPhaseJitter;
    bn.rate_bps = bn_bps;
    bn.delay = 20_ms;
    bn.queue_limit_packets = 20;
    LinkConfig acc;
    acc.jitter = bench::kPhaseJitter;
    acc.rate_bps = 1e9;
    acc.delay = 2_ms;
    const NodeId src = topo.add_node();
    const NodeId left = topo.add_node();
    const NodeId right = topo.add_node();
    topo.add_duplex_link(src, left, acc);
    topo.add_duplex_link(left, right, bn);

    const int nf = hybrid ? std::min(n_full_agents, std::max(0, n - 2)) : n;
    const int nm = n - nf;
    Rng delay_rng{opts.seed_or(141) * 10 + 2};
    std::vector<NodeId> hosts(static_cast<size_t>(nf));
    for (int i = 0; i < nf; ++i) {
      hosts[static_cast<size_t>(i)] = topo.add_node();
      LinkConfig a = acc;
      a.delay = SimTime::millis(delay_rng.uniform_int(8, 48));
      topo.add_duplex_link(right, hosts[static_cast<size_t>(i)], a);
    }
    std::vector<NodeId> taps;
    if (nm > 0) {
      const int n_taps = std::clamp(n_taps_req, 1, nm);
      for (int t = 0; t < n_taps; ++t) {
        LinkConfig a = acc;
        a.delay = 8_ms;
        taps.push_back(topo.add_node());
        topo.add_duplex_link(right, taps.back(), a);
      }
    }
    topo.compute_routes();

    TfmccFlow flow{sim, topo, src, cfg};
    for (int i = 0; i < nf; ++i) {
      flow.add_joined_receiver(hosts[static_cast<size_t>(i)]);
    }
    for (std::size_t t = 0; t < taps.size(); ++t) {
      const int per = nm / static_cast<int>(taps.size());
      const int extra = t == 0 ? nm % static_cast<int>(taps.size()) : 0;
      const int b = flow.add_modeled_block(taps[t], per + extra,
                                           SimTime::zero(), 40_ms);
      flow.block(b).join();
    }
    flow.sender().start(SimTime::zero());

    sim.run_until(meas_from);
    const std::int64_t sent_start = flow.sender().data_sent();
    sim.run_until(horizon);
    const std::int64_t sent_end = flow.sender().data_sent();

    FidelityPoint pt;
    pt.kbps = kbps_from_Bps(static_cast<double>(sent_end - sent_start) *
                            static_cast<double>(cfg.packet_bytes) /
                            (horizon - meas_from).to_seconds());
    pt.acq = static_cast<double>(flow.receivers_with_rtt()) /
             static_cast<double>(n);
    pt.fb_round =
        static_cast<double>(flow.sender().feedback_received()) /
        std::max(1.0, static_cast<double>(flow.sender().round()));
    return pt;
  };

  CsvWriter csv(opts.out(),
                {"n", "full_kbps", "hybrid_kbps", "rate_div_pct",
                 "full_rtt_frac", "hybrid_rtt_frac", "full_fb_round",
                 "hybrid_fb_round"});
  const std::vector<int> sizes{64, 250, 1000};
  double worst_div = 0.0;
  int measured = 0;
  for (int n : sizes) {
    if (n > n_max) continue;
    const FidelityPoint full = run_once(n, false);
    const FidelityPoint hyb = run_once(n, true);
    const double div_pct =
        full.kbps > 0.0
            ? 100.0 * std::abs(hyb.kbps - full.kbps) / full.kbps
            : 100.0;
    worst_div = std::max(worst_div, div_pct);
    ++measured;
    csv.row(n, full.kbps, hyb.kbps, div_pct, full.acq, hyb.acq,
            full.fb_round, hyb.fb_round);
  }

  bench::note(opts.out(), "worst rate divergence " +
                              std::to_string(worst_div) + "% over " +
                              std::to_string(measured) + " sizes (bound " +
                              std::to_string(bound_pct) + "%)");
  bench::check(opts.out(), measured > 0, "at least one overlapping size ran");
  bench::check(opts.out(), worst_div <= bound_pct,
               "hybrid tier reproduces the full-sim rate within the "
               "declared fidelity bound");
  return 0;
}
