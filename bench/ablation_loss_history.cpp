// Ablation: loss-history depth (§2.3, §3).  The paper argues depths of
// 8-32 balance smoothness against responsiveness, and that deeper
// histories mitigate the loss-path-multiplicity degradation at the cost
// of slower reaction.  This bench quantifies both sides:
//   (a) scaling: expected min-rate at n receivers for depth 2/8/32;
//   (b) responsiveness: how long a single receiver takes to adapt after
//       its loss rate quadruples, for depth 8 vs 32.

#include <iostream>

#include "analysis/scaling.hpp"
#include "bench_util.hpp"
#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

/// Time for the sender rate to fall below half its previous steady value
/// after the receiver's path loss jumps from 0.5% to 8%.
double adapt_seconds(int depth, std::uint64_t seed) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 1e9;
  trunk.delay = 5_ms;
  LinkConfig leaf;
  leaf.rate_bps = 1e9;
  leaf.delay = 15_ms;
  leaf.loss_rate = 0.005;
  Star star = make_star(topo, trunk, {leaf});
  TfmccConfig cfg;
  cfg.loss_history_depth = depth;
  TfmccFlow flow{sim, topo, star.sender, cfg};
  flow.add_joined_receiver(star.leaves[0]);
  flow.sender().start(SimTime::zero());
  sim.run_until(120_sec);
  const double before = flow.sender().rate_Bps();
  star.leaf_links[0].first->set_loss_rate(0.08);
  const SimTime t0 = sim.now();
  while (sim.now() < t0 + 120_sec) {
    sim.run_until(sim.now() + 500_ms);
    if (flow.sender().rate_Bps() < before / 2.0) break;
  }
  return (sim.now() - t0).to_seconds();
}

}  // namespace

TFMCC_SCENARIO(ablation_loss_history,
               "Ablation: loss-history depth, smoothness vs responsiveness") {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;
  namespace sc = tfmcc::scaling;

  figure_header("Ablation", "Loss-history depth: smoothness vs responsiveness");

  const std::uint64_t seed = opts.seed_or(301);
  // (a) Scaling side.
  sc::ModelConfig mc;
  mc.trials = 150;
  tfmcc::Rng rng{seed + 30};
  tfmcc::CsvWriter csv(std::cout, {"metric", "depth", "value"});
  double rate_d2 = 0, rate_d32 = 0;
  for (int depth : {2, 8, 32}) {
    mc.history_depth = depth;
    const double kbps = tfmcc::kbps_from_Bps(
        sc::expected_min_rate_Bps(sc::constant_losses(1000, 0.1), mc, rng));
    csv.row("min_rate_n1000_kbps", depth, kbps);
    if (depth == 2) rate_d2 = kbps;
    if (depth == 32) rate_d32 = kbps;
  }

  // (b) Responsiveness side.
  const double t8 = adapt_seconds(8, seed);
  const double t32 = adapt_seconds(32, seed);
  csv.row("adapt_to_4x_loss_seconds", 8, t8);
  csv.row("adapt_to_4x_loss_seconds", 32, t32);

  check(rate_d32 > rate_d2,
        "deeper history mitigates the multi-receiver degradation");
  check(t8 <= t32 + 1.0,
        "shallower history reacts at least as fast to new congestion");
  note("depth 8 adapts in " + std::to_string(t8) + "s, depth 32 in " +
       std::to_string(t32) + "s");
  return 0;
}
