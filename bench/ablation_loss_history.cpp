// Ablation: loss-history depth (§2.3, §3).  The paper argues depths of
// 8-32 balance smoothness against responsiveness, and that deeper
// histories mitigate the loss-path-multiplicity degradation at the cost
// of slower reaction.  This bench quantifies both sides:
//   (a) scaling: expected min-rate at n receivers for depth 2/8/32;
//   (b) responsiveness: how long a single receiver takes to adapt after
//       its loss rate quadruples, for depth 8 vs 32.

#include <iostream>

#include "analysis/scaling.hpp"
#include "bench_util.hpp"
#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

/// Time for the sender rate to fall below half its previous steady value
/// after the receiver's path loss jumps from 0.5% to 8%.  The settle /
/// adaptation windows live at 120 s each on the reference 240 s timeline
/// and warp proportionally with --duration.
double adapt_seconds(int depth, const TimeWarp& warp, std::uint64_t seed,
                     const EquationBackend* eq) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 1e9;
  trunk.delay = 5_ms;
  LinkConfig leaf;
  leaf.rate_bps = 1e9;
  leaf.delay = 15_ms;
  leaf.loss_rate = 0.005;
  Star star = make_star(topo, trunk, {leaf});
  TfmccConfig cfg;
  cfg.loss_history_depth = depth;
  cfg.equation = eq;
  TfmccFlow flow{sim, topo, star.sender, cfg};
  flow.add_joined_receiver(star.leaves[0]);
  flow.sender().start(SimTime::zero());
  sim.run_until(warp(120_sec));
  const double before = flow.sender().rate_Bps();
  star.leaf_links[0].first->set_loss_rate(0.08);
  const SimTime t0 = sim.now();
  const SimTime window = warp(240_sec) - warp(120_sec);
  while (sim.now() < t0 + window) {
    sim.run_until(sim.now() + 500_ms);
    if (flow.sender().rate_Bps() < before / 2.0) break;
  }
  return (sim.now() - t0).to_seconds();
}

}  // namespace

TFMCC_SCENARIO(ablation_loss_history,
               "Ablation: loss-history depth, smoothness vs responsiveness",
               tfmcc::param("trials", 150, "Monte-Carlo trials, scaling side", 1),
               tfmcc::param("n_receivers", 1000,
                            "receiver count, scaling side", 1),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;
  namespace sc = tfmcc::scaling;

  figure_header(opts.out(), "Ablation", "Loss-history depth: smoothness vs responsiveness");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const std::uint64_t seed = opts.seed_or(301);
  const int n_receivers = opts.param_or("n_receivers", 1000);
  const tfmcc::TimeWarp warp{tfmcc::SimTime::seconds(240),
                             opts.duration_or(tfmcc::SimTime::seconds(240))};
  // (a) Scaling side.
  sc::ModelConfig mc;
  mc.equation = eq;
  mc.trials = opts.param_or("trials", 150);
  tfmcc::Rng rng{seed + 30};
  tfmcc::CsvWriter csv(opts.out(), {"metric", "depth", "value"});
  double rate_d2 = 0, rate_d32 = 0;
  for (int depth : {2, 8, 32}) {
    mc.history_depth = depth;
    const double kbps = tfmcc::kbps_from_Bps(sc::expected_min_rate_Bps(
        sc::constant_losses(n_receivers, 0.1), mc, rng));
    csv.row("min_rate_n1000_kbps", depth, kbps);
    if (depth == 2) rate_d2 = kbps;
    if (depth == 32) rate_d32 = kbps;
  }

  // (b) Responsiveness side.
  const double t8 = adapt_seconds(8, warp, seed, eq);
  const double t32 = adapt_seconds(32, warp, seed, eq);
  csv.row("adapt_to_4x_loss_seconds", 8, t8);
  csv.row("adapt_to_4x_loss_seconds", 32, t32);

  check(opts.out(), rate_d32 > rate_d2,
        "deeper history mitigates the multi-receiver degradation");
  check(opts.out(), t8 <= t32 + 1.0,
        "shallower history reacts at least as fast to new congestion");
  note(opts.out(), "depth 8 adapts in " + std::to_string(t8) + "s, depth 32 in " +
       std::to_string(t32) + "s");
  return 0;
}
