// Ablation: queue discipline.  §4 of the paper: "Generally, both fairness
// towards TCP and intra-protocol fairness improve when active queuing
// (e.g. RED) is used instead" of drop-tail.  One TFMCC flow and 4 TCP
// flows on a shared bottleneck, drop-tail vs RED.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

/// |log(tfmcc/tcp)| fairness distance (0 = perfectly fair).
double fairness_distance(bool use_red, int n_tcp, double bottleneck_bps,
                         std::uint64_t seed, SimTime horizon,
                         const TfmccConfig& cfg) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig bn;
  bn.jitter = bench::kPhaseJitter;
  bn.rate_bps = bottleneck_bps;
  bn.delay = 18_ms;
  bn.use_red = use_red;
  LinkConfig acc;
  acc.jitter = bench::kPhaseJitter;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 1 + n_tcp, 1 + n_tcp, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0], cfg};
  flow.add_joined_receiver(d.right_hosts[0]);
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < n_tcp; ++i) {
    tcp.push_back(std::make_unique<TcpFlow>(sim, topo, d.left_hosts[static_cast<size_t>(i + 1)],
                                            d.right_hosts[static_cast<size_t>(i + 1)], i));
    tcp.back()->start(SimTime::millis(41 * i));
  }
  flow.sender().start(SimTime::zero());
  sim.run_until(horizon);
  const SimTime warm = bench::warmup(60_sec, horizon);
  double tcp_kbps = 0;
  for (const auto& t : tcp) tcp_kbps += t->mean_kbps(warm, horizon);
  tcp_kbps /= static_cast<double>(n_tcp);
  const double tfmcc_kbps = flow.goodput(0).mean_kbps(warm, horizon);
  return std::fabs(std::log(std::max(tfmcc_kbps, 1.0) / std::max(tcp_kbps, 1.0)));
}

}  // namespace

TFMCC_SCENARIO(ablation_red_queue,
               "Ablation: drop-tail vs RED at the bottleneck",
               tfmcc::param("n_tcp", 4, "competing TCP flows", 1),
               tfmcc::param("bottleneck_bps", 5e6, "shared bottleneck rate",
                            1e3),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;

  figure_header(opts.out(), "Ablation", "Drop-tail vs RED at the bottleneck");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  tfmcc::TfmccConfig cfg;
  cfg.equation = eq;
  const tfmcc::SimTime horizon = opts.duration_or(180_sec);
  const std::uint64_t seed = opts.seed_or(321);
  const int n_tcp = opts.param_or("n_tcp", 4);
  const double bottleneck_bps = opts.param_or("bottleneck_bps", 5e6);
  const double droptail =
      fairness_distance(false, n_tcp, bottleneck_bps, seed, horizon, cfg);
  const double red =
      fairness_distance(true, n_tcp, bottleneck_bps, seed, horizon, cfg);

  tfmcc::CsvWriter csv(opts.out(), {"queue", "abs_log_fairness_ratio"});
  csv.row("droptail", droptail);
  csv.row("red", red);

  check(opts.out(), red < droptail + 0.35,
        "RED does not worsen TFMCC/TCP fairness (paper: it improves it)");
  note(opts.out(), "fairness distance |log ratio|: droptail " + std::to_string(droptail) +
       ", RED " + std::to_string(red));
  return 0;
}
