// Video streaming under viewer churn (graduated from
// examples/video_streaming.cpp into the churn workload family).
//
// The paper motivates TFMCC with applications needing a smooth, predictable
// rate — streaming media being the canonical case (§1.1, §5).  A "video"
// stream feeds a heterogeneous receiver set (campus, cable, DSL); a
// congested mobile viewer joins mid-session and leaves again, possibly
// repeatedly (`churn_cycles`), dragging the CLR and the whole group's rate
// down while present.  The report shows what an adaptive codec would see:
// per-phase mean rate, coefficient of variation, and the video layer the
// rate sustains.

#include <string>
#include <vector>

#include "scenario_util.hpp"

namespace {

constexpr double kLayerKbps[] = {128.0, 256.0, 512.0, 1024.0, 2048.0};

int layer_for(double kbps) {
  int layer = -1;
  for (int i = 0; i < 5; ++i) {
    if (kbps >= kLayerKbps[i]) layer = i;
  }
  return layer;
}

}  // namespace

TFMCC_SCENARIO(
    app_video_churn,
    "Video streaming with a congested mobile viewer joining and leaving",
    tfmcc::param("mobile_kbps", 600.0, "mobile access link rate", 10.0),
    tfmcc::param("mobile_loss", 0.01, "mobile access link loss rate", 0.0),
    tfmcc::param("churn_cycles", 1,
                 "mobile join/leave cycles within the churn window", 1.0),
    tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "App: video churn",
                       "Streaming rate under mobile-viewer churn");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const double mobile_kbps = opts.param_or("mobile_kbps", 600.0);
  const double mobile_loss = opts.param_or("mobile_loss", 0.01);
  const int cycles = opts.param_or("churn_cycles", 1);
  TfmccConfig cfg;
  cfg.equation = eq;

  // Reference timeline (the example's): fixed receivers only over [0, 120),
  // the churn window [120, 360) split into `churn_cycles` join/leave
  // cycles — the mobile viewer is present for the first half of each cycle.
  const SimTime kRefT = 360_sec;
  const SimTime T = opts.duration_or(kRefT);
  Simulator sim{opts.seed_or(3)};
  Topology topo{sim};

  LinkConfig trunk;
  trunk.rate_bps = 100e6;
  trunk.delay = 5_ms;
  LinkConfig campus;  // fast and clean
  campus.rate_bps = 20e6;
  campus.delay = 10_ms;
  LinkConfig cable;
  cable.rate_bps = 6e6;
  cable.delay = 15_ms;
  cable.loss_rate = 0.001;
  LinkConfig dsl;
  dsl.rate_bps = 2e6;
  dsl.delay = 25_ms;
  dsl.loss_rate = 0.002;
  LinkConfig mobile;  // the churning viewer
  mobile.rate_bps = mobile_kbps * 1e3;
  mobile.delay = 60_ms;
  mobile.loss_rate = mobile_loss;
  const Star star = make_star(topo, trunk, {campus, cable, dsl, mobile});
  topo.compute_routes();

  TfmccFlow stream{sim, topo, star.sender, cfg};
  for (int i = 0; i < 3; ++i) {
    stream.add_joined_receiver(star.leaves[static_cast<size_t>(i)]);
  }
  const int mobile_id = stream.add_receiver(star.leaves[3]);

  stream.sender().start(SimTime::zero());
  ScheduleBuilder sched{sim, kRefT, T};
  const double cycle_s = 240.0 / static_cast<double>(cycles);
  for (int c = 0; c < cycles; ++c) {
    const double t0 = 120.0 + cycle_s * static_cast<double>(c);
    sched.at(SimTime::seconds(t0),
             [&stream, mobile_id] { stream.receiver(mobile_id).join(); });
    sched.at(SimTime::seconds(t0 + cycle_s / 2.0),
             [&stream, mobile_id] { stream.receiver(mobile_id).leave(); });
  }
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "video", stream.goodput(0), 0_sec, T);

  // Phase statistics on the first cycle, as an adaptive encoder would see
  // them (windows warp with the schedule).
  const auto w = [&sched](double s) {
    return sched.warped(SimTime::seconds(s));
  };
  struct Phase {
    const char* name;
    SimTime from, to;
  };
  const Phase phases[] = {
      {"fixed receivers only", w(30), w(120)},
      {"mobile viewer joined", w(120.0 + cycle_s * 0.1),
       w(120.0 + cycle_s / 2.0)},
      {"mobile viewer left", w(120.0 + cycle_s * 0.6), w(120.0 + cycle_s)},
  };
  std::vector<double> means;
  for (const auto& ph : phases) {
    OnlineStats stats;
    int flips = 0, last_layer = -2;
    for (const auto& p : stream.goodput(0).series_kbps().points()) {
      if (p.t < ph.from || p.t >= ph.to) continue;
      stats.add(p.v);
      const int layer = layer_for(p.v);
      if (last_layer != -2 && layer != last_layer) ++flips;
      last_layer = layer;
    }
    means.push_back(stats.mean());
    bench::note(opts.out(),
                std::string(ph.name) + ": mean=" + std::to_string(stats.mean()) +
                    " kbit/s cov=" + std::to_string(stats.cov()) +
                    " layer_flips=" + std::to_string(flips) +
                    " layer=" + std::to_string(layer_for(stats.mean())));
  }
  bench::note(opts.out(),
              "CLR changes over the run: " +
                  std::to_string(stream.sender().clr_history().size()));
  bench::note(opts.out(),
              "feedback messages total: " +
                  std::to_string(stream.total_feedback_sent()));
  bench::note_schedule(opts.out(), sched);

  bench::check(opts.out(), means[1] < means[0],
               "the mobile viewer drags the stream rate down while present");
  bench::check(opts.out(), means[2] > means[1],
               "the rate recovers after the mobile viewer leaves");
  bench::check(opts.out(), layer_for(means[1]) <= layer_for(means[0]),
               "the sustainable video layer drops with the mobile viewer");
  return 0;
}
