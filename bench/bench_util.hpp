#pragma once

// Shared support for the figure-reproduction benches.  Every bench binary
// prints:
//   1. a header naming the figure it reproduces,
//   2. a CSV trace with the same series the paper plots,
//   3. a "CHECK" summary comparing the measured shape against the paper's
//      qualitative claim (recorded in EXPERIMENTS.md).

#include <cstdio>
#include <string>

namespace tfmcc::bench {

inline void figure_header(const char* figure, const char* title) {
  std::printf("# %s: %s\n", figure, title);
}

inline bool check(bool ok, const std::string& what) {
  std::printf("CHECK %s: %s\n", ok ? "PASS" : "DIVERGES", what.c_str());
  return ok;
}

inline void note(const std::string& what) {
  std::printf("NOTE: %s\n", what.c_str());
}

}  // namespace tfmcc::bench
