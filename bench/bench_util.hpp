#pragma once

// Shared support for the figure-reproduction benches.  Every bench binary
// prints:
//   1. a header naming the figure it reproduces,
//   2. a CSV trace with the same series the paper plots,
//   3. a "CHECK" summary comparing the measured shape against the paper's
//      qualitative claim (recorded in EXPERIMENTS.md).
//
// Benches define their entry point with TFMCC_SCENARIO (sim/scenario.hpp):
// the same translation unit builds both as a standalone binary and as one
// of the scenarios linked into the unified `tfmcc_sim` driver.

#include <algorithm>
#include <cstdio>
#include <string>

#include "sim/scenario.hpp"

namespace tfmcc::bench {

inline void figure_header(const char* figure, const char* title) {
  std::printf("# %s: %s\n", figure, title);
}

inline bool check(bool ok, const std::string& what) {
  std::printf("CHECK %s: %s\n", ok ? "PASS" : "DIVERGES", what.c_str());
  return ok;
}

inline void note(const std::string& what) {
  std::printf("NOTE: %s\n", what.c_str());
}

/// Warm-up cutoff for steady-state measurement windows: the paper's cutoff,
/// clamped to half the horizon so shortened --duration runs still measure.
inline SimTime warmup(SimTime cap, SimTime horizon) {
  return std::min(cap, horizon / 2.0);
}

}  // namespace tfmcc::bench
