#pragma once

// Shared support for the figure-reproduction benches.  Every bench binary
// prints:
//   1. a header naming the figure it reproduces,
//   2. a CSV trace with the same series the paper plots,
//   3. a "CHECK" summary comparing the measured shape against the paper's
//      qualitative claim (recorded in EXPERIMENTS.md).
//
// Benches define their entry point with TFMCC_SCENARIO (sim/scenario.hpp):
// the same translation unit builds both as a standalone binary and as one
// of the scenarios linked into the unified `tfmcc_sim` driver.

#include <algorithm>
#include <ostream>
#include <string>

#include "sim/scenario.hpp"
#include "tfrc/equation_backend.hpp"

namespace tfmcc::bench {

/// The shared `equation_backend` knob: every TFMCC scenario declares it so
/// any figure can be re-run (or swept) on the scaled-integer engine with
/// `--set equation_backend=fixed`.  The float default keeps all golden
/// outputs byte-identical.
inline ParamSpec equation_backend_param() {
  return param("equation_backend", "float",
               "control-equation backend: float (double Padhye) or fixed "
               "(table-driven scaled-integer)");
}

/// Resolves the declared `equation_backend` override; on an unknown name,
/// diagnoses on the scenario sink and returns nullptr (the scenario should
/// fail its run).
inline const EquationBackend* selected_equation_backend(
    const ScenarioOptions& opts) {
  const std::string name = opts.param_or("equation_backend", "float");
  const EquationBackend* backend = find_equation_backend(name);
  if (backend == nullptr) {
    opts.out() << "error: unknown equation_backend '" << name
               << "' (expected float or fixed)\n";
  }
  return backend;
}

/// The hybrid full/model receiver-tier seam, following the equation_backend
/// template: packet-level scenarios declare `receiver_model` so any of them
/// can run the modeled SoA receiver blocks with `--set
/// receiver_model=hybrid`.  The full default keeps all golden outputs
/// byte-identical.
enum class ReceiverModel { kFull, kHybrid, kUnknown };

inline ParamSpec receiver_model_param(const char* def = "full") {
  return param("receiver_model", def,
               "receiver tier: full (one agent per receiver) or hybrid "
               "(full agents for the interesting few, modeled SoA blocks "
               "for the silent majority)");
}

/// Resolves the declared `receiver_model` override; on an unknown name,
/// diagnoses on the scenario sink and returns kUnknown (the scenario should
/// fail its run).
inline ReceiverModel selected_receiver_model(const ScenarioOptions& opts,
                                             const char* def = "full") {
  const std::string name = opts.param_or("receiver_model", def);
  if (name == "full") return ReceiverModel::kFull;
  if (name == "hybrid") return ReceiverModel::kHybrid;
  opts.out() << "error: unknown receiver_model '" << name
             << "' (expected full or hybrid)\n";
  return ReceiverModel::kUnknown;
}

// All three emitters take the scenario's output sink explicitly
// (opts.out() at the call sites) so concurrently running sweep points
// never interleave on a shared stdout.

inline void figure_header(std::ostream& os, const char* figure,
                          const char* title) {
  os << "# " << figure << ": " << title << '\n';
}

inline bool check(std::ostream& os, bool ok, const std::string& what) {
  os << "CHECK " << (ok ? "PASS" : "DIVERGES") << ": " << what << '\n';
  return ok;
}

inline void note(std::ostream& os, const std::string& what) {
  os << "NOTE: " << what << '\n';
}

/// Warm-up cutoff for steady-state measurement windows: the paper's cutoff,
/// clamped to half the horizon so shortened --duration runs still measure.
inline SimTime warmup(SimTime cap, SimTime horizon) {
  return std::min(cap, horizon / 2.0);
}

}  // namespace tfmcc::bench
