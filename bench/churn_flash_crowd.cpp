// Flash-crowd churn workload (dynamic membership at scale).
//
// The paper evaluates TFMCC with static groups; this scenario stresses its
// §4.2 leave/join machinery the way a popular live event does: a dense
// crowd of receivers joins within seconds of session start, then the group
// keeps churning — random leave/rejoin toggles — for the rest of the run.
// At the default size (2000 receivers, 2000 crowd joins + 8000 churn
// toggles = 10k membership events) the per-event tree maintenance is the
// difference between this completing and not: a full rebuild per event is
// O(members x path), incremental graft/prune is O(path).  The `membership`
// knob switches the two so the cost gap is measurable end to end
// (BM_MembershipChurn measures it in isolation).

#include <string>
#include <vector>

#include "scenario_util.hpp"
#include "tfmcc/churn.hpp"

TFMCC_SCENARIO(
    churn_flash_crowd,
    "Flash-crowd joins plus sustained random churn on one TFMCC session",
    tfmcc::param("n_receivers", 2000, "receiver population", 2.0),
    tfmcc::param("churn_events", 8000,
                 "random leave/rejoin toggles after the crowd arrives", 0.0),
    tfmcc::param("bottleneck_mbps", 1.0, "bottleneck rate", 0.01),
    tfmcc::param("membership", "incremental",
                 "tree maintenance: incremental (graft/prune) or full "
                 "(rebuild per event)"),
    tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Churn: flash crowd",
                       "Dense join wave plus sustained random churn");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const int n_rx = opts.param_or("n_receivers", 2000);
  const int churn_events = opts.param_or("churn_events", 8000);
  const double bn_bps = opts.param_or("bottleneck_mbps", 1.0) * 1e6;
  const std::string membership = opts.param_or("membership", "incremental");
  if (membership != "incremental" && membership != "full") {
    opts.out() << "error: unknown membership '" << membership
               << "' (expected incremental or full)\n";
    return 2;
  }
  TfmccConfig cfg;
  cfg.equation = eq;

  // Reference timeline: crowd arrives over [5, 15] s, random churn runs
  // over [20, 55] s, steady-state window is the last half.
  const SimTime kRefT = 60_sec;
  const SimTime T = opts.duration_or(kRefT);
  Simulator sim{opts.seed_or(800)};
  Topology topo{sim};
  topo.set_membership_mode(membership == "full"
                               ? MembershipMode::kFullRebuild
                               : MembershipMode::kIncremental);

  LinkConfig bn;
  bn.rate_bps = bn_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 50;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  acc.jitter = bench::kPhaseJitter;
  Dumbbell d = make_dumbbell(topo, 1, n_rx, bn, acc);
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, d.left_hosts[0], cfg};
  std::vector<int> crowd_ids;
  for (int i = 0; i < n_rx; ++i) {
    const int id = tfmcc.add_receiver(d.right_hosts[static_cast<size_t>(i)]);
    if (i == 0) {
      tfmcc.receiver(id).join();  // anchor: present from t = 0
    } else {
      crowd_ids.push_back(id);
    }
  }
  tfmcc.sender().start(SimTime::zero());

  ScheduleBuilder sched{sim, kRefT, T};
  ChurnDriver churn{tfmcc, sim.make_rng(42'000)};
  churn.schedule_flash_crowd(sched, crowd_ids, 5_sec, 10_sec);
  churn.schedule_random_churn(sched, crowd_ids, churn_events, 20_sec, 55_sec);

  // Membership trajectory, sampled once per reference second.
  struct Sample {
    double t_s;
    int members;
    int attached;
    int events;
  };
  std::vector<Sample> trajectory;
  const GroupId gid = tfmcc.session().group();
  for (int s = 0; s <= 60; ++s) {
    sched.at(SimTime::seconds(static_cast<double>(s)), [&, s] {
      int attached = 0;
      for (NodeId n = 0; n < topo.node_count(); ++n) {
        if (topo.is_attached(gid, n)) ++attached;
      }
      trajectory.push_back({static_cast<double>(s),
                            topo.member_count(gid), attached,
                            churn.applied_events()});
    });
  }
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"time_s", "members", "attached_nodes",
                             "churn_events_applied"});
  for (const auto& s : trajectory) {
    csv.row(s.t_s, s.members, s.attached, s.events);
  }

  // The driver's counters accumulate across both workloads; the crowd
  // window closes before the churn window opens, so every crowd join
  // applied and the difference is exactly the random toggles.
  const int crowd_joins = static_cast<int>(crowd_ids.size());
  const int toggles = churn.applied_events() - crowd_joins;
  const int total_events = 1 + churn.applied_events();
  bench::note(opts.out(),
              "membership events: 1 anchor join + " +
                  std::to_string(crowd_joins) + " crowd joins + " +
                  std::to_string(toggles) + " churn toggles (" +
                  std::to_string(churn.applied_joins() - crowd_joins) +
                  " rejoins, " + std::to_string(churn.applied_leaves()) +
                  " leaves) = " + std::to_string(total_events));
  bench::note(opts.out(), "membership mode: " + membership);
  bench::note_schedule(opts.out(), sched);

  const SimTime w0 = sched.warped(30_sec);
  const double anchor_kbps = tfmcc.goodput(0).mean_kbps(w0, T);
  bench::note(opts.out(), "anchor goodput (kbit/s, steady window): " +
                              std::to_string(anchor_kbps));
  bench::check(opts.out(), churn.applied_events() > 0,
               "random churn toggled membership");
  bench::check(opts.out(), anchor_kbps > 0.0,
               "the anchor receiver keeps receiving data through the churn");
  bench::check(opts.out(),
               topo.member_count(gid) >= 1 &&
                   topo.member_count(gid) <= n_rx,
               "final membership within [1, n_receivers]");
  return 0;
}
