// Correlated leave-storm workload.
//
// Dynamic-membership churn is rarely uniform: a broadcast event ending, a
// network partition, or a program change makes a large correlated cohort
// leave within seconds — and often rejoin shortly after.  For TFMCC the
// interesting machinery is the CLR handoff (§3.2, §4.2): when the storm
// takes the current limiting receiver away the sender must time it out and
// promote a new CLR without stalling the survivors, and the rate should
// recover towards the smaller group's fair share until the rejoin wave
// restores the population.

#include <string>
#include <vector>

#include "scenario_util.hpp"
#include "tfmcc/churn.hpp"

TFMCC_SCENARIO(
    churn_leave_storm,
    "Steady state, correlated leave storm, then a rejoin wave",
    tfmcc::param("n_receivers", 200, "receiver population", 2.0),
    tfmcc::param("storm_fraction", 0.5,
                 "fraction of receivers leaving in the storm", 0.0),
    tfmcc::param("bottleneck_mbps", 2.0, "bottleneck rate", 0.01),
    tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Churn: leave storm",
                       "Correlated leave storm and rejoin wave");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const int n_rx = opts.param_or("n_receivers", 200);
  const double fraction = opts.param_or("storm_fraction", 0.5);
  const double bn_bps = opts.param_or("bottleneck_mbps", 2.0) * 1e6;
  TfmccConfig cfg;
  cfg.equation = eq;

  // Reference timeline: steady [0, 40), storm over [40, 45], depleted
  // [50, 80), rejoin wave [80, 85], recovered [90, 120).
  const SimTime kRefT = 120_sec;
  const SimTime T = opts.duration_or(kRefT);
  Simulator sim{opts.seed_or(801)};
  Topology topo{sim};

  LinkConfig bn;
  bn.rate_bps = bn_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 50;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  acc.jitter = bench::kPhaseJitter;
  Dumbbell d = make_dumbbell(topo, 1, n_rx, bn, acc);
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, d.left_hosts[0], cfg};
  std::vector<int> ids;
  for (int i = 0; i < n_rx; ++i) {
    ids.push_back(
        tfmcc.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]));
  }
  tfmcc.sender().start(SimTime::zero());

  ScheduleBuilder sched{sim, kRefT, T};
  ChurnDriver churn{tfmcc, sim.make_rng(43'000)};
  // The anchor (receiver 0) never leaves, so its goodput trace spans the
  // whole run.
  const std::vector<int> storm_pool(ids.begin() + 1, ids.end());
  const std::vector<int> leavers =
      churn.schedule_leave_storm(sched, storm_pool, fraction, 40_sec, 5_sec);
  churn.schedule_flash_crowd(sched, leavers, 80_sec, 5_sec);  // rejoin wave

  const GroupId gid = tfmcc.session().group();
  struct Sample {
    double t_s;
    int members;
  };
  std::vector<Sample> trajectory;
  for (int s = 0; s <= 120; s += 2) {
    sched.at(SimTime::seconds(static_cast<double>(s)), [&, s] {
      trajectory.push_back({static_cast<double>(s), topo.member_count(gid)});
    });
  }
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"series", "time_s", "value"});
  for (const auto& s : trajectory) csv.row("members", s.t_s, s.members);
  bench::emit_series(csv, "anchor_kbps", tfmcc.goodput(0), 0_sec, T);

  const auto w = [&sched](double s) {
    return sched.warped(SimTime::seconds(s));
  };
  const double steady = tfmcc.goodput(0).mean_kbps(w(20), w(40));
  const double depleted = tfmcc.goodput(0).mean_kbps(w(55), w(80));
  const double recovered = tfmcc.goodput(0).mean_kbps(w(95), w(120));
  bench::note(opts.out(), "storm: " + std::to_string(leavers.size()) +
                              " receivers left, " +
                              std::to_string(churn.applied_joins()) +
                              " rejoined");
  bench::note(opts.out(),
              "anchor goodput (kbit/s): steady=" + std::to_string(steady) +
                  " depleted=" + std::to_string(depleted) +
                  " recovered=" + std::to_string(recovered));
  bench::note(opts.out(), "CLR changes over the run: " +
                              std::to_string(tfmcc.sender().clr_history().size()));
  bench::note_schedule(opts.out(), sched);
  bench::check(opts.out(),
               static_cast<double>(leavers.size()) >=
                   fraction * static_cast<double>(n_rx - 1) - 1.0,
               "the storm removed the requested fraction of receivers");
  bench::check(opts.out(), churn.applied_joins() == static_cast<int>(leavers.size()),
               "every storm leaver rejoined in the rejoin wave");
  bench::check(opts.out(), steady > 0.0 && depleted > 0.0 && recovered > 0.0,
               "the anchor kept receiving through storm and rejoin");
  return 0;
}
