// §5 comparison: TFMCC vs PGMCC on the same bottleneck.
//
// Paper claims: both are viable single-rate multicast congestion control
// schemes and achieve comparable medium-term throughput, but PGMCC's
// TCP-style window "produces rate variations that resemble TCP's
// sawtooth-like rate", whereas "the rate produced by TFMCC is generally
// smoother and more predictable".

#include <iostream>
#include <memory>

#include "pgmcc/pgmcc.hpp"
#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

struct Run {
  double mean_kbps;
  double cov;
};

Run run_tfmcc(int n_receivers, double bottleneck_bps, std::uint64_t seed,
              SimTime horizon, const TfmccConfig& cfg) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = bottleneck_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 25;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 1, n_receivers, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0], cfg};
  for (int i = 0; i < n_receivers; ++i) flow.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]);
  flow.sender().start(SimTime::zero());
  sim.run_until(horizon);
  const SimTime warm = bench::warmup(60_sec, horizon);
  return {flow.goodput(0).mean_kbps(warm, horizon),
          bench::trace_cov(flow.goodput(0), warm, horizon)};
}

Run run_pgmcc(int n_receivers, double bottleneck_bps, std::uint64_t seed,
              SimTime horizon) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = bottleneck_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 25;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 1, n_receivers, bn, acc);
  MulticastSession session{topo, d.left_hosts[0], 12};
  PgmccSender sender{sim, session, PgmccConfig{}, sim.make_rng(900)};
  std::vector<std::unique_ptr<PgmccReceiver>> receivers;
  ThroughputBinner goodput{1_sec};
  for (int i = 0; i < n_receivers; ++i) {
    receivers.push_back(std::make_unique<PgmccReceiver>(
        sim, session, d.right_hosts[static_cast<size_t>(i)], i, PgmccConfig{},
        sim.make_rng(901 + static_cast<std::uint64_t>(i))));
    receivers.back()->join();
  }
  receivers[0]->set_delivery_observer(
      [&goodput](SimTime t, std::int32_t bytes) { goodput.add(t, bytes); });
  sender.start(SimTime::zero());
  sim.run_until(horizon);
  const SimTime warm = bench::warmup(60_sec, horizon);
  return {goodput.mean_kbps(warm, horizon),
          bench::trace_cov(goodput, warm, horizon)};
}

}  // namespace

TFMCC_SCENARIO(comparison_pgmcc,
               "Section 5 comparison: TFMCC vs PGMCC on one bottleneck",
               tfmcc::param("n_receivers", 4, "receiver count per protocol", 1),
               tfmcc::param("bottleneck_bps", 2e6, "bottleneck rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;

  figure_header(opts.out(), "Comparison (§5)", "TFMCC vs PGMCC on a 2 Mbit/s bottleneck");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  tfmcc::TfmccConfig cfg;
  cfg.equation = eq;
  const tfmcc::SimTime horizon = opts.duration_or(300_sec);
  const std::uint64_t seed = opts.seed_or(501);
  const int n_receivers = opts.param_or("n_receivers", 4);
  const double bottleneck_bps = opts.param_or("bottleneck_bps", 2e6);
  const Run tfmcc_run =
      run_tfmcc(n_receivers, bottleneck_bps, seed, horizon, cfg);
  const Run pgmcc_run = run_pgmcc(n_receivers, bottleneck_bps, seed, horizon);

  tfmcc::CsvWriter csv(opts.out(), {"protocol", "mean_kbps", "cov"});
  csv.row("TFMCC", tfmcc_run.mean_kbps, tfmcc_run.cov);
  csv.row("PGMCC", pgmcc_run.mean_kbps, pgmcc_run.cov);

  check(opts.out(), tfmcc_run.mean_kbps > 0.3 * pgmcc_run.mean_kbps &&
            tfmcc_run.mean_kbps < 3.0 * pgmcc_run.mean_kbps,
        "both schemes achieve comparable medium-term throughput");
  check(opts.out(), tfmcc_run.cov < pgmcc_run.cov,
        "TFMCC's equation-based rate is smoother than PGMCC's window "
        "sawtooth");
  note(opts.out(), "TFMCC " + std::to_string(tfmcc_run.mean_kbps) + " kbit/s CoV " +
       std::to_string(tfmcc_run.cov) + "; PGMCC " +
       std::to_string(pgmcc_run.mean_kbps) + " kbit/s CoV " +
       std::to_string(pgmcc_run.cov));
  return 0;
}
