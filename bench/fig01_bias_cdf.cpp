// Figure 1: cumulative distribution of the feedback time for the three
// biasing methods (plain exponential timers, offset bias, modified N),
// plotted over [0, T] with T = 4 RTTs, N = 10000.
//
// The paper's figure shows: modifying N lifts the whole CDF (more early,
// unsuppressible responses); the offset method instead compresses the
// response window, leaving the early-response probability unchanged.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "tfmcc/feedback_timer.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig01_bias_cdf,
               "Figure 1: CDF of feedback times for the biasing methods",
               tfmcc::param("x_ratio", 0.1, "calculated/current rate ratio x", 0.0),
               tfmcc::param("curve_points", 200, "samples along the CDF", 8)) {
  using namespace tfmcc;
  namespace ft = feedback_timer;

  bench::figure_header(opts.out(), "Figure 1", "Different feedback biasing methods (CDF)");

  const double kT = 4.0;  // RTTs
  // Strongly-biased regime by default (calc rate well below send rate).
  const double kX = opts.param_or("x_ratio", 0.1);
  const int kPoints = opts.param_or("curve_points", 200);

  FeedbackTimerConfig exp_cfg;
  exp_cfg.method = BiasMethod::kUnbiased;
  FeedbackTimerConfig off_cfg;
  off_cfg.method = BiasMethod::kOffset;
  FeedbackTimerConfig n_cfg;
  n_cfg.method = BiasMethod::kModifiedN;

  CsvWriter csv(opts.out(), {"time_rtts", "exponential", "offset", "modified_n"});
  double p_exp_early = 0, p_n_early = 0;
  for (int i = 0; i <= kPoints; ++i) {
    const double t_rtts = kT * i / kPoints;
    const double t_units = t_rtts / kT;
    const double f_exp = ft::cdf(t_units, kX, exp_cfg);
    const double f_off = ft::cdf(t_units, kX, off_cfg);
    const double f_n = ft::cdf(t_units, kX, n_cfg);
    csv.row(t_rtts, f_exp, f_off, f_n);
    if (i == kPoints / 8) {  // t ~ 0.5 RTT: the "early response" regime
      p_exp_early = f_exp;
      p_n_early = f_n;
    }
  }

  bench::check(opts.out(), p_n_early > 4.0 * p_exp_early,
               "modified-N shifts the CDF up (many more early responses)");
  bench::check(opts.out(), ft::cdf(0.0, kX, off_cfg) <= ft::cdf(0.0, kX, exp_cfg) + 1e-12,
               "offset bias does not increase the immediate-response mass");
  const double off_start = off_cfg.zeta * kX;
  bench::check(opts.out(), ft::cdf(off_start * 0.99, kX, off_cfg) == 0.0,
               "offset method delays the response window start by zeta*x*T");
  return 0;
}
