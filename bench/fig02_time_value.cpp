// Figure 2: time-value distribution of one feedback round, with and
// without offset biasing.  n = 10000 receivers with report values drawn
// uniformly in [0,1]; each receiver's scheduled feedback time is plotted
// against its value, marked sent or suppressed, with the best sent value
// highlighted.
//
// Paper claim: with the offset bias, the early feedback messages (and
// hence the best value received) are much closer to the optimum, at the
// cost of a somewhat higher message count.

#include <algorithm>
#include <iostream>

#include "analysis/feedback_round.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig02_time_value,
               "Figure 2: time-value distribution of one feedback round",
               tfmcc::param("n_receivers", 10000, "receivers in the round", 1)) {
  using namespace tfmcc;
  namespace fr = feedback_round;

  bench::figure_header(opts.out(), "Figure 2", "Time-value distribution of one round");

  const int kReceivers = opts.param_or("n_receivers", 10000);
  const std::uint64_t seed = opts.seed_or(42);
  Rng rng{seed};
  const auto values = fr::uniform_values(kReceivers, 0.0, 1.0, rng);

  fr::RoundConfig normal;
  normal.timer.method = BiasMethod::kUnbiased;
  normal.delta = 1.0;  // study the raw timer distribution, full suppression
  fr::RoundConfig offset = normal;
  offset.timer.method = BiasMethod::kOffset;

  Rng r1{seed + 1}, r2{seed + 2};
  const auto res_normal = fr::simulate(values, normal, r1, true);
  const auto res_offset = fr::simulate(values, offset, r2, true);

  CsvWriter csv(opts.out(), {"variant", "time_rtts", "value", "state"});
  auto emit = [&](const char* variant, const fr::RoundResult& res) {
    // Print all sent messages and a 1-in-50 sample of suppressed ones (the
    // full scatter is 10000 points per variant).
    int skip = 0;
    for (const auto& o : res.outcomes) {
      if (o.sent) {
        csv.row(variant, o.timer, o.value, "sent");
      } else if (++skip % 50 == 0) {
        csv.row(variant, o.timer, o.value, "suppressed");
      }
    }
    csv.row(variant, res.best_time, res.best_value, "best");
  };
  emit("normal", res_normal);
  emit("offset", res_offset);

  bench::check(opts.out(), res_offset.best_value - res_offset.true_min <
                   res_normal.best_value - res_normal.true_min + 1e-9,
               "offset bias brings the best received value closer to optimal");
  bench::check(opts.out(), res_offset.responses >= res_normal.responses,
               "biasing costs somewhat more feedback messages");
  bench::note(opts.out(), "normal: " + std::to_string(res_normal.responses) +
              " responses, best " + std::to_string(res_normal.best_value) +
              "; offset: " + std::to_string(res_offset.responses) +
              " responses, best " + std::to_string(res_offset.best_value) +
              "; true min " + std::to_string(res_normal.true_min));
  return 0;
}
