// Figure 3: number of feedback responses in the first round of the worst
// case — all n receivers suddenly experience congestion at a similar level
// — for the three cancellation policies delta = 1.0 ("all suppressed"),
// 0.1 ("10% lower suppressed") and 0.0 ("higher suppressed").
//
// Paper claims: delta=0 grows with n (log-like); delta=1 stays flat;
// delta=0.1 is only marginally above delta=1 while keeping the transient
// rate within 10% of optimal.

#include <iostream>
#include <string>

#include "analysis/feedback_round.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

TFMCC_SCENARIO(fig03_cancellation,
               "Figure 3: feedback cancellation policies vs receiver count",
               tfmcc::param("trials", 25, "Monte-Carlo trials per point", 1),
               tfmcc::param("n_max", 10000,
                            "skip receiver counts above this", 1)) {
  using namespace tfmcc;
  namespace fr = feedback_round;

  bench::figure_header(opts.out(), "Figure 3", "Different feedback cancellation methods");

  const int kTrials = opts.param_or("trials", 25);
  const int n_max = opts.param_or("n_max", 10000);
  Rng root{opts.seed_or(7)};

  CsvWriter csv(opts.out(),
                {"n", "all_suppressed_d1", "ten_pct_d01", "higher_suppressed_d0"});

  // "at_10k" values track the largest receiver count actually swept, so a
  // reduced-n_max run still exercises the same comparisons.
  double d0_at_10k = 0, d01_at_10k = 0, d1_at_10k = 0, d0_at_10 = 0;
  for (int n : {1, 3, 10, 30, 100, 300, 1000, 3000, 10000}) {
    if (n > n_max) continue;
    double avg[3] = {0, 0, 0};
    const double deltas[3] = {1.0, 0.1, 0.0};
    for (int t = 0; t < kTrials; ++t) {
      Rng r = root.substream(static_cast<std::uint64_t>(n) * 100 +
                             static_cast<std::uint64_t>(t));
      // Sudden congestion: all receivers compute similar low rates.
      const auto values = fr::uniform_values(n, 0.4, 0.6, r);
      for (int d = 0; d < 3; ++d) {
        fr::RoundConfig cfg;
        cfg.delta = deltas[d];
        cfg.timer.method = BiasMethod::kModifiedOffset;
        Rng rr = r.substream(static_cast<std::uint64_t>(d));
        avg[d] += fr::simulate(values, cfg, rr).responses;
      }
    }
    for (double& a : avg) a /= kTrials;
    csv.row(n, avg[0], avg[1], avg[2]);
    d1_at_10k = avg[0];
    d01_at_10k = avg[1];
    d0_at_10k = avg[2];
    if (n == 10) d0_at_10 = avg[2];
  }

  bench::check(opts.out(), d0_at_10k > 2.0 * d0_at_10,
               "delta=0 (higher suppressed) grows with n");
  bench::check(opts.out(), d1_at_10k < 60.0, "delta=1 (all suppressed) stays bounded");
  bench::check(opts.out(), d01_at_10k < 3.0 * d1_at_10k + 10.0,
               "delta=0.1 only marginally above full suppression");
  bench::check(opts.out(), d01_at_10k < d0_at_10k,
               "delta=0.1 cheaper than delta=0 at n=10000");
  return 0;
}
