// Figure 4: expected number of feedback messages as a function of the
// suppression window T' (in RTTs) and the receiver count n, for
// N = 10000 and network delay D = 1 RTT (unicast feedback + sender echo).
//
// Paper claim: T' in roughly [3,4] RTTs yields the desired moderate number
// of duplicate responses, particularly for n one to two orders of
// magnitude below N.

#include <iostream>

#include "analysis/feedback_model.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig04_expected_feedback,
               "Figure 4: expected feedback messages vs window and n",
               tfmcc::param("n_estimate", 10000.0,
                            "sender's receiver-count estimate N", 1.0)) {
  using namespace tfmcc;

  bench::figure_header(opts.out(), "Figure 4", "Expected number of feedback messages");

  FeedbackTimerConfig cfg;
  cfg.method = BiasMethod::kUnbiased;  // worst case: x identical at all receivers
  cfg.n_estimate = opts.param_or("n_estimate", 10000.0);

  CsvWriter csv(opts.out(), {"t_prime_rtts", "n", "expected_messages"});
  double at_t3_n100 = 0, at_t2_n100000 = 0, at_t6_n10 = 0;
  for (double t_prime : {2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0}) {
    for (int n : {1, 10, 100, 1000, 10000, 100000}) {
      const double m =
          feedback_model::expected_messages(n, t_prime, 1.0, 0.0, cfg);
      csv.row(t_prime, n, m);
      if (t_prime == 3.0 && n == 100) at_t3_n100 = m;
      if (t_prime == 2.0 && n == 100000) at_t2_n100000 = m;
      if (t_prime == 6.0 && n == 10) at_t6_n10 = m;
    }
  }

  bench::check(opts.out(), at_t3_n100 >= 2.0 && at_t3_n100 <= 40.0,
               "T'=3, n=100: a moderate number of responses (not 1-2, not "
               "an implosion)");
  bench::check(opts.out(), at_t2_n100000 > 60.0,
               "short windows + n >> expectations give many duplicates");
  bench::check(opts.out(), at_t6_n10 < 6.0,
               "long windows with few receivers approach a single response");
  return 0;
}
