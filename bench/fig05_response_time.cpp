// Figure 5: feedback response time (in RTTs) vs number of receivers for
// unbiased exponential timers, the basic offset bias, and the modified
// offset bias.
//
// Paper claims: response time decreases ~logarithmically in n for all
// three; the differences between the methods are small, with the modified
// offset having a slight edge.

#include <iostream>

#include "analysis/feedback_round.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig05_response_time,
               "Figure 5: feedback response time vs receiver count",
               tfmcc::param("trials", 60, "Monte-Carlo trials per point", 1),
               tfmcc::param("n_max", 10000,
                            "skip receiver counts above this", 1)) {
  using namespace tfmcc;
  namespace fr = feedback_round;

  bench::figure_header(opts.out(), "Figure 5", "Feedback delay of the biasing methods");

  const int kTrials = opts.param_or("trials", 60);
  const int n_max = opts.param_or("n_max", 10000);
  Rng root{opts.seed_or(11)};
  const BiasMethod methods[3] = {BiasMethod::kUnbiased, BiasMethod::kOffset,
                                 BiasMethod::kModifiedOffset};

  CsvWriter csv(opts.out(),
                {"n", "unbiased_exponential", "basic_offset", "modified_offset"});
  // first_at_10000 tracks the largest receiver count actually swept.
  double first_at_10 = 0, first_at_10000 = 0;
  int n_largest = 0;
  for (int n : {1, 10, 100, 1000, 10000}) {
    if (n > n_max) continue;
    n_largest = n;
    double avg[3] = {0, 0, 0};
    for (int t = 0; t < kTrials; ++t) {
      Rng r = root.substream(static_cast<std::uint64_t>(n) * 1000 +
                             static_cast<std::uint64_t>(t));
      const auto values = fr::uniform_values(n, 0.0, 1.0, r);
      for (int m = 0; m < 3; ++m) {
        fr::RoundConfig cfg;
        cfg.timer.method = methods[m];
        cfg.delta = 1.0;  // isolate the timer distribution (as in fig. 6)
        Rng rr = r.substream(static_cast<std::uint64_t>(m));
        avg[m] += fr::simulate(values, cfg, rr).first_time;
      }
    }
    for (double& a : avg) a /= kTrials;
    csv.row(n, avg[0], avg[1], avg[2]);
    if (n == 10) first_at_10 = avg[0];
    first_at_10000 = avg[0];
  }

  if (n_largest > 10) {
    // Meaningless (trivially equal) when the sweep is capped at n <= 10.
    bench::check(opts.out(), first_at_10000 < first_at_10,
                 "response time decreases with the number of receivers");
  }
  bench::check(opts.out(), first_at_10 < 5.0, "feedback arrives within the round");
  return 0;
}
