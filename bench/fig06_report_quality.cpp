// Figure 6: quality of the reported rate vs number of receivers — the
// relative amount by which the lowest rate reported in one feedback round
// exceeds the true lowest rate of the receiver set.
//
// Paper claims: plain exponential timers deviate by ~20% on average; the
// offset methods stay within a few percent, with the modified offset
// (truncated/normalised x) the best.

#include <iostream>

#include "analysis/feedback_round.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig06_report_quality,
               "Figure 6: quality of the reported rate vs receiver count",
               tfmcc::param("trials", 120, "Monte-Carlo trials per point", 1),
               tfmcc::param("n_max", 10000,
                            "skip receiver counts above this", 1)) {
  using namespace tfmcc;
  namespace fr = feedback_round;

  bench::figure_header(opts.out(), "Figure 6", "Quality of the reported rate");

  const int kTrials = opts.param_or("trials", 120);
  const int n_max = opts.param_or("n_max", 10000);
  Rng root{opts.seed_or(13)};
  const BiasMethod methods[3] = {BiasMethod::kUnbiased, BiasMethod::kOffset,
                                 BiasMethod::kModifiedOffset};

  CsvWriter csv(opts.out(),
                {"n", "unbiased_exponential", "basic_offset", "modified_offset"});
  double unbiased_large = 0, offset_large = 0, modified_large = 0;
  int large_count = 0;
  double err_last[3] = {0, 0, 0};
  for (int n : {10, 100, 1000, 10000}) {
    if (n > n_max) continue;
    double err[3] = {0, 0, 0};
    for (int t = 0; t < kTrials; ++t) {
      Rng r = root.substream(static_cast<std::uint64_t>(n) * 1000 +
                             static_cast<std::uint64_t>(t));
      // Rate ratios in the operationally meaningful band: congested
      // receivers compute rates somewhat below the sending rate.  This is
      // the regime the modified offset's truncation to [0.5, 0.9] is
      // designed for (§2.5.1).
      const auto values = fr::uniform_values(n, 0.45, 1.0, r);
      for (int m = 0; m < 3; ++m) {
        fr::RoundConfig cfg;
        cfg.timer.method = methods[m];
        cfg.delta = 1.0;  // isolate the biasing (any echo suppresses)
        Rng rr = r.substream(static_cast<std::uint64_t>(m));
        const auto res = fr::simulate(values, cfg, rr);
        // Relative excess over the true minimum, as in the paper's y-axis.
        err[m] += (res.best_value - res.true_min) / res.true_min;
      }
    }
    for (double& e : err) e /= kTrials;
    csv.row(n, err[0], err[1], err[2]);
    for (int m = 0; m < 3; ++m) err_last[m] = err[m];
    if (n >= 1000) {
      unbiased_large += err[0];
      offset_large += err[1];
      modified_large += err[2];
      ++large_count;
    }
  }
  if (large_count == 0) {
    // Capped sweep never reached the large regime; judge the largest n run.
    unbiased_large = err_last[0];
    offset_large = err_last[1];
    modified_large = err_last[2];
    large_count = 1;
  }
  unbiased_large /= large_count;
  offset_large /= large_count;
  modified_large /= large_count;

  bench::check(opts.out(), unbiased_large > 0.10,
               "plain exponential timers report ~20% above the minimum");
  bench::check(opts.out(), offset_large < 0.5 * unbiased_large,
               "offset bias much closer to the true minimum");
  bench::check(opts.out(), modified_large <= offset_large + 0.01,
               "modified offset at least as good as the basic offset");
  return 0;
}
