// Figure 7: TFMCC throughput vs receiver count under independent loss —
// the loss-path-multiplicity scaling limit of §3.  Two receiver-set
// compositions: constant 10% loss everywhere, and the stratified
// distribution (few high-loss receivers, the majority at 0.5-2%).
//
// Paper claims: at n = 10^4 the constant-loss case achieves only a small
// fraction of the fair rate (the paper's protocol-in-the-loop measurement
// was ~1/6), while the stratified case loses only ~30%.  Our standalone
// model tracks the *instantaneous* minimum of the estimators, which is
// harsher than the live protocol (feedback delay and CLR stickiness smooth
// the minimum); EXPERIMENTS.md documents the quantitative difference.

#include <iostream>
#include <vector>

#include "analysis/scaling.hpp"
#include "bench_util.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

TFMCC_SCENARIO(fig07_scaling,
               "Figure 7: TFMCC throughput scaling under independent loss",
               tfmcc::param("trials", 150, "Monte-Carlo trials per point", 1),
               tfmcc::param("loss_rate", 0.1, "constant-loss case loss rate",
                            1e-6),
               tfmcc::param("n_max", 10000,
                            "skip receiver counts above this", 1),
               tfmcc::param("n_receivers", 0,
                            "evaluate this single receiver count instead of "
                            "the paper ladder 1..10^4 (0 = ladder)", 0),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  namespace sc = scaling;

  bench::figure_header(opts.out(), "Figure 7", "Scaling under independent loss");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  sc::ModelConfig cfg;
  cfg.equation = eq;
  cfg.trials = opts.param_or("trials", 150);
  const double loss_rate = opts.param_or("loss_rate", 0.1);
  const int n_max = opts.param_or("n_max", 10000);
  Rng rng{opts.seed_or(17)};

  const double fair_const_kbps =
      kbps_from_Bps(sc::fair_rate_Bps(sc::constant_losses(1, loss_rate), cfg));

  CsvWriter csv(opts.out(),
                {"n", "constant_kbps", "distrib_kbps", "distrib_fair_kbps"});
  // A sweep point pins one receiver count; the default is the paper's ladder,
  // extended past its 10^4 endpoint towards the 10^5..10^6 scaling target
  // (the extension is gated behind n_max, so default runs are unchanged).
  const int n_single = opts.param_or("n_receivers", 0);
  std::vector<int> counts{1, 10, 100, 1000, 10000, 100000, 1000000};
  if (n_single > 0) counts = {n_single};
  // "at_10k" values track the largest receiver count actually swept.
  double const_at_1 = 0, const_at_10k = 0, strat_ratio_at_10k = 0;
  for (int n : counts) {
    if (n > n_max) continue;
    const double c_kbps = kbps_from_Bps(sc::expected_min_rate_Bps(
        sc::constant_losses(n, loss_rate), cfg, rng));
    const auto strat = sc::stratified_losses(n, rng);
    const double s_kbps =
        kbps_from_Bps(sc::expected_min_rate_Bps(strat, cfg, rng));
    const double s_fair = kbps_from_Bps(sc::fair_rate_Bps(strat, cfg));
    csv.row(n, c_kbps, s_kbps, s_fair);
    if (n == 1) const_at_1 = c_kbps;
    const_at_10k = c_kbps;
    strat_ratio_at_10k = s_kbps / s_fair;
  }

  bench::check(opts.out(), const_at_1 > 200 && const_at_1 < 400,
               "single receiver at 10% loss, 50 ms RTT: fair rate ~300 kbit/s");
  bench::check(opts.out(), const_at_10k < const_at_1 / 3.0,
               "constant loss: severe degradation by n = 10^4");
  bench::check(opts.out(), strat_ratio_at_10k > 0.4,
               "stratified loss: only mild degradation at n = 10^4");
  bench::note(opts.out(), "fair rate (constant) = " + std::to_string(fair_const_kbps) +
              " kbit/s; measured n=1 " + std::to_string(const_at_1) +
              ", n=10^4 " + std::to_string(const_at_10k) + " kbit/s");
  return 0;
}
