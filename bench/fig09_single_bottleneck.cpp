// Figure 9: one TFMCC flow and 15 TCP flows over a single 8 Mbit/s
// bottleneck; per-second throughput of TFMCC and two sample TCPs over
// t = 60..200 s.
//
// Paper claims: TFMCC's average closely matches the average TCP
// throughput, with a visibly smoother rate.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig09_single_bottleneck,
               "Figure 9: 1 TFMCC + 15 TCP over one 8 Mbit/s bottleneck",
               tfmcc::param("n_receivers", 4, "TFMCC receiver count", 1),
               tfmcc::param("n_tcp", 15, "competing TCP flows", 1),
               tfmcc::param("bottleneck_bps", 8e6, "shared bottleneck rate",
                            1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 9",
                       "1 TFMCC + 15 TCP over a single 8 Mbit/s bottleneck");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const SimTime T = opts.duration_or(200_sec);
  const SimTime warmup = bench::warmup(60_sec, T);
  const int n_tcp = opts.param_or("n_tcp", 15);

  bench::SharedBottleneck s{opts.param_or("bottleneck_bps", 8e6), 18_ms,
                            opts.param_or("n_receivers", 4), n_tcp,
                            opts.seed_or(91), 50, cfg};
  s.start_all();
  s.sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", s.tfmcc->goodput(0), warmup, T);
  bench::emit_series(csv, "TCP 1", s.tcp[0]->goodput, warmup, T);
  if (n_tcp > 1) {
    bench::emit_series(csv, "TCP 2", s.tcp[1]->goodput, warmup, T);
  }

  const double tfmcc_kbps = s.tfmcc->goodput(0).mean_kbps(warmup, T);
  const double tcp_kbps = s.tcp_mean_kbps(warmup, T);
  const double cov_tfmcc = bench::trace_cov(s.tfmcc->goodput(0), warmup, T);
  double cov_tcp = 0;
  for (const auto& t : s.tcp) cov_tcp += bench::trace_cov(t->goodput, warmup, T);
  cov_tcp /= static_cast<double>(s.tcp.size());

  bench::note(opts.out(), "TFMCC " + std::to_string(tfmcc_kbps) + " kbit/s vs TCP avg " +
              std::to_string(tcp_kbps) + " kbit/s (fair share 500); CoV " +
              std::to_string(cov_tfmcc) + " vs " + std::to_string(cov_tcp));
  bench::check(opts.out(), tfmcc_kbps > tcp_kbps / 2.5 && tfmcc_kbps < tcp_kbps * 2.5,
               "TFMCC average close to the average TCP throughput");
  bench::check(opts.out(), cov_tfmcc < cov_tcp,
               "TFMCC achieves a smoother rate than TCP");
  return 0;
}
