// Figure 10: one TFMCC flow with 16 receivers, each behind its own
// 1 Mbit/s tail circuit shared with a dedicated TCP flow.
//
// Paper claims: with separate last-hop bottlenecks the §3 throughput
// degradation appears and TFMCC achieves only ~70% of TCP's throughput.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig10_individual_bottlenecks,
               "Figure 10: TFMCC vs TCP on individual 1 Mbit/s tails",
               tfmcc::param("n_tails", 16, "per-receiver tail circuits", 1),
               tfmcc::param("tail_bps", 1e6, "tail circuit rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 10",
                       "1 TFMCC vs 16 TCP flows on individual 1 Mbit/s tails");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const SimTime T = opts.duration_or(200_sec);
  const SimTime warmup = bench::warmup(60_sec, T);
  const int kTails = opts.param_or("n_tails", 16);
  Simulator sim{opts.seed_or(101)};
  Topology topo{sim};

  // Left side: the TFMCC source and 16 TCP sources behind a fat trunk.
  LinkConfig fat;
  fat.jitter = bench::kPhaseJitter;
  fat.rate_bps = 1e9;
  fat.delay = 2_ms;
  LinkConfig tail;
  tail.jitter = bench::kPhaseJitter;
  tail.rate_bps = opts.param_or("tail_bps", 1e6);
  tail.delay = 18_ms;
  tail.queue_limit_packets = 15;

  const NodeId router = topo.add_node();
  const NodeId src = topo.add_node();
  topo.add_duplex_link(src, router, fat);
  std::vector<NodeId> tcp_src(static_cast<size_t>(kTails)),
      sink(static_cast<size_t>(kTails));
  for (int i = 0; i < kTails; ++i) {
    tcp_src[static_cast<size_t>(i)] = topo.add_node();
    topo.add_duplex_link(tcp_src[static_cast<size_t>(i)], router, fat);
    sink[static_cast<size_t>(i)] = topo.add_node();
    topo.add_duplex_link(router, sink[static_cast<size_t>(i)], tail);
  }
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, src, cfg};
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < kTails; ++i) {
    tfmcc.add_joined_receiver(sink[static_cast<size_t>(i)]);
    tcp.push_back(std::make_unique<TcpFlow>(sim, topo, tcp_src[static_cast<size_t>(i)],
                                            sink[static_cast<size_t>(i)], i));
  }
  tfmcc.sender().start(SimTime::zero());
  for (int i = 0; i < kTails; ++i) tcp[static_cast<size_t>(i)]->start(SimTime::millis(41 * i));
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", tfmcc.goodput(0), warmup, T);
  bench::emit_series(csv, "TCP 1", tcp[0]->goodput, warmup, T);
  if (kTails > 1) {
    bench::emit_series(csv, "TCP 2", tcp[1]->goodput, warmup, T);
  }

  const double tfmcc_kbps = tfmcc.goodput(0).mean_kbps(warmup, T);
  double tcp_kbps = 0;
  for (const auto& t : tcp) tcp_kbps += t->mean_kbps(warmup, T);
  tcp_kbps /= kTails;

  const double ratio = tfmcc_kbps / tcp_kbps;
  bench::note(opts.out(), "TFMCC " + std::to_string(tfmcc_kbps) + " kbit/s, TCP avg " +
              std::to_string(tcp_kbps) + " kbit/s, ratio " +
              std::to_string(ratio) + " (paper: ~0.7)");
  bench::check(opts.out(), ratio < 1.0,
               "independent tail bottlenecks degrade TFMCC below TCP");
  bench::check(opts.out(), ratio > 0.3, "degradation is bounded (no collapse)");
  return 0;
}
