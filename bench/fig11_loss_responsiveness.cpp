// Figure 11: responsiveness to changes in the loss rate.  Star topology,
// four receivers behind links with loss rates 0.1%, 0.5%, 2.5% and 12.5%
// (60 ms RTT).  Receivers join in order of loss rate at t = 100, 150, 200,
// 250 s and leave in reverse order at 300, 350 s...; a TCP flow to each
// receiver runs throughout for comparison.
//
// Paper claims: TFMCC steps down to each new CLR's TCP-fair level within
// seconds of a join (one to three seconds of suppression delay early on)
// and steps back up on leaves.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig11_loss_responsiveness,
               "Figure 11: responsiveness to changes in the loss rate",
               tfmcc::param("loss1", 0.001, "loss rate of receiver 1's leaf", 0.0),
               tfmcc::param("loss2", 0.005, "loss rate of receiver 2's leaf", 0.0),
               tfmcc::param("loss3", 0.025, "loss rate of receiver 3's leaf", 0.0),
               tfmcc::param("loss4", 0.125, "loss rate of receiver 4's leaf", 0.0),
               tfmcc::param("trunk_bps", 20e6, "trunk/leaf link rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 11", "Responsiveness to changes in loss rate");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;

  // The join/leave schedule is scripted on the paper's 400 s timeline and
  // rescaled proportionally onto the requested horizon, so short runs still
  // fire every join and leave.
  const SimTime kRefT = 400_sec;
  const SimTime T = opts.duration_or(kRefT);
  const double kLoss[4] = {
      opts.param_or("loss1", 0.001), opts.param_or("loss2", 0.005),
      opts.param_or("loss3", 0.025), opts.param_or("loss4", 0.125)};
  const double trunk_bps = opts.param_or("trunk_bps", 20e6);
  Simulator sim{opts.seed_or(111)};
  Topology topo{sim};

  LinkConfig trunk;
  trunk.jitter = bench::kPhaseJitter;
  trunk.rate_bps = trunk_bps;
  trunk.delay = 10_ms;
  std::vector<LinkConfig> leaves(4);
  for (int i = 0; i < 4; ++i) {
    leaves[static_cast<size_t>(i)].rate_bps = trunk_bps;
    leaves[static_cast<size_t>(i)].delay = 20_ms;
    leaves[static_cast<size_t>(i)].loss_rate = kLoss[static_cast<size_t>(i)];
  }
  Star star = make_star(topo, trunk, leaves);
  // TCP comparison flows need their own sources so only the lossy leaf
  // links are shared.
  std::vector<NodeId> tcp_src(4);
  for (int i = 0; i < 4; ++i) {
    tcp_src[static_cast<size_t>(i)] = topo.add_node();
    topo.add_duplex_link(tcp_src[static_cast<size_t>(i)], star.hub, trunk);
  }
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, star.sender, cfg};
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < 4; ++i) {
    tfmcc.add_receiver(star.leaves[static_cast<size_t>(i)]);
    tcp.push_back(std::make_unique<TcpFlow>(sim, topo, tcp_src[static_cast<size_t>(i)],
                                            star.leaves[static_cast<size_t>(i)], i));
    tcp.back()->start(SimTime::millis(41 * i));
  }
  // Receiver 0 (lowest loss) is present from the start.
  tfmcc.receiver(0).join();
  tfmcc.sender().start(SimTime::zero());

  // Joins at 100/150/200 s; leaves at 250/300/350 s (reverse order) — on
  // the reference timeline, warped onto [0, T].
  ScheduleBuilder sched{sim, kRefT, T};
  for (int i = 1; i < 4; ++i) {
    sched.at(SimTime::seconds(50.0 + 50.0 * i),
             [&tfmcc, i] { tfmcc.receiver(i).join(); });
  }
  for (int i = 3; i >= 1; --i) {
    sched.at(SimTime::seconds(250.0 + 50.0 * (3 - i)),
             [&tfmcc, i] { tfmcc.receiver(i).leave(); });
  }
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", tfmcc.goodput(0), 0_sec, T);
  for (int i = 0; i < 4; ++i) {
    bench::emit_series(csv, "TCP " + std::to_string(i + 1),
                       tcp[static_cast<size_t>(i)]->goodput, 0_sec, T);
  }

  // Epoch means: receiver k joined during [100+50(k-1), 100+50k) on the
  // reference timeline; the windows warp with the schedule.
  const auto w = [&sched](double s) { return sched.warped(SimTime::seconds(s)); };
  const double e0 = tfmcc.goodput(0).mean_kbps(w(60), w(100));    // only r0
  const double e1 = tfmcc.goodput(0).mean_kbps(w(110), w(150));   // + r1
  const double e2 = tfmcc.goodput(0).mean_kbps(w(160), w(200));   // + r2
  const double e3 = tfmcc.goodput(0).mean_kbps(w(210), w(250));   // + r3
  const double back = tfmcc.goodput(0).mean_kbps(w(370), w(400)); // only r0

  bench::note(opts.out(), "epoch means (kbit/s): r0=" + std::to_string(e0) +
              " +r1=" + std::to_string(e1) + " +r2=" + std::to_string(e2) +
              " +r3=" + std::to_string(e3) + " after leaves=" +
              std::to_string(back));
  bench::note_schedule(opts.out(), sched);
  bench::check(opts.out(), e1 < e0 && e2 < e1 && e3 < e2,
               "each join steps the rate down to the new worst receiver");
  bench::check(opts.out(), back > 2.0 * e3, "rate recovers after the lossy receivers leave");
  const double tcp3 = tcp[3]->mean_kbps(w(210), w(250));
  bench::check(opts.out(), e3 > tcp3 / 3.0 && e3 < tcp3 * 3.0,
               "TFMCC tracks the 12.5%-loss receiver's TCP-fair rate");
  const double tcp2 = tcp[2]->mean_kbps(w(160), w(200));
  bench::check(opts.out(), e2 > tcp2 / 3.0 && e2 < tcp2 * 3.0,
               "TFMCC tracks the 2.5%-loss receiver's TCP-fair rate");
  return 0;
}
