// Figure 12: rate of initial RTT measurements.  1000 receivers behind one
// bottleneck (highly correlated loss — the worst case, since every
// receiver's report is equally urgent), link RTTs spread over 60..140 ms,
// initial RTT 500 ms.
//
// Paper claims: initially the number of receivers acquiring an RTT per
// feedback round matches the expected number of feedback messages, then
// decays towards one new measurement per round (the per-round echo
// priority guarantees at least one).

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig12_rtt_acquisition,
               "Figure 12: rate of initial RTT measurements, 1000 receivers",
               tfmcc::param("n_receivers", 1000, "receiver-set size", 1),
               tfmcc::param("bottleneck_bps", 500e3, "bottleneck rate", 1e3),
               tfmcc::param("sample_period_s", 5, "sampling interval", 1),
               tfmcc::param("full_receivers", 16,
                            "hybrid mode: receivers simulated as full agents",
                            1),
               tfmcc::param("model_taps", 4,
                            "hybrid mode: modeled-receiver blocks (tap nodes)",
                            1),
               tfmcc::bench::receiver_model_param(),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 12", "Rate of initial RTT measurements");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const bench::ReceiverModel model = bench::selected_receiver_model(opts);
  if (model == bench::ReceiverModel::kUnknown) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const int horizon_s =
      static_cast<int>(opts.duration_or(200_sec).to_seconds());
  const int kReceivers = opts.param_or("n_receivers", 1000);
  const int sample_period = opts.param_or("sample_period_s", 5);
  Simulator sim{opts.seed_or(121)};
  Topology topo{sim};

  LinkConfig bn;
  bn.jitter = bench::kPhaseJitter;
  bn.rate_bps = opts.param_or("bottleneck_bps", 500e3);
  bn.delay = 20_ms;
  bn.queue_limit_packets = 20;
  LinkConfig acc;
  acc.jitter = bench::kPhaseJitter;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const NodeId src = topo.add_node();
  const NodeId left = topo.add_node();
  const NodeId right = topo.add_node();
  topo.add_duplex_link(src, left, acc);
  topo.add_duplex_link(left, right, bn);
  Rng delay_rng{opts.seed_or(121) * 10 + 2};
  // Hybrid tier split: the first `full_receivers` stay full agents, the
  // rest ride in modeled SoA blocks on `model_taps` tap nodes.  Full mode
  // keeps every receiver a full agent (the golden default).
  const int n_full = model == bench::ReceiverModel::kFull
                         ? kReceivers
                         : std::min(kReceivers,
                                    opts.param_or("full_receivers", 16));
  const int n_model = kReceivers - n_full;
  std::vector<NodeId> hosts(static_cast<size_t>(n_full));
  for (int i = 0; i < n_full; ++i) {
    hosts[static_cast<size_t>(i)] = topo.add_node();
    LinkConfig a = acc;
    // Spread one-way access delays so path RTTs cover ~60..140 ms.
    a.delay = SimTime::millis(delay_rng.uniform_int(8, 48));
    topo.add_duplex_link(right, hosts[static_cast<size_t>(i)], a);
  }
  std::vector<NodeId> taps;
  if (n_model > 0) {
    const int n_taps =
        std::clamp(opts.param_or("model_taps", 4), 1, n_model);
    for (int t = 0; t < n_taps; ++t) {
      LinkConfig a = acc;
      a.delay = 8_ms;  // virtual access detours add the 0..40 ms spread
      taps.push_back(topo.add_node());
      topo.add_duplex_link(right, taps.back(), a);
    }
  }
  topo.compute_routes();

  TfmccFlow flow{sim, topo, src, cfg};
  for (int i = 0; i < n_full; ++i) flow.add_joined_receiver(hosts[static_cast<size_t>(i)]);
  for (std::size_t t = 0; t < taps.size(); ++t) {
    // Spread the modeled population over the taps, remainder on the first.
    const int per = n_model / static_cast<int>(taps.size());
    const int extra = t == 0 ? n_model % static_cast<int>(taps.size()) : 0;
    const int b = flow.add_modeled_block(taps[t], per + extra,
                                         SimTime::zero(), 40_ms);
    flow.block(b).join();
  }
  flow.sender().start(SimTime::zero());
  if (n_model > 0) {
    bench::note(opts.out(),
                "hybrid tier: " + std::to_string(n_full) + " full + " +
                    std::to_string(n_model) + " modeled receivers on " +
                    std::to_string(taps.size()) + " taps (candidate cap " +
                    std::to_string(flow.block(0).candidate_cap()) + ")");
  }

  CsvWriter csv(opts.out(), {"time_s", "receivers_with_valid_rtt"});
  std::vector<int> samples;
  for (int t = 0; t <= horizon_s; t += sample_period) {
    sim.run_until(SimTime::seconds(static_cast<double>(t)));
    const int acquired = flow.receivers_with_rtt();
    csv.row(t, acquired);
    samples.push_back(acquired);
  }

  // Checkpoints at 10% / 50% / 100% of the horizon (20/100/200 s at the
  // paper's 200 s default), so shortened --duration runs check the same
  // acquisition shape instead of reading zeros at fixed times.
  const int at_early = samples[samples.size() / 10];
  const int at_mid = samples[samples.size() / 2];
  const int at_end = samples.back();
  const int early_s = sample_period * static_cast<int>(samples.size() / 10);

  const double rounds = std::max(1.0, static_cast<double>(flow.sender().round()));
  bench::note(opts.out(), "rounds: " + std::to_string(flow.sender().round()) +
              ", feedback messages: " +
              std::to_string(flow.sender().feedback_received()) +
              " (avg " +
              std::to_string(flow.sender().feedback_received() / rounds) +
              "/round); acquired @" + std::to_string(early_s) + "s=" +
              std::to_string(at_early) + " @" +
              std::to_string(sample_period *
                             static_cast<int>(samples.size() / 2)) +
              "s=" + std::to_string(at_mid) + " @" + std::to_string(horizon_s) +
              "s=" + std::to_string(at_end));
  bench::check(opts.out(), at_early > 0, "acquisition starts in the first rounds");
  bench::check(opts.out(), at_mid > at_early && at_end >= at_mid,
               "acquisition continues steadily (>= 1 per round)");
  bench::check(opts.out(), at_early < kReceivers / 4,
               "correlated loss keeps early acquisition gradual: bounded by "
               "the per-round feedback count, not instant");
  const double early_rate = at_early / std::max(1.0, rounds * 0.1);
  bench::note(opts.out(), "early acquisition per round ~ " + std::to_string(early_rate));
  return 0;
}
