// Figure 12: rate of initial RTT measurements.  1000 receivers behind one
// bottleneck (highly correlated loss — the worst case, since every
// receiver's report is equally urgent), link RTTs spread over 60..140 ms,
// initial RTT 500 ms.
//
// Paper claims: initially the number of receivers acquiring an RTT per
// feedback round matches the expected number of feedback messages, then
// decays towards one new measurement per round (the per-round echo
// priority guarantees at least one).

#include <iostream>

#include "scenario_util.hpp"

int main() {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header("Figure 12", "Rate of initial RTT measurements");

  const int kReceivers = 1000;
  Simulator sim{121};
  Topology topo{sim};

  LinkConfig bn;
  bn.jitter = bench::kPhaseJitter;
  bn.rate_bps = 500e3;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 20;
  LinkConfig acc;
  acc.jitter = bench::kPhaseJitter;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const NodeId src = topo.add_node();
  const NodeId left = topo.add_node();
  const NodeId right = topo.add_node();
  topo.add_duplex_link(src, left, acc);
  topo.add_duplex_link(left, right, bn);
  Rng delay_rng{1212};
  std::vector<NodeId> hosts(kReceivers);
  for (int i = 0; i < kReceivers; ++i) {
    hosts[static_cast<size_t>(i)] = topo.add_node();
    LinkConfig a = acc;
    // Spread one-way access delays so path RTTs cover ~60..140 ms.
    a.delay = SimTime::millis(delay_rng.uniform_int(8, 48));
    topo.add_duplex_link(right, hosts[static_cast<size_t>(i)], a);
  }
  topo.compute_routes();

  TfmccFlow flow{sim, topo, src};
  for (int i = 0; i < kReceivers; ++i) flow.add_joined_receiver(hosts[static_cast<size_t>(i)]);
  flow.sender().start(SimTime::zero());

  CsvWriter csv(std::cout, {"time_s", "receivers_with_valid_rtt"});
  int at_20 = 0, at_100 = 0, at_200 = 0;
  for (int t = 0; t <= 200; t += 5) {
    sim.run_until(SimTime::seconds(static_cast<double>(t)));
    const int acquired = flow.receivers_with_rtt();
    csv.row(t, acquired);
    if (t == 20) at_20 = acquired;
    if (t == 100) at_100 = acquired;
    if (t == 200) at_200 = acquired;
  }

  const double rounds = std::max(1.0, static_cast<double>(flow.sender().round()));
  bench::note("rounds: " + std::to_string(flow.sender().round()) +
              ", feedback messages: " +
              std::to_string(flow.sender().feedback_received()) +
              " (avg " +
              std::to_string(flow.sender().feedback_received() / rounds) +
              "/round); acquired @20s=" + std::to_string(at_20) + " @100s=" +
              std::to_string(at_100) + " @200s=" + std::to_string(at_200));
  bench::check(at_20 > 0, "acquisition starts in the first rounds");
  bench::check(at_100 > at_20 && at_200 >= at_100,
               "acquisition continues steadily (>= 1 per round)");
  bench::check(at_20 < kReceivers / 4,
               "correlated loss keeps early acquisition gradual: bounded by "
               "the per-round feedback count, not instant");
  const double early_rate = at_20 / std::max(1.0, rounds * 20.0 / 200.0);
  bench::note("early acquisition per round ~ " + std::to_string(early_rate));
  return 0;
}
