// Figure 13: responsiveness to changes in the RTT.  n receivers with
// independent equal loss; at time t one receiver's path delay increases
// 10x, making it the correct CLR.  The plot shows the delay until the
// sender actually selects it, as a function of when the change happens —
// the later the change, the more receivers already have valid RTT
// estimates, the faster the reaction.
//
// Receiver-set sizes: 40 and 200 with the full change-time sweep; 1000
// with a reduced sweep (runtime).  The change-time script lives on a
// reference timeline of 230 s (last change at 80 s + 150 s reaction
// window) and warps proportionally with --duration.

#include <iostream>

#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

double measure_reaction(int n_receivers, SimTime change_at, SimTime deadline_w,
                        double loss_rate, std::uint64_t seed,
                        const TfmccConfig& cfg) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.jitter = bench::kPhaseJitter;
  trunk.rate_bps = 1e9;
  trunk.delay = 5_ms;
  std::vector<LinkConfig> leaves(static_cast<size_t>(n_receivers));
  for (auto& l : leaves) {
    l.rate_bps = 1e9;
    l.delay = 15_ms;          // base RTT 40 ms
    l.loss_rate = loss_rate;  // independent loss, same probability everywhere
  }
  Star star = make_star(topo, trunk, leaves);
  TfmccFlow flow{sim, topo, star.sender, cfg};
  for (int i = 0; i < n_receivers; ++i) {
    flow.add_joined_receiver(star.leaves[static_cast<size_t>(i)]);
  }
  flow.sender().start(SimTime::zero());

  const int target = 1;  // receiver whose RTT will jump
  sim.run_until(change_at);
  star.leaf_links[static_cast<size_t>(target)].first->set_delay(150_ms);
  star.leaf_links[static_cast<size_t>(target)].second->set_delay(150_ms);

  // Run until the sender selects the target as CLR (poll at 100 ms).
  const SimTime deadline = change_at + deadline_w;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + 100_ms);
    if (flow.sender().clr() == target) {
      return (sim.now() - change_at).to_seconds();
    }
  }
  return -1.0;  // not reacted within the window
}

}  // namespace

TFMCC_SCENARIO(fig13_rtt_change,
               "Figure 13: responsiveness to changes in the RTT",
               tfmcc::param("loss_rate", 0.02, "independent leaf loss rate", 0.0),
               tfmcc::param("n_max", 1000,
                            "skip receiver-set sizes above this", 1),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;

  figure_header(opts.out(), "Figure 13", "Responsiveness to changes in the RTT");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  tfmcc::TfmccConfig cfg;
  cfg.equation = eq;
  const std::uint64_t seed = opts.seed_or(131);
  const double loss_rate = opts.param_or("loss_rate", 0.02);
  const int n_max = opts.param_or("n_max", 1000);
  const tfmcc::TimeWarp warp{230_sec, opts.duration_or(230_sec)};
  const tfmcc::SimTime deadline_w = warp(150_sec);
  tfmcc::CsvWriter csv(opts.out(), {"n", "time_of_change_s", "reaction_delay_s"});
  double d40_early = -1, d40_late = -1, d200_early = -1, d1000 = -1;
  for (const double t : {0.0, 10.0, 20.0, 40.0, 80.0}) {
    const tfmcc::SimTime at = warp(tfmcc::SimTime::seconds(t));
    if (n_max >= 40) {
      const double d40 =
          measure_reaction(40, at, deadline_w, loss_rate, seed, cfg);
      csv.row(40, at.to_seconds(), d40);
      if (t == 0.0) d40_early = d40;
      if (t == 80.0) d40_late = d40;
    }
    if (n_max >= 200) {
      const double d200 =
          measure_reaction(200, at, deadline_w, loss_rate, seed + 1, cfg);
      csv.row(200, at.to_seconds(), d200);
      if (t == 0.0) d200_early = d200;
    }
  }
  if (n_max >= 1000) {
    d1000 = measure_reaction(1000, warp(40_sec), deadline_w, loss_rate,
                             seed + 2, cfg);
    csv.row(1000, warp(40_sec).to_seconds(), d1000);
  }

  if (n_max >= 1000) {
    check(opts.out(), d40_early > 0 && d200_early > 0 && d1000 > 0,
          "the high-RTT receiver is found in every configuration");
  } else if (n_max >= 40) {
    check(opts.out(), d40_early > 0, "the high-RTT receiver is found");
  }
  if (n_max >= 40) {
    check(opts.out(), d40_late <= d40_early,
          "later changes (more valid RTTs) are reacted to at least as fast");
  }
  // -1 means "not reacted within the window"; skipped set sizes are
  // reported as such instead of printing the sentinel as a measurement.
  std::string summary =
      n_max >= 40 ? "n=40: " + std::to_string(d40_early) + "s at t=0 vs " +
                        std::to_string(d40_late) + "s at t=80"
                  : "n=40: skipped (n_max)";
  summary += n_max >= 200
                 ? "; n=200 t=0: " + std::to_string(d200_early) + "s"
                 : "; n=200: skipped (n_max)";
  summary += n_max >= 1000
                 ? "; n=1000 t=40: " + std::to_string(d1000) + "s"
                 : "; n=1000: skipped (n_max)";
  note(opts.out(), summary);
  return 0;
}
