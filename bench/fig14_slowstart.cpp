// Figure 14: maximum slowstart rate vs receiver-set size, for (a) TFMCC
// alone on the link, (b) one competing TCP, (c) high statistical
// multiplexing (8 competing TCPs).  The fair rate is 1 Mbit/s in all
// three scenarios.
//
// Paper claims: alone, TFMCC overshoots to roughly twice the bottleneck
// bandwidth regardless of n; with competition the slowstart exit rate is
// below the fair rate, and it decreases as the receiver set grows (the
// min() over noisy receive-rate reports).

#include <iostream>

#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

double peak_slowstart_kbps(double bottleneck_bps, int n_receivers, int n_tcp,
                           std::uint64_t seed, SimTime horizon,
                           const TfmccConfig& cfg) {
  bench::SharedBottleneck s{bottleneck_bps, 18_ms, n_receivers, n_tcp, seed,
                            50, cfg};
  // TCP flows first so the link is in steady state when TFMCC probes.
  for (std::size_t i = 0; i < s.tcp.size(); ++i) {
    s.tcp[i]->start(SimTime::millis(41 * static_cast<std::int64_t>(i)));
  }
  s.tfmcc->sender().start(n_tcp > 0 ? 15_sec : SimTime::zero());
  s.sim.run_until(horizon);
  return kbps_from_Bps(s.tfmcc->sender().peak_slowstart_rate_Bps());
}

}  // namespace

TFMCC_SCENARIO(fig14_slowstart,
               "Figure 14: maximum slowstart rate vs receiver-set size",
               tfmcc::param("base_bps", 1e6, "fair rate in every variant", 1e3),
               tfmcc::param("n_max", 512,
                            "skip receiver-set sizes above this", 1),
               tfmcc::bench::equation_backend_param()) {
  using tfmcc::bench::check;
  using tfmcc::bench::figure_header;
  using tfmcc::bench::note;

  figure_header(opts.out(), "Figure 14", "Maximum slowstart rate");

  const tfmcc::EquationBackend* eq = tfmcc::bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  tfmcc::TfmccConfig cfg;
  cfg.equation = eq;
  const tfmcc::SimTime horizon = opts.duration_or(60_sec);
  const std::uint64_t seed = opts.seed_or(141);
  const double base_bps = opts.param_or("base_bps", 1e6);
  const int n_max = opts.param_or("n_max", 512);
  tfmcc::CsvWriter csv(opts.out(),
                       {"n_receivers", "only_tfmcc_kbps", "one_tcp_kbps",
                        "high_statmux_kbps", "fair_rate_kbps"});
  double alone_2 = 0, alone_512 = 0, mux_2 = 0, mux_128 = 0;
  bool have_512 = false, have_128 = false;
  for (int n : {2, 8, 32, 128, 512}) {
    if (n > n_max) continue;
    // (a) alone on a 1 Mbit/s link; (b) with 1 TCP on 2 Mbit/s;
    // (c) with 8 TCPs on 9 Mbit/s — fair share 1 Mbit/s in each.
    const double alone =
        peak_slowstart_kbps(base_bps, n, 0, seed, horizon, cfg);
    const double one =
        peak_slowstart_kbps(2 * base_bps, n, 1, seed + 1, horizon, cfg);
    const double mux =
        peak_slowstart_kbps(9 * base_bps, n, 8, seed + 2, horizon, cfg);
    csv.row(n, alone, one, mux, base_bps / 1000.0);  // link bps -> kbit/s
    if (n == 2) {
      alone_2 = alone;
      mux_2 = mux;
    }
    if (n == 512) {
      alone_512 = alone;
      have_512 = true;
    }
    if (n == 128) {
      mux_128 = mux;
      have_128 = true;
    }
  }

  check(opts.out(), alone_2 > 1000.0 && alone_2 < 2800.0,
        "alone: slowstart reaches ~2x the bottleneck bandwidth");
  if (have_512) {
    check(opts.out(), alone_512 > 800.0,
          "alone: the overshoot bound is independent of the receiver count");
  }
  if (have_128) {
    check(opts.out(), mux_128 < mux_2 * 1.2,
          "high statistical multiplexing: exit rate does not grow with n");
    check(opts.out(), mux_128 < 2000.0,
          "with competition the slowstart rate stays near/below fair");
  }
  note(opts.out(), "alone n=2: " + std::to_string(alone_2) + " kbit/s; n=512: " +
       std::to_string(alone_512) + "; high-mux n=2: " + std::to_string(mux_2) +
       ", n=128: " + std::to_string(mux_128));
  return 0;
}
