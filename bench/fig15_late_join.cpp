// Figure 15: late join of a low-rate receiver.  An 8-member TFMCC session
// and 7 TCP flows share an 8 Mbit/s bottleneck (fair rate 1 Mbit/s).  At
// t = 50 s a new receiver behind a separate 200 kbit/s tail joins; it
// leaves at t = 100 s.
//
// Paper claims: the joining receiver initially sees very high loss, but
// the loss-history initialisation (Appendix B) lets TFMCC select it as CLR
// and settle to the 200 kbit/s tail within a very few seconds; after the
// leave the rate recovers towards fair.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig15_late_join,
               "Figure 15: late join of a low-rate receiver",
               tfmcc::param("n_receivers", 8, "TFMCC receivers at the bottleneck", 1),
               tfmcc::param("n_tcp", 7, "competing TCP flows", 0),
               tfmcc::param("bottleneck_bps", 8e6, "shared bottleneck rate",
                            1e3),
               tfmcc::param("slow_bps", 200e3, "late joiner's tail rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 15", "Late join of a low-rate receiver");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  // Join at 50 s / leave at 100 s on the paper's 140 s timeline; the script
  // warps proportionally onto the requested horizon.
  const SimTime kRefT = 140_sec;
  const SimTime T = opts.duration_or(kRefT);
  bench::SharedBottleneck s{opts.param_or("bottleneck_bps", 8e6), 18_ms,
                            opts.param_or("n_receivers", 8),
                            opts.param_or("n_tcp", 7), opts.seed_or(151),
                            50, cfg};
  // Slow tail hanging off the right router.
  LinkConfig slow;
  slow.rate_bps = opts.param_or("slow_bps", 200e3);
  slow.delay = 10_ms;
  slow.queue_limit_packets = 10;
  const NodeId slow_host = s.topo.add_node();
  s.topo.add_duplex_link(s.dumbbell.right_router, slow_host, slow);
  s.topo.compute_routes();
  const int late = s.tfmcc->add_receiver(slow_host);

  s.start_all();
  ScheduleBuilder sched{s.sim, kRefT, T};
  sched.at(50_sec, [&] { s.tfmcc->receiver(late).join(); });
  sched.at(100_sec, [&] { s.tfmcc->receiver(late).leave(); });
  s.sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", s.tfmcc->goodput(0), 0_sec, T);
  // Aggregate TCP trace.
  ThroughputBinner agg{1_sec};
  for (const auto& t : s.tcp) {
    for (const auto& p : t->goodput.series_kbps().points()) {
      agg.add(p.t, static_cast<std::int64_t>(p.v * 125.0));  // kbit -> bytes/s bin
    }
  }
  bench::emit_series(csv, "aggregated TCP", agg, 0_sec, T);

  const auto w = [&sched](double sec) { return sched.warped(SimTime::seconds(sec)); };
  const double before = s.tfmcc->goodput(0).mean_kbps(w(30), w(50));
  const double during = s.tfmcc->goodput(0).mean_kbps(w(60), w(100));
  const double after = s.tfmcc->goodput(0).mean_kbps(w(120), w(140));

  bench::note(opts.out(), "TFMCC kbit/s before=" + std::to_string(before) + " during=" +
              std::to_string(during) + " after=" + std::to_string(after));
  bench::note_schedule(opts.out(), sched);
  bench::check(opts.out(), before > 400.0, "before the join TFMCC runs near fair rate");
  bench::check(opts.out(), during < 320.0 && during > 50.0,
               "during the join TFMCC settles near the 200 kbit/s tail, "
               "not zero");
  bench::check(opts.out(), after > 2.0 * during, "rate recovers after the leave");
  return 0;
}
