// Figure 16: the fig. 15 scenario with an additional TCP flow on the
// 200 kbit/s link for the whole experiment.
//
// Paper claims: when the receiver joins, the slow link is flooded and the
// TCP flow inevitably times out, but shortly afterwards TFMCC adapts and
// the 200 kbit/s link is shared fairly between TFMCC and TCP.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig16_late_join_tcp,
               "Figure 16: late join with a competing TCP on the slow link",
               tfmcc::param("n_receivers", 8, "TFMCC receivers at the bottleneck", 1),
               tfmcc::param("n_tcp", 7, "competing TCP flows", 1),
               tfmcc::param("bottleneck_bps", 8e6, "shared bottleneck rate",
                            1e3),
               tfmcc::param("slow_bps", 200e3, "late joiner's tail rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 16", "Additional TCP flow on the slow link");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const SimTime kRefT = 140_sec;
  const SimTime T = opts.duration_or(kRefT);
  bench::SharedBottleneck s{opts.param_or("bottleneck_bps", 8e6), 18_ms,
                            opts.param_or("n_receivers", 8),
                            opts.param_or("n_tcp", 7), opts.seed_or(161),
                            50, cfg};
  LinkConfig slow;
  slow.rate_bps = opts.param_or("slow_bps", 200e3);
  slow.delay = 10_ms;
  slow.queue_limit_packets = 10;
  const NodeId slow_host = s.topo.add_node();
  s.topo.add_duplex_link(s.dumbbell.right_router, slow_host, slow);
  s.topo.compute_routes();
  const int late = s.tfmcc->add_receiver(slow_host);
  // The competing TCP flow on the slow link, running the whole time,
  // sourced from the left side of the dumbbell.
  TcpFlow slow_tcp{s.sim, s.topo, s.dumbbell.left_hosts[1], slow_host, 99};

  s.start_all();
  slow_tcp.start(1_sec);
  ScheduleBuilder sched{s.sim, kRefT, T};
  sched.at(50_sec, [&] { s.tfmcc->receiver(late).join(); });
  sched.at(100_sec, [&] { s.tfmcc->receiver(late).leave(); });
  s.sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", s.tfmcc->goodput(0), 0_sec, T);
  bench::emit_series(csv, "TCP on 200kbit link", slow_tcp.goodput, 0_sec, T);

  const auto w = [&sched](double sec) { return sched.warped(SimTime::seconds(sec)); };
  const double tcp_before = slow_tcp.mean_kbps(w(20), w(50));
  const double tcp_during = slow_tcp.mean_kbps(w(65), w(100));
  const double tfmcc_during = s.tfmcc->goodput(0).mean_kbps(w(65), w(100));
  const double tcp_after = slow_tcp.mean_kbps(w(110), w(140));

  bench::note(opts.out(), "slow TCP kbit/s before=" + std::to_string(tcp_before) +
              " during=" + std::to_string(tcp_during) + " after=" +
              std::to_string(tcp_after) + "; TFMCC during=" +
              std::to_string(tfmcc_during));
  bench::note_schedule(opts.out(), sched);
  bench::check(opts.out(), tcp_before > 120.0,
               "TCP alone uses most of the 200 kbit/s link before the join");
  bench::check(opts.out(), tcp_during > 30.0,
               "TCP recovers from the join-flood timeout and keeps a share");
  bench::check(opts.out(), tfmcc_during > 40.0 && tfmcc_during < 250.0,
               "TFMCC shares the slow link instead of starving or flooding");
  bench::check(opts.out(), tcp_after > tcp_during,
               "TCP reclaims bandwidth after the receiver leaves");
  return 0;
}
