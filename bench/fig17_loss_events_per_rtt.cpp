// Figure 17: loss events per RTT as a function of the loss event rate
// (Appendix A).  The curve's maximum of ~0.13 under the paper's TCP model
// is what makes the 500 ms initial RTT safe to use for loss aggregation:
// a condition with one aggregated loss event per RTT cannot persist.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "tfrc/equation.hpp"
#include "util/csv.hpp"

TFMCC_SCENARIO(fig17_loss_events_per_rtt,
               "Figure 17: loss events per RTT vs loss event rate",
               tfmcc::param("p_growth", 1.06,
                            "multiplicative step of the loss-rate sweep",
                            1.001)) {
  using namespace tfmcc;

  bench::figure_header(opts.out(), "Figure 17", "Loss events per RTT");

  // The declared minimum (1.001) keeps any accepted override loop-safe.
  const double p_growth = opts.param_or("p_growth", 1.06);
  CsvWriter csv(opts.out(), {"loss_event_rate", "events_per_rtt_b2",
                            "events_per_rtt_b1"});
  double max_b2 = 0.0, argmax_p = 0.0, max_b1 = 0.0;
  for (double p = 1e-4; p <= 1.0; p *= p_growth) {
    const double l2 = tcp_model::loss_events_per_rtt(p, 2.0);
    const double l1 = tcp_model::loss_events_per_rtt(p, 1.0);
    csv.row(p, l2, l1);
    if (l2 > max_b2) {
      max_b2 = l2;
      argmax_p = p;
    }
    max_b1 = std::max(max_b1, l1);
  }

  bench::note(opts.out(), "max events/RTT: " + std::to_string(max_b2) + " at p = " +
              std::to_string(argmax_p) + " (paper model, b=2); b=1 model: " +
              std::to_string(max_b1));
  bench::check(opts.out(), max_b2 > 0.10 && max_b2 < 0.16,
               "maximum ~0.13 loss events per RTT (paper's Appendix A value)");
  bench::check(opts.out(), max_b1 < 0.25,
               "even with b=1 the rate self-limits well below 1 event/RTT");
  bench::check(opts.out(), tcp_model::loss_events_per_rtt(1e-4, 2.0) < 0.02 &&
                   tcp_model::loss_events_per_rtt(0.9, 2.0) < max_b2,
               "curve rises from ~0 and falls beyond the maximum");
  return 0;
}
