// Figure 18 (Appendix D.1): competing traffic on the return paths.  A
// TFMCC flow and 4 TCP flows share a forward bottleneck while 0, 1, 2 and
// 4 additional bulk TCP flows congest the return paths of the respective
// receivers.
//
// Paper claims: none of the flows differ measurably from the case without
// return traffic — cumulative ACKs keep TCP robust, and TFMCC's sparse
// feedback is unaffected.

#include <iostream>

#include "scenario_util.hpp"

namespace {

using namespace tfmcc;
using namespace tfmcc::time_literals;

struct Result {
  double tfmcc_kbps;
  std::vector<double> tcp_kbps;
};

Result run(bool with_return_traffic, double bottleneck_bps, std::uint64_t seed,
           SimTime horizon, const TfmccConfig& cfg) {
  bench::SharedBottleneck s{bottleneck_bps, 18_ms, /*n_receivers=*/4,
                            /*n_tcp=*/4, seed, 50, cfg};
  // Return flows: right-to-left bulk TCP sharing the reverse bottleneck
  // with the ACK/feedback streams; 0/1/2/4 flows rooted at the four
  // receivers' hosts.
  std::vector<std::unique_ptr<TcpFlow>> reverse;
  if (with_return_traffic) {
    int id = 50;
    const int counts[4] = {0, 1, 2, 4};
    for (int r = 0; r < 4; ++r) {
      for (int k = 0; k < counts[r]; ++k) {
        reverse.push_back(std::make_unique<TcpFlow>(
            s.sim, s.topo, s.dumbbell.right_hosts[static_cast<size_t>(r)],
            s.dumbbell.left_hosts[static_cast<size_t>(1 + r)], id++));
        reverse.back()->start(SimTime::millis(13 * id));
      }
    }
  }
  s.start_all();
  s.sim.run_until(horizon);
  const SimTime warm = bench::warmup(30_sec, horizon);
  Result res;
  res.tfmcc_kbps = s.tfmcc->goodput(0).mean_kbps(warm, horizon);
  for (const auto& t : s.tcp) {
    res.tcp_kbps.push_back(t->mean_kbps(warm, horizon));
  }
  return res;
}

}  // namespace

TFMCC_SCENARIO(fig18_return_traffic,
               "Figure 18: competing bulk TCP on the feedback return paths",
               tfmcc::param("bottleneck_bps", 5e6, "forward bottleneck rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 18", "Competing traffic on return paths");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const SimTime horizon = opts.duration_or(120_sec);
  const std::uint64_t seed = opts.seed_or(181);
  const double bottleneck_bps = opts.param_or("bottleneck_bps", 5e6);
  const Result base = run(false, bottleneck_bps, seed, horizon, cfg);
  const Result loaded = run(true, bottleneck_bps, seed, horizon, cfg);

  CsvWriter csv(opts.out(), {"flow", "no_return_kbps", "with_return_kbps"});
  csv.row("TFMCC", base.tfmcc_kbps, loaded.tfmcc_kbps);
  for (int i = 0; i < 4; ++i) {
    csv.row("TCP(" + std::to_string(i == 0 ? 0 : 1 << (i - 1)) + " return)",
            base.tcp_kbps[static_cast<size_t>(i)],
            loaded.tcp_kbps[static_cast<size_t>(i)]);
  }

  bench::check(opts.out(), loaded.tfmcc_kbps > 0.6 * base.tfmcc_kbps,
               "TFMCC unaffected by return-path congestion");
  int robust_tcps = 0;
  for (int i = 0; i < 4; ++i) {
    if (loaded.tcp_kbps[static_cast<size_t>(i)] >
        0.5 * base.tcp_kbps[static_cast<size_t>(i)]) {
      ++robust_tcps;
    }
  }
  bench::check(opts.out(), robust_tcps >= 3,
               "TCP throughput holds up under moderate return congestion "
               "(cumulative ACKs)");
  return 0;
}
