// Figure 19 (Appendix D.1): lossy return paths.  Four receivers whose
// reverse links lose 0%, 10%, 20% and 30% of packets; a TCP flow to each
// receiver and a TFMCC flow with receivers at all four nodes.
//
// Paper claims: TCP throughput decreases only at very high return loss
// (cumulative ACKs), and TFMCC is insensitive to the loss of receiver
// reports.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig19_lossy_return,
               "Figure 19: lossy receiver-report return paths",
               tfmcc::param("return_loss1", 0.0, "report loss, receiver 1", 0.0),
               tfmcc::param("return_loss2", 0.1, "report loss, receiver 2", 0.0),
               tfmcc::param("return_loss3", 0.2, "report loss, receiver 3", 0.0),
               tfmcc::param("return_loss4", 0.3, "report loss, receiver 4", 0.0),
               tfmcc::param("leaf_bps", 5e6, "forward leaf rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 19", "Lossy return paths");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;

  const SimTime T = opts.duration_or(120_sec);
  const SimTime warm = bench::warmup(30_sec, T);
  const double kReturnLoss[4] = {
      opts.param_or("return_loss1", 0.0), opts.param_or("return_loss2", 0.1),
      opts.param_or("return_loss3", 0.2), opts.param_or("return_loss4", 0.3)};
  Simulator sim{opts.seed_or(191)};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.jitter = bench::kPhaseJitter;
  trunk.rate_bps = 1e9;
  trunk.delay = 5_ms;
  const NodeId hub = topo.add_node();
  const NodeId tfmcc_src = topo.add_node();
  topo.add_duplex_link(tfmcc_src, hub, trunk);
  std::vector<NodeId> tcp_src(4), leaf(4);
  for (int i = 0; i < 4; ++i) {
    tcp_src[static_cast<size_t>(i)] = topo.add_node();
    topo.add_duplex_link(tcp_src[static_cast<size_t>(i)], hub, trunk);
    leaf[static_cast<size_t>(i)] = topo.add_node();
    LinkConfig fwd;
    fwd.rate_bps = opts.param_or("leaf_bps", 5e6);
    fwd.delay = 20_ms;
    LinkConfig rev = fwd;
    rev.loss_rate = kReturnLoss[static_cast<size_t>(i)];
    topo.add_link(hub, leaf[static_cast<size_t>(i)], fwd);
    topo.add_link(leaf[static_cast<size_t>(i)], hub, rev);
  }
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, tfmcc_src, cfg};
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < 4; ++i) {
    tfmcc.add_joined_receiver(leaf[static_cast<size_t>(i)]);
    tcp.push_back(std::make_unique<TcpFlow>(sim, topo, tcp_src[static_cast<size_t>(i)],
                                            leaf[static_cast<size_t>(i)], i));
    tcp.back()->start(SimTime::millis(41 * i));
  }
  tfmcc.sender().start(SimTime::zero());
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", tfmcc.goodput(0), 0_sec, T);
  for (int i = 0; i < 4; ++i) {
    bench::emit_series(
        csv, "TCP (" + std::to_string(static_cast<int>(kReturnLoss[static_cast<size_t>(i)] * 100)) + "% loss)",
        tcp[static_cast<size_t>(i)]->goodput, 0_sec, T);
  }

  const double tfmcc_kbps = tfmcc.goodput(0).mean_kbps(warm, T);
  const double tcp0 = tcp[0]->mean_kbps(warm, T);
  const double tcp30 = tcp[3]->mean_kbps(warm, T);

  bench::note(opts.out(), "TFMCC " + std::to_string(tfmcc_kbps) + " kbit/s; TCP 0% " +
              std::to_string(tcp0) + ", TCP 30% " + std::to_string(tcp30));
  bench::check(opts.out(), tfmcc_kbps > 500.0,
               "TFMCC sustains throughput despite 30% report loss on one path");
  bench::check(opts.out(), tcp30 > 0.35 * tcp0,
               "TCP with 30% ACK loss keeps most of its throughput");
  return 0;
}
