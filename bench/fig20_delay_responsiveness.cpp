// Figure 20 (Appendix D.2): responsiveness to network delay.  The fig. 11
// setting with the loss rates replaced by per-receiver one-way link delays
// of 30, 60, 120 and 240 ms; receivers join in order of their RTT and
// leave in reverse order.
//
// Paper claims: behaviour mirrors fig. 11 — each join steps the rate down
// to the new highest-RTT receiver's TCP-fair level almost instantly (the
// receiver set is small), and the rate recovers on leaves.

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig20_delay_responsiveness,
               "Figure 20: responsiveness to per-receiver network delay",
               tfmcc::param("delay1_ms", 15, "one-way leaf delay, receiver 1", 0),
               tfmcc::param("delay2_ms", 30, "one-way leaf delay, receiver 2", 0),
               tfmcc::param("delay3_ms", 60, "one-way leaf delay, receiver 3", 0),
               tfmcc::param("delay4_ms", 120, "one-way leaf delay, receiver 4",
                            0),
               tfmcc::param("loss_rate", 0.005, "leaf loss rate (equal)", 0.0),
               tfmcc::param("trunk_bps", 20e6, "trunk/leaf link rate", 1e3),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 20", "Responsiveness to network delay");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;

  const SimTime kRefT = 400_sec;
  const SimTime T = opts.duration_or(kRefT);
  const std::int64_t kDelayMs[4] = {
      opts.param_or<std::int64_t>("delay1_ms", 15),
      opts.param_or<std::int64_t>("delay2_ms", 30),
      opts.param_or<std::int64_t>("delay3_ms", 60),
      opts.param_or<std::int64_t>("delay4_ms", 120)};  // one-way, 2 hops each
  const double loss_rate = opts.param_or("loss_rate", 0.005);
  const double trunk_bps = opts.param_or("trunk_bps", 20e6);
  Simulator sim{opts.seed_or(201)};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.jitter = bench::kPhaseJitter;
  trunk.rate_bps = trunk_bps;
  trunk.delay = 0_ms;
  std::vector<LinkConfig> leaves(4);
  for (int i = 0; i < 4; ++i) {
    leaves[static_cast<size_t>(i)].rate_bps = trunk_bps;
    leaves[static_cast<size_t>(i)].delay = SimTime::millis(kDelayMs[static_cast<size_t>(i)]);
    leaves[static_cast<size_t>(i)].loss_rate = loss_rate;  // equal loss; RTT differentiates
  }
  Star star = make_star(topo, trunk, leaves);
  std::vector<NodeId> tcp_src(4);
  for (int i = 0; i < 4; ++i) {
    tcp_src[static_cast<size_t>(i)] = topo.add_node();
    topo.add_duplex_link(tcp_src[static_cast<size_t>(i)], star.hub, trunk);
  }
  topo.compute_routes();

  TfmccFlow tfmcc{sim, topo, star.sender, cfg};
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < 4; ++i) {
    tfmcc.add_receiver(star.leaves[static_cast<size_t>(i)]);
    tcp.push_back(std::make_unique<TcpFlow>(sim, topo, tcp_src[static_cast<size_t>(i)],
                                            star.leaves[static_cast<size_t>(i)], i));
    tcp.back()->start(SimTime::millis(41 * i));
  }
  tfmcc.receiver(0).join();
  tfmcc.sender().start(SimTime::zero());
  ScheduleBuilder sched{sim, kRefT, T};
  for (int i = 1; i < 4; ++i) {
    sched.at(SimTime::seconds(50.0 + 50.0 * i),
             [&tfmcc, i] { tfmcc.receiver(i).join(); });
  }
  for (int i = 3; i >= 1; --i) {
    sched.at(SimTime::seconds(250.0 + 50.0 * (3 - i)),
             [&tfmcc, i] { tfmcc.receiver(i).leave(); });
  }
  sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", tfmcc.goodput(0), 0_sec, T);
  for (int i = 0; i < 4; ++i) {
    bench::emit_series(csv, "TCP " + std::to_string(i + 1),
                       tcp[static_cast<size_t>(i)]->goodput, 0_sec, T);
  }

  const auto w = [&sched](double s) { return sched.warped(SimTime::seconds(s)); };
  const double e0 = tfmcc.goodput(0).mean_kbps(w(60), w(100));
  const double e1 = tfmcc.goodput(0).mean_kbps(w(110), w(150));
  const double e2 = tfmcc.goodput(0).mean_kbps(w(160), w(200));
  const double e3 = tfmcc.goodput(0).mean_kbps(w(210), w(250));
  const double back = tfmcc.goodput(0).mean_kbps(w(370), w(400));

  bench::note(opts.out(), "epoch means (kbit/s): 30ms=" + std::to_string(e0) + " +60ms=" +
              std::to_string(e1) + " +120ms=" + std::to_string(e2) +
              " +240ms=" + std::to_string(e3) + " after leaves=" +
              std::to_string(back));
  bench::note_schedule(opts.out(), sched);
  bench::check(opts.out(), e1 < e0 && e2 < e1 && e3 < e2,
               "each higher-RTT join steps the rate down");
  bench::check(opts.out(), back > 1.5 * e3, "rate recovers after the high-RTT leaves");
  const double tcp3 = tcp[3]->mean_kbps(w(210), w(250));
  bench::check(opts.out(), e3 > tcp3 / 3.0 && e3 < tcp3 * 3.0,
               "TFMCC tracks the 240 ms receiver's TCP-fair rate");
  return 0;
}
