// Figure 21 (Appendix D.2): responsiveness to increased congestion.  A
// TFMCC flow runs over a 16 Mbit/s, 60 ms-RTT link; at 50 s intervals 1,
// then 2, then 4, then 8 additional TCP flows start, doubling the total
// flow count each time.
//
// Paper claims: TFMCC (like TCP) settles at roughly half its previous
// bandwidth after each doubling, reacting on a longer timescale than TCP,
// with overall fairness acceptable (TFMCC slightly aggressive).

#include <iostream>

#include "scenario_util.hpp"

TFMCC_SCENARIO(fig21_increased_congestion,
               "Figure 21: TCP flow count doubling every 50 s",
               tfmcc::param("n_receivers", 2, "TFMCC receiver count", 1),
               tfmcc::param("bottleneck_bps", 16e6, "shared bottleneck rate",
                            1e3),
               tfmcc::param("queue_pkts", 80, "bottleneck queue limit", 1),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Figure 21", "Responsiveness to increased congestion");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  // The flow-count doublings are scripted at 50 s epochs on the paper's
  // 250 s timeline and warp proportionally with --duration.
  const SimTime kRefT = 250_sec;
  const SimTime T = opts.duration_or(kRefT);
  const TimeWarp warp{kRefT, T};
  bench::SharedBottleneck s{opts.param_or("bottleneck_bps", 16e6), 28_ms,
                            opts.param_or("n_receivers", 2), /*n_tcp=*/15,
                            opts.seed_or(211),
                            static_cast<std::size_t>(
                                opts.param_or("queue_pkts", 80)),
                            cfg};
  s.tfmcc->sender().start(SimTime::zero());
  // Start groups of 1, 2, 4 and 8 TCP flows at 50, 100, 150 and 200 s; the
  // millisecond stagger within a group is deliberate jitter, not script
  // structure, so it stays unwarped.
  int idx = 0;
  const int kGroups[4] = {1, 2, 4, 8};
  for (int g = 0; g < 4; ++g) {
    for (int k = 0; k < kGroups[g]; ++k) {
      s.tcp[static_cast<size_t>(idx)]->start(
          warp(SimTime::seconds(50.0 * (g + 1))) + SimTime::millis(17 * idx));
      ++idx;
    }
  }
  s.sim.run_until(T);

  CsvWriter csv(opts.out(), {"flow", "time_s", "kbps"});
  bench::emit_series(csv, "TFMCC", s.tfmcc->goodput(0), 0_sec, T);
  // Aggregate each start-group of TCP flows into one trace, as the paper
  // does for readability.
  idx = 0;
  for (int g = 0; g < 4; ++g) {
    ThroughputBinner agg{1_sec};
    for (int k = 0; k < kGroups[g]; ++k, ++idx) {
      for (const auto& p : s.tcp[static_cast<size_t>(idx)]->goodput.series_kbps().points()) {
        agg.add(p.t, static_cast<std::int64_t>(p.v * 125.0));
      }
    }
    bench::emit_series(csv, "TCP group " + std::to_string(g + 1), agg, 0_sec,
                       T);
  }

  // Epoch means for TFMCC, measured in the second half of each epoch so the
  // longer reaction timescale has settled.
  double epochs[5];
  for (int e = 0; e < 5; ++e) {
    epochs[e] = s.tfmcc->goodput(0).mean_kbps(
        warp(SimTime::seconds(50.0 * e + 25.0)),
        warp(SimTime::seconds(50.0 * (e + 1))));
  }
  bench::note(opts.out(), "TFMCC epoch means (kbit/s): " + std::to_string(epochs[0]) +
              " / " + std::to_string(epochs[1]) + " / " +
              std::to_string(epochs[2]) + " / " + std::to_string(epochs[3]) +
              " / " + std::to_string(epochs[4]));
  int halvings = 0;
  for (int e = 1; e < 5; ++e) {
    if (epochs[e] < 0.75 * epochs[e - 1]) ++halvings;
  }
  bench::check(opts.out(), halvings >= 3,
               "each flow-count doubling roughly halves TFMCC's bandwidth");
  const double tcp_avg = s.tcp_mean_kbps(warp(225_sec), warp(250_sec));
  const double final_ratio = epochs[4] / tcp_avg;
  bench::check(opts.out(), final_ratio > 0.3 && final_ratio < 4.0,
               "overall fairness acceptable at 16 flows (paper: TFMCC "
               "slightly aggressive)");
  return 0;
}
