// Google-benchmark microbenchmarks for the hot paths of the library:
// control-equation evaluation, loss-history updates, scheduler throughput,
// feedback-timer draws and whole feedback rounds.  These guard against
// performance regressions that would make the large-scale figure benches
// (1000-receiver simulations) impractical.

#include <benchmark/benchmark.h>

#include "analysis/feedback_round.hpp"
#include "net/builders.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/feedback_timer.hpp"
#include "tfrc/equation.hpp"
#include "tfrc/equation_backend.hpp"
#include "tfrc/loss_history.hpp"
#include "util/rng.hpp"

namespace {

using namespace tfmcc;

void BM_EquationFull(benchmark::State& state) {
  double p = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tcp_model::throughput_Bps(1000.0, SimTime::millis(80), p));
    p = p < 0.5 ? p * 1.01 : 1e-4;
  }
}
BENCHMARK(BM_EquationFull);

void BM_EquationInverse(benchmark::State& state) {
  double rate = 1e4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tcp_model::loss_for_throughput(1000.0, SimTime::millis(80), rate));
    rate = rate < 1e7 ? rate * 1.1 : 1e4;
  }
}
BENCHMARK(BM_EquationInverse);

void BM_EquationBatch(benchmark::State& state,
                      const EquationBackend& backend) {
  // The sender-side per-round pattern: one equation evaluation per receiver
  // report, over a receiver set with spread RTTs and loss rates.  Exercises
  // EquationBackend::throughput_batch — the float backend's scalar loop vs
  // the fixed backend's table lookups with a hoisted numerator.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{7};
  std::vector<SimTime> rtts(n);
  std::vector<double> losses(n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    rtts[i] = SimTime::millis(rng.uniform_int(20, 400));
    losses[i] = rng.uniform(1e-4, 0.3);
  }
  for (auto _ : state) {
    backend.throughput_batch(1000.0, rtts.data(), losses.data(), out.data(),
                             n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_EquationBatch, float, tfmcc::float_equation_backend())
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_EquationBatch, fixed, tfmcc::fixed_equation_backend())
    ->Arg(64)
    ->Arg(1024);

void BM_LossHistoryReceive(benchmark::State& state) {
  LossHistory h{static_cast<int>(state.range(0))};
  SimTime t = SimTime::zero();
  int i = 0;
  for (auto _ : state) {
    h.on_packet_received();
    if (++i % 100 == 0) {
      t += SimTime::millis(500);
      h.on_packet_lost(t, SimTime::millis(100));
    }
    benchmark::DoNotOptimize(h.loss_event_rate());
  }
}
BENCHMARK(BM_LossHistoryReceive)->Arg(8)->Arg(32);

void BM_SchedulerChurn(benchmark::State& state) {
  Scheduler s;
  const auto horizon = static_cast<std::size_t>(state.range(0));
  std::vector<EventId> ids;
  ids.reserve(horizon);
  std::uint64_t n = 0;
  for (auto _ : state) {
    ids.push_back(
        s.schedule_at(s.now() + SimTime::micros(static_cast<std::int64_t>(++n % 977)),
                      [] {}));
    if (ids.size() >= horizon) {
      // Cancel half, run the rest.
      for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
      s.run();
      ids.clear();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerChurn)->Arg(64)->Arg(4096);

void BM_PacketPoolChurn(benchmark::State& state) {
  // Steady-state packet checkout/release through the per-simulator pool —
  // the "one pool checkout per multicast packet" half of the hot path.
  Simulator sim;
  const auto in_flight = static_cast<std::size_t>(state.range(0));
  std::vector<PacketPtr> live;
  live.reserve(in_flight);
  std::uint64_t n = 0;
  for (auto _ : state) {
    auto p = sim.make_packet();
    p->size_bytes = kDataPacketBytes;
    live.push_back(std::move(p));
    if (live.size() >= in_flight) live.clear();
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PacketPoolChurn)->Arg(16)->Arg(256);

void BM_MembershipChurn(benchmark::State& state, MembershipMode mode) {
  // Tree maintenance under sustained membership churn: a dumbbell with n
  // leaf hosts, alternating leave/rejoin over a half-full group — the
  // steady-state pattern of the churn_flash_crowd scenario.  Incremental
  // graft/prune walks only the toggled member's branch (O(path)); the full
  // rebuild recomputes the whole tree (O(members x path)) per event.
  const int n = static_cast<int>(state.range(0));
  Simulator sim;
  Topology topo{sim};
  LinkConfig link;
  link.rate_bps = 1e9;
  link.delay = SimTime::millis(1);
  Dumbbell d = make_dumbbell(topo, 1, n, link, link);
  topo.compute_routes();
  const GroupId gid = topo.create_group(d.left_hosts[0]);
  topo.set_membership_mode(mode);
  // Half the receivers are members; churn toggles cycle through them.
  for (int i = 0; i < n; i += 2) topo.join(gid, d.right_hosts[static_cast<std::size_t>(i)]);
  int next = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const NodeId node = d.right_hosts[static_cast<std::size_t>(next)];
    if (topo.is_member(gid, node)) {
      topo.leave(gid, node);
    } else {
      topo.join(gid, node);
    }
    next = (next + 1) % n;
    ++events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK_CAPTURE(BM_MembershipChurn, incremental, MembershipMode::kIncremental)
    ->Arg(256)
    ->Arg(2048);
BENCHMARK_CAPTURE(BM_MembershipChurn, full_rebuild, MembershipMode::kFullRebuild)
    ->Arg(256)
    ->Arg(2048);

void BM_FeedbackTimerDraw(benchmark::State& state) {
  FeedbackTimerConfig cfg;
  cfg.method = static_cast<BiasMethod>(state.range(0));
  Rng rng{1};
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(feedback_timer::draw(x, cfg, rng));
    x = x < 1.0 ? x + 0.001 : 0.0;
  }
}
BENCHMARK(BM_FeedbackTimerDraw)
    ->Arg(static_cast<int>(BiasMethod::kUnbiased))
    ->Arg(static_cast<int>(BiasMethod::kModifiedOffset));

void BM_FeedbackRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng{2};
  const auto values = feedback_round::uniform_values(n, 0.0, 1.0, rng);
  feedback_round::RoundConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(feedback_round::simulate(values, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FeedbackRound)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
