// Inter-session fairness: M concurrent TFMCC sessions on one bottleneck.
//
// The paper argues single-session TCP-friendliness; what it leaves open is
// how multiple TFMCC sessions share a bottleneck with each other (cf.
// multi-flow congestion control, PAPERS.md).  This scenario runs M
// complete sessions — each with its own sender, group, and (data, control)
// port pair — through one dumbbell, with every right-side host subscribing
// to *all* sessions at once (the port-multiplexing case a single shared
// port convention cannot express), and reports the per-session throughput
// vector plus the pairwise and aggregate Jain fairness indices.

#include <string>
#include <vector>

#include "analysis/fairness.hpp"
#include "scenario_util.hpp"
#include "tfmcc/session_manager.hpp"

TFMCC_SCENARIO(
    multi_session_fairness,
    "M concurrent TFMCC sessions sharing one bottleneck; Jain fairness matrix",
    tfmcc::param("n_sessions", 8, "concurrent TFMCC sessions", 2.0),
    tfmcc::param("n_receivers", 4, "receiver hosts (each joins every session)",
                 1.0),
    tfmcc::param("bottleneck_mbps", 16.0, "bottleneck rate", 0.1),
    tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Multi-session fairness",
                       "Concurrent TFMCC sessions on one bottleneck");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const int n_sessions = opts.param_or("n_sessions", 8);
  const int n_rx = opts.param_or("n_receivers", 4);
  const double bn_bps = opts.param_or("bottleneck_mbps", 16.0) * 1e6;
  TfmccConfig cfg;
  cfg.equation = eq;

  const SimTime kRefT = 120_sec;
  const SimTime T = opts.duration_or(kRefT);
  Simulator sim{opts.seed_or(810)};
  Topology topo{sim};

  LinkConfig bn;
  bn.rate_bps = bn_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 50;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  acc.jitter = bench::kPhaseJitter;
  Dumbbell d = make_dumbbell(topo, n_sessions, n_rx, bn, acc);
  topo.compute_routes();

  SessionManager mgr{sim, topo};
  for (int s = 0; s < n_sessions; ++s) {
    const int i = mgr.add_session(d.left_hosts[static_cast<size_t>(s)], cfg);
    // Every receiver host subscribes to every session: n_sessions receiver
    // agents per node, one per (session, data port).
    for (int r = 0; r < n_rx; ++r) {
      mgr.flow(i).add_joined_receiver(d.right_hosts[static_cast<size_t>(r)]);
    }
  }
  mgr.start_all();
  sim.run_until(T);

  const SimTime from = T / 3.0;
  const std::vector<double> x = mgr.all_session_mean_kbps(from, T);
  const FairnessReport rep = fairness_report(x);

  // One schema for both the throughput vector and the Jain matrix:
  // (metric, i, j, value); throughput rows use j = i.
  CsvWriter csv(opts.out(), {"metric", "i", "j", "value"});
  for (int i = 0; i < n_sessions; ++i) {
    csv.row("throughput_kbps", i, i, rep.throughput[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < n_sessions; ++i) {
    for (int j = 0; j < n_sessions; ++j) {
      csv.row("pairwise_jain", i, j,
              rep.pairwise[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
  }
  csv.row("aggregate_jain", 0, 0, rep.aggregate);
  csv.row("min_pairwise_jain", 0, 0, rep.min_pairwise);

  bench::note(opts.out(),
              "aggregate Jain index: " + std::to_string(rep.aggregate) +
                  ", worst pair: " + std::to_string(rep.min_pairwise));
  double total = 0.0;
  for (double v : x) total += v;
  bench::note(opts.out(), "aggregate goodput (kbit/s): " +
                              std::to_string(total) + " of bottleneck " +
                              std::to_string(bn_bps / 1e3));
  bench::check(opts.out(), rep.aggregate > 0.5,
               "sessions share the bottleneck without starvation "
               "(aggregate Jain > 0.5)");
  bool all_positive = true;
  for (double v : x) all_positive = all_positive && v > 0.0;
  bench::check(opts.out(), all_positive,
               "every session achieves nonzero goodput");
  bench::check(opts.out(), total < 1.5 * bn_bps / 1e3,
               "aggregate goodput bounded by the bottleneck");
  return 0;
}
