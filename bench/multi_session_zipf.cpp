// Zipf-popularity multi-session workload.
//
// Real multicast deployments serve sessions with Zipf-distributed
// popularity: a few large sessions and a long tail of small ones (cf.
// dynamic source channels, PAPERS.md).  TFMCC's rate is driven by each
// session's worst receiver, not its population, so with homogeneous access
// links session size should *not* translate into bandwidth share.  This
// scenario checks that: session i gets ceil(max_receivers / (i+1)^s)
// receivers and the report shows whether the big sessions crowd out the
// tail.

#include <cmath>
#include <string>
#include <vector>

#include "analysis/fairness.hpp"
#include "scenario_util.hpp"
#include "tfmcc/session_manager.hpp"

TFMCC_SCENARIO(
    multi_session_zipf,
    "Concurrent TFMCC sessions with Zipf-distributed receiver populations",
    tfmcc::param("n_sessions", 8, "concurrent TFMCC sessions", 2.0),
    tfmcc::param("max_receivers", 16,
                 "receivers of the most popular session", 1.0),
    tfmcc::param("zipf_s", 1.0, "Zipf exponent", 0.0),
    tfmcc::param("bottleneck_mbps", 16.0, "bottleneck rate", 0.1),
    tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Multi-session Zipf",
                       "Zipf session popularity on one bottleneck");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const int n_sessions = opts.param_or("n_sessions", 8);
  const int max_rx = opts.param_or("max_receivers", 16);
  const double zipf_s = opts.param_or("zipf_s", 1.0);
  const double bn_bps = opts.param_or("bottleneck_mbps", 16.0) * 1e6;
  TfmccConfig cfg;
  cfg.equation = eq;

  const SimTime kRefT = 120_sec;
  const SimTime T = opts.duration_or(kRefT);
  Simulator sim{opts.seed_or(811)};
  Topology topo{sim};

  LinkConfig bn;
  bn.rate_bps = bn_bps;
  bn.delay = 20_ms;
  bn.queue_limit_packets = 50;
  bn.jitter = bench::kPhaseJitter;
  LinkConfig acc;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  acc.jitter = bench::kPhaseJitter;
  Dumbbell d = make_dumbbell(topo, n_sessions, max_rx, bn, acc);
  topo.compute_routes();

  SessionManager mgr{sim, topo};
  std::vector<int> sizes;
  for (int s = 0; s < n_sessions; ++s) {
    const int i = mgr.add_session(d.left_hosts[static_cast<size_t>(s)], cfg);
    const int size = std::max(
        1, static_cast<int>(std::ceil(
               static_cast<double>(max_rx) /
               std::pow(static_cast<double>(s + 1), zipf_s))));
    sizes.push_back(size);
    for (int r = 0; r < size; ++r) {
      mgr.flow(i).add_joined_receiver(d.right_hosts[static_cast<size_t>(r)]);
    }
  }
  mgr.start_all();
  sim.run_until(T);

  const SimTime from = T / 3.0;
  const std::vector<double> x = mgr.all_session_mean_kbps(from, T);
  const FairnessReport rep = fairness_report(x);

  CsvWriter csv(opts.out(), {"session", "receivers", "throughput_kbps"});
  for (int i = 0; i < n_sessions; ++i) {
    csv.row(i, sizes[static_cast<size_t>(i)], x[static_cast<size_t>(i)]);
  }

  bench::note(opts.out(),
              "aggregate Jain index: " + std::to_string(rep.aggregate) +
                  ", worst pair: " + std::to_string(rep.min_pairwise));
  bench::check(opts.out(), rep.aggregate > 0.5,
               "session size does not buy bandwidth share "
               "(aggregate Jain > 0.5 despite Zipf populations)");
  bool all_positive = true;
  for (double v : x) all_positive = all_positive && v > 0.0;
  bench::check(opts.out(), all_positive,
               "tail sessions are not starved by the popular ones");
  return 0;
}
