// Scale scenario: a fig12-class session (one bottleneck, RTTs spread over
// ~60..140 ms) at 10^5 receivers, run on the hybrid full/model receiver
// tier: a handful of full agents plus modeled SoA blocks standing in for
// the silent majority.  This is the ROADMAP's 10^5..10^6 target made a
// first-class scenario, and the nightly perf gate's probe for the batched
// fan-out path.
//
// Expected shape: feedback suppression keeps the per-round report count
// bounded (near-constant in n, §2.5.4), RTT acquisition proceeds at >= 1
// receiver per round via the echo priority, and the sender settles near the
// bottleneck rate exactly as in the 1000-receiver full simulation.

#include <algorithm>
#include <iostream>
#include <vector>

#include "scenario_util.hpp"

TFMCC_SCENARIO(scale_hybrid_receivers,
               "Hybrid-tier scale run: fig12-class session at 100k receivers",
               tfmcc::param("n_receivers", 100000, "receiver-set size", 1),
               tfmcc::param("full_receivers", 16,
                            "receivers simulated as full agents", 1),
               tfmcc::param("model_taps", 8,
                            "modeled-receiver blocks (tap nodes)", 1),
               tfmcc::param("bottleneck_bps", 500e3, "bottleneck rate", 1e3),
               tfmcc::param("sample_period_s", 10, "sampling interval", 1),
               tfmcc::bench::receiver_model_param("hybrid"),
               tfmcc::bench::equation_backend_param()) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  bench::figure_header(opts.out(), "Scale",
                       "Hybrid receiver tier at large n");

  const EquationBackend* eq = bench::selected_equation_backend(opts);
  if (eq == nullptr) return 2;
  const bench::ReceiverModel model =
      bench::selected_receiver_model(opts, "hybrid");
  if (model == bench::ReceiverModel::kUnknown) return 2;
  TfmccConfig cfg;
  cfg.equation = eq;
  const int horizon_s = static_cast<int>(opts.duration_or(60_sec).to_seconds());
  const int kReceivers = opts.param_or("n_receivers", 100000);
  const int sample_period = opts.param_or("sample_period_s", 10);
  Simulator sim{opts.seed_or(131)};
  Topology topo{sim};

  LinkConfig bn;
  bn.jitter = bench::kPhaseJitter;
  bn.rate_bps = opts.param_or("bottleneck_bps", 500e3);
  bn.delay = 20_ms;
  bn.queue_limit_packets = 20;
  LinkConfig acc;
  acc.jitter = bench::kPhaseJitter;
  acc.rate_bps = 1e9;
  acc.delay = 2_ms;
  const NodeId src = topo.add_node();
  const NodeId left = topo.add_node();
  const NodeId right = topo.add_node();
  topo.add_duplex_link(src, left, acc);
  topo.add_duplex_link(left, right, bn);

  // Keep at least two receivers in the modeled tier even when a smoke run
  // clamps n_receivers below the full-tier default, so the short leg still
  // exercises the block path.
  const int n_full = model == bench::ReceiverModel::kFull
                         ? kReceivers
                         : std::min(opts.param_or("full_receivers", 16),
                                    std::max(0, kReceivers - 2));
  const int n_model = kReceivers - n_full;
  Rng delay_rng{opts.seed_or(131) * 10 + 2};
  std::vector<NodeId> hosts(static_cast<size_t>(n_full));
  for (int i = 0; i < n_full; ++i) {
    hosts[static_cast<size_t>(i)] = topo.add_node();
    LinkConfig a = acc;
    a.delay = SimTime::millis(delay_rng.uniform_int(8, 48));
    topo.add_duplex_link(right, hosts[static_cast<size_t>(i)], a);
  }
  std::vector<NodeId> taps;
  if (n_model > 0) {
    const int n_taps = std::clamp(opts.param_or("model_taps", 8), 1, n_model);
    for (int t = 0; t < n_taps; ++t) {
      LinkConfig a = acc;
      a.delay = 8_ms;  // virtual access detours add the 0..40 ms spread
      taps.push_back(topo.add_node());
      topo.add_duplex_link(right, taps.back(), a);
    }
  }
  topo.compute_routes();

  TfmccFlow flow{sim, topo, src, cfg};
  for (int i = 0; i < n_full; ++i) {
    flow.add_joined_receiver(hosts[static_cast<size_t>(i)]);
  }
  for (std::size_t t = 0; t < taps.size(); ++t) {
    const int per = n_model / static_cast<int>(taps.size());
    const int extra = t == 0 ? n_model % static_cast<int>(taps.size()) : 0;
    const int b = flow.add_modeled_block(taps[t], per + extra,
                                         SimTime::zero(), 40_ms);
    flow.block(b).join();
  }
  flow.sender().start(SimTime::zero());

  if (n_model > 0) {
    bench::note(opts.out(),
                "hybrid tier: " + std::to_string(n_full) + " full + " +
                    std::to_string(n_model) + " modeled receivers on " +
                    std::to_string(taps.size()) + " taps (candidate cap " +
                    std::to_string(flow.block(0).candidate_cap()) + ")");
  }
  bench::note(opts.out(),
              "session endpoints: " +
                  std::to_string(flow.session().total_endpoint_count()) +
                  " (modeled " +
                  std::to_string(flow.session().modeled_count()) + ")");

  CsvWriter csv(opts.out(), {"time_s", "receivers_with_valid_rtt",
                             "feedback_msgs", "send_rate_kbps"});
  int acquired_end = 0;
  for (int t = 0; t <= horizon_s; t += sample_period) {
    sim.run_until(SimTime::seconds(static_cast<double>(t)));
    acquired_end = flow.receivers_with_rtt();
    csv.row(t, acquired_end, flow.sender().feedback_received(),
            kbps_from_Bps(flow.sender().rate_Bps()));
  }

  const double rounds =
      std::max(1.0, static_cast<double>(flow.sender().round()));
  const double fb_per_round =
      static_cast<double>(flow.sender().feedback_received()) / rounds;
  bench::note(opts.out(),
              "rounds: " + std::to_string(flow.sender().round()) +
                  ", feedback/round " + std::to_string(fb_per_round) +
                  ", acquired " + std::to_string(acquired_end) + "/" +
                  std::to_string(kReceivers));
  bench::check(opts.out(),
               flow.session().total_endpoint_count() == kReceivers,
               "endpoint accounting covers the whole receiver population");
  bench::check(opts.out(), acquired_end > 0,
               "RTT acquisition proceeds at large n");
  // Feedback grows sublinearly (full sim: ~34/round at n=1000; hybrid:
  // ~116/round at n=10^5 — 3.4x for 100x receivers).  The implosion-
  // avoidance claim is that reports stay orders of magnitude below the
  // population, not any flat count.
  bench::check(opts.out(),
               fb_per_round < std::max(50.0, static_cast<double>(kReceivers) / 500.0),
               "suppression keeps feedback per round far below the population");
  bench::check(opts.out(), flow.sender().rate_Bps() > 0.0,
               "sender sustains a positive rate");
  return 0;
}
