#pragma once

// Shared scaffolding for the packet-simulation figure benches: standard
// topologies with a TFMCC flow plus competing TCP flows, and CSV emission
// of per-second throughput traces (the paper's standard plot format).

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/builders.hpp"
#include "sim/schedule.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"
#include "tfmcc/flow.hpp"
#include "util/csv.hpp"

namespace tfmcc::bench {

/// Per-packet processing jitter used by every experiment topology: breaks
/// the deterministic phase-locking between ACK-clocked TCP arrivals and
/// drop-tail departures (see LinkConfig::jitter).  One bottleneck packet
/// service time at ~8 Mbit/s.
inline constexpr SimTime kPhaseJitter = SimTime::millis(1);

/// Emit one flow's per-second goodput trace as CSV rows (label, t, kbps).
inline void emit_series(CsvWriter& csv, const std::string& label,
                        const ThroughputBinner& binner, SimTime from,
                        SimTime to) {
  for (const auto& p : binner.series_kbps().points()) {
    if (p.t >= from && p.t < to) csv.row(label, p.t.to_seconds(), p.v);
  }
}

/// The fig. 8 dumbbell with one TFMCC flow (n receivers) and m TCP flows,
/// everything sharing the bottleneck.
struct SharedBottleneck {
  SharedBottleneck(double bottleneck_bps, SimTime bottleneck_delay,
                   int n_receivers, int n_tcp, std::uint64_t seed,
                   std::size_t queue_pkts = 50, TfmccConfig cfg = {})
      : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = bottleneck_bps;
    bn.delay = bottleneck_delay;
    bn.queue_limit_packets = queue_pkts;
    bn.jitter = kPhaseJitter;
    LinkConfig acc;
    acc.rate_bps = 1e9;
    acc.delay = SimTime::millis(2);
    acc.jitter = kPhaseJitter;
    dumbbell = make_dumbbell(topo, 1 + n_tcp, n_receivers + n_tcp, bn, acc);
    tfmcc = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[0], cfg);
    for (int i = 0; i < n_receivers; ++i) {
      tfmcc->add_joined_receiver(dumbbell.right_hosts[static_cast<size_t>(i)]);
    }
    for (int i = 0; i < n_tcp; ++i) {
      tcp.push_back(std::make_unique<TcpFlow>(
          sim, topo, dumbbell.left_hosts[static_cast<size_t>(1 + i)],
          dumbbell.right_hosts[static_cast<size_t>(n_receivers + i)], i));
    }
  }

  void start_all(SimTime tfmcc_at = SimTime::zero()) {
    tfmcc->sender().start(tfmcc_at);
    for (std::size_t i = 0; i < tcp.size(); ++i) {
      tcp[i]->start(SimTime::millis(41 * static_cast<std::int64_t>(i)));
    }
  }

  double tcp_mean_kbps(SimTime from, SimTime to) const {
    if (tcp.empty()) return 0.0;
    double total = 0.0;
    for (const auto& t : tcp) total += t->mean_kbps(from, to);
    return total / static_cast<double>(tcp.size());
  }

  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
  std::unique_ptr<TfmccFlow> tfmcc;
  std::vector<std::unique_ptr<TcpFlow>> tcp;
};

/// Post-run summary of a scripted schedule.  Silent at the default horizon
/// (warp factor 1), so default runs stay byte-identical; in a warped run it
/// reports how much of the script actually executed, which the smoke tests
/// assert on.
inline void note_schedule(std::ostream& os, const ScheduleBuilder& sched) {
  if (sched.warp().is_identity()) return;
  note(os, "schedule: fired " + std::to_string(sched.fired()) + "/" +
               std::to_string(sched.scheduled()) +
               " scripted events at warp factor " +
               std::to_string(sched.warp().factor()));
}

/// Coefficient of variation of a goodput trace in [from, to).
inline double trace_cov(const ThroughputBinner& binner, SimTime from,
                        SimTime to) {
  OnlineStats s;
  for (const auto& p : binner.series_kbps().points()) {
    if (p.t >= from && p.t < to) s.add(p.v);
  }
  return s.cov();
}

}  // namespace tfmcc::bench
