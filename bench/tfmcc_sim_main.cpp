// The unified scenario driver.  Every figure/ablation/comparison bench in
// this directory registers itself with the ScenarioRegistry; this binary
// links them all and dispatches by name:
//
//   $ tfmcc_sim --list
//   $ tfmcc_sim fig09_single_bottleneck --duration 5 --seed 7
//   $ tfmcc_sim fig09_single_bottleneck --set n_tcp=4 --set bottleneck_bps=2e6
//
// A scenario run produces byte-identical output to the corresponding
// standalone bench binary invoked with the same options.

#include <cstring>
#include <iostream>

#include "sim/scenario.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: tfmcc_sim --list\n"
        "       tfmcc_sim <scenario> [--duration <seconds>] [--seed <n>]\n"
        "                            [--set key=value]...\n"
        "`--list` shows each scenario's tunable parameters with their paper\n"
        "defaults; `--set` overrides them.  Scenarios with scripted event\n"
        "schedules rescale the script proportionally under --duration.\n";
}

void print_list() {
  const auto& reg = tfmcc::ScenarioRegistry::instance();
  for (const auto& name : reg.names()) {
    const tfmcc::Scenario* s = reg.find(name);
    std::cout << name << "\t" << s->description << "\n";
    for (const auto& p : s->params) {
      std::cout << "  --set " << p.name << "=" << p.default_value << "\t("
                << tfmcc::param_type_name(p.type) << ") " << p.description
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string_view cmd = argv[1];
  if (cmd == "--list" || cmd == "-l") {
    print_list();
    return 0;
  }
  if (cmd == "--help" || cmd == "-h") {
    print_usage(std::cout);
    print_list();
    return 0;
  }

  tfmcc::ScenarioOptions opts;
  if (!tfmcc::parse_scenario_options(argc - 2, argv + 2, opts, std::cerr)) {
    return 2;
  }
  const int rc = tfmcc::ScenarioRegistry::instance().run(cmd, opts, std::cerr);
  return rc < 0 ? 2 : rc;
}
