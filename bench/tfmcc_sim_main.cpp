// The unified scenario driver.  Every figure/ablation/comparison bench in
// this directory registers itself with the ScenarioRegistry; this binary
// links them all and dispatches by name:
//
//   $ tfmcc_sim --list
//   $ tfmcc_sim fig09_single_bottleneck --duration 5 --seed 7
//   $ tfmcc_sim fig09_single_bottleneck --set n_tcp=4 --set bottleneck_bps=2e6
//   $ tfmcc_sim sweep fig07_scaling --sweep n_receivers=2:2000:log6 --jobs 4
//   $ tfmcc_sim sweep fig07_scaling --sweep n_receivers=2:2000:log6
//         --replicate 5 --stats mean,cov --jobs 4
//
// A scenario run produces byte-identical output to the corresponding
// standalone bench binary invoked with the same options, and a sweep's
// aggregate CSV does not depend on `--jobs`.

#include <cstring>
#include <iostream>

#include "sim/campaign.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_state.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: tfmcc_sim --list\n"
        "       tfmcc_sim <scenario> [--duration <seconds>] [--seed <n>]\n"
        "                            [--set key=value]... [--output <path>]\n"
        "       tfmcc_sim sweep <scenario> --sweep key=v1,v2,...\n"
        "                       [--sweep key=lo:hi:linN|logN]... [--jobs N]\n"
        "                       [--replicate N] [--stats mean,cov,...]\n"
        "                       [--progress] [--shard i/n]\n"
        "                       [--checkpoint <path>] [--checkpoint-every N]\n"
        "                       [--resume <path>] [--max-point-failures K]\n"
        "                       [single-run flags]\n"
        "       tfmcc_sim merge [--output <path>] <partial>...\n"
        "       tfmcc_sim campaign <scenario> --sweep ... [--shards N]\n"
        "                       [--stall-timeout S] [--max-retries K]\n"
        "                       [--backoff-base S] [--backoff-max S]\n"
        "                       [--dir <path>] [--exec <path>]\n"
        "                       [sweep and single-run flags]\n"
        "`--list` shows each scenario's tunable parameters with their paper\n"
        "defaults; `--set` overrides them.  Scenarios with scripted event\n"
        "schedules rescale the script proportionally under --duration.\n"
        "`sweep` runs one scenario over a parameter grid (points in\n"
        "parallel under --jobs) and aggregates the per-point CSVs into one\n"
        "table with the swept keys prepended, rows in grid order.\n"
        "`--replicate N` runs every grid point N times on derived seeds\n"
        "and emits one summary row per point (mean/cov/... columns per the\n"
        "--stats selection plus n_rep); `--progress` forces the throttled\n"
        "progress/ETA line stderr TTYs get by default.\n"
        "`--shard i/n` runs only the grid points shard i of n owns and\n"
        "writes a partial artifact; `merge` folds all n partials into the\n"
        "byte-identical unsharded aggregate.  `--checkpoint`/`--resume`\n"
        "make a killed sweep restartable with byte-identical output.\n"
        "`campaign` supervises all n shards as child processes: it polls\n"
        "their checkpoint heartbeats, relaunches crashed shards with\n"
        "--resume under exponential backoff, kills and restarts stalled\n"
        "stragglers, and merges on completion — the merged CSV is\n"
        "byte-identical to the unsharded sweep.  If a shard exhausts its\n"
        "retries the campaign names the missing grid points and exits 2\n"
        "with the surviving partials preserved.\n";
}

void print_list() {
  const auto& reg = tfmcc::ScenarioRegistry::instance();
  for (const auto& name : reg.names()) {
    const tfmcc::Scenario* s = reg.find(name);
    std::cout << name << "\t" << s->description << "\n";
    for (const auto& p : s->params) {
      std::cout << "  --set " << p.name << "=" << p.default_value << "\t("
                << tfmcc::param_type_name(p.type) << ") " << p.description
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string_view cmd = argv[1];
  if (cmd == "--list" || cmd == "-l") {
    print_list();
    return 0;
  }
  if (cmd == "--help" || cmd == "-h") {
    print_usage(std::cout);
    print_list();
    return 0;
  }

  if (cmd == "sweep") {
    return tfmcc::sweep_main(argc - 2, argv + 2, std::cerr);
  }
  if (cmd == "merge") {
    return tfmcc::merge_main(argc - 2, argv + 2, std::cerr);
  }
  if (cmd == "campaign") {
    return tfmcc::campaign_main(argc - 2, argv + 2, std::cerr);
  }

  tfmcc::ScenarioOptions opts;
  if (!tfmcc::parse_scenario_options(argc - 2, argv + 2, opts, std::cerr)) {
    return 2;
  }
  const int rc = tfmcc::run_scenario_cli(cmd, opts, std::cerr);
  return rc < 0 ? 2 : rc;
}
