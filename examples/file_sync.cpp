// Multicast file-tree synchronisation (the paper's own planned deployment:
// "a multicast filesystem synchronization application (e.g. rdist)", §6.1).
//
// A build server pushes an update bundle to a fleet of mirrors.  TFMCC
// provides the congestion-controlled rate; this example layers a trivial
// carousel (repeat the object until every receiver has every block) on
// top and reports completion times — the metric a distribution tool cares
// about — plus how the one slow mirror dominates the tail.
//
//   $ ./examples/file_sync [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace {

using namespace tfmcc;

/// Tracks which carousel blocks a mirror has; data packets carry the block
/// id in their seqno (seqno % blocks).
class MirrorState {
 public:
  explicit MirrorState(int blocks) : blocks_{blocks} {}

  void on_packet(std::int64_t seqno, SimTime now) {
    if (complete()) return;
    have_.insert(seqno % blocks_);
    if (complete()) completed_at_ = now;
  }
  bool complete() const { return static_cast<int>(have_.size()) == blocks_; }
  SimTime completed_at() const { return completed_at_; }
  int have() const { return static_cast<int>(have_.size()); }

 private:
  int blocks_;
  std::set<std::int64_t> have_;
  SimTime completed_at_{SimTime::infinity()};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tfmcc::time_literals;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const int kMirrors = 12;
  const int kBlocks = 2000;  // 2000 x 1000 B = ~2 MB bundle

  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 100e6;
  trunk.delay = 5_ms;
  std::vector<LinkConfig> mirror_links(kMirrors);
  Rng cfg_rng{seed + 1};
  for (int i = 0; i < kMirrors; ++i) {
    auto& l = mirror_links[static_cast<size_t>(i)];
    l.rate_bps = 10e6;
    l.delay = SimTime::millis(cfg_rng.uniform_int(5, 40));
    l.loss_rate = 0.0005;
  }
  // One overseas mirror on a thin, lossy path: the tail of the fleet.
  mirror_links.back().rate_bps = 1e6;
  mirror_links.back().delay = 120_ms;
  mirror_links.back().loss_rate = 0.01;
  const Star star = make_star(topo, trunk, mirror_links);

  TfmccFlow flow{sim, topo, star.sender};
  std::vector<MirrorState> mirrors(static_cast<size_t>(kMirrors),
                                   MirrorState{kBlocks});
  for (int i = 0; i < kMirrors; ++i) {
    const int id = flow.add_joined_receiver(star.leaves[static_cast<size_t>(i)]);
    // The carousel state is applicative: glue it to the delivery stream.
    auto* mirror = &mirrors[static_cast<size_t>(i)];
    flow.receiver(id).set_data_observer(
        [mirror](SimTime t, const TfmccDataHeader& h) {
          mirror->on_packet(h.seqno, t);
        });
  }

  flow.sender().start(SimTime::zero());
  // Run until every mirror completes (or a generous cap).
  while (sim.now() < 1200_sec &&
         !std::all_of(mirrors.begin(), mirrors.end(),
                      [](const MirrorState& m) { return m.complete(); })) {
    sim.run_until(sim.now() + 1_sec);
  }

  std::printf("bundle: %d blocks (%d kB); fleet of %d mirrors\n", kBlocks,
              kBlocks, kMirrors);
  std::vector<double> times;
  for (int i = 0; i < kMirrors; ++i) {
    const auto& m = mirrors[static_cast<size_t>(i)];
    if (m.complete()) {
      times.push_back(m.completed_at().to_seconds());
      std::printf("  mirror %2d: complete at %7.1f s\n", i,
                  m.completed_at().to_seconds());
    } else {
      std::printf("  mirror %2d: INCOMPLETE (%d/%d blocks)\n", i, m.have(),
                  kBlocks);
    }
  }
  if (!times.empty()) {
    std::printf("median completion %.1f s, p100 %.1f s\n",
                quantile(times, 0.5), quantile(times, 1.0));
  }
  std::printf("sender rate at end: %.0f kbit/s (CLR = mirror %d, the thin "
              "overseas path)\n",
              kbps_from_Bps(flow.sender().rate_Bps()), flow.sender().clr());
  return 0;
}
