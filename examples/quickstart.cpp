// Quickstart: the smallest complete TFMCC program.
//
// Builds a dumbbell topology, attaches one TFMCC sender and three
// receivers, runs for a minute of simulated time and prints what happened.
//
//   $ ./examples/quickstart [seed]
//
// This mirrors the first example in README.md; start here when adopting
// the library.

#include <cstdio>
#include <cstdlib>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

int main(int argc, char** argv) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. A simulation context.  Everything derives its randomness and its
  //    notion of time from here.
  Simulator sim{seed};

  // 2. A topology: one sender host, three receiver hosts, 2 Mbit/s
  //    bottleneck with 20 ms propagation delay.
  Topology topo{sim};
  LinkConfig bottleneck;
  bottleneck.rate_bps = 2e6;
  bottleneck.delay = 20_ms;
  LinkConfig access;
  access.rate_bps = 100e6;
  access.delay = 2_ms;
  const Dumbbell net = make_dumbbell(topo, /*n_left=*/1, /*n_right=*/3,
                                     bottleneck, access);

  // 3. A TFMCC flow: sender on the left, receivers join the multicast
  //    group on the right.
  TfmccFlow flow{sim, topo, net.left_hosts[0]};
  for (int i = 0; i < 3; ++i) flow.add_joined_receiver(net.right_hosts[static_cast<size_t>(i)]);

  // 4. Run.
  flow.sender().start(SimTime::zero());
  sim.run_until(60_sec);

  // 5. Inspect.
  std::printf("after %.0f s simulated:\n", sim.now().to_seconds());
  std::printf("  sender rate:        %8.1f kbit/s (slowstart: %s)\n",
              kbps_from_Bps(flow.sender().rate_Bps()),
              flow.sender().in_slowstart() ? "yes" : "no");
  std::printf("  current CLR:        receiver %d\n", flow.sender().clr());
  std::printf("  data packets sent:  %lld\n",
              static_cast<long long>(flow.sender().data_sent()));
  std::printf("  feedback received:  %lld (over %d rounds)\n",
              static_cast<long long>(flow.sender().feedback_received()),
              flow.sender().round());
  for (int i = 0; i < 3; ++i) {
    const auto& r = flow.receiver(i);
    std::printf(
        "  receiver %d: %6lld pkts, %4lld lost, p=%.4f, RTT %s%s, goodput "
        "%.1f kbit/s\n",
        i, static_cast<long long>(r.packets_received()),
        static_cast<long long>(r.packets_lost()), r.loss_event_rate(),
        r.rtt().str().c_str(), r.has_rtt_measurement() ? "" : " (initial)",
        flow.goodput(i).mean_kbps(0_sec, 60_sec));
  }
  return 0;
}
