// Stock-price ticker: a long-lived, low-rate multicast stream to a large
// subscriber population — the other application class the paper names as
// a natural TFMCC fit ("most current multicast applications such as
// stock-price tickers or video streaming involve just such long-lived
// data-streams", §6).
//
// The interesting protocol questions at this scale are operational:
//   * how much feedback does the sender process per second? (implosion
//     avoidance is the whole game with thousands of subscribers)
//   * what happens when a regional congestion event hits a slice of the
//     subscriber base?
//
//   $ ./examples/stock_ticker [subscribers] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

int main(int argc, char** argv) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  const int kSubscribers = argc > 1 ? std::atoi(argv[1]) : 600;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  Simulator sim{seed};
  Topology topo{sim};

  // Exchange feed -> two regional distribution routers -> subscribers.
  LinkConfig feed;
  feed.rate_bps = 1e6;  // the ticker needs little bandwidth
  feed.delay = 5_ms;
  feed.queue_limit_packets = 20;
  LinkConfig region_link;
  region_link.rate_bps = 10e6;
  region_link.delay = 15_ms;
  LinkConfig tail;
  tail.rate_bps = 2e6;
  tail.delay = 10_ms;
  tail.loss_rate = 0.001;

  const NodeId exchange = topo.add_node();
  const NodeId core = topo.add_node();
  topo.add_duplex_link(exchange, core, feed);
  const NodeId region_a = topo.add_node();
  const NodeId region_b = topo.add_node();
  auto [to_b, from_b] = topo.add_duplex_link(core, region_b, region_link);
  topo.add_duplex_link(core, region_a, region_link);
  Rng tail_rng{seed + 1};
  std::vector<NodeId> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    const NodeId sub = topo.add_node();
    LinkConfig t = tail;
    t.delay = SimTime::millis(tail_rng.uniform_int(5, 45));
    topo.add_duplex_link(i % 2 == 0 ? region_a : region_b, sub, t);
    subs.push_back(sub);
  }
  topo.compute_routes();

  TfmccFlow ticker{sim, topo, exchange};
  for (const NodeId sub : subs) ticker.add_joined_receiver(sub);
  ticker.sender().start(SimTime::zero());

  // Steady operation, then a regional congestion event: region B's uplink
  // degrades to 5% loss for a minute.
  sim.run_until(120_sec);
  const double fb_rate_steady =
      static_cast<double>(ticker.sender().feedback_received()) / 120.0;
  const double rate_steady = kbps_from_Bps(ticker.sender().rate_Bps());

  to_b->set_loss_rate(0.05);
  sim.run_until(180_sec);
  const double rate_congested = kbps_from_Bps(ticker.sender().rate_Bps());
  const std::int32_t clr_during_event = ticker.sender().clr();
  to_b->set_loss_rate(0.0);
  const auto fb_before_recovery = ticker.sender().feedback_received();
  sim.run_until(300_sec);
  const double fb_rate_total =
      static_cast<double>(ticker.sender().feedback_received()) / 300.0;
  const double rate_recovered = kbps_from_Bps(ticker.sender().rate_Bps());

  std::printf("subscribers:                %d\n", kSubscribers);
  std::printf("steady ticker rate:         %8.1f kbit/s\n", rate_steady);
  std::printf("feedback at sender:         %8.2f msgs/s steady, %.2f msgs/s "
              "overall\n",
              fb_rate_steady, fb_rate_total);
  std::printf("  (an implosion would be ~%d msgs per %.1f s round)\n",
              kSubscribers, ticker.sender().round_duration().to_seconds());
  std::printf("regional congestion event:  rate %8.1f kbit/s (CLR in region "
              "B: %s)\n",
              rate_congested,
              clr_during_event >= 0 && clr_during_event % 2 == 1 ? "yes"
                                                                 : "no");
  std::printf("after recovery:             %8.1f kbit/s\n", rate_recovered);
  std::printf("total feedback during run:  %lld messages from %d receivers "
              "over %d rounds\n",
              static_cast<long long>(ticker.sender().feedback_received()),
              kSubscribers, ticker.sender().round());
  (void)fb_before_recovery;
  return 0;
}
