// Video streaming over TFMCC.
//
// The paper motivates TFMCC with applications that need a *smooth,
// predictable* rate — streaming media being the canonical case (§1.1, §5).
// This example streams "video" to a heterogeneous receiver set (DSL,
// cable, campus links), lets a congested mobile viewer join mid-session,
// and reports the rate statistics an adaptive codec would care about:
// mean rate, coefficient of variation, and how often the rate crosses
// typical encoder layer boundaries.
//
//   $ ./examples/video_streaming [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace {

constexpr double kLayerKbps[] = {128.0, 256.0, 512.0, 1024.0, 2048.0};

int layer_for(double kbps) {
  int layer = -1;
  for (int i = 0; i < 5; ++i) {
    if (kbps >= kLayerKbps[i]) layer = i;
  }
  return layer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfmcc;
  using namespace tfmcc::time_literals;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  Simulator sim{seed};
  Topology topo{sim};

  // Head-end plus three access technologies and one congested mobile link.
  LinkConfig trunk;
  trunk.rate_bps = 100e6;
  trunk.delay = 5_ms;
  LinkConfig campus;  // fast and clean
  campus.rate_bps = 20e6;
  campus.delay = 10_ms;
  LinkConfig cable;
  cable.rate_bps = 6e6;
  cable.delay = 15_ms;
  cable.loss_rate = 0.001;
  LinkConfig dsl;
  dsl.rate_bps = 2e6;
  dsl.delay = 25_ms;
  dsl.loss_rate = 0.002;
  LinkConfig mobile;  // the latecomer
  mobile.rate_bps = 600e3;
  mobile.delay = 60_ms;
  mobile.loss_rate = 0.01;
  const Star star = make_star(topo, trunk, {campus, cable, dsl, mobile});

  TfmccFlow stream{sim, topo, star.sender};
  for (int i = 0; i < 3; ++i) stream.add_joined_receiver(star.leaves[static_cast<size_t>(i)]);
  const int mobile_id = stream.add_receiver(star.leaves[3]);

  stream.sender().start(SimTime::zero());
  sim.at(120_sec, [&] { stream.receiver(mobile_id).join(); });
  sim.at(240_sec, [&] { stream.receiver(mobile_id).leave(); });
  sim.run_until(360_sec);

  // Rate statistics per phase, as an adaptive encoder would see them.
  struct Phase {
    const char* name;
    SimTime from, to;
  };
  const Phase phases[] = {
      {"DSL-limited (3 fixed receivers)", 30_sec, 120_sec},
      {"mobile viewer joined", 130_sec, 240_sec},
      {"mobile viewer left", 270_sec, 360_sec},
  };
  std::printf("%-34s %10s %8s %12s %s\n", "phase", "kbit/s", "CoV",
              "layer flips", "video layer");
  for (const auto& ph : phases) {
    OnlineStats stats;
    int flips = 0, last_layer = -2;
    for (const auto& p : stream.goodput(0).series_kbps().points()) {
      if (p.t < ph.from || p.t >= ph.to) continue;
      stats.add(p.v);
      const int layer = layer_for(p.v);
      if (last_layer != -2 && layer != last_layer) ++flips;
      last_layer = layer;
    }
    std::printf("%-34s %10.0f %8.3f %12d %11d\n", ph.name, stats.mean(),
                stats.cov(), flips, layer_for(stats.mean()));
  }
  std::printf("\nCLR history (time -> receiver):");
  for (const auto& [t, id] : stream.sender().clr_history()) {
    std::printf("  %.1fs->%d", t.to_seconds(), id);
  }
  std::printf("\n");
  std::printf("feedback messages total: %lld (%.1f per second, %d receivers)\n",
              static_cast<long long>(stream.total_feedback_sent()),
              static_cast<double>(stream.total_feedback_sent()) /
                  sim.now().to_seconds(),
              stream.receiver_count());
  return 0;
}
