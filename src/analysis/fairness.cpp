#include "analysis/fairness.hpp"

#include <algorithm>
#include <utility>

namespace tfmcc {

double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

double pairwise_jain(double a, double b) {
  const double denom = 2.0 * (a * a + b * b);
  if (denom == 0.0) return 1.0;
  return (a + b) * (a + b) / denom;
}

FairnessReport fairness_report(std::vector<double> per_session_throughput) {
  FairnessReport r;
  r.throughput = std::move(per_session_throughput);
  r.aggregate = jain_index(r.throughput);
  const std::size_t n = r.throughput.size();
  r.pairwise.assign(n, std::vector<double>(n, 1.0));
  r.min_pairwise = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double pj = pairwise_jain(r.throughput[i], r.throughput[j]);
      r.pairwise[i][j] = pj;
      if (i != j) r.min_pairwise = std::min(r.min_pairwise, pj);
    }
  }
  return r;
}

}  // namespace tfmcc
