#pragma once

// Inter-session fairness engine.
//
// Multi-session workloads (M TFMCC sessions sharing a bottleneck) are
// summarized by Jain's fairness index over the per-session throughput
// vector: J(x) = (sum x)^2 / (n * sum x^2), 1 when all sessions get equal
// shares, 1/n when one session starves the rest.  The pairwise matrix
// J(x_i, x_j) localizes unfairness to specific session pairs — a single
// aggregate index cannot distinguish "everyone slightly unequal" from "two
// sessions at war" (cf. Thomas et al., multi-flow congestion control).

#include <vector>

namespace tfmcc {

/// Jain's fairness index of `x`; 1.0 for an empty or all-zero vector (a
/// trivially fair allocation of nothing).
double jain_index(const std::vector<double>& x);

/// Two-element special case: (a+b)^2 / (2 (a^2+b^2)).
double pairwise_jain(double a, double b);

/// Per-session throughputs plus the derived fairness summary.
struct FairnessReport {
  std::vector<double> throughput;              // input vector, kept for CSV
  std::vector<std::vector<double>> pairwise;   // pairwise[i][j] = J(x_i, x_j)
  double aggregate{1.0};                       // J over the whole vector
  double min_pairwise{1.0};                    // worst session pair
};

/// Build the full report from a per-session throughput vector.
FairnessReport fairness_report(std::vector<double> per_session_throughput);

}  // namespace tfmcc
