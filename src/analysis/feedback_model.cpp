#include "analysis/feedback_model.hpp"

#include <algorithm>
#include <cmath>

#include "tfmcc/feedback_timer.hpp"

namespace tfmcc::feedback_model {

namespace {
constexpr int kGrid = 20000;
}  // namespace

double expected_messages(int n, double t_max, double delay, double x,
                         const FeedbackTimerConfig& cfg) {
  if (n <= 1) return static_cast<double>(n);
  // Integrate over the uniform variate u; g(u) is the timer in units of T'.
  // F(t) = P(timer <= t) comes from the same closed-form CDF the protocol's
  // timer module exposes.
  double acc = 0.0;
  for (int i = 0; i < kGrid; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / kGrid;
    const double t = feedback_timer::from_uniform(u, x, cfg) * t_max;
    const double thresh = (t - delay) / t_max;  // back to units of T'
    const double f = feedback_timer::cdf(thresh, x, cfg);
    acc += std::pow(1.0 - f, n - 1);
  }
  return static_cast<double>(n) * acc / kGrid;
}

double expected_first_response(int n, double t_max, double x,
                               const FeedbackTimerConfig& cfg) {
  // E[min] = ∫ P(min > t) dt = ∫ (1 - F(t))^n dt over [0, t_max].
  double acc = 0.0;
  const int grid = 4000;
  for (int i = 0; i < grid; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / grid;  // units of T'
    const double f = feedback_timer::cdf(t, x, cfg);
    acc += std::pow(1.0 - f, n);
  }
  return t_max * acc / grid;
}

}  // namespace tfmcc::feedback_model
