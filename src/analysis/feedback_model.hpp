#pragma once

#include "tfmcc/config.hpp"

namespace tfmcc::feedback_model {

/// Expected number of feedback messages per round (§2.5.4, fig. 4).
///
/// Model: n receivers draw timers t_i = T' * g(u_i) from the (possibly
/// biased) exponential timer transform; the first response reaches the
/// other receivers after network delay D (for unicast feedback channels,
/// D = one RTT: receiver -> sender -> echo -> receivers).  A receiver
/// responds iff its timer fires at most D after the earliest timer:
///
///   E[M] = n * E_u[ (1 - F(g(u) * T' - D))^(n-1) ]
///
/// evaluated by numeric integration over u (the timer transform is shared
/// with the live protocol, so this is the production code path).
///
/// All times are in RTT units; `t_max` is T', `delay` is D, `x` the rate
/// ratio used by the biased methods (worst case: all receivers equal).
double expected_messages(int n, double t_max, double delay, double x,
                         const FeedbackTimerConfig& cfg);

/// Expected feedback delay: E[min_i t_i] in RTT units (fig. 5's analytic
/// counterpart; decreases ~logarithmically in n).
double expected_first_response(int n, double t_max, double x,
                               const FeedbackTimerConfig& cfg);

}  // namespace tfmcc::feedback_model
