#include "analysis/feedback_round.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "tfmcc/feedback_timer.hpp"

namespace tfmcc::feedback_round {

std::vector<double> uniform_values(int n, double lo, double hi, Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

RoundResult simulate(std::span<const double> values, const RoundConfig& cfg,
                     Rng& rng, bool keep_outcomes) {
  const auto n = values.size();
  RoundResult res;
  res.true_min = *std::min_element(values.begin(), values.end());

  struct Entry {
    double t;
    double value;
    std::size_t idx;
  };
  std::vector<Entry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        feedback_timer::draw(values[i], cfg.timer, rng) * cfg.t_max;
    entries.push_back({t, values[i], i});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.t < b.t; });

  if (keep_outcomes) res.outcomes.resize(n);

  // Walk receivers in timer order.  `echo_best[k]` tracks the lowest value
  // among responses sent at time <= some t; a receiver firing at t hears
  // (via the sender echo) every response sent at or before t - rtt.
  struct Sent {
    double t;
    double value;
  };
  std::vector<Sent> sent;  // in send-time order
  double running_best = std::numeric_limits<double>::infinity();
  std::vector<double> best_by_send;  // prefix minimum of sent values
  std::size_t heard = 0;             // sent[0..heard) have reached everyone

  res.first_time = 0.0;
  res.best_value = std::numeric_limits<double>::infinity();
  res.best_time = 0.0;

  for (const Entry& e : entries) {
    // Advance the "heard" frontier: echoes of responses sent at or before
    // e.t - rtt have arrived at all receivers.
    while (heard < sent.size() && sent[heard].t <= e.t - cfg.rtt) ++heard;

    bool suppressed = false;
    if (heard > 0) {
      const double v = best_by_send[heard - 1];
      // §2.5.2: cancel iff v - x <= delta * v.
      suppressed = (v - e.value) <= cfg.delta * v;
    }

    if (keep_outcomes) {
      res.outcomes[e.idx] = {e.value, e.t, !suppressed};
    }
    if (suppressed) continue;

    ++res.responses;
    const double arrival = e.t + cfg.rtt / 2.0;
    if (res.responses == 1) res.first_time = arrival;
    if (e.value < res.best_value) {
      res.best_value = e.value;
      res.best_time = arrival;
    }
    sent.push_back({e.t, e.value});
    running_best = std::min(running_best, e.value);
    best_by_send.push_back(running_best);
  }
  return res;
}

}  // namespace tfmcc::feedback_round
