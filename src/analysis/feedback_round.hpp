#pragma once

#include <span>
#include <vector>

#include "tfmcc/config.hpp"
#include "util/rng.hpp"

namespace tfmcc::feedback_round {

/// Standalone Monte-Carlo simulator of a single feedback round (§2.5),
/// driving figs. 2, 3, 5 and 6.  It models exactly the mechanism of the
/// live protocol — biased timers, sender echo, δ-cancellation — without the
/// packet layer: feedback sent at time t reaches the sender at t + RTT/2
/// and its echo reaches the other receivers at t + RTT.
struct RoundConfig {
  FeedbackTimerConfig timer{};
  double t_max{4.0};   // T: maximum feedback delay, in RTT units
  double rtt{1.0};     // echo latency (sender echo back to receivers)
  double delta{0.1};   // δ cancellation threshold (§2.5.2)
};

/// Per-receiver outcome of a round (fig. 2's scatter data).
struct ReceiverOutcome {
  double value{0.0};  // the rate ratio x it would report
  double timer{0.0};  // scheduled feedback time (RTT units)
  bool sent{false};   // responded (true) or suppressed (false)
};

struct RoundResult {
  int responses{0};          // number of feedback messages
  double first_time{0.0};    // arrival time of the first response at sender
  double best_value{0.0};    // lowest value among responses
  double best_time{0.0};     // arrival time of that best response
  double true_min{0.0};      // actual lowest value in the receiver set
  std::vector<ReceiverOutcome> outcomes;  // filled when keep_outcomes
};

/// Simulate one round for receivers with the given report values (x_i,
/// the ratio of calculated to current sending rate).
RoundResult simulate(std::span<const double> values, const RoundConfig& cfg,
                     Rng& rng, bool keep_outcomes = false);

/// Convenience: n receivers with values drawn uniformly in [lo, hi].
std::vector<double> uniform_values(int n, double lo, double hi, Rng& rng);

}  // namespace tfmcc::feedback_round
