#include "analysis/order_stats.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tfmcc::order_stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3e-12;

/// Series representation of P(a,x), valid (fast) for x < a+1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued-fraction representation of Q(a,x) = 1 - P(a,x), for x >= a+1.
double gamma_q_cf(double a, double x) {
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double reg_lower_incomplete_gamma(double a, double x) {
  if (a <= 0.0) throw std::invalid_argument("incomplete gamma: a <= 0");
  if (x < 0.0) throw std::invalid_argument("incomplete gamma: x < 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_cdf(double x, double k, double theta) {
  if (x <= 0.0) return 0.0;
  return reg_lower_incomplete_gamma(k, x / theta);
}

double expected_min_exponential(double mean, int n) {
  assert(n >= 1);
  return mean / static_cast<double>(n);
}

double expected_min_gamma(double k, double theta, int n) {
  assert(n >= 1);
  // E[min] = ∫0^inf S(x)^n dx with S = 1 - F.  The integrand decays at
  // least exponentially past the mean; integrate adaptively by trapezoid
  // until the tail contribution is negligible.
  const double mean = k * theta;
  const double step = mean / 2048.0;
  double total = 0.0;
  double prev = 1.0;  // S(0)^n
  double x = 0.0;
  for (int i = 0; i < 2'000'000; ++i) {
    x += step;
    const double s = 1.0 - gamma_cdf(x, k, theta);
    const double cur = std::pow(s, n);
    total += 0.5 * (prev + cur) * step;
    prev = cur;
    if (cur < 1e-12 && x > mean / std::max(1, n)) break;
  }
  return total;
}

double expected_min_gamma_mc(double k, double theta, int n, int trials,
                             Rng& rng) {
  // Gamma(k, theta) with integer-ish k as a sum of exponentials; for
  // non-integer k, interpolate by mixing (adequate for cross-checks where
  // k is the integer loss-history depth).
  const int ki = static_cast<int>(k);
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    double mn = 1e308;
    for (int i = 0; i < n; ++i) {
      double g = 0.0;
      for (int j = 0; j < ki; ++j) g += rng.exponential(theta);
      mn = std::min(mn, g);
    }
    acc += mn;
  }
  return acc / static_cast<double>(trials);
}

}  // namespace tfmcc::order_stats
