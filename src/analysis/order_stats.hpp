#pragma once

#include "util/rng.hpp"

namespace tfmcc::order_stats {

/// Regularized lower incomplete gamma function P(a, x) = γ(a,x)/Γ(a),
/// computed with the series expansion for x < a+1 and the continued
/// fraction otherwise (Numerical Recipes style).  Needed because the
/// standard library offers no incomplete gamma.
double reg_lower_incomplete_gamma(double a, double x);

/// CDF of Gamma(shape k, scale theta) at x.
double gamma_cdf(double x, double k, double theta);

/// E[min of n iid Exponential(mean m)] == m / n (closed form; exposed for
/// cross-checks of the numeric machinery).
double expected_min_exponential(double mean, int n);

/// E[min of n iid Gamma(shape k, scale theta)], by numeric integration of
/// the survival function:  E[min] = ∫ (1-F(x))^n dx.
///
/// This drives the §3 scaling analysis: the TFRC average of `k` loss
/// intervals is (approximately) Gamma distributed, and the sender tracks
/// the *minimum* calculated rate — i.e. the minimum of n such averages.
double expected_min_gamma(double k, double theta, int n);

/// Monte-Carlo cross-check for expected_min_gamma (tests, fig. 7 sanity).
double expected_min_gamma_mc(double k, double theta, int n, int trials,
                             Rng& rng);

}  // namespace tfmcc::order_stats
