#include "analysis/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tfrc/equation.hpp"
#include "tfrc/loss_history.hpp"

namespace tfmcc::scaling {

double expected_min_rate_Bps(const std::vector<double>& loss_rates,
                             const ModelConfig& cfg, Rng& rng) {
  const auto weights = LossHistory::weights(cfg.history_depth);
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);

  const auto depth = weights.size();
  std::vector<double> intervals(depth);

  double acc = 0.0;
  for (int t = 0; t < cfg.trials; ++t) {
    double min_rate = std::numeric_limits<double>::infinity();
    for (const double p : loss_rates) {
      // TFRC weighted average of `depth` iid exponential intervals with
      // mean 1/p (the §3 independent-loss model); intervals[0] is newest.
      const double mean = 1.0 / p;
      for (auto& iv : intervals) iv = rng.exponential(mean);
      double closed = 0.0;
      for (std::size_t i = 0; i < depth; ++i) closed += weights[i] * intervals[i];
      double avg = closed / wsum;
      if (cfg.include_open_interval) {
        // Age of the open interval at a random inspection time is again
        // exponential (memorylessness); TFRC counts it only when doing so
        // lowers the loss estimate.  Including it shifts the closed
        // intervals one weight slot older, exactly as
        // LossHistory::average_interval does.
        const double open = rng.exponential(mean);
        double with_open = weights[0] * open;
        for (std::size_t i = 0; i + 1 < depth; ++i) {
          with_open += weights[i + 1] * intervals[i];
        }
        avg = std::max(avg, with_open / wsum);
      }
      const double p_est = 1.0 / std::max(avg, 1.0);
      const double rate =
          cfg.use_simple_equation
              ? tcp_model::simple_throughput_Bps(cfg.packet_bytes, cfg.rtt,
                                                 p_est)
              : cfg.equation->throughput_Bps(cfg.packet_bytes, cfg.rtt, p_est);
      min_rate = std::min(min_rate, rate);
    }
    acc += min_rate;
  }
  return acc / cfg.trials;
}

double fair_rate_Bps(const std::vector<double>& loss_rates,
                     const ModelConfig& cfg) {
  const double worst = *std::max_element(loss_rates.begin(), loss_rates.end());
  return cfg.equation->throughput_Bps(cfg.packet_bytes, cfg.rtt, worst);
}

std::vector<double> constant_losses(int n, double p) {
  return std::vector<double>(static_cast<std::size_t>(n), p);
}

std::vector<double> stratified_losses(int n, Rng& rng, double c) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  const int high = std::clamp(
      static_cast<int>(std::lround(c * std::log(std::max(2, n)))), 1, n);
  const int mid = std::clamp(
      static_cast<int>(std::lround(3.0 * c * std::log(std::max(2, n)))), 0,
      n - high);
  for (int i = 0; i < high; ++i) out.push_back(rng.uniform(0.05, 0.10));
  for (int i = 0; i < mid; ++i) out.push_back(rng.uniform(0.02, 0.05));
  for (int i = high + mid; i < n; ++i) out.push_back(rng.uniform(0.005, 0.02));
  return out;
}

}  // namespace tfmcc::scaling
