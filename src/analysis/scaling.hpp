#pragma once

#include <vector>

#include "tfrc/equation_backend.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tfmcc::scaling {

/// The §3 loss-path-multiplicity model behind fig. 7.
///
/// Each of n receivers measures its loss event rate as the TFRC weighted
/// average of `depth` loss intervals; with independent loss the intervals
/// are exponentially distributed, the averages are (scaled) gamma
/// distributed, and the sender tracks the *minimum* calculated rate over
/// receivers — so throughput decays with n even at constant loss.

struct ModelConfig {
  double packet_bytes{1000.0};
  SimTime rtt{SimTime::millis(50)};
  int history_depth{8};  // loss intervals in the TFRC average
  int trials{300};
  /// Apply TFRC's open-interval rule: the (inspection-paradox-distributed)
  /// interval since the last loss event is included when it raises the
  /// average.  This substantially lifts the low tail of the estimate
  /// distribution and thus the expected minimum.
  bool include_open_interval{true};
  /// Use the simplified (Mathis) response function instead of the full
  /// Padhye equation.  The full equation collapses much harder at the high
  /// effective loss rates the minimum tracks.
  bool use_simple_equation{false};
  /// Evaluation backend for the full equation (ignored by the Mathis path).
  const EquationBackend* equation{&float_equation_backend()};
};

/// Expected TFMCC throughput (bytes/s) when receiver i has loss event rate
/// loss_rates[i], via Monte Carlo over the interval-averaging process.
double expected_min_rate_Bps(const std::vector<double>& loss_rates,
                             const ModelConfig& cfg, Rng& rng);

/// The fair rate: throughput the control equation grants the *worst*
/// receiver with a noise-free loss estimate.
double fair_rate_Bps(const std::vector<double>& loss_rates,
                     const ModelConfig& cfg);

/// n receivers with identical loss probability p (fig. 7 "constant").
std::vector<double> constant_losses(int n, double p);

/// The stratified loss mix of §3 (fig. 7 "distrib."): ~c*log(n) receivers
/// at 5-10% loss, ~3c*log(n) at 2-5%, the vast majority at 0.5-2%.
std::vector<double> stratified_losses(int n, Rng& rng, double c = 1.5);

}  // namespace tfmcc::scaling
