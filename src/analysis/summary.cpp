#include "analysis/summary.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <utility>

namespace tfmcc::summary {

namespace {

constexpr Stat kAllStats[] = {Stat::kMean, Stat::kStddev, Stat::kCov,
                              Stat::kMin, Stat::kMax};

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string_view stat_name(Stat s) {
  switch (s) {
    case Stat::kMean:
      return "mean";
    case Stat::kStddev:
      return "stddev";
    case Stat::kCov:
      return "cov";
    case Stat::kMin:
      return "min";
    case Stat::kMax:
      return "max";
  }
  return "?";
}

bool parse_stats(std::string_view text, std::vector<Stat>& out,
                 std::ostream& err) {
  out.clear();
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    const std::string_view name = text.substr(start, comma - start);
    bool known = false;
    for (Stat s : kAllStats) {
      if (name == stat_name(s)) {
        for (Stat seen : out) {
          if (seen == s) {
            err << "error: duplicate statistic '" << name
                << "' in --stats list\n";
            return false;
          }
        }
        out.push_back(s);
        known = true;
        break;
      }
    }
    if (!known) {
      err << "error: unknown statistic '" << name
          << "' in --stats list (expected a comma-separated subset of "
             "mean,stddev,cov,min,max)\n";
      return false;
    }
    if (comma == std::string_view::npos) return true;
    start = comma + 1;
  }
}

std::vector<Stat> default_stats() { return {Stat::kMean, Stat::kCov}; }

bool parse_number(std::string_view text, double& out) {
  std::string buf{text};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return !buf.empty() && end == buf.c_str() + buf.size() &&
         std::isfinite(out);
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Welford::cov() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::fabs(m);
}

double Welford::value(Stat s) const {
  switch (s) {
    case Stat::kMean:
      return mean();
    case Stat::kStddev:
      return stddev();
    case Stat::kCov:
      return cov();
    case Stat::kMin:
      return min();
    case Stat::kMax:
      return max();
  }
  return 0.0;
}

std::vector<std::string> split_csv(std::string_view line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    cells.emplace_back(line.substr(start, comma - start));
    if (comma == std::string_view::npos) return cells;
    start = comma + 1;
  }
}

ColumnSummary::ColumnSummary(std::vector<std::string> columns)
    : columns_{std::move(columns)}, numeric_(columns_.size(), true) {}

bool ColumnSummary::add_row(std::vector<std::string> cells,
                            std::ostream& err) {
  if (cells.size() != columns_.size()) {
    err << "error: CSV row has " << cells.size() << " cells but the header '"
        << (columns_.empty() ? std::string{} : columns_.front())
        << ",...' declares " << columns_.size() << " columns\n";
    return false;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    double v = 0.0;
    if (numeric_[i] && !parse_number(cells[i], v)) numeric_[i] = false;
  }
  rows_.push_back(std::move(cells));
  return true;
}

std::vector<std::string> ColumnSummary::header(
    const std::vector<Stat>& stats) const {
  std::vector<std::string> out;
  out.reserve(columns_.size() * stats.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (numeric_[i]) {
      for (Stat s : stats) {
        out.push_back(columns_[i] + '_' + std::string{stat_name(s)});
      }
    } else {
      out.push_back(columns_[i]);
    }
  }
  return out;
}

std::vector<std::vector<std::string>> ColumnSummary::summarize(
    const std::vector<Stat>& stats) const {
  struct Group {
    std::vector<std::string> labels;  // label-column cells, in column order
    std::vector<Welford> acc;         // one per numeric column
  };
  std::vector<Group> groups;
  std::map<std::vector<std::string>, std::size_t> index;

  std::size_t n_numeric = 0;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (numeric_[i]) ++n_numeric;
  }
  for (const auto& row : rows_) {
    std::vector<std::string> key;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!numeric_[i]) key.push_back(row[i]);
    }
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(key), std::vector<Welford>(n_numeric)});
    }
    Group& g = groups[it->second];
    std::size_t j = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!numeric_[i]) continue;
      double v = 0.0;
      // Every cell of a still-numeric column parsed during add_row.
      if (parse_number(row[i], v)) g.acc[j].add(v);
      ++j;
    }
  }

  std::vector<std::vector<std::string>> out;
  out.reserve(groups.size());
  for (const Group& g : groups) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size() * stats.size());
    std::size_t label_at = 0, acc_at = 0;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (numeric_[i]) {
        for (Stat s : stats) {
          cells.push_back(format_value(g.acc[acc_at].value(s)));
        }
        ++acc_at;
      } else {
        cells.push_back(g.labels[label_at]);
        ++label_at;
      }
    }
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace tfmcc::summary
