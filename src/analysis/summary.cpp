#include "analysis/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <utility>

namespace tfmcc::summary {

namespace {

constexpr Stat kAllStats[] = {Stat::kMean, Stat::kStddev, Stat::kCov,
                              Stat::kMin, Stat::kMax};

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// Doubles travel as their raw IEEE-754 bit pattern in hex, making every
// round trip bit-exact.

void write_double_bits(std::ostream& os, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  os << buf;
}

bool read_double_bits(std::istream& is, double& v) {
  std::string hex;
  if (!(is >> hex) || hex.size() != 16) return false;
  char* end = nullptr;
  const std::uint64_t bits = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

}  // namespace

std::string_view stat_name(Stat s) {
  switch (s) {
    case Stat::kMean:
      return "mean";
    case Stat::kStddev:
      return "stddev";
    case Stat::kCov:
      return "cov";
    case Stat::kMin:
      return "min";
    case Stat::kMax:
      return "max";
  }
  return "?";
}

bool parse_stats(std::string_view text, std::vector<Stat>& out,
                 std::ostream& err) {
  out.clear();
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    const std::string_view name = text.substr(start, comma - start);
    bool known = false;
    for (Stat s : kAllStats) {
      if (name == stat_name(s)) {
        for (Stat seen : out) {
          if (seen == s) {
            err << "error: duplicate statistic '" << name
                << "' in --stats list\n";
            return false;
          }
        }
        out.push_back(s);
        known = true;
        break;
      }
    }
    if (!known) {
      err << "error: unknown statistic '" << name
          << "' in --stats list (expected a comma-separated subset of "
             "mean,stddev,cov,min,max)\n";
      return false;
    }
    if (comma == std::string_view::npos) return true;
    start = comma + 1;
  }
}

std::vector<Stat> default_stats() { return {Stat::kMean, Stat::kCov}; }

void write_str(std::ostream& os, std::string_view s) {
  os << s.size() << ':' << s;
}

bool read_str(std::istream& is, std::string& out) {
  std::size_t len = 0;
  char sep = 0;
  if (!(is >> len) || !is.get(sep) || sep != ':') return false;
  if (len > (1u << 30)) return false;  // absurd length = corrupt stream
  out.resize(len);
  is.read(out.data(), static_cast<std::streamsize>(len));
  return static_cast<std::size_t>(is.gcount()) == len;
}

bool parse_number(std::string_view text, double& out) {
  std::string buf{text};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return !buf.empty() && end == buf.c_str() + buf.size() &&
         std::isfinite(out);
}

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;  // bit-for-bit: the exact case the shard contract relies on
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
  n_ += o.n_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

void Welford::save(std::ostream& os) const {
  os << "W1 " << n_ << ' ';
  write_double_bits(os, mean_);
  os << ' ';
  write_double_bits(os, m2_);
  os << ' ';
  write_double_bits(os, min_);
  os << ' ';
  write_double_bits(os, max_);
}

bool Welford::load(std::istream& is, Welford& out) {
  out = Welford{};
  std::string tag;
  if (!(is >> tag) || tag != "W1" || !(is >> out.n_)) return false;
  return read_double_bits(is, out.mean_) && read_double_bits(is, out.m2_) &&
         read_double_bits(is, out.min_) && read_double_bits(is, out.max_);
}

double Welford::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Welford::cov() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::fabs(m);
}

double Welford::value(Stat s) const {
  switch (s) {
    case Stat::kMean:
      return mean();
    case Stat::kStddev:
      return stddev();
    case Stat::kCov:
      return cov();
    case Stat::kMin:
      return min();
    case Stat::kMax:
      return max();
  }
  return 0.0;
}

std::vector<std::string> split_csv(std::string_view line) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    cells.emplace_back(line.substr(start, comma - start));
    if (comma == std::string_view::npos) return cells;
    start = comma + 1;
  }
}

ColumnSummary::ColumnSummary(std::vector<std::string> columns)
    : columns_{std::move(columns)}, numeric_(columns_.size(), true) {}

bool ColumnSummary::add_row(std::vector<std::string> cells,
                            std::ostream& err) {
  if (cells.size() != columns_.size()) {
    err << "error: CSV row has " << cells.size() << " cells but the header '"
        << (columns_.empty() ? std::string{} : columns_.front())
        << ",...' declares " << columns_.size() << " columns\n";
    return false;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    double v = 0.0;
    if (numeric_[i] && !parse_number(cells[i], v)) numeric_[i] = false;
  }
  rows_.push_back(std::move(cells));
  return true;
}

void ColumnSummary::add_row_unchecked(std::vector<std::string> cells) {
  const std::size_t n = std::min(cells.size(), columns_.size());
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    if (numeric_[i] && !parse_number(cells[i], v)) numeric_[i] = false;
  }
  rows_.push_back(std::move(cells));
}

bool ColumnSummary::absorb(const ColumnSummary& other, std::ostream& err) {
  if (other.columns_ != columns_) {
    err << "error: cannot merge accumulators with different headers\n";
    return false;
  }
  rows_.reserve(rows_.size() + other.rows_.size());
  for (const auto& row : other.rows_) {
    // Replaying through add_row_unchecked re-derives the numeric mask, so
    // the merged state equals a single accumulator fed both row sequences.
    add_row_unchecked(row);
  }
  return true;
}

void ColumnSummary::save(std::ostream& os) const {
  os << "CS1 " << columns_.size() << ' ';
  for (const auto& c : columns_) write_str(os, c);
  os << ' ' << rows_.size() << '\n';
  for (const auto& row : rows_) {
    os << row.size() << ' ';
    for (const auto& cell : row) write_str(os, cell);
    os << '\n';
  }
}

bool ColumnSummary::load(std::istream& is, ColumnSummary& out,
                         std::string& err) {
  err = "truncated or malformed accumulator state";
  std::string tag;
  std::size_t n_cols = 0, n_rows = 0;
  if (!(is >> tag) || tag != "CS1" || !(is >> n_cols) || n_cols > (1u << 20)) {
    return false;
  }
  std::vector<std::string> columns(n_cols);
  for (auto& c : columns) {
    if (!read_str(is, c)) return false;
  }
  out = ColumnSummary{std::move(columns)};
  if (!(is >> n_rows) || n_rows > (1u << 30)) return false;
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::size_t n_cells = 0;
    if (!(is >> n_cells) || n_cells > (1u << 20)) return false;
    std::vector<std::string> cells(n_cells);
    for (auto& cell : cells) {
      if (!read_str(is, cell)) return false;
    }
    // Unchecked on purpose: the raw path may have stored ragged rows, and
    // replay must reproduce the saved state exactly either way.
    out.add_row_unchecked(std::move(cells));
  }
  err.clear();
  return true;
}

std::vector<std::string> ColumnSummary::header(
    const std::vector<Stat>& stats) const {
  std::vector<std::string> out;
  out.reserve(columns_.size() * stats.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (numeric_[i]) {
      for (Stat s : stats) {
        out.push_back(columns_[i] + '_' + std::string{stat_name(s)});
      }
    } else {
      out.push_back(columns_[i]);
    }
  }
  return out;
}

std::vector<std::vector<std::string>> ColumnSummary::summarize(
    const std::vector<Stat>& stats) const {
  struct Group {
    std::vector<std::string> labels;  // label-column cells, in column order
    std::vector<Welford> acc;         // one per numeric column
  };
  std::vector<Group> groups;
  std::map<std::vector<std::string>, std::size_t> index;

  std::size_t n_numeric = 0;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (numeric_[i]) ++n_numeric;
  }
  for (const auto& row : rows_) {
    std::vector<std::string> key;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!numeric_[i]) key.push_back(row[i]);
    }
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(key), std::vector<Welford>(n_numeric)});
    }
    Group& g = groups[it->second];
    std::size_t j = 0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!numeric_[i]) continue;
      double v = 0.0;
      // Every cell of a still-numeric column parsed during add_row.
      if (parse_number(row[i], v)) g.acc[j].add(v);
      ++j;
    }
  }

  std::vector<std::vector<std::string>> out;
  out.reserve(groups.size());
  for (const Group& g : groups) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size() * stats.size());
    std::size_t label_at = 0, acc_at = 0;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (numeric_[i]) {
        for (Stat s : stats) {
          cells.push_back(format_value(g.acc[acc_at].value(s)));
        }
        ++acc_at;
      } else {
        cells.push_back(g.labels[label_at]);
        ++label_at;
      }
    }
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace tfmcc::summary
