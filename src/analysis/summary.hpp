#pragma once

// Column statistics over CSV rows: the aggregation engine behind
// `tfmcc_sim sweep --replicate N`.
//
// A ColumnSummary is constructed from a CSV header and fed data rows one at
// a time.  Columns whose every cell parses as a finite double are numeric;
// a single non-parsing cell demotes a column to a *label* for good.  The
// summary then groups the rows by the tuple of label-column values — a
// per-flow trace like fig09's `flow,time_s,kbps` yields one group per flow,
// an all-numeric trace yields exactly one group — and reports, per group,
// streaming statistics (Welford's algorithm, numerically stable in one
// pass) for each numeric column.  Each numeric column `c` expands to
// `c_mean`, `c_cov`, ... for the requested statistics; label columns keep
// their name and carry the group's value.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tfmcc::summary {

/// The per-column statistics `--stats` can request.  `kCov` is the
/// coefficient of variation, stddev/|mean| — the dispersion measure the
/// paper-style scaling plots want, dimensionless across columns with very
/// different magnitudes.
enum class Stat { kMean, kStddev, kCov, kMin, kMax };

/// The `--stats` spelling of a statistic ("mean", "stddev", ...), also the
/// column-name suffix in the expanded header.
std::string_view stat_name(Stat s);

/// Parses a `--stats` list ("mean,cov" / "mean,stddev,min,max") in the
/// order given.  Returns false after a diagnostic on `err` for an empty
/// list, an unknown name, or a duplicate.
bool parse_stats(std::string_view text, std::vector<Stat>& out,
                 std::ostream& err);

/// The default statistics when `--stats` is not given: mean and CoV.
std::vector<Stat> default_stats();

/// Full-string parse of a finite double; the numeric-column criterion.
bool parse_number(std::string_view text, double& out);

/// Length-prefixed string IO ("<len>:<bytes>", no quoting or escaping)
/// shared by the accumulator serializers and the sweep checkpoint/partial
/// file formats.  read_str returns false on a truncated or absurd-length
/// stream.
void write_str(std::ostream& os, std::string_view s);
bool read_str(std::istream& is, std::string& out);

/// Streaming mean/variance/extrema of one sample sequence (Welford's
/// one-pass update).  stddev is the sample standard deviation (n-1
/// denominator); with fewer than two samples stddev and cov are 0, so a
/// single replicate reports its value with zero dispersion rather than NaN.
class Welford {
 public:
  void add(double x);

  /// Folds another accumulator in (Chan et al.'s parallel combine).
  /// Merging with an empty side copies the other bit-for-bit; merging two
  /// non-empty sides is mathematically exact but, like any floating-point
  /// reassociation, not guaranteed bitwise-equal to feeding the samples
  /// sequentially — the sweep shard/merge machinery therefore partitions
  /// work so that cross-shard merges always have an empty side.
  void merge(const Welford& o);

  /// Bit-exact text serialization (count plus the four doubles as raw
  /// IEEE-754 bit patterns in hex): load(save(w)) reproduces w exactly.
  void save(std::ostream& os) const;
  static bool load(std::istream& is, Welford& out);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double stddev() const;
  /// stddev/|mean|; 0 when the mean is 0 (the ratio is undefined there and
  /// the columns it guards are non-negative rates, where mean 0 implies
  /// every sample is 0).
  double cov() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double value(Stat s) const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Splits one CSV line into cells (no quoting — the scenario CSVs never
/// emit commas inside a cell).
std::vector<std::string> split_csv(std::string_view line);

/// Grouped per-column statistics over CSV data rows sharing one header.
/// Rows are buffered; classification (numeric vs label) is monotone —
/// numeric until the first cell that does not parse — and grouping happens
/// when the summary is read back, so late demotions reshuffle nothing.
class ColumnSummary {
 public:
  explicit ColumnSummary(std::vector<std::string> columns);

  /// Buffers one data row.  Returns false after a diagnostic on `err`
  /// when the cell count does not match the header.
  bool add_row(std::vector<std::string> cells, std::ostream& err);

  /// Buffers one data row without the cell-count check: the raw-aggregate
  /// path stores rows verbatim (and never groups them), so a ragged row is
  /// passed through rather than rejected.
  void add_row_unchecked(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// The header columns this summary was constructed from.
  const std::vector<std::string>& columns() const { return columns_; }

  /// The buffered rows, in feed order; the raw sweep aggregate re-joins
  /// them with ',' (cells never contain commas, so that is byte-exact).
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Appends another summary's rows, in their feed order, behind this
  /// one's.  Row replay makes the merge *exactly* associative — merging
  /// shard partials in any grouping yields bitwise-identical state — at
  /// the cost of carrying rows rather than collapsed moments.  Returns
  /// false after a diagnostic on `err` when the headers differ.
  bool absorb(const ColumnSummary& other, std::ostream& err);

  /// Versioned, length-prefixed serialization of the full accumulator
  /// state (header, classification, rows).  load() returns false with a
  /// diagnostic in `err` on a truncated or malformed stream; a round trip
  /// reproduces the state exactly, so a resumed or merged sweep emits
  /// byte-identical output.
  void save(std::ostream& os) const;
  static bool load(std::istream& is, ColumnSummary& out, std::string& err);

  /// Per-column classification, parallel to the header: true while every
  /// fed cell parsed as a finite double.  Cheap to compare across summaries
  /// sharing a header (same mask <=> same expanded header).
  const std::vector<bool>& numeric_mask() const { return numeric_; }

  /// Expanded column names, in header order: label columns keep their bare
  /// name, numeric columns become `<col>_<stat>` per requested statistic.
  std::vector<std::string> header(const std::vector<Stat>& stats) const;

  /// One summary row per distinct label tuple, in first-appearance order
  /// (which is the row feed order, so the output is deterministic).  Cells
  /// match header(stats); statistic values are formatted with "%g", the
  /// same spelling the scenarios' own CSV doubles use.
  std::vector<std::vector<std::string>> summarize(
      const std::vector<Stat>& stats) const;

 private:
  std::vector<std::string> columns_;
  std::vector<bool> numeric_;  // parallel to columns_, monotone demotion
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfmcc::summary
