#pragma once

#include <algorithm>
#include <cstdint>

#include "net/packet.hpp"
#include "net/topology.hpp"

namespace tfmcc {

/// A multicast session: one source-rooted group plus the port convention
/// that binds receiver agents to group deliveries.  This is the layer the
/// TFMCC sender/receiver (and any other multicast application) talk to,
/// keeping group-management details out of the protocol code.
///
/// A session owns a (data_port, control_port) pair: data packets fan out to
/// `data_port` on every member node, feedback flows unicast back to
/// `control_port` on the source.  Concurrent sessions sharing nodes must use
/// disjoint pairs (SessionManager allocates them); the defaults match the
/// historical single-session port convention (kTfmccSenderPort = 1).
class MulticastSession {
 public:
  MulticastSession(Topology& topo, NodeId source, PortId data_port,
                   PortId control_port = 1)
      : topo_{topo},
        source_{source},
        data_port_{data_port},
        control_port_{control_port},
        group_{topo.create_group(source)} {}

  GroupId group() const { return group_; }
  NodeId source() const { return source_; }
  PortId data_port() const { return data_port_; }
  PortId control_port() const { return control_port_; }
  Topology& topology() { return topo_; }

  /// Subscribe `member`'s agent (already attached to `data_port` on that
  /// node) to the session.  Grafts the node onto the distribution tree.
  void join(NodeId member) { topo_.join(group_, member); }

  /// Unsubscribe; prunes the distribution tree.
  void leave(NodeId member) { topo_.leave(group_, member); }

  bool is_member(NodeId n) const { return topo_.is_member(group_, n); }
  int member_count() const { return topo_.member_count(group_); }

  /// Modeled-receiver accounting (hybrid full/model tier): a
  /// ModeledReceiverBlock registers how many receivers it stands in for.
  /// member_count() counts tree members — a block's tap node is one member —
  /// so harnesses that want the logical receiver population add
  /// modeled_count() minus the tap nodes themselves; total_endpoint_count()
  /// does that bookkeeping.
  void add_modeled(int n) {
    modeled_ += n;
    ++modeled_taps_;
  }
  /// Mismatched removes (more receivers or taps than were ever added) used
  /// to drive the counters negative and silently corrupt
  /// total_endpoint_count(); clamp at zero so the count degrades to "no
  /// modeled receivers" instead.
  void remove_modeled(int n) {
    modeled_ = std::max(0, modeled_ - n);
    modeled_taps_ = std::max(0, modeled_taps_ - 1);
  }
  int modeled_count() const { return modeled_; }
  int modeled_taps() const { return modeled_taps_; }
  /// Logical receiver endpoints in the session: full members plus modeled
  /// receivers (each block's tap member replaced by its block population).
  int total_endpoint_count() const {
    return member_count() - modeled_taps_ + modeled_;
  }

  /// Inject a packet at the source and replicate it down the tree.
  void send_from_source(const PacketPtr& p) { topo_.node(source_).send(p); }

 private:
  Topology& topo_;
  NodeId source_;
  PortId data_port_;
  PortId control_port_;
  GroupId group_;
  int modeled_{0};       // modeled receivers currently joined via blocks
  int modeled_taps_{0};  // tap nodes hosting those blocks
};

}  // namespace tfmcc
