#include "net/builders.hpp"

namespace tfmcc {

Dumbbell make_dumbbell(Topology& topo, int n_left, int n_right,
                       const LinkConfig& bottleneck,
                       const LinkConfig& access) {
  Dumbbell d;
  d.left_router = topo.add_node();
  d.right_router = topo.add_node();
  auto [fwd, rev] = topo.add_duplex_link(d.left_router, d.right_router,
                                         bottleneck);
  d.bottleneck_fwd = fwd;
  d.bottleneck_rev = rev;
  for (int i = 0; i < n_left; ++i) {
    const NodeId h = topo.add_node();
    topo.add_duplex_link(h, d.left_router, access);
    d.left_hosts.push_back(h);
  }
  for (int i = 0; i < n_right; ++i) {
    const NodeId h = topo.add_node();
    topo.add_duplex_link(h, d.right_router, access);
    d.right_hosts.push_back(h);
  }
  topo.compute_routes();
  return d;
}

Star make_star(Topology& topo, const LinkConfig& sender_link,
               const std::vector<LinkConfig>& leaf_cfgs) {
  Star s;
  s.hub = topo.add_node();
  s.sender = topo.add_node();
  topo.add_duplex_link(s.sender, s.hub, sender_link);
  for (const auto& cfg : leaf_cfgs) {
    const NodeId leaf = topo.add_node();
    Link& to_leaf = topo.add_link(s.hub, leaf, cfg);
    Link& from_leaf = topo.add_link(leaf, s.hub, cfg);
    s.leaves.push_back(leaf);
    s.leaf_links.emplace_back(&to_leaf, &from_leaf);
  }
  topo.compute_routes();
  return s;
}

}  // namespace tfmcc
