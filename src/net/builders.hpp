#pragma once

#include <vector>

#include "net/topology.hpp"

namespace tfmcc {

/// The classic single-bottleneck ("dumbbell") topology of fig. 8: n_left
/// sender hosts and n_right receiver hosts joined by one bottleneck link
/// between two routers.
struct Dumbbell {
  NodeId left_router{kInvalidNode};
  NodeId right_router{kInvalidNode};
  std::vector<NodeId> left_hosts;
  std::vector<NodeId> right_hosts;
  Link* bottleneck_fwd{nullptr};  // left -> right direction
  Link* bottleneck_rev{nullptr};
};

Dumbbell make_dumbbell(Topology& topo, int n_left, int n_right,
                       const LinkConfig& bottleneck, const LinkConfig& access);

/// Star/hub topology used by the responsiveness experiments (§4.2): one
/// sender and k receivers, each behind its own configurable link to the hub.
struct Star {
  NodeId hub{kInvalidNode};
  NodeId sender{kInvalidNode};
  std::vector<NodeId> leaves;
  /// Per-leaf (hub->leaf, leaf->hub) links, for mid-run reconfiguration.
  std::vector<std::pair<Link*, Link*>> leaf_links;
};

Star make_star(Topology& topo, const LinkConfig& sender_link,
               const std::vector<LinkConfig>& leaf_cfgs);

}  // namespace tfmcc
