#pragma once

#include <cstdint>
#include <variant>

#include "util/sim_time.hpp"

namespace tfmcc {

using NodeId = std::int32_t;
using PortId = std::int32_t;
using GroupId = std::int32_t;
using FlowId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr GroupId kNoGroup = -1;
constexpr std::int32_t kInvalidReceiver = -1;

/// TCP segment/ACK header (the fields our Reno model needs).
struct TcpHeader {
  FlowId flow{0};
  std::int64_t seqno{0};      // data: first packet index of this segment
  std::int64_t ackno{0};      // ack: next expected packet index (cumulative)
  bool is_ack{false};
  SimTime ts{};               // sender timestamp (RTTM)
  SimTime ts_echo{};          // echoed timestamp
};

/// Echo slot carried in every TFMCC data packet: the sender bounces one
/// receiver's feedback timestamp so that receiver can measure its RTT
/// (paper §2.4.2).  `delay` is the interval the timestamp was held at the
/// sender between feedback receipt and echo transmission.
struct TfmccEcho {
  std::int32_t receiver{kInvalidReceiver};
  SimTime ts{};
  SimTime delay{};
  bool valid() const { return receiver != kInvalidReceiver; }
};

/// Header of a TFMCC data packet (multicast, sender -> all receivers).
struct TfmccDataHeader {
  std::int64_t seqno{0};
  SimTime send_ts{};            // sender clock at transmission (§2.4.3)
  double send_rate_Bps{0.0};    // current transmission rate
  std::int32_t clr{kInvalidReceiver};  // current limiting receiver id
  bool slowstart{false};

  // Feedback-round state (§2.5): receivers start their suppression timers
  // when `round` changes; `fb_deadline` is this round's maximum feedback
  // delay T; `supp_rate` echoes the lowest rate reported so far this round
  // (the suppression signal), with `supp_has_loss` qualifying it during
  // slowstart (a no-loss report cannot suppress a loss report, §2.6).
  std::int32_t round{0};
  SimTime fb_deadline{};
  double supp_rate_Bps{-1.0};  // < 0: no feedback received yet this round
  bool supp_has_loss{false};

  TfmccEcho echo{};
};

/// Header of a TFMCC receiver report (unicast, receiver -> sender).
struct TfmccFeedbackHeader {
  std::int32_t receiver{kInvalidReceiver};
  std::int32_t round{0};
  double calc_rate_Bps{0.0};   // X_calc from the control equation
  double recv_rate_Bps{0.0};   // measured receive rate (slowstart, caps)
  double loss_event_rate{0.0}; // p fed into the equation
  bool has_rtt{false};         // true once a real RTT measurement exists
  SimTime rtt{};               // RTT used in the calculation
  bool has_loss{false};        // receiver has seen at least one loss event
  bool leaving{false};         // explicit leave notification
  SimTime ts{};                // receiver clock at feedback send (for echo)
  SimTime echo_ts{};           // send_ts of last data packet (sender-side RTT)
  SimTime echo_delay{};        // hold time between data receipt and this send
};

/// PGMCC acker ACK (one per data packet received by the group
/// representative; drives the sender's TCP-like window).
struct PgmccAckHeader {
  std::int32_t receiver{kInvalidReceiver};
  std::int64_t seqno{0};       // data packet being acknowledged
  SimTime ts_echo{};           // data packet's send timestamp
  SimTime echo_delay{};        // hold time at the receiver
  double loss_rate{0.0};       // acker's smoothed loss estimate
};

using PacketHeader =
    std::variant<std::monostate, TcpHeader, TfmccDataHeader,
                 TfmccFeedbackHeader, PgmccAckHeader>;

}  // namespace tfmcc
