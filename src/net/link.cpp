#include "net/link.hpp"

#include "net/node.hpp"

namespace tfmcc {

Link::Link(Simulator& sim, Node& to, LinkConfig cfg, Rng rng)
    : sim_{sim}, to_{to}, cfg_{cfg}, rng_{std::move(rng)} {
  if (cfg_.use_red) {
    RedQueue::Config red;
    red.limit_packets = cfg_.queue_limit_packets;
    red.max_th = static_cast<double>(cfg_.queue_limit_packets) * 0.5;
    red.min_th = red.max_th / 3.0;
    queue_ = std::make_unique<RedQueue>(red, rng_.substream(1));
  } else {
    auto dt = std::make_unique<DropTailQueue>(cfg_.queue_limit_packets);
    droptail_ = dt.get();
    queue_ = std::move(dt);
  }
}

void Link::send(const PacketPtr& p) {
  if (cfg_.loss_rate > 0.0 && rng_.bernoulli(cfg_.loss_rate)) {
    ++loss_drops_;
    return;
  }
  const bool accepted = droptail_ != nullptr ? droptail_->enqueue(p)
                                             : queue_->enqueue(p);
  if (!accepted) return;
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  PacketPtr p =
      droptail_ != nullptr ? droptail_->dequeue() : queue_->dequeue();
  if (!p) return;
  transmitting_ = true;
  const SimTime tx = transmission_time(p->size_bytes);
  sim_.in(tx, [this, p = std::move(p)]() mutable {
    on_transmit_complete(std::move(p));
  });
}

void Link::on_transmit_complete(PacketPtr p) {
  ++delivered_;
  delivered_bytes_ += p->size_bytes;
  // Propagation: hand the packet to the destination node after the delay
  // (plus the phase-breaking jitter).  The delay is sampled at
  // transmit-completion time so mid-run delay changes (fig. 13) take
  // effect for subsequent packets.
  SimTime delay = cfg_.delay;
  if (cfg_.jitter > SimTime::zero()) {
    delay += cfg_.jitter * rng_.uniform(0.0, 1.0);
  }
  // Links are FIFO: jitter must never reorder deliveries (the receivers'
  // loss detection relies on in-order arrival).
  SimTime arrival = sim_.now() + delay;
  if (arrival < last_arrival_) arrival = last_arrival_;
  last_arrival_ = arrival;
  sim_.at(arrival, [node = &to_, p = std::move(p)]() mutable {
    node->receive(p);
  });
  transmitting_ = false;
  if (!queue_->empty()) start_transmission();
}

}  // namespace tfmcc
