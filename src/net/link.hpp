#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

class Node;

/// Configuration of a unidirectional link.
struct LinkConfig {
  double rate_bps{1e6};          // transmission rate in bits/second
  SimTime delay{SimTime::millis(10)};  // propagation delay
  std::size_t queue_limit_packets{50}; // ns-2's default DropTail limit
  double loss_rate{0.0};         // independent Bernoulli loss probability
  bool use_red{false};           // RED instead of drop-tail (ablation)
  /// Random per-packet processing jitter added to the propagation delay,
  /// uniform in [0, jitter].  Perfectly deterministic delays phase-lock
  /// ACK-clocked TCP arrivals to queue departures at a full drop-tail
  /// queue ("phase effects", Floyd & Jacobson 1992), starving paced flows;
  /// jitter on the order of one bottleneck packet service time breaks the
  /// lock, as ns-2's random processing overhead did.  Defaults to zero so
  /// unit tests stay exactly deterministic; the experiment scenarios
  /// enable it.
  SimTime jitter{SimTime::zero()};
};

/// A unidirectional point-to-point link: output queue + transmitter +
/// propagation delay + optional Bernoulli loss model.
///
/// Transmission is serialised: a packet occupies the transmitter for
/// `size * 8 / rate` seconds, then propagates for `delay` and is handed to
/// the destination node.  The loss model drops packets on arrival at the
/// link (before queueing), modelling ns-2's error-model-on-link setup used
/// for the paper's lossy-path experiments.
class Link {
 public:
  Link(Simulator& sim, Node& to, LinkConfig cfg, Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Submit a packet for transmission (may be dropped by loss model/queue).
  /// Takes a reference so multicast fan-out shares one PacketPtr across all
  /// branches without per-branch refcount churn; the queue copies once on
  /// accept.
  void send(const PacketPtr& p);

  const LinkConfig& config() const { return cfg_; }
  Node& destination() { return to_; }
  const Node& destination() const { return to_; }

  SimTime transmission_time(std::int32_t bytes) const {
    return SimTime::seconds(static_cast<double>(bytes) * 8.0 / cfg_.rate_bps);
  }

  // Counters for experiment harnesses.
  std::int64_t delivered_packets() const { return delivered_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  std::int64_t queue_drops() const { return queue_->drops(); }
  std::int64_t loss_model_drops() const { return loss_drops_; }
  const Queue& queue() const { return *queue_; }

  /// Change the Bernoulli loss rate mid-experiment (fig. 11 join/leave
  /// scenarios reconfigure paths while the simulation runs).
  void set_loss_rate(double p) { cfg_.loss_rate = p; }
  /// Change the propagation delay mid-experiment (fig. 13 RTT changes).
  void set_delay(SimTime d) { cfg_.delay = d; }

 private:
  void start_transmission();
  void on_transmit_complete(PacketPtr p);

  Simulator& sim_;
  Node& to_;
  LinkConfig cfg_;
  Rng rng_;
  std::unique_ptr<Queue> queue_;
  // Non-null when queue_ is the (overwhelmingly common) drop-tail queue:
  // lets the two per-hop queue calls go direct instead of virtual.
  DropTailQueue* droptail_{nullptr};
  bool transmitting_{false};
  SimTime last_arrival_{};  // FIFO guard: deliveries never reorder
  std::int64_t delivered_{0};
  std::int64_t delivered_bytes_{0};
  std::int64_t loss_drops_{0};
};

}  // namespace tfmcc
