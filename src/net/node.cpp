#include "net/node.hpp"

#include "net/link.hpp"
#include "net/topology.hpp"
#include "util/log.hpp"

namespace tfmcc {

void Node::attach_agent(PortId port, Agent* agent) {
  for (auto& [p, a] : agents_) {
    if (p == port) {
      a = agent;
      return;
    }
  }
  agents_.emplace_back(port, agent);
}

void Node::detach_agent(PortId port) {
  for (auto it = agents_.begin(); it != agents_.end(); ++it) {
    if (it->first == port) {
      agents_.erase(it);
      return;
    }
  }
}

void Node::set_route(NodeId dst, Link* next_hop) {
  const auto idx = static_cast<std::size_t>(dst);
  if (routes_.size() <= idx) routes_.resize(idx + 1, nullptr);
  routes_[idx] = next_hop;
}

Link* Node::route(NodeId dst) const {
  const auto idx = static_cast<std::size_t>(dst);
  return idx < routes_.size() ? routes_[idx] : nullptr;
}

void Node::receive(const PacketPtr& p) {
  if (p->is_multicast()) {
    if (topo_.is_member(p->group, id_)) deliver_local(p);
    forward_multicast(p);
    return;
  }
  if (p->dst == id_) {
    deliver_local(p);
  } else {
    forward_unicast(p);
  }
}

void Node::send(const PacketPtr& p) {
  if (p->is_multicast()) {
    // Source injection: replicate down the distribution tree from here.
    forward_multicast(p);
    return;
  }
  if (p->dst == id_) {
    deliver_local(p);
    return;
  }
  forward_unicast(p);
}

void Node::deliver_local(const PacketPtr& p) {
  for (const auto& [port, agent] : agents_) {
    if (port == p->dport) {
      ++delivered_local_;
      delivered_endpoints_ += agent->endpoint_count();
      agent->handle_packet(*p);
      return;
    }
  }
}

void Node::forward_unicast(const PacketPtr& p) {
  Link* l = route(p->dst);
  if (l == nullptr) {
    TFMCC_LOG(LogLevel::kWarn, SimTime::zero(), "node",
              "node %d: no route to %d, packet dropped", id_, p->dst);
    return;
  }
  ++forwarded_;
  l->send(p);
}

void Node::forward_multicast(const PacketPtr& p) {
  for (Link* l : topo_.mcast_out_links(p->group, id_)) {
    ++forwarded_;
    l->send(p);
  }
}

}  // namespace tfmcc
