#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

class Link;
class Topology;

/// A protocol endpoint attached to a node port (TCP sender/sink, TFMCC
/// sender/receiver, ...).  `handle_packet` is invoked for every packet
/// delivered to the agent's port, including multicast deliveries for groups
/// the node has joined.
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void handle_packet(const Packet& p) = 0;
  /// Number of protocol endpoints this agent stands in for.  1 for ordinary
  /// agents; a modeled-receiver block reports its receiver count so delivery
  /// accounting can weigh one physical delivery as N logical ones.
  virtual int endpoint_count() const { return 1; }
};

/// A network node: forwards packets according to the topology's routing
/// tables and delivers local traffic to attached agents.
class Node {
 public:
  Node(Topology& topo, NodeId id) : topo_{topo}, id_{id} {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  /// Bind an agent to a local port.  The agent must outlive the node.
  void attach_agent(PortId port, Agent* agent);
  void detach_agent(PortId port);

  /// Entry point for packets arriving from a link (or injected locally).
  void receive(const PacketPtr& p);

  /// Entry point for agents sending a packet originating at this node.
  void send(const PacketPtr& p);

  /// Routing: next-hop link for a unicast destination.
  void set_route(NodeId dst, Link* next_hop);
  Link* route(NodeId dst) const;

  std::int64_t forwarded() const { return forwarded_; }
  std::int64_t delivered_local() const { return delivered_local_; }
  /// Deliveries weighted by the receiving agent's endpoint_count(): the
  /// number of *logical* endpoints reached (equals delivered_local() unless
  /// a modeled-receiver block is attached).
  std::int64_t delivered_endpoints() const { return delivered_endpoints_; }

 private:
  void deliver_local(const PacketPtr& p);
  void forward_unicast(const PacketPtr& p);
  void forward_multicast(const PacketPtr& p);

  Topology& topo_;
  NodeId id_;
  // A node hosts a handful of agents at most; a flat (port, agent) table
  // beats a hash map for the per-delivery port lookup.
  std::vector<std::pair<PortId, Agent*>> agents_;
  std::vector<Link*> routes_;  // indexed by destination NodeId
  std::int64_t forwarded_{0};
  std::int64_t delivered_local_{0};
  std::int64_t delivered_endpoints_{0};
};

}  // namespace tfmcc
