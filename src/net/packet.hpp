#pragma once

#include <cstdint>
#include <new>
#include <utility>

#include "net/headers.hpp"
#include "util/pool.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

class PacketPtr;
class MutablePacketPtr;
MutablePacketPtr make_pooled_packet(FixedBlockPool& pool);
MutablePacketPtr make_heap_packet();

/// A simulated packet.  Immutable once sent; multicast replication shares
/// one instance between all branches of the distribution tree, so a packet
/// delivered to 10,000 receivers is allocated exactly once — and with the
/// per-simulator pool, "allocated" means one pool checkout.
///
/// Reference counting is intrusive and non-atomic: a Simulator and all of
/// its packets are confined to one thread (parallel sweeps run one
/// Simulator per worker), so the per-hop count updates are plain integer
/// ops instead of the lock-prefixed RMWs std::shared_ptr would issue.
struct Packet {
  std::uint64_t uid{0};
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};   // unicast destination; ignored for multicast
  PortId sport{0};
  PortId dport{0};
  GroupId group{kNoGroup};    // >= 0: multicast packet addressed to group
  std::int32_t size_bytes{0};
  SimTime created{};
  PacketHeader header{};

  bool is_multicast() const { return group != kNoGroup; }

  const TcpHeader* tcp() const { return std::get_if<TcpHeader>(&header); }
  const TfmccDataHeader* tfmcc_data() const {
    return std::get_if<TfmccDataHeader>(&header);
  }
  const TfmccFeedbackHeader* tfmcc_feedback() const {
    return std::get_if<TfmccFeedbackHeader>(&header);
  }
  const PgmccAckHeader* pgmcc_ack() const {
    return std::get_if<PgmccAckHeader>(&header);
  }

 private:
  friend class PacketPtr;
  friend class MutablePacketPtr;
  friend MutablePacketPtr make_pooled_packet(FixedBlockPool& pool);
  friend MutablePacketPtr make_heap_packet();

  static void release(const Packet* p) {
    if (--p->refs_ == 0) {
      FixedBlockPool* pool = p->pool_;
      p->~Packet();
      void* mem = const_cast<Packet*>(p);
      if (pool != nullptr) {
        pool->deallocate(mem, sizeof(Packet));
      } else {
        ::operator delete(mem);
      }
    }
  }

  mutable std::uint32_t refs_{0};
  FixedBlockPool* pool_{nullptr};  // null: plain heap packet (tests)
};

/// Shared handle to an immutable packet (the ubiquitous type on the
/// delivery chain).  Copy = one non-atomic increment; the delivery chain
/// passes `const PacketPtr&`, so forwarding and local delivery do not touch
/// the count at all.
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  PacketPtr(const PacketPtr& o) : p_{o.p_} {
    if (p_ != nullptr) ++p_->refs_;
  }
  PacketPtr(PacketPtr&& o) noexcept : p_{o.p_} { o.p_ = nullptr; }
  PacketPtr& operator=(const PacketPtr& o) {
    PacketPtr tmp{o};
    std::swap(p_, tmp.p_);
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~PacketPtr() {
    if (p_ != nullptr) Packet::release(p_);
  }

  const Packet& operator*() const { return *p_; }
  const Packet* operator->() const { return p_; }
  const Packet* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  friend bool operator==(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ != b.p_;
  }
  friend bool operator==(const PacketPtr& a, std::nullptr_t) {
    return a.p_ == nullptr;
  }
  friend bool operator!=(const PacketPtr& a, std::nullptr_t) {
    return a.p_ != nullptr;
  }

 private:
  friend class MutablePacketPtr;
  explicit PacketPtr(const Packet* p) : p_{p} {
    if (p_ != nullptr) ++p_->refs_;
  }

  const Packet* p_{nullptr};
};

/// Owning handle to a packet under construction: protocol code checks one
/// out (Simulator::make_packet), fills the fields, and sends it — at which
/// point it converts (implicitly) into the immutable shared PacketPtr.
class MutablePacketPtr {
 public:
  MutablePacketPtr() = default;
  MutablePacketPtr(MutablePacketPtr&& o) noexcept : p_{o.p_} { o.p_ = nullptr; }
  MutablePacketPtr& operator=(MutablePacketPtr&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  MutablePacketPtr(const MutablePacketPtr&) = delete;
  MutablePacketPtr& operator=(const MutablePacketPtr&) = delete;
  ~MutablePacketPtr() {
    if (p_ != nullptr) Packet::release(p_);
  }

  Packet& operator*() const { return *p_; }
  Packet* operator->() const { return p_; }
  Packet* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  /// The send-time handoff: `node.send(std::move(pkt))` binds here.
  operator PacketPtr() const& { return PacketPtr{p_}; }  // NOLINT
  operator PacketPtr() && {                              // NOLINT
    PacketPtr out;
    out.p_ = p_;  // steal the reference, no count update
    p_ = nullptr;
    return out;
  }

 private:
  friend MutablePacketPtr make_pooled_packet(FixedBlockPool& pool);
  friend MutablePacketPtr make_heap_packet();
  explicit MutablePacketPtr(Packet* p) : p_{p} { ++p->refs_; }

  Packet* p_{nullptr};
};

/// Checkout from a pool (the Simulator hot path): placement-constructs a
/// fresh Packet in a recycled block.
inline MutablePacketPtr make_pooled_packet(FixedBlockPool& pool) {
  void* mem = pool.allocate(sizeof(Packet));
  Packet* p = new (mem) Packet;
  p->pool_ = &pool;
  return MutablePacketPtr{p};
}

/// Plain heap packet for tests and tools that have no Simulator around.
inline MutablePacketPtr make_heap_packet() {
  return MutablePacketPtr{new Packet};
}

/// Conventional sizes (bytes) used across the experiments: 1000-byte data
/// packets as in the paper's ns-2 setup, 40-byte TCP ACKs, and a small
/// report packet for TFMCC feedback.
constexpr std::int32_t kDataPacketBytes = 1000;
constexpr std::int32_t kAckPacketBytes = 40;
constexpr std::int32_t kFeedbackPacketBytes = 60;

}  // namespace tfmcc
