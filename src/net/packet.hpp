#pragma once

#include <cstdint>
#include <memory>

#include "net/headers.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

/// A simulated packet.  Immutable once sent; multicast replication shares
/// one instance between all branches of the distribution tree, so a packet
/// delivered to 10,000 receivers is allocated exactly once.
struct Packet {
  std::uint64_t uid{0};
  NodeId src{kInvalidNode};
  NodeId dst{kInvalidNode};   // unicast destination; ignored for multicast
  PortId sport{0};
  PortId dport{0};
  GroupId group{kNoGroup};    // >= 0: multicast packet addressed to group
  std::int32_t size_bytes{0};
  SimTime created{};
  PacketHeader header{};

  bool is_multicast() const { return group != kNoGroup; }

  const TcpHeader* tcp() const { return std::get_if<TcpHeader>(&header); }
  const TfmccDataHeader* tfmcc_data() const {
    return std::get_if<TfmccDataHeader>(&header);
  }
  const TfmccFeedbackHeader* tfmcc_feedback() const {
    return std::get_if<TfmccFeedbackHeader>(&header);
  }
  const PgmccAckHeader* pgmcc_ack() const {
    return std::get_if<PgmccAckHeader>(&header);
  }
};

using PacketPtr = std::shared_ptr<const Packet>;

/// Conventional sizes (bytes) used across the experiments: 1000-byte data
/// packets as in the paper's ns-2 setup, 40-byte TCP ACKs, and a small
/// report packet for TFMCC feedback.
constexpr std::int32_t kDataPacketBytes = 1000;
constexpr std::int32_t kAckPacketBytes = 40;
constexpr std::int32_t kFeedbackPacketBytes = 60;

}  // namespace tfmcc
