#include "net/queue.hpp"

#include <algorithm>
#include <cmath>

namespace tfmcc {

bool DropTailQueue::enqueue(const PacketPtr& p) {
  if (q_.size() >= limit_) {
    ++drops_;
    return false;
  }
  bytes_ += p->size_bytes;
  q_.push_back(p);
  ++accepted_;
  return true;
}

PacketPtr DropTailQueue::dequeue() {
  if (q_.size() == 0) return nullptr;
  PacketPtr p = q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

bool RedQueue::enqueue(const PacketPtr& p) {
  // Update the average queue estimate on every arrival.
  avg_ = (1.0 - cfg_.weight) * avg_ + cfg_.weight * static_cast<double>(q_.size());

  bool drop = false;
  if (q_.size() >= cfg_.limit_packets || avg_ >= 2.0 * cfg_.max_th) {
    drop = true;  // hard limit / gentle region ceiling
  } else if (avg_ >= cfg_.max_th) {
    // "Gentle" RED: drop probability rises linearly from max_p to 1.
    const double pb = cfg_.max_p + (avg_ - cfg_.max_th) / cfg_.max_th *
                                       (1.0 - cfg_.max_p);
    drop = rng_.bernoulli(pb);
  } else if (avg_ >= cfg_.min_th) {
    const double pb =
        cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
    // Spread drops out: scale by packets since last drop.
    const double pa =
        pb / std::max(1e-9, 1.0 - static_cast<double>(count_since_drop_) * pb);
    ++count_since_drop_;
    drop = rng_.bernoulli(std::clamp(pa, 0.0, 1.0));
  } else {
    count_since_drop_ = -1;
  }

  if (drop) {
    ++drops_;
    count_since_drop_ = 0;
    return false;
  }
  bytes_ += p->size_bytes;
  q_.push_back(p);
  ++accepted_;
  return true;
}

PacketPtr RedQueue::dequeue() {
  if (q_.size() == 0) return nullptr;
  PacketPtr p = q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

}  // namespace tfmcc
