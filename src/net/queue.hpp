#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace tfmcc {

namespace detail {

/// Fixed-capacity FIFO ring of PacketPtrs.  Queues have a hard packet
/// limit, so a preallocated ring replaces per-node deque traffic on the
/// enqueue/dequeue hot path (two queue ops per packet hop).
class PacketRing {
 public:
  explicit PacketRing(std::size_t capacity)
      : ring_(round_up_pow2(capacity)), mask_{ring_.size() - 1} {}

  std::size_t size() const { return size_; }

  void push_back(const PacketPtr& p) {
    ring_[(head_ + size_) & mask_] = p;
    ++size_;
  }

  PacketPtr pop_front() {
    PacketPtr p = std::move(ring_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return p;
  }

 private:
  // Power-of-two capacity: the index wrap is a mask, not a division, on a
  // path taken twice per packet hop.
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  std::vector<PacketPtr> ring_;
  std::size_t mask_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace detail

/// Interface for a link's outbound packet queue.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Try to accept a packet.  Returns false if the packet was dropped.
  /// Takes a reference: an accepted packet costs exactly one refcount
  /// increment (the queue's own copy), a dropped one costs none.
  virtual bool enqueue(const PacketPtr& p) = 0;
  /// Remove and return the head packet; nullptr when empty.
  virtual PacketPtr dequeue() = 0;

  virtual std::size_t size_packets() const = 0;
  virtual std::int64_t size_bytes() const = 0;
  bool empty() const { return size_packets() == 0; }

  std::int64_t drops() const { return drops_; }
  std::int64_t accepted() const { return accepted_; }

 protected:
  std::int64_t drops_{0};
  std::int64_t accepted_{0};
};

/// FIFO drop-tail queue with a packet-count limit — the queue discipline
/// used for every experiment in the paper ("drop-tail queues were used at
/// the routers", §4).
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t limit_packets)
      : limit_{limit_packets}, q_{limit_packets} {}

  bool enqueue(const PacketPtr& p) override;
  PacketPtr dequeue() override;

  std::size_t size_packets() const override { return q_.size(); }
  std::int64_t size_bytes() const override { return bytes_; }
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
  detail::PacketRing q_;
  std::int64_t bytes_{0};
};

/// Random Early Detection queue (Floyd & Jacobson 1993, "gentle" variant).
///
/// The paper notes that fairness "generally improves when active queuing
/// (e.g. RED) is used instead" of drop-tail; this implementation backs the
/// `ablation_red_queue` bench that checks exactly that claim.
class RedQueue final : public Queue {
 public:
  struct Config {
    std::size_t limit_packets{50};
    double min_th{5};     // packets
    double max_th{15};    // packets
    double max_p{0.10};   // drop probability at max_th
    double weight{0.002}; // EWMA weight for the average queue size
  };

  RedQueue(Config cfg, Rng rng)
      : cfg_{cfg}, rng_{std::move(rng)}, q_{cfg.limit_packets} {}

  bool enqueue(const PacketPtr& p) override;
  PacketPtr dequeue() override;

  std::size_t size_packets() const override { return q_.size(); }
  std::int64_t size_bytes() const override { return bytes_; }
  double avg_queue() const { return avg_; }

 private:
  Config cfg_;
  Rng rng_;
  detail::PacketRing q_;
  std::int64_t bytes_{0};
  double avg_{0.0};
  std::int64_t count_since_drop_{-1};
};

}  // namespace tfmcc
