#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace tfmcc {

/// Interface for a link's outbound packet queue.
class Queue {
 public:
  virtual ~Queue() = default;

  /// Try to accept a packet.  Returns false if the packet was dropped.
  virtual bool enqueue(PacketPtr p) = 0;
  /// Remove and return the head packet; nullptr when empty.
  virtual PacketPtr dequeue() = 0;

  virtual std::size_t size_packets() const = 0;
  virtual std::int64_t size_bytes() const = 0;
  bool empty() const { return size_packets() == 0; }

  std::int64_t drops() const { return drops_; }
  std::int64_t accepted() const { return accepted_; }

 protected:
  std::int64_t drops_{0};
  std::int64_t accepted_{0};
};

/// FIFO drop-tail queue with a packet-count limit — the queue discipline
/// used for every experiment in the paper ("drop-tail queues were used at
/// the routers", §4).
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t limit_packets) : limit_{limit_packets} {}

  bool enqueue(PacketPtr p) override;
  PacketPtr dequeue() override;

  std::size_t size_packets() const override { return q_.size(); }
  std::int64_t size_bytes() const override { return bytes_; }
  std::size_t limit() const { return limit_; }

 private:
  std::size_t limit_;
  std::deque<PacketPtr> q_;
  std::int64_t bytes_{0};
};

/// Random Early Detection queue (Floyd & Jacobson 1993, "gentle" variant).
///
/// The paper notes that fairness "generally improves when active queuing
/// (e.g. RED) is used instead" of drop-tail; this implementation backs the
/// `ablation_red_queue` bench that checks exactly that claim.
class RedQueue final : public Queue {
 public:
  struct Config {
    std::size_t limit_packets{50};
    double min_th{5};     // packets
    double max_th{15};    // packets
    double max_p{0.10};   // drop probability at max_th
    double weight{0.002}; // EWMA weight for the average queue size
  };

  RedQueue(Config cfg, Rng rng) : cfg_{cfg}, rng_{std::move(rng)} {}

  bool enqueue(PacketPtr p) override;
  PacketPtr dequeue() override;

  std::size_t size_packets() const override { return q_.size(); }
  std::int64_t size_bytes() const override { return bytes_; }
  double avg_queue() const { return avg_; }

 private:
  Config cfg_;
  Rng rng_;
  std::deque<PacketPtr> q_;
  std::int64_t bytes_{0};
  double avg_{0.0};
  std::int64_t count_since_drop_{-1};
};

}  // namespace tfmcc
