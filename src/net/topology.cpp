#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

namespace tfmcc {

NodeId Topology::add_node() {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id));
  adjacency_.emplace_back();
  return id;
}

NodeId Topology::add_nodes(int count) {
  const NodeId first = static_cast<NodeId>(nodes_.size());
  for (int i = 0; i < count; ++i) add_node();
  return first;
}

Link& Topology::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  auto& dst = node(to);
  links_.push_back(std::make_unique<Link>(
      sim_, dst, cfg, sim_.make_rng(rng_stream_counter_++)));
  Link* l = links_.back().get();
  adjacency_.at(static_cast<std::size_t>(from)).emplace_back(to, l);
  adjacency_index_dirty_ = true;
  return *l;
}

std::pair<Link*, Link*> Topology::add_duplex_link(NodeId a, NodeId b,
                                                  const LinkConfig& cfg) {
  Link& ab = add_link(a, b, cfg);
  Link& ba = add_link(b, a, cfg);
  return {&ab, &ba};
}

Link* Topology::link_between(NodeId from, NodeId to) {
  if (adjacency_index_dirty_) {
    adjacency_sorted_ = adjacency_;
    for (auto& row : adjacency_sorted_) {
      // stable: among parallel links the first added stays first, so the
      // lower_bound hit picks the same link the old linear scan did.
      std::stable_sort(row.begin(), row.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
    }
    adjacency_index_dirty_ = false;
  }
  const auto& row = adjacency_sorted_.at(static_cast<std::size_t>(from));
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const std::pair<NodeId, Link*>& e, NodeId key) { return e.first < key; });
  return (it != row.end() && it->first == to) ? it->second : nullptr;
}

void Topology::compute_routes() {
  // Dijkstra from every node.  Cost = (propagation delay, hop count); the
  // heap's deterministic tie-break on node id keeps route choice stable
  // across runs.  The distance table and heap storage are hoisted out of
  // the per-source loop and reused, so an n-node topology does O(1)
  // allocations here instead of O(n).
  const int n = node_count();
  struct Dist {
    std::int64_t delay_ns = std::numeric_limits<std::int64_t>::max();
    int hops = std::numeric_limits<int>::max();
    Link* first_link = nullptr;  // first hop on the path src -> node
  };
  std::vector<Dist> dist;
  using QE = std::tuple<std::int64_t, int, NodeId>;
  std::vector<QE> pq;
  pq.reserve(static_cast<std::size_t>(n) * 2);
  const auto heap_greater = std::greater<>{};
  for (NodeId src = 0; src < n; ++src) {
    dist.assign(static_cast<std::size_t>(n), Dist{});
    pq.clear();
    dist[static_cast<std::size_t>(src)] = {0, 0, nullptr};
    pq.emplace_back(0, 0, src);
    while (!pq.empty()) {
      std::pop_heap(pq.begin(), pq.end(), heap_greater);
      const auto [d, h, u] = pq.back();
      pq.pop_back();
      auto& du = dist[static_cast<std::size_t>(u)];
      if (d != du.delay_ns || h != du.hops) continue;  // stale entry
      for (auto& [v, l] : adjacency_[static_cast<std::size_t>(u)]) {
        const std::int64_t nd = d + l->config().delay.count_nanos();
        const int nh = h + 1;
        auto& dv = dist[static_cast<std::size_t>(v)];
        if (nd < dv.delay_ns || (nd == dv.delay_ns && nh < dv.hops)) {
          dv.delay_ns = nd;
          dv.hops = nh;
          dv.first_link = (u == src) ? l : du.first_link;
          pq.emplace_back(nd, nh, v);
          std::push_heap(pq.begin(), pq.end(), heap_greater);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != src) {
        node(src).set_route(dst, dist[static_cast<std::size_t>(dst)].first_link);
      }
    }
  }
  // Routing change can alter multicast trees.
  for (auto& g : groups_) rebuild_tree(g);
}

SimTime Topology::path_delay(NodeId a, NodeId b) const {
  SimTime total = SimTime::zero();
  NodeId cur = a;
  int guard = node_count() + 1;
  while (cur != b) {
    Link* l = node(cur).route(b);
    if (l == nullptr || guard-- <= 0) return SimTime::infinity();
    total += l->config().delay;
    cur = l->destination().id();
  }
  return total;
}

GroupId Topology::create_group(NodeId source) {
  GroupState g;
  g.source = source;
  g.member_flags.resize(static_cast<std::size_t>(node_count()), 0);
  g.out_links.resize(static_cast<std::size_t>(node_count()));
  g.attached.resize(static_cast<std::size_t>(node_count()), 0);
  groups_.push_back(std::move(g));
  return static_cast<GroupId>(groups_.size() - 1);
}

void Topology::ensure_group_capacity(GroupState& g) {
  // Nodes can be added after create_group() (the late-join scenarios do);
  // every per-node array must grow together.  member_flags alone used to
  // grow in join(), leaving out_links indexed out of bounds at its
  // create_group()-time size.
  const auto n = static_cast<std::size_t>(node_count());
  if (g.member_flags.size() < n) g.member_flags.resize(n, 0);
  if (g.out_links.size() < n) g.out_links.resize(n);
  if (g.attached.size() < n) g.attached.resize(n, 0);
}

void Topology::join(GroupId gid, NodeId member) {
  auto& g = groups_.at(static_cast<std::size_t>(gid));
  ensure_group_capacity(g);
  g.members.insert(member);
  g.member_flags.at(static_cast<std::size_t>(member)) = 1;
  if (membership_mode_ == MembershipMode::kFullRebuild) {
    rebuild_tree(g);
  } else {
    graft(g, member);
  }
}

void Topology::leave(GroupId gid, NodeId member) {
  auto& g = groups_.at(static_cast<std::size_t>(gid));
  ensure_group_capacity(g);
  g.members.erase(member);
  const auto idx = static_cast<std::size_t>(member);
  if (idx < g.member_flags.size()) g.member_flags[idx] = 0;
  if (membership_mode_ == MembershipMode::kFullRebuild) {
    rebuild_tree(g);
  } else {
    prune(g, member);
  }
}

bool Topology::is_member(GroupId gid, NodeId n) const {
  assert(static_cast<std::size_t>(gid) < groups_.size());
  const auto& g = groups_[static_cast<std::size_t>(gid)];
  const auto idx = static_cast<std::size_t>(n);
  return idx < g.member_flags.size() && g.member_flags[idx] != 0;
}

bool Topology::is_attached(GroupId gid, NodeId n) const {
  assert(static_cast<std::size_t>(gid) < groups_.size());
  const auto& g = groups_[static_cast<std::size_t>(gid)];
  const auto idx = static_cast<std::size_t>(n);
  return idx < g.attached.size() && g.attached[idx] != 0;
}

int Topology::member_count(GroupId gid) const {
  return static_cast<int>(
      groups_.at(static_cast<std::size_t>(gid)).members.size());
}

const std::vector<Link*>& Topology::mcast_out_links(GroupId gid,
                                                    NodeId at) const {
  assert(static_cast<std::size_t>(gid) < groups_.size());
  const auto& g = groups_[static_cast<std::size_t>(gid)];
  const auto idx = static_cast<std::size_t>(at);
  if (idx >= g.out_links.size()) return empty_links_;
  return g.out_links[idx];
}

void Topology::rebuild_tree(GroupId gid) {
  rebuild_tree(groups_.at(static_cast<std::size_t>(gid)));
}

void Topology::rebuild_tree(GroupState& g) {
  // Reverse-path tree: each member walks its unicast route towards the
  // source; the reversed edges of that walk are the tree edges.  Every node
  // has a unique parent (its unicast next hop towards the source), so the
  // union of the walks is a tree and no node receives duplicate copies.
  // The attached flags persist on the group: they are exactly the state the
  // incremental graft/prune maintenance keys off, so a full rebuild and any
  // later incremental events compose.
  ensure_group_capacity(g);
  for (auto& v : g.out_links) v.clear();
  g.attached.assign(static_cast<std::size_t>(node_count()), 0);
  if (g.source == kInvalidNode) return;
  for (NodeId m : g.members) graft(g, m);
}

void Topology::graft(GroupState& g, NodeId member) {
  // Walk the new member's reverse path towards the source, attaching nodes
  // until the walk meets an already-attached node (the shared trunk) or the
  // source itself.  This is the per-member walk of rebuild_tree, run once:
  // O(new branch length) per join instead of O(members x path length).
  if (g.source == kInvalidNode) return;
  NodeId cur = member;
  int guard = node_count() + 1;
  while (cur != g.source) {
    const auto ci = static_cast<std::size_t>(cur);
    if (g.attached[ci]) break;  // shared trunk
    Link* toward_src = node(cur).route(g.source);
    if (toward_src == nullptr || guard-- <= 0) {
      throw std::logic_error("multicast member unreachable from source; "
                             "did you call compute_routes()?");
    }
    const NodeId parent = toward_src->destination().id();
    Link* down = link_between(parent, cur);
    if (down == nullptr) {
      throw std::logic_error("asymmetric path: no reverse link for tree");
    }
    g.attached[ci] = 1;
    g.out_links[static_cast<std::size_t>(parent)].push_back(down);
    cur = parent;
  }
}

void Topology::prune(GroupState& g, NodeId member) {
  // Pop the unique leaf path above the departed member: a node leaves the
  // tree while it has no remaining tree children and is not a member in its
  // own right.  The walk stops at the first node some other member still
  // needs — an interior node keeps forwarding even after its own leave.
  if (g.source == kInvalidNode) return;
  NodeId cur = member;
  int guard = node_count() + 1;
  while (cur != g.source) {
    const auto ci = static_cast<std::size_t>(cur);
    if (!g.attached[ci] || !g.out_links[ci].empty() ||
        g.member_flags[ci] != 0) {
      break;
    }
    Link* toward_src = node(cur).route(g.source);
    if (toward_src == nullptr || guard-- <= 0) {
      throw std::logic_error("multicast member unreachable from source; "
                             "did you call compute_routes()?");
    }
    const NodeId parent = toward_src->destination().id();
    Link* down = link_between(parent, cur);
    auto& fan_out = g.out_links[static_cast<std::size_t>(parent)];
    const auto it = std::find(fan_out.begin(), fan_out.end(), down);
    assert(it != fan_out.end());
    if (it != fan_out.end()) fan_out.erase(it);
    g.attached[ci] = 0;
    cur = parent;
  }
}

}  // namespace tfmcc
