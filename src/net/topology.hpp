#pragma once

#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {

/// How group membership changes are folded into the distribution trees.
/// Incremental graft/prune is the default: a join walks only the new
/// member's reverse path until it meets the tree, a leave pops the unique
/// leaf path — O(path length) per event instead of O(members x path).
/// Full rebuild recomputes the whole tree from the member set on every
/// event (the historical behaviour); it stays available as the oracle the
/// churn property tests and BM_MembershipChurn compare against.
enum class MembershipMode { kIncremental, kFullRebuild };

/// Owns the nodes and links of an experiment, computes unicast routes
/// (Dijkstra over propagation delay) and maintains multicast distribution
/// trees (reverse-shortest-path trees, as dense-mode multicast routing
/// builds them in ns-2).
class Topology {
 public:
  explicit Topology(Simulator& sim) : sim_{sim} {}

  // --- construction -------------------------------------------------------
  NodeId add_node();
  NodeId add_nodes(int count);  // returns id of the first added node

  /// Unidirectional link from -> to.
  Link& add_link(NodeId from, NodeId to, const LinkConfig& cfg);
  /// Two unidirectional links with identical configuration.
  std::pair<Link*, Link*> add_duplex_link(NodeId a, NodeId b,
                                          const LinkConfig& cfg);

  /// (Re)compute all unicast routing tables.  Must be called after the last
  /// link is added and before traffic starts.  Cost metric: propagation
  /// delay, ties broken by hop count, then by node id (deterministic).
  void compute_routes();

  // --- access --------------------------------------------------------------
  Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  const Node& node(NodeId id) const {
    return *nodes_.at(static_cast<std::size_t>(id));
  }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Simulator& sim() { return sim_; }

  /// The link from `from` to its neighbour `to`, nullptr if not adjacent.
  /// With parallel links the first one added wins, as before; lookups go
  /// through a lazily (re)built sorted index, so tree rebuilds at a
  /// 1000-leaf hub cost a binary search instead of a hub-degree scan.
  Link* link_between(NodeId from, NodeId to);

  // --- multicast ------------------------------------------------------------
  /// Create a source-rooted multicast group.  All traffic for the group must
  /// originate at `source`.
  GroupId create_group(NodeId source);
  void join(GroupId g, NodeId member);
  void leave(GroupId g, NodeId member);
  bool is_member(GroupId g, NodeId n) const;
  int member_count(GroupId g) const;

  /// Distribution-tree fan-out at `at` for group `g` (empty when none).
  const std::vector<Link*>& mcast_out_links(GroupId g, NodeId at) const;

  /// True when `n` carries tree state for group `g` (it is on the
  /// distribution path from the source to some member).  The source itself
  /// is never "attached"; it is the tree root.
  bool is_attached(GroupId g, NodeId n) const;

  /// Recompute group `g`'s whole tree from its member set.  Behaviour-
  /// identical to a leave+rejoin of every member in ascending id order;
  /// exposed as the oracle the churn property tests compare the
  /// incremental graft/prune maintenance against.
  void rebuild_tree(GroupId g);

  /// Selects incremental graft/prune (default) or full per-event rebuild.
  /// Applies to subsequent join/leave calls; existing trees are untouched
  /// (both modes maintain the same invariants, so switching mid-run is
  /// safe).
  void set_membership_mode(MembershipMode m) { membership_mode_ = m; }
  MembershipMode membership_mode() const { return membership_mode_; }

  /// Total end-to-end propagation delay of the unicast path a -> b,
  /// +inf when unreachable.  (Diagnostics and tests.)
  SimTime path_delay(NodeId a, NodeId b) const;

 private:
  struct GroupState {
    NodeId source{kInvalidNode};
    std::set<NodeId> members;
    // Direct-indexed membership mirror of `members`: is_member() runs once
    // per node per multicast packet (the hottest query in large-receiver
    // scenarios), so it must be an array load, not a tree search.
    std::vector<char> member_flags;
    // out_links[node] = tree child links at that node.
    std::vector<std::vector<Link*>> out_links;
    // attached[node] = 1 when the node has an incoming tree edge (it lies on
    // the path from the source to some member).  This is what makes graft
    // and prune O(path): a graft walk stops at the first attached node, a
    // prune walk pops leaf nodes until it reaches one that is attached for
    // somebody else (non-empty fan-out or a member in its own right).
    std::vector<char> attached;
  };

  void rebuild_tree(GroupState& g);
  /// Incremental graft: walk `member`'s reverse path towards the source,
  /// attaching nodes until the walk meets an already-attached node (or the
  /// source).  Exactly the per-member walk of rebuild_tree.
  void graft(GroupState& g, NodeId member);
  /// Incremental prune: pop the unique leaf path above `member` while the
  /// node has no tree children and is not a member itself.
  void prune(GroupState& g, NodeId member);
  /// Grow the group's per-node arrays to the current node count, so nodes
  /// added after create_group() are always in range (join() used to grow
  /// member_flags only, leaving out_links indexed out of bounds).
  void ensure_group_capacity(GroupState& g);

  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // adjacency[from] = {(to, link)} for tree building and diagnostics.
  // Insertion order is meaningful (Dijkstra relaxation order, parallel-link
  // precedence) and must not be sorted in place.
  std::vector<std::vector<std::pair<NodeId, Link*>>> adjacency_;
  // Stable-sorted copy of adjacency_ for link_between(); rebuilt on demand
  // after topology edits.
  std::vector<std::vector<std::pair<NodeId, Link*>>> adjacency_sorted_;
  bool adjacency_index_dirty_{true};
  std::vector<GroupState> groups_;
  std::vector<Link*> empty_links_{};
  MembershipMode membership_mode_{MembershipMode::kIncremental};
  std::uint64_t rng_stream_counter_{1000};
};

}  // namespace tfmcc
