#pragma once

#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {

/// Owns the nodes and links of an experiment, computes unicast routes
/// (Dijkstra over propagation delay) and maintains multicast distribution
/// trees (reverse-shortest-path trees, as dense-mode multicast routing
/// builds them in ns-2).
class Topology {
 public:
  explicit Topology(Simulator& sim) : sim_{sim} {}

  // --- construction -------------------------------------------------------
  NodeId add_node();
  NodeId add_nodes(int count);  // returns id of the first added node

  /// Unidirectional link from -> to.
  Link& add_link(NodeId from, NodeId to, const LinkConfig& cfg);
  /// Two unidirectional links with identical configuration.
  std::pair<Link*, Link*> add_duplex_link(NodeId a, NodeId b,
                                          const LinkConfig& cfg);

  /// (Re)compute all unicast routing tables.  Must be called after the last
  /// link is added and before traffic starts.  Cost metric: propagation
  /// delay, ties broken by hop count, then by node id (deterministic).
  void compute_routes();

  // --- access --------------------------------------------------------------
  Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  const Node& node(NodeId id) const {
    return *nodes_.at(static_cast<std::size_t>(id));
  }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Simulator& sim() { return sim_; }

  /// The link from `from` to its neighbour `to`, nullptr if not adjacent.
  /// With parallel links the first one added wins, as before; lookups go
  /// through a lazily (re)built sorted index, so tree rebuilds at a
  /// 1000-leaf hub cost a binary search instead of a hub-degree scan.
  Link* link_between(NodeId from, NodeId to);

  // --- multicast ------------------------------------------------------------
  /// Create a source-rooted multicast group.  All traffic for the group must
  /// originate at `source`.
  GroupId create_group(NodeId source);
  void join(GroupId g, NodeId member);
  void leave(GroupId g, NodeId member);
  bool is_member(GroupId g, NodeId n) const;
  int member_count(GroupId g) const;

  /// Distribution-tree fan-out at `at` for group `g` (empty when none).
  const std::vector<Link*>& mcast_out_links(GroupId g, NodeId at) const;

  /// Total end-to-end propagation delay of the unicast path a -> b,
  /// +inf when unreachable.  (Diagnostics and tests.)
  SimTime path_delay(NodeId a, NodeId b) const;

 private:
  struct GroupState {
    NodeId source{kInvalidNode};
    std::set<NodeId> members;
    // Direct-indexed membership mirror of `members`: is_member() runs once
    // per node per multicast packet (the hottest query in large-receiver
    // scenarios), so it must be an array load, not a tree search.
    std::vector<char> member_flags;
    // out_links[node] = tree child links at that node.
    std::vector<std::vector<Link*>> out_links;
  };

  void rebuild_tree(GroupState& g);

  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // adjacency[from] = {(to, link)} for tree building and diagnostics.
  // Insertion order is meaningful (Dijkstra relaxation order, parallel-link
  // precedence) and must not be sorted in place.
  std::vector<std::vector<std::pair<NodeId, Link*>>> adjacency_;
  // Stable-sorted copy of adjacency_ for link_between(); rebuilt on demand
  // after topology edits.
  std::vector<std::vector<std::pair<NodeId, Link*>>> adjacency_sorted_;
  bool adjacency_index_dirty_{true};
  std::vector<GroupState> groups_;
  std::vector<Link*> empty_links_{};
  std::vector<char> attached_scratch_;
  std::uint64_t rng_stream_counter_{1000};
};

}  // namespace tfmcc
