#include "pgmcc/pgmcc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "tfmcc/feedback_timer.hpp"
#include "tfrc/equation.hpp"

namespace tfmcc {

namespace {
constexpr PortId kPgmccSenderPort = 11;
}  // namespace

// ---------------------------------------------------------------- sender --

PgmccSender::PgmccSender(Simulator& sim, MulticastSession& session,
                         PgmccConfig cfg, Rng rng)
    : sim_{sim},
      session_{session},
      cfg_{cfg},
      rng_{std::move(rng)},
      window_{cfg.initial_window},
      tokens_{cfg.initial_window},
      acker_rtt_{cfg.initial_rtt} {
  session_.topology()
      .node(session_.source())
      .attach_agent(kPgmccSenderPort, this);
}

PgmccSender::~PgmccSender() {
  session_.topology().node(session_.source()).detach_agent(kPgmccSenderPort);
}

void PgmccSender::start(SimTime at) {
  sim_.at(at, [this] {
    running_ = true;
    send_packets();
    restart_rto();
  });
}

void PgmccSender::stop() {
  running_ = false;
  sim_.cancel(rto_timer_);
  sim_.cancel(send_timer_);
}

void PgmccSender::send_packets() {
  while (running_ && tokens_ >= 1.0) {
    tokens_ -= 1.0;
    transmit();
  }
}

void PgmccSender::transmit() {
  auto pkt = sim_.make_packet();
  pkt->src = session_.source();
  pkt->sport = kPgmccSenderPort;
  pkt->dport = session_.data_port();
  pkt->group = session_.group();
  pkt->size_bytes = cfg_.packet_bytes;
  TfmccDataHeader h;  // PGMCC reuses the data-header layout; clr == acker
  h.seqno = seqno_++;
  h.send_ts = sim_.now();
  h.clr = acker_;
  pkt->header = h;
  session_.send_from_source(std::move(pkt));
}

double PgmccSender::modelled_rate(const ReceiverInfo& info) const {
  // Rizzo's election metric: T ~ 1/(rtt * sqrt(p)).  Receivers without a
  // loss estimate are unconstrained.
  if (info.loss_rate <= 0.0) return std::numeric_limits<double>::infinity();
  const SimTime rtt = info.has_rtt ? info.rtt : cfg_.initial_rtt;
  return tcp_model::simple_throughput_Bps(cfg_.packet_bytes, rtt,
                                          info.loss_rate);
}

void PgmccSender::maybe_switch_acker(std::int32_t candidate) {
  if (candidate == acker_) return;
  auto cit = receivers_.find(candidate);
  if (cit == receivers_.end()) return;
  if (acker_ == kInvalidReceiver) {
    acker_ = candidate;
    recover_ = seqno_;  // ignore losses from the transition
    restart_rto();
    return;
  }
  auto ait = receivers_.find(acker_);
  const double acker_rate = ait == receivers_.end()
                                ? std::numeric_limits<double>::infinity()
                                : modelled_rate(ait->second);
  if (modelled_rate(cit->second) < cfg_.hysteresis * acker_rate) {
    acker_ = candidate;
    recover_ = seqno_;
    restart_rto();
  }
}

void PgmccSender::handle_packet(const Packet& p) {
  if (const auto* a = p.pgmcc_ack()) {
    ++acks_;
    // Sender-side RTT to the acker.
    const SimTime sample = sim_.now() - a->ts_echo - a->echo_delay;
    if (sample > SimTime::zero()) {
      acker_rtt_ = have_acker_rtt_ ? acker_rtt_ * 0.875 + sample * 0.125
                                   : sample;
      have_acker_rtt_ = true;
    }
    auto& info = receivers_[a->receiver];
    info.loss_rate = a->loss_rate;
    info.rtt = acker_rtt_;
    info.has_rtt = true;
    info.last_report = sim_.now();

    if (a->receiver != acker_) return;  // stale ACKs from a previous acker

    TfmccFeedbackHeader dummy;
    (void)dummy;
    if (a->seqno > highest_acked_) {
      if (a->seqno > highest_acked_ + 1 && highest_acked_ >= 0 &&
          a->seqno > recover_) {
        // Gap in the ACK stream: data loss on the acker's path.  One
        // halving per window's worth of data (TCP semantics).  The token
        // debt makes the sender pause until half a window of ACKs has
        // drained, so the in-flight amount actually shrinks to the new
        // window (Rizzo's "ignore" phase).
        const double old_w = window_;
        window_ = std::max(window_ / 2.0, 1.0);
        tokens_ -= (old_w - window_);
        recover_ = seqno_;
        ++halvings_;
      }
      highest_acked_ = a->seqno;
      // Token return + linear growth (one extra packet per window).
      tokens_ += 1.0 + 1.0 / window_;
      window_ = std::min(window_ + 1.0 / window_, cfg_.max_window);
      restart_rto();
      send_packets();
    }
    return;
  }
  if (const auto* f = p.tfmcc_feedback()) {
    ++reports_;
    on_report(*f);
  }
}

void PgmccSender::on_report(const TfmccFeedbackHeader& f) {
  auto& info = receivers_[f.receiver];
  info.loss_rate = f.loss_event_rate;
  info.last_report = sim_.now();
  if (f.echo_ts > SimTime::zero()) {
    const SimTime sample = sim_.now() - f.echo_ts - f.echo_delay;
    if (sample > SimTime::zero()) {
      info.rtt = sample;
      info.has_rtt = true;
    }
  }
  maybe_switch_acker(f.receiver);
}

void PgmccSender::on_rto() {
  if (!running_) return;
  // The ACK clock stalled: collapse the window and restart it.
  window_ = std::max(window_ / 2.0, 1.0);
  tokens_ = 1.0;
  recover_ = seqno_;
  send_packets();
  restart_rto();
}

void PgmccSender::restart_rto() {
  sim_.cancel(rto_timer_);
  const SimTime rto =
      std::max(cfg_.min_rto, have_acker_rtt_ ? 4.0 * acker_rtt_
                                             : 2.0 * cfg_.initial_rtt);
  rto_timer_ = sim_.in(rto, [this] { on_rto(); });
}

// -------------------------------------------------------------- receiver --

PgmccReceiver::PgmccReceiver(Simulator& sim, MulticastSession& session,
                             NodeId self, std::int32_t receiver_id,
                             PgmccConfig cfg, Rng rng)
    : sim_{sim},
      session_{session},
      self_{self},
      id_{receiver_id},
      cfg_{cfg},
      rng_{std::move(rng)},
      loss_{cfg.loss_history_depth} {}

PgmccReceiver::~PgmccReceiver() {
  if (joined_) {
    session_.topology().node(self_).detach_agent(session_.data_port());
  }
}

void PgmccReceiver::join() {
  if (joined_) return;
  session_.topology().node(self_).attach_agent(session_.data_port(), this);
  session_.join(self_);
  joined_ = true;
}

void PgmccReceiver::leave() {
  if (!joined_) return;
  session_.leave(self_);
  session_.topology().node(self_).detach_agent(session_.data_port());
  joined_ = false;
  is_acker_ = false;
  sim_.cancel(report_timer_);
}

void PgmccReceiver::handle_packet(const Packet& p) {
  const auto* h = p.tfmcc_data();
  if (h == nullptr) return;
  const SimTime now = sim_.now();

  const auto seq_result = seq_.on_seqno(h->seqno);
  if (seq_result.duplicate) return;
  bool new_loss_event = false;
  for (std::int64_t i = 0; i < seq_result.lost; ++i) {
    new_loss_event |= loss_.on_packet_lost(now, cfg_.initial_rtt);
  }
  loss_.on_packet_received();
  if (observer_) observer_(now, p.size_bytes);

  last_data_send_ts_ = h->send_ts;
  last_data_arrival_ = now;
  is_acker_ = (h->clr == id_);

  if (is_acker_) {
    send_ack(*h);
    return;
  }
  // Non-acker: report when we have something the election needs — a fresh
  // loss event, or the initial hello while no acker exists.
  if ((new_loss_event || h->clr == kInvalidReceiver) &&
      !report_timer_.pending()) {
    schedule_report(*h, now);
  }
}

void PgmccReceiver::send_ack(const TfmccDataHeader& h) {
  auto ack = sim_.make_packet();
  ack->src = self_;
  ack->dst = session_.source();
  ack->sport = session_.data_port();
  ack->dport = kPgmccSenderPort;
  ack->size_bytes = cfg_.ack_bytes;
  PgmccAckHeader a;
  a.receiver = id_;
  a.seqno = h.seqno;
  a.ts_echo = h.send_ts;
  a.echo_delay = SimTime::zero();
  a.loss_rate = loss_.loss_event_rate();
  ack->header = a;
  session_.topology().node(self_).send(std::move(ack));
  ++acks_sent_;
}

void PgmccReceiver::schedule_report(const TfmccDataHeader& h, SimTime now) {
  (void)h;
  (void)now;
  // Exponential-timer spread over report_t_mult RTTs; with NAK suppression
  // delegated to the same timer family TFMCC uses.
  FeedbackTimerConfig tcfg;
  tcfg.method = BiasMethod::kUnbiased;
  const double units = feedback_timer::draw(1.0, tcfg, rng_);
  const SimTime delay = cfg_.report_t_mult * cfg_.initial_rtt * units;
  report_timer_ = sim_.in(delay, [this] { send_report(sim_.now()); });
}

void PgmccReceiver::send_report(SimTime now) {
  if (!joined_) return;
  auto rep = sim_.make_packet();
  rep->src = self_;
  rep->dst = session_.source();
  rep->sport = session_.data_port();
  rep->dport = kPgmccSenderPort;
  rep->size_bytes = cfg_.report_bytes;
  TfmccFeedbackHeader f;
  f.receiver = id_;
  f.loss_event_rate = loss_.loss_event_rate();
  f.ts = now;
  f.echo_ts = last_data_send_ts_;
  f.echo_delay =
      last_data_arrival_.is_infinite() ? SimTime::zero() : now - last_data_arrival_;
  rep->header = f;
  session_.topology().node(self_).send(std::move(rep));
  ++reports_sent_;
}

}  // namespace tfmcc
