#pragma once

// PGMCC (Rizzo, SIGCOMM 2000) — the single-rate multicast congestion
// control scheme the paper compares TFMCC against (§5).
//
// PGMCC elects the receiver with the worst network conditions as the group
// representative ("acker") using a simplified TCP throughput model,
// T ~ 1/(rtt*sqrt(p)), then runs a TCP-style window loop between sender and
// acker: the acker ACKs every data packet, the window opens by 1/W per ACK
// and halves on loss, producing TCP's sawtooth — the smoothness contrast
// with TFMCC that motivates the comparison bench.
//
// Faithful-to-the-paper simplifications (documented in DESIGN.md):
//  * receiver reports (NAK-equivalents) carry a TFRC-style smoothed loss
//    estimate and a timestamp echo; suppression reuses the biased
//    exponential timers (Rizzo notes PGMCC "might benefit from using a
//    feedback mechanism similar to that of TFMCC");
//  * congestion control is separated from reliability: data delivery is
//    unreliable, exactly as PGMCC permits.

#include <cstdint>
#include <functional>
#include <map>

#include "mcast/session.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/config.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/seqno_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tfmcc {

struct PgmccConfig {
  std::int32_t packet_bytes{kDataPacketBytes};
  std::int32_t report_bytes{kFeedbackPacketBytes};
  std::int32_t ack_bytes{kAckPacketBytes};
  double initial_window{2.0};
  double max_window{1e5};
  /// Acker switch hysteresis: switch when the candidate's modelled
  /// throughput is below `hysteresis` times the acker's (Rizzo §3.2 uses a
  /// comparable guard against acker oscillation).
  double hysteresis{0.9};
  SimTime initial_rtt{SimTime::millis(500)};
  /// Report suppression window, in units of the estimated max RTT.
  double report_t_mult{4.0};
  int loss_history_depth{8};
  SimTime min_rto{SimTime::millis(200)};
};

/// PGMCC sender: window-based rate control clocked by the acker's ACKs.
class PgmccSender final : public Agent {
 public:
  PgmccSender(Simulator& sim, MulticastSession& session, PgmccConfig cfg,
              Rng rng);
  ~PgmccSender() override;

  void start(SimTime at);
  void stop();

  void handle_packet(const Packet& p) override;

  std::int32_t acker() const { return acker_; }
  double window() const { return window_; }
  std::int64_t data_sent() const { return seqno_; }
  std::int64_t acks_received() const { return acks_; }
  std::int64_t reports_received() const { return reports_; }
  std::int64_t window_halvings() const { return halvings_; }

 private:
  struct ReceiverInfo {
    double loss_rate{0.0};
    SimTime rtt{};
    bool has_rtt{false};
    SimTime last_report{};
  };

  void send_packets();
  void transmit();
  void on_ack(const TfmccFeedbackHeader& f);
  void on_report(const TfmccFeedbackHeader& f);
  /// Simplified TCP model throughput used for acker election.
  double modelled_rate(const ReceiverInfo& info) const;
  void maybe_switch_acker(std::int32_t candidate);
  void on_rto();
  void restart_rto();

  Simulator& sim_;
  MulticastSession& session_;
  PgmccConfig cfg_;
  Rng rng_;

  bool running_{false};
  std::int64_t seqno_{0};
  double window_;
  double tokens_;        // ACK-clocked send credits (Rizzo's token scheme)
  std::int64_t highest_acked_{-1};
  std::int64_t recover_{-1};  // ignore further losses up to this seqno
  SimTime acker_rtt_{};
  bool have_acker_rtt_{false};

  std::int32_t acker_{kInvalidReceiver};
  std::map<std::int32_t, ReceiverInfo> receivers_;

  EventId rto_timer_{};
  EventId send_timer_{};
  std::int64_t acks_{0};
  std::int64_t reports_{0};
  std::int64_t halvings_{0};
};

/// PGMCC receiver: tracks loss + echoes timestamps; ACKs every packet when
/// elected acker, sends suppressed loss reports otherwise.
class PgmccReceiver final : public Agent {
 public:
  PgmccReceiver(Simulator& sim, MulticastSession& session, NodeId self,
                std::int32_t receiver_id, PgmccConfig cfg, Rng rng);
  ~PgmccReceiver() override;

  void join();
  void leave();

  void handle_packet(const Packet& p) override;

  void set_delivery_observer(std::function<void(SimTime, std::int32_t)> f) {
    observer_ = std::move(f);
  }

  std::int32_t id() const { return id_; }
  bool is_acker() const { return is_acker_; }
  double loss_event_rate() const { return loss_.loss_event_rate(); }
  std::int64_t packets_received() const { return seq_.received(); }
  std::int64_t acks_sent() const { return acks_sent_; }
  std::int64_t reports_sent() const { return reports_sent_; }

 private:
  void send_ack(const TfmccDataHeader& h);
  void send_report(SimTime now);
  void schedule_report(const TfmccDataHeader& h, SimTime now);

  Simulator& sim_;
  MulticastSession& session_;
  NodeId self_;
  std::int32_t id_;
  PgmccConfig cfg_;
  Rng rng_;

  bool joined_{false};
  bool is_acker_{false};
  SeqnoTracker seq_;
  LossHistory loss_;
  SimTime last_data_send_ts_{};
  SimTime last_data_arrival_{SimTime::infinity()};
  EventId report_timer_{};
  std::int64_t acks_sent_{0};
  std::int64_t reports_sent_{0};
  std::function<void(SimTime, std::int32_t)> observer_;
};

}  // namespace tfmcc
