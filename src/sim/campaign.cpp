#include "sim/campaign.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "sim/sweep_state.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace tfmcc {

double campaign_backoff_seconds(int relaunch, double base_s, double max_s) {
  if (relaunch < 0) relaunch = 0;
  // ldexp with a clamped exponent: 2^60 * any sane base is already far
  // past any sane cap, and never overflows.
  const double wait = std::ldexp(base_s, std::min(relaunch, 60));
  return std::min(wait, max_s);
}

std::string self_executable_path() {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
#else
  return {};
#endif
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Set by the SIGTERM/SIGINT handler; the supervisor loop polls it,
/// forwards SIGTERM to the children (which flush a final checkpoint), and
/// exits with every shard resumable.
volatile std::sig_atomic_t g_campaign_signal = 0;

void campaign_signal_handler(int sig) { g_campaign_signal = sig; }

struct ScopedCampaignSignals {
  struct sigaction old_term {};
  struct sigaction old_int {};
  ScopedCampaignSignals() {
    g_campaign_signal = 0;
    struct sigaction sa {};
    sa.sa_handler = campaign_signal_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, &old_term);
    sigaction(SIGINT, &sa, &old_int);
  }
  ~ScopedCampaignSignals() {
    sigaction(SIGTERM, &old_term, nullptr);
    sigaction(SIGINT, &old_int, nullptr);
  }
};

using Clock = std::chrono::steady_clock;

struct ShardProc {
  enum class State { kPending, kBackoff, kRunning, kDone, kFailed };
  int index{0};
  State state{State::kPending};
  pid_t pid{-1};
  /// Launches that did not finish cleanly (crashes + killed stragglers).
  int relaunches{0};
  Clock::time_point next_launch{};   // meaningful in kBackoff
  Clock::time_point last_advance{};  // meaningful in kRunning
  CheckpointProgress progress{};     // last observed progress header
  bool have_progress{false};
  std::string ckpt_path;
  std::string part_path;
  std::string log_path;
};

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exited with code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with wait status " + std::to_string(status);
}

bool file_exists(const std::string& path) {
  return access(path.c_str(), F_OK) == 0;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s);
  return buf;
}

}  // namespace

int run_campaign(const Scenario& scenario, const CampaignOptions& opts,
                 std::ostream& err) {
  if (opts.shards < 2 || opts.shards > 512) {
    err << "error: --shards expects between 2 and 512 (a single-process "
           "sweep does not need a supervisor)\n";
    return 2;
  }
  if (opts.jobs < 1 || opts.jobs > 1024) {
    err << "error: --jobs expects an integer between 1 and 1024\n";
    return 2;
  }
  if (opts.max_retries < 0 || opts.max_retries > 1000) {
    err << "error: --max-retries expects an integer between 0 and 1000\n";
    return 2;
  }
  if (opts.checkpoint_every < 1) {
    err << "error: --checkpoint-every must be at least 1\n";
    return 2;
  }
  if (!(opts.stall_timeout_s > 0.0) || !(opts.backoff_base_s > 0.0) ||
      !(opts.backoff_max_s > 0.0) || !(opts.poll_interval_s > 0.0)) {
    err << "error: campaign timeouts and intervals must be positive\n";
    return 2;
  }
  if (opts.sweep.axes.empty()) {
    err << "error: campaign needs at least one --sweep key=... axis\n";
    return 2;
  }
  for (std::size_t a = 0; a < opts.sweep.axes.size(); ++a) {
    const SweepAxis& axis = opts.sweep.axes[a];
    if (axis.values.empty()) {
      err << "error: --sweep axis '" << axis.key << "' has no values\n";
      return 2;
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (opts.sweep.axes[b].key == axis.key) {
        err << "error: duplicate --sweep axis for key '" << axis.key
            << "' (combine the values into one axis)\n";
        return 2;
      }
    }
  }
  if (opts.sweep.replicate < 1) {
    err << "error: --replicate must be at least 1\n";
    return 2;
  }

  std::string exec_path =
      opts.exec_path.empty() ? self_executable_path() : opts.exec_path;
  if (exec_path.empty()) {
    err << "error: cannot resolve the running executable's path; pass "
           "--exec <path>\n";
    return 2;
  }
  if (access(exec_path.c_str(), X_OK) != 0) {
    err << "error: shard executable '" << exec_path
        << "' is missing or not executable\n";
    return 2;
  }

  // Validate every grid point up front, exactly as run_sweep would: a bad
  // axis value must be one clean diagnostic here, not N children crash-
  // looping through their retry budgets.
  const auto grid = expand_grid(opts.sweep.axes);
  if (grid.size() > 1'000'000) {
    err << "error: sweep grid exceeds 1000000 points\n";
    return 2;
  }
  for (const auto& point : grid) {
    ScenarioOptions popts = opts.sweep.base;
    for (std::size_t a = 0; a < opts.sweep.axes.size(); ++a) {
      popts.set_param(opts.sweep.axes[a].key, point[a]);
    }
    if (!validate_scenario_params(scenario, popts, err)) {
      err << "  (sweep point " << point_label(opts.sweep.axes, point)
          << ")\n";
      return 2;
    }
  }

  const std::string dir =
      opts.dir.empty() ? "campaign-" + scenario.name : opts.dir;
  if (mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    err << "error: cannot create campaign directory '" << dir
        << "': " << std::strerror(errno) << '\n';
    return 2;
  }

  // Point ownership, via the same rule the shards apply.
  std::vector<int> owner(grid.size(), 0);
  {
    SweepOptions shard_sweep = opts.sweep;
    shard_sweep.shard_count = opts.shards;
    for (int i = 0; i < opts.shards; ++i) {
      shard_sweep.shard_index = i;
      const SweepManifest m = SweepManifest::from(scenario, shard_sweep);
      for (std::size_t p = 0; p < grid.size(); ++p) {
        if (shard_owns_point(m, p)) owner[p] = i;
      }
    }
  }

  std::vector<ShardProc> shards(static_cast<std::size_t>(opts.shards));
  for (int i = 0; i < opts.shards; ++i) {
    ShardProc& s = shards[static_cast<std::size_t>(i)];
    s.index = i;
    const std::string stem = dir + "/shard-" + std::to_string(i);
    s.ckpt_path = stem + ".ckpt";
    s.part_path = stem + ".part";
    s.log_path = stem + ".log";
  }

  auto shard_failed = [&](ShardProc& s, const std::string& why,
                          bool retryable) {
    s.pid = -1;
    s.have_progress = false;
    ++s.relaunches;
    if (!retryable) {
      s.state = ShardProc::State::kFailed;
      err << "error: campaign: shard " << s.index << " " << why
          << "; not retryable\n";
      return;
    }
    if (s.relaunches > opts.max_retries) {
      s.state = ShardProc::State::kFailed;
      err << "error: campaign: shard " << s.index << " " << why
          << "; retry cap (" << opts.max_retries << ") exhausted\n";
      return;
    }
    const double wait = campaign_backoff_seconds(
        s.relaunches - 1, opts.backoff_base_s, opts.backoff_max_s);
    s.state = ShardProc::State::kBackoff;
    s.next_launch =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(wait));
    err << "campaign: shard " << s.index << " " << why << "; relaunching in "
        << format_seconds(wait) << "s (retry " << s.relaunches << "/"
        << opts.max_retries << ")\n";
  };

  auto launch = [&](ShardProc& s) {
    const bool resuming = file_exists(s.ckpt_path);
    std::vector<std::string> args;
    args.push_back(exec_path);
    args.push_back("sweep");
    args.push_back(scenario.name);
    args.insert(args.end(), opts.child_args.begin(), opts.child_args.end());
    args.push_back("--shard");
    args.push_back(std::to_string(s.index) + "/" +
                   std::to_string(opts.shards));
    args.push_back("--jobs");
    args.push_back(std::to_string(opts.jobs));
    args.push_back("--checkpoint");
    args.push_back(s.ckpt_path);
    args.push_back("--checkpoint-every");
    args.push_back(std::to_string(opts.checkpoint_every));
    args.push_back("--output");
    args.push_back(s.part_path);
    if (resuming) {
      args.push_back("--resume");
      args.push_back(s.ckpt_path);
    }
    // argv built before fork: the child only touches async-signal-safe
    // calls (open/dup2/execv/_exit) between fork and exec.
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
      shard_failed(s, std::string("fork failed: ") + std::strerror(errno),
                   true);
      return;
    }
    if (pid == 0) {
      const int fd =
          open(s.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) close(fd);
      }
      execv(exec_path.c_str(), argv.data());
      _exit(127);
    }
    s.pid = pid;
    s.state = ShardProc::State::kRunning;
    s.last_advance = Clock::now();
    err << "campaign: shard " << s.index << " launched (attempt "
        << (s.relaunches + 1) << (resuming ? ", resuming from checkpoint)"
                                           : ")")
        << '\n';
  };

  ScopedCampaignSignals signals;
  const auto poll = std::chrono::duration<double>(opts.poll_interval_s);
  for (;;) {
    if (g_campaign_signal != 0) break;
    bool all_settled = true;
    const auto now = Clock::now();
    for (auto& s : shards) {
      switch (s.state) {
        case ShardProc::State::kPending:
          launch(s);
          all_settled = false;
          break;
        case ShardProc::State::kBackoff:
          if (now >= s.next_launch) launch(s);
          all_settled = false;
          break;
        case ShardProc::State::kRunning: {
          all_settled = false;
          int status = 0;
          const pid_t reaped = waitpid(s.pid, &status, WNOHANG);
          if (reaped == s.pid) {
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
              if (!file_exists(s.part_path)) {
                shard_failed(s, "exited cleanly without writing its partial",
                             true);
              } else {
                s.pid = -1;
                s.state = ShardProc::State::kDone;
                err << "campaign: shard " << s.index << " complete\n";
              }
            } else if (WIFEXITED(status) && WEXITSTATUS(status) == 2) {
              // run_sweep reserves 2 for configuration/usage errors; a
              // relaunch re-runs the identical command line and cannot
              // succeed where this one failed.
              shard_failed(s, describe_exit(status) + " (see " + s.log_path +
                                  "; configuration error)",
                           false);
            } else {
              shard_failed(s, describe_exit(status), true);
            }
            break;
          }
          // Still running: poll the checkpoint's progress header.  Any
          // heartbeat or fold-frontier change counts as advance.
          CheckpointProgress p;
          std::string perr;
          if (read_checkpoint_progress(s.ckpt_path, p, perr) &&
              (!s.have_progress || p.heartbeat != s.progress.heartbeat ||
               p.folded_tasks != s.progress.folded_tasks)) {
            s.progress = p;
            s.have_progress = true;
            s.last_advance = now;
          }
          const double idle =
              std::chrono::duration<double>(now - s.last_advance).count();
          if (idle > opts.stall_timeout_s) {
            kill(s.pid, SIGKILL);
            waitpid(s.pid, &status, 0);
            shard_failed(s,
                         "stalled (no checkpoint progress for " +
                             format_seconds(idle) + "s); killed",
                         true);
          }
          break;
        }
        case ShardProc::State::kDone:
        case ShardProc::State::kFailed:
          break;
      }
    }
    if (all_settled || g_campaign_signal != 0) break;
    std::this_thread::sleep_for(poll);
  }

  if (g_campaign_signal != 0) {
    // Propagate a graceful stop: the children trap SIGTERM while
    // checkpointing and flush a final checkpoint before exiting.
    for (auto& s : shards) {
      if (s.state == ShardProc::State::kRunning && s.pid > 0) {
        kill(s.pid, SIGTERM);
      }
    }
    for (auto& s : shards) {
      if (s.state == ShardProc::State::kRunning && s.pid > 0) {
        int status = 0;
        waitpid(s.pid, &status, 0);
        s.pid = -1;
      }
    }
    err << "campaign: interrupted; shard checkpoints preserved in '" << dir
        << "' — rerun the same campaign command to resume\n";
    return 1;
  }

  bool any_shard_failed = false;
  for (const auto& s : shards) {
    if (s.state == ShardProc::State::kFailed) any_shard_failed = true;
  }
  if (any_shard_failed) {
    err << "error: campaign: shard(s)";
    for (const auto& s : shards) {
      if (s.state == ShardProc::State::kFailed) err << ' ' << s.index;
    }
    err << " failed permanently; missing grid points:\n";
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (shards[static_cast<std::size_t>(owner[p])].state ==
          ShardProc::State::kFailed) {
        err << "  " << point_label(opts.sweep.axes, grid[p]) << '\n';
      }
    }
    err << "surviving partials and checkpoints preserved in '" << dir
        << "'\n";
    return 2;
  }

  err << "campaign: all " << opts.shards << " shards complete; merging\n";
  std::vector<std::string> margs;
  if (!opts.output_path.empty()) {
    margs.push_back("--output");
    margs.push_back(opts.output_path);
  }
  for (const auto& s : shards) margs.push_back(s.part_path);
  std::vector<char*> margv;
  margv.reserve(margs.size());
  for (const auto& a : margs) margv.push_back(const_cast<char*>(a.c_str()));
  const int mrc =
      merge_main(static_cast<int>(margv.size()), margv.data(), err);
  if (mrc != 0) {
    err << "error: campaign: merge failed; partials preserved in '" << dir
        << "'\n";
    return 2;
  }
  return 0;
}

#else  // !POSIX

int run_campaign(const Scenario&, const CampaignOptions&, std::ostream& err) {
  err << "error: `tfmcc_sim campaign` requires a POSIX platform "
         "(fork/exec supervision)\n";
  return 2;
}

#endif

int campaign_main(int argc, char** argv, std::ostream& err) {
  if (argc < 1 || std::string_view{argv[0]}.substr(0, 2) == "--") {
    err << "usage: tfmcc_sim campaign <scenario> --sweep key=v1,v2,... "
           "[--shards N] [--jobs N] [--dir <path>] [--stall-timeout S] "
           "[--max-retries K] [--backoff-base S] [--backoff-max S] "
           "[--poll-interval S] [--exec <path>] [--checkpoint-every N] "
           "[--replicate N] [--stats mean,stddev,cov,min,max] "
           "[--duration <s>] [--seed <n>] [--set key=value]... "
           "[--output <path>]\n";
    return 2;
  }
  const std::string_view name = argv[0];
  const Scenario* scenario = ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : ScenarioRegistry::instance().names()) {
      err << "  " << n << '\n';
    }
    return 2;
  }

  CampaignOptions opts;
  bool stats_given = false;
  std::vector<char*> passthrough;
  auto parse_int = [&](std::string_view flag, const char* text, long lo,
                       long hi, long& value) {
    char* end = nullptr;
    value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < lo || value > hi) {
      err << "error: " << flag << " expects an integer between " << lo
          << " and " << hi << '\n';
      return false;
    }
    return true;
  };
  auto parse_seconds = [&](std::string_view flag, const char* text,
                           double& value) {
    char* end = nullptr;
    value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(value > 0.0) || value > 1e6) {
      err << "error: " << flag << " expects seconds in (0, 1e6]\n";
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    auto need = [&] {
      if (!has_value) err << "error: " << arg << " expects a value\n";
      return has_value;
    };
    long lv = 0;
    double dv = 0.0;
    if (arg == "--shards") {
      if (!need() || !parse_int(arg, argv[i + 1], 2, 512, lv)) return 2;
      opts.shards = static_cast<int>(lv);
      ++i;
    } else if (arg == "--jobs") {
      if (!need() || !parse_int(arg, argv[i + 1], 1, 1024, lv)) return 2;
      opts.jobs = static_cast<int>(lv);
      ++i;
    } else if (arg == "--max-retries") {
      if (!need() || !parse_int(arg, argv[i + 1], 0, 1000, lv)) return 2;
      opts.max_retries = static_cast<int>(lv);
      ++i;
    } else if (arg == "--checkpoint-every") {
      if (!need() || !parse_int(arg, argv[i + 1], 1, 1'000'000, lv)) {
        return 2;
      }
      opts.checkpoint_every = static_cast<int>(lv);
      ++i;
    } else if (arg == "--stall-timeout") {
      if (!need() || !parse_seconds(arg, argv[i + 1], dv)) return 2;
      opts.stall_timeout_s = dv;
      ++i;
    } else if (arg == "--backoff-base") {
      if (!need() || !parse_seconds(arg, argv[i + 1], dv)) return 2;
      opts.backoff_base_s = dv;
      ++i;
    } else if (arg == "--backoff-max") {
      if (!need() || !parse_seconds(arg, argv[i + 1], dv)) return 2;
      opts.backoff_max_s = dv;
      ++i;
    } else if (arg == "--poll-interval") {
      if (!need() || !parse_seconds(arg, argv[i + 1], dv)) return 2;
      opts.poll_interval_s = dv;
      ++i;
    } else if (arg == "--dir") {
      if (!need()) return 2;
      opts.dir = argv[i + 1];
      ++i;
    } else if (arg == "--exec") {
      if (!need()) return 2;
      opts.exec_path = argv[i + 1];
      ++i;
    } else if (arg == "--output") {
      if (!need()) return 2;
      opts.output_path = argv[i + 1];
      ++i;
    } else if (arg == "--sweep") {
      if (!need()) return 2;
      const std::string_view spec_text = argv[i + 1];
      const std::size_t eq = spec_text.find('=');
      const ParamSpec* spec =
          eq == std::string_view::npos
              ? nullptr
              : scenario->find_param(spec_text.substr(0, eq));
      SweepAxis axis;
      if (!parse_sweep_axis(spec_text, spec, axis, err)) return 2;
      opts.sweep.axes.push_back(std::move(axis));
      opts.child_args.emplace_back("--sweep");
      opts.child_args.emplace_back(argv[i + 1]);
      ++i;
    } else if (arg == "--replicate") {
      if (!need() || !parse_int(arg, argv[i + 1], 1, 100'000, lv)) return 2;
      opts.sweep.replicate = static_cast<int>(lv);
      opts.child_args.emplace_back("--replicate");
      opts.child_args.emplace_back(argv[i + 1]);
      ++i;
    } else if (arg == "--stats") {
      if (!need() ||
          !summary::parse_stats(argv[i + 1], opts.sweep.stats, err)) {
        return 2;
      }
      stats_given = true;
      opts.child_args.emplace_back("--stats");
      opts.child_args.emplace_back(argv[i + 1]);
      ++i;
    } else if (arg == "--shard" || arg == "--checkpoint" ||
               arg == "--resume" || arg == "--progress" ||
               arg == "--max-point-failures") {
      err << "error: " << arg << " is managed per shard by the campaign "
          << "supervisor\n";
      return 2;
    } else {
      // Single-run flags (--duration/--seed/--set): validated locally and
      // forwarded verbatim — no value is re-serialized, so the children's
      // manifests cannot drift from what was validated here.
      passthrough.push_back(argv[i]);
      opts.child_args.emplace_back(argv[i]);
      if ((arg == "--duration" || arg == "--seed" || arg == "--set") &&
          has_value) {
        passthrough.push_back(argv[i + 1]);
        opts.child_args.emplace_back(argv[i + 1]);
        ++i;
      }
    }
  }
  if (stats_given && opts.sweep.replicate == 1) {
    err << "error: --stats requires --replicate greater than 1\n";
    return 2;
  }
  if (!parse_scenario_options(static_cast<int>(passthrough.size()),
                              passthrough.data(), opts.sweep.base, err)) {
    return 2;
  }
  return run_campaign(*scenario, opts, err);
}

}  // namespace tfmcc
