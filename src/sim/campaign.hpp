#pragma once

// Fault-tolerant campaign supervisor: `tfmcc_sim campaign` runs the N
// shards of one sweep as child processes of this binary (fork/exec of
// `<self> sweep ... --shard i/n --checkpoint ... --output <partial>`),
// watches them, and merges the partials when every shard finishes.
//
// Supervision model:
//
//   * Liveness is observed through the checkpoint files.  Every shard
//     checkpoints (`--checkpoint-every`, default 1 under a campaign), and
//     each write bumps the monotone heartbeat in the checkpoint's progress
//     header; the supervisor polls that two-line header
//     (read_checkpoint_progress) without deserializing accumulators.
//
//   * A shard that exits nonzero or dies on a signal is relaunched with
//     `--resume` from its last checkpoint, under exponential backoff
//     (campaign_backoff_seconds) with a per-shard retry cap.  Exit code 2
//     is treated as a configuration error and fails the shard immediately
//     — retrying a bad grid or an unwritable directory cannot succeed.
//
//   * A shard whose heartbeat/fold frontier stops advancing for longer
//     than `--stall-timeout` is declared a straggler, SIGKILLed, and
//     relaunched from its checkpoint (counting toward the same retry
//     cap).  The timeout must exceed the wall-clock of the slowest single
//     run plus a checkpoint write: heartbeats only tick when folds do.
//
//   * SIGINT/SIGTERM to the supervisor propagates SIGTERM to the
//     children — which flush a final checkpoint (see
//     request_sweep_interrupt) — and exits nonzero with every shard
//     resumable by rerunning the same campaign command.
//
//   * Degradation contract: when a shard exhausts its retries the
//     campaign does not merge.  It reports exactly which grid points are
//     missing (every point the failed shards own), leaves the surviving
//     partials and checkpoints in the campaign directory, and exits 2.
//
// Resumes are byte-exact (the checkpoint is a prefix of the deterministic
// fold order) and the merge path is the shared emit_sweep_aggregate, so a
// campaign's merged CSV is byte-identical to the unsharded `--jobs 1`
// sweep no matter how many times its shards crashed or stalled.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace tfmcc {

struct CampaignOptions {
  /// Number of shard child processes (the n of `--shard i/n`).
  int shards{2};
  /// Worker threads per shard (forwarded as the child's --jobs).
  int jobs{1};
  /// Directory for checkpoints, partials, and per-shard logs.  Created if
  /// missing (one level); defaults to "campaign-<scenario>".
  std::string dir;
  /// No heartbeat/fold advance for this long declares a straggler.
  double stall_timeout_s{30.0};
  /// Per-shard relaunch cap (crashes and stragglers both count).
  int max_retries{5};
  /// Relaunch n waits min(backoff_base * 2^n, backoff_max) seconds.
  double backoff_base_s{0.5};
  double backoff_max_s{30.0};
  /// Supervisor loop tick: child reap + checkpoint-header poll cadence.
  double poll_interval_s{0.2};
  /// Binary to exec for shards; defaults to self_executable_path().  CI
  /// fault injection points this at a wrapper script.
  std::string exec_path;
  /// Merged CSV destination ("" = stdout).
  std::string output_path;
  /// Forwarded as the children's --checkpoint-every; 1 maximizes the
  /// heartbeat rate the stall detector sees.
  int checkpoint_every{1};
  /// Raw argv fragments forwarded verbatim to every shard's `sweep`
  /// command line (--sweep/--replicate/--stats/--duration/--seed/--set),
  /// so children re-parse exactly what the user wrote — no re-serialized
  /// value can drift from the manifest the supervisor validates against.
  std::vector<std::string> child_args;
  /// The same sweep parsed locally: grid bookkeeping (ownership, missing-
  /// point reports) and upfront validation.  Its jobs/shard fields are
  /// ignored — the campaign options above drive the children.
  SweepOptions sweep;
};

/// Backoff before relaunch number `relaunch` (0-based):
/// min(base_s * 2^relaunch, max_s).
double campaign_backoff_seconds(int relaunch, double base_s, double max_s);

/// Absolute path of the running executable (/proc/self/exe), "" when it
/// cannot be resolved — callers must then pass --exec explicitly.
std::string self_executable_path();

/// Runs the campaign to completion: launch, supervise, recover, merge.
/// Returns 0 with the merged CSV written, 1 when interrupted (shards
/// resumable), 2 when a shard exhausted retries (missing points reported,
/// partials preserved) or on configuration errors.
int run_campaign(const Scenario& scenario, const CampaignOptions& opts,
                 std::ostream& err);

/// CLI entry for `tfmcc_sim campaign <scenario> ...`: argv holds
/// everything after the `campaign` token.  Campaign flags (--shards,
/// --stall-timeout, --max-retries, --backoff-base, --backoff-max,
/// --poll-interval, --dir, --exec, --checkpoint-every, --output, --jobs)
/// are consumed here; sweep and single-run flags are validated and
/// forwarded to the shards.  Returns the process exit code.
int campaign_main(int argc, char** argv, std::ostream& err);

}  // namespace tfmcc
