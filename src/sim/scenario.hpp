#pragma once

// Scenario registry: the unified driver layer behind `tfmcc_sim`.
//
// Every paper-figure experiment registers itself under a stable name via
// TFMCC_SCENARIO; the `tfmcc_sim` binary links all of them and dispatches by
// name, so adding a workload is one registration instead of a new binary.
// The same translation units still build as standalone per-figure binaries
// (with TFMCC_BENCH_STANDALONE defined) whose main() goes through the exact
// same scenario function, keeping the CSV output schema identical.
//
// Scenarios declare their tunable knobs as typed ParamSpecs in the
// registration macro; the driver surfaces them in `--list`, validates
// `--set key=value` overrides against them before running, and the scenario
// reads them back through ScenarioOptions::param_or<T>().

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

/// Declared type of a scenario parameter; drives the pre-run validation of
/// `--set` overrides and the rendering of defaults in `--list`.
enum class ParamType { kInt64, kUint64, kDouble, kBool, kString };

/// One declared scenario knob: its name, type, printable default, a
/// one-line description for `--list`, and an optional lower bound enforced
/// by pre-run validation (scenarios index arrays and drive loops with these
/// values, so "well-typed" alone is not "safe").
struct ParamSpec {
  std::string name;
  ParamType type{ParamType::kDouble};
  std::string default_value;
  std::string description;
  std::optional<double> min;
};

using ParamSpecList = std::vector<ParamSpec>;

std::string_view param_type_name(ParamType t);

/// ParamSpec builders used inside TFMCC_SCENARIO registrations; the overload
/// picks the declared type from the default's C++ type.  `min` is the lowest
/// accepted override value (inclusive).
ParamSpec param(std::string name, std::int64_t dflt, std::string description,
                std::optional<double> min = std::nullopt);
ParamSpec param(std::string name, int dflt, std::string description,
                std::optional<double> min = std::nullopt);
ParamSpec param(std::string name, std::uint64_t dflt, std::string description,
                std::optional<double> min = std::nullopt);
ParamSpec param(std::string name, double dflt, std::string description,
                std::optional<double> min = std::nullopt);
ParamSpec param(std::string name, bool dflt, std::string description);
ParamSpec param(std::string name, const char* dflt, std::string description);

/// Options handed to every scenario, parsed from the command line.  Absent
/// options fall back to the per-scenario paper defaults via *_or(), so a bare
/// invocation reproduces the figure exactly as published.
struct ScenarioOptions {
  std::optional<SimTime> duration;
  std::optional<std::uint64_t> seed;
  /// `--output <path>`: where the CLI drivers redirect the scenario's
  /// output sink before running (kept here so both the unified driver and
  /// the standalone bench mains share the parse).
  std::optional<std::string> output_path;

  SimTime duration_or(SimTime dflt) const { return duration.value_or(dflt); }
  std::uint64_t seed_or(std::uint64_t dflt) const {
    return seed.value_or(dflt);
  }

  /// The scenario's output sink: everything a scenario prints (figure
  /// header, CSV trace, CHECK/NOTE lines) goes through this stream, which
  /// is std::cout unless redirected.  Redirection is what lets a sweep run
  /// many points concurrently in-process without interleaving their CSVs.
  std::ostream& out() const;
  void set_output(std::ostream& os) { out_ = &os; }

  /// Record one `--set key=value` override (last write wins).
  void set_param(std::string key, std::string value);
  bool has_param(std::string_view key) const;
  const std::map<std::string, std::string, std::less<>>& params() const {
    return params_;
  }

  /// Typed access to an override: the declared default when the key is
  /// absent, the coerced value when present and well-formed, and the default
  /// again when the value does not coerce (pre-run validation against the
  /// scenario's ParamSpecs reports that case before the scenario runs).
  /// Supported T: bool, int, std::int64_t, std::uint64_t, double,
  /// std::string.
  template <typename T>
  T param_or(std::string_view name, T dflt) const;
  std::string param_or(std::string_view name, const char* dflt) const;

  /// Driver-internal: the registry binds the scenario's declared ParamSpecs
  /// before invoking it, so a param_or() read of a key the scenario never
  /// declared (invisible to `--list`/`--set` validation, i.e. a latent typo)
  /// is diagnosed instead of silently returning the fallback.  `specs` must
  /// outlive this object; nullptr unbinds.
  void bind_specs(const ParamSpecList* specs) { specs_ = specs; }

 private:
  /// Asserts (debug) / warns on stderr (release) when `name` is not among
  /// the bound ParamSpecs; no-op when no specs are bound.
  void check_declared(std::string_view name) const;

  std::map<std::string, std::string, std::less<>> params_;
  const ParamSpecList* specs_{nullptr};
  std::ostream* out_{nullptr};
};

// The supported param_or instantiations live in scenario_registry.cpp; the
// declarations here make any unsupported T a link-time error instead of an
// implicit-instantiation failure.
template <>
bool ScenarioOptions::param_or<bool>(std::string_view, bool) const;
template <>
int ScenarioOptions::param_or<int>(std::string_view, int) const;
template <>
std::int64_t ScenarioOptions::param_or<std::int64_t>(std::string_view,
                                                     std::int64_t) const;
template <>
std::uint64_t ScenarioOptions::param_or<std::uint64_t>(std::string_view,
                                                       std::uint64_t) const;
template <>
double ScenarioOptions::param_or<double>(std::string_view, double) const;
template <>
std::string ScenarioOptions::param_or<std::string>(std::string_view,
                                                   std::string) const;

inline std::string ScenarioOptions::param_or(std::string_view name,
                                             const char* dflt) const {
  return param_or<std::string>(name, std::string{dflt});
}

/// Seed for replicate `rep` of a run whose base seed is `base`: replicate 0
/// is the base itself (so a single replicate reproduces the plain run
/// byte-for-byte), later replicates get a splitmix64-mixed stream.  A pure
/// function of (base, rep) — independent of thread count, completion order,
/// and which grid point the replicate belongs to — so replicated sweeps are
/// deterministic and individual replicates can be re-run standalone with
/// `--seed <derived>`.
std::uint64_t derive_replicate_seed(std::uint64_t base, std::uint64_t rep);

using ScenarioFn = int (*)(const ScenarioOptions&);

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn fn{nullptr};
  ParamSpecList params;

  const ParamSpec* find_param(std::string_view pname) const;
};

/// Checks every `--set` override against the scenario's declared ParamSpecs:
/// unknown keys and values that do not coerce to the declared type are
/// diagnosed on `err`.  Returns true when all overrides are valid.
bool validate_scenario_params(const Scenario& scenario,
                              const ScenarioOptions& opts, std::ostream& err);

class ScenarioRegistry {
 public:
  /// The process-wide registry populated by TFMCC_SCENARIO registrations.
  static ScenarioRegistry& instance();

  /// Returns true when newly added; a duplicate name keeps the first
  /// registration and returns false.
  bool add(std::string name, std::string description, ScenarioFn fn,
           ParamSpecList params = {});

  /// Nullptr when no scenario is registered under `name`.
  const Scenario* find(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

  /// Runs the named scenario and returns its exit code, or -1 (after writing
  /// a diagnostic to `err`) when the name is unknown or a `--set` override
  /// fails validation against the scenario's declared parameters.
  int run(std::string_view name, const ScenarioOptions& opts,
          std::ostream& err) const;

 private:
  std::map<std::string, Scenario, std::less<>> scenarios_;
};

/// Parses `--duration <seconds>` / `--seed <n>` / `--set key=value` /
/// `--output <path>` flags.  Returns false and writes a diagnostic to `err`
/// on unknown flags or malformed values.
bool parse_scenario_options(int argc, char** argv, ScenarioOptions& opts,
                            std::ostream& err);

/// `--output` plumbing shared by the single-run and sweep CLI tails: open
/// `path` for writing / flush and close it, diagnosing failures on `err`.
/// Both return false after a diagnostic.
bool open_output_file(const std::string& path, std::ofstream& file,
                      std::ostream& err);
bool finish_output_file(const std::string& path, std::ofstream& file,
                        std::ostream& err);

/// CLI tail shared by `tfmcc_sim` and the standalone bench mains: honours
/// opts.output_path (opening the file and redirecting the scenario's output
/// sink), then dispatches through the registry.  Returns the scenario's
/// exit code, or -1 after a diagnostic on `err`.
int run_scenario_cli(std::string_view name, ScenarioOptions& opts,
                     std::ostream& err);

/// Shared main() body for the standalone bench binaries: parse the option
/// flags, then run the single named scenario from the registry.
int run_scenario_main(const char* name, int argc, char** argv);

}  // namespace tfmcc

#ifdef TFMCC_BENCH_STANDALONE
#define TFMCC_SCENARIO_DEFINE_MAIN(ident)                                 \
  int main(int argc, char** argv) {                                       \
    return ::tfmcc::run_scenario_main(#ident, argc, argv);                \
  }
#else
#define TFMCC_SCENARIO_DEFINE_MAIN(ident)
#endif

/// Defines and registers a scenario function; optional trailing arguments
/// declare its tunable parameters:
///   TFMCC_SCENARIO(fig09_single_bottleneck, "Figure 9: ...",
///                  tfmcc::param("n_tcp", 15, "competing TCP flows")) {
///     const SimTime T = opts.duration_or(200_sec);
///     const int n_tcp = opts.param_or("n_tcp", 15);
///     ...
///     return 0;
///   }
#define TFMCC_SCENARIO(ident, desc, ...)                                   \
  static int tfmcc_scenario_##ident(const ::tfmcc::ScenarioOptions&);      \
  [[maybe_unused]] static const bool tfmcc_scenario_reg_##ident =          \
      ::tfmcc::ScenarioRegistry::instance().add(                           \
          #ident, desc, &tfmcc_scenario_##ident,                           \
          ::tfmcc::ParamSpecList{__VA_ARGS__});                            \
  TFMCC_SCENARIO_DEFINE_MAIN(ident)                                        \
  static int tfmcc_scenario_##ident(                                       \
      [[maybe_unused]] const ::tfmcc::ScenarioOptions& opts)
