#pragma once

// Scenario registry: the unified driver layer behind `tfmcc_sim`.
//
// Every paper-figure experiment registers itself under a stable name via
// TFMCC_SCENARIO; the `tfmcc_sim` binary links all of them and dispatches by
// name, so adding a workload is one registration instead of a new binary.
// The same translation units still build as standalone per-figure binaries
// (with TFMCC_BENCH_STANDALONE defined) whose main() goes through the exact
// same scenario function, keeping the CSV output schema identical.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

/// Options handed to every scenario, parsed from the command line.  Absent
/// options fall back to the per-scenario paper defaults via *_or(), so a bare
/// invocation reproduces the figure exactly as published.
struct ScenarioOptions {
  std::optional<SimTime> duration;
  std::optional<std::uint64_t> seed;

  SimTime duration_or(SimTime dflt) const { return duration.value_or(dflt); }
  std::uint64_t seed_or(std::uint64_t dflt) const {
    return seed.value_or(dflt);
  }
};

using ScenarioFn = int (*)(const ScenarioOptions&);

struct Scenario {
  std::string name;
  std::string description;
  ScenarioFn fn{nullptr};
};

class ScenarioRegistry {
 public:
  /// The process-wide registry populated by TFMCC_SCENARIO registrations.
  static ScenarioRegistry& instance();

  /// Returns true when newly added; a duplicate name keeps the first
  /// registration and returns false.
  bool add(std::string name, std::string description, ScenarioFn fn);

  /// Nullptr when no scenario is registered under `name`.
  const Scenario* find(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

  /// Runs the named scenario and returns its exit code, or -1 (after writing
  /// a diagnostic and the known names to `err`) when the name is unknown.
  int run(std::string_view name, const ScenarioOptions& opts,
          std::ostream& err) const;

 private:
  std::map<std::string, Scenario, std::less<>> scenarios_;
};

/// Parses `--duration <seconds>` / `--seed <n>` pairs.  Returns false and
/// writes a diagnostic to `err` on unknown flags or malformed values.
bool parse_scenario_options(int argc, char** argv, ScenarioOptions& opts,
                            std::ostream& err);

/// Shared main() body for the standalone bench binaries: parse the option
/// flags, then run the single named scenario from the registry.
int run_scenario_main(const char* name, int argc, char** argv);

}  // namespace tfmcc

#ifdef TFMCC_BENCH_STANDALONE
#define TFMCC_SCENARIO_DEFINE_MAIN(ident)                                 \
  int main(int argc, char** argv) {                                       \
    return ::tfmcc::run_scenario_main(#ident, argc, argv);                \
  }
#else
#define TFMCC_SCENARIO_DEFINE_MAIN(ident)
#endif

/// Defines and registers a scenario function:
///   TFMCC_SCENARIO(fig09_single_bottleneck, "Figure 9: ...") {
///     const SimTime T = opts.duration_or(200_sec);
///     ...
///     return 0;
///   }
#define TFMCC_SCENARIO(ident, desc)                                       \
  static int tfmcc_scenario_##ident(const ::tfmcc::ScenarioOptions&);     \
  [[maybe_unused]] static const bool tfmcc_scenario_reg_##ident =         \
      ::tfmcc::ScenarioRegistry::instance().add(#ident, desc,             \
                                                &tfmcc_scenario_##ident); \
  TFMCC_SCENARIO_DEFINE_MAIN(ident)                                       \
  static int tfmcc_scenario_##ident(                                      \
      [[maybe_unused]] const ::tfmcc::ScenarioOptions& opts)
