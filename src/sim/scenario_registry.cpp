#include "sim/scenario.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>

namespace tfmcc {

namespace {

bool parse_f64(std::string_view text, double& out) {
  // std::from_chars for double is flaky across stdlibs; strtod is enough here.
  std::string buf{text};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && !buf.empty();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec == std::errc{} && p == text.data() + text.size()) return true;
  // Accept scientific/decimal spellings of whole numbers ("2e6", "1000.0")
  // so link rates and receiver counts read naturally on the command line.
  double d = 0;
  if (!parse_f64(text, d) || !std::isfinite(d) || d < 0.0 ||
      d > 1.8e19 || d != std::floor(d)) {
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec == std::errc{} && p == text.data() + text.size()) return true;
  double d = 0;
  if (!parse_f64(text, d) || !std::isfinite(d) || std::fabs(d) > 9.0e18 ||
      d != std::floor(d)) {
    return false;
  }
  out = static_cast<std::int64_t>(d);
  return true;
}

bool parse_bool(std::string_view text, bool& out) {
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "off" || text == "no") {
    out = false;
    return true;
  }
  return false;
}

/// True when `value` coerces to the declared parameter type; for numeric
/// types the coerced value is also written to `numeric`.
bool value_coerces(ParamType type, std::string_view value, double& numeric) {
  switch (type) {
    case ParamType::kInt64: {
      std::int64_t i;
      if (!parse_i64(value, i)) return false;
      numeric = static_cast<double>(i);
      return true;
    }
    case ParamType::kUint64: {
      std::uint64_t u;
      if (!parse_u64(value, u)) return false;
      numeric = static_cast<double>(u);
      return true;
    }
    case ParamType::kDouble: {
      double d;
      if (!parse_f64(value, d) || !std::isfinite(d)) return false;
      numeric = d;
      return true;
    }
    case ParamType::kBool: {
      bool b;
      return parse_bool(value, b);
    }
    case ParamType::kString:
      return true;
  }
  return false;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string_view param_type_name(ParamType t) {
  switch (t) {
    case ParamType::kInt64:
      return "int";
    case ParamType::kUint64:
      return "uint";
    case ParamType::kDouble:
      return "double";
    case ParamType::kBool:
      return "bool";
    case ParamType::kString:
      return "string";
  }
  return "?";
}

ParamSpec param(std::string name, std::int64_t dflt, std::string description,
                std::optional<double> min) {
  return {std::move(name), ParamType::kInt64, std::to_string(dflt),
          std::move(description), min};
}

ParamSpec param(std::string name, int dflt, std::string description,
                std::optional<double> min) {
  return param(std::move(name), static_cast<std::int64_t>(dflt),
               std::move(description), min);
}

ParamSpec param(std::string name, std::uint64_t dflt, std::string description,
                std::optional<double> min) {
  return {std::move(name), ParamType::kUint64, std::to_string(dflt),
          std::move(description), min};
}

ParamSpec param(std::string name, double dflt, std::string description,
                std::optional<double> min) {
  return {std::move(name), ParamType::kDouble, format_double(dflt),
          std::move(description), min};
}

ParamSpec param(std::string name, bool dflt, std::string description) {
  return {std::move(name), ParamType::kBool, dflt ? "true" : "false",
          std::move(description), std::nullopt};
}

ParamSpec param(std::string name, const char* dflt, std::string description) {
  return {std::move(name), ParamType::kString, dflt, std::move(description),
          std::nullopt};
}

void ScenarioOptions::set_param(std::string key, std::string value) {
  params_.insert_or_assign(std::move(key), std::move(value));
}

bool ScenarioOptions::has_param(std::string_view key) const {
  return params_.find(key) != params_.end();
}

std::ostream& ScenarioOptions::out() const {
  return out_ != nullptr ? *out_ : std::cout;
}

void ScenarioOptions::check_declared(std::string_view name) const {
  if (specs_ == nullptr) return;
  for (const auto& p : *specs_) {
    if (p.name == name) return;
  }
  // A read of an undeclared key always gets the fallback: `--set` overrides
  // of it are rejected up front as unknown, so the knob is dead.  Loud in
  // debug builds, a stderr warning in release.
  std::cerr << "warning: scenario read undeclared parameter '" << name
            << "' (missing from its ParamSpec list; --set cannot reach it)\n";
  assert(false && "param_or: parameter not in the scenario's ParamSpec list");
}

template <>
std::string ScenarioOptions::param_or<std::string>(std::string_view name,
                                                   std::string dflt) const {
  check_declared(name);
  auto it = params_.find(name);
  return it == params_.end() ? dflt : it->second;
}

template <>
double ScenarioOptions::param_or<double>(std::string_view name,
                                         double dflt) const {
  check_declared(name);
  auto it = params_.find(name);
  if (it == params_.end()) return dflt;
  double v = 0;
  return parse_f64(it->second, v) && std::isfinite(v) ? v : dflt;
}

template <>
std::int64_t ScenarioOptions::param_or<std::int64_t>(std::string_view name,
                                                     std::int64_t dflt) const {
  check_declared(name);
  auto it = params_.find(name);
  if (it == params_.end()) return dflt;
  std::int64_t v = 0;
  return parse_i64(it->second, v) ? v : dflt;
}

template <>
int ScenarioOptions::param_or<int>(std::string_view name, int dflt) const {
  const std::int64_t v =
      param_or<std::int64_t>(name, static_cast<std::int64_t>(dflt));
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return dflt;
  }
  return static_cast<int>(v);
}

template <>
std::uint64_t ScenarioOptions::param_or<std::uint64_t>(
    std::string_view name, std::uint64_t dflt) const {
  check_declared(name);
  auto it = params_.find(name);
  if (it == params_.end()) return dflt;
  std::uint64_t v = 0;
  return parse_u64(it->second, v) ? v : dflt;
}

template <>
bool ScenarioOptions::param_or<bool>(std::string_view name, bool dflt) const {
  check_declared(name);
  auto it = params_.find(name);
  if (it == params_.end()) return dflt;
  bool v = false;
  return parse_bool(it->second, v) ? v : dflt;
}

std::uint64_t derive_replicate_seed(std::uint64_t base, std::uint64_t rep) {
  if (rep == 0) return base;
  // splitmix64: advance the stream by `rep` increments, then finalize.  The
  // finalizer's avalanche keeps consecutive replicates decorrelated even
  // though the pre-mix states differ by one golden-ratio increment.
  std::uint64_t z = base + rep * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const ParamSpec* Scenario::find_param(std::string_view pname) const {
  for (const auto& p : params) {
    if (p.name == pname) return &p;
  }
  return nullptr;
}

bool validate_scenario_params(const Scenario& scenario,
                              const ScenarioOptions& opts, std::ostream& err) {
  bool ok = true;
  for (const auto& [key, value] : opts.params()) {
    const ParamSpec* spec = scenario.find_param(key);
    if (spec == nullptr) {
      err << "error: unknown parameter '" << key << "' for scenario '"
          << scenario.name << "'\n";
      if (scenario.params.empty()) {
        err << "  (this scenario declares no parameters)\n";
      } else {
        err << "  known parameters:\n";
        for (const auto& p : scenario.params) {
          err << "    " << p.name << " (" << param_type_name(p.type)
              << ", default " << p.default_value << ")\n";
        }
      }
      ok = false;
      continue;
    }
    double numeric = 0.0;
    if (!value_coerces(spec->type, value, numeric)) {
      err << "error: malformed value '" << value << "' for parameter '" << key
          << "' (expected " << param_type_name(spec->type) << ", default "
          << spec->default_value << ")\n";
      ok = false;
      continue;
    }
    if (spec->min.has_value() && spec->type != ParamType::kBool &&
        spec->type != ParamType::kString && numeric < *spec->min) {
      err << "error: value '" << value << "' for parameter '" << key
          << "' is below the minimum " << format_double(*spec->min)
          << " (default " << spec->default_value << ")\n";
      ok = false;
    }
  }
  return ok;
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

bool ScenarioRegistry::add(std::string name, std::string description,
                           ScenarioFn fn, ParamSpecList params) {
  auto [it, inserted] = scenarios_.try_emplace(
      name, Scenario{name, std::move(description), fn, std::move(params)});
  return inserted;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, _] : scenarios_) out.push_back(name);
  return out;
}

int ScenarioRegistry::run(std::string_view name, const ScenarioOptions& opts,
                          std::ostream& err) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : names()) err << "  " << n << '\n';
    return -1;
  }
  if (!validate_scenario_params(*s, opts, err)) return -1;
  // Bind the declared ParamSpecs to a copy of the options so param_or()
  // reads inside the scenario are checked against them (see check_declared).
  ScenarioOptions bound = opts;
  bound.bind_specs(&s->params);
  return s->fn(bound);
}

bool parse_scenario_options(int argc, char** argv, ScenarioOptions& opts,
                            std::ostream& err) {
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--duration") {
      // The upper bound keeps the seconds-to-SimTime conversion inside
      // int64 nanoseconds (~292 years); it also rejects inf.
      constexpr double kMaxSeconds = 9.0e9;
      double secs = 0;
      if (!has_value || !parse_f64(argv[i + 1], secs) ||
          !std::isfinite(secs) || secs <= 0 || secs > kMaxSeconds) {
        err << "error: --duration expects a positive number of seconds\n";
        return false;
      }
      opts.duration = SimTime::seconds(secs);
      ++i;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!has_value || !parse_u64(argv[i + 1], seed)) {
        err << "error: --seed expects a non-negative integer\n";
        return false;
      }
      opts.seed = seed;
      ++i;
    } else if (arg == "--output") {
      if (!has_value || argv[i + 1][0] == '\0') {
        err << "error: --output expects a file path\n";
        return false;
      }
      opts.output_path = argv[i + 1];
      ++i;
    } else if (arg == "--set") {
      const std::string_view kv = has_value ? std::string_view{argv[i + 1]}
                                            : std::string_view{};
      const std::size_t eq = kv.find('=');
      if (!has_value || eq == std::string_view::npos || eq == 0) {
        err << "error: --set expects key=value\n";
        return false;
      }
      opts.set_param(std::string{kv.substr(0, eq)},
                     std::string{kv.substr(eq + 1)});
      ++i;
    } else {
      err << "error: unknown option '" << arg
          << "' (expected --duration <s>, --seed <n>, --set key=value or "
             "--output <path>)\n";
      return false;
    }
  }
  return true;
}

bool open_output_file(const std::string& path, std::ofstream& file,
                      std::ostream& err) {
  file.open(path);
  if (!file) {
    err << "error: cannot open output file '" << path << "'\n";
    return false;
  }
  return true;
}

bool finish_output_file(const std::string& path, std::ofstream& file,
                        std::ostream& err) {
  file.flush();
  if (!file) {
    err << "error: writing output file '" << path << "' failed\n";
    return false;
  }
  return true;
}

int run_scenario_cli(std::string_view name, ScenarioOptions& opts,
                     std::ostream& err) {
  std::ofstream file;
  if (opts.output_path.has_value()) {
    if (!open_output_file(*opts.output_path, file, err)) return -1;
    opts.set_output(file);
  }
  const int rc = ScenarioRegistry::instance().run(name, opts, err);
  if (file.is_open() &&
      !finish_output_file(*opts.output_path, file, err)) {
    return -1;
  }
  return rc;
}

int run_scenario_main(const char* name, int argc, char** argv) {
  ScenarioOptions opts;
  if (!parse_scenario_options(argc - 1, argv + 1, opts, std::cerr)) return 2;
  const int rc = run_scenario_cli(name, opts, std::cerr);
  return rc < 0 ? 2 : rc;
}

}  // namespace tfmcc
