#include "sim/scenario.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

namespace tfmcc {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

bool ScenarioRegistry::add(std::string name, std::string description,
                           ScenarioFn fn) {
  auto [it, inserted] = scenarios_.try_emplace(
      name, Scenario{name, std::move(description), fn});
  return inserted;
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, _] : scenarios_) out.push_back(name);
  return out;
}

int ScenarioRegistry::run(std::string_view name, const ScenarioOptions& opts,
                          std::ostream& err) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : names()) err << "  " << n << '\n';
    return -1;
  }
  return s->fn(opts);
}

namespace {

bool parse_f64(std::string_view text, double& out) {
  // std::from_chars for double is flaky across stdlibs; strtod is enough here.
  std::string buf{text};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && !buf.empty();
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && p == text.data() + text.size();
}

}  // namespace

bool parse_scenario_options(int argc, char** argv, ScenarioOptions& opts,
                            std::ostream& err) {
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--duration") {
      // The upper bound keeps the seconds-to-SimTime conversion inside
      // int64 nanoseconds (~292 years); it also rejects inf.
      constexpr double kMaxSeconds = 9.0e9;
      double secs = 0;
      if (!has_value || !parse_f64(argv[i + 1], secs) ||
          !std::isfinite(secs) || secs <= 0 || secs > kMaxSeconds) {
        err << "error: --duration expects a positive number of seconds\n";
        return false;
      }
      opts.duration = SimTime::seconds(secs);
      ++i;
    } else if (arg == "--seed") {
      std::uint64_t seed = 0;
      if (!has_value || !parse_u64(argv[i + 1], seed)) {
        err << "error: --seed expects a non-negative integer\n";
        return false;
      }
      opts.seed = seed;
      ++i;
    } else {
      err << "error: unknown option '" << arg
          << "' (expected --duration <s> or --seed <n>)\n";
      return false;
    }
  }
  return true;
}

int run_scenario_main(const char* name, int argc, char** argv) {
  ScenarioOptions opts;
  if (!parse_scenario_options(argc - 1, argv + 1, opts, std::cerr)) return 2;
  return ScenarioRegistry::instance().run(name, opts, std::cerr);
}

}  // namespace tfmcc
