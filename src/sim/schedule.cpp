#include "sim/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "sim/simulator.hpp"

namespace tfmcc {

TimeWarp::TimeWarp(SimTime reference_horizon, SimTime actual_horizon)
    : reference_{std::max(reference_horizon, SimTime::nanos(1))},
      actual_{std::max(actual_horizon, SimTime::zero())},
      factor_{static_cast<double>(actual_.count_nanos()) /
              static_cast<double>(reference_.count_nanos())},
      identity_{actual_ == reference_} {
  if (identity_) factor_ = 1.0;  // exact, not a computed quotient
}

SimTime TimeWarp::operator()(SimTime reference_time) const {
  if (identity_) return std::clamp(reference_time, SimTime::zero(), actual_);
  const double ns =
      static_cast<double>(reference_time.count_nanos()) * factor_;
  const SimTime t = SimTime::nanos(std::llround(ns));
  return std::clamp(t, SimTime::zero(), actual_);
}

ScheduleBuilder::ScheduleBuilder(Simulator& sim, SimTime reference_horizon,
                                 SimTime actual_horizon)
    : sim_{sim}, warp_{reference_horizon, actual_horizon} {}

ScheduleBuilder& ScheduleBuilder::at(SimTime reference_time,
                                     std::function<void()> cb) {
  ++scheduled_;
  sim_.at(warp_(reference_time),
          [fired = fired_, cb = std::move(cb)] {
            ++*fired;
            cb();
          });
  return *this;
}

ScheduleBuilder& ScheduleBuilder::at_fraction(double fraction,
                                              std::function<void()> cb) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  ++scheduled_;
  sim_.at(SimTime::nanos(std::llround(
              static_cast<double>(warp_.horizon().count_nanos()) * f)),
          [fired = fired_, cb = std::move(cb)] {
            ++*fired;
            cb();
          });
  return *this;
}

}  // namespace tfmcc
