#pragma once

// Time-warped event schedules for the scripted scenarios.
//
// The paper's event-scripted experiments (fig. 11's join/leave ladder,
// fig. 15/16's late join, fig. 20/21, the ablations) place their events at
// absolute times on a *reference* timeline — the horizon the figure was
// published with.  Running such a scenario with a different `--duration`
// used to silently drop every event past the new horizon; TimeWarp instead
// rescales the whole script proportionally, so a 20 s smoke run of a 400 s
// figure still exercises every join and leave, in order, with the same
// relative spacing.

#include <functional>
#include <memory>

#include "util/sim_time.hpp"

namespace tfmcc {

class Simulator;

/// Affine map from the reference timeline onto the actual horizon:
/// t -> t * (actual / reference), clamped to [0, actual].  When the two
/// horizons are equal the map is an exact identity (no floating-point
/// round-trip), which keeps default-duration runs byte-identical.
class TimeWarp {
 public:
  TimeWarp(SimTime reference_horizon, SimTime actual_horizon);

  SimTime operator()(SimTime reference_time) const;
  /// Scale factor actual/reference; exactly 1.0 for the identity map.
  double factor() const { return factor_; }
  bool is_identity() const { return identity_; }
  SimTime reference_horizon() const { return reference_; }
  SimTime horizon() const { return actual_; }

 private:
  SimTime reference_;
  SimTime actual_;
  double factor_;
  bool identity_;
};

/// Schedules scripted scenario events through a TimeWarp and tracks how many
/// actually executed — scenarios report that count in warped runs so smoke
/// tests can assert the whole script fired.
class ScheduleBuilder {
 public:
  ScheduleBuilder(Simulator& sim, SimTime reference_horizon,
                  SimTime actual_horizon);

  /// Schedule `cb` at the warped image of `reference_time`.
  ScheduleBuilder& at(SimTime reference_time, std::function<void()> cb);
  /// Schedule `cb` at `fraction` (in [0, 1]) of the actual horizon.
  ScheduleBuilder& at_fraction(double fraction, std::function<void()> cb);

  /// The warped image of a reference-timeline instant; scenarios also use
  /// this for measurement windows tied to scripted events.
  SimTime warped(SimTime reference_time) const { return warp_(reference_time); }
  SimTime horizon() const { return warp_.horizon(); }
  const TimeWarp& warp() const { return warp_; }

  int scheduled() const { return scheduled_; }
  int fired() const { return *fired_; }

 private:
  Simulator& sim_;
  TimeWarp warp_;
  int scheduled_{0};
  // Shared with the scheduled callbacks so the count survives moves of the
  // builder itself.
  std::shared_ptr<int> fired_{std::make_shared<int>(0)};
};

}  // namespace tfmcc
