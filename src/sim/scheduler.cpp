#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>

namespace tfmcc {

EventId Scheduler::schedule_at(SimTime t, EventCallback cb) {
  if (t < now_) {
    throw std::logic_error("Scheduler: event scheduled in the past (" +
                           t.str() + " < " + now_.str() + ")");
  }
  if (!cb) {
    // Rejecting here keeps the failure at the call site instead of a
    // std::bad_function_call out of step() arbitrarily later.
    throw std::logic_error("Scheduler: empty event callback");
  }
  auto rec = std::make_shared<detail::EventRecord>();
  rec->callback = std::move(cb);
  heap_.push(Entry{t, next_seq_++, rec});
  return EventId{rec};
}

void Scheduler::cancel(const EventId& id) {
  if (id.rec_ && !id.rec_->cancelled) {
    id.rec_->cancelled = true;
    id.rec_->callback = nullptr;  // release captured state promptly
  }
}

void Scheduler::drop_cancelled_head() const {
  while (!heap_.empty() && heap_.top().rec->cancelled) heap_.pop();
}

bool Scheduler::empty() const {
  // Cancelled events are semantically absent, so shed them before answering;
  // the heap is mutable because this cleanup is not observable state.
  drop_cancelled_head();
  return heap_.empty();
}

bool Scheduler::step() {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  assert(e.t >= now_);
  now_ = e.t;
  EventCallback cb = std::move(e.rec->callback);
  e.rec->callback = nullptr;
  ++executed_;
  cb();
  return true;
}

void Scheduler::run(std::uint64_t limit) {
  const std::uint64_t start = executed_;
  while (step()) {
    if (executed_ - start >= limit) {
      throw std::runtime_error("Scheduler: event limit exceeded");
    }
  }
}

void Scheduler::run_until(SimTime t, std::uint64_t limit) {
  const std::uint64_t start = executed_;
  for (;;) {
    drop_cancelled_head();
    if (heap_.empty() || heap_.top().t > t) break;
    step();
    if (executed_ - start >= limit) {
      throw std::runtime_error("Scheduler: event limit exceeded");
    }
  }
  if (t > now_ && !t.is_infinite()) now_ = t;
}

}  // namespace tfmcc
