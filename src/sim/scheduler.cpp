#include "sim/scheduler.hpp"

#include <stdexcept>

namespace tfmcc {

// The heap is 4-ary and cache-line aligned: the root sits at index
// kHeapRoot (3) so that every sibling group {4p-8 .. 4p-5} starts at an
// index divisible by 4 — with 16-byte entries and the 64-byte-aligned
// buffer, the min-child scan of a pop reads exactly one cache line per
// level.  A wider node also halves the tree depth vs. a binary heap.
// Order is decided only by HeapEntry::before() (time, then seq), so the
// arity and layout are unobservable.

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > kHeapRoot) {
    const std::size_t parent = heap_parent(pos);
    if (!e.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos].slot()] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = e;
  heap_pos_[e.slot()] = static_cast<std::uint32_t>(pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const HeapEntry e = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = heap_first_child(pos);
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(e)) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].slot()] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = e;
  heap_pos_[e.slot()] = static_cast<std::uint32_t>(pos);
}

void Scheduler::heap_remove(std::size_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail itself
  heap_[pos] = last;
  heap_pos_[last.slot()] = static_cast<std::uint32_t>(pos);
  // The replacement may need to move either way relative to its new
  // neighbourhood.
  sift_down(pos);
  if (heap_pos_[last.slot()] == pos) sift_up(pos);
}

void Scheduler::release_slot(std::uint32_t slot) {
  heap_pos_[slot] = kNpos;
  ++generation_[slot];  // outstanding EventIds for this occupancy go stale
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

EventId Scheduler::schedule_at(SimTime t, EventCallback cb) {
  if (t < now_) {
    throw std::logic_error("Scheduler: event scheduled in the past (" +
                           t.str() + " < " + now_.str() + ")");
  }
  if (!cb) {
    // Rejecting here keeps the failure at the call site instead of an
    // invalid-callback crash out of step() arbitrarily later.
    throw std::logic_error("Scheduler: empty event callback");
  }
  if (next_seq_ >= kMaxSeq) {
    throw std::runtime_error("Scheduler: sequence space exhausted");
  }
  std::uint32_t slot;
  if (free_head_ != kNpos) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
  } else {
    if (slots_.size() >= kMaxSlots) {
      throw std::runtime_error("Scheduler: too many pending events");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    generation_.push_back(0);
    heap_pos_.push_back(kNpos);
  }
  slots_[slot].cb = std::move(cb);
  heap_.push_back(HeapEntry{t, (next_seq_++ << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
  return EventId{this, slot, generation_[slot]};
}

void Scheduler::cancel(const EventId& id) {
  if (id.sched_ != this || !is_pending(id.slot_, id.generation_)) return;
  heap_remove(heap_pos_[id.slot_]);
  // Move the callback out and release the slot BEFORE destroying the
  // captured state: the capture's destructor may re-enter the scheduler
  // (cancel this very id again, schedule into the freed slot), which must
  // see the event as already gone.  The local's destruction at scope exit
  // still releases the captured state promptly.
  EventCallback cb = std::move(slots_[id.slot_].cb);
  release_slot(id.slot_);
}

void Scheduler::pop_min() {
  // Bottom-up pop: sink the root hole along the min-child path to a leaf
  // (d-1 comparisons per level, none against the reinserted element), then
  // sift the old tail up from that leaf.  The tail almost always belongs
  // near the bottom, so the sift_up usually terminates immediately — one
  // comparison per level cheaper than the textbook top-down sift.
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == kHeapRoot) return;
  std::size_t pos = kHeapRoot;
  for (;;) {
    const std::size_t first_child = heap_first_child(pos);
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].slot()] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = tail;
  heap_pos_[tail.slot()] = static_cast<std::uint32_t>(pos);
  sift_up(pos);
}

bool Scheduler::step() {
  if (empty()) return false;
  const HeapEntry top = heap_[kHeapRoot];
  pop_min();
  Slot& s = slots_[top.slot()];
  assert(top.t >= now_);
  now_ = top.t;
  EventCallback cb = std::move(s.cb);
  // Release before invoking: the event is no longer pending from its own
  // callback's point of view, and the callback may schedule new events into
  // the freed slot.
  release_slot(top.slot());
  ++executed_;
  cb();
  return true;
}

void Scheduler::run(std::uint64_t limit) {
  const std::uint64_t start = executed_;
  while (step()) {
    if (executed_ - start >= limit) {
      throw std::runtime_error("Scheduler: event limit exceeded");
    }
  }
}

void Scheduler::run_until(SimTime t, std::uint64_t limit) {
  const std::uint64_t start = executed_;
  while (!empty() && heap_[kHeapRoot].t <= t) {
    step();
    if (executed_ - start >= limit) {
      throw std::runtime_error("Scheduler: event limit exceeded");
    }
  }
  if (t > now_ && !t.is_infinite()) now_ = t;
}

}  // namespace tfmcc
