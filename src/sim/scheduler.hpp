#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

using EventCallback = std::function<void()>;

namespace detail {
struct EventRecord {
  EventCallback callback;
  bool cancelled{false};
};
}  // namespace detail

/// Handle to a scheduled event; allows cancellation.  Copyable; all copies
/// refer to the same event.  A default-constructed id refers to nothing.
class EventId {
 public:
  EventId() = default;

  /// True while the event is scheduled and neither fired nor cancelled.
  bool pending() const { return rec_ && !rec_->cancelled && rec_->callback; }

 private:
  friend class Scheduler;
  explicit EventId(std::shared_ptr<detail::EventRecord> rec)
      : rec_{std::move(rec)} {}
  std::shared_ptr<detail::EventRecord> rec_;
};

/// Discrete-event scheduler.
///
/// Events at equal timestamps fire in insertion order (FIFO tie-break via a
/// monotonically increasing sequence number), which together with the
/// integer time base makes runs fully deterministic.  Cancellation is lazy:
/// a cancelled event stays in the heap but its callback is released
/// immediately and it is skipped when popped.
class Scheduler {
 public:
  SimTime now() const { return now_; }

  EventId schedule_at(SimTime t, EventCallback cb);
  EventId schedule_in(SimTime delay, EventCallback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event.  Safe to call on already-fired, already-
  /// cancelled, or empty ids.
  void cancel(const EventId& id);

  /// Execute the next pending event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events have executed.
  void run(std::uint64_t limit = kDefaultEventLimit);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t, std::uint64_t limit = kDefaultEventLimit);

  std::uint64_t executed() const { return executed_; }
  bool empty() const;

  /// Safety valve for runaway simulations (e.g. a bug that reschedules at
  /// the current time forever).  Exceeding it throws.
  static constexpr std::uint64_t kDefaultEventLimit = 2'000'000'000;

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    std::shared_ptr<detail::EventRecord> rec;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  void drop_cancelled_head() const;

  // Mutable so empty() can lazily drop cancelled entries; they are already
  // semantically gone, so this does not change observable state.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

}  // namespace tfmcc
