#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

/// Move-only callable with small-buffer optimisation, sized so every event
/// callback in the simulator (a few pointers plus a PacketPtr) lives inline.
/// Captures larger than the inline buffer fall back to one heap allocation;
/// the hot path never allocates.
class EventCallback {
 public:
  /// Inline capture budget.  64 bytes holds a vtable-free lambda with up to
  /// eight pointer-sized captures — every callback in the simulator's steady
  /// state fits (the zero-allocation benchmark test enforces it).
  static constexpr std::size_t kInlineBytes = 64;

  EventCallback() = default;
  EventCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventCallback(EventCallback&& o) noexcept { move_from(o); }
  EventCallback& operator=(EventCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(target());
  }

  /// Destroys the held callable (releasing its captured state) and becomes
  /// empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    /// Relocate: move-construct into `to`'s inline buffer and destroy the
    /// source.  Null for heap-held callables (relocation steals the pointer).
    void (*relocate)(void* from, void* to);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* obj) { (*static_cast<Fn*>(obj))(); },
      [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* obj) { (*static_cast<Fn*>(obj))(); },
      [](void* obj) { delete static_cast<Fn*>(obj); },
      nullptr};

  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void move_from(EventCallback& o) noexcept {
    ops_ = o.ops_;
    heap_ = o.heap_;
    if (ops_ != nullptr && heap_ == nullptr) ops_->relocate(o.buf_, buf_);
    o.ops_ = nullptr;
    o.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_{nullptr};
  const Ops* ops_{nullptr};
};

class Scheduler;

/// Handle to a scheduled event; allows cancellation.  A generation-counted
/// {slot, generation} pair into the scheduler's event pool: trivially
/// copyable, no ownership, and immune to slot reuse (a recycled slot bumps
/// its generation, so stale handles report not-pending instead of aliasing
/// the new occupant).  A default-constructed id refers to nothing.
class EventId {
 public:
  EventId() = default;

  /// True while the event is scheduled and neither fired nor cancelled.
  bool pending() const;

 private:
  friend class Scheduler;
  EventId(const Scheduler* sched, std::uint32_t slot, std::uint32_t generation)
      : sched_{sched}, slot_{slot}, generation_{generation} {}

  const Scheduler* sched_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

/// Discrete-event scheduler.
///
/// Events at equal timestamps fire in insertion order (FIFO tie-break via a
/// monotonically increasing sequence number), which together with the
/// integer time base makes runs fully deterministic.  The (time, seq) key is
/// a strict total order, so execution order is independent of the heap's
/// internal layout.
///
/// Storage is a slab of pooled event records addressed by an index-tracked
/// 4-ary min-heap: scheduling reuses free slots, cancellation removes the
/// event from the heap in place (no tombstones), and steady-state
/// schedule/step cycles perform zero heap allocations once the slab and the
/// callbacks' inline buffers have warmed up.
class Scheduler {
 public:
  Scheduler() {
    slots_.reserve(kInitialCapacity);
    heap_.reserve(kInitialCapacity + kHeapRoot);
    // Padding below the root keeps every 4-child sibling group on one
    // 64-byte line (see kHeapRoot).
    heap_.resize(kHeapRoot);
  }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  EventId schedule_at(SimTime t, EventCallback cb);
  EventId schedule_in(SimTime delay, EventCallback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event.  Safe to call on already-fired, already-
  /// cancelled, or empty ids.  Removes the event from the heap immediately
  /// and releases its captured state.
  void cancel(const EventId& id);

  /// Execute the next pending event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events have executed.
  void run(std::uint64_t limit = kDefaultEventLimit);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t, std::uint64_t limit = kDefaultEventLimit);

  std::uint64_t executed() const { return executed_; }
  bool empty() const { return heap_.size() <= kHeapRoot; }
  std::size_t pending_count() const { return heap_.size() - kHeapRoot; }

  /// Pre-size the event pool and heap (e.g. before a large topology starts).
  void reserve(std::size_t events) {
    slots_.reserve(events);
    generation_.reserve(events);
    heap_pos_.reserve(events);
    heap_.reserve(events + kHeapRoot);
  }

  /// Safety valve for runaway simulations (e.g. a bug that reschedules at
  /// the current time forever).  Exceeding it throws.
  static constexpr std::uint64_t kDefaultEventLimit = 2'000'000'000;

 private:
  friend class EventId;

  static constexpr std::uint32_t kNpos = 0xffffffffu;
  static constexpr std::size_t kInitialCapacity = 64;

  struct Slot {
    EventCallback cb;
    /// Free-list link while the slot is unused.
    std::uint32_t next_free{kNpos};
  };

  /// Heap entries carry their own (time, seq) sort key so sifting compares
  /// 16-byte entries — a 4-ary node is exactly one cache line — instead of
  /// chasing into the fat callback slots.  seq and slot share one word:
  /// seq in the high 40 bits (unique, the FIFO tie-break), slot in the low
  /// 24 (never reached by the comparison, since seqs always differ).  The
  /// key is a strict total order, so execution order is independent of the
  /// heap's layout.
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq_slot;  // (seq << kSlotBits) | slot

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
    bool before(const HeapEntry& o) const {
      if (t != o.t) return t < o.t;
      return seq_slot < o.seq_slot;
    }
  };

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  /// Ceilings implied by the packed word: 16M concurrently pending events
  /// and 2^40 (~1.1e12) events per scheduler lifetime.  Both are far past
  /// anything a simulation reaches; schedule_at enforces them anyway.
  static constexpr std::size_t kMaxSlots = std::size_t{1} << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ull << 40;

  /// The heap root lives at index 3, not 0: with 16-byte entries and a
  /// 64-byte-aligned buffer, children {4p-8 .. 4p-5} of every node then
  /// start at an index divisible by 4, i.e. each sibling group is exactly
  /// one cache line — the min-child scan in a pop touches one line per
  /// level instead of straddling two.
  static constexpr std::size_t kHeapRoot = 3;
  static std::size_t heap_parent(std::size_t pos) { return pos / 4 + 2; }
  static std::size_t heap_first_child(std::size_t pos) { return 4 * pos - 8; }

  /// Minimal 64-byte-aligning allocator for the heap buffer.
  template <typename T>
  struct HeapAlloc {
    using value_type = T;
    HeapAlloc() = default;
    template <typename U>
    HeapAlloc(const HeapAlloc<U>&) {}  // NOLINT(google-explicit-constructor)
    T* allocate(std::size_t n) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t) {
      ::operator delete(p, std::align_val_t{64});
    }
    friend bool operator==(const HeapAlloc&, const HeapAlloc&) { return true; }
    friend bool operator!=(const HeapAlloc&, const HeapAlloc&) { return false; }
  };

  bool is_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && generation_[slot] == generation &&
           heap_pos_[slot] != kNpos;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_remove(std::size_t pos);
  /// Removes heap_[0] (already copied out by the caller) via a bottom-up
  /// hole sink — cheaper than heap_remove(0) on the every-event pop path.
  void pop_min();

  /// Detach the slot from the heap bookkeeping, bump its generation (so
  /// outstanding EventIds go stale) and push it on the free list.  The
  /// callback is left in place for the caller to move out or reset.
  void release_slot(std::uint32_t slot);

  std::vector<Slot> slots_;
  // Parallel to slots_, kept out of Slot on purpose: sifting updates a
  // slot's heap position once per level, and a dense 4-byte array keeps
  // those writes in cache where the 96-byte callback slots would not be.
  std::vector<std::uint32_t> generation_;
  std::vector<std::uint32_t> heap_pos_;  // kNpos when free or executing
  // 4-ary min-heap on (t, seq); entries [0, kHeapRoot) are padding.
  std::vector<HeapEntry, HeapAlloc<HeapEntry>> heap_;
  std::uint32_t free_head_{kNpos};
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
};

inline bool EventId::pending() const {
  return sched_ != nullptr && sched_->is_pending(slot_, generation_);
}

}  // namespace tfmcc
