#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

/// Simulation context handed to every component: the event scheduler plus a
/// root RNG from which components derive their private streams, and the
/// packet pool behind make_packet().
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : root_rng_{seed}, seed_{seed} {}

  Scheduler& scheduler() { return sched_; }
  SimTime now() const { return sched_.now(); }

  EventId at(SimTime t, EventCallback cb) {
    return sched_.schedule_at(t, std::move(cb));
  }
  EventId in(SimTime delay, EventCallback cb) {
    return sched_.schedule_in(delay, std::move(cb));
  }
  void cancel(const EventId& id) { sched_.cancel(id); }

  void run() { sched_.run(); }
  void run_until(SimTime t) { sched_.run_until(t); }

  std::uint64_t seed() const { return seed_; }

  /// Fresh deterministic RNG stream; callers pass a unique stream id
  /// (conventionally derived from component kind + instance index).
  Rng make_rng(std::uint64_t stream_id) const {
    return root_rng_.substream(stream_id);
  }

  /// Monotonically increasing id source for packets, flows, ...
  std::uint64_t next_uid() { return ++uid_; }

  /// Checkout a fresh packet from the per-simulator pool, uid and creation
  /// time already stamped.  One pool checkout per packet replaces the old
  /// one-heap-allocation-per-packet: the block returns to the pool when the
  /// last reference — queue entry, in-flight event capture — drops.
  /// Packets must not outlive the Simulator.
  MutablePacketPtr make_packet() {
    MutablePacketPtr p = make_pooled_packet(packet_pool_);
    p->uid = ++uid_;
    p->created = sched_.now();
    return p;
  }

  const FixedBlockPool& packet_pool() const { return packet_pool_; }

 private:
  // Destruction is reverse declaration order: the pool is declared before
  // the scheduler so packets captured in still-pending events are returned
  // to a live pool when the scheduler is torn down.
  FixedBlockPool packet_pool_;
  Scheduler sched_;
  Rng root_rng_;
  std::uint64_t seed_;
  std::uint64_t uid_{0};
};

}  // namespace tfmcc
