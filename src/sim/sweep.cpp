#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/sweep_state.hpp"
#include "sim/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

namespace tfmcc {

namespace {

/// Set by request_sweep_interrupt (and the SIGTERM/SIGINT handlers
/// sweep_main installs while checkpointing): workers stop claiming tasks
/// and run_sweep flushes a final checkpoint.  Cleared at run_sweep entry.
std::atomic<bool> g_sweep_interrupt{false};

/// Cap on scheduled scenario runs (grid points times replicates).  Purely a
/// task-count guard against typo-sized grids: replicated sweeps stream each
/// run's output into the statistics accumulators as it completes, so peak
/// memory holds the in-flight runs and the accumulated data rows, not all
/// grid x N outputs.
constexpr std::size_t kMaxGridPoints = 1'000'000;

std::string format_value(double v, bool integral) {
  if (integral) return std::to_string(std::llround(v));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Splits `text` on `sep`, keeping empty fields so "1,,2" is diagnosable.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep_at = text.find(sep, start);
    parts.push_back(text.substr(start, sep_at - start));
    if (sep_at == std::string_view::npos) return parts;
    start = sep_at + 1;
  }
}

struct PointResult {
  int rc{0};
  /// The run's CSV content as an encoded RunTrace blob (commentary already
  /// stripped, rows already split into cells by the worker thread), not the
  /// raw text capture.
  std::string trace;
  std::string error;
};

/// "replicate 2/5 (seed 1234...)" when replicating, "" otherwise; names the
/// exact run a diagnostic is about and the seed to reproduce it standalone.
std::string replicate_label(const SweepOptions& sweep, std::uint64_t rep,
                            int n_rep) {
  if (n_rep <= 1) return {};
  return " replicate " + std::to_string(rep + 1) + "/" +
         std::to_string(n_rep) + " (seed " +
         std::to_string(
             derive_replicate_seed(sweep.base.seed.value_or(0), rep)) +
         ")";
}

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) != 0;
#else
  return false;
#endif
}

/// Throttled completed/total + elapsed/ETA line on `err`.  On a TTY the
/// line rewrites itself in place; when forced onto a non-TTY stream
/// (`--progress` under redirection) each update is its own line.  Uses the
/// monotonic clock so wall-clock adjustments cannot yield negative ETAs.
///
/// Counts are shard-local (`label` carries the "sweep shard i/n" prefix);
/// percent and ETA weight each run by its cost hint, so a ladder grid that
/// finished its cheap half does not claim to be half done.  Tasks restored
/// from a checkpoint count toward the totals but not toward the observed
/// rate — they cost this session nothing.
class ProgressReporter {
 public:
  ProgressReporter(std::string label, std::size_t total, double total_weight,
                   std::size_t restored, double restored_weight, bool enabled,
                   bool tty, std::ostream& err)
      : label_{std::move(label)},
        total_{total},
        total_weight_{total_weight},
        restored_weight_{restored_weight},
        enabled_{enabled},
        tty_{tty},
        err_{err},
        start_{std::chrono::steady_clock::now()},
        done_{restored},
        weight_done_{restored_weight} {}

  /// Thread-safe; called by workers after each completed run.
  void task_done(double weight) {
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    weight_done_ += weight;
    if (!enabled_) return;
    const auto now = std::chrono::steady_clock::now();
    if (done_ != total_ &&
        now - last_print_ < std::chrono::milliseconds(200)) {
      return;
    }
    printed_ = true;
    last_print_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double eta = weighted_eta_seconds(
        elapsed, weight_done_ - restored_weight_,
        total_weight_ - restored_weight_);
    const double pct =
        total_weight_ > 0.0 ? 100.0 * weight_done_ / total_weight_ : 100.0;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s: %zu/%zu runs (%.0f%%) elapsed %.1fs eta %.1fs",
                  label_.c_str(), done_, total_, pct, elapsed, eta);
    if (tty_) {
      err_ << '\r' << buf << "  " << std::flush;
    } else {
      err_ << buf << '\n';
    }
  }

  /// Terminates the in-place TTY line so later diagnostics start clean.
  void finish() {
    if (enabled_ && tty_ && printed_) err_ << '\n';
  }

 private:
  const std::string label_;
  const std::size_t total_;
  const double total_weight_;
  const double restored_weight_;
  const bool enabled_;
  const bool tty_;
  std::ostream& err_;
  const std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::size_t done_;
  double weight_done_;
  bool printed_{false};
  std::chrono::steady_clock::time_point last_print_{};
};

}  // namespace

bool parse_sweep_axis(std::string_view text, const ParamSpec* spec,
                      SweepAxis& axis, std::ostream& err) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == text.size()) {
    err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN, got '"
        << text << "'\n";
    return false;
  }
  axis.key = std::string{text.substr(0, eq)};
  axis.values.clear();
  const std::string_view body = text.substr(eq + 1);

  if (body.find(':') == std::string_view::npos) {
    for (std::string_view v : split(body, ',')) {
      if (v.empty()) {
        err << "error: empty value in --sweep list '" << text << "'\n";
        return false;
      }
      axis.values.emplace_back(v);
    }
    return true;
  }

  const auto parts = split(body, ':');
  double lo = 0, hi = 0;
  std::string_view kind;
  std::uint64_t n_points = 0;
  // summary::parse_number rejects non-finite values, unlike
  // scenario_registry's parse_f64: an inf/nan sweep bound can never expand
  // to a usable range.
  bool ok = parts.size() == 3 && summary::parse_number(parts[0], lo) &&
            summary::parse_number(parts[1], hi);
  if (ok) {
    const std::string_view step = parts[2];
    kind = step.substr(0, 3);
    ok = (kind == "lin" || kind == "log") && step.size() > 3;
    if (ok) {
      const std::string count{step.substr(3)};
      char* end = nullptr;
      n_points = std::strtoull(count.c_str(), &end, 10);
      ok = end == count.c_str() + count.size();
    }
  }
  if (!ok) {
    err << "error: malformed --sweep range '" << text
        << "' (expected key=lo:hi:linN or key=lo:hi:logN)\n";
    return false;
  }
  if (n_points < 2 || n_points > 1'000'000) {
    err << "error: --sweep range '" << text
        << "' needs between 2 and 1e6 points\n";
    return false;
  }
  if (kind == "log" && (lo <= 0.0 || hi <= 0.0)) {
    err << "error: --sweep log range '" << text
        << "' requires positive bounds\n";
    return false;
  }

  const bool integral =
      spec != nullptr &&
      (spec->type == ParamType::kInt64 || spec->type == ParamType::kUint64);
  const double steps = static_cast<double>(n_points - 1);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    double v;
    if (i == n_points - 1) {
      v = hi;  // land exactly on the bound, no accumulated rounding
    } else if (kind == "log") {
      v = lo * std::pow(hi / lo, static_cast<double>(i) / steps);
    } else {
      v = lo + (hi - lo) * static_cast<double>(i) / steps;
    }
    std::string formatted = format_value(v, integral);
    // Integer rounding can collapse neighbouring points (1:10:log20);
    // keep each resulting value once.
    if (axis.values.empty() || axis.values.back() != formatted) {
      axis.values.push_back(std::move(formatted));
    }
  }
  return true;
}

std::vector<std::vector<std::string>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::string>> grid{{}};
  for (const auto& axis : axes) {
    std::vector<std::vector<std::string>> next;
    next.reserve(grid.size() * axis.values.size());
    for (const auto& prefix : grid) {
      for (const auto& value : axis.values) {
        auto point = prefix;
        point.push_back(value);
        next.push_back(std::move(point));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

std::string point_label(const std::vector<SweepAxis>& axes,
                        const std::vector<std::string>& point) {
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a != 0) label += ',';
    label += axes[a].key + '=' + point[a];
  }
  return label;
}

double sweep_point_cost(const std::vector<std::string>& point) {
  double cost = 1.0;
  for (const auto& value : point) {
    double v = 0.0;
    if (summary::parse_number(value, v) && v > 1.0) cost *= v;
  }
  return cost;
}

double weighted_eta_seconds(double elapsed_s, double weight_done,
                            double weight_total) {
  if (weight_done <= 0.0) return 0.0;
  return elapsed_s / weight_done * std::max(0.0, weight_total - weight_done);
}

void request_sweep_interrupt() {
  g_sweep_interrupt.store(true, std::memory_order_relaxed);
}

int run_sweep(const Scenario& scenario, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err) {
  if (sweep.axes.empty()) {
    err << "error: sweep needs at least one --sweep key=... axis\n";
    return 2;
  }
  std::size_t n_points = 1;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    const SweepAxis& axis = sweep.axes[a];
    if (axis.values.empty()) {
      err << "error: --sweep axis '" << axis.key << "' has no values\n";
      return 2;
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (sweep.axes[b].key == axis.key) {
        // A second axis for the same key would silently lose: set_param is
        // last-write-wins, so the first axis' column would mislabel what ran.
        err << "error: duplicate --sweep axis for key '" << axis.key
            << "' (combine the values into one axis)\n";
        return 2;
      }
    }
    // Cap the grid product, not just each axis: every point's full output
    // is buffered until aggregation.
    if (axis.values.size() > kMaxGridPoints / n_points) {
      err << "error: sweep grid exceeds " << kMaxGridPoints << " points\n";
      return 2;
    }
    n_points *= axis.values.size();
  }
  const int n_rep = sweep.replicate;
  if (n_rep < 1) {
    err << "error: --replicate must be at least 1\n";
    return 2;
  }
  if (static_cast<std::size_t>(n_rep) > kMaxGridPoints / n_points) {
    err << "error: sweep grid times --replicate exceeds " << kMaxGridPoints
        << " runs\n";
    return 2;
  }
  if (n_rep > 1 && sweep.stats.empty()) {
    err << "error: --replicate needs at least one statistic\n";
    return 2;
  }
  if (sweep.shard_count < 1 || sweep.shard_index < 0 ||
      sweep.shard_index >= sweep.shard_count) {
    err << "error: shard index " << sweep.shard_index
        << " is out of range for " << sweep.shard_count
        << " shard(s) (need 0 <= i < n)\n";
    return 2;
  }
  if (sweep.checkpoint_every < 1) {
    err << "error: --checkpoint-every must be at least 1\n";
    return 2;
  }
  if (sweep.max_point_failures < 0) {
    err << "error: --max-point-failures must be non-negative\n";
    return 2;
  }
  g_sweep_interrupt.store(false, std::memory_order_relaxed);
  const auto grid = expand_grid(sweep.axes);

  // Validate every point before running anything, so a bad axis value is
  // one clean diagnostic instead of a mid-sweep failure.
  auto point_options = [&](const std::vector<std::string>& point) {
    ScenarioOptions opts = sweep.base;
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      opts.set_param(sweep.axes[a].key, point[a]);
    }
    return opts;
  };
  for (const auto& point : grid) {
    if (!validate_scenario_params(scenario, point_options(point), err)) {
      err << "  (sweep point " << point_label(sweep.axes, point) << ")\n";
      return 2;
    }
  }

  // Run this shard's slice of the grid (times replicates) on a fixed-size
  // pool.  One task is one scenario run; task t is replicate t % n_rep of
  // grid point t / n_rep, and the shard owns the task iff it owns the
  // point.  Completed tasks stream: whenever the next *owned task in task
  // order* has completed, its trace is folded into its grid point's
  // accumulator and the capture released, so the accumulators see rows in
  // exactly the order a serial unsharded sweep would feed them —
  // byte-identical output, independent of completion order and of the
  // cost-ordered scheduling below — while peak memory holds only the
  // in-flight window.
  const SweepManifest manifest = SweepManifest::from(scenario, sweep);
  const std::size_t n_tasks = grid.size() * static_cast<std::size_t>(n_rep);
  std::vector<double> point_cost(grid.size());
  for (std::size_t p = 0; p < grid.size(); ++p) {
    point_cost[p] = sweep_point_cost(grid[p]);
  }
  auto task_point = [n_rep](std::size_t t) {
    return t / static_cast<std::size_t>(n_rep);
  };
  std::vector<std::size_t> owned_tasks;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    if (shard_owns_point(manifest, task_point(t))) owned_tasks.push_back(t);
  }

  // Fold state (guarded by fold_mu once workers start).
  std::vector<char> folded(n_tasks, 0);
  std::string header;
  std::vector<summary::ColumnSummary> per_point;
  // Monotone across resumes: every checkpoint write bumps it, so a
  // supervisor polling read_checkpoint_progress sees strictly increasing
  // heartbeats from a live shard even when no new task folded.
  std::uint64_t heartbeat = 0;

  if (!sweep.resume_path.empty()) {
    SweepStateFile ckpt;
    if (!load_state_file(sweep.resume_path, ckpt, err)) return 2;
    if (ckpt.kind != SweepStateFile::Kind::kCheckpoint) {
      err << "error: '" << sweep.resume_path
          << "' is a shard partial, not a checkpoint (merge it with "
             "`tfmcc_sim merge` instead)\n";
      return 2;
    }
    if (!ckpt.manifest.matches(manifest, /*ignore_shard_index=*/false,
                               "checkpoint '" + sweep.resume_path + "'",
                               err)) {
      return 2;
    }
    if (ckpt.header.empty() && !ckpt.points.empty()) {
      err << "error: cannot load '" << sweep.resume_path
          << "': point state without a CSV header\n";
      return 2;
    }
    folded = std::move(ckpt.folded);
    header = std::move(ckpt.header);
    heartbeat = ckpt.heartbeat;
    if (!header.empty()) {
      per_point.assign(grid.size(),
                       summary::ColumnSummary{summary::split_csv(header)});
      for (auto& [idx, state] : ckpt.points) {
        per_point[idx] = std::move(state);
      }
    }
  }

  std::size_t restored = 0;
  double restored_weight = 0.0;
  double owned_weight = 0.0;
  for (std::size_t t : owned_tasks) {
    owned_weight += point_cost[task_point(t)];
    if (folded[t] != 0) {
      ++restored;
      restored_weight += point_cost[task_point(t)];
    }
  }

  // Longest-expected-first scheduling over the still-pending owned tasks:
  // starting the expensive points early keeps an uneven grid from stalling
  // the pool on one giant tail run.  The reorder is bounded to blocks of
  // consecutive tasks — folds (and therefore checkpoints and capture
  // release) advance strictly in task order, so a global sort would hold
  // every fold hostage to the cheapest task it scheduled last.  This
  // permutes only which worker picks what, never the fold order, so output
  // bytes are unaffected.
  std::vector<std::size_t> schedule;
  for (std::size_t t : owned_tasks) {
    if (folded[t] == 0) schedule.push_back(t);
  }
  const std::size_t window = std::max<std::size_t>(
      8, 4 * static_cast<std::size_t>(std::max(sweep.jobs, 1)));
  for (std::size_t b = 0; b < schedule.size(); b += window) {
    const auto first = schedule.begin() + static_cast<std::ptrdiff_t>(b);
    const auto last =
        schedule.begin() +
        static_cast<std::ptrdiff_t>(std::min(b + window, schedule.size()));
    std::stable_sort(first, last, [&](std::size_t a, std::size_t c) {
      return point_cost[task_point(a)] > point_cost[task_point(c)];
    });
  }

  std::string progress_label = "sweep";
  if (sweep.shard_count > 1) {
    progress_label += " shard " + std::to_string(sweep.shard_index) + "/" +
                      std::to_string(sweep.shard_count);
  }
  const bool err_is_stderr_tty = &err == &std::cerr && stderr_is_tty();
  ProgressReporter progress(std::move(progress_label), owned_tasks.size(),
                            owned_weight, restored, restored_weight,
                            sweep.progress || err_is_stderr_tty,
                            err_is_stderr_tty, err);

  // Diagnostics produced mid-sweep are buffered and replayed after the
  // progress line finishes: run failures separately from the first merge
  // error (reported only when every run succeeded), checkpoint-write
  // failures last.
  std::vector<PointResult> results(n_tasks);
  std::atomic<std::size_t> next_slot{0};
  std::mutex fold_mu;
  std::vector<char> task_ready(n_tasks, 0);
  std::size_t fold_cursor = 0;  // index into owned_tasks
  std::size_t folds_since_ckpt = 0;
  std::ostringstream failure_log;
  std::ostringstream merge_log;
  std::ostringstream ckpt_log;
  bool any_failed = false;
  bool merge_failed = false;
  bool checkpoint_failed = false;
  // Point-granularity failure tolerance: one failed replicate fails its
  // whole grid point (the point's statistics would be over a different
  // replicate set than its neighbours').  Within --max-point-failures the
  // sweep keeps running and masks the failed points out of the aggregate.
  const int max_pf = sweep.max_point_failures;
  std::vector<char> point_failed(grid.size(), 0);
  int n_failed_points = 0;

  // Folds one completed task (caller holds fold_mu; called in task order).
  auto fold_task = [&](std::size_t t) {
    PointResult& res = results[t];
    const auto& point = grid[task_point(t)];
    const std::uint64_t rep = t % static_cast<std::size_t>(n_rep);
    if (res.rc != 0) {
      failure_log << "error: sweep point " << point_label(sweep.axes, point)
                  << replicate_label(sweep, rep, n_rep) << " failed";
      if (!res.error.empty()) {
        failure_log << " with exception: " << res.error;
      } else {
        failure_log << " (exit code " << res.rc << ")";
      }
      failure_log << '\n';
      any_failed = true;
      if (point_failed[task_point(t)] == 0) {
        point_failed[task_point(t)] = 1;
        ++n_failed_points;
      }
    } else if (!merge_failed && point_failed[task_point(t)] == 0 &&
               (max_pf == 0 ? !any_failed : n_failed_points <= max_pf)) {
      RunTrace trace;
      std::string decode_err;
      if (!RunTrace::decode(res.trace, trace, decode_err)) {
        merge_log << "error: sweep point " << point_label(sweep.axes, point)
                  << replicate_label(sweep, rep, n_rep)
                  << " produced an unreadable trace: " << decode_err << '\n';
        merge_failed = true;
      } else if (trace.has_header()) {
        const std::string line = trace.header_line();
        if (header.empty()) {
          header = line;
          per_point.assign(grid.size(),
                           summary::ColumnSummary{summary::split_csv(header)});
        } else if (line != header) {
          merge_log << "error: sweep point " << point_label(sweep.axes, point)
                    << replicate_label(sweep, rep, n_rep)
                    << " emitted CSV header '" << line
                    << "' but earlier points emitted '" << header << "'\n";
          merge_failed = true;
        }
        if (!merge_failed) {
          auto& acc = per_point[task_point(t)];
          for (std::size_t r = 0; r < trace.n_rows(); ++r) {
            if (n_rep == 1) {
              // The raw aggregate passes ragged rows through verbatim.
              acc.add_row_unchecked(trace.row_cells(r));
            } else if (!acc.add_row(trace.row_cells(r), merge_log)) {
              merge_log << "  (sweep point " << point_label(sweep.axes, point)
                        << replicate_label(sweep, rep, n_rep) << ")\n";
              merge_failed = true;
              break;
            }
          }
        }
      }
    }
    // Folded (or unusable): release the capture.
    res.trace.clear();
    res.trace.shrink_to_fit();
  };

  // Snapshot the fold state to the checkpoint file (caller holds fold_mu).
  // Checkpoints stop once a failure is recorded: persisting a failed task
  // as folded would let a resume skip it silently.  `force` bypasses the
  // checkpoint-every gate (but never the failure disarm) for the
  // interrupt-flush path.
  auto write_checkpoint = [&](bool force) {
    if (sweep.checkpoint_path.empty() || checkpoint_failed || any_failed ||
        merge_failed) {
      return;
    }
    const bool all_done = fold_cursor == owned_tasks.size();
    if (!force &&
        folds_since_ckpt <
            static_cast<std::size_t>(sweep.checkpoint_every) &&
        !all_done) {
      return;
    }
    folds_since_ckpt = 0;
    SweepStateFile ck;
    ck.kind = SweepStateFile::Kind::kCheckpoint;
    ck.manifest = manifest;
    ck.header = header;
    ck.heartbeat = ++heartbeat;
    ck.folded = folded;
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (shard_owns_point(manifest, p) && !per_point.empty() &&
          per_point[p].row_count() > 0) {
        ck.points.emplace_back(p, per_point[p]);
      }
    }
    if (!save_state_file_atomic(ck, sweep.checkpoint_path, ckpt_log)) {
      checkpoint_failed = true;
    }
  };

  auto worker = [&] {
    for (;;) {
      // An interrupt lets the in-flight run finish (its result still folds
      // and checkpoints) but claims nothing further.
      if (g_sweep_interrupt.load(std::memory_order_relaxed)) return;
      const std::size_t slot = next_slot.fetch_add(1);
      if (slot >= schedule.size()) return;
      const std::size_t t = schedule[slot];
      const std::uint64_t rep = t % static_cast<std::size_t>(n_rep);
      std::ostringstream sink;
      ScenarioOptions opts = point_options(grid[task_point(t)]);
      // When replicating, every replicate's seed — including replicate 0 —
      // derives from the same effective base (`--seed`, defaulting to 0),
      // so the replicate set is a pure function of the base seed and does
      // not half-overlap between a bare sweep and `--seed 0`.  A single
      // replicate keeps the base options untouched (seed unset means the
      // scenario default), reproducing a plain sweep byte-for-byte.
      if (n_rep > 1) {
        opts.seed = derive_replicate_seed(sweep.base.seed.value_or(0), rep);
      }
      opts.set_output(sink);
      opts.bind_specs(&scenario.params);
      try {
        results[t].rc = scenario.fn(opts);
      } catch (const std::exception& e) {
        results[t].rc = -1;
        results[t].error = e.what();
      } catch (...) {
        // Anything escaping the thread body would std::terminate the whole
        // sweep; degrade to a labelled per-point failure instead.
        results[t].rc = -1;
        results[t].error = "unknown exception";
      }
      // Strip commentary and split cells here, in the worker, so the fold
      // (serialized behind fold_mu) only replays pre-parsed rows.
      RunTrace::parse_text(sink.str()).encode(results[t].trace);
      {
        std::lock_guard<std::mutex> lock(fold_mu);
        task_ready[t] = 1;
        while (fold_cursor < owned_tasks.size()) {
          const std::size_t next = owned_tasks[fold_cursor];
          if (folded[next] != 0) {  // restored from the checkpoint
            ++fold_cursor;
            continue;
          }
          if (task_ready[next] == 0) break;
          fold_task(next);
          folded[next] = 1;
          ++fold_cursor;
          ++folds_since_ckpt;
          write_checkpoint(/*force=*/false);
        }
      }
      progress.task_done(point_cost[task_point(t)]);
    }
  };
  const std::size_t n_workers = std::min<std::size_t>(
      schedule.size(), static_cast<std::size_t>(std::max(sweep.jobs, 1)));
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  progress.finish();

  const bool interrupted = g_sweep_interrupt.load(std::memory_order_relaxed);
  const bool tolerated =
      any_failed && !merge_failed && max_pf > 0 && n_failed_points <= max_pf;
  if (interrupted) {
    // Best-effort final flush: capture whatever folded past the last
    // periodic write, so a --resume continues from the interrupt point
    // instead of the last checkpoint-every boundary.
    if (!sweep.checkpoint_path.empty()) {
      std::lock_guard<std::mutex> lock(fold_mu);
      write_checkpoint(/*force=*/true);
    }
    err << failure_log.str() << merge_log.str() << ckpt_log.str();
    if (!sweep.checkpoint_path.empty() && !checkpoint_failed && !any_failed &&
        !merge_failed) {
      err << "sweep: interrupted; checkpoint flushed to '"
          << sweep.checkpoint_path << "' (continue with --resume)\n";
    } else {
      err << "sweep: interrupted\n";
    }
    return 1;
  }
  if (any_failed && !tolerated) {
    err << failure_log.str();
    if (max_pf > 0) {
      err << "error: " << n_failed_points
          << " grid point(s) failed, exceeding --max-point-failures "
          << max_pf << '\n';
    }
    return 1;
  }
  if (merge_failed) {
    err << merge_log.str();
    return 1;
  }
  if (checkpoint_failed) {
    err << ckpt_log.str();
    return 2;
  }
  // A fully-restored resume ran no workers, so the end-of-sweep checkpoint
  // refresh did not happen in the fold loop; it is a no-op rewrite here.
  if (!sweep.checkpoint_path.empty() && schedule.empty()) {
    std::lock_guard<std::mutex> lock(fold_mu);
    fold_cursor = owned_tasks.size();
    write_checkpoint(/*force=*/false);
    if (checkpoint_failed) {
      err << ckpt_log.str();
      return 2;
    }
  }
  if (tolerated) {
    // Replay every failure and name every masked point, so the degraded
    // aggregate can never be mistaken for a complete one.
    err << failure_log.str();
    err << "sweep: " << n_failed_points << " of " << grid.size()
        << " grid point(s) failed (within --max-point-failures " << max_pf
        << "); missing from the aggregate:\n";
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (point_failed[p] != 0) {
        err << "  " << point_label(sweep.axes, grid[p]) << '\n';
      }
    }
  }

  if (sweep.shard_count > 1) {
    // Shards do not emit CSV: the partial artifact carries each owned
    // point's accumulator bitwise, for `tfmcc_sim merge` to place into the
    // full grid.  Failed (masked) points are left out entirely — their
    // accumulators may hold a partial replicate set.
    SweepStateFile part;
    part.kind = SweepStateFile::Kind::kPartial;
    part.manifest = manifest;
    part.header = header;
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (shard_owns_point(manifest, p) && point_failed[p] == 0 &&
          !per_point.empty() && per_point[p].row_count() > 0) {
        part.points.emplace_back(p, std::move(per_point[p]));
      }
    }
    part.save(out);
    return tolerated ? 1 : 0;
  }

  if (per_point.empty()) {
    // No point produced CSV; emit_sweep_aggregate diagnoses via the empty
    // header, but needs the vector shaped to the grid.
    per_point.assign(grid.size(), summary::ColumnSummary{{}});
  }
  const int rc =
      emit_sweep_aggregate(manifest, grid, per_point, header, out, err,
                           tolerated ? &point_failed : nullptr);
  if (rc != 0) return rc;
  return tolerated ? 1 : 0;
}

int sweep_main(int argc, char** argv, std::ostream& err) {
  if (argc < 1 || std::string_view{argv[0]}.substr(0, 2) == "--") {
    err << "usage: tfmcc_sim sweep <scenario> --sweep key=v1,v2,... "
           "[--sweep key=lo:hi:logN]... [--jobs N] [--replicate N] "
           "[--stats mean,stddev,cov,min,max] [--progress] "
           "[--shard i/n] [--checkpoint <path>] [--checkpoint-every N] "
           "[--resume <path>] [--max-point-failures K] "
           "[--duration <s>] [--seed <n>] [--set key=value]... "
           "[--output <path>]\n";
    return 2;
  }
  const std::string_view name = argv[0];
  const Scenario* scenario = ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : ScenarioRegistry::instance().names()) {
      err << "  " << n << '\n';
    }
    return 2;
  }

  SweepOptions sweep;
  bool stats_given = false;
  std::vector<char*> passthrough;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sweep") {
      if (!has_value) {
        err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN\n";
        return 2;
      }
      const std::string_view spec_text = argv[i + 1];
      const std::size_t eq = spec_text.find('=');
      const ParamSpec* spec =
          eq == std::string_view::npos
              ? nullptr
              : scenario->find_param(spec_text.substr(0, eq));
      SweepAxis axis;
      if (!parse_sweep_axis(spec_text, spec, axis, err)) return 2;
      sweep.axes.push_back(std::move(axis));
      ++i;
    } else if (arg == "--jobs") {
      char* end = nullptr;
      const long jobs = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || jobs < 1 ||
          jobs > 1024) {
        err << "error: --jobs expects an integer between 1 and 1024\n";
        return 2;
      }
      sweep.jobs = static_cast<int>(jobs);
      ++i;
    } else if (arg == "--replicate") {
      char* end = nullptr;
      const long reps = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || reps < 1 ||
          reps > 100'000) {
        err << "error: --replicate expects an integer between 1 and 1e5\n";
        return 2;
      }
      sweep.replicate = static_cast<int>(reps);
      ++i;
    } else if (arg == "--stats") {
      if (!has_value ||
          !summary::parse_stats(argv[i + 1], sweep.stats, err)) {
        if (!has_value) {
          err << "error: --stats expects a comma-separated subset of "
                 "mean,stddev,cov,min,max\n";
        }
        return 2;
      }
      stats_given = true;
      ++i;
    } else if (arg == "--shard") {
      // i/n: this invocation runs shard i of n and writes a partial
      // artifact for `tfmcc_sim merge`.
      bool ok = has_value;
      if (ok) {
        const std::string_view spec = argv[i + 1];
        const std::size_t slash = spec.find('/');
        ok = slash != std::string_view::npos;
        if (ok) {
          char* end = nullptr;
          const std::string text{spec};
          const long index = std::strtol(text.c_str(), &end, 10);
          ok = end == text.c_str() + slash;
          char* end2 = nullptr;
          const long count =
              ok ? std::strtol(text.c_str() + slash + 1, &end2, 10) : 0;
          ok = ok && end2 == text.c_str() + text.size() && count >= 1 &&
               count <= 10'000 && index >= 0 && index < count;
          if (ok) {
            sweep.shard_index = static_cast<int>(index);
            sweep.shard_count = static_cast<int>(count);
          }
        }
      }
      if (!ok) {
        err << "error: --shard expects i/n with 0 <= i < n <= 10000 "
               "(e.g. --shard 0/3)\n";
        return 2;
      }
      ++i;
    } else if (arg == "--checkpoint") {
      if (!has_value) {
        err << "error: --checkpoint expects a file path\n";
        return 2;
      }
      sweep.checkpoint_path = argv[i + 1];
      ++i;
    } else if (arg == "--checkpoint-every") {
      char* end = nullptr;
      const long every = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || every < 1 ||
          every > 1'000'000) {
        err << "error: --checkpoint-every expects an integer between 1 "
               "and 1e6\n";
        return 2;
      }
      sweep.checkpoint_every = static_cast<int>(every);
      ++i;
    } else if (arg == "--resume") {
      if (!has_value) {
        err << "error: --resume expects a checkpoint file path\n";
        return 2;
      }
      sweep.resume_path = argv[i + 1];
      ++i;
    } else if (arg == "--max-point-failures") {
      char* end = nullptr;
      const long cap = has_value ? std::strtol(argv[i + 1], &end, 10) : -1;
      if (!has_value || end == argv[i + 1] || *end != '\0' || cap < 0 ||
          cap > 1'000'000) {
        err << "error: --max-point-failures expects an integer between 0 "
               "and 1e6\n";
        return 2;
      }
      sweep.max_point_failures = static_cast<int>(cap);
      ++i;
    } else if (arg == "--progress") {
      sweep.progress = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (stats_given && sweep.replicate == 1) {
    // A single replicate emits raw rows, so a stats selection would be
    // silently dead; make the contradiction loud.
    err << "error: --stats requires --replicate greater than 1\n";
    return 2;
  }
  if (!parse_scenario_options(static_cast<int>(passthrough.size()),
                              passthrough.data(), sweep.base, err)) {
    return 2;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (sweep.base.output_path.has_value()) {
    if (!open_output_file(*sweep.base.output_path, file, err)) return 2;
    out = &file;
  }

  // While checkpointing, SIGTERM/SIGINT request a graceful stop — workers
  // drain, a final checkpoint is flushed, and the process exits nonzero
  // with the state resumable — instead of killing the process between
  // periodic writes.  Handlers are scoped to the run: restored before
  // returning so a supervisor embedding sweep_main keeps its own disposition.
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction old_term {};
  struct sigaction old_int {};
  const bool trap_signals = !sweep.checkpoint_path.empty();
  if (trap_signals) {
    struct sigaction sa {};
    sa.sa_handler = [](int) { request_sweep_interrupt(); };
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, &old_term);
    sigaction(SIGINT, &sa, &old_int);
  }
#endif
  const int rc = run_sweep(*scenario, sweep, *out, err);
#if defined(__unix__) || defined(__APPLE__)
  if (trap_signals) {
    sigaction(SIGTERM, &old_term, nullptr);
    sigaction(SIGINT, &old_int, nullptr);
  }
#endif
  if (file.is_open() &&
      !finish_output_file(*sweep.base.output_path, file, err)) {
    return 2;
  }
  return rc;
}

}  // namespace tfmcc
