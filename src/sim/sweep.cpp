#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

namespace tfmcc {

namespace {

// Unlike scenario_registry's parse_f64, this rejects non-finite values:
// an inf/nan sweep bound can never expand to a usable range.
bool parse_double(std::string_view text, double& out) {
  std::string buf{text};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return !buf.empty() && end == buf.c_str() + buf.size() &&
         std::isfinite(out);
}

std::string format_value(double v, bool integral) {
  if (integral) return std::to_string(std::llround(v));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Splits `text` on `sep`, keeping empty fields so "1,,2" is diagnosable.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep_at = text.find(sep, start);
    parts.push_back(text.substr(start, sep_at - start));
    if (sep_at == std::string_view::npos) return parts;
    start = sep_at + 1;
  }
}

/// Commentary a scenario interleaves with its CSV trace: the figure
/// header, CHECK/NOTE lines, and blank lines.  Everything else is taken
/// as CSV (header first, then rows) by the aggregator.
bool is_commentary(std::string_view line) {
  return line.empty() || line.front() == '#' ||
         line.substr(0, 6) == "CHECK " || line.substr(0, 5) == "NOTE:";
}

/// Label for per-point diagnostics: "n_receivers=2,trials=50".
std::string point_label(const std::vector<SweepAxis>& axes,
                        const std::vector<std::string>& point) {
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a != 0) label += ',';
    label += axes[a].key + '=' + point[a];
  }
  return label;
}

struct PointResult {
  int rc{0};
  std::string output;
  std::string error;
};

}  // namespace

bool parse_sweep_axis(std::string_view text, const ParamSpec* spec,
                      SweepAxis& axis, std::ostream& err) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == text.size()) {
    err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN, got '"
        << text << "'\n";
    return false;
  }
  axis.key = std::string{text.substr(0, eq)};
  axis.values.clear();
  const std::string_view body = text.substr(eq + 1);

  if (body.find(':') == std::string_view::npos) {
    for (std::string_view v : split(body, ',')) {
      if (v.empty()) {
        err << "error: empty value in --sweep list '" << text << "'\n";
        return false;
      }
      axis.values.emplace_back(v);
    }
    return true;
  }

  const auto parts = split(body, ':');
  double lo = 0, hi = 0;
  std::string_view kind;
  std::uint64_t n_points = 0;
  bool ok = parts.size() == 3 && parse_double(parts[0], lo) &&
            parse_double(parts[1], hi);
  if (ok) {
    const std::string_view step = parts[2];
    kind = step.substr(0, 3);
    ok = (kind == "lin" || kind == "log") && step.size() > 3;
    if (ok) {
      const std::string count{step.substr(3)};
      char* end = nullptr;
      n_points = std::strtoull(count.c_str(), &end, 10);
      ok = end == count.c_str() + count.size();
    }
  }
  if (!ok) {
    err << "error: malformed --sweep range '" << text
        << "' (expected key=lo:hi:linN or key=lo:hi:logN)\n";
    return false;
  }
  if (n_points < 2 || n_points > 1'000'000) {
    err << "error: --sweep range '" << text
        << "' needs between 2 and 1e6 points\n";
    return false;
  }
  if (kind == "log" && (lo <= 0.0 || hi <= 0.0)) {
    err << "error: --sweep log range '" << text
        << "' requires positive bounds\n";
    return false;
  }

  const bool integral =
      spec != nullptr &&
      (spec->type == ParamType::kInt64 || spec->type == ParamType::kUint64);
  const double steps = static_cast<double>(n_points - 1);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    double v;
    if (i == n_points - 1) {
      v = hi;  // land exactly on the bound, no accumulated rounding
    } else if (kind == "log") {
      v = lo * std::pow(hi / lo, static_cast<double>(i) / steps);
    } else {
      v = lo + (hi - lo) * static_cast<double>(i) / steps;
    }
    std::string formatted = format_value(v, integral);
    // Integer rounding can collapse neighbouring points (1:10:log20);
    // keep each resulting value once.
    if (axis.values.empty() || axis.values.back() != formatted) {
      axis.values.push_back(std::move(formatted));
    }
  }
  return true;
}

std::vector<std::vector<std::string>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::string>> grid{{}};
  for (const auto& axis : axes) {
    std::vector<std::vector<std::string>> next;
    next.reserve(grid.size() * axis.values.size());
    for (const auto& prefix : grid) {
      for (const auto& value : axis.values) {
        auto point = prefix;
        point.push_back(value);
        next.push_back(std::move(point));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

int run_sweep(const Scenario& scenario, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err) {
  if (sweep.axes.empty()) {
    err << "error: sweep needs at least one --sweep key=... axis\n";
    return 2;
  }
  std::size_t n_points = 1;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    const SweepAxis& axis = sweep.axes[a];
    if (axis.values.empty()) {
      err << "error: --sweep axis '" << axis.key << "' has no values\n";
      return 2;
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (sweep.axes[b].key == axis.key) {
        // A second axis for the same key would silently lose: set_param is
        // last-write-wins, so the first axis' column would mislabel what ran.
        err << "error: duplicate --sweep axis for key '" << axis.key
            << "' (combine the values into one axis)\n";
        return 2;
      }
    }
    // Cap the grid product, not just each axis: every point's full output
    // is buffered until aggregation.
    constexpr std::size_t kMaxGridPoints = 1'000'000;
    if (axis.values.size() > kMaxGridPoints / n_points) {
      err << "error: sweep grid exceeds " << kMaxGridPoints << " points\n";
      return 2;
    }
    n_points *= axis.values.size();
  }
  const auto grid = expand_grid(sweep.axes);

  // Validate every point before running anything, so a bad axis value is
  // one clean diagnostic instead of a mid-sweep failure.
  auto point_options = [&](const std::vector<std::string>& point) {
    ScenarioOptions opts = sweep.base;
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      opts.set_param(sweep.axes[a].key, point[a]);
    }
    return opts;
  };
  for (const auto& point : grid) {
    if (!validate_scenario_params(scenario, point_options(point), err)) {
      err << "  (sweep point " << point_label(sweep.axes, point) << ")\n";
      return 2;
    }
  }

  // Run the grid on a fixed-size pool.  Results land in grid-indexed slots,
  // so aggregation order is independent of completion order.
  std::vector<PointResult> results(grid.size());
  std::atomic<std::size_t> next_point{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next_point.fetch_add(1);
      if (i >= grid.size()) return;
      std::ostringstream sink;
      ScenarioOptions opts = point_options(grid[i]);
      opts.set_output(sink);
      opts.bind_specs(&scenario.params);
      try {
        results[i].rc = scenario.fn(opts);
      } catch (const std::exception& e) {
        results[i].rc = -1;
        results[i].error = e.what();
      } catch (...) {
        // Anything escaping the thread body would std::terminate the whole
        // sweep; degrade to a labelled per-point failure instead.
        results[i].rc = -1;
        results[i].error = "unknown exception";
      }
      results[i].output = sink.str();
    }
  };
  const std::size_t n_workers = std::min<std::size_t>(
      grid.size(), static_cast<std::size_t>(std::max(sweep.jobs, 1)));
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  int rc = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (results[i].rc != 0) {
      err << "error: sweep point " << point_label(sweep.axes, grid[i])
          << " failed";
      if (!results[i].error.empty()) {
        err << ": " << results[i].error;
      } else {
        err << " (exit code " << results[i].rc << ")";
      }
      err << '\n';
      rc = 1;
    }
  }
  if (rc != 0) return rc;

  // Merge: one shared header (the points must agree on it), then every
  // point's data rows in grid order with the swept values prepended.
  std::string header;
  std::vector<std::vector<std::string>> rows_per_point(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::istringstream is{results[i].output};
    std::string line;
    bool seen_header = false;
    while (std::getline(is, line)) {
      if (is_commentary(line)) continue;
      if (!seen_header) {
        seen_header = true;
        if (header.empty()) {
          header = line;
        } else if (line != header) {
          err << "error: sweep point " << point_label(sweep.axes, grid[i])
              << " emitted CSV header '" << line
              << "' but earlier points emitted '" << header << "'\n";
          return 1;
        }
        continue;
      }
      rows_per_point[i].push_back(line);
    }
    // The raw capture is fully parsed; release it so peak memory holds one
    // copy of the rows, not two.
    results[i].output.clear();
    results[i].output.shrink_to_fit();
  }
  if (header.empty()) {
    err << "error: no CSV trace found in any sweep point's output\n";
    return 1;
  }

  for (const auto& axis : sweep.axes) out << axis.key << ',';
  out << header << '\n';
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (const auto& row : rows_per_point[i]) {
      for (const auto& value : grid[i]) out << value << ',';
      out << row << '\n';
    }
  }
  return 0;
}

int sweep_main(int argc, char** argv, std::ostream& err) {
  if (argc < 1 || std::string_view{argv[0]}.substr(0, 2) == "--") {
    err << "usage: tfmcc_sim sweep <scenario> --sweep key=v1,v2,... "
           "[--sweep key=lo:hi:logN]... [--jobs N] [--duration <s>] "
           "[--seed <n>] [--set key=value]... [--output <path>]\n";
    return 2;
  }
  const std::string_view name = argv[0];
  const Scenario* scenario = ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : ScenarioRegistry::instance().names()) {
      err << "  " << n << '\n';
    }
    return 2;
  }

  SweepOptions sweep;
  std::vector<char*> passthrough;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sweep") {
      if (!has_value) {
        err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN\n";
        return 2;
      }
      const std::string_view spec_text = argv[i + 1];
      const std::size_t eq = spec_text.find('=');
      const ParamSpec* spec =
          eq == std::string_view::npos
              ? nullptr
              : scenario->find_param(spec_text.substr(0, eq));
      SweepAxis axis;
      if (!parse_sweep_axis(spec_text, spec, axis, err)) return 2;
      sweep.axes.push_back(std::move(axis));
      ++i;
    } else if (arg == "--jobs") {
      char* end = nullptr;
      const long jobs = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || jobs < 1 ||
          jobs > 1024) {
        err << "error: --jobs expects an integer between 1 and 1024\n";
        return 2;
      }
      sweep.jobs = static_cast<int>(jobs);
      ++i;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!parse_scenario_options(static_cast<int>(passthrough.size()),
                              passthrough.data(), sweep.base, err)) {
    return 2;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (sweep.base.output_path.has_value()) {
    if (!open_output_file(*sweep.base.output_path, file, err)) return 2;
    out = &file;
  }
  const int rc = run_sweep(*scenario, sweep, *out, err);
  if (file.is_open() &&
      !finish_output_file(*sweep.base.output_path, file, err)) {
    return 2;
  }
  return rc;
}

}  // namespace tfmcc
