#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tfmcc {

namespace {

/// Cap on scheduled scenario runs (grid points times replicates).  Purely a
/// task-count guard against typo-sized grids: replicated sweeps stream each
/// run's output into the statistics accumulators as it completes, so peak
/// memory holds the in-flight runs and the accumulated data rows, not all
/// grid x N outputs.
constexpr std::size_t kMaxGridPoints = 1'000'000;

std::string format_value(double v, bool integral) {
  if (integral) return std::to_string(std::llround(v));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Splits `text` on `sep`, keeping empty fields so "1,,2" is diagnosable.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep_at = text.find(sep, start);
    parts.push_back(text.substr(start, sep_at - start));
    if (sep_at == std::string_view::npos) return parts;
    start = sep_at + 1;
  }
}

/// Commentary a scenario interleaves with its CSV trace: the figure
/// header, CHECK/NOTE lines, and blank lines.  Everything else is taken
/// as CSV (header first, then rows) by the aggregator.
bool is_commentary(std::string_view line) {
  return line.empty() || line.front() == '#' ||
         line.substr(0, 6) == "CHECK " || line.substr(0, 5) == "NOTE:";
}

/// Label for per-point diagnostics: "n_receivers=2,trials=50".
std::string point_label(const std::vector<SweepAxis>& axes,
                        const std::vector<std::string>& point) {
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a != 0) label += ',';
    label += axes[a].key + '=' + point[a];
  }
  return label;
}

struct PointResult {
  int rc{0};
  std::string output;
  std::string error;
};

/// "replicate 2/5 (seed 1234...)" when replicating, "" otherwise; names the
/// exact run a diagnostic is about and the seed to reproduce it standalone.
std::string replicate_label(const SweepOptions& sweep, std::uint64_t rep,
                            int n_rep) {
  if (n_rep <= 1) return {};
  return " replicate " + std::to_string(rep + 1) + "/" +
         std::to_string(n_rep) + " (seed " +
         std::to_string(
             derive_replicate_seed(sweep.base.seed.value_or(0), rep)) +
         ")";
}

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) != 0;
#else
  return false;
#endif
}

/// Throttled completed/total + elapsed/ETA line on `err`.  On a TTY the
/// line rewrites itself in place; when forced onto a non-TTY stream
/// (`--progress` under redirection) each update is its own line.  Uses the
/// monotonic clock so wall-clock adjustments cannot yield negative ETAs.
class ProgressReporter {
 public:
  ProgressReporter(std::size_t total, bool enabled, bool tty,
                   std::ostream& err)
      : total_{total},
        enabled_{enabled},
        tty_{tty},
        err_{err},
        start_{std::chrono::steady_clock::now()} {}

  /// Thread-safe; called by workers after each completed run.
  void task_done() {
    const std::size_t done = done_.fetch_add(1) + 1;
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (done <= printed_done_) return;  // a slower thread lost the race
    const auto now = std::chrono::steady_clock::now();
    if (done != total_ &&
        now - last_print_ < std::chrono::milliseconds(200)) {
      return;
    }
    printed_done_ = done;
    last_print_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double eta =
        elapsed / static_cast<double>(done) *
        static_cast<double>(total_ - done);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "sweep: %zu/%zu runs (%.0f%%) elapsed %.1fs eta %.1fs",
                  done, total_,
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(total_),
                  elapsed, eta);
    if (tty_) {
      err_ << '\r' << buf << "  " << std::flush;
    } else {
      err_ << buf << '\n';
    }
  }

  /// Terminates the in-place TTY line so later diagnostics start clean.
  void finish() {
    if (enabled_ && tty_ && printed_done_ > 0) err_ << '\n';
  }

 private:
  const std::size_t total_;
  const bool enabled_;
  const bool tty_;
  std::ostream& err_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
  std::size_t printed_done_{0};
  std::chrono::steady_clock::time_point last_print_{};
};

}  // namespace

bool parse_sweep_axis(std::string_view text, const ParamSpec* spec,
                      SweepAxis& axis, std::ostream& err) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == text.size()) {
    err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN, got '"
        << text << "'\n";
    return false;
  }
  axis.key = std::string{text.substr(0, eq)};
  axis.values.clear();
  const std::string_view body = text.substr(eq + 1);

  if (body.find(':') == std::string_view::npos) {
    for (std::string_view v : split(body, ',')) {
      if (v.empty()) {
        err << "error: empty value in --sweep list '" << text << "'\n";
        return false;
      }
      axis.values.emplace_back(v);
    }
    return true;
  }

  const auto parts = split(body, ':');
  double lo = 0, hi = 0;
  std::string_view kind;
  std::uint64_t n_points = 0;
  // summary::parse_number rejects non-finite values, unlike
  // scenario_registry's parse_f64: an inf/nan sweep bound can never expand
  // to a usable range.
  bool ok = parts.size() == 3 && summary::parse_number(parts[0], lo) &&
            summary::parse_number(parts[1], hi);
  if (ok) {
    const std::string_view step = parts[2];
    kind = step.substr(0, 3);
    ok = (kind == "lin" || kind == "log") && step.size() > 3;
    if (ok) {
      const std::string count{step.substr(3)};
      char* end = nullptr;
      n_points = std::strtoull(count.c_str(), &end, 10);
      ok = end == count.c_str() + count.size();
    }
  }
  if (!ok) {
    err << "error: malformed --sweep range '" << text
        << "' (expected key=lo:hi:linN or key=lo:hi:logN)\n";
    return false;
  }
  if (n_points < 2 || n_points > 1'000'000) {
    err << "error: --sweep range '" << text
        << "' needs between 2 and 1e6 points\n";
    return false;
  }
  if (kind == "log" && (lo <= 0.0 || hi <= 0.0)) {
    err << "error: --sweep log range '" << text
        << "' requires positive bounds\n";
    return false;
  }

  const bool integral =
      spec != nullptr &&
      (spec->type == ParamType::kInt64 || spec->type == ParamType::kUint64);
  const double steps = static_cast<double>(n_points - 1);
  for (std::uint64_t i = 0; i < n_points; ++i) {
    double v;
    if (i == n_points - 1) {
      v = hi;  // land exactly on the bound, no accumulated rounding
    } else if (kind == "log") {
      v = lo * std::pow(hi / lo, static_cast<double>(i) / steps);
    } else {
      v = lo + (hi - lo) * static_cast<double>(i) / steps;
    }
    std::string formatted = format_value(v, integral);
    // Integer rounding can collapse neighbouring points (1:10:log20);
    // keep each resulting value once.
    if (axis.values.empty() || axis.values.back() != formatted) {
      axis.values.push_back(std::move(formatted));
    }
  }
  return true;
}

std::vector<std::vector<std::string>> expand_grid(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::string>> grid{{}};
  for (const auto& axis : axes) {
    std::vector<std::vector<std::string>> next;
    next.reserve(grid.size() * axis.values.size());
    for (const auto& prefix : grid) {
      for (const auto& value : axis.values) {
        auto point = prefix;
        point.push_back(value);
        next.push_back(std::move(point));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

int run_sweep(const Scenario& scenario, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err) {
  if (sweep.axes.empty()) {
    err << "error: sweep needs at least one --sweep key=... axis\n";
    return 2;
  }
  std::size_t n_points = 1;
  for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
    const SweepAxis& axis = sweep.axes[a];
    if (axis.values.empty()) {
      err << "error: --sweep axis '" << axis.key << "' has no values\n";
      return 2;
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (sweep.axes[b].key == axis.key) {
        // A second axis for the same key would silently lose: set_param is
        // last-write-wins, so the first axis' column would mislabel what ran.
        err << "error: duplicate --sweep axis for key '" << axis.key
            << "' (combine the values into one axis)\n";
        return 2;
      }
    }
    // Cap the grid product, not just each axis: every point's full output
    // is buffered until aggregation.
    if (axis.values.size() > kMaxGridPoints / n_points) {
      err << "error: sweep grid exceeds " << kMaxGridPoints << " points\n";
      return 2;
    }
    n_points *= axis.values.size();
  }
  const int n_rep = sweep.replicate;
  if (n_rep < 1) {
    err << "error: --replicate must be at least 1\n";
    return 2;
  }
  if (static_cast<std::size_t>(n_rep) > kMaxGridPoints / n_points) {
    err << "error: sweep grid times --replicate exceeds " << kMaxGridPoints
        << " runs\n";
    return 2;
  }
  if (n_rep > 1 && sweep.stats.empty()) {
    err << "error: --replicate needs at least one statistic\n";
    return 2;
  }
  const auto grid = expand_grid(sweep.axes);

  // Validate every point before running anything, so a bad axis value is
  // one clean diagnostic instead of a mid-sweep failure.
  auto point_options = [&](const std::vector<std::string>& point) {
    ScenarioOptions opts = sweep.base;
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      opts.set_param(sweep.axes[a].key, point[a]);
    }
    return opts;
  };
  for (const auto& point : grid) {
    if (!validate_scenario_params(scenario, point_options(point), err)) {
      err << "  (sweep point " << point_label(sweep.axes, point) << ")\n";
      return 2;
    }
  }

  // Run the grid (times replicates) on a fixed-size pool.  One task is one
  // scenario run; task t is replicate t % n_rep of grid point t / n_rep.
  // Replicated sweeps stream: whenever the next task *in task order* has
  // completed, its output is folded into its grid point's statistics
  // accumulator and the raw capture is released, so the accumulators see
  // rows in exactly the order the old buffer-everything merge fed them —
  // byte-identical output, independent of completion order — while peak
  // memory holds only the in-flight window instead of all grid x N runs.
  const std::size_t n_tasks = grid.size() * static_cast<std::size_t>(n_rep);
  std::vector<PointResult> results(n_tasks);
  std::atomic<std::size_t> next_task{0};
  const bool err_is_stderr_tty = &err == &std::cerr && stderr_is_tty();
  ProgressReporter progress(n_tasks, sweep.progress || err_is_stderr_tty,
                            err_is_stderr_tty, err);

  // Streaming fold state, all guarded by fold_mu.  Diagnostics produced
  // mid-sweep are buffered and replayed after the progress line finishes:
  // run failures (reported alone, like the old post-hoc scan) separately
  // from the first merge error (reported only when every run succeeded).
  std::mutex fold_mu;
  std::vector<char> task_ready(n_tasks, 0);
  std::size_t next_fold = 0;
  std::string header;
  std::vector<summary::ColumnSummary> per_point;
  std::ostringstream failure_log;
  std::ostringstream merge_log;
  bool any_failed = false;
  bool merge_failed = false;

  // Folds one completed task (caller holds fold_mu; called in task order).
  auto fold_task = [&](std::size_t t) {
    PointResult& res = results[t];
    const auto& point = grid[t / static_cast<std::size_t>(n_rep)];
    const std::uint64_t rep = t % static_cast<std::size_t>(n_rep);
    if (res.rc != 0) {
      failure_log << "error: sweep point " << point_label(sweep.axes, point)
                  << replicate_label(sweep, rep, n_rep) << " failed";
      if (!res.error.empty()) {
        failure_log << " with exception: " << res.error;
      } else {
        failure_log << " (exit code " << res.rc << ")";
      }
      failure_log << '\n';
      any_failed = true;
    } else if (n_rep > 1 && !any_failed && !merge_failed) {
      std::istringstream is{res.output};
      std::string line;
      bool seen_header = false;
      while (std::getline(is, line)) {
        if (is_commentary(line)) continue;
        if (!seen_header) {
          seen_header = true;
          if (header.empty()) {
            header = line;
            per_point.assign(grid.size(),
                             summary::ColumnSummary{summary::split_csv(header)});
          } else if (line != header) {
            merge_log << "error: sweep point "
                      << point_label(sweep.axes, point)
                      << replicate_label(sweep, rep, n_rep)
                      << " emitted CSV header '" << line
                      << "' but earlier points emitted '" << header << "'\n";
            merge_failed = true;
            break;
          }
          continue;
        }
        auto& acc = per_point[t / static_cast<std::size_t>(n_rep)];
        if (!acc.add_row(summary::split_csv(line), merge_log)) {
          merge_log << "  (sweep point " << point_label(sweep.axes, point)
                    << replicate_label(sweep, rep, n_rep) << ")\n";
          merge_failed = true;
          break;
        }
      }
    }
    // Streamed (or unusable): release the raw capture.  Single-replicate
    // sweeps keep it — the raw rows are the output.
    if (n_rep > 1) {
      res.output.clear();
      res.output.shrink_to_fit();
    }
  };

  auto worker = [&] {
    for (;;) {
      const std::size_t t = next_task.fetch_add(1);
      if (t >= n_tasks) return;
      const std::uint64_t rep = t % static_cast<std::size_t>(n_rep);
      std::ostringstream sink;
      ScenarioOptions opts =
          point_options(grid[t / static_cast<std::size_t>(n_rep)]);
      // When replicating, every replicate's seed — including replicate 0 —
      // derives from the same effective base (`--seed`, defaulting to 0),
      // so the replicate set is a pure function of the base seed and does
      // not half-overlap between a bare sweep and `--seed 0`.  A single
      // replicate keeps the base options untouched (seed unset means the
      // scenario default), reproducing a plain sweep byte-for-byte.
      if (n_rep > 1) {
        opts.seed = derive_replicate_seed(sweep.base.seed.value_or(0), rep);
      }
      opts.set_output(sink);
      opts.bind_specs(&scenario.params);
      try {
        results[t].rc = scenario.fn(opts);
      } catch (const std::exception& e) {
        results[t].rc = -1;
        results[t].error = e.what();
      } catch (...) {
        // Anything escaping the thread body would std::terminate the whole
        // sweep; degrade to a labelled per-point failure instead.
        results[t].rc = -1;
        results[t].error = "unknown exception";
      }
      results[t].output = sink.str();
      {
        std::lock_guard<std::mutex> lock(fold_mu);
        task_ready[t] = 1;
        while (next_fold < n_tasks && task_ready[next_fold] != 0) {
          fold_task(next_fold);
          ++next_fold;
        }
      }
      progress.task_done();
    }
  };
  const std::size_t n_workers = std::min<std::size_t>(
      n_tasks, static_cast<std::size_t>(std::max(sweep.jobs, 1)));
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  progress.finish();

  if (any_failed) {
    err << failure_log.str();
    return 1;
  }

  if (n_rep == 1) {
    // Raw aggregate: parse out one shared header (every run must agree on
    // it) and each point's data rows, emitted in grid order with the swept
    // values prepended.
    std::vector<std::vector<std::string>> rows_per_task(n_tasks);
    for (std::size_t t = 0; t < n_tasks; ++t) {
      std::istringstream is{results[t].output};
      std::string line;
      bool seen_header = false;
      while (std::getline(is, line)) {
        if (is_commentary(line)) continue;
        if (!seen_header) {
          seen_header = true;
          if (header.empty()) {
            header = line;
          } else if (line != header) {
            err << "error: sweep point "
                << point_label(sweep.axes, grid[t])
                << " emitted CSV header '" << line
                << "' but earlier points emitted '" << header << "'\n";
            return 1;
          }
          continue;
        }
        rows_per_task[t].push_back(line);
      }
      // The raw capture is fully parsed; release it so peak memory holds
      // one copy of the rows, not two.
      results[t].output.clear();
      results[t].output.shrink_to_fit();
    }
    if (header.empty()) {
      err << "error: no CSV trace found in any sweep point's output\n";
      return 1;
    }
    for (const auto& axis : sweep.axes) out << axis.key << ',';
    out << header << '\n';
    for (std::size_t i = 0; i < grid.size(); ++i) {
      for (const auto& row : rows_per_task[i]) {
        for (const auto& value : grid[i]) out << value << ',';
        out << row << '\n';
      }
    }
    return 0;
  }

  // Replicated aggregate: the accumulators already hold each point's rows —
  // across all of its replicates, in replicate order — and collapse into
  // statistics rows, one per distinct label tuple (all-numeric traces
  // collapse to exactly one row per point; a per-flow trace keeps one row
  // per flow).  Column classification (numeric vs label) must agree across
  // points, or the expanded headers would disagree row by row; diverging
  // points are a diagnosed error, not silently mixed columns.
  if (merge_failed) {
    err << merge_log.str();
    return 1;
  }
  if (header.empty()) {
    err << "error: no CSV trace found in any sweep point's output\n";
    return 1;
  }

  // The reference header comes from the first point that produced rows;
  // rowless points emit nothing and are exempt from the comparison.
  const summary::ColumnSummary* reference = nullptr;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (per_point[i].row_count() > 0) {
      reference = &per_point[i];
      break;
    }
  }
  if (reference == nullptr) reference = &per_point.front();
  const std::vector<std::string> expanded = reference->header(sweep.stats);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (per_point[i].row_count() > 0 &&
        per_point[i].numeric_mask() != reference->numeric_mask()) {
      err << "error: sweep point " << point_label(sweep.axes, grid[i])
          << " has a different numeric/label column mix than earlier "
             "points; cannot aggregate\n";
      return 1;
    }
  }

  for (const auto& axis : sweep.axes) out << axis.key << ',';
  for (const auto& name : expanded) out << name << ',';
  out << "n_rep\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (const auto& srow : per_point[i].summarize(sweep.stats)) {
      for (const auto& value : grid[i]) out << value << ',';
      for (const auto& cell : srow) out << cell << ',';
      out << n_rep << '\n';
    }
  }
  return 0;
}

int sweep_main(int argc, char** argv, std::ostream& err) {
  if (argc < 1 || std::string_view{argv[0]}.substr(0, 2) == "--") {
    err << "usage: tfmcc_sim sweep <scenario> --sweep key=v1,v2,... "
           "[--sweep key=lo:hi:logN]... [--jobs N] [--replicate N] "
           "[--stats mean,stddev,cov,min,max] [--progress] "
           "[--duration <s>] [--seed <n>] [--set key=value]... "
           "[--output <path>]\n";
    return 2;
  }
  const std::string_view name = argv[0];
  const Scenario* scenario = ScenarioRegistry::instance().find(name);
  if (scenario == nullptr) {
    err << "error: unknown scenario '" << name << "'\nknown scenarios:\n";
    for (const auto& n : ScenarioRegistry::instance().names()) {
      err << "  " << n << '\n';
    }
    return 2;
  }

  SweepOptions sweep;
  bool stats_given = false;
  std::vector<char*> passthrough;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sweep") {
      if (!has_value) {
        err << "error: --sweep expects key=v1,v2,... or key=lo:hi:linN|logN\n";
        return 2;
      }
      const std::string_view spec_text = argv[i + 1];
      const std::size_t eq = spec_text.find('=');
      const ParamSpec* spec =
          eq == std::string_view::npos
              ? nullptr
              : scenario->find_param(spec_text.substr(0, eq));
      SweepAxis axis;
      if (!parse_sweep_axis(spec_text, spec, axis, err)) return 2;
      sweep.axes.push_back(std::move(axis));
      ++i;
    } else if (arg == "--jobs") {
      char* end = nullptr;
      const long jobs = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || jobs < 1 ||
          jobs > 1024) {
        err << "error: --jobs expects an integer between 1 and 1024\n";
        return 2;
      }
      sweep.jobs = static_cast<int>(jobs);
      ++i;
    } else if (arg == "--replicate") {
      char* end = nullptr;
      const long reps = has_value ? std::strtol(argv[i + 1], &end, 10) : 0;
      if (!has_value || end == argv[i + 1] || *end != '\0' || reps < 1 ||
          reps > 100'000) {
        err << "error: --replicate expects an integer between 1 and 1e5\n";
        return 2;
      }
      sweep.replicate = static_cast<int>(reps);
      ++i;
    } else if (arg == "--stats") {
      if (!has_value ||
          !summary::parse_stats(argv[i + 1], sweep.stats, err)) {
        if (!has_value) {
          err << "error: --stats expects a comma-separated subset of "
                 "mean,stddev,cov,min,max\n";
        }
        return 2;
      }
      stats_given = true;
      ++i;
    } else if (arg == "--progress") {
      sweep.progress = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (stats_given && sweep.replicate == 1) {
    // A single replicate emits raw rows, so a stats selection would be
    // silently dead; make the contradiction loud.
    err << "error: --stats requires --replicate greater than 1\n";
    return 2;
  }
  if (!parse_scenario_options(static_cast<int>(passthrough.size()),
                              passthrough.data(), sweep.base, err)) {
    return 2;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (sweep.base.output_path.has_value()) {
    if (!open_output_file(*sweep.base.output_path, file, err)) return 2;
    out = &file;
  }
  const int rc = run_sweep(*scenario, sweep, *out, err);
  if (file.is_open() &&
      !finish_output_file(*sweep.base.output_path, file, err)) {
    return 2;
  }
  return rc;
}

}  // namespace tfmcc
