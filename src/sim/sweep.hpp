#pragma once

// Parameter-sweep driver: runs one scenario over a cartesian grid of
// `--set`-able parameter values and aggregates the per-point CSV traces
// into a single table.
//
//   tfmcc_sim sweep fig07_scaling --sweep n_receivers=2:2000:log6
//                                 --sweep trials=50,150 --jobs 4
//
// Axis syntax (the value part of `--sweep key=...`):
//   v1,v2,v3         explicit list, values passed through verbatim
//   lo:hi:linN       N points linearly spaced from lo to hi inclusive
//   lo:hi:logN       N points geometrically spaced from lo to hi inclusive
// Range points for integer-typed parameters are rounded and adjacent
// duplicates collapsed, so e.g. 1:10:log20 yields each count once.
//
// Points run concurrently on a fixed-size thread pool (`--jobs N`), each
// with its output sink redirected to a private buffer (see
// ScenarioOptions::set_output); the aggregator then emits rows in
// deterministic grid order — axes vary with the last `--sweep` fastest —
// regardless of completion order, so `--jobs 1` and `--jobs N` produce
// byte-identical output.  Replicated sweeps stream: each run's output is
// folded into its grid point's statistics accumulator as soon as every
// earlier task (in task order) has completed, and the raw capture is
// released — the accumulators see rows in the same order a serial sweep
// would feed them, while peak memory holds the in-flight window instead of
// all grid x N outputs.  Figure-header/CHECK/NOTE commentary from the
// points is dropped from the aggregate; per-point CSV headers must agree.
//
// `--replicate N` runs every grid point N times with per-replicate seeds
// derived from the base `--seed` (see derive_replicate_seed; unset base
// defaults to 0 so the replicate set is a pure function of the base) and
// collapses each point's rows — across replicates — into summary rows via
// the analysis/summary column-statistics engine: numeric columns expand to
// `<col>_mean`/`<col>_cov`/... for the `--stats` selection (default
// mean,cov), non-numeric columns act as group-by labels (one summary row
// per distinct label tuple, e.g. per flow; all-numeric traces collapse to
// one row per point), and a trailing `n_rep` column records the replicate
// count.  `--replicate 1` keeps today's raw-row aggregate byte-for-byte.
// `--progress` forces the throttled progress/ETA line that is otherwise
// only emitted when stderr is a TTY.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/summary.hpp"
#include "sim/scenario.hpp"

namespace tfmcc {

/// One swept parameter: the key plus the expanded value list, each value a
/// string exactly as it would appear in `--set key=value`.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses one `--sweep key=spec` argument into an expanded axis.  `spec`
/// is the scenario's declaration of the key when available — it selects
/// integer rounding for range points — and may be null (unknown keys are
/// reported later by per-point validation, not here).  Returns false after
/// a diagnostic on `err` for syntax errors: missing '=', empty lists,
/// malformed bounds, ranges with fewer than two points, or log ranges with
/// non-positive bounds.
bool parse_sweep_axis(std::string_view text, const ParamSpec* spec,
                      SweepAxis& axis, std::ostream& err);

/// Cartesian product of the axes in declaration order, the last axis
/// varying fastest.  One grid point is one value per axis.
std::vector<std::vector<std::string>> expand_grid(
    const std::vector<SweepAxis>& axes);

/// Label for per-point diagnostics: "n_receivers=2,trials=50".
std::string point_label(const std::vector<SweepAxis>& axes,
                        const std::vector<std::string>& point);

/// Scheduling/progress cost hint for one grid point: the product of its
/// axis values that parse as numbers greater than 1 (n_receivers=2000 →
/// 2000); non-numeric and small values contribute 1, so every hint is
/// >= 1.  Purely a heuristic — it reorders *scheduling* (longest expected
/// first, so uneven grids stop tail-stalling the pool) and weights the
/// progress/ETA line, while fold order stays task order, preserving the
/// byte-identity contract.
double sweep_point_cost(const std::vector<std::string>& point);

/// Weighted ETA: elapsed time extrapolated over remaining *work* (cost
/// hints), not remaining run count — an uneven grid that finished its
/// cheap half is not half done.  Returns 0 when no work has completed.
double weighted_eta_seconds(double elapsed_s, double weight_done,
                            double weight_total);

struct SweepOptions {
  std::vector<SweepAxis> axes;
  int jobs{1};
  /// Runs per grid point.  1 (the default) emits the points' raw rows;
  /// N > 1 emits one statistics row per point over the N replicates.
  int replicate{1};
  /// Statistics expanded per numeric column when replicate > 1; ignored
  /// (with a diagnostic at the CLI layer) for single-replicate sweeps.
  std::vector<summary::Stat> stats{summary::default_stats()};
  /// Force the progress/ETA line even when stderr is not a TTY.
  bool progress{false};
  /// `--shard i/n`: run only the grid points this shard owns (point index
  /// mod shard_count == shard_index) and write a partial-aggregate
  /// artifact instead of CSV; `tfmcc_sim merge` folds the n partials into
  /// the byte-identical unsharded aggregate.  shard_count 1 = unsharded.
  int shard_index{0};
  int shard_count{1};
  /// `--checkpoint <path>`: periodically persist the fold state (atomic
  /// temp-file + rename) so a killed sweep can continue with --resume.
  /// Written after every `checkpoint_every` folded tasks.
  std::string checkpoint_path;
  int checkpoint_every{8};
  /// `--resume <path>`: restore a checkpoint and re-run only the unfolded
  /// suffix.  The checkpoint's manifest must match this sweep exactly.
  std::string resume_path;
  /// `--max-point-failures K`: tolerate up to K failing *grid points*
  /// (a failed replicate fails its whole point) instead of poisoning the
  /// sweep on the first worker error.  Failed points are dropped from the
  /// aggregate, replayed in an end-of-run report, and the sweep still
  /// exits nonzero.  0 (the default) keeps fail-fast behaviour.
  int max_point_failures{0};
  /// Applied to every point (duration/seed/--set overrides); its output
  /// sink and output_path are ignored — the aggregate goes to `out`.
  ScenarioOptions base;
};

/// Expands the grid, validates every point against the scenario's declared
/// parameters, runs all points on `jobs` worker threads, and writes the
/// aggregated CSV — the swept keys prepended as columns, rows in grid
/// order — to `out`.  Returns 0 on success; nonzero after a diagnostic on
/// `err` when validation fails, a point exits nonzero (beyond
/// `max_point_failures`), the per-point traces cannot be merged (no CSV,
/// or mismatched headers), or the run was interrupted (see
/// request_sweep_interrupt).
int run_sweep(const Scenario& scenario, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err);

/// Asks the running sweep to stop: workers finish their in-flight run,
/// claim nothing further, and — when checkpointing — the sweep flushes a
/// final best-effort checkpoint before returning nonzero, so a `--resume`
/// continues exactly where the interrupt landed.  Async-signal-safe (sets
/// one atomic flag); `sweep_main` wires it to SIGTERM/SIGINT whenever
/// `--checkpoint` is active.
void request_sweep_interrupt();

/// CLI entry for `tfmcc_sim sweep <scenario> ...`: argv holds everything
/// after the `sweep` token.  Accepts `--sweep key=spec` (repeatable),
/// `--jobs N`, `--replicate N`, `--stats list`, `--progress`, sharding and
/// checkpoint flags (`--shard i/n`, `--checkpoint`, `--checkpoint-every`,
/// `--resume`), `--max-point-failures K`, and every single-run flag
/// (`--duration`, `--seed`, `--set`, `--output`).  Returns the process
/// exit code.
int sweep_main(int argc, char** argv, std::ostream& err);

}  // namespace tfmcc
