#include "sim/sweep_state.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace tfmcc {

namespace {

constexpr std::string_view kCheckpointMagic = "TFMCC-SWEEP-CKPT";
constexpr std::string_view kPartialMagic = "TFMCC-SWEEP-PART";
// Version 2 added the checkpoint progress header (heartbeat + folded/owned
// counts) the campaign supervisor polls for liveness.
constexpr int kFormatVersion = 2;

std::string stats_spelling(const std::vector<summary::Stat>& stats) {
  std::string s;
  for (summary::Stat st : stats) {
    if (!s.empty()) s += ',';
    s += summary::stat_name(st);
  }
  return s;
}

std::string join_cells(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line += ',';
    line += cells[i];
  }
  return line;
}

/// Hex bitmap, 4 tasks per character, bit t%4 of nibble t/4.
std::string encode_bitmap(const std::vector<char>& bits) {
  static const char hex[] = "0123456789abcdef";
  std::string out((bits.size() + 3) / 4, '0');
  for (std::size_t t = 0; t < bits.size(); ++t) {
    if (bits[t] != 0) {
      const std::size_t i = t / 4;
      const int nibble = (out[i] >= 'a' ? out[i] - 'a' + 10 : out[i] - '0') |
                         (1 << (t % 4));
      out[i] = hex[nibble];
    }
  }
  return out;
}

bool decode_bitmap(const std::string& text, std::size_t n,
                   std::vector<char>& bits) {
  if (text.size() != (n + 3) / 4) return false;
  bits.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    const char c = text[t / 4];
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else {
      return false;
    }
    bits[t] = static_cast<char>((nibble >> (t % 4)) & 1);
  }
  return true;
}

bool expect_token(std::istream& is, std::string_view want) {
  std::string tok;
  return (is >> tok) && tok == want;
}

/// Tasks the manifest's shard owns: round-robin point ownership times the
/// replicate count.
std::uint64_t owned_task_count(const SweepManifest& m) {
  const std::size_t n = m.n_points();
  const std::size_t c = static_cast<std::size_t>(m.shard_count);
  const std::size_t i = static_cast<std::size_t>(m.shard_index);
  const std::size_t owned_points = n > i ? (n - 1 - i) / c + 1 : 0;
  return static_cast<std::uint64_t>(owned_points) *
         static_cast<std::uint64_t>(m.replicate);
}

std::uint64_t count_set(const std::vector<char>& bits) {
  std::uint64_t n = 0;
  for (char b : bits) n += b != 0;
  return n;
}

}  // namespace

SweepManifest SweepManifest::from(const Scenario& scenario,
                                  const SweepOptions& sweep) {
  SweepManifest m;
  m.scenario = scenario.name;
  m.axes = sweep.axes;
  m.replicate = sweep.replicate;
  m.stats = sweep.stats;
  if (sweep.base.duration.has_value()) {
    m.duration_ns = sweep.base.duration->count_nanos();
  }
  m.seed = sweep.base.seed;
  for (const auto& [k, v] : sweep.base.params()) m.params.emplace_back(k, v);
  m.shard_index = sweep.shard_index;
  m.shard_count = sweep.shard_count;
  return m;
}

std::size_t SweepManifest::n_points() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

void SweepManifest::save(std::ostream& os) const {
  os << "manifest " << kFormatVersion << '\n';
  os << "scenario ";
  summary::write_str(os, scenario);
  os << "\nduration ";
  if (duration_ns.has_value()) {
    os << *duration_ns;
  } else {
    os << 'u';
  }
  os << "\nseed ";
  if (seed.has_value()) {
    os << *seed;
  } else {
    os << 'u';
  }
  os << "\nreplicate " << replicate << "\nstats ";
  summary::write_str(os, stats_spelling(stats));
  os << "\nshard " << shard_index << ' ' << shard_count;
  os << "\nparams " << params.size() << '\n';
  for (const auto& [k, v] : params) {
    summary::write_str(os, k);
    summary::write_str(os, v);
    os << '\n';
  }
  os << "axes " << axes.size() << '\n';
  for (const auto& axis : axes) {
    summary::write_str(os, axis.key);
    os << ' ' << axis.values.size() << ' ';
    for (const auto& v : axis.values) summary::write_str(os, v);
    os << '\n';
  }
}

bool SweepManifest::load(std::istream& is, SweepManifest& out,
                         std::string& err) {
  out = SweepManifest{};
  err = "truncated or malformed manifest";
  int version = 0;
  if (!expect_token(is, "manifest") || !(is >> version) ||
      version != kFormatVersion) {
    err = "unsupported manifest version";
    return false;
  }
  if (!expect_token(is, "scenario") || !summary::read_str(is, out.scenario)) {
    return false;
  }
  std::string tok;
  if (!expect_token(is, "duration") || !(is >> tok)) return false;
  if (tok != "u") {
    try {
      out.duration_ns = std::stoll(tok);
    } catch (...) {
      return false;
    }
  }
  if (!expect_token(is, "seed") || !(is >> tok)) return false;
  if (tok != "u") {
    try {
      out.seed = std::stoull(tok);
    } catch (...) {
      return false;
    }
  }
  if (!expect_token(is, "replicate") || !(is >> out.replicate) ||
      out.replicate < 1) {
    return false;
  }
  std::string stats_text;
  if (!expect_token(is, "stats") || !summary::read_str(is, stats_text)) {
    return false;
  }
  std::ostringstream sink;
  if (!summary::parse_stats(stats_text, out.stats, sink)) return false;
  if (!expect_token(is, "shard") || !(is >> out.shard_index) ||
      !(is >> out.shard_count) || out.shard_count < 1 ||
      out.shard_index < 0 || out.shard_index >= out.shard_count) {
    return false;
  }
  std::size_t n_params = 0;
  if (!expect_token(is, "params") || !(is >> n_params) ||
      n_params > (1u << 20)) {
    return false;
  }
  for (std::size_t i = 0; i < n_params; ++i) {
    std::string k, v;
    if (!summary::read_str(is, k) || !summary::read_str(is, v)) return false;
    out.params.emplace_back(std::move(k), std::move(v));
  }
  std::size_t n_axes = 0;
  if (!expect_token(is, "axes") || !(is >> n_axes) || n_axes > 1024) {
    return false;
  }
  for (std::size_t a = 0; a < n_axes; ++a) {
    SweepAxis axis;
    std::size_t n_values = 0;
    if (!summary::read_str(is, axis.key) || !(is >> n_values) ||
        n_values > 1'000'000) {
      return false;
    }
    axis.values.resize(n_values);
    for (auto& v : axis.values) {
      if (!summary::read_str(is, v)) return false;
    }
    out.axes.push_back(std::move(axis));
  }
  err.clear();
  return true;
}

bool SweepManifest::matches(const SweepManifest& other, bool ignore_shard_index,
                            std::string_view what, std::ostream& err) const {
  auto fail = [&](std::string_view field, const std::string& recorded,
                  const std::string& current) {
    err << "error: " << what << " does not match this sweep: " << field
        << " was " << recorded << " when it was written but is " << current
        << " now\n";
    return false;
  };
  if (scenario != other.scenario) {
    return fail("scenario", "'" + scenario + "'", "'" + other.scenario + "'");
  }
  if (axes.size() != other.axes.size()) {
    return fail("sweep grid", std::to_string(axes.size()) + " axes",
                std::to_string(other.axes.size()) + " axes");
  }
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (axes[a].key != other.axes[a].key) {
      return fail("sweep grid", "axis '" + axes[a].key + "'",
                  "axis '" + other.axes[a].key + "'");
    }
    if (axes[a].values != other.axes[a].values) {
      return fail("sweep grid",
                  "axis '" + axes[a].key + "' with " +
                      std::to_string(axes[a].values.size()) + " value(s)",
                  "an axis with " +
                      std::to_string(other.axes[a].values.size()) +
                      " different value(s)");
    }
  }
  if (replicate != other.replicate) {
    return fail("--replicate", std::to_string(replicate),
                std::to_string(other.replicate));
  }
  if (stats != other.stats) {
    return fail("--stats", stats_spelling(stats),
                stats_spelling(other.stats));
  }
  if (duration_ns != other.duration_ns) {
    auto spell = [](const std::optional<std::int64_t>& d) {
      return d.has_value() ? std::to_string(*d) + "ns" : std::string{"unset"};
    };
    return fail("--duration", spell(duration_ns), spell(other.duration_ns));
  }
  if (seed != other.seed) {
    auto spell = [](const std::optional<std::uint64_t>& s) {
      return s.has_value() ? std::to_string(*s) : std::string{"unset"};
    };
    return fail("--seed", spell(seed), spell(other.seed));
  }
  if (params != other.params) {
    return fail("--set overrides", std::to_string(params.size()) + " keys",
                std::to_string(other.params.size()) + " keys");
  }
  if (shard_count != other.shard_count) {
    return fail("shard count", std::to_string(shard_count),
                std::to_string(other.shard_count));
  }
  if (!ignore_shard_index && shard_index != other.shard_index) {
    return fail("shard index", std::to_string(shard_index),
                std::to_string(other.shard_index));
  }
  return true;
}

bool shard_owns_point(const SweepManifest& m, std::size_t point) {
  return point % static_cast<std::size_t>(m.shard_count) ==
         static_cast<std::size_t>(m.shard_index);
}

void SweepStateFile::save(std::ostream& os) const {
  os << (kind == Kind::kCheckpoint ? kCheckpointMagic : kPartialMagic) << ' '
     << kFormatVersion << '\n';
  if (kind == Kind::kCheckpoint) {
    // Line 2, before the manifest: the poll-cheap liveness header.
    os << "progress " << heartbeat << ' ' << count_set(folded) << ' '
       << owned_task_count(manifest) << '\n';
  }
  manifest.save(os);
  os << "header ";
  summary::write_str(os, header);
  os << '\n';
  if (kind == Kind::kCheckpoint) {
    os << "folded " << folded.size() << ' ' << encode_bitmap(folded) << '\n';
  }
  os << "points " << points.size() << '\n';
  for (const auto& [idx, state] : points) {
    os << "point " << idx << '\n';
    state.save(os);
  }
  os << "end\n";
}

bool SweepStateFile::load(std::istream& is, SweepStateFile& out,
                          std::string& err) {
  out = SweepStateFile{};
  err = "truncated or malformed sweep state";
  std::string magic;
  int version = 0;
  if (!(is >> magic) || !(is >> version)) return false;
  if (magic == kCheckpointMagic) {
    out.kind = Kind::kCheckpoint;
  } else if (magic == kPartialMagic) {
    out.kind = Kind::kPartial;
  } else {
    err = "not a sweep checkpoint or partial (bad magic)";
    return false;
  }
  if (version != kFormatVersion) {
    err = "unsupported sweep state version";
    return false;
  }
  std::uint64_t claimed_folded = 0;
  std::uint64_t claimed_owned = 0;
  if (out.kind == Kind::kCheckpoint) {
    if (!expect_token(is, "progress") || !(is >> out.heartbeat) ||
        !(is >> claimed_folded) || !(is >> claimed_owned)) {
      err = "truncated or malformed checkpoint progress header";
      return false;
    }
  }
  if (!SweepManifest::load(is, out.manifest, err)) return false;
  err = "truncated or malformed sweep state";
  if (!expect_token(is, "header") || !summary::read_str(is, out.header)) {
    return false;
  }
  const std::size_t n_tasks = out.manifest.n_tasks();
  if (out.kind == Kind::kCheckpoint) {
    std::size_t n = 0;
    std::string bitmap;
    if (!expect_token(is, "folded") || !(is >> n) || n != n_tasks ||
        !(is >> bitmap) || !decode_bitmap(bitmap, n, out.folded)) {
      return false;
    }
    // The progress header is derived state; a disagreement with the bitmap
    // or manifest marks a hand-edited or corrupt file.
    if (claimed_folded != count_set(out.folded) ||
        claimed_owned != owned_task_count(out.manifest)) {
      err = "checkpoint progress header disagrees with the folded bitmap";
      return false;
    }
    // The fold is strictly in task order over the shard's owned tasks, so
    // the bitmap must be a prefix of that sequence: a set bit after a
    // cleared owned bit (or any bit on an unowned task) marks corruption.
    bool gap = false;
    for (std::size_t t = 0; t < n_tasks; ++t) {
      const std::size_t point =
          t / static_cast<std::size_t>(out.manifest.replicate);
      if (!shard_owns_point(out.manifest, point)) {
        if (out.folded[t] != 0) {
          err = "checkpoint marks a task its shard does not own";
          return false;
        }
        continue;
      }
      if (out.folded[t] != 0 && gap) {
        err = "checkpoint bitmap is not a prefix of the fold order";
        return false;
      }
      if (out.folded[t] == 0) gap = true;
    }
  }
  std::size_t n_states = 0;
  if (!expect_token(is, "points") || !(is >> n_states) ||
      n_states > out.manifest.n_points()) {
    return false;
  }
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < n_states; ++i) {
    std::size_t idx = 0;
    if (!expect_token(is, "point") || !(is >> idx) ||
        idx >= out.manifest.n_points() ||
        !shard_owns_point(out.manifest, idx) || !seen.insert(idx).second) {
      return false;
    }
    summary::ColumnSummary state{{}};
    std::string state_err;
    if (!summary::ColumnSummary::load(is, state, state_err)) {
      err = state_err;
      return false;
    }
    out.points.emplace_back(idx, std::move(state));
  }
  if (!expect_token(is, "end")) return false;
  err.clear();
  return true;
}

namespace {

#if defined(__unix__) || defined(__APPLE__)
/// fsyncs one path (a file, or a directory so a just-renamed entry is
/// durable).  Returns false on open/fsync failure.
bool fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? O_RDONLY
#ifdef O_DIRECTORY
                                    | O_DIRECTORY
#endif
                              : O_WRONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

bool save_state_file_atomic(const SweepStateFile& state,
                            const std::string& path, std::ostream& err) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os{tmp, std::ios::binary | std::ios::trunc};
    if (!os) {
      err << "error: cannot open '" << tmp << "' for writing\n";
      return false;
    }
    state.save(os);
    os.flush();
    if (!os) {
      err << "error: failed writing '" << tmp << "'\n";
      return false;
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // Durability, not just atomicity: without the fsync a machine crash after
  // the rename could expose a zero-length or torn file under the final name
  // (the rename can reach disk before the data does); without the directory
  // fsync the rename itself may be lost, silently reviving a stale
  // checkpoint.  SIGKILL alone never needed this — power loss does.
  if (!fsync_path(tmp, /*directory=*/false)) {
    err << "error: cannot fsync '" << tmp << "'\n";
    return false;
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    err << "error: cannot rename '" << tmp << "' to '" << path << "'\n";
    return false;
  }
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string{"."} : path.substr(0, slash);
  if (!fsync_path(dir.empty() ? std::string{"/"} : dir, /*directory=*/true)) {
    err << "error: cannot fsync directory of '" << path << "'\n";
    return false;
  }
#endif
  return true;
}

bool read_checkpoint_progress(const std::string& path, CheckpointProgress& out,
                              std::string& err) {
  out = CheckpointProgress{};
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    err = "cannot open '" + path + "'";
    return false;
  }
  std::string magic;
  int version = 0;
  if (!(is >> magic) || magic != kCheckpointMagic) {
    err = "'" + path + "' is not a sweep checkpoint";
    return false;
  }
  if (!(is >> version) || version != kFormatVersion) {
    err = "'" + path + "' has an unsupported checkpoint version";
    return false;
  }
  if (!expect_token(is, "progress") || !(is >> out.heartbeat) ||
      !(is >> out.folded_tasks) || !(is >> out.owned_tasks)) {
    err = "'" + path + "' has a malformed progress header";
    return false;
  }
  err.clear();
  return true;
}

bool load_state_file(const std::string& path, SweepStateFile& out,
                     std::ostream& err) {
  std::ifstream is{path, std::ios::binary};
  if (!is) {
    err << "error: cannot open '" << path << "'\n";
    return false;
  }
  std::string why;
  if (!SweepStateFile::load(is, out, why)) {
    err << "error: cannot load '" << path << "': " << why << '\n';
    return false;
  }
  return true;
}

int emit_sweep_aggregate(const SweepManifest& manifest,
                         const std::vector<std::vector<std::string>>& grid,
                         const std::vector<summary::ColumnSummary>& per_point,
                         const std::string& header, std::ostream& out,
                         std::ostream& err,
                         const std::vector<char>* skip_points) {
  if (header.empty()) {
    err << "error: no CSV trace found in any sweep point's output\n";
    return 1;
  }
  const std::vector<SweepAxis>& axes = manifest.axes;
  auto skipped = [&](std::size_t i) {
    return skip_points != nullptr && (*skip_points)[i] != 0;
  };

  if (manifest.replicate == 1) {
    // Raw aggregate: every point's rows verbatim, in grid order, with the
    // swept values prepended.
    for (const auto& axis : axes) out << axis.key << ',';
    out << header << '\n';
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (skipped(i)) continue;
      for (const auto& row : per_point[i].rows()) {
        for (const auto& value : grid[i]) out << value << ',';
        out << join_cells(row) << '\n';
      }
    }
    return 0;
  }

  // Replicated aggregate: one statistics row per point and label group.
  // The reference header comes from the first point that produced rows;
  // rowless (and skipped) points emit nothing and are exempt from the
  // comparison.
  const summary::ColumnSummary* reference = nullptr;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!skipped(i) && per_point[i].row_count() > 0) {
      reference = &per_point[i];
      break;
    }
  }
  if (reference == nullptr) reference = &per_point.front();
  const std::vector<std::string> expanded =
      reference->header(manifest.stats);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!skipped(i) && per_point[i].row_count() > 0 &&
        per_point[i].numeric_mask() != reference->numeric_mask()) {
      err << "error: sweep point " << point_label(axes, grid[i])
          << " has a different numeric/label column mix than earlier "
             "points; cannot aggregate\n";
      return 1;
    }
  }

  for (const auto& axis : axes) out << axis.key << ',';
  for (const auto& name : expanded) out << name << ',';
  out << "n_rep\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (skipped(i)) continue;
    for (const auto& srow : per_point[i].summarize(manifest.stats)) {
      for (const auto& value : grid[i]) out << value << ',';
      for (const auto& cell : srow) out << cell << ',';
      out << manifest.replicate << '\n';
    }
  }
  return 0;
}

int merge_main(int argc, char** argv, std::ostream& err) {
  std::optional<std::string> output_path;
  std::vector<std::string> part_paths;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--output") {
      if (i + 1 >= argc) {
        err << "error: --output expects a path\n";
        return 2;
      }
      output_path = argv[i + 1];
      ++i;
    } else if (arg.substr(0, 2) == "--") {
      err << "error: unknown merge flag '" << arg << "'\n";
      return 2;
    } else {
      part_paths.emplace_back(arg);
    }
  }
  if (part_paths.empty()) {
    err << "usage: tfmcc_sim merge [--output <path>] <partial>...\n"
           "Folds the partial-aggregate artifacts written by "
           "`sweep --shard i/n` — all n of them, each exactly once — into "
           "the aggregate CSV the unsharded sweep would have written.\n";
    return 2;
  }

  std::vector<SweepStateFile> parts(part_paths.size());
  for (std::size_t i = 0; i < part_paths.size(); ++i) {
    if (!load_state_file(part_paths[i], parts[i], err)) return 2;
    if (parts[i].kind != SweepStateFile::Kind::kPartial) {
      err << "error: '" << part_paths[i]
          << "' is a sweep checkpoint, not a shard partial (resume it with "
             "`sweep ... --resume` instead)\n";
      return 2;
    }
  }
  const SweepManifest& ref = parts.front().manifest;
  if (parts.size() != static_cast<std::size_t>(ref.shard_count)) {
    err << "error: sweep was sharded " << ref.shard_count << " ways but "
        << parts.size() << " partial(s) were given\n";
    return 2;
  }
  std::set<int> shards_seen;
  std::string header;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].manifest.matches(ref, /*ignore_shard_index=*/true,
                                   "partial '" + part_paths[i] + "'", err)) {
      return 2;
    }
    if (!shards_seen.insert(parts[i].manifest.shard_index).second) {
      err << "error: shard " << parts[i].manifest.shard_index << "/"
          << ref.shard_count << " appears more than once\n";
      return 2;
    }
    if (!parts[i].header.empty()) {
      if (header.empty()) {
        header = parts[i].header;
      } else if (parts[i].header != header) {
        err << "error: partial '" << part_paths[i]
            << "' recorded CSV header '" << parts[i].header
            << "' but earlier partials recorded '" << header << "'\n";
        return 2;
      }
    }
  }

  const auto grid = expand_grid(ref.axes);
  const std::vector<std::string> columns = summary::split_csv(header);
  std::vector<summary::ColumnSummary> per_point(
      grid.size(), summary::ColumnSummary{columns});
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (auto& [idx, state] : parts[i].points) {
      if (idx >= grid.size()) {
        err << "error: partial '" << part_paths[i]
            << "' has state for point " << idx << " outside the grid\n";
        return 2;
      }
      if (state.columns() != columns) {
        err << "error: partial '" << part_paths[i]
            << "' point state disagrees with the recorded CSV header\n";
        return 2;
      }
      // Each point has exactly one owner (validated at load), so this move
      // installs the accumulator bitwise as the owning shard folded it.
      per_point[idx] = std::move(state);
    }
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (output_path.has_value()) {
    if (!open_output_file(*output_path, file, err)) return 2;
    out = &file;
  }
  SweepManifest unsharded = ref;
  unsharded.shard_index = 0;
  unsharded.shard_count = 1;
  const int rc = emit_sweep_aggregate(unsharded, grid, per_point, header,
                                      *out, err);
  if (file.is_open() && !finish_output_file(*output_path, file, err)) {
    return 2;
  }
  return rc;
}

}  // namespace tfmcc
