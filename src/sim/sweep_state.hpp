#pragma once

// Campaign-scale sweep plumbing: sharding, checkpoint/resume, and the
// partial-aggregate artifacts `tfmcc_sim merge` folds back together.
//
// The determinism contract extends the existing `--jobs N == --jobs 1`
// byte-identity guarantee in two directions:
//
//   * Sharding.  `--shard i/n` gives shard i every grid point p with
//     p % n == i (all of a point's replicates stay together).  Each
//     point's accumulator sees exactly the rows, in exactly the order, the
//     unsharded sweep would feed it — which other points run alongside it
//     changes nothing — so a shard's partial state for its points is
//     bitwise-identical to the unsharded sweep's, and `merge` only ever
//     places each point's state from its unique owner.  Merged output is
//     therefore byte-identical (`cmp`) to the unsharded aggregate, and
//     merging partials is exactly associative.
//
//   * Resume.  Tasks fold into the accumulators strictly in task order, so
//     a checkpoint is always a *prefix* of the fold sequence: the folded
//     bitmap plus each touched point's serialized accumulator.  A resumed
//     sweep re-runs only the unfolded suffix and continues folding in the
//     same order, making its output byte-identical to an uninterrupted run.
//
// Both file kinds open with a manifest — scenario, axes, replicate count,
// stats, base overrides, shard — and a resume or merge that does not match
// the invoking sweep is refused with a diagnostic rather than silently
// blended.  Row data inside the files uses the length-prefixed accumulator
// serialization (analysis/summary), not CSV: nothing is re-parsed on load.
// Checkpoints additionally open with a two-line progress header (heartbeat
// save counter, folded/owned task counts) that a campaign supervisor can
// poll for liveness without loading the accumulators; see
// read_checkpoint_progress and sim/campaign.hpp.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/summary.hpp"
#include "sim/sweep.hpp"

namespace tfmcc {

/// Everything that identifies one sweep: the fields two invocations must
/// agree on for their accumulator states to be interchangeable.
struct SweepManifest {
  std::string scenario;
  std::vector<SweepAxis> axes;
  int replicate{1};
  std::vector<summary::Stat> stats;
  std::optional<std::int64_t> duration_ns;
  std::optional<std::uint64_t> seed;
  /// Base `--set` overrides, in the options' (sorted-map) order.
  std::vector<std::pair<std::string, std::string>> params;
  int shard_index{0};
  int shard_count{1};

  static SweepManifest from(const Scenario& scenario,
                            const SweepOptions& sweep);

  std::size_t n_points() const;
  std::size_t n_tasks() const {
    return n_points() * static_cast<std::size_t>(replicate);
  }

  void save(std::ostream& os) const;
  static bool load(std::istream& is, SweepManifest& out, std::string& err);

  /// True when `other` describes the same sweep.  Otherwise writes a
  /// diagnostic naming the first differing field, prefixed with `what`
  /// ("checkpoint" / "partial").  `ignore_shard_index` is set when merging
  /// partials, which differ in shard index by construction.
  bool matches(const SweepManifest& other, bool ignore_shard_index,
               std::string_view what, std::ostream& err) const;
};

/// Shard ownership rule: grid point p belongs to shard p % shard_count.
/// Round-robin keeps monotone-cost ladders (2..2000 receivers) balanced
/// across shards instead of handing one shard the whole expensive tail.
bool shard_owns_point(const SweepManifest& m, std::size_t point);

/// On-disk state shared by checkpoints and shard partials: the manifest,
/// the CSV header once one was seen, per-point accumulator states, and —
/// for checkpoints — the completed-task bitmap.
struct SweepStateFile {
  enum class Kind { kCheckpoint, kPartial };
  Kind kind{Kind::kCheckpoint};
  SweepManifest manifest;
  std::string header;
  /// Checkpoints only: monotone save counter.  Incremented by the sweep on
  /// every checkpoint write (and restored across --resume), it is the
  /// heartbeat a campaign supervisor polls — see read_checkpoint_progress.
  std::uint64_t heartbeat{0};
  /// Checkpoints only: folded[t] != 0 when global task t's output has been
  /// folded.  Always a prefix of the shard's task order (ascending global
  /// index over owned tasks); load() enforces that invariant.
  std::vector<char> folded;
  /// (global point index, accumulator) for every point with state.
  std::vector<std::pair<std::size_t, summary::ColumnSummary>> points;

  void save(std::ostream& os) const;
  static bool load(std::istream& is, SweepStateFile& out, std::string& err);
};

/// The cheap-to-poll progress header a checkpoint file opens with: the
/// heartbeat save counter, the number of folded tasks, and the number of
/// tasks the writing shard owns in total.  All three are monotone across a
/// shard's lifetime (including resumes), so a supervisor can detect a
/// stalled or dead worker by polling these two lines without parsing the
/// manifest or deserializing a single accumulator.
struct CheckpointProgress {
  std::uint64_t heartbeat{0};
  std::uint64_t folded_tasks{0};
  std::uint64_t owned_tasks{0};
};

/// Reads just the magic line and progress header of the checkpoint at
/// `path`.  Returns false (with a diagnostic in `err`) when the file is
/// missing, is not a checkpoint, or has a malformed header — callers poll
/// this in a loop, so the common "no checkpoint yet" case must be cheap.
bool read_checkpoint_progress(const std::string& path, CheckpointProgress& out,
                              std::string& err);

/// Writes `state` to `path` via a temp file + rename, so a kill mid-write
/// can never leave a truncated checkpoint behind.  On POSIX the temp file
/// is fsync'd before the rename and the directory entry fsync'd after it,
/// so even a machine-level crash (power loss, not just SIGKILL) cannot
/// surface a torn file — or a valid-looking stale one — under the final
/// name.  Returns false after a diagnostic on `err`.
bool save_state_file_atomic(const SweepStateFile& state,
                            const std::string& path, std::ostream& err);

/// Loads and validates `path`.  Returns false after a diagnostic on `err`
/// for unreadable, corrupt, or truncated files.
bool load_state_file(const std::string& path, SweepStateFile& out,
                     std::ostream& err);

/// Writes the final aggregate CSV from fully-folded per-point state: raw
/// rows in grid order when replicate == 1, summary-statistics rows
/// otherwise.  Both the unsharded sweep and `merge` end in this one code
/// path — which is what makes shard+merge byte-identical to the unsharded
/// run.  `per_point` is parallel to the expanded grid; `header` is the
/// shared CSV header ("" means no point produced CSV, an error).
/// `skip_points`, when non-null, is parallel to the grid and suppresses the
/// marked points entirely — the degraded `--max-point-failures` path emits
/// the surviving grid this way.
int emit_sweep_aggregate(const SweepManifest& manifest,
                         const std::vector<std::vector<std::string>>& grid,
                         const std::vector<summary::ColumnSummary>& per_point,
                         const std::string& header, std::ostream& out,
                         std::ostream& err,
                         const std::vector<char>* skip_points = nullptr);

/// CLI entry for `tfmcc_sim merge [--output <path>] <partial>...`: loads
/// the shard partials, refuses mismatched or incomplete shard sets, and
/// emits the combined aggregate CSV.  Returns the process exit code.
int merge_main(int argc, char** argv, std::ostream& err);

}  // namespace tfmcc
