#include "sim/trace.hpp"

#include <cstring>

namespace tfmcc {

namespace {

// Binary layout: magic, then u32 row count (header row included), then per
// row a u32 cell count followed by u32 length + bytes per cell.  A leading
// 0 row count encodes the headerless (empty) trace.
constexpr char kMagic[4] = {'T', 'F', 'B', 'T'};
constexpr std::uint8_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.append(b, 4);
}

bool get_u32(std::string_view blob, std::size_t& at, std::uint32_t& v) {
  if (blob.size() - at < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(blob.data() + at);
  v = static_cast<std::uint32_t>(p[0]) |
      static_cast<std::uint32_t>(p[1]) << 8 |
      static_cast<std::uint32_t>(p[2]) << 16 |
      static_cast<std::uint32_t>(p[3]) << 24;
  at += 4;
  return true;
}

}  // namespace

bool RunTrace::is_commentary(std::string_view line) {
  return line.empty() || line.front() == '#' ||
         line.substr(0, 6) == "CHECK " || line.substr(0, 5) == "NOTE:";
}

void RunTrace::push_line(std::string_view line) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    const std::string_view cell = line.substr(start, comma - start);
    buf_.append(cell);
    cell_end_.push_back(static_cast<std::uint32_t>(buf_.size()));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  row_end_.push_back(static_cast<std::uint32_t>(cell_end_.size()));
}

RunTrace RunTrace::parse_text(std::string_view text) {
  RunTrace t;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line =
        text.substr(start, nl == std::string_view::npos
                               ? std::string_view::npos
                               : nl - start);
    if (nl == std::string_view::npos && line.empty()) break;
    if (!is_commentary(line)) {
      t.push_line(line);
      t.has_header_ = true;
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return t;
}

std::size_t RunTrace::row_size(std::size_t r) const {
  const std::size_t raw = r + 1;  // skip the header row
  const std::uint32_t begin = raw == 0 ? 0 : row_end_[raw - 1];
  return row_end_[raw] - begin;
}

std::string_view RunTrace::cell(std::size_t r, std::size_t c) const {
  const std::size_t raw = r + 1;
  const std::uint32_t row_begin = row_end_[raw - 1];
  const std::uint32_t i = row_begin + static_cast<std::uint32_t>(c);
  const std::uint32_t begin = i == 0 ? 0 : cell_end_[i - 1];
  return std::string_view{buf_}.substr(begin, cell_end_[i] - begin);
}

std::string RunTrace::join_row(std::size_t raw_row) const {
  if (!has_header_) return {};
  const std::uint32_t begin = raw_row == 0 ? 0 : row_end_[raw_row - 1];
  const std::uint32_t end = row_end_[raw_row];
  std::string line;
  for (std::uint32_t i = begin; i < end; ++i) {
    if (i != begin) line += ',';
    const std::uint32_t cb = i == 0 ? 0 : cell_end_[i - 1];
    line.append(buf_, cb, cell_end_[i] - cb);
  }
  return line;
}

std::vector<std::string> RunTrace::row_cells(std::size_t r) const {
  std::vector<std::string> cells;
  cells.reserve(row_size(r));
  for (std::size_t c = 0; c < row_size(r); ++c) {
    cells.emplace_back(cell(r, c));
  }
  return cells;
}

void RunTrace::encode(std::string& out) const {
  out.append(kMagic, sizeof kMagic);
  out.push_back(static_cast<char>(kVersion));
  put_u32(out, static_cast<std::uint32_t>(row_end_.size()));
  std::uint32_t cell_i = 0;
  for (std::size_t raw = 0; raw < row_end_.size(); ++raw) {
    const std::uint32_t begin = raw == 0 ? 0 : row_end_[raw - 1];
    put_u32(out, row_end_[raw] - begin);
    for (; cell_i < row_end_[raw]; ++cell_i) {
      const std::uint32_t cb = cell_i == 0 ? 0 : cell_end_[cell_i - 1];
      const std::uint32_t len = cell_end_[cell_i] - cb;
      put_u32(out, len);
      out.append(buf_, cb, len);
    }
  }
}

bool RunTrace::decode(std::string_view blob, RunTrace& out,
                      std::string& err) {
  out = RunTrace{};
  std::size_t at = 0;
  if (blob.size() < sizeof kMagic + 1 ||
      std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    err = "not a binary trace (bad magic)";
    return false;
  }
  at = sizeof kMagic;
  if (static_cast<std::uint8_t>(blob[at]) != kVersion) {
    err = "unsupported binary trace version";
    return false;
  }
  ++at;
  std::uint32_t n_rows = 0;
  if (!get_u32(blob, at, n_rows)) {
    err = "truncated binary trace (row count)";
    return false;
  }
  for (std::uint32_t raw = 0; raw < n_rows; ++raw) {
    std::uint32_t n_cells = 0;
    if (!get_u32(blob, at, n_cells) || n_cells == 0) {
      err = "truncated binary trace (cell count)";
      return false;
    }
    for (std::uint32_t c = 0; c < n_cells; ++c) {
      std::uint32_t len = 0;
      if (!get_u32(blob, at, len) || blob.size() - at < len) {
        err = "truncated binary trace (cell data)";
        return false;
      }
      out.buf_.append(blob.substr(at, len));
      at += len;
      out.cell_end_.push_back(static_cast<std::uint32_t>(out.buf_.size()));
    }
    out.row_end_.push_back(static_cast<std::uint32_t>(out.cell_end_.size()));
  }
  if (at != blob.size()) {
    err = "trailing bytes after binary trace";
    return false;
  }
  out.has_header_ = !out.row_end_.empty();
  return true;
}

}  // namespace tfmcc
