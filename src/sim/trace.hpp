#pragma once

// Compact per-run trace: the internal currency between a scenario run and
// the sweep aggregator.
//
// A scenario emits text — figure-header/CHECK/NOTE commentary interleaved
// with one CSV table.  RunTrace::parse_text() strips the commentary and
// splits the header and every data row into cells exactly once, in the
// worker thread that ran the scenario; the aggregator then reads rows and
// cells as string_views without ever re-scanning for newlines or commas.
//
// The same structure has a length-prefixed binary encoding (u32 cell
// lengths, no separators, no escaping rules) used wherever a trace crosses
// a file boundary — shard partial artifacts and sweep checkpoints — so
// resuming or merging never pays CSV re-parsing.  CSV stays the *external*
// format: the final aggregate a sweep writes is unchanged.
//
// Cells never contain ',' or '\n' (they are produced by splitting on those
// characters), so joining a row's cells with ',' reproduces the original
// line byte-for-byte; round-tripping through the binary encoding is exact.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tfmcc {

class RunTrace {
 public:
  /// True for the text a scenario interleaves with its CSV trace: the
  /// figure header, CHECK/NOTE lines, and blank lines.  Everything else is
  /// CSV (header first, then rows).
  static bool is_commentary(std::string_view line);

  /// Parses a scenario's captured text output: commentary lines are
  /// dropped, the first remaining line becomes the header, the rest the
  /// data rows.  An output with no CSV at all yields an empty trace
  /// (has_header() false).  Never fails: any text is some trace.
  static RunTrace parse_text(std::string_view text);

  bool has_header() const { return has_header_; }
  /// The header line, cells joined with ','; empty when has_header() is
  /// false.
  std::string header_line() const { return join_row(0); }
  std::size_t header_cells() const {
    return has_header_ ? row_size(0) : 0;
  }

  /// Data rows (the header is not a row).
  std::size_t n_rows() const {
    return has_header_ ? row_end_.size() - 1 : 0;
  }
  /// Cell count of data row `r`.
  std::size_t row_size(std::size_t r) const;
  /// Cell `c` of data row `r` as a view into the trace's buffer.
  std::string_view cell(std::size_t r, std::size_t c) const;
  /// Data row `r` re-joined with ',' — byte-identical to the line the
  /// scenario emitted.
  std::string row_line(std::size_t r) const {
    return join_row(r + (has_header_ ? 1 : 0));
  }
  /// Data row `r` as owned cells, the shape ColumnSummary::add_row takes.
  std::vector<std::string> row_cells(std::size_t r) const;

  /// Appends the length-prefixed binary encoding to `out`.
  void encode(std::string& out) const;
  /// Decodes a blob produced by encode().  Returns false (with a
  /// diagnostic in `err`) on a truncated or malformed blob.
  static bool decode(std::string_view blob, RunTrace& out, std::string& err);

  bool operator==(const RunTrace& o) const = default;

 private:
  // Row 0 is the header (when present); data rows follow.  All cells are
  // concatenated into buf_; cell_end_[i] is the exclusive end offset of
  // cell i, row_end_[r] the exclusive end index (into cell_end_) of row r.
  std::string join_row(std::size_t raw_row) const;
  void push_line(std::string_view line);

  bool has_header_{false};
  std::string buf_;
  std::vector<std::uint32_t> cell_end_;
  std::vector<std::uint32_t> row_end_;
};

}  // namespace tfmcc
