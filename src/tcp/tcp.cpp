#include "tcp/tcp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace tfmcc {

TcpSender::TcpSender(Simulator& sim, Topology& topo, NodeId self, PortId port,
                     NodeId peer, PortId peer_port, FlowId flow, TcpConfig cfg)
    : sim_{sim},
      topo_{topo},
      self_{self},
      port_{port},
      peer_{peer},
      peer_port_{peer_port},
      flow_{flow},
      cfg_{cfg},
      cwnd_{cfg.initial_cwnd},
      ssthresh_{cfg.initial_ssthresh} {
  topo_.node(self_).attach_agent(port_, this);
}

void TcpSender::start(SimTime at) {
  sim_.at(at, [this] {
    running_ = true;
    try_send();
    restart_rto_timer();
  });
}

void TcpSender::handle_packet(const Packet& p) {
  const TcpHeader* h = p.tcp();
  if (h == nullptr || !h->is_ack || h->flow != flow_) return;
  on_ack(*h, sim_.now());
}

void TcpSender::try_send() {
  if (!running_) return;
  // Effective window: cwnd, inflated by the dup-ACK count during fast
  // recovery (the classic Reno window inflation).
  const double wnd = std::min(cwnd_, cfg_.max_cwnd);
  while (static_cast<double>(next_seq_ - snd_una_) < std::floor(wnd)) {
    transmit(next_seq_, false);
    ++next_seq_;
  }
}

void TcpSender::transmit(std::int64_t seqno, bool retransmit) {
  auto pkt = sim_.make_packet();
  pkt->src = self_;
  pkt->dst = peer_;
  pkt->sport = port_;
  pkt->dport = peer_port_;
  pkt->size_bytes = cfg_.packet_bytes;
  TcpHeader h;
  h.flow = flow_;
  h.seqno = seqno;
  h.ts = sim_.now();
  pkt->header = h;
  topo_.node(self_).send(std::move(pkt));
  ++packets_sent_;
  if (retransmit) ++retransmits_;
}

void TcpSender::on_ack(const TcpHeader& h, SimTime now) {
  if (h.ts_echo > SimTime::zero()) update_rtt(now - h.ts_echo);

  if (h.ackno > snd_una_) {
    // New data acknowledged.
    rto_backoff_ = 0;
    if (in_recovery_) {
      if (h.ackno > recover_) {
        // Full recovery: deflate to ssthresh and resume normal behaviour.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dup_acks_ = 0;
      } else if (cfg_.newreno) {
        // NewReno partial ACK: the next hole is also lost; retransmit it
        // and stay in recovery, deflating by the amount acked.
        cwnd_ = std::max(1.0, cwnd_ - static_cast<double>(h.ackno - snd_una_) + 1.0);
        snd_una_ = h.ackno;
        transmit(snd_una_, true);
        restart_rto_timer();
        try_send();
        return;
      } else {
        // Classic Reno: any new ACK terminates fast recovery.  Remaining
        // holes need another triple-dupACK or, at small windows, an RTO.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        dup_acks_ = 0;
      }
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;  // slow start
      } else {
        cwnd_ += 1.0 / cwnd_;  // congestion avoidance
      }
    }
    snd_una_ = h.ackno;
    restart_rto_timer();
    try_send();
    return;
  }

  // Duplicate ACK.
  if (h.ackno == snd_una_ && next_seq_ > snd_una_) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      enter_fast_recovery();
    } else if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation per extra dup ACK
      try_send();
    }
  }
}

void TcpSender::enter_fast_recovery() {
  ssthresh_ = std::max(flight_size() / 2.0, 2.0);
  cwnd_ = ssthresh_ + 3.0;
  in_recovery_ = true;
  recover_ = next_seq_ - 1;
  transmit(snd_una_, true);
  restart_rto_timer();
}

void TcpSender::on_rto() {
  if (!running_) return;
  ++timeouts_;
  ssthresh_ = std::max(flight_size() / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  rto_backoff_ = std::min(rto_backoff_ + 1, 10);
  transmit(snd_una_, true);
  restart_rto_timer();
}

SimTime TcpSender::current_rto() const {
  SimTime rto = have_rtt_ ? srtt_ + 4.0 * rttvar_ : SimTime::seconds(3.0);
  rto = std::max(rto, cfg_.min_rto);
  for (int i = 0; i < rto_backoff_; ++i) rto = rto * 2.0;
  return std::min(rto, cfg_.max_rto);
}

void TcpSender::restart_rto_timer() {
  sim_.cancel(rto_timer_);
  if (next_seq_ == snd_una_ && !running_) return;
  rto_timer_ = sim_.in(current_rto(), [this] { on_rto(); });
}

void TcpSender::update_rtt(SimTime sample) {
  if (sample <= SimTime::zero()) return;
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    have_rtt_ = true;
    return;
  }
  const SimTime err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = rttvar_ * 0.75 + err * 0.25;
  srtt_ = srtt_ * 0.875 + sample * 0.125;
}

TcpSink::TcpSink(Simulator& sim, Topology& topo, NodeId self, PortId port,
                 std::int32_t ack_bytes)
    : sim_{sim}, topo_{topo}, self_{self}, port_{port}, ack_bytes_{ack_bytes} {
  topo_.node(self_).attach_agent(port_, this);
}

void TcpSink::handle_packet(const Packet& p) {
  const TcpHeader* h = p.tcp();
  if (h == nullptr || h->is_ack) return;

  if (h->seqno == rcv_next_) {
    ++rcv_next_;
    ++delivered_;
    delivered_bytes_ += p.size_bytes;
    if (observer_) observer_(sim_.now(), p.size_bytes);
    // Drain contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
      ++delivered_;
      delivered_bytes_ += p.size_bytes;
      if (observer_) observer_(sim_.now(), p.size_bytes);
    }
  } else if (h->seqno > rcv_next_) {
    out_of_order_.insert(h->seqno);
  }
  // else: old duplicate; still ACK (cumulative).

  auto ack = sim_.make_packet();
  ack->src = self_;
  ack->dst = p.src;
  ack->sport = port_;
  ack->dport = p.sport;
  ack->size_bytes = ack_bytes_;
  TcpHeader ah;
  ah.flow = h->flow;
  ah.is_ack = true;
  ah.ackno = rcv_next_;
  ah.ts_echo = h->ts;
  ack->header = ah;
  topo_.node(self_).send(std::move(ack));
}

TcpFlow::TcpFlow(Simulator& sim, Topology& topo, NodeId src, NodeId dst,
                 FlowId id, SimTime bin_width, TcpConfig cfg)
    : goodput{bin_width} {
  sink = std::make_unique<TcpSink>(sim, topo, dst, sink_port(id),
                                   cfg.ack_bytes);
  sender = std::make_unique<TcpSender>(sim, topo, src, sender_port(id), dst,
                                       sink_port(id), id, cfg);
  sink->set_delivery_observer(
      [this](SimTime t, std::int32_t bytes) { goodput.add(t, bytes); });
}

}  // namespace tfmcc
