#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace tfmcc {

/// Configuration for a TCP Reno bulk-transfer flow.
struct TcpConfig {
  std::int32_t packet_bytes{kDataPacketBytes};
  std::int32_t ack_bytes{kAckPacketBytes};
  double initial_cwnd{2.0};
  double initial_ssthresh{64.0};
  double max_cwnd{1e6};
  SimTime min_rto{SimTime::millis(200)};
  SimTime max_rto{SimTime::seconds(60.0)};
  /// NewReno partial-ACK recovery.  false = classic Reno, the paper-era
  /// ns-2 default: a partial ACK ends fast recovery without retransmitting
  /// the next hole, so multi-packet loss bursts typically cost a timeout —
  /// the very sensitivity to nearly-full drop-tail queues the paper
  /// describes in §4.1.  The fairness figures use classic Reno; NewReno is
  /// available for robustness-oriented experiments.
  bool newreno{false};
};

/// TCP Reno bulk sender (with NewReno partial-ACK recovery so that
/// multi-packet loss bursts do not degenerate into timeout chains).
///
/// This is the competing-traffic baseline of every fairness figure: an
/// ACK-clocked window protocol with slow start, AIMD congestion avoidance,
/// fast retransmit/recovery and an exponentially backed-off RTO.  It sends
/// back-to-back whenever the window opens — the burstiness the paper calls
/// out when explaining TFMCC/TCP differences at drop-tail queues (§4.1).
class TcpSender final : public Agent {
 public:
  TcpSender(Simulator& sim, Topology& topo, NodeId self, PortId port,
            NodeId peer, PortId peer_port, FlowId flow,
            TcpConfig cfg = {});

  /// Begin transmitting at `at`.
  void start(SimTime at);
  void stop() { running_ = false; }

  void handle_packet(const Packet& p) override;

  // --- diagnostics ---------------------------------------------------------
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  SimTime srtt() const { return srtt_; }
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t retransmits() const { return retransmits_; }
  std::int64_t timeouts() const { return timeouts_; }
  FlowId flow() const { return flow_; }

 private:
  void try_send();
  void transmit(std::int64_t seqno, bool retransmit);
  void on_ack(const TcpHeader& h, SimTime now);
  void enter_fast_recovery();
  void on_rto();
  void restart_rto_timer();
  void update_rtt(SimTime sample);
  SimTime current_rto() const;
  double flight_size() const {
    return static_cast<double>(next_seq_ - snd_una_);
  }

  Simulator& sim_;
  Topology& topo_;
  NodeId self_;
  PortId port_;
  NodeId peer_;
  PortId peer_port_;
  FlowId flow_;
  TcpConfig cfg_;

  bool running_{false};
  std::int64_t next_seq_{0};   // next new sequence number to send
  std::int64_t snd_una_{0};    // lowest unacknowledged seqno
  double cwnd_;
  double ssthresh_;
  int dup_acks_{0};
  bool in_recovery_{false};
  std::int64_t recover_{0};    // highest seqno outstanding when loss detected

  SimTime srtt_{};
  SimTime rttvar_{};
  bool have_rtt_{false};
  int rto_backoff_{0};
  EventId rto_timer_{};

  std::int64_t packets_sent_{0};
  std::int64_t retransmits_{0};
  std::int64_t timeouts_{0};
};

/// TCP receiver: cumulative ACKs, out-of-order buffering, timestamp echo.
class TcpSink final : public Agent {
 public:
  TcpSink(Simulator& sim, Topology& topo, NodeId self, PortId port,
          std::int32_t ack_bytes = kAckPacketBytes);

  void handle_packet(const Packet& p) override;

  /// Invoked once per in-order delivered data packet: (time, bytes).
  /// Used by the benches to bin goodput.
  void set_delivery_observer(std::function<void(SimTime, std::int32_t)> f) {
    observer_ = std::move(f);
  }

  std::int64_t delivered_packets() const { return delivered_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }

 private:
  Simulator& sim_;
  Topology& topo_;
  NodeId self_;
  PortId port_;
  std::int32_t ack_bytes_;
  std::int64_t rcv_next_{0};
  std::set<std::int64_t> out_of_order_;
  std::int64_t delivered_{0};
  std::int64_t delivered_bytes_{0};
  std::function<void(SimTime, std::int32_t)> observer_;
};

/// Convenience bundle: a sender/sink pair wired across the topology with a
/// goodput binner attached — what the figure harnesses instantiate per flow.
struct TcpFlow {
  TcpFlow(Simulator& sim, Topology& topo, NodeId src, NodeId dst, FlowId id,
          SimTime bin_width = SimTime::seconds(1.0), TcpConfig cfg = {});

  void start(SimTime at) { sender->start(at); }
  void stop() { sender->stop(); }
  double mean_kbps(SimTime from, SimTime to) const {
    return goodput.mean_kbps(from, to);
  }

  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpSink> sink;
  ThroughputBinner goodput;

  /// Ports are allocated per flow id so many flows can share nodes.
  static PortId sender_port(FlowId id) { return 1000 + 2 * id; }
  static PortId sink_port(FlowId id) { return 1001 + 2 * id; }
};

}  // namespace tfmcc
