#include "tfmcc/churn.hpp"

#include <algorithm>
#include <utility>

namespace tfmcc {

ChurnDriver::ChurnDriver(TfmccFlow& flow, Rng rng)
    : flow_{flow}, rng_{std::move(rng)} {}

void ChurnDriver::schedule_flash_crowd(ScheduleBuilder& sched,
                                       const std::vector<int>& ids,
                                       SimTime ref_start, SimTime ref_spread) {
  // Even spacing with up to one slot of uniform jitter: the crowd arrives
  // as a dense ramp, not a single synchronized instant (which no real flash
  // crowd produces and which would serialize every graft at one event
  // time).
  const auto n = static_cast<double>(ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const double slot = (static_cast<double>(k) + rng_.uniform01()) / n;
    const int id = ids[k];
    auto counters = counters_;
    TfmccFlow* flow = &flow_;
    sched.at(ref_start + ref_spread * slot, [flow, id, counters] {
      if (!flow->receiver(id).joined()) {
        flow->receiver(id).join();
        ++counters->joins;
      }
    });
    ++counters_->scheduled;
  }
}

std::vector<int> ChurnDriver::schedule_leave_storm(ScheduleBuilder& sched,
                                                   const std::vector<int>& ids,
                                                   double fraction,
                                                   SimTime ref_start,
                                                   SimTime ref_spread) {
  // Partial Fisher-Yates: draw the leaving cohort without bias, then spread
  // the leaves over the storm window like the flash crowd spreads joins.
  std::vector<int> pool = ids;
  const auto want = static_cast<std::size_t>(
      std::clamp(fraction, 0.0, 1.0) * static_cast<double>(pool.size()));
  std::vector<int> leavers;
  leavers.reserve(want);
  for (std::size_t k = 0; k < want; ++k) {
    const auto pick = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(k),
        static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[k], pool[pick]);
    leavers.push_back(pool[k]);
  }
  const auto n = static_cast<double>(leavers.empty() ? 1 : leavers.size());
  for (std::size_t k = 0; k < leavers.size(); ++k) {
    const double slot = (static_cast<double>(k) + rng_.uniform01()) / n;
    const int id = leavers[k];
    auto counters = counters_;
    TfmccFlow* flow = &flow_;
    sched.at(ref_start + ref_spread * slot, [flow, id, counters] {
      if (flow->receiver(id).joined()) {
        flow->receiver(id).leave();
        ++counters->leaves;
      }
    });
    ++counters_->scheduled;
  }
  return leavers;
}

void ChurnDriver::schedule_random_churn(ScheduleBuilder& sched,
                                        const std::vector<int>& ids,
                                        int events, SimTime ref_start,
                                        SimTime ref_end) {
  if (ids.empty() || events <= 0) return;
  const SimTime span = ref_end - ref_start;
  for (int e = 0; e < events; ++e) {
    const SimTime when = ref_start + span * rng_.uniform01();
    const int id = ids[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(ids.size()) - 1))];
    auto counters = counters_;
    TfmccFlow* flow = &flow_;
    // Membership is consulted at fire time, not schedule time: a toggle is
    // a rejoin or a leave depending on what earlier events did to this
    // receiver, which is exactly the out-of-order rejoin pattern the
    // incremental graft/prune maintenance has to survive.
    sched.at(when, [flow, id, counters] {
      if (flow->receiver(id).joined()) {
        flow->receiver(id).leave();
        ++counters->leaves;
      } else {
        flow->receiver(id).join();
        ++counters->joins;
      }
    });
    ++counters_->scheduled;
  }
}

}  // namespace tfmcc
