#pragma once

// Dynamic-membership churn driver.
//
// The paper's evaluation keeps group membership static; its §4.2 leave/join
// machinery and the CLR handoff are exactly what dynamic groups stress.
// ChurnDriver scripts the three canonical churn workloads from the dynamic-
// membership literature — flash-crowd joins, correlated leave storms, and
// sustained random join/leave/rejoin churn — as event ladders on a
// ScheduleBuilder reference timeline, so `--duration` rescales a whole
// workload proportionally.  Receivers are reused across rejoin (the
// receiver's own membership-state reset handles measurement hygiene), so a
// 10k-event churn run allocates its receiver set exactly once.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/schedule.hpp"
#include "tfmcc/flow.hpp"
#include "util/rng.hpp"

namespace tfmcc {

/// Scripts join/leave ladders for one flow's receiver set.  All schedule_*
/// calls place events on the builder's reference timeline; counters split
/// scheduled (script size) from applied (events that actually toggled a
/// receiver at run time).
class ChurnDriver {
 public:
  ChurnDriver(TfmccFlow& flow, Rng rng);

  /// Flash crowd: every receiver in `ids` joins, spread evenly (with
  /// uniform jitter of one slot) over [start, start + spread].
  void schedule_flash_crowd(ScheduleBuilder& sched,
                            const std::vector<int>& ids, SimTime ref_start,
                            SimTime ref_spread);

  /// Correlated leave storm: a `fraction` of `ids` (chosen by the driver's
  /// RNG) leaves within [start, start + spread].  Returns the ids that
  /// leave, so callers can script their rejoin wave.
  std::vector<int> schedule_leave_storm(ScheduleBuilder& sched,
                                        const std::vector<int>& ids,
                                        double fraction, SimTime ref_start,
                                        SimTime ref_spread);

  /// Sustained churn: `events` toggles at uniform-random instants in
  /// [start, end], each picking a uniform-random receiver from `ids` and
  /// flipping its membership (join if out, leave if in).
  void schedule_random_churn(ScheduleBuilder& sched,
                             const std::vector<int>& ids, int events,
                             SimTime ref_start, SimTime ref_end);

  int scheduled_events() const { return counters_->scheduled; }
  int applied_joins() const { return counters_->joins; }
  int applied_leaves() const { return counters_->leaves; }
  int applied_events() const { return counters_->joins + counters_->leaves; }

 private:
  struct Counters {
    int scheduled{0};
    int joins{0};
    int leaves{0};
  };

  TfmccFlow& flow_;
  Rng rng_;
  // Shared with the scheduled callbacks, as ScheduleBuilder does with its
  // fired count, so the tallies survive moves of the driver.
  std::shared_ptr<Counters> counters_{std::make_shared<Counters>()};
};

}  // namespace tfmcc
