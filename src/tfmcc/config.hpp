#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "tfrc/equation_backend.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

/// How feedback timers are biased in favour of low-rate receivers (§2.5.1).
enum class BiasMethod {
  kUnbiased,        // plain exponential timers, Eq. (2)
  kOffset,          // subtract an offset proportional to x, Eq. (3)
  kModifiedOffset,  // Eq. (3) with x truncated to [0.5, 0.9] and renormalised
  kModifiedN,       // reduce the receiver-set upper bound N with x
};

/// Parameters of the randomized feedback-timer mechanism.
struct FeedbackTimerConfig {
  double n_estimate{10000.0};  // N: upper bound on the receiver-set size
  double zeta{0.25};           // ζ: fraction of T used as the bias offset
  BiasMethod method{BiasMethod::kModifiedOffset};
};

/// All TFMCC protocol constants, defaulted to the paper's values (§ refs in
/// DESIGN.md §4).  Every knob exists so the ablation benches can move it.
struct TfmccConfig {
  std::int32_t packet_bytes{kDataPacketBytes};
  std::int32_t feedback_bytes{kFeedbackPacketBytes};

  // RTT measurement (§2.4).
  SimTime initial_rtt{SimTime::millis(500)};
  double rtt_ewma_clr{0.05};       // EWMA weight for the CLR's RTT
  double rtt_ewma_non_clr{0.5};    // ... for infrequently-measured receivers
  double rtt_ewma_owd{0.1};        // ... for one-way-delay adjustments
  bool use_clock_sync{false};      // NTP/GPS-style initialisation (§2.4.1)
  SimTime clock_sync_error{SimTime::millis(30)};  // worst-case sync error

  // Loss measurement (§2.3).
  int loss_history_depth{8};

  // Feedback suppression (§2.5).
  FeedbackTimerConfig timer{};
  double delta{0.1};           // δ: cancellation threshold (§2.5.2)
  double t_mult{4.0};          // T = t_mult * R_max
  int low_rate_guard{3};       // c: T >= (c+1)*s/rate at low rates (§2.5.3)

  // Control-equation backend (receivers' calc rate, Appendix B inversion,
  // the sender's initial-RTT recomputation).  The float backend is the
  // paper-faithful default; "fixed" swaps in the scaled-integer table engine.
  const EquationBackend* equation{&float_equation_backend()};

  // Rate control (§2.2, §2.6).
  double slowstart_mult{2.0};       // d: slowstart target = d * min recv rate
  double increase_limit_pkts{1.0};  // packets/RTT cap while ramping to new CLR
  double recv_rate_cap_mult{2.0};   // never send faster than this * CLR recv rate
  double clr_timeout_mult{10.0};    // CLR silence timeout, in feedback delays
  bool halve_on_starvation{true};   // no receivers at all -> halve per round

  // Appendix C option: remember the previous CLR for quick switch-back.
  bool remember_previous_clr{false};
  SimTime previous_clr_hold{SimTime::millis(1500)};  // "a few RTTs"
};

/// Port conventions used by the TFMCC experiment harnesses.
constexpr PortId kTfmccSenderPort = 1;
constexpr PortId kTfmccDataPort = 2;

}  // namespace tfmcc
