#include "tfmcc/feedback_timer.hpp"

#include <algorithm>
#include <cmath>

namespace tfmcc::feedback_timer {

namespace {

constexpr double kMinModifiedN = 2.0;

double effective_n(double x, const FeedbackTimerConfig& cfg) {
  return std::max(kMinModifiedN, cfg.n_estimate * std::clamp(x, 0.0, 1.0));
}

/// max(0, 1 + log_N(u)) for u in (0,1]: the basic exponential timer, Eq. (2).
double base_timer(double u, double n) { return std::max(0.0, 1.0 + std::log(u) / std::log(n)); }

/// CDF of base_timer at t in [0,1]:  P(u <= N^(t-1)) = N^(t-1).
double base_cdf(double t, double n) {
  if (t < 0.0) return 0.0;
  if (t >= 1.0) return 1.0;
  return std::pow(n, t - 1.0);
}

}  // namespace

double truncate_ratio(double x) {
  return (std::clamp(x, 0.5, 0.9) - 0.5) / 0.4;
}

double draw(double x, const FeedbackTimerConfig& cfg, Rng& rng) {
  return from_uniform(rng.uniform01(), x, cfg);
}

double from_uniform(double u, double x, const FeedbackTimerConfig& cfg) {
  switch (cfg.method) {
    case BiasMethod::kUnbiased:
      return base_timer(u, cfg.n_estimate);
    case BiasMethod::kOffset:
      return cfg.zeta * std::clamp(x, 0.0, 1.0) +
             (1.0 - cfg.zeta) * base_timer(u, cfg.n_estimate);
    case BiasMethod::kModifiedOffset:
      return cfg.zeta * truncate_ratio(x) +
             (1.0 - cfg.zeta) * base_timer(u, cfg.n_estimate);
    case BiasMethod::kModifiedN:
      return base_timer(u, effective_n(x, cfg));
  }
  return base_timer(u, cfg.n_estimate);
}

double cdf(double t, double x, const FeedbackTimerConfig& cfg) {
  switch (cfg.method) {
    case BiasMethod::kUnbiased:
      return base_cdf(t, cfg.n_estimate);
    case BiasMethod::kOffset: {
      const double off = cfg.zeta * std::clamp(x, 0.0, 1.0);
      return base_cdf((t - off) / (1.0 - cfg.zeta), cfg.n_estimate);
    }
    case BiasMethod::kModifiedOffset: {
      const double off = cfg.zeta * truncate_ratio(x);
      return base_cdf((t - off) / (1.0 - cfg.zeta), cfg.n_estimate);
    }
    case BiasMethod::kModifiedN:
      return base_cdf(t, effective_n(x, cfg));
  }
  return base_cdf(t, cfg.n_estimate);
}

}  // namespace tfmcc::feedback_timer
