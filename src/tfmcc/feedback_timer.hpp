#pragma once

#include "tfmcc/config.hpp"
#include "util/rng.hpp"

namespace tfmcc {

/// The biased exponentially-distributed feedback timers of §2.5.1.
///
/// This is deliberately a standalone, pure function module: the protocol
/// receiver and the analytic feedback-round models (figs. 1–6) draw from the
/// *same* implementation, so the analysis figures exercise production code.
namespace feedback_timer {

/// Truncate-and-normalise the rate ratio (§2.5.1):
///   x' = (clamp(x, 0.5, 0.9) - 0.5) / 0.4
/// Biasing starts only below 90% of the sending rate and saturates at 50%.
double truncate_ratio(double x);

/// Draw a feedback delay in units of T (the round's maximum feedback time).
///
/// `x` is the ratio of the receiver's calculated rate to the current sending
/// rate, in [0, 1]; lower x (== more urgent feedback) yields earlier timers
/// for the biased methods.  The result is in [0, 1] (multiply by T).
double draw(double x, const FeedbackTimerConfig& cfg, Rng& rng);

/// Deterministic timer transform: the delay produced for uniform variate
/// u in (0, 1].  `draw` is `from_uniform(rng.uniform01(), ...)`; the
/// analytic models integrate over u directly.
double from_uniform(double u, double x, const FeedbackTimerConfig& cfg);

/// The closed-form CDF P(timer <= t), t in units of T, for worst-case x = 0
/// (unbiased) or the given x (biased methods).  Used by fig. 1 and by the
/// expected-feedback-count model of fig. 4.
double cdf(double t, double x, const FeedbackTimerConfig& cfg);

}  // namespace feedback_timer

}  // namespace tfmcc
