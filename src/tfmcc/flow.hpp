#pragma once

#include <memory>
#include <vector>

#include "mcast/session.hpp"
#include "tfmcc/receiver.hpp"
#include "tfmcc/receiver_block.hpp"
#include "tfmcc/sender.hpp"
#include "util/stats.hpp"

namespace tfmcc {

/// Convenience bundle for experiments: one TFMCC sender plus its receiver
/// set, each receiver with a goodput binner attached.  This is the public
/// "just give me a flow" API used by the examples and figure benches.
class TfmccFlow {
 public:
  /// `data_port`/`control_port` default to the historical single-session
  /// convention; concurrent flows over one topology must be given disjoint
  /// pairs (SessionManager does this automatically).
  TfmccFlow(Simulator& sim, Topology& topo, NodeId source,
            TfmccConfig cfg = {}, SimTime bin_width = SimTime::seconds(1.0),
            std::uint64_t rng_stream = 7000,
            PortId data_port = kTfmccDataPort,
            PortId control_port = kTfmccSenderPort)
      : sim_{sim},
        cfg_{cfg},
        bin_width_{bin_width},
        session_{topo, source, data_port, control_port},
        sender_{std::make_unique<TfmccSender>(sim, session_, cfg,
                                              sim.make_rng(rng_stream))},
        rng_stream_{rng_stream} {}

  /// Create a receiver on `node` (not yet joined).  Returns its index.
  int add_receiver(NodeId node) {
    const auto id = static_cast<std::int32_t>(receivers_.size());
    receivers_.push_back(std::make_unique<TfmccReceiver>(
        sim_, session_, node, id, cfg_, sim_.make_rng(rng_stream_ + 1 + id)));
    goodput_.push_back(std::make_unique<ThroughputBinner>(bin_width_));
    auto* binner = goodput_.back().get();
    receivers_.back()->set_delivery_observer(
        [binner](SimTime t, std::int32_t bytes) { binner->add(t, bytes); });
    return id;
  }

  /// Add-and-join in one step.
  int add_joined_receiver(NodeId node) {
    const int id = add_receiver(node);
    receivers_[static_cast<std::size_t>(id)]->join();
    return id;
  }

  /// Create a modeled-receiver block on `tap` standing in for `count`
  /// receivers (hybrid tier; not yet joined).  Returns the block index.
  /// Modeled receiver ids live in [kModeledIdBase, ...), disjoint from the
  /// full tier's dense 0-based ids.
  int add_modeled_block(NodeId tap, int count,
                        SimTime extra_owd_min = SimTime::zero(),
                        SimTime extra_owd_max = SimTime::zero(),
                        int max_candidates = 64) {
    const auto idx = static_cast<int>(blocks_.size());
    ModeledReceiverBlock::BlockConfig bc;
    bc.count = count;
    bc.base_id = kModeledIdBase + next_modeled_id_;
    bc.extra_owd_min = extra_owd_min;
    bc.extra_owd_max = extra_owd_max;
    bc.max_candidates = max_candidates;
    next_modeled_id_ += count;
    blocks_.push_back(std::make_unique<ModeledReceiverBlock>(
        sim_, session_, tap, bc, cfg_,
        sim_.make_rng(rng_stream_ + kModeledRngOffset + idx)));
    return idx;
  }

  ModeledReceiverBlock& block(int idx) {
    return *blocks_.at(static_cast<std::size_t>(idx));
  }
  int block_count() const { return static_cast<int>(blocks_.size()); }
  /// Modeled receivers across all blocks (joined or not).
  int modeled_receiver_count() const {
    int n = 0;
    for (const auto& b : blocks_) n += b->count();
    return n;
  }

  TfmccSender& sender() { return *sender_; }
  const TfmccSender& sender() const { return *sender_; }
  MulticastSession& session() { return session_; }
  TfmccReceiver& receiver(int id) {
    return *receivers_.at(static_cast<std::size_t>(id));
  }
  const ThroughputBinner& goodput(int id) const {
    return *goodput_.at(static_cast<std::size_t>(id));
  }
  int receiver_count() const { return static_cast<int>(receivers_.size()); }

  int receivers_with_rtt() const {
    int n = 0;
    for (const auto& r : receivers_) {
      if (r->has_rtt_measurement()) ++n;
    }
    for (const auto& b : blocks_) n += b->receivers_with_rtt();
    return n;
  }

  std::int64_t total_feedback_sent() const {
    std::int64_t n = 0;
    for (const auto& r : receivers_) n += r->feedback_sent();
    for (const auto& b : blocks_) n += b->feedback_sent();
    return n;
  }

 private:
  /// Modeled receiver ids start here so they can never collide with the
  /// full tier's dense 0-based ids (the sender tracks both uniformly).
  static constexpr std::int32_t kModeledIdBase = 1'000'000;
  /// RNG substream offset for blocks (full receivers use stream + 1 + id).
  static constexpr std::uint64_t kModeledRngOffset = 500'000;

  Simulator& sim_;
  TfmccConfig cfg_;
  SimTime bin_width_;
  MulticastSession session_;
  std::unique_ptr<TfmccSender> sender_;
  std::vector<std::unique_ptr<TfmccReceiver>> receivers_;
  std::vector<std::unique_ptr<ThroughputBinner>> goodput_;
  std::vector<std::unique_ptr<ModeledReceiverBlock>> blocks_;
  std::uint64_t rng_stream_;
  std::int32_t next_modeled_id_{0};
};

}  // namespace tfmcc
