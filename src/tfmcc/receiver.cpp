#include "tfmcc/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "tfmcc/feedback_timer.hpp"
#include "tfrc/equation.hpp"
#include "util/log.hpp"

namespace tfmcc {

TfmccReceiver::TfmccReceiver(Simulator& sim, MulticastSession& session,
                             NodeId self, std::int32_t receiver_id,
                             TfmccConfig cfg, Rng rng)
    : sim_{sim},
      session_{session},
      self_{self},
      id_{receiver_id},
      cfg_{cfg},
      rng_{std::move(rng)},
      loss_{cfg.loss_history_depth},
      rtt_{cfg.initial_rtt} {}

TfmccReceiver::~TfmccReceiver() {
  if (joined_) {
    session_.topology().node(self_).detach_agent(session_.data_port());
  }
}

void TfmccReceiver::join() {
  if (joined_) return;
  // A rejoin after leave() starts a fresh membership.  The previous
  // membership's sequence space, loss history, RTT estimate and round state
  // must not leak in: the seqno gap accumulated while absent would read as
  // a phantom loss burst, and a stale RTT/loss estimate would skew the
  // first reports of the new membership.  State is reset here (not in
  // leave()) so post-leave inspection of the final membership stays valid.
  if (ever_left_) reset_membership_state();
  session_.topology().node(self_).attach_agent(session_.data_port(), this);
  session_.join(self_);
  joined_ = true;
}

void TfmccReceiver::reset_membership_state() {
  round_ = -1;
  seq_ = SeqnoTracker{};
  loss_ = LossHistory{cfg_.loss_history_depth};
  recv_rate_.clear();
  rtt_ = cfg_.initial_rtt;
  has_rtt_ = false;
  owd_rs_ = SimTime::zero();
  has_owd_ = false;
  is_clr_ = false;
  last_data_send_ts_ = SimTime::zero();
  last_data_arrival_ = SimTime::infinity();
  last_send_rate_ = 0.0;
  // feedback_sent_ is a lifetime counter, not membership state: harnesses
  // sum it across the whole run, so it survives rejoins.
}

void TfmccReceiver::leave() {
  if (!joined_) return;
  // Explicit leave report (§4.2): lets the sender react in one RTT instead
  // of waiting for the CLR silence timeout.
  auto fb = sim_.make_packet();
  fb->src = self_;
  fb->dst = session_.source();
  fb->sport = session_.data_port();
  fb->dport = session_.control_port();
  fb->size_bytes = cfg_.feedback_bytes;
  TfmccFeedbackHeader h;
  h.receiver = id_;
  h.round = round_;
  h.leaving = true;
  h.ts = sim_.now();
  fb->header = h;
  session_.topology().node(self_).send(std::move(fb));
  ++feedback_sent_;

  session_.leave(self_);
  session_.topology().node(self_).detach_agent(session_.data_port());
  joined_ = false;
  ever_left_ = true;
  is_clr_ = false;
  sim_.cancel(fb_timer_);
  sim_.cancel(clr_timer_);
}

double TfmccReceiver::calc_rate_Bps() const {
  const double p = loss_.loss_event_rate();
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  return cfg_.equation->throughput_Bps(cfg_.packet_bytes, rtt_, p);
}

void TfmccReceiver::handle_packet(const Packet& p) {
  if (const auto* h = p.tfmcc_data()) on_data(p, *h);
}

void TfmccReceiver::on_data(const Packet& p, const TfmccDataHeader& h) {
  const SimTime now = sim_.now();

  // Optional clock-sync RTT initialisation (§2.4.1): with (approximately)
  // synchronised clocks the one-way delay gives a first RTT estimate of
  // 2*(d_sr + sync error).  Simulator clocks are perfectly aligned, so the
  // configured error bound models the NTP dispersion term.
  if (cfg_.use_clock_sync && !has_rtt_ && seq_.received() == 0) {
    const SimTime owd = now - h.send_ts;
    rtt_ = 2.0 * (owd + cfg_.clock_sync_error);
  }

  // Loss detection must precede counting this packet as received, so the
  // loss interval boundaries stay exact.
  const auto seq_result = seq_.on_seqno(h.seqno);
  if (seq_result.duplicate) return;
  if (seq_result.lost > 0) process_losses(p, h, seq_result.lost);
  loss_.on_packet_received();
  recv_rate_.on_packet(now, p.size_bytes);
  if (observer_) observer_(now, p.size_bytes);
  if (data_observer_) data_observer_(now, h);

  last_data_send_ts_ = h.send_ts;
  last_data_arrival_ = now;
  last_send_rate_ = h.send_rate_Bps;

  process_echo(h, now);
  process_one_way_delay(h, now);
  update_clr_status(h);

  if (h.round != round_) on_new_round(h, now);
  check_suppression(h);
}

void TfmccReceiver::process_losses(const Packet& p, const TfmccDataHeader& h,
                                   std::int64_t lost) {
  (void)p;
  const SimTime now = sim_.now();
  const bool first_ever = !loss_.has_loss();
  bool new_event = false;
  for (std::int64_t i = 0; i < lost; ++i) {
    new_event |= loss_.on_packet_lost(now, rtt_);
  }
  if (first_ever && new_event) {
    // Appendix B: synthesise the initial loss interval from the rate at
    // which the first loss occurred.  During slowstart the sender may
    // overshoot to at most 2x the bottleneck bandwidth, so the receive rate
    // at first loss ~= the bottleneck rate; inverting the control equation
    // at that rate yields the interval that makes the calculated rate equal
    // the available bandwidth.
    double rate_at_loss = recv_rate_.rate_Bps(now);
    if (rate_at_loss <= 0.0) rate_at_loss = h.send_rate_Bps * 0.5;
    if (rate_at_loss > 0.0) {
      const double p_init = cfg_.equation->loss_for_throughput(
          cfg_.packet_bytes, rtt_, rate_at_loss);
      loss_.init_first_interval(1.0 / p_init);
    }
  }
}

void TfmccReceiver::process_echo(const TfmccDataHeader& h, SimTime now) {
  if (!h.echo.valid() || h.echo.receiver != id_) return;
  const SimTime sample = now - h.echo.ts - h.echo.delay;
  if (sample <= SimTime::zero()) return;

  if (!has_rtt_) {
    const SimTime init = rtt_;
    rtt_ = sample;
    has_rtt_ = true;
    // Appendix A: the loss history was aggregated with the (too high)
    // initial RTT; remodel it with the measured RTT, then rescale the
    // synthetic initial interval (Appendix B).
    loss_.reaggregate(rtt_);
    loss_.rescale_initial_interval(rtt_, init);
  } else {
    const double alpha = is_clr_ ? cfg_.rtt_ewma_clr : cfg_.rtt_ewma_non_clr;
    rtt_ = sample * alpha + rtt_ * (1.0 - alpha);
  }
  // Remember the receiver->sender one-way delay implied by this measurement
  // (clock skew included; it cancels in later adjustments, §2.4.3).
  const SimTime owd_sr = now - h.send_ts;
  owd_rs_ = sample - owd_sr;
  has_owd_ = true;
}

void TfmccReceiver::process_one_way_delay(const TfmccDataHeader& h,
                                          SimTime now) {
  if (!has_rtt_ || !has_owd_) return;
  if (h.echo.valid() && h.echo.receiver == id_) return;  // real sample wins
  const SimTime owd_sr = now - h.send_ts;
  const SimTime rtt_adj = owd_rs_ + owd_sr;
  if (rtt_adj <= SimTime::zero()) return;
  rtt_ = rtt_adj * cfg_.rtt_ewma_owd + rtt_ * (1.0 - cfg_.rtt_ewma_owd);
}

void TfmccReceiver::update_clr_status(const TfmccDataHeader& h) {
  const bool now_clr = (h.clr == id_);
  if (now_clr && !is_clr_) {
    is_clr_ = true;
    sim_.cancel(fb_timer_);  // the CLR reports immediately, not via timers
    schedule_clr_feedback();
  } else if (!now_clr && is_clr_) {
    is_clr_ = false;
    sim_.cancel(clr_timer_);
  }
}

void TfmccReceiver::schedule_clr_feedback() {
  if (!is_clr_ || !joined_) return;
  // The CLR reports once per RTT without suppression (§2.2, §2.5).
  clr_timer_ = sim_.in(rtt_, [this] {
    if (!is_clr_ || !joined_) return;
    send_feedback();
    schedule_clr_feedback();
  });
}

double TfmccReceiver::bias_ratio(const TfmccDataHeader& h) const {
  if (h.slowstart) {
    // §2.6: receivers cannot compute a TCP-friendly rate yet; bias by the
    // ratio of receive rate to sending rate instead.
    if (h.send_rate_Bps <= 0.0) return 1.0;
    return std::clamp(recv_rate_.rate_Bps(sim_.now()) / h.send_rate_Bps, 0.0,
                      1.0);
  }
  if (h.send_rate_Bps <= 0.0) return 1.0;
  const double calc = calc_rate_Bps();
  if (!std::isfinite(calc)) return 1.0;
  return std::clamp(calc / h.send_rate_Bps, 0.0, 1.0);
}

void TfmccReceiver::on_new_round(const TfmccDataHeader& h, SimTime now) {
  round_ = h.round;
  sim_.cancel(fb_timer_);
  if (is_clr_) return;  // CLR feedback is periodic, not per-round

  // Eligibility: only receivers whose state is *useful* to the sender set a
  // timer.  In steady state that means a calculated rate below the sending
  // rate (§2.2); during slowstart every receiver's receive rate matters for
  // the min() in the target-rate computation (§2.6).
  bool eligible;
  if (h.slowstart) {
    eligible = recv_rate_.has_estimate();
  } else {
    const double calc = calc_rate_Bps();
    eligible = std::isfinite(calc) && calc < h.send_rate_Bps;
  }
  if (!eligible) return;

  const double t_units = feedback_timer::draw(bias_ratio(h), cfg_.timer, rng_);
  (void)now;
  const SimTime delay = h.fb_deadline * t_units;
  fb_timer_ = sim_.in(delay, [this] { send_feedback(); });
}

void TfmccReceiver::check_suppression(const TfmccDataHeader& h) {
  if (!fb_timer_.pending()) return;
  if (h.round != round_ || h.supp_rate_Bps < 0.0) return;

  // §2.5.2: cancel when the echoed rate r and own rate r_calc satisfy
  //   r - r_calc <= delta * r
  // i.e. our report would not improve on the best one by more than delta.
  double own;
  if (h.slowstart) {
    // §2.6: a loss report can only be suppressed by other loss reports.
    if (loss_.has_loss() && !h.supp_has_loss) return;
    if (!loss_.has_loss() && h.supp_has_loss) {
      sim_.cancel(fb_timer_);  // a loss report always beats our no-loss one
      return;
    }
    own = recv_rate_.rate_Bps(sim_.now());
  } else {
    own = calc_rate_Bps();
  }
  if (h.supp_rate_Bps - own <= cfg_.delta * h.supp_rate_Bps) {
    sim_.cancel(fb_timer_);
  }
}

void TfmccReceiver::send_feedback() {
  if (!joined_) return;
  const SimTime now = sim_.now();

  auto fb = sim_.make_packet();
  fb->src = self_;
  fb->dst = session_.source();
  fb->sport = session_.data_port();
  fb->dport = session_.control_port();
  fb->size_bytes = cfg_.feedback_bytes;

  TfmccFeedbackHeader h;
  h.receiver = id_;
  h.round = round_;
  // -1 is the "no estimate yet" sentinel: the sender treats any negative
  // calc rate as a keepalive / receive-rate-only report (its eff < 0
  // branches), so the two sides agree on the encoding.
  const double calc = calc_rate_Bps();
  h.calc_rate_Bps = std::isfinite(calc) ? calc : -1.0;
  h.recv_rate_Bps = recv_rate_.rate_Bps(now);
  h.loss_event_rate = loss_.loss_event_rate();
  h.has_rtt = has_rtt_;
  h.rtt = rtt_;
  h.has_loss = loss_.has_loss();
  h.ts = now;
  h.echo_ts = last_data_send_ts_;
  h.echo_delay = last_data_arrival_.is_infinite()
                     ? SimTime::zero()
                     : now - last_data_arrival_;
  fb->header = h;

  session_.topology().node(self_).send(std::move(fb));
  ++feedback_sent_;
}

}  // namespace tfmcc
