#pragma once

#include <cstdint>
#include <functional>

#include "mcast/session.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/config.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/seqno_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tfmcc {

/// A TFMCC receiver (§2): measures its loss event rate and RTT, computes the
/// TCP-friendly rate from the control equation, and participates in the
/// biased feedback-suppression protocol.  Attach one per member node.
class TfmccReceiver final : public Agent {
 public:
  TfmccReceiver(Simulator& sim, MulticastSession& session, NodeId self,
                std::int32_t receiver_id, TfmccConfig cfg, Rng rng);
  ~TfmccReceiver() override;

  TfmccReceiver(const TfmccReceiver&) = delete;
  TfmccReceiver& operator=(const TfmccReceiver&) = delete;

  /// Join the multicast session (graft onto the tree, start listening).
  void join();
  /// Leave: sends an explicit leave report (§4.2), prunes, stops listening.
  void leave();

  void handle_packet(const Packet& p) override;

  /// Invoked once per delivered data packet: (time, bytes) — goodput hook.
  void set_delivery_observer(std::function<void(SimTime, std::int32_t)> f) {
    observer_ = std::move(f);
  }

  /// Invoked once per delivered data packet with the full header — for
  /// applications layered on the stream (e.g. the file-carousel example).
  void set_data_observer(
      std::function<void(SimTime, const TfmccDataHeader&)> f) {
    data_observer_ = std::move(f);
  }

  // --- state inspection (tests / experiment harnesses) ---------------------
  std::int32_t id() const { return id_; }
  bool joined() const { return joined_; }
  bool has_rtt_measurement() const { return has_rtt_; }
  SimTime rtt() const { return rtt_; }
  double loss_event_rate() const { return loss_.loss_event_rate(); }
  bool has_loss() const { return loss_.has_loss(); }
  /// Rate from the control equation with current p and RTT; +inf before the
  /// first loss event.
  double calc_rate_Bps() const;
  double recv_rate_Bps() const { return recv_rate_.rate_Bps(sim_.now()); }
  bool is_clr() const { return is_clr_; }
  std::int64_t feedback_sent() const { return feedback_sent_; }
  std::int64_t packets_received() const { return seq_.received(); }
  std::int64_t packets_lost() const { return seq_.lost(); }

 private:
  void on_data(const Packet& p, const TfmccDataHeader& h);
  void process_losses(const Packet& p, const TfmccDataHeader& h,
                      std::int64_t lost);
  void process_echo(const TfmccDataHeader& h, SimTime now);
  void process_one_way_delay(const TfmccDataHeader& h, SimTime now);
  void on_new_round(const TfmccDataHeader& h, SimTime now);
  void check_suppression(const TfmccDataHeader& h);
  void update_clr_status(const TfmccDataHeader& h);
  void send_feedback();
  void schedule_clr_feedback();
  /// Restore all per-membership measurement/round state to its
  /// freshly-constructed values (called when rejoining after a leave).
  void reset_membership_state();
  /// Bias ratio x for the feedback timer (§2.5.1, §2.6).
  double bias_ratio(const TfmccDataHeader& h) const;

  Simulator& sim_;
  MulticastSession& session_;
  NodeId self_;
  std::int32_t id_;
  TfmccConfig cfg_;
  Rng rng_;

  bool joined_{false};
  bool ever_left_{false};  // a later join() is a rejoin and resets state

  // Loss measurement.
  SeqnoTracker seq_;
  LossHistory loss_;
  WindowedRateMeter recv_rate_;

  // RTT state (§2.4).
  SimTime rtt_;
  bool has_rtt_{false};
  SimTime owd_rs_{};       // receiver->sender one-way delay (incl. skew)
  bool has_owd_{false};

  // Snapshot of the latest data packet (for feedback echo fields).
  SimTime last_data_send_ts_{};
  SimTime last_data_arrival_{SimTime::infinity()};
  double last_send_rate_{0.0};

  // Feedback-round state (§2.5).
  std::int32_t round_{-1};
  EventId fb_timer_{};
  bool is_clr_{false};
  EventId clr_timer_{};

  std::function<void(SimTime, std::int32_t)> observer_;
  std::function<void(SimTime, const TfmccDataHeader&)> data_observer_;
  std::int64_t feedback_sent_{0};
};

}  // namespace tfmcc
