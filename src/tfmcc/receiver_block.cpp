#include "tfmcc/receiver_block.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/feedback_model.hpp"
#include "tfmcc/feedback_timer.hpp"
#include "tfrc/equation.hpp"

namespace tfmcc {

ModeledReceiverBlock::ModeledReceiverBlock(Simulator& sim,
                                           MulticastSession& session,
                                           NodeId tap, BlockConfig block_cfg,
                                           TfmccConfig cfg, Rng rng)
    : sim_{sim},
      session_{session},
      tap_{tap},
      bcfg_{block_cfg},
      cfg_{cfg},
      rng_{std::move(rng)},
      loss_{cfg.loss_history_depth} {
  const auto n = static_cast<std::size_t>(bcfg_.count);
  rtt_.assign(n, cfg_.initial_rtt);
  extra_owd_.resize(n);
  flags_.assign(n, 0);
  ps_scratch_.resize(n);
  calc_scratch_.resize(n);
  rtt_sum_s_ = cfg_.initial_rtt.to_seconds() * static_cast<double>(bcfg_.count);
  // Stratify the virtual access delays evenly over the configured span:
  // deterministic coverage of the RTT range beats sampling it (the modeled
  // tier aggregates, it does not replicate one random draw).
  const SimTime span = bcfg_.extra_owd_max - bcfg_.extra_owd_min;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    extra_owd_[i] = bcfg_.extra_owd_min + span * frac;
  }
}

ModeledReceiverBlock::~ModeledReceiverBlock() {
  if (joined_) {
    session_.topology().node(tap_).detach_agent(session_.data_port());
  }
}

void ModeledReceiverBlock::join() {
  if (joined_) return;
  session_.topology().node(tap_).attach_agent(session_.data_port(), this);
  session_.join(tap_);
  session_.add_modeled(bcfg_.count);
  joined_ = true;
}

void ModeledReceiverBlock::leave() {
  if (!joined_) return;
  const SimTime now = sim_.now();
  // Explicit leave reports (§4.2) for every receiver the sender knows of,
  // so a CLR held by this block is handed off in one RTT.
  for (int i = 0; i < bcfg_.count; ++i) {
    if ((flags_[static_cast<std::size_t>(i)] & ModeledRxInfo::kReported) == 0)
      continue;
    auto fb = sim_.make_packet();
    fb->src = tap_;
    fb->dst = session_.source();
    fb->sport = session_.data_port();
    fb->dport = session_.control_port();
    fb->size_bytes = cfg_.feedback_bytes;
    TfmccFeedbackHeader h;
    h.receiver = bcfg_.base_id + i;
    h.round = round_;
    h.leaving = true;
    h.ts = now;
    fb->header = h;
    session_.topology().node(tap_).send(std::move(fb));
    ++feedback_sent_;
  }
  session_.remove_modeled(bcfg_.count);
  session_.leave(tap_);
  session_.topology().node(tap_).detach_agent(session_.data_port());
  joined_ = false;
  sim_.cancel(cand_timer_);
  sim_.cancel(clr_timer_);
  if (clr_idx_ >= 0) {
    flags_[static_cast<std::size_t>(clr_idx_)] &=
        static_cast<std::uint8_t>(~ModeledRxInfo::kClr);
    clr_idx_ = -1;
  }
}

ModeledRxInfo ModeledReceiverBlock::rx_info(int i) const {
  const auto idx = static_cast<std::size_t>(i);
  ModeledRxInfo info;
  info.rtt_us = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, rtt_[idx].count_nanos() / 1000));
  info.extra_owd_us = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, extra_owd_[idx].count_nanos() / 1000));
  info.flags = flags_[idx];
  return info;
}

int ModeledReceiverBlock::candidate_cap() {
  if (cand_cap_ == 0) {
    // Size the per-round contender short-list from the analytic model:
    // E[M] is the expected number of reports that survive suppression in a
    // round of n receivers (worst case x = 0: every timer maximally
    // biased-early; T = t_mult RTTs, suppression signal one RTT behind).
    // 4x that expectation plus slack is a generous tail allowance.
    const double em = feedback_model::expected_messages(
        bcfg_.count, cfg_.t_mult, 1.0, 0.0, cfg_.timer);
    const int k = static_cast<int>(std::ceil(4.0 * em)) + 4;
    cand_cap_ = std::clamp(k, 8, std::max(8, bcfg_.max_candidates));
  }
  return cand_cap_;
}

SimTime ModeledReceiverBlock::representative_rtt() const {
  return SimTime::seconds(rtt_sum_s_ / static_cast<double>(bcfg_.count));
}

void ModeledReceiverBlock::set_rtt(int idx, SimTime rtt) {
  const auto i = static_cast<std::size_t>(idx);
  rtt_sum_s_ += rtt.to_seconds() - rtt_[i].to_seconds();
  rtt_[i] = rtt;
}

double ModeledReceiverBlock::calc_rate_Bps(int idx) const {
  const double p = loss_.loss_event_rate();
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  return cfg_.equation->throughput_Bps(cfg_.packet_bytes,
                                       rtt_[static_cast<std::size_t>(idx)], p);
}

void ModeledReceiverBlock::handle_packet(const Packet& p) {
  if (const auto* h = p.tfmcc_data()) on_data(p, *h);
}

void ModeledReceiverBlock::on_data(const Packet& p, const TfmccDataHeader& h) {
  const SimTime now = sim_.now();

  // Clock-sync RTT initialisation (§2.4.1), per modeled receiver: the tap's
  // one-way delay plus each receiver's virtual access detour.
  if (cfg_.use_clock_sync && !block_has_rtt_ && seq_.received() == 0) {
    const SimTime owd = now - h.send_ts;
    for (int i = 0; i < bcfg_.count; ++i) {
      set_rtt(i, (owd + cfg_.clock_sync_error) * 2.0 +
                     extra_owd_[static_cast<std::size_t>(i)] * 2.0);
    }
  }

  const auto seq_result = seq_.on_seqno(h.seqno);
  if (seq_result.duplicate) return;
  if (seq_result.lost > 0) process_losses(h, seq_result.lost);
  loss_.on_packet_received();
  recv_rate_.on_packet(now, p.size_bytes);

  last_data_send_ts_ = h.send_ts;
  last_data_arrival_ = now;
  last_send_rate_ = h.send_rate_Bps;

  process_echo(h, now);
  update_clr_status(h);

  if (h.round != round_) on_new_round(h, now);
  observe_suppression(h);
}

void ModeledReceiverBlock::process_losses(const TfmccDataHeader& h,
                                          std::int64_t lost) {
  const SimTime now = sim_.now();
  const SimTime rep = representative_rtt();
  const bool first_ever = !loss_.has_loss();
  bool new_event = false;
  for (std::int64_t i = 0; i < lost; ++i) {
    new_event |= loss_.on_packet_lost(now, rep);
  }
  if (first_ever && new_event) {
    // Appendix B, shared across the block: the receivers all observed the
    // same pre-loss receive rate.
    double rate_at_loss = recv_rate_.rate_Bps(now);
    if (rate_at_loss <= 0.0) rate_at_loss = h.send_rate_Bps * 0.5;
    if (rate_at_loss > 0.0) {
      const double p_init = cfg_.equation->loss_for_throughput(
          cfg_.packet_bytes, rep, rate_at_loss);
      loss_.init_first_interval(1.0 / p_init);
    }
  }
}

void ModeledReceiverBlock::process_echo(const TfmccDataHeader& h,
                                        SimTime now) {
  if (!h.echo.valid() || !hosts(h.echo.receiver)) return;
  const int idx = h.echo.receiver - bcfg_.base_id;
  const auto i = static_cast<std::size_t>(idx);
  const SimTime tap_sample = now - h.echo.ts - h.echo.delay;
  if (tap_sample <= SimTime::zero()) return;
  // The modeled path is the tap path plus the receiver's virtual detour.
  const SimTime sample = tap_sample + extra_owd_[i] * 2.0;

  if ((flags_[i] & ModeledRxInfo::kHasRtt) == 0) {
    flags_[i] |= ModeledRxInfo::kHasRtt;
    ++with_rtt_;
    set_rtt(idx, sample);
    if (!block_has_rtt_) {
      // Appendix A/B, once per block: the shared history was aggregated
      // with the (too high) initial RTT; remodel with a measured one.
      block_has_rtt_ = true;
      loss_.reaggregate(representative_rtt());
      loss_.rescale_initial_interval(sample, cfg_.initial_rtt);
    }
  } else {
    const double alpha =
        idx == clr_idx_ ? cfg_.rtt_ewma_clr : cfg_.rtt_ewma_non_clr;
    set_rtt(idx, sample * alpha + rtt_[i] * (1.0 - alpha));
  }
}

void ModeledReceiverBlock::update_clr_status(const TfmccDataHeader& h) {
  const int idx = hosts(h.clr) ? h.clr - bcfg_.base_id : -1;
  if (idx == clr_idx_) return;
  if (clr_idx_ >= 0) {
    flags_[static_cast<std::size_t>(clr_idx_)] &=
        static_cast<std::uint8_t>(~ModeledRxInfo::kClr);
    sim_.cancel(clr_timer_);
  }
  clr_idx_ = idx;
  if (idx >= 0) {
    flags_[static_cast<std::size_t>(idx)] |= ModeledRxInfo::kClr;
    schedule_clr_feedback();
  }
}

void ModeledReceiverBlock::schedule_clr_feedback() {
  if (clr_idx_ < 0 || !joined_) return;
  // The CLR reports once per RTT without suppression (§2.2, §2.5).
  clr_timer_ = sim_.in(rtt_[static_cast<std::size_t>(clr_idx_)], [this] {
    if (clr_idx_ < 0 || !joined_) return;
    send_feedback(clr_idx_);
    schedule_clr_feedback();
  });
}

void ModeledReceiverBlock::observe_suppression(const TfmccDataHeader& h) {
  if (h.round != round_) return;
  slowstart_round_ = h.slowstart;
  if (h.supp_rate_Bps >= 0.0) {
    supp_rate_Bps_ = h.supp_rate_Bps;
    supp_has_loss_ = h.supp_has_loss;
  }
}

void ModeledReceiverBlock::on_new_round(const TfmccDataHeader& h,
                                        SimTime now) {
  round_ = h.round;
  slowstart_round_ = h.slowstart;
  supp_rate_Bps_ = h.supp_rate_Bps;
  supp_has_loss_ = h.supp_has_loss;
  sim_.cancel(cand_timer_);
  candidates_.clear();
  next_candidate_ = 0;

  const int n = bcfg_.count;
  const double send_rate = h.send_rate_Bps;
  const int cap = candidate_cap();

  // Bounded max-heap keyed on due time: only the earliest `cap` timers can
  // possibly report (everything later is suppressed by them or by the full
  // tier), so the other n - cap receivers never materialise as events.
  auto heap_before = [](const Candidate& a, const Candidate& b) {
    return a.due < b.due || (a.due == b.due && a.idx < b.idx);
  };
  auto consider = [&](const Candidate& c) {
    if (candidates_.size() < static_cast<std::size_t>(cap)) {
      candidates_.push_back(c);
      std::push_heap(candidates_.begin(), candidates_.end(), heap_before);
    } else if (heap_before(c, candidates_.front())) {
      std::pop_heap(candidates_.begin(), candidates_.end(), heap_before);
      candidates_.back() = c;
      std::push_heap(candidates_.begin(), candidates_.end(), heap_before);
    }
  };

  if (h.slowstart) {
    // §2.6: every receiver's receive rate matters; the rate (and therefore
    // the bias ratio) is shared across the block.
    if (!recv_rate_.has_estimate()) return;
    double x = 1.0;
    if (send_rate > 0.0) {
      x = std::clamp(recv_rate_.rate_Bps(now) / send_rate, 0.0, 1.0);
    }
    const double own = recv_rate_.rate_Bps(now);
    for (int i = 0; i < n; ++i) {
      if (i == clr_idx_) continue;
      const double t = feedback_timer::draw(x, cfg_.timer, rng_);
      consider({now + h.fb_deadline * t, i, own});
    }
  } else {
    // Steady state: one batched equation evaluation over the contiguous RTT
    // array (shared p), then one timer draw per eligible receiver.
    const double p = loss_.loss_event_rate();
    if (p <= 0.0) return;  // calc rate infinite: nothing useful to report
    std::fill(ps_scratch_.begin(), ps_scratch_.end(), p);
    cfg_.equation->throughput_batch(cfg_.packet_bytes, rtt_.data(),
                                    ps_scratch_.data(), calc_scratch_.data(),
                                    static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (i == clr_idx_) continue;
      const double calc = calc_scratch_[static_cast<std::size_t>(i)];
      if (!(calc < send_rate)) continue;  // ineligible (also filters +inf)
      const double x =
          send_rate > 0.0 ? std::clamp(calc / send_rate, 0.0, 1.0) : 1.0;
      const double t = feedback_timer::draw(x, cfg_.timer, rng_);
      consider({now + h.fb_deadline * t, i, calc});
    }
  }

  std::sort(candidates_.begin(), candidates_.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.due < b.due || (a.due == b.due && a.idx < b.idx);
            });
  schedule_next_candidate();
}

void ModeledReceiverBlock::schedule_next_candidate() {
  if (next_candidate_ >= candidates_.size()) return;
  const SimTime due =
      std::max(sim_.now(), candidates_[next_candidate_].due);
  cand_timer_ = sim_.at(due, [this] { fire_candidate(); });
}

void ModeledReceiverBlock::fire_candidate() {
  if (next_candidate_ >= candidates_.size()) return;
  const Candidate c = candidates_[next_candidate_++];
  const SimTime now = sim_.now();
  // A receiver promoted to CLR mid-round reports periodically instead.
  if (joined_ && c.idx != clr_idx_ && !suppressed(c, now)) {
    send_feedback(c.idx);
  }
  schedule_next_candidate();
}

bool ModeledReceiverBlock::suppressed(const Candidate& c, SimTime now) const {
  if (supp_rate_Bps_ < 0.0) return false;
  // §2.5.2 at fire time: within a round the echoed rate r only decreases,
  // and the cancellation condition own >= r * (1 - delta) is monotone in r,
  // so evaluating against the latest observed echo is equivalent to the
  // full tier's cancel-on-first-satisfying-packet.
  double own;
  if (slowstart_round_) {
    // §2.6: loss reports can only be suppressed by other loss reports.
    if (loss_.has_loss() && !supp_has_loss_) return false;
    if (!loss_.has_loss() && supp_has_loss_) return true;
    own = recv_rate_.rate_Bps(now);
  } else {
    own = calc_rate_Bps(c.idx);
  }
  return supp_rate_Bps_ - own <= cfg_.delta * supp_rate_Bps_;
}

void ModeledReceiverBlock::send_feedback(int idx) {
  if (!joined_) return;
  const SimTime now = sim_.now();
  const auto i = static_cast<std::size_t>(idx);

  auto fb = sim_.make_packet();
  fb->src = tap_;
  fb->dst = session_.source();
  fb->sport = session_.data_port();
  fb->dport = session_.control_port();
  fb->size_bytes = cfg_.feedback_bytes;

  TfmccFeedbackHeader h;
  h.receiver = bcfg_.base_id + idx;
  h.round = round_;
  const double calc = calc_rate_Bps(idx);
  h.calc_rate_Bps = std::isfinite(calc) ? calc : -1.0;  // sentinel, as full tier
  h.recv_rate_Bps = recv_rate_.rate_Bps(now);
  h.loss_event_rate = loss_.loss_event_rate();
  h.has_rtt = (flags_[i] & ModeledRxInfo::kHasRtt) != 0;
  h.rtt = rtt_[i];
  h.has_loss = loss_.has_loss();
  h.ts = now;
  h.echo_ts = last_data_send_ts_;
  // Reduce the echo hold by the virtual detour so the sender-side sample
  // comes out at the modeled path RTT (tap RTT + 2 * extra_owd).
  SimTime hold = last_data_arrival_.is_infinite()
                     ? SimTime::zero()
                     : now - last_data_arrival_;
  hold -= extra_owd_[i] * 2.0;
  h.echo_delay = std::max(SimTime::zero(), hold);
  fb->header = h;

  session_.topology().node(tap_).send(std::move(fb));
  flags_[i] |= ModeledRxInfo::kReported;
  ++feedback_sent_;
}

}  // namespace tfmcc
