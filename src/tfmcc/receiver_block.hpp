#pragma once

#include <cstdint>
#include <vector>

#include "mcast/session.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/config.hpp"
#include "tfrc/loss_history.hpp"
#include "tfrc/seqno_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tfmcc {

/// Packed per-receiver view of the modeled tier — the tfrc_rx_info idiom:
/// everything the hybrid architecture keeps per silent receiver fits in a
/// dozen bytes (the block's SoA arrays store exactly these fields).
struct ModeledRxInfo {
  static constexpr std::uint8_t kHasRtt = 1u << 0;    // RTT measured via echo
  static constexpr std::uint8_t kReported = 1u << 1;  // sender has heard us
  static constexpr std::uint8_t kClr = 1u << 2;       // currently the CLR

  std::uint32_t rtt_us{0};        // current RTT estimate, microseconds
  std::uint32_t extra_owd_us{0};  // virtual access one-way delay offset
  std::uint8_t flags{0};

  bool has_rtt() const { return (flags & kHasRtt) != 0; }
  bool reported() const { return (flags & kReported) != 0; }
  bool is_clr() const { return (flags & kClr) != 0; }
};

/// The modeled-receiver tier of the hybrid full/model architecture.
///
/// One block stands in for `count` TFMCC receivers that share a physical
/// path (the "tap" node's multicast delivery): instead of `count`
/// heap-of-objects agents each with its own feedback timer, the block keeps
/// flat SoA arrays of the per-receiver state that actually differs — RTT
/// estimate, virtual access-delay offset, a flags byte (see ModeledRxInfo) —
/// and shares the state that is identical behind one tap by construction:
/// sequence space, loss-interval history and receive-rate meter (all loss
/// happens upstream of the tap, so every modeled receiver observes the same
/// packet stream).
///
/// Per data packet the block does O(1) work.  Per feedback round it batch-
/// draws the biased suppression timers over the contiguous receiver arrays
/// (one equation-backend batch call for the calculated rates, one RNG draw
/// per eligible receiver) and keeps only the earliest few contenders — the
/// candidate short-list is sized from the analytic expected-feedback model
/// (feedback_model::expected_messages), which bounds how many reports can
/// survive suppression.  Only those contenders materialise as scheduler
/// events and feedback packets; the silent majority never touches the
/// scheduler.  Receivers the sender singles out (the CLR, echo targets) are
/// tracked individually through the same arrays, so CLR duty, RTT
/// acquisition and suppression dynamics match the full tier.
///
/// Virtual access delays: modeled receiver i's path RTT is the tap's
/// physical RTT plus 2 * extra_owd(i), with the offsets stratified evenly
/// over [extra_owd_min, extra_owd_max].  Echoes addressed to i add the
/// detour when measuring, and feedback reduces its echo-hold time by the
/// same amount so the sender-side measurement also comes out at the modeled
/// RTT.
class ModeledReceiverBlock final : public Agent {
 public:
  struct BlockConfig {
    int count{1};              // modeled receivers represented by this block
    std::int32_t base_id{0};   // receiver ids [base_id, base_id + count)
    SimTime extra_owd_min{SimTime::zero()};
    SimTime extra_owd_max{SimTime::zero()};
    int max_candidates{64};    // hard cap on per-round feedback contenders
  };

  ModeledReceiverBlock(Simulator& sim, MulticastSession& session, NodeId tap,
                       BlockConfig block_cfg, TfmccConfig cfg, Rng rng);
  ~ModeledReceiverBlock() override;

  ModeledReceiverBlock(const ModeledReceiverBlock&) = delete;
  ModeledReceiverBlock& operator=(const ModeledReceiverBlock&) = delete;

  /// Graft the tap onto the session and start representing the receivers.
  void join();
  /// Prune; sends explicit leave reports (§4.2) for every receiver the
  /// sender has heard from, so CLR handoff works when the block held it.
  void leave();

  void handle_packet(const Packet& p) override;
  int endpoint_count() const override { return joined_ ? bcfg_.count : 1; }

  // --- state inspection ----------------------------------------------------
  int count() const { return bcfg_.count; }
  std::int32_t base_id() const { return bcfg_.base_id; }
  bool joined() const { return joined_; }
  bool hosts(std::int32_t receiver_id) const {
    return receiver_id >= bcfg_.base_id &&
           receiver_id < bcfg_.base_id + bcfg_.count;
  }
  int receivers_with_rtt() const { return with_rtt_; }
  std::int64_t feedback_sent() const { return feedback_sent_; }
  std::int64_t packets_received() const { return seq_.received(); }
  std::int64_t packets_lost() const { return seq_.lost(); }
  double loss_event_rate() const { return loss_.loss_event_rate(); }
  bool has_loss() const { return loss_.has_loss(); }
  double recv_rate_Bps() const { return recv_rate_.rate_Bps(sim_.now()); }
  std::int32_t clr_id() const {
    return clr_idx_ >= 0 ? bcfg_.base_id + clr_idx_ : kInvalidReceiver;
  }
  /// Packed snapshot of modeled receiver `i` (0-based block index).
  ModeledRxInfo rx_info(int i) const;
  /// Candidate short-list size used for the current round shape (analytic
  /// expected-feedback bound; exposed for tests).
  int candidate_cap();

 private:
  struct Candidate {
    SimTime due;
    std::int32_t idx;
    double calc_Bps;  // rate at draw time (fire-time check recomputes)
  };

  void on_data(const Packet& p, const TfmccDataHeader& h);
  void process_losses(const TfmccDataHeader& h, std::int64_t lost);
  void process_echo(const TfmccDataHeader& h, SimTime now);
  void update_clr_status(const TfmccDataHeader& h);
  void on_new_round(const TfmccDataHeader& h, SimTime now);
  void observe_suppression(const TfmccDataHeader& h);
  void fire_candidate();
  bool suppressed(const Candidate& c, SimTime now) const;
  void send_feedback(int idx);
  void schedule_clr_feedback();
  void schedule_next_candidate();
  /// Calculated rate of receiver `idx` with the shared p and its own RTT.
  double calc_rate_Bps(int idx) const;
  /// RTT the shared loss history aggregates with (mean over the block).
  SimTime representative_rtt() const;
  void set_rtt(int idx, SimTime rtt);

  Simulator& sim_;
  MulticastSession& session_;
  NodeId tap_;
  BlockConfig bcfg_;
  TfmccConfig cfg_;
  Rng rng_;

  bool joined_{false};

  // Shared measurement state (identical for every receiver behind the tap).
  SeqnoTracker seq_;
  LossHistory loss_;
  WindowedRateMeter recv_rate_;
  bool block_has_rtt_{false};  // first echo re-aggregates the shared history

  // Flat SoA per-receiver state (the only state that differs per receiver).
  std::vector<SimTime> rtt_;        // current estimate (initial_rtt at start)
  std::vector<SimTime> extra_owd_;  // virtual access one-way delay offset
  std::vector<std::uint8_t> flags_; // ModeledRxInfo flag bits
  double rtt_sum_s_{0.0};           // running sum for representative_rtt()
  int with_rtt_{0};

  // Per-round scratch, reused to keep steady state allocation-free.
  std::vector<double> ps_scratch_;
  std::vector<double> calc_scratch_;

  // Snapshot of the latest data packet (feedback echo fields).
  SimTime last_data_send_ts_{};
  SimTime last_data_arrival_{SimTime::infinity()};
  double last_send_rate_{0.0};

  // Feedback-round state.
  std::int32_t round_{-1};
  bool slowstart_round_{false};
  double supp_rate_Bps_{-1.0};
  bool supp_has_loss_{false};
  std::vector<Candidate> candidates_;  // ascending by due time
  std::size_t next_candidate_{0};
  EventId cand_timer_{};
  int cand_cap_{0};  // lazily sized from the expected-feedback model

  // CLR state (at most one of the modeled receivers at a time).
  std::int32_t clr_idx_{-1};
  EventId clr_timer_{};

  std::int64_t feedback_sent_{0};
};

}  // namespace tfmcc
