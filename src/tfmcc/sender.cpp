#include "tfmcc/sender.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "tfrc/equation.hpp"
#include "util/log.hpp"

namespace tfmcc {

TfmccSender::TfmccSender(Simulator& sim, MulticastSession& session,
                         TfmccConfig cfg, Rng rng)
    : sim_{sim},
      session_{session},
      cfg_{cfg},
      rng_{std::move(rng)},
      rate_{static_cast<double>(cfg.packet_bytes) /
            cfg.initial_rtt.to_seconds()} {
  // Initial rate: one packet per (initial) RTT, as in TFRC.
  echo_queue_.reserve(kMaxEchoQueue);
  session_.topology()
      .node(session_.source())
      .attach_agent(session_.control_port(), this);
}

TfmccSender::~TfmccSender() {
  session_.topology().node(session_.source()).detach_agent(session_.control_port());
}

void TfmccSender::start(SimTime at) {
  sim_.at(at, [this] {
    running_ = true;
    start_round();
    send_data();
  });
}

void TfmccSender::stop() {
  running_ = false;
  sim_.cancel(round_timer_);
  sim_.cancel(send_timer_);
}

int TfmccSender::known_receivers_with_rtt() const {
  int n = 0;
  for (const auto& [id, info] : receivers_) {
    if (info.has_rtt) ++n;
  }
  return n;
}

SimTime TfmccSender::max_rtt_estimate() const {
  // Receivers that have not yet measured their RTT operate with the initial
  // value, so the suppression window must span it (footnote 7 explains the
  // resulting multi-second feedback delay early in a session).
  SimTime mx = SimTime::zero();
  bool all_measured = !receivers_.empty();
  for (const auto& [id, info] : receivers_) {
    if (info.has_rtt) {
      mx = std::max(mx, info.rtt);
    } else {
      all_measured = false;
    }
  }
  if (!all_measured) mx = std::max(mx, cfg_.initial_rtt);
  return mx;
}

void TfmccSender::start_round() {
  const SimTime now = sim_.now();

  // Commit the slowstart target from the receive rates reported last round
  // (§2.6: the target increases only when feedback from a new round is in).
  if (slowstart_ && round_min_recv_ > 0.0) {
    ss_base_ = rate_;
    ss_target_ = std::max(cfg_.slowstart_mult * round_min_recv_, rate_);
    ss_commit_ = now;
  }
  round_min_recv_ = -1.0;

  if (!round_had_feedback_) {
    ++rounds_without_feedback_;
  } else {
    rounds_without_feedback_ = 0;
  }
  round_had_feedback_ = false;

  // Starvation safety: with no CLR and no receivers reporting at all, decay
  // the rate instead of transmitting open-loop.
  if (cfg_.halve_on_starvation && clr_ == kInvalidReceiver &&
      receivers_.empty() && rounds_without_feedback_ >= 2 && !slowstart_) {
    rate_ = std::max(rate_ * 0.5, min_rate_floor());
  }

  ++round_;
  round_start_ = now;
  round_min_rate_ = -1.0;
  round_min_has_loss_ = false;

  // T = max(t_mult * R_max, (c+1) * s / rate): the low-rate extension of
  // §2.5.3 keeps the suppression signal ahead of the feedback deadline even
  // when data packets (which carry the signal) are far apart.
  const double pkt_interval =
      static_cast<double>(cfg_.packet_bytes) / std::max(rate_, 1.0);
  round_T_ = std::max(cfg_.t_mult * max_rtt_estimate(),
                      SimTime::seconds((cfg_.low_rate_guard + 1) * pkt_interval));

  sim_.cancel(round_timer_);
  round_timer_ = sim_.in(round_T_, [this] {
    if (running_) start_round();
  });

  // CLR liveness: no report for clr_timeout_mult feedback delays means the
  // receiver crashed or became unreachable (§4.2).
  if (clr_ != kInvalidReceiver &&
      now - clr_last_fb_ > cfg_.clr_timeout_mult * round_T_) {
    clr_lost();
  }
}

TfmccEcho TfmccSender::pick_echo(SimTime now) {
  TfmccEcho echo;
  if (!echo_queue_.empty()) {
    // Lowest (priority, rate) wins: new CLRs first, then receivers without
    // an RTT, then other receivers, then the CLR; ties to the lowest rate.
    auto best = echo_queue_.begin();
    for (auto it = echo_queue_.begin(); it != echo_queue_.end(); ++it) {
      if (it->priority < best->priority ||
          (it->priority == best->priority && it->rate_Bps < best->rate_Bps)) {
        best = it;
      }
    }
    echo.receiver = best->receiver;
    echo.ts = best->ts;
    echo.delay = now - best->fb_arrival;
    echo_queue_.erase(best);
    return echo;
  }
  // Default: keep refreshing the CLR's measurement (§2.4.2).
  auto it = receivers_.find(clr_);
  if (it != receivers_.end()) {
    echo.receiver = clr_;
    echo.ts = it->second.last_fb_ts;
    echo.delay = now - it->second.last_fb_arrival;
  }
  return echo;
}

void TfmccSender::send_data() {
  if (!running_) return;
  const SimTime now = sim_.now();

  // Gradual slowstart ramp: interpolate from the committed base to the
  // target over one (maximum) RTT rather than jumping (§2.6).
  if (slowstart_ && ss_target_ > 0.0) {
    const double frac = std::min(
        1.0, (now - ss_commit_) / std::max(max_rtt_estimate(), SimTime::millis(1)));
    rate_ = ss_base_ + (ss_target_ - ss_base_) * frac;
  }
  if (slowstart_) peak_ss_rate_ = std::max(peak_ss_rate_, rate_);

  auto pkt = sim_.make_packet();
  pkt->src = session_.source();
  pkt->sport = session_.control_port();
  pkt->dport = session_.data_port();
  pkt->group = session_.group();
  pkt->size_bytes = cfg_.packet_bytes;

  TfmccDataHeader h;
  h.seqno = seqno_++;
  h.send_ts = now;
  h.send_rate_Bps = rate_;
  h.clr = clr_;
  h.slowstart = slowstart_;
  h.round = round_;
  h.fb_deadline = round_T_;
  h.supp_rate_Bps = round_min_rate_;
  h.supp_has_loss = round_min_has_loss_;
  h.echo = pick_echo(now);
  pkt->header = h;

  session_.send_from_source(std::move(pkt));
  ++data_sent_;

  const double gap_sec =
      static_cast<double>(cfg_.packet_bytes) / std::max(rate_, min_rate_floor());
  send_timer_ = sim_.in(SimTime::seconds(gap_sec), [this] { send_data(); });
}

void TfmccSender::handle_packet(const Packet& p) {
  if (const auto* f = p.tfmcc_feedback()) {
    ++feedback_received_;
    on_feedback(*f);
  }
}

void TfmccSender::set_clr(std::int32_t id, double rate, bool ramp) {
  if (cfg_.remember_previous_clr && clr_ != kInvalidReceiver && clr_ != id) {
    prev_clr_ = clr_;
    prev_clr_rate_ = clr_rate_;
    prev_clr_since_ = sim_.now();
  }
  clr_ = id;
  clr_rate_ = rate;
  clr_last_fb_ = sim_.now();
  ramp_ = ramp;
  auto it = receivers_.find(id);
  clr_rtt_ = (it != receivers_.end() && it->second.has_rtt) ? it->second.rtt
                                                            : cfg_.initial_rtt;
  clr_history_.emplace_back(sim_.now(), id);
}

void TfmccSender::clr_lost() {
  receivers_.erase(clr_);
  clr_ = kInvalidReceiver;
  // Select the lowest-rate receiver we know of; ramp to its rate gradually
  // (one packet per RTT) since the loss estimate at the new, higher rate is
  // not yet meaningful (§2.2).
  std::int32_t best = kInvalidReceiver;
  double best_rate = std::numeric_limits<double>::infinity();
  for (const auto& [id, info] : receivers_) {
    if (info.rate_Bps >= 0.0 && info.rate_Bps < best_rate) {
      best = id;
      best_rate = info.rate_Bps;
    }
  }
  if (best != kInvalidReceiver) {
    set_clr(best, best_rate, /*ramp=*/true);
  } else {
    // No remaining receiver has a usable rate estimate (e.g. the only
    // congested receiver left and the others have never seen loss, so they
    // never report in steady state).  Fall back to the conservative
    // slowstart probe: receivers answer with receive rates, the rate ramps
    // bounded by 2x the minimum receive rate, and the first loss event
    // produces a fresh CLR (§2.6 semantics, re-applied mid-session).
    slowstart_ = true;
    ss_target_ = -1.0;
    round_min_recv_ = -1.0;
  }
}

void TfmccSender::apply_clr_report(const ReceiverInfo& info, double eff,
                                   std::int32_t from) {
  clr_last_fb_ = sim_.now();
  if (info.has_rtt) clr_rtt_ = info.rtt;
  if (eff < 0.0) return;  // keepalive without a rate estimate
  clr_rate_ = eff;

  // Appendix C: if the new CLR's rate rises back above the previous CLR's
  // stored rate shortly after a switch, switch back instead of increasing.
  if (cfg_.remember_previous_clr && prev_clr_ != kInvalidReceiver &&
      prev_clr_ != from &&
      sim_.now() - prev_clr_since_ <= cfg_.previous_clr_hold &&
      eff > prev_clr_rate_ && receivers_.count(prev_clr_) > 0) {
    const double back_rate = std::min(prev_clr_rate_, rate_);
    set_clr(prev_clr_, back_rate, /*ramp=*/false);
    prev_clr_ = kInvalidReceiver;
    return;
  }

  double new_rate;
  if (eff <= rate_) {
    new_rate = eff;  // decreases take effect immediately (§2.2)
    ramp_ = false;
  } else if (ramp_) {
    // After a CLR change the increase is limited to one packet per RTT
    // (TCP's additive-increase constant, §2.2).
    const double step = cfg_.increase_limit_pkts *
                        static_cast<double>(cfg_.packet_bytes) /
                        std::max(clr_rtt_.to_seconds(), 1e-3);
    new_rate = std::min(eff, rate_ + step);
    if (new_rate >= eff) ramp_ = false;
  } else {
    new_rate = eff;
  }
  // Never send at more than recv_rate_cap_mult times what the CLR actually
  // receives (TFRC's receive-rate cap; bounds overshoot after estimation
  // glitches).
  if (info.recv_rate_Bps > 0.0) {
    new_rate = std::min(new_rate, cfg_.recv_rate_cap_mult * info.recv_rate_Bps);
  }
  rate_ = std::max(new_rate, min_rate_floor());
}

void TfmccSender::on_feedback(const TfmccFeedbackHeader& f) {
  const SimTime now = sim_.now();
  round_had_feedback_ = true;

  if (f.leaving) {
    receivers_.erase(f.receiver);
    echo_queue_.erase(
        std::remove_if(echo_queue_.begin(), echo_queue_.end(),
                       [&](const PendingEcho& e) { return e.receiver == f.receiver; }),
        echo_queue_.end());
    if (f.receiver == clr_) clr_lost();
    if (f.receiver == prev_clr_) prev_clr_ = kInvalidReceiver;
    return;
  }

  // Sender-side RTT measurement (§2.4.4): echo of our data timestamp minus
  // the receiver's hold time.
  SimTime sender_rtt = SimTime::zero();
  if (f.echo_ts > SimTime::zero()) {
    const SimTime sample = now - f.echo_ts - f.echo_delay;
    if (sample > SimTime::zero()) sender_rtt = sample;
  }

  // Effective calculated rate: reports computed with the initial RTT are
  // recomputed with the sender-side measurement before being acted upon.
  double eff = f.calc_rate_Bps;
  if (!f.has_rtt && f.loss_event_rate > 0.0 && sender_rtt > SimTime::zero()) {
    eff = cfg_.equation->throughput_Bps(cfg_.packet_bytes, sender_rtt,
                                        f.loss_event_rate);
  }

  auto& info = receivers_[f.receiver];
  const bool causes_clr_switch =
      !slowstart_ && eff >= 0.0 &&
      (clr_ == kInvalidReceiver || (f.receiver != clr_ && eff < rate_)) &&
      f.receiver != clr_;
  info.rate_Bps = eff;
  info.recv_rate_Bps = f.recv_rate_Bps;
  info.loss_event_rate = f.loss_event_rate;
  info.has_rtt = f.has_rtt;
  info.rtt = f.has_rtt ? f.rtt
                       : (sender_rtt > SimTime::zero() ? sender_rtt
                                                       : cfg_.initial_rtt);
  info.has_loss = f.has_loss;
  info.last_fb = now;
  info.last_fb_ts = f.ts;
  info.last_fb_arrival = now;

  // Echo-slot queue (§2.4.2 priority order).
  int prio;
  if (causes_clr_switch) {
    prio = 0;
  } else if (!f.has_rtt) {
    prio = 1;
  } else if (f.receiver != clr_) {
    prio = 2;
  } else {
    prio = 3;
  }
  auto it = std::find_if(echo_queue_.begin(), echo_queue_.end(),
                         [&](const PendingEcho& e) { return e.receiver == f.receiver; });
  const PendingEcho pe{prio, eff < 0.0 ? f.recv_rate_Bps : eff, f.receiver,
                       f.ts, now};
  if (it != echo_queue_.end()) {
    *it = pe;
  } else if (echo_queue_.size() < kMaxEchoQueue) {
    echo_queue_.push_back(pe);
  } else {
    // Queue full: replace the worst entry if we beat it.
    auto worst = std::max_element(
        echo_queue_.begin(), echo_queue_.end(),
        [](const PendingEcho& a, const PendingEcho& b) {
          return std::tie(a.priority, a.rate_Bps) < std::tie(b.priority, b.rate_Bps);
        });
    if (std::tie(pe.priority, pe.rate_Bps) <
        std::tie(worst->priority, worst->rate_Bps)) {
      *worst = pe;
    }
  }

  // Suppression echo: track this round's lowest useful report (§2.5.2).  In
  // slowstart the comparison value is the receive rate and loss reports
  // dominate no-loss reports (§2.6).
  if (f.round == round_) {
    const double value = slowstart_ ? f.recv_rate_Bps : eff;
    if (value >= 0.0) {
      bool replace;
      if (round_min_rate_ < 0.0) {
        replace = true;
      } else if (slowstart_ && f.has_loss != round_min_has_loss_) {
        replace = f.has_loss;  // loss reports dominate
      } else {
        replace = value < round_min_rate_;
      }
      if (replace) {
        round_min_rate_ = value;
        round_min_has_loss_ = f.has_loss;
      }
    }
  }

  if (slowstart_) {
    if (f.has_loss) {
      // First loss anywhere in the group terminates slowstart (§2.6).
      slowstart_ = false;
      ss_target_ = -1.0;
      ss_exit_time_ = now;
      if (eff >= 0.0) {
        set_clr(f.receiver, eff, /*ramp=*/false);
        rate_ = std::max(std::min(rate_, eff), min_rate_floor());
      } else {
        set_clr(f.receiver, rate_, /*ramp=*/false);
      }
    } else if (f.recv_rate_Bps > 0.0) {
      round_min_recv_ = round_min_recv_ < 0.0
                            ? f.recv_rate_Bps
                            : std::min(round_min_recv_, f.recv_rate_Bps);
    }
    return;
  }

  // Steady state.
  if (clr_ == kInvalidReceiver) {
    if (eff >= 0.0) {
      set_clr(f.receiver, eff, /*ramp=*/false);
      rate_ = std::max(std::min(rate_, eff), min_rate_floor());
    }
    return;
  }
  if (f.receiver == clr_) {
    apply_clr_report(info, eff, f.receiver);
    return;
  }
  if (eff >= 0.0 && eff < rate_) {
    // A receiver reports a lower acceptable rate: it becomes the CLR and the
    // rate drops immediately (§2.2).
    set_clr(f.receiver, eff, /*ramp=*/false);
    rate_ = std::max(eff, min_rate_floor());
  }
}

}  // namespace tfmcc
