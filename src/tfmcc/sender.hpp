#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mcast/session.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/config.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {

/// The TFMCC sender (§2.2, §2.4.4, §2.5, §2.6).
///
/// Runs the rate-control loop driven by receiver reports: tracks the current
/// limiting receiver (CLR), manages feedback rounds and the suppression echo,
/// prioritises RTT-measurement echoes, and performs the conservative
/// multicast slowstart.
class TfmccSender final : public Agent {
 public:
  TfmccSender(Simulator& sim, MulticastSession& session, TfmccConfig cfg,
              Rng rng);
  ~TfmccSender() override;

  TfmccSender(const TfmccSender&) = delete;
  TfmccSender& operator=(const TfmccSender&) = delete;

  void start(SimTime at);
  void stop();

  void handle_packet(const Packet& p) override;  // receiver reports

  // --- state inspection ----------------------------------------------------
  double rate_Bps() const { return rate_; }
  bool in_slowstart() const { return slowstart_; }
  std::int32_t clr() const { return clr_; }
  std::int32_t round() const { return round_; }
  SimTime round_duration() const { return round_T_; }
  std::int64_t data_sent() const { return data_sent_; }
  std::int64_t feedback_received() const { return feedback_received_; }
  int known_receivers() const { return static_cast<int>(receivers_.size()); }
  int known_receivers_with_rtt() const;
  /// Highest rate reached before slowstart terminated (fig. 14).
  double peak_slowstart_rate_Bps() const { return peak_ss_rate_; }
  SimTime slowstart_exit_time() const { return ss_exit_time_; }
  /// Times at which the CLR changed (responsiveness figures).
  const std::vector<std::pair<SimTime, std::int32_t>>& clr_history() const {
    return clr_history_;
  }

 private:
  struct ReceiverInfo {
    double rate_Bps{-1.0};  // RTT-adjusted calculated rate; < 0: no estimate
    double recv_rate_Bps{0.0};
    double loss_event_rate{0.0};
    bool has_rtt{false};
    SimTime rtt{};
    bool has_loss{false};
    SimTime last_fb{};
    SimTime last_fb_ts{};       // receiver timestamp (echo source)
    SimTime last_fb_arrival{};  // our arrival time (echo hold computation)
  };

  struct PendingEcho {
    int priority{3};  // 0: new CLR, 1: no RTT yet, 2: non-CLR, 3: CLR
    double rate_Bps{0.0};
    std::int32_t receiver{kInvalidReceiver};
    SimTime ts{};
    SimTime fb_arrival{};
  };

  void send_data();
  void on_feedback(const TfmccFeedbackHeader& f);
  void start_round();
  void set_clr(std::int32_t id, double rate, bool ramp);
  void clr_lost();
  void apply_clr_report(const ReceiverInfo& info, double eff,
                        std::int32_t from);
  SimTime max_rtt_estimate() const;
  TfmccEcho pick_echo(SimTime now);
  double min_rate_floor() const {
    return static_cast<double>(cfg_.packet_bytes) /
           cfg_.initial_rtt.to_seconds() * 0.5;
  }

  Simulator& sim_;
  MulticastSession& session_;
  TfmccConfig cfg_;
  Rng rng_;

  bool running_{false};
  double rate_;  // bytes/second
  std::int64_t seqno_{0};

  // Slowstart (§2.6).
  bool slowstart_{true};
  double ss_target_{-1.0};       // committed target rate for this round
  double ss_base_{0.0};          // rate when the target was committed
  SimTime ss_commit_{};
  double round_min_recv_{-1.0};  // min receive rate reported this round
  double peak_ss_rate_{0.0};
  SimTime ss_exit_time_{SimTime::infinity()};

  // CLR state (§2.2).
  std::int32_t clr_{kInvalidReceiver};
  double clr_rate_{0.0};
  SimTime clr_rtt_{};
  SimTime clr_last_fb_{};
  bool ramp_{false};  // increase limited to 1 pkt/RTT after CLR change
  std::vector<std::pair<SimTime, std::int32_t>> clr_history_;

  // Appendix C: previous-CLR memory.
  std::int32_t prev_clr_{kInvalidReceiver};
  double prev_clr_rate_{0.0};
  SimTime prev_clr_since_{};

  // Feedback round state (§2.5).
  std::int32_t round_{0};
  SimTime round_T_{};
  SimTime round_start_{};
  double round_min_rate_{-1.0};  // suppression echo value
  bool round_min_has_loss_{false};
  std::int32_t rounds_without_feedback_{0};
  bool round_had_feedback_{false};
  EventId round_timer_{};
  EventId send_timer_{};

  std::map<std::int32_t, ReceiverInfo> receivers_;
  std::vector<PendingEcho> echo_queue_;
  static constexpr std::size_t kMaxEchoQueue = 64;

  std::int64_t data_sent_{0};
  std::int64_t feedback_received_{0};
};

}  // namespace tfmcc
