#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tfmcc/flow.hpp"

namespace tfmcc {

/// Multiplexes N concurrent TFMCC sessions over one topology.
///
/// Each session is a full TfmccFlow (its own multicast group, sender and
/// receiver set) with a disjoint (data_port, control_port) pair, so any set
/// of nodes can host receivers — or the sender — of several sessions at
/// once without the agents shadowing each other.  RNG streams are likewise
/// partitioned per session, so the randomness one session consumes never
/// perturbs another: adding a ninth session leaves sessions one through
/// eight bit-identical.
class SessionManager {
 public:
  /// First port of the managed range.  Chosen above the single-session
  /// convention (control 1, data 2) and the TCP harness ports, so a managed
  /// session can share a topology with both.
  static constexpr PortId kPortBase = 100;
  /// RNG substream spacing between sessions.  A TfmccFlow consumes streams
  /// [base, base + 1 + n_receivers) for full receivers and
  /// [base + 500'000, ...) for modeled blocks; one million keeps sessions
  /// disjoint up to ~half a million receivers each.
  static constexpr std::uint64_t kRngStride = 1'000'000;

  SessionManager(Simulator& sim, Topology& topo,
                 std::uint64_t rng_stream_base = 7000)
      : sim_{sim}, topo_{topo}, rng_stream_base_{rng_stream_base} {}

  /// Create a session sourced at `source`.  Returns its index.
  int add_session(NodeId source, TfmccConfig cfg = {},
                  SimTime bin_width = SimTime::seconds(1.0)) {
    const auto i = static_cast<int>(flows_.size());
    flows_.push_back(std::make_unique<TfmccFlow>(
        sim_, topo_, source, cfg, bin_width,
        rng_stream_base_ + kRngStride * static_cast<std::uint64_t>(i),
        data_port(i), control_port(i)));
    return i;
  }

  /// Ports assigned to session `i` (valid before add_session, too: the
  /// mapping is positional, not stateful).
  static PortId data_port(int i) {
    return static_cast<PortId>(kPortBase + 2 * i);
  }
  static PortId control_port(int i) {
    return static_cast<PortId>(kPortBase + 2 * i + 1);
  }

  TfmccFlow& flow(int i) { return *flows_.at(static_cast<std::size_t>(i)); }
  const TfmccFlow& flow(int i) const {
    return *flows_.at(static_cast<std::size_t>(i));
  }
  int session_count() const { return static_cast<int>(flows_.size()); }

  /// Start every sender, staggered by `stagger` per session so the initial
  /// slowstarts do not phase-lock.
  void start_all(SimTime first_at = SimTime::zero(),
                 SimTime stagger = SimTime::millis(37)) {
    for (int i = 0; i < session_count(); ++i) {
      flow(i).sender().start(first_at + stagger * static_cast<std::int64_t>(i));
    }
  }

  /// Mean goodput (kbit/s) of session `i` over [from, to), averaged across
  /// its receivers — the per-session throughput vector the fairness engine
  /// consumes.
  double session_mean_kbps(int i, SimTime from, SimTime to) const {
    const TfmccFlow& f = flow(i);
    if (f.receiver_count() == 0) return 0.0;
    double total = 0.0;
    for (int r = 0; r < f.receiver_count(); ++r) {
      total += f.goodput(r).mean_kbps(from, to);
    }
    return total / static_cast<double>(f.receiver_count());
  }

  std::vector<double> all_session_mean_kbps(SimTime from, SimTime to) const {
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(session_count()));
    for (int i = 0; i < session_count(); ++i) {
      v.push_back(session_mean_kbps(i, from, to));
    }
    return v;
  }

 private:
  Simulator& sim_;
  Topology& topo_;
  std::uint64_t rng_stream_base_;
  std::vector<std::unique_ptr<TfmccFlow>> flows_;
};

}  // namespace tfmcc
