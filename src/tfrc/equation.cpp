#include "tfrc/equation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tfmcc::tcp_model {

double throughput_Bps(double packet_bytes, SimTime rtt, double p, double b) {
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  p = std::min(p, 1.0);
  const double r = rtt.to_seconds();
  const double t_rto = 4.0 * r;
  const double term_cwnd = r * std::sqrt(2.0 * b * p / 3.0);
  const double term_rto = t_rto *
                          std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0)) *
                          p * (1.0 + 32.0 * p * p);
  return packet_bytes / (term_cwnd + term_rto);
}

double loss_for_throughput(double packet_bytes, SimTime rtt, double rate_Bps,
                           double b) {
  if (rate_Bps <= 0.0) return 1.0;
  if (rate_Bps >= throughput_Bps(packet_bytes, rtt, kMinLossRate, b)) {
    return kMinLossRate;
  }
  // throughput is strictly decreasing in p: bisection.
  double lo = kMinLossRate, hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (throughput_Bps(packet_bytes, rtt, mid, b) > rate_Bps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double simple_throughput_Bps(double packet_bytes, SimTime rtt, double p) {
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  return packet_bytes * kMathisConstant / (rtt.to_seconds() * std::sqrt(p));
}

double simple_loss_for_throughput(double packet_bytes, SimTime rtt,
                                  double rate_Bps) {
  if (rate_Bps <= 0.0) return 1.0;
  const double root = packet_bytes * kMathisConstant /
                      (rtt.to_seconds() * rate_Bps);
  return std::clamp(root * root, kMinLossRate, 1.0);
}

double loss_events_per_rtt(double p, double b) {
  // L = p * (X * R / s); X*R/s is the rate in packets per RTT, so the s and
  // R dependencies cancel and any values may be used.
  constexpr double s = 1000.0;
  const SimTime r = SimTime::millis(100);
  const double pkts_per_rtt = throughput_Bps(s, r, p, b) * r.to_seconds() / s;
  return p * pkts_per_rtt;
}

}  // namespace tfmcc::tcp_model
