#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace tfmcc {

/// The TCP throughput models of the paper.
///
/// Equation (1) is the full TCP-Reno response function of Padhye et al.
/// (used by TFRC and TFMCC as the control equation); `simple_` is the
/// Mathis et al. square-root model of Equation (4) (used for loss-history
/// initialisation, Appendix B, and by PGMCC-style acker election).
namespace tcp_model {

/// Expected TCP throughput in bytes/second (Padhye model).
///
///   X = s / ( R*sqrt(2bp/3) + t_RTO * min(1, 3*sqrt(3bp/8)) * p * (1+32p^2) )
///
/// with t_RTO = 4R.  `b` is the number of packets acknowledged per ACK; the
/// protocol uses b = 1 (our TCP baseline ACKs every packet), while the
/// paper's fig. 17 curve corresponds to b = 2 (delayed ACKs).  `p` is the
/// loss event rate in (0, 1]; p <= 0 returns +inf.
double throughput_Bps(double packet_bytes, SimTime rtt, double p,
                      double b = 1.0);

/// Loss event rate p that yields `rate_Bps` in the full model (inverse of
/// `throughput_Bps`, solved by bisection).  Clamped to [kMinLossRate, 1].
double loss_for_throughput(double packet_bytes, SimTime rtt, double rate_Bps,
                           double b = 1.0);

/// Simplified (Mathis) model:  X = s * k / (R * sqrt(p)),  k = sqrt(3/2).
double simple_throughput_Bps(double packet_bytes, SimTime rtt, double p);

/// Inverse of the simplified model:  p = (s*k / (R*X))^2.
double simple_loss_for_throughput(double packet_bytes, SimTime rtt,
                                  double rate_Bps);

/// Loss events per RTT at steady state (Appendix A, fig. 17):
///   L(p) = p * X(p) * R / s
/// whose maximum over p is ~0.13 with the paper's b = 2 model (the basis of
/// the initial-RTT safety argument; with b = 1 the peak is ~0.19).
double loss_events_per_rtt(double p, double b = 2.0);

constexpr double kMinLossRate = 1e-8;
constexpr double kMathisConstant = 1.224744871391589;  // sqrt(3/2)

}  // namespace tcp_model

}  // namespace tfmcc
