#include "tfrc/equation_backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tfrc/equation.hpp"
#include "tfrc/equation_fixed.hpp"

namespace tfmcc {

void EquationBackend::throughput_batch(double packet_bytes,
                                       const SimTime* rtts, const double* ps,
                                       double* out_Bps, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out_Bps[i] = throughput_Bps(packet_bytes, rtts[i], ps[i]);
  }
}

namespace {

class FloatEquationBackend final : public EquationBackend {
 public:
  std::string_view name() const override { return "float"; }

  double throughput_Bps(double packet_bytes, SimTime rtt,
                        double p) const override {
    return tcp_model::throughput_Bps(packet_bytes, rtt, p);
  }

  double loss_for_throughput(double packet_bytes, SimTime rtt,
                             double rate_Bps) const override {
    return tcp_model::loss_for_throughput(packet_bytes, rtt, rate_Bps);
  }
};

/// Unit conversions at the double/integer boundary.  Saturating, so extreme
/// inputs degrade to the table's clamp contract instead of overflowing.
std::uint32_t to_packet_bytes(double packet_bytes) {
  const double b = std::clamp(packet_bytes, 1.0, 1e6);
  return static_cast<std::uint32_t>(std::lround(b));
}

std::uint32_t to_rtt_us(SimTime rtt) {
  const std::int64_t us = rtt.count_nanos() / 1000;
  if (us <= 0) return 1;
  return static_cast<std::uint32_t>(
      std::min<std::int64_t>(us, std::numeric_limits<std::uint32_t>::max()));
}

std::uint32_t to_p_scaled(double p) {
  const double scaled = p * fixedpoint::kPScale;
  if (scaled >= fixedpoint::kPScale) return fixedpoint::kPScale;
  if (scaled <= 1.0) return 1;  // lookup_f saturates at kSmallestP
  // Positive and bounded here, so +0.5-and-truncate rounds like lround
  // without the libm call in the batch hot loop.
  return static_cast<std::uint32_t>(scaled + 0.5);
}

class FixedEquationBackend final : public EquationBackend {
 public:
  std::string_view name() const override { return "fixed"; }

  double throughput_Bps(double packet_bytes, SimTime rtt,
                        double p) const override {
    if (p <= 0.0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(fixedpoint::calc_x(
        to_packet_bytes(packet_bytes), to_rtt_us(rtt), to_p_scaled(p)));
  }

  double loss_for_throughput(double packet_bytes, SimTime rtt,
                             double rate_Bps) const override {
    if (rate_Bps <= 0.0) return 1.0;
    const double capped = std::min(rate_Bps, 1e15);
    const std::uint32_t p_scaled = fixedpoint::loss_for_rate(
        to_packet_bytes(packet_bytes), to_rtt_us(rtt),
        static_cast<std::uint64_t>(capped));
    return static_cast<double>(p_scaled) / fixedpoint::kPScale;
  }

  void throughput_batch(double packet_bytes, const SimTime* rtts,
                        const double* ps, double* out_Bps,
                        std::size_t n) const override {
    // Hoist the shared numerator; the inner loop is integer-only (one
    // 64-bit division per receiver) plus the boundary conversions.
    const std::uint64_t num =
        static_cast<std::uint64_t>(to_packet_bytes(packet_bytes)) *
        (static_cast<std::uint64_t>(1'000'000) * fixedpoint::kFScale);
    for (std::size_t i = 0; i < n; ++i) {
      if (ps[i] <= 0.0) {
        out_Bps[i] = std::numeric_limits<double>::infinity();
        continue;
      }
      const std::uint64_t f = fixedpoint::lookup_f(to_p_scaled(ps[i]));
      const std::uint64_t r = to_rtt_us(rtts[i]);
      out_Bps[i] = static_cast<double>(num / (r * f));
    }
  }
};

}  // namespace

const EquationBackend& float_equation_backend() {
  static const FloatEquationBackend backend;
  return backend;
}

const EquationBackend& fixed_equation_backend() {
  static const FixedEquationBackend backend;
  return backend;
}

const EquationBackend* find_equation_backend(std::string_view name) {
  if (name == "float") return &float_equation_backend();
  if (name == "fixed") return &fixed_equation_backend();
  return nullptr;
}

}  // namespace tfmcc
