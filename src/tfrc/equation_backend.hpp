#pragma once

#include <cstddef>
#include <string_view>

#include "util/sim_time.hpp"

namespace tfmcc {

/// Pluggable evaluation strategy for the TCP throughput equation — the one
/// computation TFMCC performs per receiver per feedback round, and therefore
/// the kernel the batched-receiver scaling work hinges on.
///
/// Two implementations ship:
///   * "float": double-precision Padhye evaluation (tcp_model::*) — the
///     reference the paper's figures were produced with; the default, so all
///     golden scenario outputs stay byte-identical.
///   * "fixed": scaled-integer table-driven evaluation (fixedpoint::*, the
///     Linux DCCP/TFRC idiom) — division-light, branch-predictable, and
///     batchable; agrees with "float" to within table quantisation (see the
///     ablation_fixedpoint scenario for the measured fidelity envelope).
///
/// Scenarios select a backend with `--set equation_backend=float|fixed`; the
/// choice is carried on TfmccConfig / scaling::ModelConfig into every
/// receiver, sender and analytic model of the run.
class EquationBackend {
 public:
  virtual ~EquationBackend() = default;

  /// Registry name ("float" / "fixed"), as accepted by the scenario knob.
  virtual std::string_view name() const = 0;

  /// Expected TCP throughput in bytes/second at loss event rate `p`;
  /// +infinity when p <= 0 (no loss measured yet).
  virtual double throughput_Bps(double packet_bytes, SimTime rtt,
                                double p) const = 0;

  /// Loss event rate that yields `rate_Bps` (inverse direction, used for
  /// Appendix B loss-history initialisation).
  virtual double loss_for_throughput(double packet_bytes, SimTime rtt,
                                     double rate_Bps) const = 0;

  /// Batched SoA evaluation over a receiver block:
  /// out[i] = throughput_Bps(packet_bytes, rtts[i], ps[i]).  The base
  /// implementation loops the scalar call; backends override it when they
  /// can hoist per-batch work (the fixed backend converts units once and
  /// runs an integer-only inner loop).
  virtual void throughput_batch(double packet_bytes, const SimTime* rtts,
                                const double* ps, double* out_Bps,
                                std::size_t n) const;
};

/// The process-wide backend instances (stateless, shareable across threads).
const EquationBackend& float_equation_backend();
const EquationBackend& fixed_equation_backend();

/// Backend registered under `name`, or nullptr when unknown.
const EquationBackend* find_equation_backend(std::string_view name);

}  // namespace tfmcc
