#pragma once

#include <cstddef>
#include <cstdint>

namespace tfmcc {

/// Scaled-integer, table-driven evaluation of the TCP throughput equation —
/// the Linux DCCP/TFRC idiom (tfrc_calc_x / tfrc_calc_x_reverse_lookup):
/// branchless in the common case, one 64-bit division per evaluation, no
/// floating point anywhere on the runtime path.
///
/// The control equation X = s / (R * f(p)) factors all p-dependence into
///   f(p) = sqrt(2bp/3) + t_RTO/R * min(1, 3*sqrt(3bp/8)) * p * (1 + 32p^2)
/// with b = 1 and t_RTO = 4R — exactly the denominator of
/// tcp_model::throughput_Bps, so the two backends agree up to table
/// quantisation.  f is precomputed into two lookup segments (a fine one for
/// p <= 0.05, where the curve is steep, and a coarse one for 0.05 < p <= 1)
/// and linearly interpolated; the rate->loss direction binary-searches the
/// same table (reverse lookup).
///
/// Units: packet size in bytes, RTT in microseconds, rates in bytes/second,
/// loss event rate scaled by kPScale (p = 1.0 <-> 1'000'000).
namespace fixedpoint {

/// Loss event rate scale: p_scaled = p * kPScale.
inline constexpr std::uint32_t kPScale = 1'000'000;
/// Scale of stored f(p) values: f_scaled = f * kFScale.
inline constexpr std::uint32_t kFScale = 1'000'000;
/// Smallest representable loss event rate (1e-4); smaller inputs saturate
/// here, mirroring the kernel's TFRC_SMALLEST_P contract.  Below this the
/// equation is so flat that a table would need to grow 100x for little
/// control benefit.
inline constexpr std::uint32_t kSmallestP = 100;
/// Boundary between the fine and coarse table segments (p = 0.05).
inline constexpr std::uint32_t kSplitP = 50'000;
/// Entries per segment; fine step = 100 (1e-4 in p), coarse step = 1900.
inline constexpr std::size_t kTableSize = 500;
inline constexpr std::uint32_t kSmallStep = kSplitP / kTableSize;
inline constexpr std::uint32_t kLargeStep = (kPScale - kSplitP) / kTableSize;

/// Floor of sqrt(x) for the full 64-bit range (bitwise digit-by-digit; no
/// floating point, so results are identical on every platform).
std::uint32_t isqrt64(std::uint64_t x);

/// sqrt scaled by 2^5: isqrt(sample << 10), never zero (a zero sample is
/// treated as 1 so sqrt(x)/sqrt(y) expressions cannot divide by zero).
/// Intended for ratios, where the scale factor cancels.
std::uint32_t scaled_sqrt(std::uint32_t sample);

/// Integer exponentially weighted moving average with `weight` tenths of
/// history retention (weight 9 == keep 90% of the average per sample).  An
/// average of 0 means "no estimate yet" and bootstraps to the sample.
std::uint32_t ewma(std::uint32_t avg, std::uint32_t newval,
                   std::uint32_t weight);

/// f(p) scaled by kFScale, linearly interpolated from the lookup table.
/// `p_scaled` is clamped to [kSmallestP, kPScale].
std::uint32_t lookup_f(std::uint32_t p_scaled);

/// Throughput equation: X in bytes/second for packet size `s` bytes, RTT
/// `rtt_us` microseconds (0 is treated as 1) and loss event rate
/// `p_scaled` (clamped to [kSmallestP, kPScale]).
std::uint64_t calc_x(std::uint32_t s, std::uint32_t rtt_us,
                     std::uint32_t p_scaled);

/// Inverse direction of the table: the p_scaled whose f(p) equals `fvalue`
/// (f scaled by kFScale), by binary search + interpolation.  Saturates to
/// kSmallestP below the table floor and kPScale above its ceiling.
std::uint32_t calc_x_reverse_lookup(std::uint64_t fvalue);

/// Loss event rate (scaled) that yields `rate_Bps` — the integer analogue
/// of tcp_model::loss_for_throughput, via reverse lookup instead of
/// bisecting the equation.
std::uint32_t loss_for_rate(std::uint32_t s, std::uint32_t rtt_us,
                            std::uint64_t rate_Bps);

/// Batched SoA evaluation: out[i] = calc_x(s, rtt_us[i], p_scaled[i]).
/// This is the kernel the batched-receiver scaling work feeds: one shared
/// numerator, contiguous integer loads, no per-element branching beyond the
/// clamp.
void calc_x_batch(std::uint32_t s, const std::uint32_t* rtt_us,
                  const std::uint32_t* p_scaled, std::uint64_t* out_Bps,
                  std::size_t n);

}  // namespace fixedpoint

}  // namespace tfmcc
