#include "tfrc/loss_history.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tfmcc {

LossHistory::LossHistory(int depth)
    : depth_{std::max(2, depth)}, weights_{weights(depth_)} {}

std::vector<double> LossHistory::weights(int depth) {
  // TFRC profile: w_i = min(1, 2*(n-i)/(n+2)), newest first.  For n=8 this
  // is {1,1,1,1,0.8,0.6,0.4,0.2} == the paper's {5,5,5,5,4,3,2,1}/5.
  std::vector<double> w(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    w[static_cast<std::size_t>(i)] =
        std::min(1.0, 2.0 * static_cast<double>(depth - i) /
                          static_cast<double>(depth + 2));
  }
  return w;
}

void LossHistory::on_packet_received() {
  open_count_ += 1.0;
  recv_gap_ += 1.0;
}

bool LossHistory::on_packet_lost(SimTime loss_time, SimTime rtt) {
  loss_log_.push_back({loss_time, recv_gap_});
  recv_gap_ = 0.0;
  if (loss_log_.size() > kMaxLossLog) loss_log_.pop_front();

  const bool new_event =
      event_start_.is_infinite() || loss_time - event_start_ > rtt;
  if (new_event) {
    close_open_interval();
    event_start_ = loss_time;
    ++events_;
  }
  return new_event;
}

void LossHistory::close_open_interval() {
  intervals_.push_front(open_count_);
  open_count_ = 0.0;
  if (intervals_.size() > static_cast<std::size_t>(depth_)) {
    intervals_.pop_back();
    initial_synthetic_ = false;  // the synthetic interval aged out
  }
}

double LossHistory::average_interval() const {
  if (intervals_.empty()) return 0.0;

  const auto m = std::min<std::size_t>(intervals_.size(),
                                       static_cast<std::size_t>(depth_));
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    num += weights_[i] * intervals_[i];
    den += weights_[i];
  }
  const double avg_closed = num / den;

  // Include the open interval (shifting everything one slot older) only if
  // doing so *raises* the average, i.e. lowers p (paper §2.3).
  double num_o = weights_[0] * open_count_, den_o = weights_[0];
  const auto mo = std::min<std::size_t>(intervals_.size(),
                                        static_cast<std::size_t>(depth_) - 1);
  for (std::size_t i = 0; i < mo; ++i) {
    num_o += weights_[i + 1] * intervals_[i];
    den_o += weights_[i + 1];
  }
  const double avg_open = num_o / den_o;

  return std::max(avg_closed, avg_open);
}

double LossHistory::loss_event_rate() const {
  const double avg = average_interval();
  return avg > 0.0 ? 1.0 / avg : 0.0;
}

void LossHistory::init_first_interval(double interval) {
  assert(!intervals_.empty());
  interval = std::max(1.0, interval);
  intervals_.front() = interval;
  initial_synthetic_ = true;
  synthetic_value_ = interval;
}

void LossHistory::rescale_initial_interval(SimTime rtt_real, SimTime rtt_init) {
  if (!initial_synthetic_ || intervals_.empty()) return;
  const double ratio = rtt_real / rtt_init;
  const double factor = ratio * ratio;  // simplified model: I' = I*(R/R0)^2
  auto& oldest = intervals_.back();
  oldest = std::max(1.0, oldest * factor);
  initial_synthetic_ = false;
}

void LossHistory::reaggregate(SimTime rtt) {
  if (loss_log_.empty()) return;

  std::vector<double> closed;  // oldest -> newest
  double acc = 0.0;
  SimTime ev_start = SimTime::infinity();
  int events = 0;
  for (const auto& rec : loss_log_) {
    acc += rec.pkts_before;
    if (ev_start.is_infinite() || rec.t - ev_start > rtt) {
      closed.push_back(acc);
      acc = 0.0;
      ev_start = rec.t;
      ++events;
    }
    // Losses within `rtt` of the event start: same event; received packets
    // between them keep accumulating into the next interval.
  }

  intervals_.clear();
  for (auto it = closed.rbegin(); it != closed.rend(); ++it) {
    intervals_.push_back(std::max(0.0, *it));
    if (intervals_.size() >= static_cast<std::size_t>(depth_)) break;
  }
  // The interval "before the first logged loss" is the synthetic initial
  // interval when one was installed; restore it so Appendix B still applies.
  if (initial_synthetic_ && !intervals_.empty()) {
    intervals_.back() = synthetic_value_;
  }
  open_count_ = acc;
  recv_gap_ = 0.0;
  event_start_ = ev_start;
  events_ = events;
}

}  // namespace tfmcc
