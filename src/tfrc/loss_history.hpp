#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

/// TFRC/TFMCC loss-interval history (paper §2.3, Appendices A and B).
///
/// Packet losses are aggregated into *loss events* (losses within one RTT of
/// the event start belong to the same event); the packet counts between
/// consecutive events are *loss intervals*.  The loss event rate p is the
/// inverse of the weighted average interval, where the open interval since
/// the last event is included only if that lowers p.
class LossHistory {
 public:
  /// `depth` is the number of closed intervals averaged (paper: 8–32).
  explicit LossHistory(int depth = 8);

  /// A packet arrived in order.
  void on_packet_received();

  /// A packet was detected lost; `loss_time` is the detection time and
  /// `rtt` the receiver's current RTT estimate (used for aggregation).
  /// Returns true if this loss started a new loss event.
  bool on_packet_lost(SimTime loss_time, SimTime rtt);

  /// Weighted average loss interval, including the open interval when that
  /// increases the average (== decreases p).  0 when no loss has occurred.
  double average_interval() const;

  /// Loss event rate p = 1 / average_interval(); 0 before the first loss.
  double loss_event_rate() const;

  bool has_loss() const { return !intervals_.empty(); }
  int event_count() const { return events_; }

  /// Appendix B: synthesise the history after the *first* loss event so the
  /// initial rate matches the bandwidth at which the loss occurred.  The
  /// caller computes `interval = 1/p` from the inverse control equation.
  void init_first_interval(double interval);

  /// Appendix B: rescale the synthetic initial interval when the first real
  /// RTT measurement replaces the (too high) initial RTT.  With the
  /// simplified model the interval shrinks by (rtt_real/rtt_init)^2; no-op
  /// if the synthetic interval has already left the history.
  void rescale_initial_interval(SimTime rtt_real, SimTime rtt_init);

  /// Appendix A: re-aggregate the recorded lost packets into loss events
  /// using a corrected RTT.  Rebuilds the closed intervals from the bounded
  /// per-loss record; the open interval is preserved.
  void reaggregate(SimTime rtt);

  /// Most recent first; index 0 is the newest *closed* interval.
  /// Ref-qualified like TimeSeries::points(): chaining intervals() off a
  /// temporary LossHistory moves the deque out instead of returning a
  /// reference into the dying temporary (PR 1's dangling pattern).
  const std::deque<double>& intervals() const& { return intervals_; }
  std::deque<double> intervals() && { return std::move(intervals_); }
  double open_interval() const { return open_count_; }

  /// The TFRC weight profile: 1 for the newest half of the history, then
  /// linearly decaying — {5,5,5,5,4,3,2,1}/5 for depth 8 (paper §2.3).
  static std::vector<double> weights(int depth);

 private:
  void close_open_interval();

  int depth_;
  std::vector<double> weights_;
  std::deque<double> intervals_;  // closed intervals, most recent first
  double open_count_{0.0};        // packets since current event started
  SimTime event_start_{SimTime::infinity()};  // start of current loss event
  int events_{0};
  bool initial_synthetic_{false};  // init_first_interval() value still live
  double synthetic_value_{0.0};
  double recv_gap_{0.0};  // packets received since the last recorded loss

  // Bounded per-lost-packet record for reaggregation (Appendix A): arrival
  // order with packets received since the previous loss.
  struct LossRecord {
    SimTime t;
    double pkts_before;
  };
  std::deque<LossRecord> loss_log_;
  static constexpr std::size_t kMaxLossLog = 256;
};

}  // namespace tfmcc
