#pragma once

#include <cstdint>

namespace tfmcc {

/// Detects losses from monotonically increasing sequence numbers.
///
/// The simulator's links are FIFO, so packets are never reordered: a gap in
/// the sequence space is a loss the moment the next higher seqno arrives.
/// (Real TFMCC waits a reordering window; with FIFO delivery the window is
/// zero and loss detection is immediate.)
class SeqnoTracker {
 public:
  struct Result {
    std::int64_t lost{0};   // packets newly detected as lost
    bool duplicate{false};  // seqno at or below the highest already seen
  };

  /// Process an arriving sequence number.
  Result on_seqno(std::int64_t seqno) {
    Result r;
    if (!started_) {
      started_ = true;
      // Losses before the very first delivered packet are invisible to the
      // receiver (it does not yet know the sender's numbering); real TFMCC
      // behaves the same way, so we start counting from the first arrival.
      next_ = seqno + 1;
      ++received_;
      return r;
    }
    if (seqno < next_) {
      r.duplicate = true;
      return r;
    }
    r.lost = seqno - next_;
    lost_ += r.lost;
    next_ = seqno + 1;
    ++received_;
    return r;
  }

  std::int64_t received() const { return received_; }
  std::int64_t lost() const { return lost_; }
  std::int64_t next_expected() const { return next_; }
  bool started() const { return started_; }

  /// Raw fraction of packets lost (diagnostic; the protocol itself uses the
  /// loss *event* rate from LossHistory, not this).
  double raw_loss_fraction() const {
    const auto total = received_ + lost_;
    return total > 0 ? static_cast<double>(lost_) / static_cast<double>(total)
                     : 0.0;
  }

 private:
  bool started_{false};
  std::int64_t next_{0};
  std::int64_t received_{0};
  std::int64_t lost_{0};
};

}  // namespace tfmcc
