#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace tfmcc {

/// Tiny CSV emitter used by the figure benches so every experiment prints a
/// machine-readable trace in addition to its human-readable summary.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::initializer_list<std::string_view> header)
      : os_{os} {
    bool first = true;
    for (auto h : header) {
      if (!first) os_ << ',';
      os_ << h;
      first = false;
    }
    os_ << '\n';
  }

  template <typename... Ts>
  void row(const Ts&... fields) {
    bool first = true;
    ((write_field(fields, first), first = false), ...);
    os_ << '\n';
  }

 private:
  template <typename T>
  void write_field(const T& v, bool first) {
    if (!first) os_ << ',';
    os_ << v;
  }

  std::ostream& os_;
};

}  // namespace tfmcc
