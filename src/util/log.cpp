#include "util/log.hpp"

#include <cstdarg>

namespace tfmcc {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

namespace detail {
void vlog(LogLevel lvl, SimTime now, const char* component, const char* fmt,
          ...) {
  std::fprintf(stderr, "[%10.6f] %-5s %-12s ", now.to_seconds(),
               level_name(lvl), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace tfmcc
