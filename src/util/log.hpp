#pragma once

#include <cstdio>
#include <string>

#include "util/sim_time.hpp"

namespace tfmcc {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Process-wide log threshold.  Defaults to warnings only so that tests and
/// benches stay quiet; scenario drivers raise it with `set_log_level`.
LogLevel log_level();
void set_log_level(LogLevel lvl);

namespace detail {
void vlog(LogLevel lvl, SimTime now, const char* component, const char* fmt,
          ...) __attribute__((format(printf, 4, 5)));
}  // namespace detail

#define TFMCC_LOG(lvl, now, component, ...)                       \
  do {                                                            \
    if (static_cast<int>(lvl) <= static_cast<int>(::tfmcc::log_level())) \
      ::tfmcc::detail::vlog(lvl, now, component, __VA_ARGS__);    \
  } while (0)

}  // namespace tfmcc
