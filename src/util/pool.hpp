#pragma once

#include <cstddef>
#include <new>

namespace tfmcc {

/// Free-list recycler for uniformly-sized memory blocks.
///
/// The pool learns its block size from the first allocation (all blocks
/// checked out through one use site — e.g. `make_pooled_packet` — have the
/// same size); requests of any other size fall through to the global heap.
/// Deallocated blocks of the pooled size are kept on an intrusive free
/// list and handed back on the next allocation, so steady-state
/// checkout/return cycles never touch the heap.
///
/// Not thread-safe, like the simulator it serves.  Blocks still checked out
/// when the pool is destroyed are a bug in the owner's member ordering (the
/// pool must outlive every object allocated from it); the free list itself
/// is released by the destructor.
class FixedBlockPool {
 public:
  FixedBlockPool() = default;
  FixedBlockPool(const FixedBlockPool&) = delete;
  FixedBlockPool& operator=(const FixedBlockPool&) = delete;

  ~FixedBlockPool() {
    while (free_ != nullptr) {
      FreeNode* n = free_;
      free_ = n->next;
      ::operator delete(static_cast<void*>(n));
    }
  }

  void* allocate(std::size_t bytes) {
    if (block_bytes_ == 0 && bytes >= sizeof(FreeNode)) block_bytes_ = bytes;
    if (bytes == block_bytes_ && free_ != nullptr) {
      FreeNode* n = free_;
      free_ = n->next;
      --free_count_;
      return n;
    }
    ++heap_allocations_;
    return ::operator new(bytes);
  }

  void deallocate(void* p, std::size_t bytes) {
    if (bytes == block_bytes_) {
      FreeNode* n = ::new (p) FreeNode{free_};
      free_ = n;
      ++free_count_;
      return;
    }
    ::operator delete(p);
  }

  /// Blocks currently parked on the free list.
  std::size_t free_count() const { return free_count_; }
  /// Allocations that had to touch the global heap (pool misses + the
  /// warm-up checkouts that first populate the free list).
  std::size_t heap_allocations() const { return heap_allocations_; }
  /// The learned block size; 0 until the first allocation.
  std::size_t block_bytes() const { return block_bytes_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  FreeNode* free_{nullptr};
  std::size_t block_bytes_{0};
  std::size_t free_count_{0};
  std::size_t heap_allocations_{0};
};

}  // namespace tfmcc
