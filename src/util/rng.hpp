#pragma once

#include <cstdint>
#include <random>

namespace tfmcc {

/// Deterministic random-number stream.
///
/// Every stochastic component of the simulator draws from its own `Rng`
/// derived from a root seed and a stream id (`substream`).  This keeps
/// experiments reproducible run-to-run and — more importantly — makes the
/// randomness consumed by one component independent of how often another
/// component draws, so adding a flow to a scenario does not perturb the
/// loss pattern seen by existing flows.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_{mix(seed)}, seed_{seed} {}

  /// Derive an independent child stream.  Deterministic in (seed, id).
  Rng substream(std::uint64_t stream_id) const {
    return Rng{mix(seed_ + 0x9e3779b97f4a7c15ULL * (stream_id + 1))};
  }

  std::uint64_t next_u64() { return gen_(); }

  /// Uniform in (0, 1] — never returns 0, safe as a log() argument.
  double uniform01() {
    return 1.0 - std::uniform_real_distribution<double>{0.0, 1.0}(gen_);
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(gen_);
  }

  /// Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(gen_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(gen_);
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(gen_);
  }

  /// Geometric number of trials until first success (>= 1), success prob p.
  std::int64_t geometric_trials(double p) {
    if (p >= 1.0) return 1;
    return 1 + std::geometric_distribution<std::int64_t>{p}(gen_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(gen_);
  }

 private:
  /// splitmix64 finalizer: decorrelates nearby seeds.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 gen_;
  std::uint64_t seed_;
};

}  // namespace tfmcc
