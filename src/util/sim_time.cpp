#include "util/sim_time.hpp"

#include <cstdio>

namespace tfmcc {

std::string SimTime::str() const {
  if (is_infinite()) return "+inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6fs", to_seconds());
  return buf;
}

}  // namespace tfmcc
