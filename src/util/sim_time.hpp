#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tfmcc {

/// Simulation time, stored as a fixed-point count of nanoseconds.
///
/// Using an integer representation (rather than floating-point seconds, as
/// ns-2 does) makes event ordering exact and simulations bit-reproducible:
/// two events scheduled for the same instant compare equal and are broken by
/// insertion order, never by accumulated rounding error.
///
/// The same type represents both absolute time points and durations, in the
/// style of ns-3's `Time`.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors.
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime nanos(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime micros(std::int64_t u) { return SimTime{u * 1000}; }
  static constexpr SimTime millis(std::int64_t m) {
    return SimTime{m * 1'000'000};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  /// A sentinel later than any reachable simulation time.
  static constexpr SimTime infinity() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_infinite() const { return *this == infinity(); }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime operator*(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr SimTime operator/(double k) const {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }

  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

constexpr SimTime operator*(double k, SimTime t) { return t * k; }

namespace time_literals {
constexpr SimTime operator""_sec(long double s) {
  return SimTime::seconds(static_cast<double>(s));
}
constexpr SimTime operator""_sec(unsigned long long s) {
  return SimTime::millis(static_cast<std::int64_t>(s) * 1000);
}
constexpr SimTime operator""_ms(unsigned long long m) {
  return SimTime::millis(static_cast<std::int64_t>(m));
}
constexpr SimTime operator""_us(unsigned long long u) {
  return SimTime::micros(static_cast<std::int64_t>(u));
}
}  // namespace time_literals

}  // namespace tfmcc
