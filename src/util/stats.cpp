#include "util/stats.hpp"

#include <cassert>
#include <limits>

namespace tfmcc {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double TimeSeries::mean_in(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::int64_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= from && p.t < to) {
      sum += p.v;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_value() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& p : points_) m = std::max(m, p.v);
  return points_.empty() ? 0.0 : m;
}

void TimeSeries::write_csv(std::ostream& os, const std::string& label) const {
  for (const auto& p : points_) {
    os << label << ',' << p.t.to_seconds() << ',' << p.v << '\n';
  }
}

void ThroughputBinner::add(SimTime t, std::int64_t bytes) {
  assert(t >= SimTime::zero());
  // Arrivals are time-ordered, so the bin index is almost always the one
  // from the previous call (or the next few): track the current bin's
  // bounds and step forward instead of dividing 64-bit nanoseconds per
  // packet.  Large jumps (long silences, late joins) fall back to the
  // division once and re-anchor.
  const std::int64_t ns = t.count_nanos();
  if (ns < cur_start_ns_ || ns - cur_start_ns_ >= 64 * width_.count_nanos()) {
    cur_idx_ = static_cast<std::size_t>(ns / width_.count_nanos());
    cur_start_ns_ = static_cast<std::int64_t>(cur_idx_) * width_.count_nanos();
  } else {
    while (ns - cur_start_ns_ >= width_.count_nanos()) {
      ++cur_idx_;
      cur_start_ns_ += width_.count_nanos();
    }
  }
  if (bins_.size() <= cur_idx_) bins_.resize(cur_idx_ + 1, 0);
  bins_[cur_idx_] += bytes;
  total_bytes_ += bytes;
}

TimeSeries ThroughputBinner::series_kbps() const {
  TimeSeries out;
  const double w_sec = width_.to_seconds();
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double bps = static_cast<double>(bins_[i]) / w_sec;
    out.push(width_ * static_cast<double>(i), kbps_from_Bps(bps));
  }
  return out;
}

double ThroughputBinner::mean_kbps(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  std::int64_t bytes = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const SimTime start = width_ * static_cast<double>(i);
    if (start >= from && start < to) bytes += bins_[i];
  }
  return kbps_from_Bps(static_cast<double>(bytes) / (to - from).to_seconds());
}

void WindowedRateMeter::on_packet(SimTime t, std::int64_t bytes) {
  if (ring_.empty()) ring_.resize(max_packets_ + 1);
  ring_[wrap(head_ + size_)] = {t, bytes};
  ++size_;
  window_bytes_ += bytes;
  while (size_ > max_packets_ || (size_ >= 2 && t - ring_[head_].t > horizon_)) {
    pop_front();
  }
}

double WindowedRateMeter::rate_Bps(SimTime now) const {
  if (size_ < 2) return 0.0;
  // Exclude the first packet's bytes: they arrived at the window's start
  // instant, so only the span after it carries the remaining bytes.
  const std::int64_t bytes = window_bytes_ - ring_[head_].bytes;
  const SimTime span = std::max(now, at(size_ - 1).t) - ring_[head_].t;
  if (span <= SimTime::zero()) return 0.0;
  return static_cast<double>(bytes) / span.to_seconds();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double f = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(f * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::int64_t>(q * static_cast<double>(total_));
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc > target) return bin_center(i);
  }
  return hi_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(i);
  return xs[i] * (1.0 - frac) + xs[i + 1] * frac;
}

}  // namespace tfmcc
