#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace tfmcc {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  /// Coefficient of variation; the paper's notion of rate "smoothness".
  double cov() const { return mean() != 0.0 ? stddev() / mean() : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// A (time, value) series with CSV export; used by the figure benches.
class TimeSeries {
 public:
  void push(SimTime t, double v) { points_.push_back({t, v}); }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  struct Point {
    SimTime t;
    double v;
  };
  // Ref-qualified so `binner.series_kbps().points()` in a range-for is safe:
  // on a temporary TimeSeries the vector is moved out as a prvalue (whose
  // lifetime the range-for extends) instead of a reference into the dying
  // temporary.
  const std::vector<Point>& points() const& { return points_; }
  std::vector<Point> points() && { return std::move(points_); }

  /// Mean of values with t in [from, to).
  double mean_in(SimTime from, SimTime to) const;
  double max_value() const;

  void write_csv(std::ostream& os, const std::string& label) const;

 private:
  std::vector<Point> points_;
};

/// Bins byte arrivals into fixed-width wall-clock bins and reports each bin
/// as a throughput sample.  This is how all per-flow throughput traces in the
/// figure benches are produced (the paper plots 1 s binned rates).
class ThroughputBinner {
 public:
  explicit ThroughputBinner(SimTime bin_width) : width_{bin_width} {}

  void add(SimTime t, std::int64_t bytes);

  /// Completed bins as (bin start time, throughput in kbit/s).
  TimeSeries series_kbps() const;

  /// Average throughput (kbit/s) over [from, to), computed from raw bytes.
  double mean_kbps(SimTime from, SimTime to) const;

  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  SimTime width_;
  std::vector<std::int64_t> bins_;  // bytes per bin, bin i covers [i*w,(i+1)*w)
  std::int64_t total_bytes_{0};
  // Current-bin anchor for the divisionless fast path in add().
  std::size_t cur_idx_{0};
  std::int64_t cur_start_ns_{0};
};

/// Sliding-window receive-rate estimator: rate over the span of the last
/// k packet arrivals.  TFMCC receivers measure their receive rate "over
/// several RTTs" (paper §2.6); the window is sized in packets but we also
/// expose a time horizon so low-rate flows do not average over minutes.
class WindowedRateMeter {
 public:
  explicit WindowedRateMeter(std::size_t max_packets = 64,
                             SimTime max_horizon = SimTime::seconds(4.0))
      : max_packets_{max_packets}, horizon_{max_horizon} {}

  void on_packet(SimTime t, std::int64_t bytes);

  /// Receive rate in bytes/second; 0 until two packets have arrived.
  double rate_Bps(SimTime now) const;

  bool has_estimate() const { return size_ >= 2; }
  void clear() {
    head_ = 0;
    size_ = 0;
    window_bytes_ = 0;
  }

 private:
  // Fixed ring buffer: this runs once per delivered packet for every
  // receiver, so eviction must be pointer bumps, not deque node traffic.
  // window_bytes_ tracks the exact integer sum of the buffered arrivals,
  // making rate_Bps O(1) with bit-identical results (int64 addition is
  // associative, unlike the float sums it feeds).
  struct Arrival {
    SimTime t;
    std::int64_t bytes;
  };
  std::size_t wrap(std::size_t i) const {  // i < 2 * capacity
    return i >= ring_.size() ? i - ring_.size() : i;
  }
  const Arrival& at(std::size_t i) const {  // i-th oldest
    return ring_[wrap(head_ + i)];
  }
  void pop_front() {
    window_bytes_ -= ring_[head_].bytes;
    head_ = wrap(head_ + 1);
    --size_;
  }

  std::size_t max_packets_;
  SimTime horizon_;
  // Exact capacity max_packets_ + 1, lazily sized; the wrap is a
  // well-predicted compare, and the tight capacity keeps the per-receiver
  // footprint small (a 1000-receiver run holds 1000 of these rings).
  std::vector<Arrival> ring_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::int64_t window_bytes_{0};
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin.  Used by feedback-delay analyses.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::int64_t count() const { return total_; }
  double quantile(double q) const;
  // Ref-qualified like TimeSeries::points(): chaining bins() off a
  // temporary Histogram moves the vector out instead of returning a
  // reference into the dying temporary (PR 1's dangling pattern).
  const std::vector<std::int64_t>& bins() const& { return counts_; }
  std::vector<std::int64_t> bins() && { return std::move(counts_); }
  double bin_center(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_{0};
};

/// Exact quantile of a sample (copies + sorts; fine for analysis code).
double quantile(std::vector<double> xs, double q);

constexpr double kbps_from_Bps(double bytes_per_sec) {
  return bytes_per_sec * 8.0 / 1000.0;
}
constexpr double Bps_from_kbps(double kbit_per_sec) {
  return kbit_per_sec * 1000.0 / 8.0;
}

}  // namespace tfmcc
