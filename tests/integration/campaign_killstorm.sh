#!/bin/sh
# Kill-storm stress for `tfmcc_sim campaign`: every shard's first three
# launches are SIGKILLed at staggered offsets (so the kills land at
# different fold frontiers — before the first checkpoint, mid-grid, and
# near the end), and the campaign must still recover automatically and
# produce a merged CSV byte-identical to the uninterrupted unsharded
# `--jobs 1` sweep.
#
# usage: campaign_killstorm.sh <tfmcc_sim> [workdir]
set -eu

# Absolute path: the wrapper and this script both cd away from the caller.
SIM=$(readlink -f -- "${1:?usage: campaign_killstorm.sh <tfmcc_sim> [workdir]}")
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
cd "$WORK"
rm -rf storm mark_* ref.csv merged.csv campaign.log
mkdir storm

GRID="--sweep n_receivers=2:50:log4 --set trials=2 --set n_max=1000"

# The reference no campaign machinery ever touches.
"$SIM" sweep fig07_scaling $GRID --jobs 1 --output ref.csv

# Shard wrapper: launch n of a shard (counted by marker files, so the
# count survives the wrapper being re-exec'd) runs the real shard under a
# timer that SIGKILLs it after 0.1/0.3/0.5 seconds; launch 4+ runs clean.
cat > killwrap.sh <<EOF
#!/bin/sh
shard=""; prev=""
for a in "\$@"; do
  if [ "\$prev" = "--shard" ]; then shard=\$a; fi
  prev=\$a
done
tag=\$(printf '%s' "\$shard" | tr / _)
n=0
while [ -f "mark_\${tag}_\$n" ]; do n=\$((n + 1)); done
if [ "\$n" -lt 3 ]; then
  touch "mark_\${tag}_\$n"
  "$SIM" "\$@" & pid=\$!
  sleep "0.\$((1 + 2 * n))"
  kill -9 \$pid 2>/dev/null || true
  wait \$pid 2>/dev/null
  exit 137
fi
exec "$SIM" "\$@"
EOF
chmod +x killwrap.sh

"$SIM" campaign fig07_scaling $GRID \
  --shards 3 --dir storm --exec "$PWD/killwrap.sh" \
  --stall-timeout 60 --poll-interval 0.05 \
  --backoff-base 0.02 --backoff-max 0.1 --max-retries 10 \
  --output merged.csv 2> campaign.log || { cat campaign.log; exit 1; }

grep -q 'relaunching in' campaign.log
grep -q 'all 3 shards complete; merging' campaign.log
cmp ref.csv merged.csv
echo "campaign kill-storm: merged CSV byte-identical to the unsharded sweep"
