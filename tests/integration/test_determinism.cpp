#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

struct RunResult {
  std::int64_t data_sent{};
  std::int64_t feedback{};
  std::int64_t delivered{};
  std::int64_t tcp_delivered{};
  std::uint64_t events{};
};

RunResult run_scenario(std::uint64_t seed) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = 1e6;
  bn.delay = 20_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 2, 3, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0]};
  for (int i = 0; i < 2; ++i) flow.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]);
  TcpFlow tcp{sim, topo, d.left_hosts[1], d.right_hosts[2], 0};
  flow.sender().start(SimTime::zero());
  tcp.start(500_ms);
  sim.run_until(60_sec);
  RunResult r;
  r.data_sent = flow.sender().data_sent();
  r.feedback = flow.sender().feedback_received();
  r.delivered = flow.receiver(0).packets_received();
  r.tcp_delivered = tcp.sink->delivered_packets();
  r.events = sim.scheduler().executed();
  return r;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const RunResult a = run_scenario(123);
  const RunResult b = run_scenario(123);
  EXPECT_EQ(a.data_sent, b.data_sent);
  EXPECT_EQ(a.feedback, b.feedback);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.tcp_delivered, b.tcp_delivered);
  EXPECT_EQ(a.events, b.events);
}

TEST(Determinism, DifferentSeedsPerturbTheRun) {
  const RunResult a = run_scenario(123);
  const RunResult c = run_scenario(321);
  // At least one observable differs (randomized feedback timers, loss
  // draws).  Event counts are the most sensitive.
  EXPECT_TRUE(a.events != c.events || a.feedback != c.feedback ||
              a.data_sent != c.data_sent);
}

TEST(Determinism, RunsAreIndependentOfPriorRuns) {
  (void)run_scenario(999);  // warm-up run must not affect the next
  const RunResult a = run_scenario(123);
  const RunResult b = run_scenario(123);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace tfmcc
