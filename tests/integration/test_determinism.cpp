#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/builders.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"
#include "tfmcc/flow.hpp"
#include "util/csv.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

struct RunResult {
  std::int64_t data_sent{};
  std::int64_t feedback{};
  std::int64_t delivered{};
  std::int64_t tcp_delivered{};
  std::uint64_t events{};
};

RunResult run_scenario(std::uint64_t seed) {
  Simulator sim{seed};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = 1e6;
  bn.delay = 20_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 2, 3, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0]};
  for (int i = 0; i < 2; ++i) flow.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]);
  TcpFlow tcp{sim, topo, d.left_hosts[1], d.right_hosts[2], 0};
  flow.sender().start(SimTime::zero());
  tcp.start(500_ms);
  sim.run_until(60_sec);
  RunResult r;
  r.data_sent = flow.sender().data_sent();
  r.feedback = flow.sender().feedback_received();
  r.delivered = flow.receiver(0).packets_received();
  r.tcp_delivered = tcp.sink->delivered_packets();
  r.events = sim.scheduler().executed();
  return r;
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const RunResult a = run_scenario(123);
  const RunResult b = run_scenario(123);
  EXPECT_EQ(a.data_sent, b.data_sent);
  EXPECT_EQ(a.feedback, b.feedback);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.tcp_delivered, b.tcp_delivered);
  EXPECT_EQ(a.events, b.events);
}

TEST(Determinism, DifferentSeedsPerturbTheRun) {
  const RunResult a = run_scenario(123);
  const RunResult c = run_scenario(321);
  // At least one observable differs (randomized feedback timers, loss
  // draws).  Event counts are the most sensitive.
  EXPECT_TRUE(a.events != c.events || a.feedback != c.feedback ||
              a.data_sent != c.data_sent);
}

TEST(Determinism, RunsAreIndependentOfPriorRuns) {
  (void)run_scenario(999);  // warm-up run must not affect the next
  const RunResult a = run_scenario(123);
  const RunResult b = run_scenario(123);
  EXPECT_EQ(a.events, b.events);
}

// --- parameterized runs (the --set passthrough) ----------------------------

/// A miniature bench-style scenario: topology sized from `--set` overrides,
/// CSV trace written to `os` — the whole output is the determinism
/// observable, exactly like a real scenario's stdout.
void parameterized_scenario(const ScenarioOptions& opts, std::ostream& os) {
  const int n_receivers = opts.param_or("n_receivers", 2);
  const int n_tcp = opts.param_or("n_tcp", 1);
  const double bottleneck_bps = opts.param_or("bottleneck_bps", 1e6);
  const SimTime T = opts.duration_or(30_sec);

  Simulator sim{opts.seed_or(1)};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = bottleneck_bps;
  bn.delay = 20_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d =
      make_dumbbell(topo, 1 + n_tcp, n_receivers + n_tcp, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0]};
  for (int i = 0; i < n_receivers; ++i) {
    flow.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]);
  }
  std::vector<std::unique_ptr<TcpFlow>> tcp;
  for (int i = 0; i < n_tcp; ++i) {
    tcp.push_back(std::make_unique<TcpFlow>(
        sim, topo, d.left_hosts[static_cast<size_t>(1 + i)],
        d.right_hosts[static_cast<size_t>(n_receivers + i)], i));
    tcp.back()->start(SimTime::millis(41 * i));
  }
  flow.sender().start(SimTime::zero());
  sim.run_until(T);

  CsvWriter csv(os, {"flow", "time_s", "kbps"});
  for (const auto& p : flow.goodput(0).series_kbps().points()) {
    csv.row("TFMCC", p.t.to_seconds(), p.v);
  }
  for (int i = 0; i < n_tcp; ++i) {
    for (const auto& p :
         tcp[static_cast<size_t>(i)]->goodput.series_kbps().points()) {
      csv.row("TCP " + std::to_string(i + 1), p.t.to_seconds(), p.v);
    }
  }
  csv.row("events", 0.0, static_cast<double>(sim.scheduler().executed()));
}

std::string run_parameterized(std::uint64_t seed,
                              const std::vector<std::pair<std::string,
                                                          std::string>>& sets) {
  ScenarioOptions opts;
  opts.seed = seed;
  opts.duration = SimTime::seconds(20);
  for (const auto& [k, v] : sets) opts.set_param(k, v);
  std::ostringstream os;
  parameterized_scenario(opts, os);
  return os.str();
}

TEST(Determinism, SameSeedAndOverridesGiveByteIdenticalOutput) {
  const std::vector<std::pair<std::string, std::string>> sets = {
      {"n_receivers", "3"}, {"n_tcp", "2"}, {"bottleneck_bps", "2e6"}};
  const std::string a = run_parameterized(123, sets);
  const std::string b = run_parameterized(123, sets);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsGiveDifferentTraces) {
  const std::vector<std::pair<std::string, std::string>> sets = {
      {"n_receivers", "3"}, {"n_tcp", "2"}};
  const std::string a = run_parameterized(123, sets);
  const std::string c = run_parameterized(321, sets);
  EXPECT_NE(a, c);
}

TEST(Determinism, OverridesActuallyChangeTheRun) {
  // Guards against a silently ignored --set: different topology sizes must
  // produce different traces under the same seed.
  const std::string small =
      run_parameterized(123, {{"n_receivers", "2"}, {"n_tcp", "1"}});
  const std::string large =
      run_parameterized(123, {{"n_receivers", "4"}, {"n_tcp", "3"}});
  EXPECT_NE(small, large);
}

}  // namespace
}  // namespace tfmcc
