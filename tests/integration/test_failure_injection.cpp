#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// Fault-injection scenarios: the protocol must fail towards *lower* rates
/// (the paper's stated failure mode, §6) and recover when conditions heal.

struct FaultFixture {
  explicit FaultFixture(std::uint64_t seed = 91) : sim{seed}, topo{sim} {
    LinkConfig trunk;
    trunk.rate_bps = 2e6;
    trunk.delay = 10_ms;
    trunk.queue_limit_packets = 15;
    star = make_star(topo, trunk, {trunk, trunk});
    flow = std::make_unique<TfmccFlow>(sim, topo, star.sender);
    flow->add_joined_receiver(star.leaves[0]);
    flow->add_joined_receiver(star.leaves[1]);
  }
  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<TfmccFlow> flow;
};

TEST(FaultInjection, TotalDataBlackoutDecaysRate) {
  FaultFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  const double before = f.flow->sender().rate_Bps();
  // Forward path dies completely: no data reaches anyone, so no feedback
  // returns.  The sender must decay, not transmit open-loop.
  f.star.leaf_links[0].first->set_loss_rate(1.0);
  f.star.leaf_links[1].first->set_loss_rate(1.0);
  f.sim.run_until(180_sec);
  EXPECT_LT(f.flow->sender().rate_Bps(), before / 2.0);
}

TEST(FaultInjection, RecoversAfterBlackoutHeals) {
  FaultFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  f.star.leaf_links[0].first->set_loss_rate(1.0);
  f.star.leaf_links[1].first->set_loss_rate(1.0);
  f.sim.run_until(150_sec);
  const double during = f.flow->sender().rate_Bps();
  f.star.leaf_links[0].first->set_loss_rate(0.0);
  f.star.leaf_links[1].first->set_loss_rate(0.0);
  f.sim.run_until(400_sec);
  EXPECT_GT(f.flow->sender().rate_Bps(), during * 2.0);
  EXPECT_GT(f.flow->receiver(0).packets_received(), 0);
}

TEST(FaultInjection, FeedbackBlackoutTriggersClrTimeoutNotHang) {
  FaultFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  const auto clr = f.flow->sender().clr();
  ASSERT_NE(clr, kInvalidReceiver);
  // Both reverse paths die: all feedback is lost, data still flows.
  f.star.leaf_links[0].second->set_loss_rate(1.0);
  f.star.leaf_links[1].second->set_loss_rate(1.0);
  f.sim.run_until(300_sec);
  // The CLR silence timeout fires and the safety decay engages; no hang,
  // no rate explosion.
  EXPECT_LT(f.flow->sender().rate_Bps(), Bps_from_kbps(2200.0));
  f.star.leaf_links[0].second->set_loss_rate(0.0);
  f.star.leaf_links[1].second->set_loss_rate(0.0);
  f.sim.run_until(460_sec);
  EXPECT_NE(f.flow->sender().clr(), kInvalidReceiver);
}

TEST(FaultInjection, ReceiverChurnDoesNotWedgeTheSession) {
  FaultFixture f;
  f.flow->sender().start(SimTime::zero());
  // Receiver 1 joins and leaves every 10 s while receiver 0 stays.
  for (int k = 0; k < 8; ++k) {
    f.sim.at(SimTime::seconds(20.0 + 20.0 * k),
             [&f] { f.flow->receiver(1).leave(); });
    f.sim.at(SimTime::seconds(30.0 + 20.0 * k),
             [&f] { f.flow->receiver(1).join(); });
  }
  f.sim.run_until(200_sec);
  EXPECT_GT(f.flow->receiver(0).packets_received(), 1000);
  EXPECT_GT(f.flow->goodput(0).mean_kbps(150_sec, 200_sec), 300.0);
}

TEST(FaultInjection, SessionWithNoReceiversStaysQuiet) {
  Simulator sim{92};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 2e6;
  trunk.delay = 10_ms;
  const Star star = make_star(topo, trunk, {trunk});
  TfmccFlow flow{sim, topo, star.sender};  // receiver never joins
  flow.sender().start(SimTime::zero());
  sim.run_until(120_sec);
  // Initial-rate transmission with no feedback must stay near the floor,
  // not ramp open-loop.
  EXPECT_LT(flow.sender().rate_Bps(), Bps_from_kbps(50.0));
}

TEST(FaultInjection, LateFirstReceiverStartsTheLoop) {
  Simulator sim{93};
  Topology topo{sim};
  LinkConfig trunk;
  trunk.rate_bps = 2e6;
  trunk.delay = 10_ms;
  trunk.queue_limit_packets = 15;
  const Star star = make_star(topo, trunk, {trunk});
  TfmccFlow flow{sim, topo, star.sender};
  flow.add_receiver(star.leaves[0]);
  flow.sender().start(SimTime::zero());
  sim.at(60_sec, [&flow] { flow.receiver(0).join(); });
  sim.run_until(240_sec);
  EXPECT_GT(flow.goodput(0).mean_kbps(180_sec, 240_sec), 500.0);
  EXPECT_EQ(flow.sender().clr(), 0);
}

TEST(FaultInjection, AsymmetricDelayDoesNotBreakRtt) {
  // Forward path 10 ms, reverse path 90 ms: one-way-delay adjustments rely
  // on skew cancellation, and the RTT estimate must land near the true
  // 100 ms sum, not double-count either direction.
  Simulator sim{94};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r = topo.add_node();
  LinkConfig fwd;
  fwd.rate_bps = 2e6;
  fwd.delay = 10_ms;
  fwd.queue_limit_packets = 15;
  LinkConfig rev = fwd;
  rev.delay = 90_ms;
  topo.add_link(s, r, fwd);
  topo.add_link(r, s, rev);
  topo.compute_routes();
  TfmccFlow flow{sim, topo, s};
  flow.add_joined_receiver(r);
  flow.sender().start(SimTime::zero());
  sim.run_until(120_sec);
  ASSERT_TRUE(flow.receiver(0).has_rtt_measurement());
  EXPECT_GT(flow.receiver(0).rtt(), 95_ms);
  EXPECT_LT(flow.receiver(0).rtt(), 250_ms);
}

}  // namespace
}  // namespace tfmcc
