#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// Intra-protocol fairness: multiple TFMCC sessions sharing one bottleneck
/// (§4.1 claims intra-protocol fairness alongside TCP-fairness, improving
/// further under RED).

struct TwoFlowFixture {
  explicit TwoFlowFixture(bool red = false, std::uint64_t seed = 95)
      : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = 2e6;
    bn.delay = 20_ms;
    bn.queue_limit_packets = 25;
    bn.use_red = red;
    bn.jitter = SimTime::millis(1);
    LinkConfig acc;
    acc.rate_bps = 1e9;
    acc.delay = 2_ms;
    dumbbell = make_dumbbell(topo, 2, 2, bn, acc);
    a = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[0],
                                    TfmccConfig{}, SimTime::seconds(1.0),
                                    7000);
    a->add_joined_receiver(dumbbell.right_hosts[0]);
    b = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[1],
                                    TfmccConfig{}, SimTime::seconds(1.0),
                                    8000);
    b->add_joined_receiver(dumbbell.right_hosts[1]);
  }
  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
  std::unique_ptr<TfmccFlow> a, b;
};

TEST(IntraProtocol, TwoFlowsShareTheBottleneck) {
  TwoFlowFixture f;
  f.a->sender().start(SimTime::zero());
  f.b->sender().start(500_ms);
  f.sim.run_until(300_sec);
  const double ra = f.a->goodput(0).mean_kbps(120_sec, 300_sec);
  const double rb = f.b->goodput(0).mean_kbps(120_sec, 300_sec);
  EXPECT_GT(ra + rb, 1200.0);  // utilisation
  EXPECT_GT(ra / rb, 1.0 / 3.0);
  EXPECT_LT(ra / rb, 3.0);
}

TEST(IntraProtocol, LateStarterIsNotLockedOut) {
  TwoFlowFixture f;
  f.a->sender().start(SimTime::zero());
  f.b->sender().start(120_sec);  // a has the link saturated by then
  f.sim.run_until(420_sec);
  const double rb = f.b->goodput(0).mean_kbps(300_sec, 420_sec);
  EXPECT_GT(rb, 250.0);  // gets a real share of the 2 Mbit/s link
}

TEST(IntraProtocol, RedImprovesIntraFairness) {
  TwoFlowFixture droptail{false, 96};
  TwoFlowFixture red{true, 96};
  for (auto* f : {&droptail, &red}) {
    f->a->sender().start(SimTime::zero());
    f->b->sender().start(500_ms);
    f->sim.run_until(300_sec);
  }
  auto distance = [](TwoFlowFixture& f) {
    const double ra = f.a->goodput(0).mean_kbps(120_sec, 300_sec);
    const double rb = f.b->goodput(0).mean_kbps(120_sec, 300_sec);
    return std::fabs(std::log(std::max(ra, 1.0) / std::max(rb, 1.0)));
  };
  // §4: active queueing improves intra-protocol fairness (allow slack for
  // one seed's noise).
  EXPECT_LT(distance(red), distance(droptail) + 0.4);
}

TEST(IntraProtocol, FlowStopReleasesBandwidth) {
  TwoFlowFixture f;
  f.a->sender().start(SimTime::zero());
  f.b->sender().start(500_ms);
  f.sim.run_until(180_sec);
  f.a->sender().stop();
  f.sim.run_until(420_sec);
  EXPECT_GT(f.b->goodput(0).mean_kbps(330_sec, 420_sec), 900.0);
}

}  // namespace
}  // namespace tfmcc
