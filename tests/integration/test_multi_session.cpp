// Integration tests for the multi-session and churn layers: SessionManager
// multiplexing several complete TFMCC sessions over one topology, and
// ChurnDriver scripting membership ladders against a live flow.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/builders.hpp"
#include "sim/schedule.hpp"
#include "tfmcc/churn.hpp"
#include "tfmcc/session_manager.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

struct MultiSessionFixture {
  explicit MultiSessionFixture(std::uint64_t seed = 5) : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = 8e6;
    bn.delay = 10_ms;
    bn.queue_limit_packets = 50;
    LinkConfig acc;
    acc.rate_bps = 1e9;
    acc.delay = 2_ms;
    d = make_dumbbell(topo, 3, 3, bn, acc);
    topo.compute_routes();
  }
  Simulator sim;
  Topology topo;
  Dumbbell d;
};

TEST(SessionManager, PortPairsAreDisjoint) {
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(SessionManager::control_port(i),
              SessionManager::data_port(i) + 1);
    for (int j = 0; j < i; ++j) {
      EXPECT_NE(SessionManager::data_port(i), SessionManager::data_port(j));
      EXPECT_NE(SessionManager::data_port(i), SessionManager::control_port(j));
    }
  }
}

TEST(SessionManager, ConcurrentSessionsAllDeliver) {
  MultiSessionFixture f;
  SessionManager mgr{f.sim, f.topo};
  for (int s = 0; s < 3; ++s) {
    const int i = mgr.add_session(f.d.left_hosts[static_cast<size_t>(s)]);
    // Every receiver host subscribes to every session.
    for (int r = 0; r < 3; ++r) {
      mgr.flow(i).add_joined_receiver(f.d.right_hosts[static_cast<size_t>(r)]);
    }
  }
  ASSERT_EQ(mgr.session_count(), 3);
  mgr.start_all();
  f.sim.run_until(20_sec);
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_GT(mgr.flow(i).receiver(r).packets_received(), 0)
          << "session " << i << " receiver " << r;
    }
    EXPECT_GT(mgr.session_mean_kbps(i, 5_sec, 20_sec), 0.0) << "session " << i;
  }
}

TEST(SessionManager, SessionsAreIndependentOfLaterAdditions) {
  // Adding a session must not perturb existing sessions' randomness or
  // behaviour: session 0's delivery trace is identical whether it runs
  // alone or next to two more sessions on disjoint hosts.
  auto run_session0 = [](int extra_sessions) {
    MultiSessionFixture f;
    SessionManager mgr{f.sim, f.topo};
    mgr.add_session(f.d.left_hosts[0]);
    mgr.flow(0).add_joined_receiver(f.d.right_hosts[0]);
    for (int s = 0; s < extra_sessions; ++s) {
      const int i = mgr.add_session(f.d.left_hosts[static_cast<size_t>(s + 1)]);
      mgr.flow(i).add_joined_receiver(
          f.d.right_hosts[static_cast<size_t>(s + 1)]);
    }
    // Only session 0 transmits, so its packet stream sees identical
    // network conditions in both runs; the extra sessions' mere existence
    // (construction order, RNG stream allocation) must not shift it.
    mgr.flow(0).sender().start(SimTime::zero());
    f.sim.run_until(10_sec);
    return mgr.flow(0).receiver(0).packets_received();
  };
  EXPECT_EQ(run_session0(0), run_session0(2));
}

TEST(ChurnDriver, FlashCrowdJoinsEveryReceiverOnce) {
  MultiSessionFixture f;
  SessionManager mgr{f.sim, f.topo};
  mgr.add_session(f.d.left_hosts[0]);
  TfmccFlow& flow = mgr.flow(0);
  std::vector<int> ids;
  for (int r = 0; r < 3; ++r) {
    ids.push_back(flow.add_receiver(f.d.right_hosts[static_cast<size_t>(r)]));
  }
  ScheduleBuilder sched{f.sim, 10_sec, 10_sec};
  ChurnDriver churn{flow, f.sim.make_rng(99)};
  churn.schedule_flash_crowd(sched, ids, 1_sec, 2_sec);
  flow.sender().start(SimTime::zero());
  f.sim.run_until(10_sec);
  EXPECT_EQ(churn.applied_joins(), 3);
  EXPECT_EQ(churn.applied_leaves(), 0);
  EXPECT_EQ(churn.scheduled_events(), 3);
  for (int id : ids) EXPECT_TRUE(flow.receiver(id).joined());
  EXPECT_EQ(flow.session().member_count(), 3);
}

TEST(ChurnDriver, LeaveStormRemovesRequestedFractionAndRejoins) {
  MultiSessionFixture f;
  SessionManager mgr{f.sim, f.topo};
  mgr.add_session(f.d.left_hosts[0]);
  TfmccFlow& flow = mgr.flow(0);
  std::vector<int> ids;
  for (int r = 0; r < 3; ++r) {
    ids.push_back(
        flow.add_joined_receiver(f.d.right_hosts[static_cast<size_t>(r)]));
  }
  ScheduleBuilder sched{f.sim, 30_sec, 30_sec};
  ChurnDriver churn{flow, f.sim.make_rng(100)};
  const auto leavers =
      churn.schedule_leave_storm(sched, ids, 2.0 / 3.0, 5_sec, 2_sec);
  churn.schedule_flash_crowd(sched, leavers, 15_sec, 2_sec);
  flow.sender().start(SimTime::zero());
  f.sim.run_until(12_sec);
  EXPECT_EQ(leavers.size(), 2u);
  EXPECT_EQ(churn.applied_leaves(), 2);
  EXPECT_EQ(flow.session().member_count(), 1);
  f.sim.run_until(30_sec);
  EXPECT_EQ(churn.applied_joins(), 2);  // the rejoin wave
  EXPECT_EQ(flow.session().member_count(), 3);
  for (int id : ids) EXPECT_TRUE(flow.receiver(id).joined());
}

TEST(ChurnDriver, RandomChurnTogglesConsistently) {
  MultiSessionFixture f;
  SessionManager mgr{f.sim, f.topo};
  mgr.add_session(f.d.left_hosts[0]);
  TfmccFlow& flow = mgr.flow(0);
  std::vector<int> ids;
  for (int r = 0; r < 3; ++r) {
    ids.push_back(
        flow.add_joined_receiver(f.d.right_hosts[static_cast<size_t>(r)]));
  }
  ScheduleBuilder sched{f.sim, 20_sec, 20_sec};
  ChurnDriver churn{flow, f.sim.make_rng(101)};
  churn.schedule_random_churn(sched, ids, 50, 1_sec, 18_sec);
  flow.sender().start(SimTime::zero());
  f.sim.run_until(20_sec);
  EXPECT_EQ(churn.scheduled_events(), 50);
  EXPECT_EQ(churn.applied_events(), 50);  // every toggle applies
  // Start state was all-joined; final membership follows toggle parity.
  for (int id : ids) {
    EXPECT_EQ(flow.receiver(id).joined(),
              flow.session().is_member(
                  f.d.right_hosts[static_cast<size_t>(id)]));
  }
}

}  // namespace
}  // namespace tfmcc
