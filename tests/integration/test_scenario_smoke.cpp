// Full-matrix scenario smoke harness: every scenario registered in the
// bench object library runs at a sharply reduced duration with small
// receiver/trial counts (applied only where the scenario declares the
// corresponding parameter), and must exit 0 while emitting a non-empty CSV
// trace.  One gtest per scenario is registered dynamically from the
// registry, and tests/CMakeLists.txt emits a matching `smoke`-labelled
// ctest entry per scenario so the matrix parallelises.
//
// The ScenarioHarness suite adds cross-cutting checks: the time-warp
// acceptance (a 20 s run of fig11 still fires every scripted join/leave)
// and determinism of parameterized runs at the whole-scenario level.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/scenario.hpp"
#include "sim/sweep.hpp"

namespace tfmcc {
namespace {

/// Reduced-size overrides applied to every scenario that declares the key;
/// scenarios without the key keep their (already reduced-duration) shape.
constexpr std::pair<const char*, const char*> kSmokeOverrides[] = {
    {"n_receivers", "8"}, {"n_tcp", "2"},  {"n_tails", "4"},
    {"trials", "2"},      {"n_max", "64"}, {"p_points", "8"},
    {"ewma_steps", "10"}, {"churn_events", "64"}, {"n_sessions", "2"},
    {"max_receivers", "4"},
};

ScenarioOptions smoke_options(const Scenario& s) {
  ScenarioOptions opts;
  opts.duration = SimTime::seconds(10);
  for (const auto& [key, value] : kSmokeOverrides) {
    if (s.find_param(key) != nullptr) opts.set_param(key, value);
  }
  return opts;
}

/// Runs a scenario via the registry with stdout captured; returns
/// (exit code, captured stdout).  Diagnostics go to `err`.
std::pair<int, std::string> run_captured(std::string_view name,
                                         const ScenarioOptions& opts,
                                         std::ostream& err) {
  testing::internal::CaptureStdout();
  const int rc = ScenarioRegistry::instance().run(name, opts, err);
  return {rc, testing::internal::GetCapturedStdout()};
}

/// A CSV data row: a comma-bearing line that follows another comma-bearing
/// line (the header).  Scenario output interleaves '#', NOTE and CHECK
/// lines, which never contain the header/row pairing.
bool has_csv_data(const std::string& out) {
  std::istringstream is{out};
  std::string line;
  bool prev_csv = false;
  while (std::getline(is, line)) {
    const bool is_csv = line.find(',') != std::string::npos &&
                        line.rfind("NOTE:", 0) != 0 &&
                        line.rfind("CHECK", 0) != 0 && line.rfind("#", 0) != 0;
    if (is_csv && prev_csv) return true;
    prev_csv = is_csv;
  }
  return false;
}

class ScenarioSmokeCase : public testing::Test {
 public:
  explicit ScenarioSmokeCase(std::string name) : name_{std::move(name)} {}

  void TestBody() override {
    const Scenario* s = ScenarioRegistry::instance().find(name_);
    ASSERT_NE(s, nullptr);
    std::ostringstream err;
    const auto [rc, out] = run_captured(name_, smoke_options(*s), err);
    EXPECT_EQ(rc, 0) << "scenario failed: " << err.str();
    EXPECT_TRUE(has_csv_data(out))
        << "no CSV trace in scenario output:\n"
        << out.substr(0, 2000);
  }

 private:
  std::string name_;
};

TEST(ScenarioHarness, RegistryIsPopulated) {
  // The full paper matrix: 21 figures + 2 ablations + 1 comparison.
  EXPECT_GE(ScenarioRegistry::instance().size(), 24u);
}

TEST(ScenarioHarness, Fig11WarpFiresAllScriptedEvents) {
  // Acceptance: `tfmcc_sim fig11_loss_responsiveness --duration 20` still
  // fires all scripted joins and leaves, time-warped into the horizon.
  ScenarioOptions opts;
  opts.duration = SimTime::seconds(20);
  std::ostringstream err;
  const auto [rc, out] = run_captured("fig11_loss_responsiveness", opts, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.find("fired 6/6 scripted events"), std::string::npos)
      << "schedule note missing or incomplete:\n"
      << out.substr(0, 2000);
}

TEST(ScenarioHarness, ParameterizedRunsAreDeterministic) {
  // Same seed + same --set overrides => byte-identical scenario output.
  ScenarioOptions opts;
  opts.duration = SimTime::seconds(5);
  opts.seed = 42;
  opts.set_param("n_tcp", "3");
  opts.set_param("n_receivers", "2");
  std::ostringstream err;
  const auto [rc_a, out_a] =
      run_captured("fig09_single_bottleneck", opts, err);
  const auto [rc_b, out_b] =
      run_captured("fig09_single_bottleneck", opts, err);
  ASSERT_EQ(rc_a, 0) << err.str();
  ASSERT_EQ(rc_b, 0) << err.str();
  EXPECT_EQ(out_a, out_b);

  ScenarioOptions other = opts;
  other.seed = 43;
  const auto [rc_c, out_c] =
      run_captured("fig09_single_bottleneck", other, err);
  ASSERT_EQ(rc_c, 0) << err.str();
  EXPECT_NE(out_a, out_c);
}

TEST(ScenarioHarness, SweepAggregateIsByteIdenticalAcrossJobs) {
  // Acceptance: a smoke-sized fig07 grid aggregates to byte-identical CSV
  // whether the points run serially or on four workers, with rows in grid
  // order (axes last-fastest) regardless of completion order.
  const Scenario* s = ScenarioRegistry::instance().find("fig07_scaling");
  ASSERT_NE(s, nullptr);
  SweepOptions sweep;
  std::ostringstream parse_err;
  SweepAxis n_axis, t_axis;
  ASSERT_TRUE(parse_sweep_axis("n_receivers=2:200:log3",
                               s->find_param("n_receivers"), n_axis,
                               parse_err))
      << parse_err.str();
  ASSERT_TRUE(parse_sweep_axis("trials=2,3", s->find_param("trials"), t_axis,
                               parse_err))
      << parse_err.str();
  sweep.axes = {n_axis, t_axis};
  sweep.base.set_param("n_max", "1000");

  auto run_with_jobs = [&](int jobs) {
    sweep.jobs = jobs;
    std::ostringstream out, err;
    EXPECT_EQ(run_sweep(*s, sweep, out, err), 0) << err.str();
    return out.str();
  };
  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel);

  // 3 receiver counts x 2 trial counts, one CSV row per point, one header.
  std::istringstream is{serial};
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u) << serial;
  EXPECT_EQ(lines[0].rfind("n_receivers,trials,", 0), 0u) << lines[0];
  // Grid order: the last axis (trials) varies fastest.
  EXPECT_EQ(lines[1].rfind("2,2,", 0), 0u) << serial;
  EXPECT_EQ(lines[2].rfind("2,3,", 0), 0u) << serial;
  EXPECT_EQ(lines[3].rfind("20,2,", 0), 0u) << serial;
  EXPECT_EQ(lines[6].rfind("200,3,", 0), 0u) << serial;
}

TEST(ScenarioHarness, ReplicatedSweepAggregateIsDeterministic) {
  // Acceptance: a replicated fig07 aggregate (one mean/cov row per grid
  // point plus n_rep) is byte-identical across --jobs 1 vs --jobs 4 and
  // across repeated invocations.
  const Scenario* s = ScenarioRegistry::instance().find("fig07_scaling");
  ASSERT_NE(s, nullptr);
  SweepOptions sweep;
  std::ostringstream parse_err;
  SweepAxis n_axis;
  ASSERT_TRUE(parse_sweep_axis("n_receivers=2:200:log3",
                               s->find_param("n_receivers"), n_axis,
                               parse_err))
      << parse_err.str();
  sweep.axes = {n_axis};
  sweep.base.set_param("trials", "2");
  sweep.base.set_param("n_max", "1000");
  sweep.replicate = 5;

  auto run_with_jobs = [&](int jobs) {
    sweep.jobs = jobs;
    std::ostringstream out, err;
    EXPECT_EQ(run_sweep(*s, sweep, out, err), 0) << err.str();
    return out.str();
  };
  const std::string serial = run_with_jobs(1);
  EXPECT_EQ(serial, run_with_jobs(4));
  EXPECT_EQ(serial, run_with_jobs(4));  // repeated invocation

  // One header plus one aggregate row per receiver count, each carrying
  // the replicate count in the trailing n_rep column.
  std::istringstream is{serial};
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u) << serial;
  EXPECT_EQ(lines[0].rfind("n_receivers,n_mean,n_cov,", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("constant_kbps_mean,constant_kbps_cov"),
            std::string::npos)
      << lines[0];
  EXPECT_EQ(lines[0].substr(lines[0].size() - 6), ",n_rep") << lines[0];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].substr(lines[i].size() - 2), ",5") << lines[i];
  }
  // Monte-Carlo columns really vary across the derived seeds: the CoV of
  // constant_kbps (column 5) is nonzero at every point.
  const auto cells = summary::split_csv(lines[1]);
  ASSERT_GT(cells.size(), 4u);
  EXPECT_GT(std::stod(cells[4]), 0.0) << lines[1];
}

TEST(ScenarioHarness, UnknownOverrideKeyIsRejected) {
  ScenarioOptions opts;
  opts.duration = SimTime::seconds(1);
  opts.set_param("no_such_knob", "1");
  std::ostringstream err;
  const auto [rc, out] = run_captured("fig09_single_bottleneck", opts, err);
  (void)out;
  EXPECT_EQ(rc, -1);
  EXPECT_NE(err.str().find("unknown parameter 'no_such_knob'"),
            std::string::npos);
}

}  // namespace
}  // namespace tfmcc

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (const auto& name : tfmcc::ScenarioRegistry::instance().names()) {
    testing::RegisterTest(
        "ScenarioSmoke", name.c_str(), nullptr, nullptr, __FILE__, __LINE__,
        [name]() -> testing::Test* {
          return new tfmcc::ScenarioSmokeCase(name);
        });
  }
  const int rc = RUN_ALL_TESTS();
  if (rc == 0 &&
      testing::UnitTest::GetInstance()->test_to_run_count() == 0) {
    // A filter that matches nothing (e.g. a renamed scenario) must not
    // silently pass its ctest entry.
    std::fprintf(stderr, "error: no test matched the filter\n");
    return 1;
  }
  return rc;
}
