#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// One TFMCC sender, one receiver, a 1 Mbit/s bottleneck.  The most basic
/// closed-loop scenario: the protocol must find and hold the bottleneck
/// rate using only self-induced queue losses.
struct BasicFixture {
  BasicFixture(double bottleneck_bps = 1e6, std::uint64_t seed = 21)
      : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = bottleneck_bps;
    bn.delay = 20_ms;
    // Queue sized near the bandwidth-delay product; ns-2's default of 50
    // packets would add up to 400 ms of queueing delay at 1 Mbit/s and
    // swamp the propagation RTT.
    bn.queue_limit_packets = 12;
    LinkConfig acc;
    acc.rate_bps = 100e6;
    acc.delay = 2_ms;
    dumbbell = make_dumbbell(topo, 1, 1, bn, acc);
    flow = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[0]);
    flow->add_joined_receiver(dumbbell.right_hosts[0]);
  }
  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
  std::unique_ptr<TfmccFlow> flow;
};

TEST(TfmccBasic, DeliversDataToReceiver) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(30_sec);
  EXPECT_GT(f.flow->receiver(0).packets_received(), 100);
  EXPECT_GT(f.flow->sender().data_sent(), 100);
}

TEST(TfmccBasic, ConvergesNearBottleneckRate) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(120_sec);
  const double kbps = f.flow->goodput(0).mean_kbps(60_sec, 120_sec);
  // Alone on a 1 Mbit/s link the flow should use most of it without
  // grossly exceeding it.
  EXPECT_GT(kbps, 500.0);
  EXPECT_LE(kbps, 1050.0);
}

TEST(TfmccBasic, SlowstartTerminatesOnFirstLoss) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  EXPECT_FALSE(f.flow->sender().in_slowstart());
  EXPECT_TRUE(f.flow->receiver(0).has_loss());
  EXPECT_FALSE(f.flow->sender().slowstart_exit_time().is_infinite());
}

TEST(TfmccBasic, SlowstartOvershootBounded) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  // §2.6: the overshoot is limited to ~2x the bottleneck bandwidth.
  const double peak_kbps = f.flow->sender().peak_slowstart_rate_Bps() * 8 / 1000;
  EXPECT_LT(peak_kbps, 2600.0);
}

TEST(TfmccBasic, ReceiverAcquiresRttMeasurement) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(30_sec);
  EXPECT_TRUE(f.flow->receiver(0).has_rtt_measurement());
  // True path RTT = 2*(2+20+2) = 48 ms; estimate within a factor ~3
  // (queueing inflates it).
  EXPECT_GT(f.flow->receiver(0).rtt(), 40_ms);
  EXPECT_LT(f.flow->receiver(0).rtt(), 150_ms);
}

TEST(TfmccBasic, SingleReceiverBecomesClr) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  EXPECT_EQ(f.flow->sender().clr(), 0);
  EXPECT_TRUE(f.flow->receiver(0).is_clr());
}

TEST(TfmccBasic, StopHaltsTransmission) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(10_sec);
  f.flow->sender().stop();
  const auto sent = f.flow->sender().data_sent();
  f.sim.run_until(20_sec);
  EXPECT_EQ(f.flow->sender().data_sent(), sent);
}

TEST(TfmccBasic, RateIsSmoothInSteadyState) {
  BasicFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(120_sec);
  OnlineStats s;
  for (const auto& pt : f.flow->goodput(0).series_kbps().points()) {
    if (pt.t >= 60_sec && pt.t < 120_sec) s.add(pt.v);
  }
  // Equation-based control: per-second goodput CoV well under TCP's
  // typical sawtooth variability.
  EXPECT_LT(s.cov(), 0.35);
}

TEST(TfmccBasic, HigherBandwidthYieldsHigherRate) {
  BasicFixture slow{0.5e6, 22};
  BasicFixture fast{4e6, 22};
  slow.flow->sender().start(SimTime::zero());
  fast.flow->sender().start(SimTime::zero());
  slow.sim.run_until(90_sec);
  fast.sim.run_until(90_sec);
  EXPECT_GT(fast.flow->goodput(0).mean_kbps(45_sec, 90_sec),
            2.0 * slow.flow->goodput(0).mean_kbps(45_sec, 90_sec));
}

TEST(TfmccBasic, FourReceiversAllReceive) {
  Simulator sim{33};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = 2e6;
  bn.delay = 10_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 1, 4, bn, acc);
  TfmccFlow flow{sim, topo, d.left_hosts[0]};
  for (int i = 0; i < 4; ++i) flow.add_joined_receiver(d.right_hosts[static_cast<size_t>(i)]);
  flow.sender().start(SimTime::zero());
  sim.run_until(60_sec);
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(flow.receiver(i).packets_received(), 500) << "receiver " << i;
  }
}

}  // namespace
}  // namespace tfmcc
