#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// Star topology with a clean and a lossy receiver: CLR selection, explicit
/// leave, and timeout behaviour (§2.2, §4.2).
struct ClrFixture {
  explicit ClrFixture(std::uint64_t seed = 61, double lossy_rate = 0.05)
      : sim{seed}, topo{sim} {
    LinkConfig sender_link;
    sender_link.rate_bps = 10e6;
    sender_link.delay = 5_ms;
    LinkConfig clean;
    clean.rate_bps = 10e6;
    clean.delay = 10_ms;
    LinkConfig lossy = clean;
    lossy.loss_rate = lossy_rate;
    star = make_star(topo, sender_link, {clean, lossy});
    flow = std::make_unique<TfmccFlow>(sim, topo, star.sender);
    flow->add_joined_receiver(star.leaves[0]);  // receiver 0: clean
    flow->add_joined_receiver(star.leaves[1]);  // receiver 1: lossy
  }
  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<TfmccFlow> flow;
};

TEST(TfmccClr, LossiestReceiverBecomesClr) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  EXPECT_EQ(f.flow->sender().clr(), 1);
  EXPECT_TRUE(f.flow->receiver(1).is_clr());
  EXPECT_FALSE(f.flow->receiver(0).is_clr());
}

TEST(TfmccClr, RateMatchesLossyPathNotCleanPath) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(120_sec);
  const double rate_kbps = kbps_from_Bps(f.flow->sender().rate_Bps());
  // The 5%-loss receiver's equation rate (~40ms RTT) is a few hundred
  // kbit/s, far below the 10 Mbit/s links.
  EXPECT_LT(rate_kbps, 2000.0);
  EXPECT_GT(rate_kbps, 20.0);
}

TEST(TfmccClr, ExplicitLeaveTriggersSwitchAndRateIncrease) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(90_sec);
  ASSERT_EQ(f.flow->sender().clr(), 1);
  const double before = f.flow->sender().rate_Bps();
  f.flow->receiver(1).leave();
  f.sim.run_until(240_sec);
  // The clean receiver takes over and the rate ramps up (limited to one
  // packet per RTT, so give it time).
  EXPECT_EQ(f.flow->sender().clr(), 0);
  EXPECT_GT(f.flow->sender().rate_Bps(), before * 1.5);
}

TEST(TfmccClr, ClrChangeIsRecordedInHistory) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  const auto& hist = f.flow->sender().clr_history();
  ASSERT_FALSE(hist.empty());
  EXPECT_EQ(hist.back().second, 1);
}

TEST(TfmccClr, CrashedClrTimesOut) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(90_sec);
  ASSERT_EQ(f.flow->sender().clr(), 1);
  // Simulate a crash: the receiver silently stops responding (no leave
  // report) because its reverse path dies.
  f.star.leaf_links[1].second->set_loss_rate(1.0);
  f.sim.run_until(400_sec);
  // The silence timeout must eventually replace the CLR.
  EXPECT_NE(f.flow->sender().clr(), 1);
}

TEST(TfmccClr, ReceiverRejoinStartsCleanMembership) {
  ClrFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  auto& clean_rx = f.flow->receiver(0);
  ASSERT_FALSE(clean_rx.has_loss());
  clean_rx.leave();
  f.sim.run_until(120_sec);  // the stream advances thousands of seqnos
  clean_rx.join();
  f.sim.run_until(150_sec);
  // A rejoin must re-baseline the sequence space: on the lossless path the
  // receiver sees no loss, so reading the 60 s absence gap as a loss burst
  // is the regression this guards against.
  EXPECT_GT(clean_rx.packets_received(), 0);
  EXPECT_FALSE(clean_rx.has_loss());
  EXPECT_EQ(clean_rx.packets_lost(), 0);
}

TEST(TfmccClr, ClrHandoffOnModeledBlockLeave) {
  // Hybrid-tier counterpart of ExplicitLeaveTriggersSwitchAndRateIncrease:
  // the lossy path hosts a modeled block, one of its receivers holds CLR
  // duty, and the block's leave reports must hand the CLR to the remaining
  // full receiver within the session (no silence timeout).
  Simulator sim{63};
  Topology topo{sim};
  LinkConfig sender_link;
  sender_link.rate_bps = 10e6;
  sender_link.delay = 5_ms;
  LinkConfig clean;
  clean.rate_bps = 10e6;
  clean.delay = 10_ms;
  LinkConfig lossy = clean;
  lossy.loss_rate = 0.05;
  const Star star = make_star(topo, sender_link, {clean, lossy});
  TfmccFlow flow{sim, topo, star.sender};
  flow.add_joined_receiver(star.leaves[0]);
  const int b = flow.add_modeled_block(star.leaves[1], 32);
  flow.block(b).join();
  flow.sender().start(SimTime::zero());
  sim.run_until(90_sec);
  ASSERT_TRUE(flow.block(b).hosts(flow.sender().clr()))
      << "a modeled receiver behind the lossy tap should limit the session";
  flow.block(b).leave();
  sim.run_until(240_sec);
  EXPECT_EQ(flow.sender().clr(), 0);
  EXPECT_FALSE(flow.session().is_member(star.leaves[1]));
}

TEST(TfmccClr, NewLowRateReceiverTakesOverQuickly) {
  // A receiver behind a much slower bottleneck joins mid-session; §4.5
  // requires the CLR switch within a very few seconds.
  Simulator sim{62};
  Topology topo{sim};
  LinkConfig sender_link;
  sender_link.rate_bps = 10e6;
  sender_link.delay = 5_ms;
  LinkConfig fast;
  fast.rate_bps = 10e6;
  fast.delay = 10_ms;
  LinkConfig slow;
  slow.rate_bps = 200e3;  // 200 kbit/s tail circuit
  slow.delay = 10_ms;
  const Star star = make_star(topo, sender_link, {fast, slow});
  TfmccFlow flow{sim, topo, star.sender};
  flow.add_joined_receiver(star.leaves[0]);
  flow.add_receiver(star.leaves[1]);
  flow.sender().start(SimTime::zero());
  sim.run_until(50_sec);
  const double before_kbps = kbps_from_Bps(flow.sender().rate_Bps());
  flow.receiver(1).join();
  sim.run_until(65_sec);
  EXPECT_EQ(flow.sender().clr(), 1);
  const double after_kbps = kbps_from_Bps(flow.sender().rate_Bps());
  EXPECT_LT(after_kbps, before_kbps);
  EXPECT_LT(after_kbps, 400.0);  // near the 200 kbit/s tail
}

}  // namespace
}  // namespace tfmcc
