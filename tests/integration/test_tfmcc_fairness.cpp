#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// TFMCC vs TCP over a shared bottleneck (the fig. 9 setting, scaled down
/// for test runtime): the flows must share within the paper's notion of
/// TCP-friendliness, and TFMCC must be the smoother one.
struct FairnessFixture {
  FairnessFixture(double bottleneck_bps, int n_tcp, std::uint64_t seed = 41)
      : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = bottleneck_bps;
    bn.delay = 20_ms;
    LinkConfig acc;
    acc.rate_bps = 100e6;
    acc.delay = 2_ms;
    dumbbell = make_dumbbell(topo, 1 + n_tcp, 1 + n_tcp, bn, acc);
    flow = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[0]);
    flow->add_joined_receiver(dumbbell.right_hosts[0]);
    for (int i = 0; i < n_tcp; ++i) {
      tcp.push_back(std::make_unique<TcpFlow>(
          sim, topo, dumbbell.left_hosts[static_cast<size_t>(i + 1)],
          dumbbell.right_hosts[static_cast<size_t>(i + 1)], i));
    }
  }

  void run(SimTime until) {
    flow->sender().start(SimTime::zero());
    for (size_t i = 0; i < tcp.size(); ++i) {
      tcp[i]->start(SimTime::millis(37 * static_cast<int64_t>(i)));
    }
    sim.run_until(until);
  }

  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
  std::unique_ptr<TfmccFlow> flow;
  std::vector<std::unique_ptr<TcpFlow>> tcp;
};

TEST(TfmccFairness, SharesWithOneTcp) {
  FairnessFixture f{2e6, 1};
  f.run(180_sec);
  const double tfmcc_kbps = f.flow->goodput(0).mean_kbps(60_sec, 180_sec);
  const double tcp_kbps = f.tcp[0]->mean_kbps(60_sec, 180_sec);
  // Medium-term fairness within a factor of ~3 either way (the paper's
  // TCP-friendliness is a "no worse than another TCP" criterion, not
  // exact equality).
  EXPECT_GT(tfmcc_kbps, tcp_kbps / 3.0);
  EXPECT_LT(tfmcc_kbps, tcp_kbps * 3.0);
  // Link is well utilised.
  EXPECT_GT(tfmcc_kbps + tcp_kbps, 1500.0);
}

TEST(TfmccFairness, SharesWithFourTcps) {
  FairnessFixture f{4e6, 4};
  f.run(180_sec);
  const double tfmcc_kbps = f.flow->goodput(0).mean_kbps(60_sec, 180_sec);
  double tcp_total = 0.0;
  for (const auto& t : f.tcp) tcp_total += t->mean_kbps(60_sec, 180_sec);
  const double tcp_avg = tcp_total / 4.0;
  EXPECT_GT(tfmcc_kbps, tcp_avg / 3.5);
  EXPECT_LT(tfmcc_kbps, tcp_avg * 3.5);
}

TEST(TfmccFairness, SmootherThanTcp) {
  FairnessFixture f{2e6, 1};
  f.run(180_sec);
  OnlineStats s_tfmcc, s_tcp;
  for (const auto& p : f.flow->goodput(0).series_kbps().points()) {
    if (p.t >= 60_sec) s_tfmcc.add(p.v);
  }
  for (const auto& p : f.tcp[0]->goodput.series_kbps().points()) {
    if (p.t >= 60_sec) s_tcp.add(p.v);
  }
  // §1.1/§4.1: TFMCC's raison d'etre vs TCP — a smoother rate.
  EXPECT_LT(s_tfmcc.cov(), s_tcp.cov());
}

TEST(TfmccFairness, TcpRecoversAfterTfmccStops) {
  FairnessFixture f{2e6, 1};
  f.flow->sender().start(SimTime::zero());
  f.tcp[0]->start(SimTime::zero());
  f.sim.run_until(90_sec);
  f.flow->sender().stop();
  f.sim.run_until(180_sec);
  // With TFMCC gone, TCP should claim (nearly) the whole bottleneck.
  EXPECT_GT(f.tcp[0]->mean_kbps(120_sec, 180_sec), 1500.0);
}

TEST(TfmccFairness, InsensitiveToReturnPathLoss) {
  // Fig. 19's core claim: TFMCC is insensitive to the loss of receiver
  // reports.  Run the same scenario with and without reverse-path loss.
  auto run_scenario = [](double reverse_loss) {
    Simulator sim{55};
    Topology topo{sim};
    const NodeId s = topo.add_node();
    const NodeId r = topo.add_node();
    LinkConfig fwd;
    fwd.rate_bps = 1e6;
    fwd.delay = 20_ms;
    LinkConfig rev = fwd;
    rev.loss_rate = reverse_loss;
    topo.add_link(s, r, fwd);
    topo.add_link(r, s, rev);
    topo.compute_routes();
    TfmccFlow flow{sim, topo, s};
    flow.add_joined_receiver(r);
    flow.sender().start(SimTime::zero());
    sim.run_until(120_sec);
    return flow.goodput(0).mean_kbps(60_sec, 120_sec);
  };
  const double clean = run_scenario(0.0);
  const double lossy = run_scenario(0.2);
  EXPECT_GT(lossy, 0.5 * clean);
}

}  // namespace
}  // namespace tfmcc
