#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// Large receiver sets behind a shared bottleneck: the suppression
/// mechanism must prevent feedback implosion while still delivering the
/// lowest-rate reports to the sender (§2.5).
struct CrowdFixture {
  CrowdFixture(int n_receivers, double bottleneck_bps = 500e3,
               std::uint64_t seed = 71)
      : sim{seed}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = bottleneck_bps;
    bn.delay = 20_ms;
    LinkConfig acc;
    acc.rate_bps = 100e6;
    acc.delay = 2_ms;
    dumbbell = make_dumbbell(topo, 1, n_receivers, bn, acc);
    flow = std::make_unique<TfmccFlow>(sim, topo, dumbbell.left_hosts[0]);
    for (int i = 0; i < n_receivers; ++i) {
      flow->add_joined_receiver(dumbbell.right_hosts[static_cast<size_t>(i)]);
    }
  }
  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
  std::unique_ptr<TfmccFlow> flow;
};

TEST(TfmccFeedback, NoImplosionWith200Receivers) {
  CrowdFixture f{200};
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  // All 200 receivers share one bottleneck: identical conditions, the
  // worst case for suppression.  The sender must hear orders of magnitude
  // fewer reports than a per-receiver-per-round implosion would produce.
  const double rounds = static_cast<double>(f.flow->sender().round());
  const double fb_per_round =
      static_cast<double>(f.flow->sender().feedback_received()) /
      std::max(1.0, rounds);
  EXPECT_LT(fb_per_round, 40.0);
  EXPECT_GT(f.flow->sender().feedback_received(), 0);
}

TEST(TfmccFeedback, FeedbackScalesSubLinearly) {
  CrowdFixture small{25, 500e3, 72};
  CrowdFixture large{200, 500e3, 72};
  small.flow->sender().start(SimTime::zero());
  large.flow->sender().start(SimTime::zero());
  small.sim.run_until(60_sec);
  large.sim.run_until(60_sec);
  const auto per_round = [](const CrowdFixture& f) {
    return static_cast<double>(f.flow->sender().feedback_received()) /
           std::max(1, f.flow->sender().round());
  };
  // 8x the receivers must produce nowhere near 8x the feedback.
  EXPECT_LT(per_round(large), 3.0 * per_round(small));
}

TEST(TfmccFeedback, SenderStillLearnsRates) {
  CrowdFixture f{100};
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(90_sec);
  // Suppression must not starve the sender of information: it converges
  // to a sane rate for a 500 kbit/s bottleneck.
  const double kbps = kbps_from_Bps(f.flow->sender().rate_Bps());
  EXPECT_GT(kbps, 100.0);
  EXPECT_LT(kbps, 650.0);
}

TEST(TfmccFeedback, RttAcquisitionProgresses) {
  CrowdFixture f{100};
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(20_sec);
  const int early = f.flow->receivers_with_rtt();
  f.sim.run_until(120_sec);
  const int later = f.flow->receivers_with_rtt();
  // Fig. 12's mechanism: at least one receiver measures its RTT per round,
  // so the count grows steadily.
  EXPECT_GT(later, early);
  EXPECT_GT(later, 10);
}

TEST(TfmccFeedback, EveryReceiverCountsLosses) {
  CrowdFixture f{50};
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(60_sec);
  int with_loss = 0;
  for (int i = 0; i < 50; ++i) {
    with_loss += f.flow->receiver(i).has_loss();
  }
  // Shared bottleneck: drops hit the multicast stream before the fan-out,
  // so all receivers see them.
  EXPECT_GT(with_loss, 40);
}

TEST(TfmccFeedback, LowRateGuardExtendsRound) {
  // At very low sending rates the round must stretch to (c+1) packet
  // intervals (§2.5.3).
  Simulator sim{73};
  Topology topo{sim};
  LinkConfig slow;
  slow.rate_bps = 40e3;  // 5 packets/s max
  slow.delay = 20_ms;
  const Star star = make_star(topo, slow, {slow});
  TfmccFlow flow{sim, topo, star.sender};
  flow.add_joined_receiver(star.leaves[0]);
  flow.sender().start(SimTime::zero());
  sim.run_until(120_sec);
  const double pkt_interval =
      kDataPacketBytes / std::max(flow.sender().rate_Bps(), 1.0);
  EXPECT_GE(flow.sender().round_duration().to_seconds(),
            (3 + 1) * pkt_interval * 0.99);
}

}  // namespace
}  // namespace tfmcc
