#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/flow.hpp"
#include "tfrc/equation.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

struct RttFixture {
  explicit RttFixture(std::uint64_t seed = 81, TfmccConfig cfg = {})
      : sim{seed}, topo{sim} {
    LinkConfig sender_link;
    sender_link.rate_bps = 2e6;
    sender_link.delay = 5_ms;
    LinkConfig a;
    a.rate_bps = 2e6;
    a.delay = 10_ms;  // RTT sender<->leaf0 = 2*(5+10) = 30 ms
    LinkConfig b;
    b.rate_bps = 2e6;
    b.delay = 50_ms;  // RTT sender<->leaf1 = 2*(5+50) = 110 ms
    star = make_star(topo, sender_link, {a, b});
    flow = std::make_unique<TfmccFlow>(sim, topo, star.sender, cfg);
    flow->add_joined_receiver(star.leaves[0]);
    flow->add_joined_receiver(star.leaves[1]);
  }
  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<TfmccFlow> flow;
};

TEST(TfmccRtt, EstimatesConvergeNearPathRtt) {
  RttFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(120_sec);
  ASSERT_TRUE(f.flow->receiver(0).has_rtt_measurement());
  ASSERT_TRUE(f.flow->receiver(1).has_rtt_measurement());
  // Propagation RTTs are 30 ms and 110 ms; queueing adds some.
  EXPECT_GT(f.flow->receiver(0).rtt(), 25_ms);
  EXPECT_LT(f.flow->receiver(0).rtt(), 120_ms);
  EXPECT_GT(f.flow->receiver(1).rtt(), 100_ms);
  EXPECT_LT(f.flow->receiver(1).rtt(), 300_ms);
}

TEST(TfmccRtt, InitialEstimateIsConservative) {
  RttFixture f;
  // Before any measurement, receivers must use the 500 ms initial value.
  EXPECT_EQ(f.flow->receiver(0).rtt(), 500_ms);
}

TEST(TfmccRtt, OneWayDelayAdjustmentTracksDelayIncrease) {
  RttFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(90_sec);
  ASSERT_TRUE(f.flow->receiver(0).has_rtt_measurement());
  const SimTime before = f.flow->receiver(0).rtt();
  // Quadruple the one-way delay of leaf 0's links mid-run (fig. 13's RTT
  // change).  The one-way-delay adjustments must raise the estimate even
  // without a fresh echo.
  f.star.leaf_links[0].first->set_delay(80_ms);
  f.star.leaf_links[0].second->set_delay(80_ms);
  f.sim.run_until(150_sec);
  EXPECT_GT(f.flow->receiver(0).rtt(), before + 50_ms);
}

TEST(TfmccRtt, ClockSyncInitialisationUsesOneWayDelay) {
  TfmccConfig cfg;
  cfg.use_clock_sync = true;
  cfg.clock_sync_error = 20_ms;
  RttFixture f{82, cfg};
  f.flow->sender().start(SimTime::zero());
  // Stop before any echo can arrive at receiver 1 (its first packet lands
  // after ~55 ms; echoes need a full feedback exchange).
  f.sim.run_until(1_sec);
  // §2.4.1: rtt ~= 2*(owd + err) = 2*(55+20) = 150 ms for leaf 1 —
  // far better than the 500 ms default.
  EXPECT_LT(f.flow->receiver(1).rtt(), 250_ms);
  EXPECT_GT(f.flow->receiver(1).rtt(), 110_ms);
}

TEST(TfmccRtt, HighRttReceiverDominatesCalculatedRate) {
  // Same loss conditions, different RTTs: the equation gives the high-RTT
  // receiver the lower rate, so it must end up as CLR.
  Simulator sim{83};
  Topology topo{sim};
  LinkConfig sender_link;
  sender_link.rate_bps = 1e6;
  sender_link.delay = 5_ms;
  LinkConfig near;
  near.rate_bps = 100e6;
  near.delay = 10_ms;
  LinkConfig far = near;
  far.delay = 120_ms;
  const Star star = make_star(topo, sender_link, {near, far});
  TfmccFlow flow{sim, topo, star.sender};
  flow.add_joined_receiver(star.leaves[0]);
  flow.add_joined_receiver(star.leaves[1]);
  flow.sender().start(SimTime::zero());
  sim.run_until(180_sec);
  // Both see the same (bottleneck) losses; the far receiver limits.
  EXPECT_EQ(flow.sender().clr(), 1);
}

TEST(TfmccRtt, SenderSideMeasurementAdjustsInitialReports) {
  // A receiver with 100% echo starvation would report with the initial
  // 500 ms RTT; the sender-side measurement must prevent the rate from
  // collapsing to the initial-RTT rate.  We approximate by checking the
  // steady rate exceeds what a 500 ms RTT would permit at the measured
  // loss rate.
  RttFixture f;
  f.flow->sender().start(SimTime::zero());
  f.sim.run_until(120_sec);
  const double p = f.flow->receiver(1).loss_event_rate();
  if (p > 0.0) {
    const double rate_at_init_rtt =
        tcp_model::throughput_Bps(kDataPacketBytes, 500_ms, p);
    EXPECT_GT(f.flow->sender().rate_Bps(), rate_at_init_rtt);
  }
}

}  // namespace
}  // namespace tfmcc
