#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tfrc/equation.hpp"

namespace tfmcc {
namespace {

namespace tm = tcp_model;

/// (packet bytes, rtt ms, loss rate) grid.
using EqParam = std::tuple<double, int, double>;

class EquationSweep : public ::testing::TestWithParam<EqParam> {};

TEST_P(EquationSweep, ThroughputIsPositiveAndFinite) {
  const auto [s, rtt_ms, p] = GetParam();
  const double x = tm::throughput_Bps(s, SimTime::millis(rtt_ms), p);
  EXPECT_GT(x, 0.0);
  EXPECT_TRUE(std::isfinite(x));
}

TEST_P(EquationSweep, FullInverseRoundTrips) {
  const auto [s, rtt_ms, p] = GetParam();
  const SimTime rtt = SimTime::millis(rtt_ms);
  const double rate = tm::throughput_Bps(s, rtt, p);
  EXPECT_NEAR(tm::loss_for_throughput(s, rtt, rate), p, p * 1e-3);
}

TEST_P(EquationSweep, SimpleInverseRoundTrips) {
  const auto [s, rtt_ms, p] = GetParam();
  const SimTime rtt = SimTime::millis(rtt_ms);
  const double rate = tm::simple_throughput_Bps(s, rtt, p);
  EXPECT_NEAR(tm::simple_loss_for_throughput(s, rtt, rate), p, p * 1e-6);
}

TEST_P(EquationSweep, FullModelBelowSimpleModel) {
  // The Padhye model includes timeout effects, so it never exceeds the
  // pure-AIMD Mathis bound (for b = 1 both share the sqrt term's constant
  // up to sqrt(2/3) vs sqrt(3/2) scaling; the RTO term only subtracts).
  const auto [s, rtt_ms, p] = GetParam();
  const SimTime rtt = SimTime::millis(rtt_ms);
  EXPECT_LE(tm::throughput_Bps(s, rtt, p),
            tm::simple_throughput_Bps(s, rtt, p) * 1.5 + 1.0);
}

TEST_P(EquationSweep, MoreLossNeverMeansMoreThroughput) {
  const auto [s, rtt_ms, p] = GetParam();
  const SimTime rtt = SimTime::millis(rtt_ms);
  EXPECT_LE(tm::throughput_Bps(s, rtt, p * 1.5),
            tm::throughput_Bps(s, rtt, p));
}

TEST_P(EquationSweep, LongerRttNeverMeansMoreThroughput) {
  const auto [s, rtt_ms, p] = GetParam();
  EXPECT_LE(tm::throughput_Bps(s, SimTime::millis(rtt_ms * 2), p),
            tm::throughput_Bps(s, SimTime::millis(rtt_ms), p));
}

TEST_P(EquationSweep, DelayedAckNeverFaster) {
  const auto [s, rtt_ms, p] = GetParam();
  const SimTime rtt = SimTime::millis(rtt_ms);
  EXPECT_LE(tm::throughput_Bps(s, rtt, p, 2.0), tm::throughput_Bps(s, rtt, p, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EquationSweep,
    ::testing::Combine(::testing::Values(500.0, 1000.0, 1500.0),
                       ::testing::Values(10, 50, 100, 500),
                       ::testing::Values(0.0001, 0.001, 0.01, 0.05, 0.2)));

}  // namespace
}  // namespace tfmcc
