// Property tests for the fixed-point equation primitives: floor-sqrt
// bounds and monotonicity of isqrt64/scaled_sqrt across randomised 64-bit
// inputs, monotonicity of the f(p) table and of calc_x in each argument,
// reverse-lookup monotonicity, and the EWMA's bounds and fixed points.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "tfrc/equation_fixed.hpp"

namespace tfmcc {
namespace {

namespace fp = fixedpoint;

/// Deterministic 64-bit stream (splitmix64) so failures reproduce exactly.
struct Splitmix {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

TEST(FixedpointSqrt, IsqrtIsTheFloorSquareRoot) {
  // r = isqrt64(x) must satisfy r^2 <= x < (r+1)^2 over the whole range,
  // including the u32 boundary and the top of the u64 range.
  std::vector<std::uint64_t> xs{0,
                                1,
                                2,
                                3,
                                4,
                                15,
                                16,
                                (1ULL << 32) - 1,
                                1ULL << 32,
                                (1ULL << 32) + 1,
                                std::numeric_limits<std::uint64_t>::max()};
  Splitmix rng{0xfeedULL};
  for (int i = 0; i < 20'000; ++i) xs.push_back(rng.next());
  // Exact squares and their neighbours are the boundary cases.
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t r = rng.next() >> 32;
    xs.push_back(r * r);
    if (r > 0) xs.push_back(r * r - 1);
    xs.push_back(r * r + 1);
  }
  for (const std::uint64_t x : xs) {
    const std::uint64_t r = fp::isqrt64(x);
    EXPECT_LE(r * r, x) << "x=" << x << " r=" << r;
    // (r+1)^2 overflows only when r == 2^32 - 1, where x has no larger
    // representable square to compare against.
    if (r < 0xffffffffULL) {
      EXPECT_GT((r + 1) * (r + 1), x) << "x=" << x << " r=" << r;
    }
  }
}

TEST(FixedpointSqrt, ScaledSqrtIsMonotoneAndNeverZero) {
  Splitmix rng{0xabcULL};
  std::vector<std::uint32_t> xs{0, 1, 2, 3, 1023, 1024, 1025,
                                std::numeric_limits<std::uint32_t>::max()};
  for (int i = 0; i < 20'000; ++i) {
    xs.push_back(static_cast<std::uint32_t>(rng.next()));
  }
  std::sort(xs.begin(), xs.end());
  std::uint32_t prev = 0;
  for (const std::uint32_t x : xs) {
    const std::uint32_t r = fp::scaled_sqrt(x);
    EXPECT_GT(r, 0u) << "x=" << x;  // never zero: safe as a divisor
    EXPECT_GE(r, prev) << "x=" << x;
    prev = r;
  }
  // Rounding contract: scaled_sqrt is the floor sqrt of x << 10 (with the
  // zero sample clamped to 1), so the scale factor cancels in ratios.
  EXPECT_EQ(fp::scaled_sqrt(1), fp::isqrt64(1ULL << 10));
  EXPECT_EQ(fp::scaled_sqrt(0), fp::isqrt64(1ULL << 10));
  EXPECT_EQ(fp::scaled_sqrt(100), fp::isqrt64(100ULL << 10));
}

TEST(FixedpointTable, LookupFIsStrictlyIncreasingAcrossBothSegments) {
  // f(p) is strictly increasing; the table plus interpolation must keep
  // that, in particular across the fine/coarse segment boundary.
  std::uint32_t prev = 0;
  for (std::uint32_t p = fp::kSmallestP; p <= fp::kPScale; p += 50) {
    const std::uint32_t f = fp::lookup_f(p);
    EXPECT_GT(f, 0u) << "p_scaled=" << p;
    EXPECT_GE(f, prev) << "p_scaled=" << p;
    prev = f;
  }
  // Coarser strides must be strictly increasing (equal neighbours can
  // only come from quantisation at the finest stride).
  EXPECT_LT(fp::lookup_f(1'000), fp::lookup_f(2'000));
  EXPECT_LT(fp::lookup_f(fp::kSplitP - fp::kSmallStep),
            fp::lookup_f(fp::kSplitP + fp::kLargeStep));
  EXPECT_LT(fp::lookup_f(900'000), fp::lookup_f(fp::kPScale));
}

TEST(FixedpointCalcX, MonotoneInEachArgument) {
  // Throughput falls with loss and RTT, grows with packet size.
  std::uint64_t prev = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t p = fp::kSmallestP; p <= fp::kPScale; p += 997) {
    const std::uint64_t x = fp::calc_x(1000, 80'000, p);
    EXPECT_LE(x, prev) << "p_scaled=" << p;
    prev = x;
  }
  prev = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t rtt_us = 1'000; rtt_us <= 4'000'000; rtt_us *= 2) {
    const std::uint64_t x = fp::calc_x(1000, rtt_us, 10'000);
    EXPECT_LT(x, prev) << "rtt_us=" << rtt_us;
    prev = x;
  }
  prev = 0;
  for (std::uint32_t s = 64; s <= 65'536; s *= 2) {
    const std::uint64_t x = fp::calc_x(s, 80'000, 10'000);
    EXPECT_GT(x, prev) << "s=" << s;
    prev = x;
  }
}

TEST(FixedpointReverseLookup, MonotoneNonDecreasingInF) {
  const std::uint64_t f_max = fp::lookup_f(fp::kPScale);
  std::uint32_t prev = 0;
  for (std::uint64_t f = 0; f <= f_max + f_max / 4; f += f_max / 4096 + 1) {
    const std::uint32_t p = fp::calc_x_reverse_lookup(f);
    EXPECT_GE(p, fp::kSmallestP) << "f=" << f;
    EXPECT_LE(p, fp::kPScale) << "f=" << f;
    EXPECT_GE(p, prev) << "f=" << f;
    prev = p;
  }
}

TEST(FixedpointEwma, BoundedByItsInputsAndHasFixedPoints) {
  Splitmix stream{0x5eedULL};
  for (int i = 0; i < 20'000; ++i) {
    const auto avg = static_cast<std::uint32_t>(stream.next() % fp::kPScale);
    const auto nv = static_cast<std::uint32_t>(stream.next() % fp::kPScale);
    const auto w = static_cast<std::uint32_t>(stream.next() % 11);  // 0..10
    const std::uint32_t r = fp::ewma(avg, nv, w);
    if (avg == 0) {
      EXPECT_EQ(r, nv);  // bootstrap
      continue;
    }
    EXPECT_GE(r, std::min(avg, nv)) << "avg=" << avg << " nv=" << nv
                                    << " w=" << w;
    EXPECT_LE(r, std::max(avg, nv)) << "avg=" << avg << " nv=" << nv
                                    << " w=" << w;
    // A constant stream is a fixed point at any weight.
    EXPECT_EQ(fp::ewma(nv, nv, w), nv);
  }
}

}  // namespace
}  // namespace tfmcc
