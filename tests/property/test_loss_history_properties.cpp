#include <gtest/gtest.h>

#include <tuple>

#include "tfrc/loss_history.hpp"
#include "util/rng.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// (history depth, loss probability, seed) — random loss pattern sweep.
using LhParam = std::tuple<int, double, int>;

class LossHistorySweep : public ::testing::TestWithParam<LhParam> {
 protected:
  /// Drive a LossHistory with a Bernoulli loss pattern at 50 pkts/sec.
  LossHistory drive(int packets, SimTime rtt) {
    const auto [depth, p, seed] = GetParam();
    LossHistory h{depth};
    Rng rng{static_cast<std::uint64_t>(seed)};
    SimTime t = SimTime::zero();
    for (int i = 0; i < packets; ++i) {
      t += 20_ms;
      if (rng.bernoulli(p)) {
        h.on_packet_lost(t, rtt);
      } else {
        h.on_packet_received();
      }
    }
    return h;
  }
};

TEST_P(LossHistorySweep, LossEventRateIsAProbability) {
  const auto h = drive(5000, 100_ms);
  EXPECT_GE(h.loss_event_rate(), 0.0);
  EXPECT_LE(h.loss_event_rate(), 1.0);
}

TEST_P(LossHistorySweep, IntervalsAreNonNegativeAndBounded) {
  const auto [depth, p, seed] = GetParam();
  const auto h = drive(5000, 100_ms);
  EXPECT_LE(h.intervals().size(), static_cast<std::size_t>(depth));
  for (double iv : h.intervals()) EXPECT_GE(iv, 0.0);
  EXPECT_GE(h.open_interval(), 0.0);
}

TEST_P(LossHistorySweep, EventRateBoundedByRawLossRate) {
  // Aggregating losses into events can only reduce the measured rate, so
  // p_event <= ~p_packet (with estimation slack for short histories).
  const auto [depth, p, seed] = GetParam();
  if (p <= 0.0) return;
  const auto h = drive(20000, 100_ms);
  if (!h.has_loss()) return;
  EXPECT_LE(h.loss_event_rate(), p * 2.5 + 0.02);
}

TEST_P(LossHistorySweep, ReaggregationWithSameRttIsStable) {
  auto h = drive(3000, 100_ms);
  if (!h.has_loss()) return;
  const int events_before = h.event_count();
  h.reaggregate(100_ms);
  // The bounded loss log may cover fewer events than the lifetime count,
  // but never more.
  EXPECT_LE(h.event_count(), events_before);
  EXPECT_GT(h.event_count(), 0);
}

TEST_P(LossHistorySweep, LargerAggregationRttNeverIncreasesEvents) {
  auto h1 = drive(3000, 100_ms);
  auto h2 = drive(3000, 100_ms);  // identical pattern (same seed)
  if (!h1.has_loss()) return;
  h1.reaggregate(50_ms);
  h2.reaggregate(800_ms);
  EXPECT_GE(h1.event_count(), h2.event_count());
}

TEST_P(LossHistorySweep, AverageIntervalConsistentWithRate) {
  const auto h = drive(5000, 100_ms);
  if (!h.has_loss()) return;
  EXPECT_NEAR(h.loss_event_rate() * h.average_interval(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossHistorySweep,
    ::testing::Combine(::testing::Values(4, 8, 32),
                       ::testing::Values(0.001, 0.01, 0.08, 0.3),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace tfmcc
