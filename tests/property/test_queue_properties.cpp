#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <tuple>

#include "net/queue.hpp"
#include "util/rng.hpp"

namespace tfmcc {
namespace {

/// (queue limit, enqueue probability per step, seed).
using QParam = std::tuple<int, double, int>;

class QueueSweep : public ::testing::TestWithParam<QParam> {};

PacketPtr mk(std::uint64_t uid, std::int32_t bytes) {
  auto p = make_heap_packet();
  p->uid = uid;
  p->size_bytes = bytes;
  return p;
}

TEST_P(QueueSweep, DropTailInvariantsUnderRandomWorkload) {
  const auto [limit, p_enq, seed] = GetParam();
  DropTailQueue q{static_cast<std::size_t>(limit)};
  Rng rng{static_cast<std::uint64_t>(seed)};
  std::deque<std::uint64_t> model;  // reference FIFO of accepted uids
  std::int64_t model_bytes = 0;
  std::uint64_t next_uid = 1;

  for (int step = 0; step < 20000; ++step) {
    if (rng.bernoulli(p_enq)) {
      const auto bytes = static_cast<std::int32_t>(rng.uniform_int(40, 1500));
      const bool accepted = q.enqueue(mk(next_uid, bytes));
      ASSERT_EQ(accepted, model.size() < static_cast<std::size_t>(limit));
      if (accepted) {
        model.push_back(next_uid);
        model_bytes += bytes;
      }
      ++next_uid;
    } else {
      PacketPtr out = q.dequeue();
      if (model.empty()) {
        ASSERT_EQ(out, nullptr);
      } else {
        ASSERT_NE(out, nullptr);
        ASSERT_EQ(out->uid, model.front());  // strict FIFO
        model.pop_front();
        model_bytes -= out->size_bytes;
      }
    }
    ASSERT_EQ(q.size_packets(), model.size());
    ASSERT_EQ(q.size_bytes(), model_bytes);
    ASSERT_LE(q.size_packets(), static_cast<std::size_t>(limit));
  }
}

TEST_P(QueueSweep, RedNeverExceedsHardLimitAndStaysFifo) {
  const auto [limit, p_enq, seed] = GetParam();
  RedQueue::Config cfg;
  cfg.limit_packets = static_cast<std::size_t>(limit);
  cfg.max_th = limit * 0.5;
  cfg.min_th = limit * 0.2;
  RedQueue q{cfg, Rng{static_cast<std::uint64_t>(seed + 100)}};
  Rng rng{static_cast<std::uint64_t>(seed)};
  std::deque<std::uint64_t> model;
  std::uint64_t next_uid = 1;

  for (int step = 0; step < 20000; ++step) {
    if (rng.bernoulli(p_enq)) {
      if (q.enqueue(mk(next_uid, 1000))) model.push_back(next_uid);
      ++next_uid;
    } else if (PacketPtr out = q.dequeue()) {
      ASSERT_FALSE(model.empty());
      ASSERT_EQ(out->uid, model.front());
      model.pop_front();
    }
    ASSERT_LE(q.size_packets(), static_cast<std::size_t>(limit));
    ASSERT_EQ(q.size_packets(), model.size());
  }
  // Accounting: accepted - dequeued == still queued.
  EXPECT_EQ(q.accepted() - static_cast<std::int64_t>(model.size()),
            static_cast<std::int64_t>(next_uid - 1) - q.drops() -
                static_cast<std::int64_t>(model.size()));
}

INSTANTIATE_TEST_SUITE_P(Grid, QueueSweep,
                         ::testing::Combine(::testing::Values(5, 50, 200),
                                            ::testing::Values(0.4, 0.5, 0.7),
                                            ::testing::Values(1, 2)));

}  // namespace
}  // namespace tfmcc
