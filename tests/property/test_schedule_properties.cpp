// Property tests for the time-warped event schedules (sim/schedule.hpp):
// under any warp factor, a script keeps its event order and relative
// spacing, never fires past the horizon, and an identity warp is exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/schedule.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

std::vector<SimTime> random_script(Rng& rng, SimTime ref_horizon, int n) {
  std::vector<SimTime> times;
  times.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    times.push_back(SimTime::nanos(
        rng.uniform_int(0, ref_horizon.count_nanos())));
  }
  std::sort(times.begin(), times.end());
  return times;
}

TEST(TimeWarpProperty, OrderAndHorizonPreservedUnderAnyWarp) {
  Rng rng{2024};
  for (int iter = 0; iter < 200; ++iter) {
    const SimTime ref = SimTime::seconds(rng.uniform(1.0, 1000.0));
    // Warp factors from deep compression (0.01x) to dilation (10x).
    const SimTime actual = ref * rng.uniform(0.01, 10.0);
    const TimeWarp warp{ref, actual};
    const auto script = random_script(rng, ref, 20);
    SimTime prev = SimTime::zero();
    for (const SimTime t : script) {
      const SimTime w = warp(t);
      ASSERT_GE(w, prev) << "order violated at iter " << iter;
      ASSERT_GE(w, SimTime::zero());
      ASSERT_LE(w, actual) << "event past the horizon at iter " << iter;
      prev = w;
    }
  }
}

TEST(TimeWarpProperty, RelativeSpacingScalesWithTheFactor) {
  Rng rng{77};
  for (int iter = 0; iter < 200; ++iter) {
    const SimTime ref = SimTime::seconds(rng.uniform(10.0, 500.0));
    const SimTime actual = ref * rng.uniform(0.02, 5.0);
    const TimeWarp warp{ref, actual};
    const auto script = random_script(rng, ref, 10);
    for (std::size_t i = 1; i < script.size(); ++i) {
      const double ref_gap = static_cast<double>(
          (script[i] - script[i - 1]).count_nanos());
      const double warped_gap = static_cast<double>(
          (warp(script[i]) - warp(script[i - 1])).count_nanos());
      // Each endpoint rounds to within half a nanosecond.
      EXPECT_NEAR(warped_gap, ref_gap * warp.factor(), 1.0)
          << "spacing broken at iter " << iter;
    }
  }
}

TEST(TimeWarpProperty, IdentityWarpIsExact) {
  Rng rng{13};
  for (int iter = 0; iter < 50; ++iter) {
    const SimTime ref = SimTime::nanos(rng.uniform_int(1, 400'000'000'000));
    const TimeWarp warp{ref, ref};
    EXPECT_TRUE(warp.is_identity());
    EXPECT_EQ(warp.factor(), 1.0);
    for (int k = 0; k < 20; ++k) {
      const SimTime t = SimTime::nanos(rng.uniform_int(0, ref.count_nanos()));
      EXPECT_EQ(warp(t), t);  // bit-exact, not within-epsilon
    }
  }
}

TEST(TimeWarpProperty, TimesBeyondTheReferenceClampToTheHorizon) {
  const TimeWarp warp{100_sec, 10_sec};
  EXPECT_EQ(warp(200_sec), 10_sec);
  EXPECT_EQ(warp(100_sec), 10_sec);
  const TimeWarp identity{100_sec, 100_sec};
  EXPECT_EQ(identity(250_sec), 100_sec);
}

TEST(ScheduleBuilderProperty, EventsFireInScriptOrderWithinTheHorizon) {
  Rng rng{99};
  for (int iter = 0; iter < 25; ++iter) {
    const SimTime ref = SimTime::seconds(rng.uniform(50.0, 400.0));
    const SimTime actual = ref * rng.uniform(0.02, 2.0);
    Simulator sim{1};
    ScheduleBuilder sched{sim, ref, actual};
    const auto script = random_script(rng, ref, 12);
    std::vector<int> fired_order;
    std::vector<SimTime> fired_at;
    for (std::size_t i = 0; i < script.size(); ++i) {
      sched.at(script[i], [&, i] {
        fired_order.push_back(static_cast<int>(i));
        fired_at.push_back(sim.now());
      });
    }
    EXPECT_EQ(sched.scheduled(), 12);
    sim.run_until(actual);
    // Every event fires (none dropped past the horizon), in script order.
    EXPECT_EQ(sched.fired(), 12);
    ASSERT_EQ(fired_order.size(), 12u);
    EXPECT_TRUE(std::is_sorted(fired_order.begin(), fired_order.end()));
    for (const SimTime t : fired_at) EXPECT_LE(t, actual);
  }
}

TEST(ScheduleBuilderProperty, AtFractionSpansTheActualHorizon) {
  Simulator sim{1};
  ScheduleBuilder sched{sim, 100_sec, 10_sec};
  std::vector<SimTime> fired_at;
  for (const double f : {0.0, 0.25, 0.5, 1.0}) {
    sched.at_fraction(f, [&] { fired_at.push_back(sim.now()); });
  }
  sim.run_until(10_sec);
  ASSERT_EQ(fired_at.size(), 4u);
  EXPECT_EQ(fired_at[0], SimTime::zero());
  EXPECT_EQ(fired_at[1], SimTime::seconds(2.5));
  EXPECT_EQ(fired_at[2], 5_sec);
  EXPECT_EQ(fired_at[3], 10_sec);
}

TEST(ScheduleBuilderProperty, WarpedAgreesWithTheUnderlyingTimeWarp) {
  Simulator sim{1};
  ScheduleBuilder sched{sim, 400_sec, 20_sec};
  const TimeWarp warp{400_sec, 20_sec};
  Rng rng{5};
  for (int k = 0; k < 100; ++k) {
    const SimTime t = SimTime::nanos(rng.uniform_int(0, 400'000'000'000));
    EXPECT_EQ(sched.warped(t), warp(t));
  }
}

}  // namespace
}  // namespace tfmcc
