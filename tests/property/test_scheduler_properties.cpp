// Property tests for the pooled scheduler: random schedule / cancel / step
// workloads are replayed against a reference oracle built on
// std::priority_queue with lazy tombstones (the data structure the pooled
// indexed heap replaced).  Execution order, timestamps, counters, and
// pending() answers must match exactly — (time, seq) is a total order, so
// any divergence is a heap bug, not a tie-break ambiguity.

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/scheduler.hpp"

namespace tfmcc {
namespace {

/// Reference semantics: a lazy-deletion priority queue over (t, seq).
class OracleScheduler {
 public:
  std::uint64_t schedule_at(SimTime t, std::uint64_t /*token unused*/ = 0) {
    const std::uint64_t seq = next_seq_++;
    heap_.emplace(t, seq);
    pending_.insert(seq);
    return seq;
  }

  bool pending(std::uint64_t seq) const { return pending_.count(seq) > 0; }

  void cancel(std::uint64_t seq) { pending_.erase(seq); }

  /// Fires the next live event; returns its seq or -1 when drained.
  std::int64_t step(SimTime& now) {
    while (!heap_.empty()) {
      auto [t, seq] = heap_.top();
      if (pending_.count(seq) == 0) {
        heap_.pop();
        continue;  // tombstone
      }
      heap_.pop();
      pending_.erase(seq);
      now = t;
      return static_cast<std::int64_t>(seq);
    }
    return -1;
  }

  bool empty() const {
    for (const auto& e : pending_) {
      (void)e;
      return false;
    }
    return true;
  }

 private:
  struct Earlier {
    bool operator()(const std::pair<SimTime, std::uint64_t>& a,
                    const std::pair<SimTime, std::uint64_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    }
  };
  std::priority_queue<std::pair<SimTime, std::uint64_t>,
                      std::vector<std::pair<SimTime, std::uint64_t>>, Earlier>
      heap_;
  std::set<std::uint64_t> pending_;
  std::uint64_t next_seq_{0};
};

struct Tracked {
  EventId id;
  std::uint64_t oracle_seq;
};

/// Runs one randomized churn workload and checks every observable against
/// the oracle.  `cancel_weight` skews the op mix towards cancellations.
void churn_against_oracle(std::uint32_t seed, int ops, int cancel_weight) {
  std::mt19937 rng{seed};
  Scheduler sched;
  OracleScheduler oracle;
  std::vector<std::uint64_t> fired;         // oracle seqs, scheduler's order
  std::vector<std::uint64_t> oracle_fired;  // oracle seqs, oracle's order
  std::vector<Tracked> live;

  for (int op = 0; op < ops; ++op) {
    const int kind = static_cast<int>(rng() % static_cast<std::uint32_t>(4 + cancel_weight));
    if (kind == 0 || live.empty()) {
      // Schedule at now + random small delay (ties are common on purpose).
      const SimTime t =
          sched.now() + SimTime::micros(static_cast<std::int64_t>(rng() % 50));
      const std::uint64_t oseq = oracle.schedule_at(t);
      EventId id = sched.schedule_at(
          t, [oseq, &fired] { fired.push_back(oseq); });
      EXPECT_TRUE(id.pending());
      live.push_back({id, oseq});
    } else if (kind == 1) {
      //

      SimTime now{};
      const std::int64_t oseq = oracle.step(now);
      const bool stepped = sched.step();
      EXPECT_EQ(stepped, oseq >= 0);
      if (oseq >= 0) {
        ASSERT_FALSE(fired.empty());
        oracle_fired.push_back(static_cast<std::uint64_t>(oseq));
        EXPECT_EQ(fired.back(), static_cast<std::uint64_t>(oseq));
        EXPECT_EQ(sched.now(), now);
      }
    } else {
      // Cancel a random tracked event (may already be fired/cancelled).
      const std::size_t pick = rng() % live.size();
      const Tracked& victim = live[pick];
      EXPECT_EQ(victim.id.pending(), oracle.pending(victim.oracle_seq));
      sched.cancel(victim.id);
      oracle.cancel(victim.oracle_seq);
      EXPECT_FALSE(victim.id.pending());
      if (live.size() > 64) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    EXPECT_EQ(sched.empty(), oracle.empty());
  }

  // Drain: the remaining live events must come out in oracle order.
  for (;;) {
    SimTime now{};
    const std::int64_t oseq = oracle.step(now);
    const bool stepped = sched.step();
    ASSERT_EQ(stepped, oseq >= 0);
    if (oseq < 0) break;
    oracle_fired.push_back(static_cast<std::uint64_t>(oseq));
    EXPECT_EQ(fired.back(), static_cast<std::uint64_t>(oseq));
    EXPECT_EQ(sched.now(), now);
  }
  EXPECT_EQ(fired, oracle_fired);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerProperties, MatchesOracleUnderMixedChurn) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    churn_against_oracle(seed, 4000, /*cancel_weight=*/0);
  }
}

TEST(SchedulerProperties, MatchesOracleUnderCancellationHeavyChurn) {
  // Cancellations outnumber schedules ~3:1 — the regime where the old lazy
  // tombstone heap and the new in-place removal diverge the most.
  for (std::uint32_t seed = 100; seed <= 106; ++seed) {
    churn_against_oracle(seed, 4000, /*cancel_weight=*/8);
  }
}

TEST(SchedulerProperties, FifoOrderPreservedAcrossSlotReuse) {
  // Schedule waves at one timestamp with interleaved cancellations; firing
  // order must stay exactly insertion order among survivors, wave after
  // wave, even though waves reuse each other's slots.
  Scheduler s;
  std::mt19937 rng{7};
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<int> fired;
    std::vector<EventId> ids;
    const SimTime t = s.now() + SimTime::millis(1);
    for (int i = 0; i < 40; ++i) {
      ids.push_back(s.schedule_at(t, [i, &fired] { fired.push_back(i); }));
    }
    std::vector<int> expect;
    for (int i = 0; i < 40; ++i) {
      if (rng() % 3 == 0) {
        s.cancel(ids[static_cast<std::size_t>(i)]);
      } else {
        expect.push_back(i);
      }
    }
    s.run();
    EXPECT_EQ(fired, expect) << "wave " << wave;
  }
}

TEST(SchedulerProperties, ExecutedCounterMatchesOracleFireCount) {
  Scheduler s;
  std::mt19937 rng{42};
  std::uint64_t expected = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 30; ++round) {
    ids.clear();
    const int n = 1 + static_cast<int>(rng() % 50);
    for (int i = 0; i < n; ++i) {
      ids.push_back(s.schedule_in(
          SimTime::micros(static_cast<std::int64_t>(rng() % 100)), [] {}));
    }
    int cancelled = 0;
    for (auto& id : ids) {
      if (rng() % 2 == 0) {
        s.cancel(id);
        ++cancelled;
      }
    }
    expected += static_cast<std::uint64_t>(n - cancelled);
    s.run();
  }
  EXPECT_EQ(s.executed(), expected);
}

}  // namespace
}  // namespace tfmcc
