#include <gtest/gtest.h>

#include <tuple>

#include "analysis/feedback_round.hpp"

namespace tfmcc {
namespace {

namespace fr = feedback_round;

/// (n receivers, delta, bias method, seed).
using SupParam = std::tuple<int, double, BiasMethod, int>;

class SuppressionSweep : public ::testing::TestWithParam<SupParam> {
 protected:
  fr::RoundConfig config() const {
    fr::RoundConfig cfg;
    cfg.delta = std::get<1>(GetParam());
    cfg.timer.method = std::get<2>(GetParam());
    return cfg;
  }
  int n() const { return std::get<0>(GetParam()); }
  Rng rng() const {
    return Rng{static_cast<std::uint64_t>(std::get<3>(GetParam()))};
  }
};

TEST_P(SuppressionSweep, AtLeastOneResponseAlways) {
  // The earliest receiver can never be suppressed (nothing was echoed
  // before its timer): the sender always hears something.
  auto r = rng();
  const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
  const auto res = fr::simulate(values, config(), r);
  EXPECT_GE(res.responses, 1);
}

TEST_P(SuppressionSweep, BestValueNeverBelowTrueMin) {
  auto r = rng();
  const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
  const auto res = fr::simulate(values, config(), r);
  EXPECT_GE(res.best_value, res.true_min - 1e-12);
}

TEST_P(SuppressionSweep, DeltaZeroAlwaysFindsTheMinimum) {
  if (std::get<1>(GetParam()) != 0.0) return;
  auto r = rng();
  const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
  const auto res = fr::simulate(values, config(), r);
  // §2.5.2: δ=0 guarantees the lowest-rate receiver reports.
  EXPECT_DOUBLE_EQ(res.best_value, res.true_min);
}

TEST_P(SuppressionSweep, ReportedValueWithinDeltaOfMinimum) {
  // The suppression invariant: a receiver is only cancelled when the best
  // echoed value is within delta of its own, so the final best reported
  // value is within delta (relatively) of the true minimum — provided the
  // lowest receiver's timer fires after the first echo arrives.  We allow
  // the small probability of it firing inside the first echo lag by
  // checking the 90th percentile over trials.
  const double delta = std::get<1>(GetParam());
  if (delta >= 1.0) return;
  auto r = rng();
  int violations = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
    const auto res = fr::simulate(values, config(), r);
    // best <= true_min / (1 - delta) must (almost) always hold.
    if (res.best_value > res.true_min / (1.0 - delta) + 1e-9) ++violations;
  }
  EXPECT_LE(violations, trials / 10 + 1);
}

TEST_P(SuppressionSweep, ResponsesFitWellBelowReceiverCount) {
  if (n() < 100) return;
  auto r = rng();
  const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
  const auto res = fr::simulate(values, config(), r);
  EXPECT_LT(res.responses, n() / 2);
}

TEST_P(SuppressionSweep, FirstResponseWithinRound) {
  auto r = rng();
  const auto values = fr::uniform_values(n(), 0.0, 1.0, r);
  const auto cfg = config();
  const auto res = fr::simulate(values, cfg, r);
  EXPECT_GE(res.first_time, 0.0);
  EXPECT_LE(res.first_time, cfg.t_max + cfg.rtt);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SuppressionSweep,
    ::testing::Combine(::testing::Values(10, 100, 2000),
                       ::testing::Values(0.0, 0.1, 1.0),
                       ::testing::Values(BiasMethod::kUnbiased,
                                         BiasMethod::kModifiedOffset),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace tfmcc
