#include <gtest/gtest.h>

#include <tuple>

#include "tfmcc/feedback_timer.hpp"

namespace tfmcc {
namespace {

namespace ft = feedback_timer;

using TimerParam = std::tuple<BiasMethod, double /*x*/, double /*N*/>;

class TimerSweep : public ::testing::TestWithParam<TimerParam> {
 protected:
  FeedbackTimerConfig config() const {
    FeedbackTimerConfig cfg;
    cfg.method = std::get<0>(GetParam());
    cfg.n_estimate = std::get<2>(GetParam());
    return cfg;
  }
  double x() const { return std::get<1>(GetParam()); }
};

TEST_P(TimerSweep, DrawStaysInUnitInterval) {
  const auto cfg = config();
  Rng rng{17};
  for (int i = 0; i < 5000; ++i) {
    const double t = ft::draw(x(), cfg, rng);
    ASSERT_GE(t, 0.0);
    ASSERT_LE(t, 1.0);
  }
}

TEST_P(TimerSweep, FromUniformIsMonotoneInU) {
  // Later-scheduled (larger-u) receivers never fire before earlier ones
  // with the same x: the transform is non-decreasing in u.
  const auto cfg = config();
  double prev = -1.0;
  for (double u = 0.001; u <= 1.0; u += 0.013) {
    const double t = ft::from_uniform(u, x(), cfg);
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST_P(TimerSweep, CdfIsAValidDistribution) {
  const auto cfg = config();
  double prev = 0.0;
  for (double t = 0.0; t <= 1.001; t += 0.01) {
    const double f = ft::cdf(t, x(), cfg);
    ASSERT_GE(f, prev - 1e-12);
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_NEAR(ft::cdf(1.0, x(), cfg), 1.0, 1e-9);
}

TEST_P(TimerSweep, CdfInvertsTheTransform) {
  // F(g(u)) >= u for every u (equality wherever the CDF is continuous).
  const auto cfg = config();
  for (double u : {0.05, 0.3, 0.6, 0.95}) {
    const double t = ft::from_uniform(u, x(), cfg);
    EXPECT_GE(ft::cdf(t, x(), cfg) + 1e-9, u);
  }
}

TEST_P(TimerSweep, LowerRatioNeverFiresLater) {
  const auto cfg = config();
  for (double u : {0.1, 0.5, 0.9}) {
    EXPECT_LE(ft::from_uniform(u, std::max(0.0, x() - 0.2), cfg),
              ft::from_uniform(u, x(), cfg) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimerSweep,
    ::testing::Combine(::testing::Values(BiasMethod::kUnbiased,
                                         BiasMethod::kOffset,
                                         BiasMethod::kModifiedOffset,
                                         BiasMethod::kModifiedN),
                       ::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(100.0, 10000.0)));

}  // namespace
}  // namespace tfmcc
