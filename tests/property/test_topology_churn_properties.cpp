// Property tests for incremental multicast-tree maintenance: random
// join/leave/rejoin sequences on random topologies, with the incremental
// graft/prune tree compared edge-for-edge against a freshly computed
// full-rebuild oracle after every event.  The oracle (rebuild_tree)
// recomputes from the member set in ascending order, so it is insensitive
// to the event history; agreement after arbitrary out-of-order churn is
// the correctness property.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/builders.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace tfmcc {
namespace {

/// Sorted edge set of group g: (node, link) pairs, order-insensitive.
std::vector<std::pair<NodeId, Link*>> edge_set(const Topology& topo,
                                               GroupId g) {
  std::vector<std::pair<NodeId, Link*>> edges;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    for (Link* l : topo.mcast_out_links(g, n)) edges.emplace_back(n, l);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Attached flags of group g as a direct-indexed vector.
std::vector<char> attached_set(const Topology& topo, GroupId g) {
  std::vector<char> a(static_cast<std::size_t>(topo.node_count()), 0);
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    a[static_cast<std::size_t>(n)] = topo.is_attached(g, n) ? 1 : 0;
  }
  return a;
}

/// Maintains a shadow group on an identical topology with full-rebuild
/// mode and compares after every event.
class ChurnOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnOracleTest, RandomChurnMatchesRebuildOracleOnDumbbell) {
  Simulator sim{GetParam()};
  Topology topo{sim};
  Rng rng{GetParam()};
  const int n_rx = static_cast<int>(rng.uniform_int(2, 40));
  LinkConfig link;
  const Dumbbell d = make_dumbbell(topo, 1, n_rx, link, link);
  topo.compute_routes();
  const GroupId g = topo.create_group(d.left_hosts[0]);

  for (int event = 0; event < 400; ++event) {
    const NodeId m = d.right_hosts[static_cast<std::size_t>(
        rng.uniform_int(0, n_rx - 1))];
    if (topo.is_member(g, m)) {
      topo.leave(g, m);
    } else {
      topo.join(g, m);
    }
    // Oracle: recompute the tree from the member set on a scratch copy of
    // the group state.  rebuild_tree is itself the oracle, so run it on
    // the same group and compare against the incremental result captured
    // first.
    const auto inc_edges = edge_set(topo, g);
    const auto inc_attached = attached_set(topo, g);
    topo.rebuild_tree(g);
    ASSERT_EQ(edge_set(topo, g), inc_edges)
        << "edge set diverged after event " << event << " (n_rx=" << n_rx
        << ")";
    ASSERT_EQ(attached_set(topo, g), inc_attached)
        << "attached flags diverged after event " << event;
  }
}

TEST_P(ChurnOracleTest, RandomChurnMatchesRebuildOracleOnRandomTree) {
  // Random tree topology: node k's parent is uniform in [0, k), so paths
  // have varying depth and shared trunks — the case where graft's
  // stop-at-attached and prune's stop-at-branching actually matter.
  Simulator sim{GetParam()};
  Rng rng{GetParam() + 1};
  Topology topo{sim};
  const int n = static_cast<int>(rng.uniform_int(3, 60));
  const NodeId root = topo.add_node();
  std::vector<NodeId> nodes{root};
  for (int k = 1; k < n; ++k) {
    const NodeId parent = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    const NodeId child = topo.add_node();
    topo.add_duplex_link(parent, child, LinkConfig{});
    nodes.push_back(child);
  }
  topo.compute_routes();
  const GroupId g = topo.create_group(root);

  for (int event = 0; event < 400; ++event) {
    const NodeId m = nodes[static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(nodes.size()) - 1))];
    if (topo.is_member(g, m)) {
      topo.leave(g, m);
    } else {
      topo.join(g, m);
    }
    const auto inc_edges = edge_set(topo, g);
    const auto inc_attached = attached_set(topo, g);
    topo.rebuild_tree(g);
    ASSERT_EQ(edge_set(topo, g), inc_edges)
        << "edge set diverged after event " << event << " (n=" << n << ")";
    ASSERT_EQ(attached_set(topo, g), inc_attached)
        << "attached flags diverged after event " << event;
  }
}

TEST_P(ChurnOracleTest, InvariantAttachedLeafIsMember) {
  // The prune invariant: a node with no tree children that is attached
  // must be a member (otherwise prune should have popped it).
  Simulator sim{GetParam()};
  Rng rng{GetParam() + 2};
  Topology topo{sim};
  LinkConfig link;
  const Dumbbell d = make_dumbbell(topo, 1, 20, link, link);
  topo.compute_routes();
  const GroupId g = topo.create_group(d.left_hosts[0]);
  for (int event = 0; event < 300; ++event) {
    const NodeId m = d.right_hosts[static_cast<std::size_t>(
        rng.uniform_int(0, 19))];
    if (topo.is_member(g, m)) {
      topo.leave(g, m);
    } else {
      topo.join(g, m);
    }
    for (NodeId node = 0; node < topo.node_count(); ++node) {
      if (topo.is_attached(g, node) &&
          topo.mcast_out_links(g, node).empty()) {
        EXPECT_TRUE(topo.is_member(g, node))
            << "attached leaf " << node << " is not a member (event "
            << event << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnOracleTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u));

}  // namespace
}  // namespace tfmcc
