// Unit tests for the fault-tolerant campaign supervisor (sim/campaign.hpp).
//
// The end-to-end tests re-exec THIS binary as the shard executable: a
// custom main() below dispatches `<self> sweep ...` to tfmcc::sweep_main,
// so run_campaign's fork/exec children run the probe scenario registered
// in this translation unit.  Faults are injected through probe parameters
// backed by one-shot marker files: a fault fires on the first run that
// reaches it and never again, so every crashed/stalled/killed shard
// converges after relaunch and the merged CSV can be compared
// byte-for-byte against an in-process unsharded reference sweep.

#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "util/csv.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tfmcc {
namespace {

// Returns true (and creates the marker) only for the first caller across
// every process that ever checks it — the fault-injection one-shot latch.
bool one_shot(const std::string& marker) {
  if (marker.empty() || std::ifstream{marker}.good()) return false;
  std::ofstream{marker} << "fired\n";
  return true;
}

// Scenario for campaign supervision tests.  Its CSV row is a pure
// function of x and the seed, so no fault parameter can perturb the
// merged aggregate — crashes and stalls must be byte-invisible.
TFMCC_SCENARIO(test_campaign_probe, "campaign fault-injection probe",
               tfmcc::param("x", 1, "integer factor", 0),
               tfmcc::param("crash_unless", "",
                            "SIGKILL this process once, creating this marker"),
               tfmcc::param("stall_unless", "",
                            "stall 60s once, creating this marker"),
               tfmcc::param("crash_once_dir", "",
                            "SIGKILL once per task, markers in this dir"),
               tfmcc::param("fail_if_x", -1, "exit nonzero when x matches")) {
  const int x = opts.param_or("x", 1);
  if (one_shot(opts.param_or("crash_unless", ""))) {
    std::raise(SIGKILL);
  }
  if (one_shot(opts.param_or("stall_unless", ""))) {
    // Far past any test's --stall-timeout: the supervisor must SIGKILL
    // this shard long before the sleep expires.
    std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  const std::string crash_dir = opts.param_or("crash_once_dir", "");
  if (!crash_dir.empty()) {
    std::ostringstream m;
    m << crash_dir << "/task_x" << x << "_s" << opts.seed_or(0);
    if (one_shot(m.str())) std::raise(SIGKILL);
  }
  if (x == opts.param_or("fail_if_x", -1)) return 4;
  CsvWriter csv(opts.out(), {"x", "value"});
  csv.row(x, 10 * x + static_cast<long long>(opts.seed_or(0) % 7));
  return 0;
}

const Scenario& probe() {
  const Scenario* s =
      ScenarioRegistry::instance().find("test_campaign_probe");
  EXPECT_NE(s, nullptr);
  return *s;
}

// The unsharded in-process reference: what the campaign's merged CSV must
// equal byte-for-byte.  Never passes fault parameters.
std::string reference_sweep(const std::vector<std::string>& x_values) {
  SweepOptions sweep;
  sweep.axes = {{"x", x_values}};
  std::ostringstream out, err;
  EXPECT_EQ(run_sweep(probe(), sweep, out, err), 0) << err.str();
  return out.str();
}

int run_campaign_cli(std::vector<std::string> args, std::string* err_out) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  std::ostringstream err;
  const int rc =
      campaign_main(static_cast<int>(argv.size()), argv.data(), err);
  if (err_out != nullptr) *err_out = err.str();
  return rc;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

bool exists(const std::string& path) {
  return std::ifstream{path}.good();
}

TEST(CampaignBackoff, ScheduleIsExponentialAndCapped) {
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(0, 0.5, 30.0), 0.5);
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(1, 0.5, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(2, 0.5, 30.0), 2.0);
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(6, 0.5, 30.0), 30.0);
  // Huge relaunch counts must saturate at the cap, not overflow.
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(1000, 0.5, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(campaign_backoff_seconds(0, 2.0, 1.0), 1.0);
}

TEST(CampaignMain, RejectsShardManagedFlags) {
  for (const std::string flag :
       {"--shard", "--checkpoint", "--resume", "--max-point-failures"}) {
    std::string err;
    const int rc = run_campaign_cli(
        {"test_campaign_probe", "--sweep", "x=1,2", flag, "0/2"}, &err);
    EXPECT_EQ(rc, 2) << flag;
    EXPECT_NE(err.find("is managed per shard by the campaign supervisor"),
              std::string::npos)
        << flag << ": " << err;
  }
}

#if defined(__unix__) || defined(__APPLE__)

TEST(Campaign, SelfExecutablePathResolvesToARunnableBinary) {
  const std::string self = self_executable_path();
  ASSERT_FALSE(self.empty());
  EXPECT_EQ(access(self.c_str(), X_OK), 0) << self;
}

std::string fresh_dir(const char* tag) {
  std::string tmpl =
      ::testing::TempDir() + "tfmcc_campaign_" + tag + "_XXXXXX";
  EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
  return tmpl;
}

TEST(Campaign, RecoversCrashedAndStalledShardsToAByteIdenticalMerge) {
  const std::string dir = fresh_dir("recover");
  const std::string merged = dir + "/merged.csv";
  std::string err;
  const int rc = run_campaign_cli(
      {"test_campaign_probe", "--sweep", "x=1,2,3,4", "--shards", "2",
       "--dir", dir, "--output", merged, "--stall-timeout", "2",
       "--poll-interval", "0.05", "--backoff-base", "0.05", "--backoff-max",
       "0.2", "--max-retries", "6",
       "--set", "crash_unless=" + dir + "/crash.marker",
       "--set", "stall_unless=" + dir + "/stall.marker"},
      &err);
  EXPECT_EQ(rc, 0) << err;
  // One shard died on SIGKILL, one stalled until the straggler detector
  // killed it; both relaunched and the merge still matches the unsharded
  // in-process run exactly.
  EXPECT_NE(err.find("relaunching in"), std::string::npos) << err;
  EXPECT_NE(err.find("stalled (no checkpoint progress"), std::string::npos)
      << err;
  EXPECT_NE(err.find("all 2 shards complete; merging"), std::string::npos)
      << err;
  EXPECT_EQ(slurp(merged), reference_sweep({"1", "2", "3", "4"}));
}

TEST(Campaign, KillStormWithEveryTaskCrashingOnceStaysByteIdentical) {
  const std::string dir = fresh_dir("killstorm");
  const std::string merged = dir + "/merged.csv";
  std::string err;
  // crash_once_dir makes EVERY task SIGKILL its shard the first time it
  // runs: each shard owns three tasks, so each needs three relaunches and
  // all but the first resume from a checkpoint.  The axis lists x in
  // descending order so the cost-descending scheduler executes tasks in
  // fold (grid) order and every crash leaves a checkpointed prefix behind.
  const int rc = run_campaign_cli(
      {"test_campaign_probe", "--sweep", "x=6,5,4,3,2,1", "--shards", "2",
       "--dir", dir, "--output", merged, "--stall-timeout", "30",
       "--poll-interval", "0.05", "--backoff-base", "0.02", "--backoff-max",
       "0.1", "--max-retries", "8",
       "--set", "crash_once_dir=" + dir},
      &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(err.find("resuming from checkpoint"), std::string::npos) << err;
  EXPECT_EQ(slurp(merged), reference_sweep({"6", "5", "4", "3", "2", "1"}));
}

TEST(Campaign, RetryExhaustionNamesMissingPointsAndPreservesPartials) {
  const std::string dir = fresh_dir("exhaust");
  const std::string merged = dir + "/merged.csv";
  std::string err;
  // Grid points x=2 and x=4 belong to shard 1 (point index % shards);
  // fail_if_x=2 makes that shard fail deterministically on every attempt.
  const int rc = run_campaign_cli(
      {"test_campaign_probe", "--sweep", "x=1,2,3,4", "--shards", "2",
       "--dir", dir, "--output", merged, "--stall-timeout", "30",
       "--poll-interval", "0.05", "--backoff-base", "0.02", "--backoff-max",
       "0.05", "--max-retries", "1",
       "--set", "fail_if_x=2"},
      &err);
  EXPECT_EQ(rc, 2) << err;
  EXPECT_NE(err.find("retry cap (1) exhausted"), std::string::npos) << err;
  EXPECT_NE(err.find("failed permanently; missing grid points:"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("  x=2\n"), std::string::npos) << err;
  EXPECT_NE(err.find("  x=4\n"), std::string::npos) << err;
  // The healthy shard's partial survives for a later manual merge, and no
  // merged aggregate is written that could pass for a complete one.
  EXPECT_TRUE(exists(dir + "/shard-0.part"));
  EXPECT_FALSE(exists(merged));
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace tfmcc

// Shard dispatch: run_campaign execs this binary as `<self> sweep ...`.
int main(int argc, char** argv) {
  if (argc >= 2 && std::string_view{argv[1]} == "sweep") {
    return tfmcc::sweep_main(argc - 2, argv + 2, std::cerr);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
