#include "tfrc/equation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;
namespace tm = tcp_model;

TEST(Equation, ZeroLossIsInfinite) {
  EXPECT_TRUE(std::isinf(tm::throughput_Bps(1000, 100_ms, 0.0)));
  EXPECT_TRUE(std::isinf(tm::simple_throughput_Bps(1000, 100_ms, 0.0)));
}

TEST(Equation, KnownOperatingPoint) {
  // The paper's §3 anchor: s=1000 B, RTT=50 ms, p=10% -> fair rate around
  // 300 kbit/s.
  const double rate = tm::throughput_Bps(1000, 50_ms, 0.10);
  const double kbps = rate * 8.0 / 1000.0;
  EXPECT_GT(kbps, 200.0);
  EXPECT_LT(kbps, 400.0);
}

TEST(Equation, MonotonicallyDecreasingInLoss) {
  double prev = tm::throughput_Bps(1000, 100_ms, 1e-6);
  for (double p = 1e-5; p <= 1.0; p *= 3.0) {
    const double cur = tm::throughput_Bps(1000, 100_ms, p);
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(Equation, ScalesInverselyWithRtt) {
  const double x1 = tm::throughput_Bps(1000, 50_ms, 0.01);
  const double x2 = tm::throughput_Bps(1000, 100_ms, 0.01);
  EXPECT_NEAR(x1 / x2, 2.0, 1e-9);  // both terms scale linearly in R
}

TEST(Equation, ScalesLinearlyWithPacketSize) {
  const double x1 = tm::throughput_Bps(500, 50_ms, 0.01);
  const double x2 = tm::throughput_Bps(1000, 50_ms, 0.01);
  EXPECT_NEAR(x2 / x1, 2.0, 1e-9);
}

TEST(Equation, InverseRoundTripFullModel) {
  for (double p : {0.001, 0.01, 0.05, 0.2}) {
    const double rate = tm::throughput_Bps(1000, 80_ms, p);
    const double p_back = tm::loss_for_throughput(1000, 80_ms, rate);
    EXPECT_NEAR(p_back, p, p * 1e-4) << "p=" << p;
  }
}

TEST(Equation, InverseClampsExtremes) {
  // Absurdly high target rate -> minimal loss.
  EXPECT_DOUBLE_EQ(tm::loss_for_throughput(1000, 100_ms, 1e15),
                   tm::kMinLossRate);
  // Zero / negative rate -> total loss.
  EXPECT_DOUBLE_EQ(tm::loss_for_throughput(1000, 100_ms, 0.0), 1.0);
}

TEST(Equation, SimpleModelMatchesMathisForm) {
  const double s = 1000, p = 0.01;
  const double expect = s * std::sqrt(1.5) / (0.1 * std::sqrt(p));
  EXPECT_NEAR(tm::simple_throughput_Bps(s, 100_ms, p), expect, 1e-6);
}

TEST(Equation, SimpleInverseRoundTrip) {
  for (double p : {0.001, 0.01, 0.1}) {
    const double rate = tm::simple_throughput_Bps(1000, 60_ms, p);
    EXPECT_NEAR(tm::simple_loss_for_throughput(1000, 60_ms, rate), p, p * 1e-9);
  }
}

TEST(Equation, SimpleInverseIsMoreConservative) {
  // Appendix B: for the same target rate the simplified model implies a
  // *higher* loss rate (smaller initial interval), i.e. a more conservative
  // loss-history initialisation.
  for (double rate_kbps : {100.0, 500.0, 2000.0}) {
    const double rate = rate_kbps * 1000.0 / 8.0;
    EXPECT_GE(tm::simple_loss_for_throughput(1000, 100_ms, rate),
              tm::loss_for_throughput(1000, 100_ms, rate) * 0.99)
        << rate_kbps;
  }
}

TEST(Equation, LossEventsPerRttPeaksNearPointOneThree) {
  // Appendix A / fig. 17: max_p L(p) ~ 0.13 loss events per RTT (paper's
  // b = 2 model).
  double max_l = 0.0;
  for (double p = 1e-4; p <= 1.0; p *= 1.05) {
    max_l = std::max(max_l, tm::loss_events_per_rtt(p));
  }
  EXPECT_GT(max_l, 0.10);
  EXPECT_LT(max_l, 0.16);
}

TEST(Equation, LossEventsPerRttIndependentOfScale) {
  // L(p) must not depend on the packet size / RTT used internally.
  EXPECT_NEAR(tm::loss_events_per_rtt(0.01, 1.0),
              0.01 * tm::throughput_Bps(1000, 100_ms, 0.01) * 0.1 / 1000.0,
              1e-12);
}

TEST(Equation, DelayedAckModelIsSlower) {
  // b = 2 halves the per-RTT window growth: throughput drops by ~sqrt(2).
  const double x1 = tm::throughput_Bps(1000, 100_ms, 0.01, 1.0);
  const double x2 = tm::throughput_Bps(1000, 100_ms, 0.01, 2.0);
  EXPECT_GT(x1 / x2, 1.2);
  EXPECT_LT(x1 / x2, 1.5);
}

}  // namespace
}  // namespace tfmcc
