// Fixed-point equation backend vs the double-precision model: a dense
// (s, RTT, p) cross-check with a bounded relative error, the saturation
// contract below the table floor, reverse-lookup round trips (including
// the p -> 0 and p -> 1 edges), the integer EWMA's unit conventions, and
// the EquationBackend seam both scenarios and the sender wire through.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tfrc/equation.hpp"
#include "tfrc/equation_backend.hpp"
#include "tfrc/equation_fixed.hpp"
#include "util/sim_time.hpp"

namespace tfmcc {
namespace {

namespace fp = fixedpoint;

double model_x(double s, std::int64_t rtt_us, double p) {
  return tcp_model::throughput_Bps(s, SimTime::micros(rtt_us), p);
}

TEST(EquationFixed, DenseCrossCheckWithinFivePercent) {
  // The acceptance bound for the ablation scenario, enforced here over a
  // denser grid than the scenario sweeps: every combination of packet
  // size, RTT and 160 log-spaced loss rates across both table segments.
  const double kPMin = 1e-4;
  const double kPMax = 1.0;
  const int kPoints = 160;
  double worst = 0.0;
  for (const std::uint32_t s : {256u, 1000u, 1500u, 8192u}) {
    for (const std::int64_t rtt_us : {2'000, 10'000, 40'000, 80'000,
                                      200'000, 500'000, 2'000'000}) {
      for (int i = 0; i < kPoints; ++i) {
        const double p =
            kPMin * std::pow(kPMax / kPMin,
                             static_cast<double>(i) / (kPoints - 1));
        const auto p_scaled = static_cast<std::uint32_t>(
            std::lround(p * fp::kPScale));
        const double x_fixed = static_cast<double>(
            fp::calc_x(s, static_cast<std::uint32_t>(rtt_us), p_scaled));
        // Compare at the quantised p the fixed backend actually evaluated,
        // so the check isolates table error from input rounding.
        const double p_q = static_cast<double>(p_scaled) / fp::kPScale;
        const double x_float = model_x(s, rtt_us, p_q);
        const double abs_err = std::fabs(x_fixed - x_float);
        // The output is an integer bytes/s, so single-digit rates carry up
        // to 1 B/s of truncation on top of the table error.
        if (abs_err <= 1.0) continue;
        const double rel = abs_err / x_float;
        worst = std::max(worst, rel);
        ASSERT_LT(rel, 0.05) << "s=" << s << " rtt_us=" << rtt_us
                             << " p=" << p_q << " float=" << x_float
                             << " fixed=" << x_fixed;
      }
    }
  }
  // The table + interpolation should be far better than the bound in
  // practice; guard against a silent precision collapse.
  EXPECT_LT(worst, 0.03);
}

TEST(EquationFixed, SaturatesBelowTableFloor) {
  // p below kSmallestP clamps to the floor — the kernel's TFRC_SMALLEST_P
  // contract — instead of extrapolating off the table.
  const std::uint64_t at_floor = fp::calc_x(1000, 100'000, fp::kSmallestP);
  EXPECT_EQ(fp::calc_x(1000, 100'000, 1), at_floor);
  EXPECT_EQ(fp::calc_x(1000, 100'000, 0), at_floor);
  // And above kPScale clamps to p = 1.
  EXPECT_EQ(fp::calc_x(1000, 100'000, fp::kPScale + 500'000),
            fp::calc_x(1000, 100'000, fp::kPScale));
}

TEST(EquationFixed, ZeroRttIsTreatedAsOneMicrosecond) {
  EXPECT_EQ(fp::calc_x(1000, 0, 10'000), fp::calc_x(1000, 1, 10'000));
  EXPECT_GT(fp::calc_x(1000, 0, 10'000), 0u);
}

TEST(EquationFixed, ReverseLookupRoundTripsAcrossTheTable) {
  for (std::uint32_t p = fp::kSmallestP; p <= fp::kPScale;
       p = p < 1000 ? p + 50 : p + p / 7) {
    const std::uint32_t back = fp::calc_x_reverse_lookup(fp::lookup_f(p));
    const double rel = std::fabs(static_cast<double>(back) -
                                 static_cast<double>(p)) /
                       static_cast<double>(p);
    EXPECT_LT(rel, 0.02) << "p_scaled=" << p << " round-tripped to " << back;
  }
}

TEST(EquationFixed, ReverseLookupEdges) {
  // p -> 0 edge: any f below the table's first entry saturates to the
  // smallest representable p.
  EXPECT_EQ(fp::calc_x_reverse_lookup(0), fp::kSmallestP);
  EXPECT_EQ(fp::calc_x_reverse_lookup(1), fp::kSmallestP);
  // p -> 1 edge: f at or above the table ceiling saturates to p = 1.
  const std::uint64_t f_max = fp::lookup_f(fp::kPScale);
  EXPECT_EQ(fp::calc_x_reverse_lookup(f_max), fp::kPScale);
  EXPECT_EQ(fp::calc_x_reverse_lookup(f_max * 10),
            fp::kPScale);
  EXPECT_EQ(fp::calc_x_reverse_lookup(
                std::numeric_limits<std::uint64_t>::max()),
            fp::kPScale);
}

TEST(EquationFixed, LossForRateInvertsCalcX) {
  for (const std::uint32_t p :
       {200u, 1'000u, 10'000u, 50'000u, 120'000u, 400'000u}) {
    const std::uint64_t rate = fp::calc_x(1000, 80'000, p);
    const std::uint32_t back = fp::loss_for_rate(1000, 80'000, rate);
    const double rel = std::fabs(static_cast<double>(back) -
                                 static_cast<double>(p)) /
                       static_cast<double>(p);
    EXPECT_LT(rel, 0.03) << "p_scaled=" << p << " -> rate " << rate
                         << " -> " << back;
  }
}

TEST(EquationFixed, BatchMatchesScalar) {
  std::vector<std::uint32_t> rtts{1, 2'000, 40'000, 40'000, 500'000};
  std::vector<std::uint32_t> ps{0, 100, 5'000, 250'000, fp::kPScale};
  std::vector<std::uint64_t> out(rtts.size());
  fp::calc_x_batch(1000, rtts.data(), ps.data(), out.data(), rtts.size());
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    EXPECT_EQ(out[i], fp::calc_x(1000, rtts[i], ps[i])) << "i=" << i;
  }
}

TEST(EquationFixed, EwmaUnitsAndBootstrap) {
  // weight is tenths of history retained: 9 keeps 90% of the average.
  EXPECT_EQ(fp::ewma(1000, 2000, 9), 1100u);
  EXPECT_EQ(fp::ewma(1000, 2000, 5), 1500u);
  EXPECT_EQ(fp::ewma(1000, 2000, 0), 2000u);
  // A zero average means "no estimate yet" and bootstraps to the sample.
  EXPECT_EQ(fp::ewma(0, 4242, 9), 4242u);
}

TEST(EquationBackendSeam, FloatBackendMatchesModelExactly) {
  const EquationBackend& b = float_equation_backend();
  EXPECT_EQ(b.name(), "float");
  for (const double p : {1e-6, 1e-3, 0.05, 0.3}) {
    EXPECT_EQ(b.throughput_Bps(1000.0, SimTime::millis(80), p),
              tcp_model::throughput_Bps(1000.0, SimTime::millis(80), p));
    EXPECT_EQ(b.loss_for_throughput(1000.0, SimTime::millis(80), 1e5),
              tcp_model::loss_for_throughput(1000.0, SimTime::millis(80),
                                             1e5));
  }
  EXPECT_TRUE(std::isinf(b.throughput_Bps(1000.0, SimTime::millis(80), 0.0)));
}

TEST(EquationBackendSeam, FixedBackendContract) {
  const EquationBackend& b = fixed_equation_backend();
  EXPECT_EQ(b.name(), "fixed");
  // No loss -> unbounded rate, same sentinel the receiver logic relies on.
  EXPECT_TRUE(std::isinf(b.throughput_Bps(1000.0, SimTime::millis(80), 0.0)));
  // In range, the backend agrees with the raw fixed-point engine.
  EXPECT_EQ(b.throughput_Bps(1000.0, SimTime::millis(80), 0.02),
            static_cast<double>(fp::calc_x(1000, 80'000, 20'000)));
  // Inverse direction returns a probability in (0, 1].
  const double p = b.loss_for_throughput(1000.0, SimTime::millis(80), 1e5);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(EquationBackendSeam, BatchAgreesWithScalarInterface) {
  const EquationBackend& b = fixed_equation_backend();
  std::vector<SimTime> rtts{SimTime::millis(20), SimTime::millis(80),
                            SimTime::millis(400)};
  std::vector<double> ps{0.0, 1e-3, 0.25};
  std::vector<double> out(rtts.size());
  b.throughput_batch(1000.0, rtts.data(), ps.data(), out.data(),
                     rtts.size());
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    EXPECT_EQ(out[i], b.throughput_Bps(1000.0, rtts[i], ps[i])) << "i=" << i;
  }
  // The float backend inherits the base class's scalar loop.
  const EquationBackend& f = float_equation_backend();
  f.throughput_batch(1000.0, rtts.data(), ps.data(), out.data(),
                     rtts.size());
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    EXPECT_EQ(out[i], f.throughput_Bps(1000.0, rtts[i], ps[i])) << "i=" << i;
  }
}

TEST(EquationBackendSeam, RegistryFindsBothBackendsAndRejectsUnknown) {
  EXPECT_EQ(find_equation_backend("float"), &float_equation_backend());
  EXPECT_EQ(find_equation_backend("fixed"), &fixed_equation_backend());
  EXPECT_EQ(find_equation_backend("bogus"), nullptr);
  EXPECT_EQ(find_equation_backend(""), nullptr);
}

}  // namespace
}  // namespace tfmcc
