#include "analysis/fairness.hpp"

#include <gtest/gtest.h>

namespace tfmcc {
namespace {

TEST(Fairness, EqualSharesScoreOne) {
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_jain(3.0, 3.0), 1.0);
}

TEST(Fairness, SingleWinnerScoresOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({10.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(pairwise_jain(10.0, 0.0), 0.5);
}

TEST(Fairness, ScaleInvariant) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> scaled;
  for (double v : x) scaled.push_back(v * 1000.0);
  EXPECT_DOUBLE_EQ(jain_index(x), jain_index(scaled));
}

TEST(Fairness, DegenerateInputsAreTriviallyFair) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_jain(0.0, 0.0), 1.0);
}

TEST(Fairness, ReportMatrixIsSymmetricWithUnitDiagonal) {
  const FairnessReport r = fairness_report({4.0, 2.0, 1.0});
  ASSERT_EQ(r.pairwise.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r.pairwise[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(r.pairwise[i][j], r.pairwise[j][i]);
    }
  }
  // The worst pair is (4, 1): J = 25 / (2 * 17).
  EXPECT_DOUBLE_EQ(r.min_pairwise, 25.0 / 34.0);
  EXPECT_DOUBLE_EQ(r.pairwise[0][2], r.min_pairwise);
  // Aggregate: (4+2+1)^2 / (3 * 21) = 49/63.
  EXPECT_DOUBLE_EQ(r.aggregate, 49.0 / 63.0);
  EXPECT_EQ(r.throughput, (std::vector<double>{4.0, 2.0, 1.0}));
}

TEST(Fairness, BoundsHold) {
  // 1/n <= J <= 1 for any nonzero allocation.
  const std::vector<double> x{0.1, 7.0, 3.3, 0.0, 12.0};
  const double j = jain_index(x);
  EXPECT_GE(j, 1.0 / static_cast<double>(x.size()));
  EXPECT_LE(j, 1.0);
}

}  // namespace
}  // namespace tfmcc
