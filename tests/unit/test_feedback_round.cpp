#include "analysis/feedback_round.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/feedback_model.hpp"
#include "tfmcc/feedback_timer.hpp"

namespace tfmcc {
namespace {

namespace fr = feedback_round;

fr::RoundConfig make_cfg(double delta = 0.1,
                         BiasMethod m = BiasMethod::kModifiedOffset) {
  fr::RoundConfig cfg;
  cfg.delta = delta;
  cfg.timer.method = m;
  return cfg;
}

TEST(FeedbackRound, SingleReceiverAlwaysResponds) {
  Rng rng{1};
  const std::vector<double> v{0.4};
  const auto res = fr::simulate(v, make_cfg(), rng);
  EXPECT_EQ(res.responses, 1);
  EXPECT_DOUBLE_EQ(res.best_value, 0.4);
  EXPECT_DOUBLE_EQ(res.true_min, 0.4);
}

TEST(FeedbackRound, SuppressionBoundsResponsesForLargeN) {
  // Fig. 3's worst case: all receivers suddenly congested at a similar
  // level (values clustered), δ = 0.1.  Only marginally more feedback than
  // full suppression — far from an implosion.
  Rng rng{2};
  const auto values = fr::uniform_values(10000, 0.4, 0.6, rng);
  const auto res = fr::simulate(values, make_cfg(0.1), rng);
  EXPECT_GE(res.responses, 1);
  EXPECT_LT(res.responses, 120);
}

TEST(FeedbackRound, DeltaOneSuppressesEverythingAfterFirstEcho) {
  Rng rng{3};
  const auto values = fr::uniform_values(5000, 0.4, 0.6, rng);
  const auto res = fr::simulate(values, make_cfg(1.0), rng);
  // Only responses within one RTT of the earliest can escape suppression.
  EXPECT_LT(res.responses, 60);
}

TEST(FeedbackRound, DeltaZeroAllowsLowestToReport) {
  Rng rng{4};
  const auto values = fr::uniform_values(2000, 0.0, 1.0, rng);
  const auto res = fr::simulate(values, make_cfg(0.0), rng);
  // δ=0: only strictly-lower reports escape, so the final best equals the
  // true minimum.
  EXPECT_DOUBLE_EQ(res.best_value, res.true_min);
}

TEST(FeedbackRound, MoreSuppressionWithLargerDelta) {
  Rng root{5};
  double avg0 = 0, avg1 = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Rng ra = root.substream(static_cast<uint64_t>(t) * 2);
    Rng rb = root.substream(static_cast<uint64_t>(t) * 2 + 1);
    const auto values = fr::uniform_values(3000, 0.3, 0.7, ra);
    avg0 += fr::simulate(values, make_cfg(0.0), ra).responses;
    avg1 += fr::simulate(values, make_cfg(1.0), rb).responses;
  }
  EXPECT_GT(avg0 / trials, avg1 / trials);
}

TEST(FeedbackRound, BiasImprovesReportedRateQuality) {
  // Fig. 6 isolates the biasing methods under full suppression (δ = 1:
  // any echo cancels); the biased timers then determine *which* receivers
  // get through before suppression, and low-rate receivers must win.
  Rng root{6};
  double err_unbiased = 0, err_offset = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    Rng r1 = root.substream(static_cast<uint64_t>(t) * 2);
    Rng r2 = root.substream(static_cast<uint64_t>(t) * 2 + 1);
    const auto values = fr::uniform_values(2000, 0.0, 1.0, r1);
    const auto a =
        fr::simulate(values, make_cfg(1.0, BiasMethod::kUnbiased), r1);
    const auto b = fr::simulate(values, make_cfg(1.0, BiasMethod::kOffset), r2);
    err_unbiased += a.best_value - a.true_min;
    err_offset += b.best_value - b.true_min;
  }
  EXPECT_LT(err_offset, 0.5 * err_unbiased);
}

TEST(FeedbackRound, ResponseTimeDecreasesWithN) {
  Rng root{7};
  double t_small = 0, t_large = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng r1 = root.substream(static_cast<uint64_t>(t) * 2);
    Rng r2 = root.substream(static_cast<uint64_t>(t) * 2 + 1);
    const auto v_small = fr::uniform_values(10, 0.0, 1.0, r1);
    const auto v_large = fr::uniform_values(10000, 0.0, 1.0, r2);
    t_small += fr::simulate(v_small, make_cfg(), r1).first_time;
    t_large += fr::simulate(v_large, make_cfg(), r2).first_time;
  }
  EXPECT_LT(t_large / trials, t_small / trials);
}

TEST(FeedbackRound, OutcomesRecordEveryReceiver) {
  Rng rng{8};
  const auto values = fr::uniform_values(100, 0.0, 1.0, rng);
  const auto res = fr::simulate(values, make_cfg(), rng, true);
  ASSERT_EQ(res.outcomes.size(), 100u);
  int sent = 0;
  for (const auto& o : res.outcomes) sent += o.sent;
  EXPECT_EQ(sent, res.responses);
}

TEST(FeedbackModel, ExpectedMessagesMatchesMonteCarlo) {
  FeedbackTimerConfig cfg;
  cfg.method = BiasMethod::kUnbiased;
  cfg.n_estimate = 10000;
  const int n = 1000;
  const double analytic = feedback_model::expected_messages(n, 3.0, 1.0, 0.0, cfg);

  // Monte Carlo with the same timer transform and a pure-delay (no echo
  // value logic) suppression model.
  Rng rng{9};
  double acc = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> ts(n);
    for (auto& x : ts) x = feedback_timer::draw(0.0, cfg, rng) * 3.0;
    const double mn = *std::min_element(ts.begin(), ts.end());
    int m = 0;
    for (double x : ts) m += (x <= mn + 1.0);
    acc += m;
  }
  const double mc = acc / trials;
  EXPECT_NEAR(analytic, mc, 0.15 * mc + 0.5);
}

TEST(FeedbackModel, ExpectedMessagesInUsefulBandAtRecommendedT) {
  // §2.5.4: T' in [3,4] RTTs yields a moderate number of duplicates for
  // n up to two orders of magnitude below N = 10000.
  FeedbackTimerConfig cfg;
  cfg.method = BiasMethod::kUnbiased;
  cfg.n_estimate = 10000;
  for (int n : {10, 100, 1000}) {
    const double m = feedback_model::expected_messages(n, 3.0, 1.0, 0.0, cfg);
    EXPECT_GE(m, 1.0);
    EXPECT_LT(m, 40.0) << "n=" << n;
  }
}

TEST(FeedbackModel, ImplosionWhenNUnderestimated) {
  // If the true receiver count far exceeds N, many immediate responses.
  FeedbackTimerConfig cfg;
  cfg.method = BiasMethod::kUnbiased;
  cfg.n_estimate = 100;  // way below the actual 100000
  const double m = feedback_model::expected_messages(100000, 3.0, 1.0, 0.0, cfg);
  EXPECT_GT(m, 500.0);
}

TEST(FeedbackModel, FirstResponseDecreasesLogarithmically) {
  FeedbackTimerConfig cfg;
  cfg.method = BiasMethod::kUnbiased;
  cfg.n_estimate = 10000;
  const double t10 = feedback_model::expected_first_response(10, 4.0, 0.0, cfg);
  const double t100 = feedback_model::expected_first_response(100, 4.0, 0.0, cfg);
  const double t1000 =
      feedback_model::expected_first_response(1000, 4.0, 0.0, cfg);
  EXPECT_GT(t10, t100);
  EXPECT_GT(t100, t1000);
  // Roughly equal decrements per decade (log-like decay).
  EXPECT_NEAR((t10 - t100) / (t100 - t1000), 1.0, 0.5);
}

}  // namespace
}  // namespace tfmcc
