#include "tfmcc/feedback_timer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tfmcc {
namespace {

namespace ft = feedback_timer;

FeedbackTimerConfig make_cfg(BiasMethod m, double n = 10000.0,
                             double zeta = 0.25) {
  FeedbackTimerConfig cfg;
  cfg.method = m;
  cfg.n_estimate = n;
  cfg.zeta = zeta;
  return cfg;
}

TEST(FeedbackTimer, TruncateRatioEndpoints) {
  // §2.5.1: bias saturates at 50% and vanishes above 90% of the send rate.
  EXPECT_DOUBLE_EQ(ft::truncate_ratio(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ft::truncate_ratio(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ft::truncate_ratio(0.9), 1.0);
  EXPECT_DOUBLE_EQ(ft::truncate_ratio(1.0), 1.0);
  EXPECT_NEAR(ft::truncate_ratio(0.7), 0.5, 1e-12);
}

TEST(FeedbackTimer, DrawIsInUnitInterval) {
  Rng rng{1};
  for (auto m : {BiasMethod::kUnbiased, BiasMethod::kOffset,
                 BiasMethod::kModifiedOffset, BiasMethod::kModifiedN}) {
    const auto cfg = make_cfg(m);
    for (int i = 0; i < 10000; ++i) {
      const double t = ft::draw(0.5, cfg, rng);
      ASSERT_GE(t, 0.0);
      ASSERT_LE(t, 1.0);
    }
  }
}

TEST(FeedbackTimer, UnbiasedImmediateResponseProbabilityIsOneOverN) {
  // P(t == 0) = P(u <= 1/N).
  Rng rng{2};
  const auto cfg = make_cfg(BiasMethod::kUnbiased, 100.0);
  int zeros = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) zeros += (ft::draw(0.0, cfg, rng) == 0.0);
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.01, 0.002);
}

TEST(FeedbackTimer, OffsetBiasShiftsLowRateReceiversEarlier) {
  Rng rng{3};
  const auto cfg = make_cfg(BiasMethod::kOffset);
  double sum_low = 0, sum_high = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum_low += ft::draw(0.0, cfg, rng);
  for (int i = 0; i < n; ++i) sum_high += ft::draw(1.0, cfg, rng);
  // High-x receivers are offset by zeta on average.
  EXPECT_NEAR(sum_high / n - sum_low / n, cfg.zeta, 0.01);
}

TEST(FeedbackTimer, OffsetNeverBelowOffsetFloor) {
  Rng rng{4};
  const auto cfg = make_cfg(BiasMethod::kOffset);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(ft::draw(1.0, cfg, rng), cfg.zeta);
  }
}

TEST(FeedbackTimer, ModifiedNSaturatesForLowX) {
  // x = 0 reduces the effective N to its floor: nearly every draw becomes
  // an immediate response.
  Rng rng{5};
  const auto cfg = make_cfg(BiasMethod::kModifiedN);
  int zeros = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) zeros += (ft::draw(0.0, cfg, rng) == 0.0);
  EXPECT_GT(static_cast<double>(zeros) / n, 0.3);
}

TEST(FeedbackTimer, CdfMatchesEmpiricalDistribution) {
  for (auto m : {BiasMethod::kUnbiased, BiasMethod::kOffset,
                 BiasMethod::kModifiedOffset, BiasMethod::kModifiedN}) {
    const auto cfg = make_cfg(m, 1000.0);
    Rng rng{6};
    const double x = 0.6;
    const int n = 100000;
    std::vector<double> draws(n);
    for (auto& d : draws) d = ft::draw(x, cfg, rng);
    for (double t : {0.1, 0.3, 0.5, 0.8}) {
      const auto below = std::count_if(draws.begin(), draws.end(),
                                       [&](double d) { return d <= t; });
      EXPECT_NEAR(static_cast<double>(below) / n, ft::cdf(t, x, cfg), 0.01)
          << "method=" << static_cast<int>(m) << " t=" << t;
    }
  }
}

TEST(FeedbackTimer, CdfIsMonotone) {
  const auto cfg = make_cfg(BiasMethod::kModifiedOffset);
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    const double f = ft::cdf(t, 0.3, cfg);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(FeedbackTimer, FromUniformIsDeterministic) {
  const auto cfg = make_cfg(BiasMethod::kOffset);
  EXPECT_DOUBLE_EQ(ft::from_uniform(0.5, 0.3, cfg),
                   ft::from_uniform(0.5, 0.3, cfg));
  // u = 1 gives the maximum base timer.
  EXPECT_DOUBLE_EQ(ft::from_uniform(1.0, 0.0, make_cfg(BiasMethod::kUnbiased)),
                   1.0);
}

TEST(FeedbackTimer, BiasOrderingHolds) {
  // For the same uniform draw, a lower x never yields a later timer.
  const auto cfg = make_cfg(BiasMethod::kModifiedOffset);
  for (double u : {0.01, 0.2, 0.5, 0.9, 1.0}) {
    EXPECT_LE(ft::from_uniform(u, 0.2, cfg), ft::from_uniform(u, 0.8, cfg));
  }
}

}  // namespace
}  // namespace tfmcc
