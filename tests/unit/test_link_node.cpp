#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/builders.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// Test agent that records deliveries.
class RecordingAgent final : public Agent {
 public:
  explicit RecordingAgent(Simulator& sim) : sim_{sim} {}
  void handle_packet(const Packet& p) override {
    uids.push_back(p.uid);
    times.push_back(sim_.now());
  }
  std::vector<std::uint64_t> uids;
  std::vector<SimTime> times;

 private:
  Simulator& sim_;
};

PacketPtr make_unicast(Simulator& sim, NodeId src, NodeId dst, PortId dport,
                       std::int32_t bytes) {
  auto p = make_heap_packet();
  p->uid = sim.next_uid();
  p->src = src;
  p->dst = dst;
  p->dport = dport;
  p->size_bytes = bytes;
  p->created = sim.now();
  return p;
}

struct TwoNodeFixture {
  TwoNodeFixture(double rate_bps, SimTime delay, double loss = 0.0)
      : sim{1}, topo{sim}, agent{sim} {
    a = topo.add_node();
    b = topo.add_node();
    LinkConfig cfg;
    cfg.rate_bps = rate_bps;
    cfg.delay = delay;
    cfg.loss_rate = loss;
    topo.add_duplex_link(a, b, cfg);
    topo.compute_routes();
    topo.node(b).attach_agent(5, &agent);
  }
  Simulator sim;
  Topology topo;
  RecordingAgent agent;
  NodeId a{}, b{};
};

TEST(Link, DeliversAfterTransmissionPlusPropagation) {
  TwoNodeFixture f{8e6, 10_ms};  // 8 Mbit/s, 10 ms
  // 1000 bytes at 8 Mbit/s = 1 ms serialisation; total 11 ms.
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 1000));
  f.sim.run();
  ASSERT_EQ(f.agent.uids.size(), 1u);
  EXPECT_EQ(f.agent.times[0], 11_ms);
}

TEST(Link, SerialisesBackToBackPackets) {
  TwoNodeFixture f{8e6, 10_ms};
  for (int i = 0; i < 3; ++i) {
    f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 1000));
  }
  f.sim.run();
  ASSERT_EQ(f.agent.times.size(), 3u);
  EXPECT_EQ(f.agent.times[0], 11_ms);  // 1 ms tx + 10 ms prop
  EXPECT_EQ(f.agent.times[1], 12_ms);  // queued behind first
  EXPECT_EQ(f.agent.times[2], 13_ms);
}

TEST(Link, QueueOverflowDrops) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  LinkConfig cfg;
  cfg.rate_bps = 1e6;
  cfg.delay = 1_ms;
  cfg.queue_limit_packets = 2;
  auto [ab, ba] = topo.add_duplex_link(a, b, cfg);
  topo.compute_routes();
  RecordingAgent agent{sim};
  topo.node(b).attach_agent(5, &agent);
  // Burst of 10: 1 in transmission + 2 queued survive.
  for (int i = 0; i < 10; ++i) {
    topo.node(a).send(make_unicast(sim, a, b, 5, 1000));
  }
  sim.run();
  EXPECT_EQ(agent.uids.size(), 3u);
  EXPECT_EQ(ab->queue_drops(), 7);
}

TEST(Link, BernoulliLossDropsApproximatelyPFraction) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.delay = 1_ms;
  cfg.loss_rate = 0.25;
  cfg.queue_limit_packets = 100000;  // isolate the loss model from the queue
  topo.add_duplex_link(a, b, cfg);
  topo.compute_routes();
  RecordingAgent agent{sim};
  topo.node(b).attach_agent(5, &agent);
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    topo.node(a).send(make_unicast(sim, a, b, 5, 100));
  }
  sim.run();
  const double received = static_cast<double>(agent.uids.size());
  EXPECT_NEAR(received / n, 0.75, 0.03);
}

TEST(Link, SetLossRateTakesEffect) {
  TwoNodeFixture f{1e9, 1_ms, 0.0};
  Link* l = f.topo.link_between(f.a, f.b);
  ASSERT_NE(l, nullptr);
  l->set_loss_rate(1.0);
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 100));
  f.sim.run();
  EXPECT_TRUE(f.agent.uids.empty());
  EXPECT_EQ(l->loss_model_drops(), 1);
}

TEST(Link, SetDelayAffectsSubsequentPackets) {
  TwoNodeFixture f{1e9, 1_ms};
  Link* l = f.topo.link_between(f.a, f.b);
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 100));
  f.sim.run();
  l->set_delay(50_ms);
  const SimTime before = f.sim.now();
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 100));
  f.sim.run();
  ASSERT_EQ(f.agent.times.size(), 2u);
  EXPECT_GE(f.agent.times[1] - before, 50_ms);
}

TEST(Node, DeliversOnlyToMatchingPort) {
  TwoNodeFixture f{1e9, 1_ms};
  RecordingAgent other{f.sim};
  f.topo.node(f.b).attach_agent(6, &other);
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 100));
  f.sim.run();
  EXPECT_EQ(f.agent.uids.size(), 1u);
  EXPECT_TRUE(other.uids.empty());
}

TEST(Node, LocalDeliveryWithoutNetwork) {
  TwoNodeFixture f{1e9, 1_ms};
  RecordingAgent local{f.sim};
  f.topo.node(f.a).attach_agent(9, &local);
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.a, 9, 100));
  f.sim.run();
  EXPECT_EQ(local.uids.size(), 1u);
}

TEST(Node, DetachStopsDelivery) {
  TwoNodeFixture f{1e9, 1_ms};
  f.topo.node(f.b).detach_agent(5);
  f.topo.node(f.a).send(make_unicast(f.sim, f.a, f.b, 5, 100));
  f.sim.run();
  EXPECT_TRUE(f.agent.uids.empty());
}

TEST(Node, ForwardsThroughIntermediateNode) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId mid = topo.add_node();
  const NodeId c = topo.add_node();
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.delay = 2_ms;
  topo.add_duplex_link(a, mid, cfg);
  topo.add_duplex_link(mid, c, cfg);
  topo.compute_routes();
  RecordingAgent agent{sim};
  topo.node(c).attach_agent(5, &agent);
  topo.node(a).send(make_unicast(sim, a, c, 5, 100));
  sim.run();
  ASSERT_EQ(agent.uids.size(), 1u);
  EXPECT_GT(topo.node(mid).forwarded(), 0);
  EXPECT_GE(agent.times[0], 4_ms);  // two propagation hops
}

}  // namespace
}  // namespace tfmcc
