#include "tfrc/loss_history.hpp"

#include <gtest/gtest.h>

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(LossHistory, WeightsMatchPaperForDepth8) {
  const auto w = LossHistory::weights(8);
  const std::vector<double> expect{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2};
  ASSERT_EQ(w.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(w[i], expect[i], 1e-12);
}

TEST(LossHistory, WeightsNewestHalfIsFlat) {
  for (int depth : {8, 16, 32}) {
    const auto w = LossHistory::weights(depth);
    for (int i = 0; i < depth / 2; ++i) {
      EXPECT_DOUBLE_EQ(w[static_cast<size_t>(i)], 1.0);
    }
    EXPECT_GT(w.back(), 0.0);
    EXPECT_LT(w.back(), w.front());
  }
}

TEST(LossHistory, NoLossMeansZeroRate) {
  LossHistory h{8};
  for (int i = 0; i < 100; ++i) h.on_packet_received();
  EXPECT_FALSE(h.has_loss());
  EXPECT_DOUBLE_EQ(h.loss_event_rate(), 0.0);
}

TEST(LossHistory, FirstLossStartsEvent) {
  LossHistory h{8};
  for (int i = 0; i < 10; ++i) h.on_packet_received();
  EXPECT_TRUE(h.on_packet_lost(1_sec, 100_ms));
  EXPECT_TRUE(h.has_loss());
  EXPECT_EQ(h.event_count(), 1);
}

TEST(LossHistory, LossesWithinRttAreOneEvent) {
  LossHistory h{8};
  for (int i = 0; i < 10; ++i) h.on_packet_received();
  EXPECT_TRUE(h.on_packet_lost(1_sec, 100_ms));
  EXPECT_FALSE(h.on_packet_lost(SimTime::millis(1050), 100_ms));
  EXPECT_FALSE(h.on_packet_lost(SimTime::millis(1099), 100_ms));
  EXPECT_EQ(h.event_count(), 1);
}

TEST(LossHistory, LossAfterRttStartsNewEvent) {
  LossHistory h{8};
  for (int i = 0; i < 10; ++i) h.on_packet_received();
  h.on_packet_lost(1_sec, 100_ms);
  for (int i = 0; i < 20; ++i) h.on_packet_received();
  EXPECT_TRUE(h.on_packet_lost(SimTime::millis(1200), 100_ms));
  EXPECT_EQ(h.event_count(), 2);
  // The closed interval between the events counts the 20 packets.
  EXPECT_DOUBLE_EQ(h.intervals().front(), 20.0);
}

TEST(LossHistory, SteadyLossRateConvergesToInverseInterval) {
  LossHistory h{8};
  SimTime t = SimTime::zero();
  // One loss event every 50 received packets -> p = 1/50.
  for (int event = 0; event < 40; ++event) {
    for (int i = 0; i < 50; ++i) h.on_packet_received();
    t += 1_sec;
    h.on_packet_lost(t, 100_ms);
  }
  EXPECT_NEAR(h.loss_event_rate(), 1.0 / 50.0, 1e-3);
}

TEST(LossHistory, OpenIntervalOnlyCountsWhenItLowersRate) {
  LossHistory h{8};
  SimTime t = SimTime::zero();
  for (int event = 0; event < 10; ++event) {
    for (int i = 0; i < 10; ++i) h.on_packet_received();
    t += 1_sec;
    h.on_packet_lost(t, 100_ms);
  }
  const double p_before = h.loss_event_rate();
  // A long loss-free run must *lower* p via the open interval...
  for (int i = 0; i < 1000; ++i) h.on_packet_received();
  EXPECT_LT(h.loss_event_rate(), p_before);
  // ...but a short one must not raise it.
  LossHistory h2{8};
  SimTime t2 = SimTime::zero();
  for (int event = 0; event < 10; ++event) {
    for (int i = 0; i < 10; ++i) h2.on_packet_received();
    t2 += 1_sec;
    h2.on_packet_lost(t2, 100_ms);
  }
  const double p2 = h2.loss_event_rate();
  h2.on_packet_received();  // open interval of 1 packet
  EXPECT_DOUBLE_EQ(h2.loss_event_rate(), p2);
}

TEST(LossHistory, HistoryDepthBoundsIntervals) {
  LossHistory h{8};
  SimTime t = SimTime::zero();
  for (int event = 0; event < 100; ++event) {
    for (int i = 0; i < 5; ++i) h.on_packet_received();
    t += 1_sec;
    h.on_packet_lost(t, 100_ms);
  }
  EXPECT_LE(h.intervals().size(), 8u);
}

TEST(LossHistory, InitFirstIntervalReplacesCount) {
  LossHistory h{8};
  for (int i = 0; i < 3; ++i) h.on_packet_received();
  h.on_packet_lost(1_sec, 100_ms);
  h.init_first_interval(200.0);
  EXPECT_NEAR(h.average_interval(), 200.0, 1e-9);
  EXPECT_NEAR(h.loss_event_rate(), 1.0 / 200.0, 1e-9);
}

TEST(LossHistory, RescaleInitialIntervalAppendixB) {
  LossHistory h{8};
  for (int i = 0; i < 3; ++i) h.on_packet_received();
  h.on_packet_lost(1_sec, 500_ms);
  h.init_first_interval(400.0);
  // Real RTT is 4x smaller than the initial: interval shrinks by 16x.
  h.rescale_initial_interval(125_ms, 500_ms);
  EXPECT_NEAR(h.average_interval(), 400.0 / 16.0, 1e-9);
}

TEST(LossHistory, RescaleIsOneShot) {
  LossHistory h{8};
  h.on_packet_received();
  h.on_packet_lost(1_sec, 500_ms);
  h.init_first_interval(100.0);
  h.rescale_initial_interval(250_ms, 500_ms);
  const double after_first = h.average_interval();
  h.rescale_initial_interval(250_ms, 500_ms);
  EXPECT_DOUBLE_EQ(h.average_interval(), after_first);
}

TEST(LossHistory, ReaggregateMergesEventsUnderLargerRtt) {
  LossHistory h{8};
  SimTime t = SimTime::zero();
  // Three losses 200 ms apart: with RTT 100 ms these are 3 events.
  for (int i = 0; i < 10; ++i) h.on_packet_received();
  for (int k = 0; k < 3; ++k) {
    t += 200_ms;
    h.on_packet_lost(t, 100_ms);
    for (int i = 0; i < 10; ++i) h.on_packet_received();
  }
  EXPECT_EQ(h.event_count(), 3);
  // Re-aggregating with a 1 s RTT merges them into one event.
  h.reaggregate(1_sec);
  EXPECT_EQ(h.event_count(), 1);
}

TEST(LossHistory, ReaggregateSplitsEventsUnderSmallerRtt) {
  LossHistory h{8};
  SimTime t = SimTime::zero();
  for (int i = 0; i < 10; ++i) h.on_packet_received();
  // Three losses 200 ms apart aggregated with the *initial* 500 ms RTT:
  // one event.
  for (int k = 0; k < 3; ++k) {
    t += 200_ms;
    h.on_packet_lost(t, 500_ms);
    for (int i = 0; i < 10; ++i) h.on_packet_received();
  }
  EXPECT_EQ(h.event_count(), 1);
  // The true RTT of 50 ms separates them into 3 events (Appendix A).
  h.reaggregate(50_ms);
  EXPECT_EQ(h.event_count(), 3);
  EXPECT_GT(h.loss_event_rate(), 0.0);
}

TEST(LossHistory, ReaggregatePreservesTotalPackets) {
  LossHistory h{4};
  SimTime t = SimTime::zero();
  for (int k = 0; k < 5; ++k) {
    for (int i = 0; i < 7; ++i) h.on_packet_received();
    t += 300_ms;
    h.on_packet_lost(t, 100_ms);
  }
  h.reaggregate(100_ms);  // same RTT: intervals unchanged
  EXPECT_EQ(h.event_count(), 5);
  for (const double iv : h.intervals()) EXPECT_DOUBLE_EQ(iv, 7.0);
}

LossHistory make_history() {
  LossHistory h{4};
  SimTime t = SimTime::zero();
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 5; ++i) h.on_packet_received();
    t += 300_ms;
    h.on_packet_lost(t, 100_ms);
  }
  return h;
}

// Regression for the PR 1 dangling-temporary pattern (see
// TimeSeries::points()): iterating intervals() off a by-value result must
// not reference a destroyed temporary; under ASan the old pattern fails
// with heap-use-after-free.
TEST(LossHistory, IntervalsOffATemporaryStayValid) {
  double sum = 0.0;
  for (const double iv : make_history().intervals()) sum += iv;
  EXPECT_GT(sum, 0.0);
}

}  // namespace
}  // namespace tfmcc
