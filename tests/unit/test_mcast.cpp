#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mcast/session.hpp"
#include "net/builders.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

class CountingAgent final : public Agent {
 public:
  void handle_packet(const Packet& p) override {
    ++count;
    last_uid = p.uid;
  }
  int count{0};
  std::uint64_t last_uid{0};
};

PacketPtr make_mcast(Simulator& sim, NodeId src, GroupId g, PortId dport) {
  auto p = make_heap_packet();
  p->uid = sim.next_uid();
  p->src = src;
  p->group = g;
  p->dport = dport;
  p->size_bytes = 100;
  return p;
}

struct StarFixture {
  StarFixture() : sim{1}, topo{sim} {
    LinkConfig cfg;
    cfg.rate_bps = 1e9;
    cfg.delay = 1_ms;
    star = make_star(topo, cfg, std::vector<LinkConfig>(4, cfg));
  }
  Simulator sim;
  Topology topo;
  Star star;
};

TEST(Mcast, DeliversToAllMembers) {
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  std::vector<CountingAgent> agents(4);
  for (int i = 0; i < 4; ++i) {
    f.topo.node(f.star.leaves[static_cast<size_t>(i)]).attach_agent(7, &agents[static_cast<size_t>(i)]);
    sess.join(f.star.leaves[static_cast<size_t>(i)]);
  }
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  for (const auto& a : agents) EXPECT_EQ(a.count, 1);
}

TEST(Mcast, NonMembersGetNothing) {
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  CountingAgent member, bystander;
  f.topo.node(f.star.leaves[0]).attach_agent(7, &member);
  f.topo.node(f.star.leaves[1]).attach_agent(7, &bystander);
  sess.join(f.star.leaves[0]);  // leaf 1 never joins
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  EXPECT_EQ(member.count, 1);
  EXPECT_EQ(bystander.count, 0);
}

TEST(Mcast, NoDuplicateDeliveryOnSharedTrunk) {
  // Chain: sender - r1 - r2, members at r2 and a leaf behind r2; the trunk
  // link sender->r1->r2 must carry each packet once.
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r1 = topo.add_node();
  const NodeId r2 = topo.add_node();
  const NodeId leaf = topo.add_node();
  LinkConfig cfg;
  cfg.rate_bps = 1e9;
  cfg.delay = 1_ms;
  topo.add_duplex_link(s, r1, cfg);
  topo.add_duplex_link(r1, r2, cfg);
  topo.add_duplex_link(r2, leaf, cfg);
  topo.compute_routes();

  MulticastSession sess{topo, s, 7};
  CountingAgent at_r2, at_leaf;
  topo.node(r2).attach_agent(7, &at_r2);
  topo.node(leaf).attach_agent(7, &at_leaf);
  sess.join(r2);
  sess.join(leaf);
  sess.send_from_source(make_mcast(sim, s, sess.group(), 7));
  sim.run();
  EXPECT_EQ(at_r2.count, 1);
  EXPECT_EQ(at_leaf.count, 1);
  // The trunk carried the packet exactly once per link.
  EXPECT_EQ(topo.link_between(s, r1)->delivered_packets(), 1);
  EXPECT_EQ(topo.link_between(r1, r2)->delivered_packets(), 1);
}

TEST(Mcast, LeavePrunesDelivery) {
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  CountingAgent a0, a1;
  f.topo.node(f.star.leaves[0]).attach_agent(7, &a0);
  f.topo.node(f.star.leaves[1]).attach_agent(7, &a1);
  sess.join(f.star.leaves[0]);
  sess.join(f.star.leaves[1]);
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  sess.leave(f.star.leaves[1]);
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  EXPECT_EQ(a0.count, 2);
  EXPECT_EQ(a1.count, 1);
}

TEST(Mcast, MembershipQueries) {
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  EXPECT_EQ(sess.member_count(), 0);
  sess.join(f.star.leaves[0]);
  EXPECT_TRUE(sess.is_member(f.star.leaves[0]));
  EXPECT_FALSE(sess.is_member(f.star.leaves[1]));
  EXPECT_EQ(sess.member_count(), 1);
  sess.leave(f.star.leaves[0]);
  EXPECT_EQ(sess.member_count(), 0);
}

TEST(Mcast, DynamicJoinMidStream) {
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  CountingAgent late;
  f.topo.node(f.star.leaves[2]).attach_agent(7, &late);
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  EXPECT_EQ(late.count, 0);
  sess.join(f.star.leaves[2]);
  sess.send_from_source(make_mcast(f.sim, f.star.sender, sess.group(), 7));
  f.sim.run();
  EXPECT_EQ(late.count, 1);
}

TEST(Mcast, TwoIndependentGroups) {
  StarFixture f;
  MulticastSession s1{f.topo, f.star.sender, 7};
  MulticastSession s2{f.topo, f.star.sender, 8};
  CountingAgent a7, a8;
  f.topo.node(f.star.leaves[0]).attach_agent(7, &a7);
  f.topo.node(f.star.leaves[0]).attach_agent(8, &a8);
  s1.join(f.star.leaves[0]);
  s2.join(f.star.leaves[0]);
  s1.send_from_source(make_mcast(f.sim, f.star.sender, s1.group(), 7));
  f.sim.run();
  EXPECT_EQ(a7.count, 1);
  EXPECT_EQ(a8.count, 0);
}

TEST(Mcast, RemoveModeledClampsAtZero) {
  // A mismatched remove (more modeled receivers than were added) must not
  // drive the endpoint accounting negative.
  StarFixture f;
  MulticastSession sess{f.topo, f.star.sender, 7};
  sess.join(f.star.leaves[0]);
  sess.add_modeled(10);
  EXPECT_EQ(sess.total_endpoint_count(), 10);  // 1 member - 1 tap + 10
  sess.remove_modeled(25);                     // buggy caller over-removes
  EXPECT_EQ(sess.modeled_count(), 0);
  EXPECT_EQ(sess.modeled_taps(), 0);
  EXPECT_EQ(sess.total_endpoint_count(), 1);
  sess.remove_modeled(5);  // double remove: still clamped
  EXPECT_EQ(sess.modeled_count(), 0);
  EXPECT_EQ(sess.modeled_taps(), 0);
  EXPECT_EQ(sess.total_endpoint_count(), 1);
}

TEST(Mcast, SessionsWithDistinctPortPairsShareANode) {
  // Two sessions on the same topology with disjoint (data, control) port
  // pairs: a node subscribed to both receives each session's data on the
  // right port only — the multiplexing contract SessionManager relies on.
  StarFixture f;
  MulticastSession s1{f.topo, f.star.sender, 100, 101};
  MulticastSession s2{f.topo, f.star.sender, 102, 103};
  EXPECT_EQ(s1.control_port(), 101);
  EXPECT_EQ(s2.control_port(), 103);
  CountingAgent rx1, rx2;
  f.topo.node(f.star.leaves[0]).attach_agent(100, &rx1);
  f.topo.node(f.star.leaves[0]).attach_agent(102, &rx2);
  s1.join(f.star.leaves[0]);
  s2.join(f.star.leaves[0]);
  s1.send_from_source(make_mcast(f.sim, f.star.sender, s1.group(), 100));
  s2.send_from_source(make_mcast(f.sim, f.star.sender, s2.group(), 102));
  s2.send_from_source(make_mcast(f.sim, f.star.sender, s2.group(), 102));
  f.sim.run();
  EXPECT_EQ(rx1.count, 1);
  EXPECT_EQ(rx2.count, 2);
}

TEST(Mcast, UnreachableMemberThrows) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId isolated = topo.add_node();
  topo.compute_routes();
  MulticastSession sess{topo, s, 7};
  EXPECT_THROW(sess.join(isolated), std::logic_error);
}

}  // namespace
}  // namespace tfmcc
