#include "analysis/order_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tfmcc {
namespace {

namespace os = order_stats;

TEST(OrderStats, IncompleteGammaKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(os::reg_lower_incomplete_gamma(1.0, x), 1.0 - std::exp(-x),
                1e-10);
  }
  // P(a, 0) = 0 and P(a, inf) -> 1.
  EXPECT_DOUBLE_EQ(os::reg_lower_incomplete_gamma(2.5, 0.0), 0.0);
  EXPECT_NEAR(os::reg_lower_incomplete_gamma(2.5, 100.0), 1.0, 1e-12);
}

TEST(OrderStats, IncompleteGammaHalfIntegerValue) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(os::reg_lower_incomplete_gamma(0.5, x), std::erf(std::sqrt(x)),
                1e-10);
  }
}

TEST(OrderStats, IncompleteGammaInvalidArgsThrow) {
  EXPECT_THROW(os::reg_lower_incomplete_gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(os::reg_lower_incomplete_gamma(1.0, -1.0), std::invalid_argument);
}

TEST(OrderStats, GammaCdfMedianOfShape1) {
  // Gamma(1, theta) is Exponential(theta): median = theta*ln2.
  EXPECT_NEAR(os::gamma_cdf(2.0 * std::log(2.0), 1.0, 2.0), 0.5, 1e-10);
}

TEST(OrderStats, ExpectedMinExponentialClosedForm) {
  EXPECT_DOUBLE_EQ(os::expected_min_exponential(10.0, 1), 10.0);
  EXPECT_DOUBLE_EQ(os::expected_min_exponential(10.0, 5), 2.0);
}

TEST(OrderStats, ExpectedMinGammaMatchesExponentialForShape1) {
  // Gamma(1, theta) = Exp(theta): E[min of n] = theta/n.
  for (int n : {1, 4, 16}) {
    EXPECT_NEAR(os::expected_min_gamma(1.0, 3.0, n), 3.0 / n, 0.01);
  }
}

TEST(OrderStats, ExpectedMinGammaSingleIsMean) {
  EXPECT_NEAR(os::expected_min_gamma(8.0, 0.5, 1), 4.0, 0.01);
}

TEST(OrderStats, ExpectedMinGammaDecreasesWithN) {
  double prev = 1e18;
  for (int n : {1, 10, 100, 1000}) {
    const double v = os::expected_min_gamma(8.0, 1.0, n);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(OrderStats, GammaMinConcentratesSlowerThanExponential) {
  // §3: averaging `k` intervals (gamma with shape k) mitigates the 1/n
  // collapse of the single-interval (exponential) minimum.
  const int n = 1000;
  const double exp_min = os::expected_min_exponential(1.0, n);
  const double gamma_min = os::expected_min_gamma(8.0, 1.0 / 8.0, n);  // mean 1
  EXPECT_GT(gamma_min, 10.0 * exp_min);
}

TEST(OrderStats, MonteCarloAgreesWithNumericIntegration) {
  Rng rng{77};
  const double mc = os::expected_min_gamma_mc(8.0, 1.0, 50, 4000, rng);
  const double ni = os::expected_min_gamma(8.0, 1.0, 50);
  EXPECT_NEAR(mc, ni, 0.12 * ni);
}

}  // namespace
}  // namespace tfmcc
