#include "pgmcc/pgmcc.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

constexpr PortId kDataPort = 12;

struct PgmccFixture {
  PgmccFixture(std::vector<LinkConfig> leaf_cfgs, std::uint64_t seed = 71)
      : sim{seed}, topo{sim} {
    LinkConfig trunk;
    trunk.rate_bps = 10e6;
    trunk.delay = 5_ms;
    star = make_star(topo, trunk, leaf_cfgs);
    session = std::make_unique<MulticastSession>(topo, star.sender, kDataPort);
    sender = std::make_unique<PgmccSender>(sim, *session, PgmccConfig{},
                                           sim.make_rng(900));
    for (std::size_t i = 0; i < leaf_cfgs.size(); ++i) {
      receivers.push_back(std::make_unique<PgmccReceiver>(
          sim, *session, star.leaves[i], static_cast<std::int32_t>(i),
          PgmccConfig{}, sim.make_rng(901 + i)));
      receivers.back()->join();
    }
  }
  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<MulticastSession> session;
  std::unique_ptr<PgmccSender> sender;
  std::vector<std::unique_ptr<PgmccReceiver>> receivers;
};

LinkConfig leaf(double loss, SimTime delay = SimTime::millis(15)) {
  LinkConfig l;
  l.rate_bps = 10e6;
  l.delay = delay;
  l.loss_rate = loss;
  return l;
}

TEST(Pgmcc, ElectsAnAckerAndTransfersData) {
  PgmccFixture f{{leaf(0.01), leaf(0.001)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(60_sec);
  EXPECT_NE(f.sender->acker(), kInvalidReceiver);
  EXPECT_GT(f.sender->data_sent(), 200);
  EXPECT_GT(f.receivers[0]->packets_received(), 200);
}

TEST(Pgmcc, WorstReceiverBecomesAcker) {
  PgmccFixture f{{leaf(0.001), leaf(0.05)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(90_sec);
  EXPECT_EQ(f.sender->acker(), 1);
  EXPECT_TRUE(f.receivers[1]->is_acker());
  EXPECT_FALSE(f.receivers[0]->is_acker());
}

TEST(Pgmcc, HighRttReceiverBecomesAcker) {
  PgmccFixture f{{leaf(0.01, 10_ms), leaf(0.01, 150_ms)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(120_sec);
  EXPECT_EQ(f.sender->acker(), 1);
}

TEST(Pgmcc, AckerAcksEveryReceivedPacket) {
  PgmccFixture f{{leaf(0.0)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(30_sec);
  ASSERT_EQ(f.sender->acker(), 0);
  // All packets after election are ACKed; allow for the pre-election start.
  EXPECT_GE(f.receivers[0]->acks_sent(),
            f.receivers[0]->packets_received() - 20);
}

TEST(Pgmcc, WindowHalvesOnLoss) {
  PgmccFixture f{{leaf(0.02)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(60_sec);
  EXPECT_GT(f.sender->window_halvings(), 3);
}

TEST(Pgmcc, ThroughputTracksAckerConditions) {
  // 2% loss, ~40 ms RTT: the TCP model allows roughly 1.5-3 Mbit/s.
  PgmccFixture f{{leaf(0.02, 15_ms)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(120_sec);
  const double kbps =
      static_cast<double>(f.receivers[0]->packets_received()) *
      kDataPacketBytes * 8.0 / 1000.0 / 120.0;
  EXPECT_GT(kbps, 300.0);
  EXPECT_LT(kbps, 9000.0);
}

TEST(Pgmcc, SurvivesAckerLeave) {
  PgmccFixture f{{leaf(0.02), leaf(0.002)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(60_sec);
  ASSERT_EQ(f.sender->acker(), 0);
  const auto sent_before = f.sender->data_sent();
  f.receivers[0]->leave();
  f.sim.run_until(180_sec);
  // The RTO path keeps the session alive; receiver 1's reports eventually
  // make it the acker.
  EXPECT_GT(f.sender->data_sent(), sent_before + 50);
}

TEST(Pgmcc, StopIsQuiescent) {
  PgmccFixture f{{leaf(0.01)}};
  f.sender->start(SimTime::zero());
  f.sim.run_until(10_sec);
  f.sender->stop();
  const auto sent = f.sender->data_sent();
  f.sim.run_until(20_sec);
  EXPECT_EQ(f.sender->data_sent(), sent);
}

}  // namespace
}  // namespace tfmcc
