#include "net/queue.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace tfmcc {
namespace {

PacketPtr make_packet(std::int32_t bytes, std::uint64_t uid = 0) {
  auto p = make_heap_packet();
  p->uid = uid;
  p->size_bytes = bytes;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{10};
  q.enqueue(make_packet(100, 1));
  q.enqueue(make_packet(100, 2));
  q.enqueue(make_packet(100, 3));
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue()->uid, 3u);
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q{2};
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_FALSE(q.enqueue(make_packet(100)));
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.accepted(), 2);
  EXPECT_EQ(q.size_packets(), 2u);
}

TEST(DropTailQueue, ByteAccounting) {
  DropTailQueue q{10};
  q.enqueue(make_packet(100));
  q.enqueue(make_packet(250));
  EXPECT_EQ(q.size_bytes(), 350);
  q.dequeue();
  EXPECT_EQ(q.size_bytes(), 250);
  q.dequeue();
  EXPECT_EQ(q.size_bytes(), 0);
}

TEST(DropTailQueue, EmptyPredicate) {
  DropTailQueue q{2};
  EXPECT_TRUE(q.empty());
  q.enqueue(make_packet(1));
  EXPECT_FALSE(q.empty());
  q.dequeue();
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DrainAfterDropStillFifo) {
  DropTailQueue q{2};
  q.enqueue(make_packet(1, 1));
  q.enqueue(make_packet(1, 2));
  q.enqueue(make_packet(1, 3));  // dropped
  q.dequeue();
  EXPECT_TRUE(q.enqueue(make_packet(1, 4)));
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue()->uid, 4u);
}

TEST(RedQueue, AcceptsBelowMinThreshold) {
  RedQueue::Config cfg;
  cfg.limit_packets = 50;
  cfg.min_th = 5;
  cfg.max_th = 15;
  RedQueue q{cfg, Rng{1}};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_EQ(q.drops(), 0);
}

TEST(RedQueue, HardLimitAlwaysDrops) {
  RedQueue::Config cfg;
  cfg.limit_packets = 5;
  RedQueue q{cfg, Rng{1}};
  for (int i = 0; i < 5; ++i) q.enqueue(make_packet(100));
  EXPECT_FALSE(q.enqueue(make_packet(100)));
}

TEST(RedQueue, ProbabilisticDropsUnderSustainedLoad) {
  RedQueue::Config cfg;
  cfg.limit_packets = 100;
  cfg.min_th = 2;
  cfg.max_th = 6;
  cfg.weight = 0.5;  // fast-moving average for the test
  RedQueue q{cfg, Rng{1}};
  int drops = 0;
  for (int i = 0; i < 500; ++i) {
    if (!q.enqueue(make_packet(100))) ++drops;
    if (q.size_packets() > 4) q.dequeue();  // keep queue near thresholds
  }
  EXPECT_GT(drops, 0);          // RED drops before the hard limit
  EXPECT_LT(drops, 500);        // but not everything
}

TEST(RedQueue, FifoOrderPreserved) {
  RedQueue::Config cfg;
  RedQueue q{cfg, Rng{2}};
  q.enqueue(make_packet(1, 7));
  q.enqueue(make_packet(1, 8));
  EXPECT_EQ(q.dequeue()->uid, 7u);
  EXPECT_EQ(q.dequeue()->uid, 8u);
}

}  // namespace
}  // namespace tfmcc
