#include <gtest/gtest.h>

#include <memory>

#include "mcast/session.hpp"
#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/receiver_block.hpp"
#include "util/stats.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// White-box tests of the modeled-receiver tier: craft data packets and
/// inspect the block's shared and per-receiver (SoA) state directly.
struct BlockFixture {
  explicit BlockFixture(int count = 5) : sim{43}, topo{sim} {
    LinkConfig cfg;
    cfg.rate_bps = 1e9;
    cfg.delay = 1_ms;
    star = make_star(topo, cfg, {cfg});
    session = std::make_unique<MulticastSession>(topo, star.sender,
                                                 kTfmccDataPort);
    ModeledReceiverBlock::BlockConfig bc;
    bc.count = count;
    bc.base_id = 100;
    bc.extra_owd_min = SimTime::zero();
    bc.extra_owd_max = 40_ms;  // stratified: receiver i gets i * 10 ms
    block = std::make_unique<ModeledReceiverBlock>(
        sim, *session, star.leaves[0], bc, TfmccConfig{}, sim.make_rng(67));
    block->join();
  }

  /// Deliver a crafted data packet directly to the block.
  void deliver(TfmccDataHeader h, SimTime age = SimTime::millis(20)) {
    Packet p;
    p.uid = sim.next_uid();
    p.src = star.sender;
    p.group = session->group();
    p.dport = kTfmccDataPort;
    p.size_bytes = kDataPacketBytes;
    if (h.send_ts == SimTime::zero()) h.send_ts = sim.now() - age;
    if (h.fb_deadline == SimTime::zero()) h.fb_deadline = 2_sec;
    p.header = h;
    block->handle_packet(p);
  }

  TfmccDataHeader data(std::int64_t seqno, double rate_kbps = 1000.0) {
    TfmccDataHeader h;
    h.seqno = seqno;
    h.send_rate_Bps = Bps_from_kbps(rate_kbps);
    h.round = round;
    return h;
  }

  void advance(SimTime d) { sim.run_until(sim.now() + d); }

  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<MulticastSession> session;
  std::unique_ptr<ModeledReceiverBlock> block;
  std::int32_t round{1};
};

TEST(ModeledReceiverBlockUnit, SharedLossStateIsPerBlockNotPerReceiver) {
  BlockFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  EXPECT_FALSE(f.block->has_loss());
  EXPECT_EQ(f.block->packets_received(), 20);
  f.deliver(f.data(25));  // packets 20..24 lost upstream of the tap
  EXPECT_TRUE(f.block->has_loss());
  EXPECT_EQ(f.block->packets_lost(), 5);
  // One shared history: the loss event rate is a block property.
  EXPECT_GT(f.block->loss_event_rate(), 0.0);
  EXPECT_LT(f.block->loss_event_rate(), 0.1);
}

TEST(ModeledReceiverBlockUnit, SessionAccountsModeledEndpoints) {
  BlockFixture f{50};
  EXPECT_EQ(f.block->endpoint_count(), 50);
  EXPECT_EQ(f.session->modeled_count(), 50);
  EXPECT_EQ(f.session->member_count(), 1);  // one tap on the tree
  EXPECT_EQ(f.session->total_endpoint_count(), 50);
  f.block->leave();
  EXPECT_EQ(f.session->modeled_count(), 0);
  EXPECT_EQ(f.session->total_endpoint_count(), 0);
  EXPECT_FALSE(f.session->is_member(f.star.leaves[0]));
}

TEST(ModeledReceiverBlockUnit, EchoYieldsPerReceiverVirtualRtt) {
  BlockFixture f;
  EXPECT_EQ(f.block->receivers_with_rtt(), 0);
  auto h = f.data(0);
  h.echo.receiver = 102;  // block index 2 (extra one-way delay 20 ms)
  h.echo.ts = f.sim.now() - 80_ms;
  h.echo.delay = 30_ms;  // tap-path sample: 80 - 30 = 50 ms
  f.deliver(h);
  EXPECT_EQ(f.block->receivers_with_rtt(), 1);
  const ModeledRxInfo info = f.block->rx_info(2);
  EXPECT_TRUE(info.has_rtt());
  // Modeled RTT = tap sample + 2 * extra_owd = 50 + 40 = 90 ms.
  EXPECT_EQ(info.rtt_us, 90'000u);
  // The other receivers keep the initial estimate.
  EXPECT_FALSE(f.block->rx_info(0).has_rtt());
  EXPECT_EQ(f.block->rx_info(0).rtt_us, 500'000u);
}

TEST(ModeledReceiverBlockUnit, EchoForOutsideReceiverIsIgnored) {
  BlockFixture f;
  auto h = f.data(0);
  h.echo.receiver = 7;  // not hosted here (ids are 100..104)
  h.echo.ts = f.sim.now() - 80_ms;
  f.deliver(h);
  EXPECT_EQ(f.block->receivers_with_rtt(), 0);
}

TEST(ModeledReceiverBlockUnit, EligibleCandidatesReportWithinRound) {
  BlockFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(30));  // loss -> finite calc rates
  f.advance(10_ms);
  f.round = 2;
  f.deliver(f.data(31, 100000.0));  // far above any calc rate -> eligible
  f.advance(5_sec);
  EXPECT_GE(f.block->feedback_sent(), 1);
  // The candidate short-list bounds the per-round report count.
  EXPECT_LE(f.block->feedback_sent(), f.block->candidate_cap());
}

TEST(ModeledReceiverBlockUnit, SuppressionByLowerEchoedRate) {
  BlockFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(30));
  f.advance(10_ms);
  f.round = 2;
  f.deliver(f.data(31, 100000.0));  // candidates armed
  auto h = f.data(32, 100000.0);
  h.supp_rate_Bps = 1.0;  // someone far more limited already reported
  f.deliver(h);
  f.advance(5_sec);
  EXPECT_EQ(f.block->feedback_sent(), 0);
}

TEST(ModeledReceiverBlockUnit, ClrMemberReportsPeriodically) {
  BlockFixture f;
  auto h = f.data(0);
  h.echo.receiver = 103;
  h.echo.ts = f.sim.now() - 50_ms;
  h.clr = 103;  // block index 3 is the CLR
  f.deliver(h);
  EXPECT_EQ(f.block->clr_id(), 103);
  EXPECT_TRUE(f.block->rx_info(3).is_clr());
  f.advance(1_sec);
  EXPECT_GT(f.block->feedback_sent(), 5);  // ~1 per RTT, unsuppressed
  // Demotion stops the periodic reports.
  auto h2 = f.data(1);
  h2.clr = 7;  // an outside receiver took over
  f.deliver(h2);
  EXPECT_EQ(f.block->clr_id(), kInvalidReceiver);
  EXPECT_FALSE(f.block->rx_info(3).is_clr());
  const auto sent = f.block->feedback_sent();
  f.advance(2_sec);
  EXPECT_EQ(f.block->feedback_sent(), sent);
}

TEST(ModeledReceiverBlockUnit, LeaveReportsEveryReceiverTheSenderHeard) {
  BlockFixture f;
  auto h = f.data(0);
  h.echo.receiver = 101;
  h.echo.ts = f.sim.now() - 50_ms;
  h.clr = 101;
  f.deliver(h);
  f.advance(500_ms);  // CLR 101 reports a few times
  const auto before = f.block->feedback_sent();
  ASSERT_GT(before, 0);
  f.block->leave();
  // Exactly one leave report per receiver flagged as reported (here: 101).
  EXPECT_EQ(f.block->feedback_sent(), before + 1);
  EXPECT_FALSE(f.block->joined());
  EXPECT_EQ(f.block->endpoint_count(), 1);  // detached agent counts itself
}

TEST(ModeledReceiverBlockUnit, MulticastDeliveryCountsAllEndpoints) {
  BlockFixture f{5};
  auto p = f.sim.make_packet();
  p->src = f.star.sender;
  p->group = f.session->group();
  p->dport = kTfmccDataPort;
  p->size_bytes = kDataPacketBytes;
  TfmccDataHeader h;
  h.seqno = 0;
  h.send_ts = f.sim.now();
  h.fb_deadline = 2_sec;
  p->header = h;
  f.session->send_from_source(p);
  f.sim.run();
  EXPECT_EQ(f.block->packets_received(), 1);
  const Node& tap = f.topo.node(f.star.leaves[0]);
  // One physical delivery, five logical endpoints reached.
  EXPECT_EQ(tap.delivered_local(), 1);
  EXPECT_EQ(tap.delivered_endpoints(), 5);
}

}  // namespace
}  // namespace tfmcc
