#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tfmcc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SubstreamsAreIndependentAndDeterministic) {
  Rng root{7};
  Rng s1 = root.substream(1);
  Rng s2 = root.substream(2);
  Rng s1_again = Rng{7}.substream(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (s1.next_u64() == s2.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01NeverZero) {
  Rng r{3};
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform01();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng r{4};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng r{5};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LE(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r{6};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r{8};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{10};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricTrialsMean) {
  Rng r{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric_trials(0.1));
  EXPECT_NEAR(sum / n, 10.0, 0.3);  // mean trials = 1/p
}

}  // namespace
}  // namespace tfmcc
