#include "analysis/scaling.hpp"

#include <gtest/gtest.h>

#include "tfrc/equation.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;
namespace sc = scaling;

sc::ModelConfig fast_cfg() {
  sc::ModelConfig cfg;
  cfg.trials = 120;
  return cfg;
}

TEST(Scaling, ConstantLossesVector) {
  const auto v = sc::constant_losses(5, 0.1);
  ASSERT_EQ(v.size(), 5u);
  for (double p : v) EXPECT_DOUBLE_EQ(p, 0.1);
}

TEST(Scaling, StratifiedLossesShape) {
  Rng rng{1};
  const auto v = sc::stratified_losses(1000, rng);
  ASSERT_EQ(v.size(), 1000u);
  int high = 0, mid = 0, low = 0;
  for (double p : v) {
    EXPECT_GE(p, 0.005);
    EXPECT_LE(p, 0.10);
    if (p >= 0.05) {
      ++high;
    } else if (p >= 0.02) {
      ++mid;
    } else {
      ++low;
    }
  }
  // "a small number ... high loss, some more ... 2-5%, vast majority low".
  EXPECT_GT(high, 0);
  EXPECT_GT(mid, high / 2);
  EXPECT_GT(low, 10 * high);
}

TEST(Scaling, SingleReceiverMatchesFairRate) {
  Rng rng{2};
  const auto losses = sc::constant_losses(1, 0.1);
  const auto cfg = fast_cfg();
  const double actual = sc::expected_min_rate_Bps(losses, cfg, rng);
  const double fair = sc::fair_rate_Bps(losses, cfg);
  // One receiver: the stochastic estimate is unbiased-ish; allow 25%.
  EXPECT_NEAR(actual, fair, 0.25 * fair);
}

TEST(Scaling, FairRateAnchorIs300Kbps) {
  // §3: s=1000, RTT=50 ms, p=10% -> ~300 kbit/s.
  const auto cfg = fast_cfg();
  const double kbps = sc::fair_rate_Bps(sc::constant_losses(1, 0.1), cfg) *
                      8.0 / 1000.0;
  EXPECT_GT(kbps, 200.0);
  EXPECT_LT(kbps, 400.0);
}

TEST(Scaling, ThroughputDegradesWithReceiverCount) {
  Rng rng{3};
  const auto cfg = fast_cfg();
  double prev = 1e18;
  for (int n : {1, 10, 100, 1000}) {
    const double rate =
        sc::expected_min_rate_Bps(sc::constant_losses(n, 0.1), cfg, rng);
    EXPECT_LT(rate, prev * 1.05) << "n=" << n;  // monotone (5% MC slack)
    prev = rate;
  }
}

TEST(Scaling, LargeConstantGroupLosesMostThroughput) {
  Rng rng{4};
  const auto cfg = fast_cfg();
  const double fair = sc::fair_rate_Bps(sc::constant_losses(1, 0.1), cfg);
  const double at_10k =
      sc::expected_min_rate_Bps(sc::constant_losses(10000, 0.1), cfg, rng);
  // Fig. 7: the paper's protocol-in-the-loop run measured ~1/6 of fair at
  // n = 10^4; the pure min-tracking model is harsher (the live protocol's
  // feedback delay and CLR stickiness smooth the minimum).  Assert the
  // qualitative claim: severe degradation, but not collapse to zero.
  EXPECT_LT(at_10k, fair / 3.0);
  EXPECT_GT(at_10k, fair / 80.0);
}

TEST(Scaling, StratifiedLossDegradesFarLess) {
  Rng rng{5};
  auto cfg = fast_cfg();
  cfg.trials = 60;
  const auto losses = sc::stratified_losses(10000, rng);
  const double fair = sc::fair_rate_Bps(losses, cfg);
  const double actual = sc::expected_min_rate_Bps(losses, cfg, rng);
  // Fig. 7 / §3: spreading the loss rates out leaves only a mild
  // degradation ("merely 30%" in the paper) — far less than constant loss.
  EXPECT_GT(actual, 0.35 * fair);
  EXPECT_LT(actual, 1.05 * fair);

  Rng rng2{6};
  const double constant =
      sc::expected_min_rate_Bps(sc::constant_losses(10000, 0.1), cfg, rng2);
  const double fair_c = sc::fair_rate_Bps(sc::constant_losses(1, 0.1), cfg);
  EXPECT_GT(actual / fair, 3.0 * (constant / fair_c));
}

TEST(Scaling, DeeperHistoryMitigatesDegradation) {
  Rng rng{6};
  sc::ModelConfig shallow = fast_cfg();
  shallow.history_depth = 2;
  sc::ModelConfig deep = fast_cfg();
  deep.history_depth = 32;
  const auto losses = sc::constant_losses(1000, 0.1);
  const double r_shallow = sc::expected_min_rate_Bps(losses, shallow, rng);
  const double r_deep = sc::expected_min_rate_Bps(losses, deep, rng);
  // §3: "the degradation effect can be alleviated by increasing the number
  // of loss intervals".
  EXPECT_GT(r_deep, r_shallow);
}

}  // namespace
}  // namespace tfmcc
