// Unit tests for the typed `--set key=value` scenario-parameter passthrough:
// command-line parsing, type coercion in param_or<T>, and the unknown-key /
// malformed-value diagnostics produced by pre-run validation.

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "sim/scenario.hpp"

namespace tfmcc {
namespace {

bool parse(std::vector<const char*> argv, ScenarioOptions& opts,
           std::string* err_out = nullptr) {
  std::ostringstream err;
  const bool ok =
      parse_scenario_options(static_cast<int>(argv.size()),
                             const_cast<char**>(argv.data()), opts, err);
  if (err_out != nullptr) *err_out = err.str();
  return ok;
}

TEST(ParseSet, AccumulatesKeyValuePairs) {
  ScenarioOptions opts;
  ASSERT_TRUE(parse({"--set", "n_receivers=1000", "--set", "loss_rate=0.05",
                     "--duration", "20"},
                    opts));
  EXPECT_EQ(opts.params().size(), 2u);
  EXPECT_TRUE(opts.has_param("n_receivers"));
  EXPECT_TRUE(opts.has_param("loss_rate"));
  EXPECT_FALSE(opts.has_param("bottleneck_bps"));
  ASSERT_TRUE(opts.duration.has_value());
  EXPECT_EQ(*opts.duration, SimTime::seconds(20));
}

TEST(ParseSet, LastWriteWinsOnDuplicateKeys) {
  ScenarioOptions opts;
  ASSERT_TRUE(parse({"--set", "n=4", "--set", "n=8"}, opts));
  EXPECT_EQ(opts.param_or("n", 0), 8);
}

TEST(ParseSet, ValueMayContainEqualsSign) {
  ScenarioOptions opts;
  ASSERT_TRUE(parse({"--set", "expr=a=b"}, opts));
  EXPECT_EQ(opts.param_or("expr", ""), "a=b");
}

TEST(ParseSet, RejectsMalformedSyntax) {
  const struct {
    std::vector<const char*> argv;
  } cases[] = {
      {{"--set"}},               // missing key=value
      {{"--set", "no_equals"}},  // no '='
      {{"--set", "=value"}},     // empty key
  };
  for (const auto& c : cases) {
    ScenarioOptions opts;
    std::string err;
    EXPECT_FALSE(parse(c.argv, opts, &err));
    EXPECT_NE(err.find("--set expects key=value"), std::string::npos) << err;
  }
}

TEST(ParamOr, CoercesNumericSpellings) {
  ScenarioOptions opts;
  opts.set_param("n", "1000");
  opts.set_param("rate", "2e6");
  opts.set_param("frac", "0.05");
  opts.set_param("neg", "-3");
  EXPECT_EQ(opts.param_or("n", 0), 1000);
  EXPECT_EQ(opts.param_or<std::int64_t>("n", 0), 1000);
  EXPECT_EQ(opts.param_or<std::uint64_t>("n", 0), 1000u);
  EXPECT_DOUBLE_EQ(opts.param_or("n", 0.0), 1000.0);
  // Scientific notation reads as a whole number for integer params too.
  EXPECT_EQ(opts.param_or<std::int64_t>("rate", 0), 2000000);
  EXPECT_DOUBLE_EQ(opts.param_or("rate", 0.0), 2e6);
  EXPECT_DOUBLE_EQ(opts.param_or("frac", 0.0), 0.05);
  EXPECT_EQ(opts.param_or("neg", 0), -3);
}

TEST(ParamOr, CoercesBoolsAndStrings) {
  ScenarioOptions opts;
  opts.set_param("red", "true");
  opts.set_param("tail", "0");
  opts.set_param("label", "with_memory");
  EXPECT_TRUE(opts.param_or("red", false));
  EXPECT_FALSE(opts.param_or("tail", true));
  EXPECT_EQ(opts.param_or("label", "dflt"), "with_memory");
}

TEST(ParamOr, AbsentKeyReturnsDefault) {
  ScenarioOptions opts;
  EXPECT_EQ(opts.param_or("n", 42), 42);
  EXPECT_DOUBLE_EQ(opts.param_or("x", 0.5), 0.5);
  EXPECT_EQ(opts.param_or("s", "dflt"), "dflt");
}

TEST(ParamOr, UnparsableValueFallsBackToDefault) {
  ScenarioOptions opts;
  opts.set_param("n", "banana");
  opts.set_param("f", "0.5x");
  opts.set_param("b", "maybe");
  opts.set_param("frac_int", "1.5");  // non-integral, rejected for int
  EXPECT_EQ(opts.param_or("n", 7), 7);
  EXPECT_DOUBLE_EQ(opts.param_or("f", 1.25), 1.25);
  EXPECT_TRUE(opts.param_or("b", true));
  EXPECT_EQ(opts.param_or("frac_int", 3), 3);
}

TEST(ParamOr, UndeclaredReadIsDiagnosedWhenSpecsAreBound) {
  // Regression: a scenario reading a key missing from its ParamSpec list
  // used to silently return the fallback — the knob looked live but
  // `--set` could never reach it.  With the scenario's specs bound (as the
  // registry does before dispatch) the read asserts in debug builds and
  // warns on stderr in release builds.
  const ParamSpecList specs{param("declared", 1, "the one real knob", 0)};
  ScenarioOptions opts;
  opts.bind_specs(&specs);
  EXPECT_EQ(opts.param_or("declared", 7), 7);  // absent -> default, silent
  EXPECT_DEBUG_DEATH(opts.param_or("undeclared", 7),
                     "undeclared parameter 'undeclared'");
#ifdef NDEBUG
  // Release builds keep running; verify the stderr diagnostic instead.
  testing::internal::CaptureStderr();
  EXPECT_EQ(opts.param_or("undeclared", 7), 7);
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("undeclared parameter 'undeclared'"),
            std::string::npos);
#endif
}

TEST(ParamOr, UncheckedWithoutBoundSpecs) {
  // Bare ScenarioOptions (unit tests, ad-hoc embedding) stay permissive;
  // the declared-key check only arms when a scenario's specs are bound.
  ScenarioOptions opts;
  EXPECT_EQ(opts.param_or("anything_goes", 9), 9);
}

TEST(ParseOutput, AcceptsPathAndRejectsMissingValue) {
  ScenarioOptions opts;
  ASSERT_TRUE(parse({"--output", "/tmp/trace.csv"}, opts));
  ASSERT_TRUE(opts.output_path.has_value());
  EXPECT_EQ(*opts.output_path, "/tmp/trace.csv");

  ScenarioOptions missing;
  std::string err;
  EXPECT_FALSE(parse({"--output"}, missing, &err));
  EXPECT_NE(err.find("--output expects a file path"), std::string::npos);
}

TEST(OutputSink, DefaultsToStdoutAndFollowsRedirection) {
  ScenarioOptions opts;
  EXPECT_EQ(&opts.out(), &std::cout);
  std::ostringstream sink;
  opts.set_output(sink);
  EXPECT_EQ(&opts.out(), &sink);
  opts.out() << "redirected";
  EXPECT_EQ(sink.str(), "redirected");
}

TEST(ParamSpecBuilder, PicksTypeAndDefaultFromCxxType) {
  const ParamSpec i = param("n", 4, "count");
  EXPECT_EQ(i.type, ParamType::kInt64);
  EXPECT_EQ(i.default_value, "4");
  const ParamSpec d = param("bps", 8e6, "rate");
  EXPECT_EQ(d.type, ParamType::kDouble);
  EXPECT_EQ(d.default_value, "8e+06");
  const ParamSpec b = param("red", true, "queue");
  EXPECT_EQ(b.type, ParamType::kBool);
  EXPECT_EQ(b.default_value, "true");
  const ParamSpec s = param("mode", "fast", "variant");
  EXPECT_EQ(s.type, ParamType::kString);
  EXPECT_EQ(s.default_value, "fast");
}

class ValidationTest : public testing::Test {
 protected:
  ValidationTest() {
    scenario_.name = "probe";
    scenario_.params = {param("n_receivers", 4, "count", 1),
                        param("loss_rate", 0.01, "loss", 0.0),
                        param("use_red", false, "queue discipline")};
  }
  Scenario scenario_;
};

TEST_F(ValidationTest, AcceptsDeclaredKeysWithCoercibleValues) {
  ScenarioOptions opts;
  opts.set_param("n_receivers", "1000");
  opts.set_param("loss_rate", "5e-2");
  opts.set_param("use_red", "on");
  std::ostringstream err;
  EXPECT_TRUE(validate_scenario_params(scenario_, opts, err));
  EXPECT_TRUE(err.str().empty()) << err.str();
}

TEST_F(ValidationTest, UnknownKeyIsDiagnosedWithKnownParams) {
  ScenarioOptions opts;
  opts.set_param("n_recievers", "8");  // typo
  std::ostringstream err;
  EXPECT_FALSE(validate_scenario_params(scenario_, opts, err));
  EXPECT_NE(err.str().find("unknown parameter 'n_recievers'"),
            std::string::npos);
  EXPECT_NE(err.str().find("n_receivers"), std::string::npos);
  EXPECT_NE(err.str().find("loss_rate"), std::string::npos);
}

TEST_F(ValidationTest, MalformedValueIsDiagnosedWithExpectedType) {
  ScenarioOptions opts;
  opts.set_param("loss_rate", "lots");
  std::ostringstream err;
  EXPECT_FALSE(validate_scenario_params(scenario_, opts, err));
  EXPECT_NE(err.str().find("malformed value 'lots'"), std::string::npos);
  EXPECT_NE(err.str().find("expected double"), std::string::npos);
}

TEST_F(ValidationTest, NonIntegralValueForIntParamIsMalformed) {
  ScenarioOptions opts;
  opts.set_param("n_receivers", "4.5");
  std::ostringstream err;
  EXPECT_FALSE(validate_scenario_params(scenario_, opts, err));
  EXPECT_NE(err.str().find("malformed value '4.5'"), std::string::npos);
}

TEST_F(ValidationTest, ValueBelowTheDeclaredMinimumIsRejected) {
  // Scenarios index arrays and drive loops with these values, so validation
  // enforces range, not just type: n_receivers=0 would crash fig09-style
  // indexing and negative loop steps would spin forever.
  for (const char* bad : {"0", "-3"}) {
    ScenarioOptions opts;
    opts.set_param("n_receivers", bad);
    std::ostringstream err;
    EXPECT_FALSE(validate_scenario_params(scenario_, opts, err)) << bad;
    EXPECT_NE(err.str().find("below the minimum 1"), std::string::npos)
        << err.str();
  }
  ScenarioOptions opts;
  opts.set_param("loss_rate", "-0.1");
  std::ostringstream err;
  EXPECT_FALSE(validate_scenario_params(scenario_, opts, err));
  EXPECT_NE(err.str().find("below the minimum 0"), std::string::npos);
}

TEST_F(ValidationTest, MinimumIsInclusive) {
  ScenarioOptions opts;
  opts.set_param("n_receivers", "1");
  opts.set_param("loss_rate", "0");
  std::ostringstream err;
  EXPECT_TRUE(validate_scenario_params(scenario_, opts, err)) << err.str();
}

TEST(ParamSpecBuilder, MinIsRecordedWhenGiven) {
  EXPECT_FALSE(param("n", 4, "count").min.has_value());
  const ParamSpec bounded = param("n", 4, "count", 1);
  ASSERT_TRUE(bounded.min.has_value());
  EXPECT_DOUBLE_EQ(*bounded.min, 1.0);
}

TEST(RegistryValidation, RunRejectsUnknownKeyBeforeTheScenarioExecutes) {
  static bool ran;
  ran = false;
  ScenarioRegistry reg;
  reg.add(
      "probe", "",
      [](const ScenarioOptions&) {
        ran = true;
        return 0;
      },
      {param("n", 4, "count")});
  ScenarioOptions opts;
  opts.set_param("m", "8");
  std::ostringstream err;
  EXPECT_EQ(reg.run("probe", opts, err), -1);
  EXPECT_FALSE(ran);
  EXPECT_NE(err.str().find("unknown parameter 'm'"), std::string::npos);
}

TEST(RegistryValidation, RunForwardsDeclaredOverridesToTheScenario) {
  ScenarioRegistry reg;
  reg.add(
      "probe", "",
      [](const ScenarioOptions& o) {
        return o.param_or("n", 0) == 1000 ? 0 : 1;
      },
      {param("n", 4, "count")});
  ScenarioOptions opts;
  opts.set_param("n", "1000");
  std::ostringstream err;
  EXPECT_EQ(reg.run("probe", opts, err), 0);
}

TEST(RegistryValidation, ScenarioWithoutParamsRejectsAnyOverride) {
  ScenarioRegistry reg;
  reg.add("bare", "", [](const ScenarioOptions&) { return 0; });
  ScenarioOptions opts;
  opts.set_param("n", "8");
  std::ostringstream err;
  EXPECT_EQ(reg.run("bare", opts, err), -1);
  EXPECT_NE(err.str().find("declares no parameters"), std::string::npos);
}

// The variadic macro form with parameter declarations registers the specs.
TFMCC_SCENARIO(test_params_macro_scenario, "macro scenario with params",
               tfmcc::param("knob", 3, "a declared knob")) {
  return opts.param_or("knob", 3);
}

TEST(RegistryValidation, MacroRegistersParamSpecs) {
  const Scenario* s =
      ScenarioRegistry::instance().find("test_params_macro_scenario");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->params.size(), 1u);
  EXPECT_EQ(s->params[0].name, "knob");
  EXPECT_EQ(s->params[0].type, ParamType::kInt64);
  EXPECT_EQ(s->params[0].default_value, "3");
  ASSERT_NE(s->find_param("knob"), nullptr);
  EXPECT_EQ(s->find_param("missing"), nullptr);
}

}  // namespace
}  // namespace tfmcc
