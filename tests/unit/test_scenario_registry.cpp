#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

int null_scenario(const ScenarioOptions&) { return 0; }

TEST(ScenarioRegistry, LookupFindsRegisteredScenario) {
  ScenarioRegistry reg;
  ASSERT_TRUE(reg.add("alpha", "first", &null_scenario));
  const Scenario* s = reg.find("alpha");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "alpha");
  EXPECT_EQ(s->description, "first");
  EXPECT_EQ(s->fn, &null_scenario);
  EXPECT_EQ(reg.find("beta"), nullptr);
}

TEST(ScenarioRegistry, DuplicateNameKeepsFirstRegistration) {
  ScenarioRegistry reg;
  ASSERT_TRUE(reg.add("alpha", "first", &null_scenario));
  EXPECT_FALSE(reg.add("alpha", "second", &null_scenario));
  EXPECT_EQ(reg.find("alpha")->description, "first");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ScenarioRegistry, NamesAreSorted) {
  ScenarioRegistry reg;
  reg.add("zebra", "", &null_scenario);
  reg.add("alpha", "", &null_scenario);
  reg.add("mid", "", &null_scenario);
  const std::vector<std::string> expected{"alpha", "mid", "zebra"};
  EXPECT_EQ(reg.names(), expected);
}

TEST(ScenarioRegistry, UnknownNameReportsErrorAndKnownScenarios) {
  ScenarioRegistry reg;
  reg.add("alpha", "", &null_scenario);
  std::ostringstream err;
  EXPECT_EQ(reg.run("missing", {}, err), -1);
  EXPECT_NE(err.str().find("unknown scenario 'missing'"), std::string::npos);
  EXPECT_NE(err.str().find("alpha"), std::string::npos);
}

TEST(ScenarioRegistry, RunForwardsOptionsAndExitCode) {
  ScenarioRegistry reg;
  reg.add("probe", "", [](const ScenarioOptions& o) {
    EXPECT_EQ(o.duration_or(1_sec), SimTime::seconds(2.5));
    EXPECT_EQ(o.seed_or(0), 99u);
    return 42;
  });
  ScenarioOptions opts;
  opts.duration = SimTime::seconds(2.5);
  opts.seed = 99;
  std::ostringstream err;
  EXPECT_EQ(reg.run("probe", opts, err), 42);
  EXPECT_TRUE(err.str().empty());
}

// The macro registers into the process-wide instance; gtest_main provides
// main(), so no standalone entry point is emitted here.
TFMCC_SCENARIO(test_registry_macro_scenario, "macro-registered scenario") {
  return opts.seed_or(0) == 0 ? 0 : 1;
}

TEST(ScenarioRegistry, MacroRegistersIntoGlobalInstance) {
  const Scenario* s =
      ScenarioRegistry::instance().find("test_registry_macro_scenario");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->description, "macro-registered scenario");
  std::ostringstream err;
  EXPECT_EQ(ScenarioRegistry::instance().run("test_registry_macro_scenario",
                                             {}, err),
            0);
}

TEST(ScenarioOptions, DefaultsApplyOnlyWhenUnset) {
  ScenarioOptions opts;
  EXPECT_EQ(opts.duration_or(200_sec), SimTime::seconds(200));
  EXPECT_EQ(opts.seed_or(91), 91u);
  opts.duration = 5_sec;
  opts.seed = 7;
  EXPECT_EQ(opts.duration_or(200_sec), SimTime::seconds(5));
  EXPECT_EQ(opts.seed_or(91), 7u);
}

TEST(ParseScenarioOptions, ParsesDurationAndSeed) {
  const char* argv[] = {"--duration", "12.5", "--seed", "321"};
  ScenarioOptions opts;
  std::ostringstream err;
  ASSERT_TRUE(parse_scenario_options(4, const_cast<char**>(argv), opts, err));
  ASSERT_TRUE(opts.duration.has_value());
  EXPECT_EQ(*opts.duration, SimTime::seconds(12.5));
  ASSERT_TRUE(opts.seed.has_value());
  EXPECT_EQ(*opts.seed, 321u);
}

TEST(ParseScenarioOptions, RejectsMalformedInput) {
  const struct {
    std::vector<const char*> argv;
  } cases[] = {
      {{"--duration"}},            // missing value
      {{"--duration", "banana"}},  // not a number
      {{"--duration", "-3"}},      // not positive
      {{"--seed"}},                // missing value
      {{"--seed", "3.5"}},         // not an integer
      {{"--frobnicate", "1"}},     // unknown flag
  };
  for (const auto& c : cases) {
    ScenarioOptions opts;
    std::ostringstream err;
    EXPECT_FALSE(parse_scenario_options(static_cast<int>(c.argv.size()),
                                        const_cast<char**>(c.argv.data()),
                                        opts, err));
    EXPECT_FALSE(err.str().empty());
  }
}

TEST(ScenarioRegistry, SeedPlumbingIsDeterministic) {
  // A scenario that derives all randomness from opts.seed_or must produce
  // identical results across runs with the same --seed and (almost surely)
  // different results for different seeds.
  static std::uint64_t last_draw;
  ScenarioRegistry reg;
  reg.add("draws", "", [](const ScenarioOptions& o) {
    Rng rng{o.seed_or(1)};
    last_draw = rng.next_u64();
    return 0;
  });
  std::ostringstream err;
  ScenarioOptions seeded;
  seeded.seed = 7;

  reg.run("draws", seeded, err);
  const std::uint64_t first = last_draw;
  reg.run("draws", seeded, err);
  EXPECT_EQ(last_draw, first);

  ScenarioOptions other;
  other.seed = 8;
  reg.run("draws", other, err);
  EXPECT_NE(last_draw, first);
}

}  // namespace
}  // namespace tfmcc
