#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_ms);
}

TEST(Scheduler, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(1_ms, [&] { fired = true; });
  EXPECT_TRUE(id.pending());
  s.cancel(id);
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeOnEmptyId) {
  Scheduler s;
  EventId empty;
  s.cancel(empty);  // must not crash
  EventId id = s.schedule_at(1_ms, [] {});
  s.cancel(id);
  s.cancel(id);
  s.run();
}

TEST(Scheduler, EmptyReportsTrueWhenOnlyCancelledEventsRemain) {
  // Regression: empty() used to answer from the raw heap, reporting false
  // while every remaining entry was cancelled (i.e. semantically gone).
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EventId a = s.schedule_at(1_ms, [] {});
  EventId b = s.schedule_at(2_ms, [] {});
  EXPECT_FALSE(s.empty());
  s.cancel(a);
  EXPECT_FALSE(s.empty());  // b is still pending
  s.cancel(b);
  EXPECT_TRUE(s.empty());
  // step()/run() semantics are unchanged: nothing left to execute.
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.executed(), 0u);
  EXPECT_EQ(s.now(), SimTime::zero());
}

TEST(Scheduler, EmptyDropsCancelledHeadButKeepsLivePendingEvent) {
  Scheduler s;
  EventId head = s.schedule_at(1_ms, [] {});
  bool fired = false;
  s.schedule_at(2_ms, [&] { fired = true; });
  s.cancel(head);
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RejectsEmptyCallbackAtScheduleTime) {
  // Regression: an empty EventCallback used to be accepted and blow up
  // step() with std::bad_function_call far from the offending call site.
  Scheduler s;
  EXPECT_THROW(s.schedule_at(1_ms, EventCallback{}), std::logic_error);
  EXPECT_THROW(s.schedule_in(1_ms, nullptr), std::logic_error);
  EXPECT_TRUE(s.empty());  // the rejected event was never enqueued
  s.run();                 // and the scheduler is still usable
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, EventIdNotPendingAfterFire) {
  Scheduler s;
  EventId id = s.schedule_at(1_ms, [] {});
  s.run();
  EXPECT_FALSE(id.pending());
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler s;
  s.schedule_at(10_ms, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5_ms, [] {}), std::logic_error);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule_in(1_ms, chain);
  };
  s.schedule_at(SimTime::zero(), chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 4_ms);
}

TEST(Scheduler, RunUntilStopsAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1_ms, [&] { ++fired; });
  s.schedule_at(10_ms, [&] { ++fired; });
  s.run_until(5_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5_ms);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, RunUntilExecutesEventAtBoundary) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(5_ms, [&] { fired = true; });
  s.run_until(5_ms);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, EventLimitGuard) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_in(SimTime::zero(), forever); };
  s.schedule_at(SimTime::zero(), forever);
  EXPECT_THROW(s.run(1000), std::runtime_error);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(SimTime::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, CancelledEventReleasesCallbackState) {
  Scheduler s;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> weak = token;
  EventId id = s.schedule_at(1_ms, [t = std::move(token)] { (void)t; });
  s.cancel(id);
  EXPECT_TRUE(weak.expired());  // captured state freed on cancellation
}

TEST(Simulator, FacadeSchedulesAndRuns) {
  Simulator sim{123};
  int fired = 0;
  sim.in(2_ms, [&] { ++fired; });
  sim.at(1_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2_ms);
}

TEST(Simulator, UidsAreUnique) {
  Simulator sim{1};
  EXPECT_NE(sim.next_uid(), sim.next_uid());
}

TEST(Simulator, RngStreamsReproducible) {
  Simulator a{99}, b{99};
  EXPECT_EQ(a.make_rng(5).next_u64(), b.make_rng(5).next_u64());
}

}  // namespace
}  // namespace tfmcc
