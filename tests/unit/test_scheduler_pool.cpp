// Regression suite for the pooled scheduler introduced by the hot-path
// overhaul: generation-counted handles (no ABA through slot reuse), true
// in-place cancellation, the small-buffer EventCallback, and the
// zero-heap-allocation steady state of schedule_in + step and of the
// per-simulator packet pool.  The allocation tests count through a global
// operator new override, which is why this suite lives in its own binary.

#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/simulator.hpp"

namespace {

// --- counting global allocator ---------------------------------------------

// Not atomic: the suite is single-threaded and gtest does not allocate
// concurrently with the measured regions.
std::size_t g_allocations = 0;

struct AllocationCounter {
  std::size_t start;
  AllocationCounter() : start{g_allocations} {}
  std::size_t delta() const { return g_allocations - start; }
};

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

// --- generation / ABA -------------------------------------------------------

TEST(SchedulerPool, PendingOnRecycledSlotIsFalse) {
  Scheduler s;
  EventId a = s.schedule_at(1_ms, [] {});
  s.cancel(a);
  // The freed slot is recycled by the next schedule; the stale handle must
  // not alias the new occupant.
  EventId b = s.schedule_at(2_ms, [] {});
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  s.run();
  EXPECT_FALSE(b.pending());
}

TEST(SchedulerPool, CancelOfStaleHandleDoesNotTouchRecycledSlot) {
  Scheduler s;
  EventId a = s.schedule_at(1_ms, [] {});
  s.cancel(a);
  bool fired = false;
  EventId b = s.schedule_at(2_ms, [&] { fired = true; });
  s.cancel(a);  // stale: must be a no-op, not a cancellation of b
  EXPECT_TRUE(b.pending());
  s.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerPool, FiredSlotRecycledHandleStaysStale) {
  Scheduler s;
  EventId a = s.schedule_at(1_ms, [] {});
  s.run();
  EXPECT_FALSE(a.pending());
  EventId b = s.schedule_in(1_ms, [] {});
  // a's slot was recycled for b; a must stay stale and cancelling it must
  // not kill b.
  EXPECT_FALSE(a.pending());
  s.cancel(a);
  EXPECT_TRUE(b.pending());
  s.cancel(b);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerPool, ManyRecyclesKeepHandlesIndependent) {
  Scheduler s;
  std::vector<EventId> stale;
  for (int round = 0; round < 100; ++round) {
    EventId id = s.schedule_in(1_ms, [] {});
    for (const EventId& old : stale) EXPECT_FALSE(old.pending());
    EXPECT_TRUE(id.pending());
    s.run();
    stale.push_back(id);
  }
}

TEST(SchedulerPool, DefaultConstructedIdNeverPending) {
  EventId id;
  EXPECT_FALSE(id.pending());
  Scheduler s;
  s.cancel(id);  // must not crash
}

TEST(SchedulerPool, IdsFromDifferentSchedulersDoNotCross) {
  Scheduler s1, s2;
  EventId a = s1.schedule_at(1_ms, [] {});
  // Cancelling through the wrong scheduler must not cancel a same-indexed
  // event in the right one.
  s2.cancel(a);
  EXPECT_TRUE(a.pending());
}

TEST(SchedulerPool, PendingCountTracksScheduleCancelFire) {
  Scheduler s;
  EXPECT_EQ(s.pending_count(), 0u);
  EventId a = s.schedule_at(1_ms, [] {});
  s.schedule_at(2_ms, [] {});
  EXPECT_EQ(s.pending_count(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_count(), 1u);
  s.run();
  EXPECT_EQ(s.pending_count(), 0u);
}

TEST(SchedulerPool, CancelSurvivesReentrantCancelFromCaptureDestructor) {
  // Regression: cancel() used to destroy the captured state while the slot
  // still looked pending, so a capture destructor re-entering cancel() on
  // its own id corrupted the heap.
  Scheduler s;
  EventId id;
  struct Guard {
    Scheduler* sched;
    EventId* id;
    ~Guard() {
      if (sched != nullptr) {
        EXPECT_FALSE(id->pending());  // already released when we run
        sched->cancel(*id);           // must be a safe no-op
      }
    }
    Guard(Scheduler* s, EventId* i) : sched{s}, id{i} {}
    Guard(Guard&& o) noexcept : sched{o.sched}, id{o.id} { o.sched = nullptr; }
  };
  bool other_fired = false;
  id = s.schedule_at(SimTime::millis(1), [g = Guard{&s, &id}] { (void)g; });
  s.schedule_at(SimTime::millis(2), [&] { other_fired = true; });
  s.cancel(id);
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_TRUE(other_fired);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(SchedulerPool, CaptureDestructorMayScheduleIntoFreedSlot) {
  Scheduler s;
  bool rescheduled_fired = false;
  struct Resched {
    Scheduler* sched;
    bool* fired;
    ~Resched() {
      if (sched != nullptr) {
        sched->schedule_in(SimTime::millis(1), [f = fired] { *f = true; });
      }
    }
    Resched(Scheduler* s, bool* f) : sched{s}, fired{f} {}
    Resched(Resched&& o) noexcept : sched{o.sched}, fired{o.fired} {
      o.sched = nullptr;
    }
  };
  EventId id = s.schedule_at(SimTime::millis(1),
                             [r = Resched{&s, &rescheduled_fired}] { (void)r; });
  s.cancel(id);  // destructor schedules a fresh event, possibly same slot
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_TRUE(rescheduled_fired);
}

// --- EventCallback ----------------------------------------------------------

TEST(SchedulerPool, OversizedCaptureFallsBackToHeapAndRuns) {
  Scheduler s;
  struct Big {
    char payload[128];
  };
  Big big{};
  big.payload[0] = 42;
  char seen = 0;
  s.schedule_at(1_ms, [big, &seen] { seen = big.payload[0]; });
  s.run();
  EXPECT_EQ(seen, 42);
}

TEST(SchedulerPool, MoveOnlyCaptureIsSupported) {
  Scheduler s;
  auto token = std::make_unique<int>(7);
  int seen = 0;
  s.schedule_at(1_ms, [t = std::move(token), &seen] { seen = *t; });
  s.run();
  EXPECT_EQ(seen, 7);
}

TEST(SchedulerPool, CancelledOversizedCaptureReleasesHeapState) {
  Scheduler s;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  struct Pad {
    char bytes[96];
  };
  EventId id = s.schedule_at(
      1_ms, [t = std::move(token), pad = Pad{}] { (void)t; (void)pad; });
  s.cancel(id);
  EXPECT_TRUE(weak.expired());
}

// --- zero-allocation steady state -------------------------------------------

TEST(SchedulerPool, SteadyStateScheduleStepDoesNotAllocate) {
  Scheduler s;
  // Warm up: populate the slab, the heap vector, and the free list beyond
  // the deepest level the steady-state loop will touch.
  std::vector<EventId> warm;
  for (int i = 0; i < 256; ++i) {
    warm.push_back(s.schedule_in(SimTime::micros(i % 37 + 1), [] {}));
  }
  for (std::size_t i = 0; i < warm.size(); i += 2) s.cancel(warm[i]);
  s.run();

  // Steady state: a 48-byte capture cycled through schedule_in + step must
  // never touch the heap (inline callback storage, slab slot reuse).
  struct Capture {
    std::uint64_t a, b, c;
    double d, e, f;
  };
  Capture cap{1, 2, 3, 4.0, 5.0, 6.0};
  static_assert(sizeof(Capture) <= EventCallback::kInlineBytes);
  std::uint64_t sink = 0;
  AllocationCounter counter;
  for (int i = 0; i < 10'000; ++i) {
    s.schedule_in(SimTime::micros(i % 97 + 1), [cap, &sink] { sink += cap.a; });
    s.step();
  }
  EXPECT_EQ(counter.delta(), 0u) << "schedule_in + step allocated on the "
                                    "steady-state hot path";
  EXPECT_EQ(sink, 10'000u);
}

TEST(SchedulerPool, CancellationChurnDoesNotAllocateAfterWarmup) {
  Scheduler s;
  std::vector<EventId> ids;
  ids.reserve(64);
  // Warm-up round grows every structure to its steady-state footprint.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 64; ++i) {
      ids.push_back(s.schedule_in(SimTime::micros(i % 17 + 1), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    s.run();
    ids.clear();
  }
  AllocationCounter counter;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      ids.push_back(s.schedule_in(SimTime::micros(i % 17 + 1), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
    s.run();
    ids.clear();
  }
  EXPECT_EQ(counter.delta(), 0u);
}

// --- packet pool ------------------------------------------------------------

TEST(SchedulerPool, PacketPoolRecyclesSteadyStateCheckouts) {
  Simulator sim{1};
  // Warm up: the first checkout/release cycle populates the free list.
  for (int i = 0; i < 8; ++i) {
    auto p = sim.make_packet();
    p->size_bytes = 100;
  }
  ASSERT_GT(sim.packet_pool().free_count(), 0u);
  const std::size_t warm_heap = sim.packet_pool().heap_allocations();
  AllocationCounter counter;
  for (int i = 0; i < 10'000; ++i) {
    auto p = sim.make_packet();
    p->size_bytes = i;
  }
  EXPECT_EQ(sim.packet_pool().heap_allocations(), warm_heap)
      << "pool checkout touched the global heap in steady state";
  EXPECT_EQ(counter.delta(), 0u);
}

TEST(SchedulerPool, PacketPoolStampsUidAndCreationTime) {
  Simulator sim{1};
  auto a = sim.make_packet();
  auto b = sim.make_packet();
  EXPECT_NE(a->uid, b->uid);
  sim.in(5_ms, [] {});
  sim.run();
  auto c = sim.make_packet();
  EXPECT_EQ(c->created, sim.now());
}

TEST(SchedulerPool, RecycledPacketStartsFresh) {
  Simulator sim{1};
  {
    auto p = sim.make_packet();
    p->size_bytes = 999;
    p->group = 3;
  }
  auto q = sim.make_packet();
  // The recycled block must be a freshly constructed Packet, not the old
  // occupant's state.
  EXPECT_EQ(q->size_bytes, 0);
  EXPECT_EQ(q->group, kNoGroup);
}

TEST(SchedulerPool, FixedBlockPoolFreesItsFreeListOnDestruction) {
  // Covered implicitly by every test above under ASan; this exercises the
  // explicit path: park blocks, destroy the pool, no leak, no crash.
  FixedBlockPool pool;
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(SchedulerPool, FixedBlockPoolPassesThroughOffSizeBlocks) {
  FixedBlockPool pool;
  void* a = pool.allocate(64);  // learns block size 64
  void* other = pool.allocate(128);
  pool.deallocate(other, 128);  // off-size: straight to the heap
  EXPECT_EQ(pool.free_count(), 0u);
  pool.deallocate(a, 64);
  EXPECT_EQ(pool.free_count(), 1u);
  void* again = pool.allocate(64);
  EXPECT_EQ(again, a);  // recycled, not a fresh block
  pool.deallocate(again, 64);
}

}  // namespace
}  // namespace tfmcc
