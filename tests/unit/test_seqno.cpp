#include "tfrc/seqno_tracker.hpp"

#include <gtest/gtest.h>

namespace tfmcc {
namespace {

TEST(SeqnoTracker, InOrderSequenceHasNoLoss) {
  SeqnoTracker t;
  for (int i = 0; i < 100; ++i) {
    const auto r = t.on_seqno(i);
    EXPECT_EQ(r.lost, 0);
    EXPECT_FALSE(r.duplicate);
  }
  EXPECT_EQ(t.received(), 100);
  EXPECT_EQ(t.lost(), 0);
}

TEST(SeqnoTracker, GapCountsLostPackets) {
  SeqnoTracker t;
  t.on_seqno(0);
  t.on_seqno(1);
  const auto r = t.on_seqno(5);  // 2, 3, 4 missing
  EXPECT_EQ(r.lost, 3);
  EXPECT_EQ(t.lost(), 3);
  EXPECT_EQ(t.next_expected(), 6);
}

TEST(SeqnoTracker, FirstPacketDefinesOrigin) {
  SeqnoTracker t;
  // Joining mid-stream: the first seen packet is the baseline; the 41
  // packets before it are not counted as lost.
  const auto r = t.on_seqno(42);
  EXPECT_EQ(r.lost, 0);
  EXPECT_EQ(t.next_expected(), 43);
}

TEST(SeqnoTracker, DuplicateAndOldPacketsIgnored) {
  SeqnoTracker t;
  t.on_seqno(0);
  t.on_seqno(1);
  const auto dup = t.on_seqno(1);
  EXPECT_TRUE(dup.duplicate);
  const auto old = t.on_seqno(0);
  EXPECT_TRUE(old.duplicate);
  EXPECT_EQ(t.received(), 2);
}

TEST(SeqnoTracker, RawLossFraction) {
  SeqnoTracker t;
  t.on_seqno(0);
  t.on_seqno(3);  // 1, 2 lost
  t.on_seqno(4);
  // 3 received (0,3,4), 2 lost -> 2/5.
  EXPECT_DOUBLE_EQ(t.raw_loss_fraction(), 0.4);
}

TEST(SeqnoTracker, ConsecutiveGaps) {
  SeqnoTracker t;
  t.on_seqno(0);
  EXPECT_EQ(t.on_seqno(2).lost, 1);
  EXPECT_EQ(t.on_seqno(4).lost, 1);
  EXPECT_EQ(t.on_seqno(10).lost, 5);
  EXPECT_EQ(t.lost(), 7);
}

TEST(SeqnoTracker, NotStartedInitially) {
  SeqnoTracker t;
  EXPECT_FALSE(t.started());
  EXPECT_DOUBLE_EQ(t.raw_loss_fraction(), 0.0);
  t.on_seqno(7);
  EXPECT_TRUE(t.started());
}

}  // namespace
}  // namespace tfmcc
