#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t, SimTime::zero());
  EXPECT_EQ(t.count_nanos(), 0);
}

TEST(SimTime, NamedConstructors) {
  EXPECT_EQ(SimTime::nanos(1500).count_nanos(), 1500);
  EXPECT_EQ(SimTime::micros(2).count_nanos(), 2000);
  EXPECT_EQ(SimTime::millis(3).count_nanos(), 3'000'000);
  EXPECT_EQ(SimTime::seconds(1.5).count_nanos(), 1'500'000'000);
}

TEST(SimTime, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::seconds(0.125).to_seconds(), 0.125);
  EXPECT_DOUBLE_EQ(SimTime::millis(250).to_millis(), 250.0);
}

TEST(SimTime, SecondsRoundsToNearestNanosecond) {
  // 1e-10 s rounds to 0 ns; 0.6e-9 rounds to 1 ns.
  EXPECT_EQ(SimTime::seconds(1e-10).count_nanos(), 0);
  EXPECT_EQ(SimTime::seconds(0.6e-9).count_nanos(), 1);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(1_sec, 999_ms);
  EXPECT_EQ(1000_us, 1_ms);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(1_ms + 2_ms, 3_ms);
  EXPECT_EQ(5_ms - 2_ms, 3_ms);
  EXPECT_EQ((4_ms) * 0.5, 2_ms);
  EXPECT_EQ((4_ms) / 2.0, 2_ms);
  EXPECT_DOUBLE_EQ(4_ms / (2_ms), 2.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = 1_ms;
  t += 2_ms;
  EXPECT_EQ(t, 3_ms);
  t -= 1_ms;
  EXPECT_EQ(t, 2_ms);
}

TEST(SimTime, ScalarMultiplicationCommutes) {
  EXPECT_EQ(2.0 * (3_ms), (3_ms) * 2.0);
}

TEST(SimTime, Infinity) {
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_FALSE((1_sec).is_infinite());
  EXPECT_GT(SimTime::infinity(), SimTime::seconds(1e9));
}

TEST(SimTime, NegativeDurations) {
  const SimTime d = 1_ms - 2_ms;
  EXPECT_LT(d, SimTime::zero());
  EXPECT_EQ(d + 2_ms, 1_ms);
}

TEST(SimTime, StrFormat) {
  EXPECT_EQ((1500_ms).str(), "1.500000s");
  EXPECT_EQ(SimTime::infinity().str(), "+inf");
}

}  // namespace
}  // namespace tfmcc
