#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, CovOfConstantIsZero) {
  OnlineStats s;
  for (int i = 0; i < 10; ++i) s.add(3.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  ts.push(1_sec, 10.0);
  ts.push(2_sec, 20.0);
  ts.push(3_sec, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(1_sec, 3_sec), 15.0);  // [1, 3) excludes t=3
  EXPECT_DOUBLE_EQ(ts.mean_in(0_sec, 10_sec), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(5_sec, 10_sec), 0.0);
}

TEST(TimeSeries, CsvOutput) {
  TimeSeries ts;
  ts.push(1_sec, 2.5);
  std::ostringstream os;
  ts.write_csv(os, "flow1");
  EXPECT_EQ(os.str(), "flow1,1,2.5\n");
}

TEST(ThroughputBinner, BinsBytesIntoRates) {
  ThroughputBinner b{1_sec};
  b.add(SimTime::millis(100), 1000);
  b.add(SimTime::millis(900), 1000);
  b.add(SimTime::millis(1500), 500);
  const TimeSeries s = b.series_kbps();
  ASSERT_EQ(s.size(), 2u);
  // Bin 0: 2000 bytes in 1 s = 16 kbit/s.
  EXPECT_DOUBLE_EQ(s.points()[0].v, 16.0);
  EXPECT_DOUBLE_EQ(s.points()[1].v, 4.0);
  EXPECT_EQ(b.total_bytes(), 2500);
}

TEST(ThroughputBinner, MeanOverWindow) {
  ThroughputBinner b{1_sec};
  b.add(SimTime::millis(500), 1250);   // bin 0
  b.add(SimTime::millis(1500), 1250);  // bin 1
  // 2500 bytes over 2 s = 1250 B/s = 10 kbit/s.
  EXPECT_DOUBLE_EQ(b.mean_kbps(0_sec, 2_sec), 10.0);
}

TEST(WindowedRateMeter, NoEstimateBeforeTwoPackets) {
  WindowedRateMeter m;
  EXPECT_FALSE(m.has_estimate());
  m.on_packet(1_sec, 1000);
  EXPECT_FALSE(m.has_estimate());
  EXPECT_DOUBLE_EQ(m.rate_Bps(1_sec), 0.0);
}

TEST(WindowedRateMeter, SteadyRate) {
  WindowedRateMeter m;
  // 1000 bytes every 100 ms -> 10 kB/s.
  for (int i = 0; i <= 10; ++i) m.on_packet(SimTime::millis(100 * i), 1000);
  EXPECT_NEAR(m.rate_Bps(1_sec), 10000.0, 1.0);
}

TEST(WindowedRateMeter, WindowSlides) {
  WindowedRateMeter m{4, 10_sec};
  for (int i = 0; i < 10; ++i) m.on_packet(SimTime::millis(100 * i), 1000);
  // Only the last 4 arrivals matter: 3 intervals of 100ms carrying 3000 B.
  EXPECT_NEAR(m.rate_Bps(SimTime::millis(900)), 10000.0, 1.0);
}

TEST(WindowedRateMeter, HorizonEvictsOldArrivals) {
  WindowedRateMeter m{64, 1_sec};
  m.on_packet(0_sec, 1000);
  m.on_packet(5_sec, 1000);
  m.on_packet(SimTime::millis(5100), 1000);
  // First arrival is far outside the horizon and must have been dropped:
  // rate over [5.0, 5.1] = 1000 B / 0.1 s.
  EXPECT_NEAR(m.rate_Bps(SimTime::millis(5100)), 10000.0, 1.0);
}

TEST(Histogram, QuantileAndCounts) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 4};
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bins().front(), 1);
  EXPECT_EQ(h.bins().back(), 1);
}

TEST(QuantileFunction, ExactValues) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(QuantileFunction, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(RateConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(kbps_from_Bps(125000.0), 1000.0);
  EXPECT_DOUBLE_EQ(Bps_from_kbps(1000.0), 125000.0);
  EXPECT_DOUBLE_EQ(Bps_from_kbps(kbps_from_Bps(777.0)), 777.0);
}

// Regression for the PR 1 dangling-temporary pattern: accessor chains on a
// by-value result must move the container out (rvalue overload) instead of
// returning a reference into a destroyed temporary.  Under ASan the old
// pattern fails here with heap-use-after-free.

TEST(AccessorChains, SeriesKbpsPointsOffATemporaryStaysValid) {
  ThroughputBinner binner{SimTime::seconds(1.0)};
  for (int i = 0; i < 5; ++i) {
    binner.add(SimTime::seconds(0.5 + i), 125000);
  }
  double sum = 0.0;
  for (const auto& p : binner.series_kbps().points()) sum += p.v;
  EXPECT_GT(sum, 0.0);
}

Histogram make_histogram() {
  Histogram h{0.0, 10.0, 5};
  h.add(1.0);
  h.add(9.0);
  return h;
}

TEST(AccessorChains, HistogramBinsOffATemporaryStaysValid) {
  std::int64_t total = 0;
  for (const std::int64_t c : make_histogram().bins()) total += c;
  EXPECT_EQ(total, 2);
  // Lvalue access still returns a reference, not a copy.
  Histogram h = make_histogram();
  const auto* first = h.bins().data();
  EXPECT_EQ(h.bins().data(), first);
}

}  // namespace
}  // namespace tfmcc
