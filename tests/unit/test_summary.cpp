// Unit tests for the column-statistics engine (analysis/summary.hpp):
// Welford accumulation against hand-computed mean/stddev/cov, the
// single-sample and zero-mean edge cases, non-numeric label columns
// (pass-through and group-by) in ColumnSummary, --stats list parsing, and
// the expanded header/row shape the replicated sweep aggregate is built
// from.

#include "analysis/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace tfmcc::summary {
namespace {

TEST(Welford, MatchesHandComputedStatistics) {
  // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(w.cov(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleHasZeroDispersion) {
  Welford w;
  w.add(42.5);
  EXPECT_DOUBLE_EQ(w.mean(), 42.5);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 42.5);
  EXPECT_DOUBLE_EQ(w.max(), 42.5);
}

TEST(Welford, ZeroMeanYieldsZeroCov) {
  // stddev/|mean| is undefined at mean 0; the engine pins it to 0 instead
  // of emitting inf/nan into the aggregate CSV.
  Welford w;
  w.add(-1.0);
  w.add(1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_GT(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
}

TEST(Welford, NegativeMeanUsesAbsoluteValueForCov) {
  Welford w;
  w.add(-4.0);
  w.add(-6.0);
  EXPECT_DOUBLE_EQ(w.mean(), -5.0);
  EXPECT_NEAR(w.cov(), std::sqrt(2.0) / 5.0, 1e-12);
}

TEST(Welford, EmptyAccumulatorReportsZeros) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
}

TEST(Welford, ValueDispatchesByStat) {
  Welford w;
  w.add(1.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.value(Stat::kMean), w.mean());
  EXPECT_DOUBLE_EQ(w.value(Stat::kStddev), w.stddev());
  EXPECT_DOUBLE_EQ(w.value(Stat::kCov), w.cov());
  EXPECT_DOUBLE_EQ(w.value(Stat::kMin), 1.0);
  EXPECT_DOUBLE_EQ(w.value(Stat::kMax), 3.0);
}

TEST(StatsParse, AcceptsNamesInGivenOrder) {
  std::vector<Stat> stats;
  std::ostringstream err;
  ASSERT_TRUE(parse_stats("max,mean,cov", stats, err)) << err.str();
  EXPECT_EQ(stats, (std::vector<Stat>{Stat::kMax, Stat::kMean, Stat::kCov}));
}

TEST(StatsParse, RejectsUnknownEmptyAndDuplicate) {
  std::vector<Stat> stats;
  std::ostringstream err;
  EXPECT_FALSE(parse_stats("mean,median", stats, err));
  EXPECT_NE(err.str().find("unknown statistic 'median'"), std::string::npos);
  err.str({});
  EXPECT_FALSE(parse_stats("", stats, err));
  EXPECT_NE(err.str().find("unknown statistic"), std::string::npos);
  err.str({});
  EXPECT_FALSE(parse_stats("mean,cov,mean", stats, err));
  EXPECT_NE(err.str().find("duplicate statistic 'mean'"), std::string::npos);
}

TEST(SplitCsv, KeepsEmptyCells) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split_csv("x"), (std::vector<std::string>{"x"}));
}

ColumnSummary feed(std::vector<std::string> columns,
                   const std::vector<std::vector<std::string>>& rows) {
  ColumnSummary acc{std::move(columns)};
  std::ostringstream err;
  for (const auto& row : rows) {
    EXPECT_TRUE(acc.add_row(row, err)) << err.str();
  }
  return acc;
}

TEST(ColumnSummary, ExpandsNumericColumnsPerStat) {
  const ColumnSummary acc =
      feed({"t", "kbps"}, {{"1", "100"}, {"2", "300"}, {"3", "200"}});
  const std::vector<Stat> stats{Stat::kMean, Stat::kCov};
  EXPECT_EQ(acc.row_count(), 3u);
  EXPECT_EQ(acc.header(stats), (std::vector<std::string>{
                                   "t_mean", "t_cov", "kbps_mean",
                                   "kbps_cov"}));
  const auto rows = acc.summarize(stats);
  ASSERT_EQ(rows.size(), 1u);  // all-numeric trace: exactly one group
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "2");    // mean of 1,2,3
  EXPECT_EQ(rows[0][2], "200");  // mean of 100,300,200
  EXPECT_EQ(rows[0][3], "0.5");  // stddev 100 / mean 200
}

TEST(ColumnSummary, SingleLabelValuePassesThroughUnchanged) {
  const ColumnSummary acc = feed(
      {"proto", "kbps"}, {{"tfmcc", "100"}, {"tfmcc", "200"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats),
            (std::vector<std::string>{"proto", "kbps_mean"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"tfmcc", "150"}}));
}

TEST(ColumnSummary, LabelColumnGroupsRowsPerDistinctValue) {
  // A per-flow trace must not pool flows into one row under the first
  // flow's label: each distinct label tuple gets its own statistics, in
  // first-appearance order.
  const ColumnSummary acc = feed({"flow", "kbps"}, {{"TFMCC", "100"},
                                                    {"TCP 1", "400"},
                                                    {"TFMCC", "300"},
                                                    {"TCP 1", "600"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats),
            (std::vector<std::string>{"flow", "kbps_mean"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"TFMCC", "200"},
                                                   {"TCP 1", "500"}}));
}

TEST(ColumnSummary, LateNonNumericCellDemotesTheColumn) {
  // The first rows parse, a later one does not: the column must become a
  // label (grouping rows), not report a half-fed mean.
  const ColumnSummary acc = feed({"v"}, {{"1"}, {"2"}, {"n/a"}, {"2"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats), (std::vector<std::string>{"v"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}, {"n/a"}}));
}

TEST(ColumnSummary, NonFiniteCellIsNonNumeric) {
  const ColumnSummary acc = feed({"v"}, {{"inf"}, {"2"}});
  EXPECT_EQ(acc.header({Stat::kMean}), (std::vector<std::string>{"v"}));
}

TEST(ColumnSummary, RejectsArityMismatch) {
  ColumnSummary acc{{"a", "b"}};
  std::ostringstream err;
  EXPECT_FALSE(acc.add_row({"1"}, err));
  EXPECT_NE(err.str().find("declares 2 columns"), std::string::npos);
  EXPECT_EQ(acc.row_count(), 0u);
}

TEST(ColumnSummary, DefaultStatsAreMeanAndCov) {
  EXPECT_EQ(default_stats(), (std::vector<Stat>{Stat::kMean, Stat::kCov}));
}

}  // namespace
}  // namespace tfmcc::summary
