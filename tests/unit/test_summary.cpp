// Unit tests for the column-statistics engine (analysis/summary.hpp):
// Welford accumulation against hand-computed mean/stddev/cov, the
// single-sample and zero-mean edge cases, non-numeric label columns
// (pass-through and group-by) in ColumnSummary, --stats list parsing, and
// the expanded header/row shape the replicated sweep aggregate is built
// from.

#include "analysis/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

namespace tfmcc::summary {
namespace {

TEST(Welford, MatchesHandComputedStatistics) {
  // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(w.cov(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleHasZeroDispersion) {
  Welford w;
  w.add(42.5);
  EXPECT_DOUBLE_EQ(w.mean(), 42.5);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 42.5);
  EXPECT_DOUBLE_EQ(w.max(), 42.5);
}

TEST(Welford, ZeroMeanYieldsZeroCov) {
  // stddev/|mean| is undefined at mean 0; the engine pins it to 0 instead
  // of emitting inf/nan into the aggregate CSV.
  Welford w;
  w.add(-1.0);
  w.add(1.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_GT(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.cov(), 0.0);
}

TEST(Welford, NegativeMeanUsesAbsoluteValueForCov) {
  Welford w;
  w.add(-4.0);
  w.add(-6.0);
  EXPECT_DOUBLE_EQ(w.mean(), -5.0);
  EXPECT_NEAR(w.cov(), std::sqrt(2.0) / 5.0, 1e-12);
}

TEST(Welford, EmptyAccumulatorReportsZeros) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
}

TEST(Welford, ValueDispatchesByStat) {
  Welford w;
  w.add(1.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.value(Stat::kMean), w.mean());
  EXPECT_DOUBLE_EQ(w.value(Stat::kStddev), w.stddev());
  EXPECT_DOUBLE_EQ(w.value(Stat::kCov), w.cov());
  EXPECT_DOUBLE_EQ(w.value(Stat::kMin), 1.0);
  EXPECT_DOUBLE_EQ(w.value(Stat::kMax), 3.0);
}

TEST(StatsParse, AcceptsNamesInGivenOrder) {
  std::vector<Stat> stats;
  std::ostringstream err;
  ASSERT_TRUE(parse_stats("max,mean,cov", stats, err)) << err.str();
  EXPECT_EQ(stats, (std::vector<Stat>{Stat::kMax, Stat::kMean, Stat::kCov}));
}

TEST(StatsParse, RejectsUnknownEmptyAndDuplicate) {
  std::vector<Stat> stats;
  std::ostringstream err;
  EXPECT_FALSE(parse_stats("mean,median", stats, err));
  EXPECT_NE(err.str().find("unknown statistic 'median'"), std::string::npos);
  err.str({});
  EXPECT_FALSE(parse_stats("", stats, err));
  EXPECT_NE(err.str().find("unknown statistic"), std::string::npos);
  err.str({});
  EXPECT_FALSE(parse_stats("mean,cov,mean", stats, err));
  EXPECT_NE(err.str().find("duplicate statistic 'mean'"), std::string::npos);
}

TEST(SplitCsv, KeepsEmptyCells) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split_csv("x"), (std::vector<std::string>{"x"}));
}

ColumnSummary feed(std::vector<std::string> columns,
                   const std::vector<std::vector<std::string>>& rows) {
  ColumnSummary acc{std::move(columns)};
  std::ostringstream err;
  for (const auto& row : rows) {
    EXPECT_TRUE(acc.add_row(row, err)) << err.str();
  }
  return acc;
}

TEST(ColumnSummary, ExpandsNumericColumnsPerStat) {
  const ColumnSummary acc =
      feed({"t", "kbps"}, {{"1", "100"}, {"2", "300"}, {"3", "200"}});
  const std::vector<Stat> stats{Stat::kMean, Stat::kCov};
  EXPECT_EQ(acc.row_count(), 3u);
  EXPECT_EQ(acc.header(stats), (std::vector<std::string>{
                                   "t_mean", "t_cov", "kbps_mean",
                                   "kbps_cov"}));
  const auto rows = acc.summarize(stats);
  ASSERT_EQ(rows.size(), 1u);  // all-numeric trace: exactly one group
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "2");    // mean of 1,2,3
  EXPECT_EQ(rows[0][2], "200");  // mean of 100,300,200
  EXPECT_EQ(rows[0][3], "0.5");  // stddev 100 / mean 200
}

TEST(ColumnSummary, SingleLabelValuePassesThroughUnchanged) {
  const ColumnSummary acc = feed(
      {"proto", "kbps"}, {{"tfmcc", "100"}, {"tfmcc", "200"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats),
            (std::vector<std::string>{"proto", "kbps_mean"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"tfmcc", "150"}}));
}

TEST(ColumnSummary, LabelColumnGroupsRowsPerDistinctValue) {
  // A per-flow trace must not pool flows into one row under the first
  // flow's label: each distinct label tuple gets its own statistics, in
  // first-appearance order.
  const ColumnSummary acc = feed({"flow", "kbps"}, {{"TFMCC", "100"},
                                                    {"TCP 1", "400"},
                                                    {"TFMCC", "300"},
                                                    {"TCP 1", "600"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats),
            (std::vector<std::string>{"flow", "kbps_mean"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"TFMCC", "200"},
                                                   {"TCP 1", "500"}}));
}

TEST(ColumnSummary, LateNonNumericCellDemotesTheColumn) {
  // The first rows parse, a later one does not: the column must become a
  // label (grouping rows), not report a half-fed mean.
  const ColumnSummary acc = feed({"v"}, {{"1"}, {"2"}, {"n/a"}, {"2"}});
  const std::vector<Stat> stats{Stat::kMean};
  EXPECT_EQ(acc.header(stats), (std::vector<std::string>{"v"}));
  EXPECT_EQ(acc.summarize(stats),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}, {"n/a"}}));
}

TEST(ColumnSummary, NonFiniteCellIsNonNumeric) {
  const ColumnSummary acc = feed({"v"}, {{"inf"}, {"2"}});
  EXPECT_EQ(acc.header({Stat::kMean}), (std::vector<std::string>{"v"}));
}

TEST(ColumnSummary, RejectsArityMismatch) {
  ColumnSummary acc{{"a", "b"}};
  std::ostringstream err;
  EXPECT_FALSE(acc.add_row({"1"}, err));
  EXPECT_NE(err.str().find("declares 2 columns"), std::string::npos);
  EXPECT_EQ(acc.row_count(), 0u);
}

TEST(ColumnSummary, DefaultStatsAreMeanAndCov) {
  EXPECT_EQ(default_stats(), (std::vector<Stat>{Stat::kMean, Stat::kCov}));
}

TEST(WelfordMerge, EmptySideCopiesTheOtherBitForBit) {
  Welford a;
  for (double x : {0.1, 0.2, 0.30000000000000004}) a.add(x);
  Welford empty_into_a = a;
  empty_into_a.merge(Welford{});
  Welford b;
  b.merge(a);
  // Serialize both ways: the text carries raw IEEE-754 bit patterns, so
  // equal strings mean bitwise-equal state.
  std::ostringstream sa, sb, sc;
  a.save(sa);
  b.save(sb);
  empty_into_a.save(sc);
  EXPECT_EQ(sb.str(), sa.str());
  EXPECT_EQ(sc.str(), sa.str());
}

TEST(WelfordMerge, DisjointHalvesMatchSequentialFeedClosely) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-12);
  // Count and extrema combine exactly, not approximately.
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(WelfordSerialize, SaveLoadRoundTripIsBitExact) {
  Welford w;
  for (double x : {1e-300, -0.0, 3.5, 1e300}) w.add(x);
  std::ostringstream os;
  w.save(os);
  std::istringstream is{os.str()};
  Welford back;
  ASSERT_TRUE(Welford::load(is, back));
  std::ostringstream os2;
  back.save(os2);
  EXPECT_EQ(os2.str(), os.str());
  EXPECT_EQ(back.count(), w.count());
  EXPECT_EQ(back.mean(), w.mean());
}

TEST(WelfordSerialize, LoadRejectsTruncatedAndForeignStreams) {
  std::ostringstream os;
  Welford{}.save(os);
  const std::string text = os.str();
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::istringstream is{text.substr(0, len)};
    Welford out;
    EXPECT_FALSE(Welford::load(is, out)) << "prefix " << len;
  }
  std::istringstream wrong{"CS1 0  0"};
  Welford out;
  EXPECT_FALSE(Welford::load(wrong, out));
}

TEST(StrIo, RoundTripsEmptyAndBinaryishStrings) {
  for (const std::string s :
       {std::string{}, std::string{"plain"}, std::string{"with spaces\nand "
                                                         "newlines:colons"}}) {
    std::ostringstream os;
    write_str(os, s);
    std::istringstream is{os.str()};
    std::string back;
    ASSERT_TRUE(read_str(is, back));
    EXPECT_EQ(back, s);
  }
}

TEST(StrIo, RejectsTruncatedPayload) {
  std::istringstream is{"10:short"};
  std::string out;
  EXPECT_FALSE(read_str(is, out));
}

ColumnSummary sample_summary() {
  ColumnSummary cs{{"flow", "kbps"}};
  std::ostringstream err;
  EXPECT_TRUE(cs.add_row({"alpha", "100"}, err));
  EXPECT_TRUE(cs.add_row({"beta", "not-a-number"}, err));
  EXPECT_TRUE(cs.add_row({"alpha", "300"}, err));
  return cs;
}

std::string saved(const ColumnSummary& cs) {
  std::ostringstream os;
  cs.save(os);
  return os.str();
}

TEST(ColumnSummarySerialize, SaveLoadRoundTripReproducesStateExactly) {
  const ColumnSummary cs = sample_summary();
  std::istringstream is{saved(cs)};
  ColumnSummary back{{}};
  std::string err;
  ASSERT_TRUE(ColumnSummary::load(is, back, err)) << err;
  EXPECT_EQ(saved(back), saved(cs));
  EXPECT_EQ(back.columns(), cs.columns());
  EXPECT_EQ(back.numeric_mask(), cs.numeric_mask());
  EXPECT_EQ(back.rows(), cs.rows());
}

TEST(ColumnSummarySerialize, RaggedUncheckedRowsSurviveTheRoundTrip) {
  ColumnSummary cs{{"a", "b"}};
  cs.add_row_unchecked({"1", "2", "3"});
  cs.add_row_unchecked({"only"});
  std::istringstream is{saved(cs)};
  ColumnSummary back{{}};
  std::string err;
  ASSERT_TRUE(ColumnSummary::load(is, back, err)) << err;
  EXPECT_EQ(back.rows(), cs.rows());
}

TEST(ColumnSummarySerialize, LoadDiagnosesTruncation) {
  // Every proper prefix except the one missing only the cosmetic trailing
  // newline (token parsing does not need it) must fail with a diagnostic.
  const std::string text = saved(sample_summary());
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    std::istringstream is{text.substr(0, len)};
    ColumnSummary out{{}};
    std::string err;
    EXPECT_FALSE(ColumnSummary::load(is, out, err)) << "prefix " << len;
    EXPECT_FALSE(err.empty());
  }
}

TEST(ColumnSummaryAbsorb, EqualsFeedingAllRowsToOneAccumulator) {
  ColumnSummary whole{{"flow", "kbps"}};
  ColumnSummary left{{"flow", "kbps"}};
  ColumnSummary right{{"flow", "kbps"}};
  std::ostringstream err;
  const std::vector<std::vector<std::string>> rows{
      {"alpha", "10"}, {"beta", "oops"}, {"alpha", "30"}, {"beta", "40"}};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(whole.add_row(rows[i], err));
    ASSERT_TRUE((i < 2 ? left : right).add_row(rows[i], err));
  }
  ASSERT_TRUE(left.absorb(right, err)) << err.str();
  EXPECT_EQ(saved(left), saved(whole));
}

TEST(ColumnSummaryAbsorb, IsExactlyAssociative) {
  // ((a+b)+c) and (a+(b+c)) must serialize identically: merge order across
  // shards must not leak into the output bytes.
  auto make = [](std::initializer_list<const char*> values) {
    ColumnSummary cs{{"v"}};
    std::ostringstream err;
    for (const char* v : values) EXPECT_TRUE(cs.add_row({v}, err));
    return cs;
  };
  const ColumnSummary a = make({"1.25", "2.5"});
  const ColumnSummary b = make({"7e-3"});
  const ColumnSummary c = make({"42", "mixed", "0"});
  std::ostringstream err;
  ColumnSummary ab_c = a;
  ASSERT_TRUE(ab_c.absorb(b, err));
  ASSERT_TRUE(ab_c.absorb(c, err));
  ColumnSummary bc = b;
  ASSERT_TRUE(bc.absorb(c, err));
  ColumnSummary a_bc = a;
  ASSERT_TRUE(a_bc.absorb(bc, err));
  std::ostringstream s1, s2;
  ab_c.save(s1);
  a_bc.save(s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(ColumnSummaryAbsorb, RefusesMismatchedHeaders) {
  ColumnSummary a{{"x"}};
  ColumnSummary b{{"y"}};
  std::ostringstream err;
  EXPECT_FALSE(a.absorb(b, err));
  EXPECT_NE(err.str().find("different headers"), std::string::npos);
}

}  // namespace
}  // namespace tfmcc::summary
