// Unit tests for the parameter-sweep driver (sim/sweep.hpp): grid-spec
// parsing (lists, linear/log ranges, malformed specs), cartesian expansion
// order, and run_sweep itself — deterministic grid-order aggregation that
// is byte-identical across --jobs levels even when completion order is
// deliberately skewed, plus the validation and failure paths.

#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.hpp"

namespace tfmcc {
namespace {

// Synthetic scenario for exercising run_sweep without the bench library:
// emits one CSV row derived from its parameters, wrapped in the usual
// figure-header/NOTE commentary, and can stall (to skew completion order
// across worker threads) or fail on demand.
TFMCC_SCENARIO(test_sweep_probe, "synthetic sweep probe",
               tfmcc::param("x", 1, "integer factor", 0),
               tfmcc::param("y", 1.0, "double factor"),
               tfmcc::param("delay_ms", 0, "stall before emitting", 0),
               tfmcc::param("fail", false, "exit nonzero"),
               tfmcc::param("throw_msg", "", "throw with this message"),
               tfmcc::param("alt_header", false, "emit a different header"),
               tfmcc::param("interrupt_once_file", "",
                            "request a sweep interrupt once, creating this "
                            "marker file")) {
  const int x = opts.param_or("x", 1);
  const double y = opts.param_or("y", 1.0);
  const int delay_ms = opts.param_or("delay_ms", 0);
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  const std::string interrupt_marker = opts.param_or("interrupt_once_file", "");
  if (!interrupt_marker.empty()) {
    // One-shot: interrupt the first sweep that runs this task, so the
    // resumed sweep (same manifest, marker now present) completes.
    if (!std::ifstream{interrupt_marker}.good()) {
      std::ofstream{interrupt_marker} << "interrupted\n";
      request_sweep_interrupt();
    }
  }
  auto& os = opts.out();
  os << "# synthetic probe\n";
  if (opts.param_or("fail", false)) {
    os << "NOTE: failing as requested\n";
    return 3;
  }
  const std::string throw_msg = opts.param_or("throw_msg", "");
  if (!throw_msg.empty()) throw std::runtime_error(throw_msg);
  CsvWriter csv(os, {opts.param_or("alt_header", false) ? "other" : "x", "y",
                     "product"});
  csv.row(x, y, static_cast<double>(x) * y);
  os << "NOTE: product emitted\n";
  return 0;
}

// Seed-sensitive probe for the replication layer: one row whose `sample`
// column is a deterministic function of the effective seed, so replicates
// on derived seeds produce dispersion and the aggregate is checkable by
// hand.
TFMCC_SCENARIO(test_replicate_probe, "seed-sensitive replication probe",
               tfmcc::param("x", 1, "integer factor", 0)) {
  const int x = opts.param_or("x", 1);
  auto& os = opts.out();
  CsvWriter csv(os, {"x", "sample"});
  csv.row(x, opts.seed_or(100) % 1000);
  return 0;
}

// Per-flow probe: two rows per run with a label column, mirroring the
// fig09-style traces whose label columns must group the replicated
// aggregate instead of pooling all flows under the first label.
TFMCC_SCENARIO(test_grouped_probe, "per-flow grouped replication probe",
               tfmcc::param("x", 1, "integer factor", 0)) {
  const int x = opts.param_or("x", 1);
  CsvWriter csv(opts.out(), {"flow", "value"});
  csv.row("alpha",
          x * static_cast<long long>(opts.seed_or(100) % 100));
  csv.row("beta", 1000 + x);
  return 0;
}

const Scenario& probe() {
  const Scenario* s = ScenarioRegistry::instance().find("test_sweep_probe");
  EXPECT_NE(s, nullptr);
  return *s;
}

const Scenario& replicate_probe() {
  const Scenario* s =
      ScenarioRegistry::instance().find("test_replicate_probe");
  EXPECT_NE(s, nullptr);
  return *s;
}

SweepAxis parse_ok(std::string_view text, const ParamSpec* spec = nullptr) {
  SweepAxis axis;
  std::ostringstream err;
  EXPECT_TRUE(parse_sweep_axis(text, spec, axis, err)) << err.str();
  return axis;
}

std::string parse_fail(std::string_view text,
                       const ParamSpec* spec = nullptr) {
  SweepAxis axis;
  std::ostringstream err;
  EXPECT_FALSE(parse_sweep_axis(text, spec, axis, err)) << "for: " << text;
  return err.str();
}

TEST(SweepAxisParse, ExplicitListPassesValuesThroughVerbatim) {
  const SweepAxis axis = parse_ok("n_receivers=1,10,2e2");
  EXPECT_EQ(axis.key, "n_receivers");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"1", "10", "2e2"}));
}

TEST(SweepAxisParse, LinearRange) {
  const SweepAxis axis = parse_ok("loss=0:1:lin5");
  EXPECT_EQ(axis.key, "loss");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"0", "0.25", "0.5", "0.75", "1"}));
}

TEST(SweepAxisParse, LogRangeLandsExactlyOnBothBounds) {
  const SweepAxis axis = parse_ok("rate=1:1000:log4");
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"1", "10", "100", "1000"}));
}

TEST(SweepAxisParse, IntegerSpecRoundsRangePoints) {
  const ParamSpec spec = param("n", 1, "receivers", 1);
  const SweepAxis axis = parse_ok("n=2:2000:log6", &spec);
  EXPECT_EQ(axis.values, (std::vector<std::string>{"2", "8", "32", "126",
                                                   "502", "2000"}));
}

TEST(SweepAxisParse, IntegerRoundingCollapsesAdjacentDuplicates) {
  const ParamSpec spec = param("n", 1, "receivers", 1);
  const SweepAxis axis = parse_ok("n=1:4:log8", &spec);
  // Unrounded: 1, 1.22, 1.49, 1.81, 2.21, 2.69, 3.28, 4.
  EXPECT_EQ(axis.values, (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST(SweepAxisParse, DoubleSpecKeepsFractionalRangePoints) {
  const ParamSpec spec = param("loss", 0.1, "loss rate", 0.0);
  const SweepAxis axis = parse_ok("loss=0.01:0.04:lin4", &spec);
  EXPECT_EQ(axis.values,
            (std::vector<std::string>{"0.01", "0.02", "0.03", "0.04"}));
}

TEST(SweepAxisParse, RejectsMalformedSpecs) {
  EXPECT_NE(parse_fail("no_equals").find("--sweep expects"),
            std::string::npos);
  EXPECT_NE(parse_fail("=1,2").find("--sweep expects"), std::string::npos);
  EXPECT_NE(parse_fail("k=").find("--sweep expects"), std::string::npos);
  EXPECT_NE(parse_fail("k=1,,2").find("empty value"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:10").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:10:geo4").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:10:lin").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:10:log4x").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=a:10:lin4").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:b:lin4").find("malformed"), std::string::npos);
  EXPECT_NE(parse_fail("k=1:10:lin1").find("between 2"), std::string::npos);
  EXPECT_NE(parse_fail("k=0:10:log4").find("positive bounds"),
            std::string::npos);
  EXPECT_NE(parse_fail("k=-1:10:log4").find("positive bounds"),
            std::string::npos);
}

TEST(SweepGrid, ExpandsCartesianProductLastAxisFastest) {
  const std::vector<SweepAxis> axes{{"a", {"1", "2"}}, {"b", {"x", "y"}}};
  const auto grid = expand_grid(axes);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], (std::vector<std::string>{"1", "x"}));
  EXPECT_EQ(grid[1], (std::vector<std::string>{"1", "y"}));
  EXPECT_EQ(grid[2], (std::vector<std::string>{"2", "x"}));
  EXPECT_EQ(grid[3], (std::vector<std::string>{"2", "y"}));
}

TEST(SweepGrid, SingleAxisGridIsTheAxis) {
  const auto grid = expand_grid({{"a", {"1", "2", "3"}}});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[2], (std::vector<std::string>{"3"}));
}

std::string run_probe_sweep(SweepOptions sweep, int expected_rc = 0,
                            std::string* err_out = nullptr) {
  std::ostringstream out, err;
  const int rc = run_sweep(probe(), sweep, out, err);
  EXPECT_EQ(rc, expected_rc) << err.str();
  if (err_out != nullptr) *err_out = err.str();
  return out.str();
}

TEST(RunSweep, AggregatesRowsInGridOrderWithKeysPrepended) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"2", "3"}}, {"y", {"0.5", "4"}}};
  const std::string out = run_probe_sweep(sweep);
  EXPECT_EQ(out,
            "x,y,x,y,product\n"
            "2,0.5,2,0.5,1\n"
            "2,4,2,4,8\n"
            "3,0.5,3,0.5,1.5\n"
            "3,4,3,4,12\n");
}

TEST(RunSweep, OutputIsByteIdenticalAcrossJobsDespiteSkewedCompletion) {
  // The first grid points stall, so with 4 workers the later points finish
  // first; the aggregate must not care.
  SweepOptions sweep;
  sweep.axes = {{"delay_ms", {"30", "20", "0", "0"}}, {"x", {"5", "7"}}};
  sweep.jobs = 1;
  const std::string serial = run_probe_sweep(sweep);
  sweep.jobs = 4;
  const std::string parallel = run_probe_sweep(sweep);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("0,7,7,1,7\n"), std::string::npos) << serial;
}

TEST(RunSweep, DropsCommentaryFromAggregate) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1"}}};
  const std::string out = run_probe_sweep(sweep);
  EXPECT_EQ(out.find("#"), std::string::npos);
  EXPECT_EQ(out.find("NOTE"), std::string::npos);
}

TEST(RunSweep, BaseSetOverridesApplyToEveryPoint) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}};
  sweep.base.set_param("y", "10");
  const std::string out = run_probe_sweep(sweep);
  EXPECT_EQ(out,
            "x,x,y,product\n"
            "1,1,10,10\n"
            "2,2,10,20\n");
}

TEST(RunSweep, RejectsUndeclaredAxisBeforeRunningAnything) {
  SweepOptions sweep;
  sweep.axes = {{"no_such_knob", {"1"}}};
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("unknown parameter 'no_such_knob'"), std::string::npos);
  EXPECT_NE(err.find("sweep point no_such_knob=1"), std::string::npos);
}

TEST(RunSweep, RejectsValueBelowDeclaredMinimum) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"5", "-1"}}};
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("below the minimum"), std::string::npos);
}

TEST(RunSweep, ReportsFailingPointsByLabel) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}, {"fail", {"false", "true"}}};
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(err.find("sweep point x=1,fail=true failed"), std::string::npos);
  EXPECT_NE(err.find("sweep point x=2,fail=true failed"), std::string::npos);
}

TEST(RunSweep, RejectsMismatchedHeadersAcrossPoints) {
  SweepOptions sweep;
  sweep.axes = {{"alt_header", {"false", "true"}}};
  std::string err;
  run_probe_sweep(sweep, 1, &err);
  EXPECT_NE(err.find("emitted CSV header"), std::string::npos);
}

TEST(RunSweep, RejectsDuplicateAxisKeys) {
  // set_param is last-write-wins, so a second axis for the same key would
  // run different values than the first axis' column claims.
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}, {"y", {"3"}}, {"x", {"4"}}};
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("duplicate --sweep axis for key 'x'"),
            std::string::npos);
}

TEST(RunSweep, RejectsOversizedGridProduct) {
  // Each axis is within the per-axis limit, but the product is not; every
  // point's output is buffered, so the cap guards peak memory.
  const std::vector<std::string> thousand(1000, "1");
  SweepOptions sweep;
  sweep.axes = {{"x", thousand}, {"y", thousand}, {"delay_ms", thousand}};
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("exceeds 1000000 points"), std::string::npos);
}

TEST(RunSweep, RequiresAtLeastOneAxis) {
  SweepOptions sweep;
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("at least one --sweep"), std::string::npos);
}

TEST(ReplicateSeed, ReplicateZeroIsTheBaseSeed) {
  EXPECT_EQ(derive_replicate_seed(0, 0), 0u);
  EXPECT_EQ(derive_replicate_seed(17, 0), 17u);
}

TEST(ReplicateSeed, DerivedSeedsArePureAndDecorrelated) {
  // Pure function of (base, rep): stable across calls, distinct across
  // replicates, and distinct across nearby bases (the avalanche mix).
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 17ull, 1'000'000'007ull}) {
    for (std::uint64_t rep = 0; rep < 8; ++rep) {
      const std::uint64_t s = derive_replicate_seed(base, rep);
      EXPECT_EQ(s, derive_replicate_seed(base, rep));
      EXPECT_TRUE(seen.insert(s).second)
          << "collision at base " << base << " rep " << rep;
    }
  }
}

std::string run_replicate_sweep(SweepOptions sweep, int expected_rc = 0,
                                std::string* err_out = nullptr) {
  std::ostringstream out, err;
  const int rc = run_sweep(replicate_probe(), sweep, out, err);
  EXPECT_EQ(rc, expected_rc) << err.str();
  if (err_out != nullptr) *err_out = err.str();
  return out.str();
}

TEST(RunSweep, ExplicitReplicateOneKeepsRawRowOutput) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}};
  const std::string raw = run_replicate_sweep(sweep);
  sweep.replicate = 1;
  EXPECT_EQ(run_replicate_sweep(sweep), raw);
  EXPECT_EQ(raw,
            "x,x,sample\n"
            "1,1,100\n"
            "2,2,100\n");
}

TEST(RunSweep, ReplicatedAggregateMatchesHandComputedMean) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"4"}}};
  sweep.replicate = 3;
  sweep.base.seed = 7;
  const std::string out = run_replicate_sweep(sweep);

  // Replicate 0 runs the base seed, replicates 1 and 2 the derived stream;
  // the probe's sample is seed % 1000.
  const double s0 = 7 % 1000;
  const double s1 = static_cast<double>(derive_replicate_seed(7, 1) % 1000);
  const double s2 = static_cast<double>(derive_replicate_seed(7, 2) % 1000);
  const double mean = (s0 + s1 + s2) / 3.0;

  std::istringstream is{out};
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_FALSE(std::getline(is, extra)) << out;  // one aggregate row
  EXPECT_EQ(header, "x,x_mean,x_cov,sample_mean,sample_cov,n_rep");
  const auto cells = summary::split_csv(row);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0], "4");
  EXPECT_EQ(cells[1], "4");  // the swept value itself, zero dispersion
  EXPECT_EQ(cells[2], "0");
  EXPECT_NEAR(std::stod(cells[3]), mean, mean * 1e-5);
  EXPECT_GT(std::stod(cells[4]), 0.0);  // distinct seeds => dispersion
  EXPECT_EQ(cells[5], "3");
}

TEST(RunSweep, ReplicatedAggregateIsByteIdenticalAcrossJobsAndRuns) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3"}}};
  sweep.replicate = 4;
  sweep.jobs = 1;
  const std::string serial = run_replicate_sweep(sweep);
  sweep.jobs = 4;
  const std::string parallel = run_replicate_sweep(sweep);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(parallel, run_replicate_sweep(sweep));  // repeated invocation
}

TEST(RunSweep, UnsetSeedReplicatesDeriveFromBaseZero) {
  // With no --seed the whole replicate set derives from base 0 — including
  // replicate 0 — so a bare replicated sweep and `--seed 0` agree exactly
  // instead of sharing all but the first replicate.
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}};
  sweep.replicate = 3;
  const std::string unset = run_replicate_sweep(sweep);
  sweep.base.seed = 0;
  EXPECT_EQ(run_replicate_sweep(sweep), unset);
}

TEST(RunSweep, LabelColumnsGroupTheReplicatedAggregate) {
  const Scenario* s =
      ScenarioRegistry::instance().find("test_grouped_probe");
  ASSERT_NE(s, nullptr);
  SweepOptions sweep;
  sweep.axes = {{"x", {"2"}}};
  sweep.replicate = 2;
  sweep.base.seed = 3;
  std::ostringstream out, err;
  ASSERT_EQ(run_sweep(*s, sweep, out, err), 0) << err.str();

  // alpha varies with the derived seeds; beta is seed-independent, so its
  // mean is exact and its CoV zero.  One aggregate row per flow, in
  // first-appearance order.
  const double a0 = 2.0 * static_cast<double>(3 % 100);
  const double a1 =
      2.0 * static_cast<double>(derive_replicate_seed(3, 1) % 100);
  std::istringstream is{out.str()};
  std::string header, alpha_row, beta_row, extra;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, alpha_row));
  ASSERT_TRUE(std::getline(is, beta_row));
  EXPECT_FALSE(std::getline(is, extra)) << out.str();
  EXPECT_EQ(header, "x,flow,value_mean,value_cov,n_rep");
  const auto alpha = summary::split_csv(alpha_row);
  ASSERT_EQ(alpha.size(), 5u);
  EXPECT_EQ(alpha[1], "alpha");
  EXPECT_NEAR(std::stod(alpha[2]), (a0 + a1) / 2.0,
              1e-4 * ((a0 + a1) / 2.0 + 1.0));
  EXPECT_EQ(alpha[4], "2");
  EXPECT_EQ(beta_row, "2,beta,1002,0,2");
}

TEST(RunSweep, StatsSelectionControlsAggregateColumns) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"2"}}};
  sweep.replicate = 2;
  sweep.stats = {summary::Stat::kMin, summary::Stat::kMax};
  const std::string out = run_replicate_sweep(sweep);
  EXPECT_EQ(out.rfind("x,x_min,x_max,sample_min,sample_max,n_rep\n", 0), 0u)
      << out;
}

TEST(RunSweep, ThrowingScenarioReportsMessageWithPointAssignment) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}, {"throw_msg", {"", "boom"}}};
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(err.find("sweep point x=1,throw_msg=boom failed with "
                     "exception: boom"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("sweep point x=2,throw_msg=boom failed with "
                     "exception: boom"),
            std::string::npos)
      << err;
}

TEST(RunSweep, ThrowingReplicateIsNamedWithItsDerivedSeed) {
  SweepOptions sweep;
  sweep.axes = {{"throw_msg", {"kaput"}}};
  sweep.replicate = 2;
  sweep.base.seed = 5;
  std::string err;
  run_probe_sweep(sweep, 1, &err);
  EXPECT_NE(err.find("replicate 1/2 (seed 5)"), std::string::npos) << err;
  EXPECT_NE(err.find("replicate 2/2 (seed " +
                     std::to_string(derive_replicate_seed(5, 1)) + ")"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("failed with exception: kaput"), std::string::npos)
      << err;
}

TEST(RunSweep, ReplicateMultipliesIntoTheRunCap) {
  const std::vector<std::string> thousand(1000, "1");
  SweepOptions sweep;
  sweep.axes = {{"x", thousand}, {"y", thousand}};
  sweep.replicate = 2;
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("times --replicate exceeds"), std::string::npos);
}

TEST(PointLabel, JoinsKeysAndValues) {
  EXPECT_EQ(point_label({{"n", {}}, {"trials", {}}}, {"8", "50"}),
            "n=8,trials=50");
}

TEST(SweepPointCost, MultipliesNumericAxisValuesAboveOne) {
  EXPECT_DOUBLE_EQ(sweep_point_cost({"2000", "50"}), 100000.0);
  // Non-numeric and <= 1 values contribute a neutral factor.
  EXPECT_DOUBLE_EQ(sweep_point_cost({"fast", "0.5", "8"}), 8.0);
  EXPECT_DOUBLE_EQ(sweep_point_cost({}), 1.0);
  EXPECT_DOUBLE_EQ(sweep_point_cost({"label", "1"}), 1.0);
}

TEST(WeightedEta, ExtrapolatesOverRemainingWorkNotRunCount) {
  // Half the *work* done in 10s: 10s remain, regardless of how many runs
  // produced that weight.
  EXPECT_DOUBLE_EQ(weighted_eta_seconds(10.0, 50.0, 100.0), 10.0);
  // 90% of the work in 9s leaves 1s, where a run-count ETA on an uneven
  // grid could claim far more.
  EXPECT_NEAR(weighted_eta_seconds(9.0, 90.0, 100.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(weighted_eta_seconds(5.0, 0.0, 100.0), 0.0);
  // Weight overrun (cost hints are estimates) clamps to zero, never
  // negative.
  EXPECT_DOUBLE_EQ(weighted_eta_seconds(5.0, 120.0, 100.0), 0.0);
}

TEST(RunSweep, ForcedProgressReportsShardLocalCounts) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3", "4", "5"}}};
  sweep.progress = true;
  sweep.shard_index = 1;
  sweep.shard_count = 3;
  std::ostringstream out, err;
  ASSERT_EQ(run_sweep(probe(), sweep, out, err), 0) << err.str();
  // Shard 1/3 of five points owns x=2 and x=5: two runs, counted locally.
  EXPECT_NE(err.str().find("sweep shard 1/3: 2/2 runs (100%)"),
            std::string::npos)
      << err.str();
}

TEST(RunSweep, UnshardedProgressKeepsThePlainLabel) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}};
  sweep.progress = true;
  std::ostringstream out, err;
  ASSERT_EQ(run_sweep(probe(), sweep, out, err), 0) << err.str();
  EXPECT_NE(err.str().find("sweep: 2/2 runs (100%)"), std::string::npos)
      << err.str();
}

// --- graceful degradation (--max-point-failures) --------------------------

TEST(RunSweep, MaxPointFailuresMasksFailedPointsAndStillExitsNonzero) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}, {"fail", {"false", "true"}}};
  sweep.max_point_failures = 2;
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  // The two failing points are dropped; the survivors keep grid order.
  EXPECT_EQ(out,
            "x,fail,x,y,product\n"
            "1,false,1,1,1\n"
            "2,false,2,1,2\n");
  EXPECT_NE(err.find("sweep point x=1,fail=true failed"), std::string::npos)
      << err;
  EXPECT_NE(err.find("missing from the aggregate:"), std::string::npos)
      << err;
  EXPECT_NE(err.find("  x=1,fail=true\n"), std::string::npos) << err;
  EXPECT_NE(err.find("  x=2,fail=true\n"), std::string::npos) << err;
}

TEST(RunSweep, MaxPointFailuresExceededPoisonsTheRun) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}, {"fail", {"false", "true"}}};
  sweep.max_point_failures = 1;
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(
      err.find("2 grid point(s) failed, exceeding --max-point-failures 1"),
      std::string::npos)
      << err;
}

TEST(RunSweep, MaxPointFailuresDropsTheWholeReplicatedPoint) {
  SweepOptions sweep;
  sweep.axes = {{"fail", {"false", "true"}}};
  sweep.replicate = 2;
  sweep.max_point_failures = 1;
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  // Only the surviving point summarizes; the failed point contributes no
  // partial replicate set.
  std::istringstream is{out};
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(is, header)) << out;
  ASSERT_TRUE(std::getline(is, row)) << out;
  EXPECT_FALSE(std::getline(is, extra)) << out;
  EXPECT_EQ(row.rfind("false,", 0), 0u) << row;
  EXPECT_NE(err.find("  fail=true\n"), std::string::npos) << err;
}

TEST(RunSweep, NegativeMaxPointFailuresIsRefused) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1"}}};
  sweep.max_point_failures = -1;
  std::string err;
  run_probe_sweep(sweep, 2, &err);
  EXPECT_NE(err.find("--max-point-failures must be non-negative"),
            std::string::npos)
      << err;
}

// --- graceful shutdown (request_sweep_interrupt) --------------------------

std::string sweep_temp(const std::string& name) {
  return ::testing::TempDir() + "tfmcc_sweep_" + name;
}

TEST(RunSweep, InterruptFlushesAFinalCheckpointAndResumeCompletes) {
  const std::string marker = sweep_temp("intr_marker");
  const std::string ckpt = sweep_temp("intr.ckpt");
  std::remove(marker.c_str());
  std::remove(ckpt.c_str());

  SweepOptions plain;
  plain.axes = {{"x", {"1", "2", "3", "4"}}};
  const std::string full = run_probe_sweep(plain);

  // checkpoint_every is far past the task count, so the only write that
  // can produce the checkpoint is the forced interrupt flush.
  SweepOptions sweep = plain;
  sweep.base.set_param("interrupt_once_file", marker);
  sweep.checkpoint_path = ckpt;
  sweep.checkpoint_every = 100;
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(err.find("interrupted; checkpoint flushed to '" + ckpt + "'"),
            std::string::npos)
      << err;

  SweepOptions resumed = sweep;
  resumed.resume_path = ckpt;
  const std::string res = run_probe_sweep(resumed, 0, &err);
  // The marker now exists, so the resumed run completes; the extra base
  // --set does not change the rows, so output matches the plain sweep.
  EXPECT_EQ(res, full);
  std::remove(marker.c_str());
  std::remove(ckpt.c_str());
}

TEST(RunSweep, InterruptWithoutACheckpointStillStopsNonzero) {
  const std::string marker = sweep_temp("intr_nockpt_marker");
  std::remove(marker.c_str());
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3", "4"}}};
  sweep.base.set_param("interrupt_once_file", marker);
  std::string err;
  const std::string out = run_probe_sweep(sweep, 1, &err);
  EXPECT_TRUE(out.empty());
  EXPECT_NE(err.find("sweep: interrupted"), std::string::npos) << err;
  EXPECT_EQ(err.find("flushed"), std::string::npos) << err;
  std::remove(marker.c_str());
}

}  // namespace
}  // namespace tfmcc
