// Unit tests for the sweep scale-out plumbing (sim/sweep_state.hpp):
// manifest round trip and mismatch diagnostics, checkpoint/partial file
// round trip with the folded-bitmap prefix invariant, checkpoint/resume
// edge cases (corrupt and truncated files, grid mismatch, checkpoints
// covering only the first task and all-but-the-last task), shard ownership
// and out-of-range indices, and library-level shard+merge byte-identity
// against the unsharded aggregate.

#include "sim/sweep_state.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "util/csv.hpp"

namespace tfmcc {
namespace {

// Deterministic probe: one CSV row that is a pure function of x, so
// checkpoint accumulator states can be hand-built and compared exactly.
TFMCC_SCENARIO(test_state_probe, "sweep state probe",
               tfmcc::param("x", 1, "integer factor", 0)) {
  const int x = opts.param_or("x", 1);
  auto& os = opts.out();
  os << "# state probe\n";
  CsvWriter csv(os, {"x", "sample"});
  csv.row(x, 2 * x);
  os << "NOTE: done\n";
  return 0;
}

const Scenario& probe() {
  const Scenario* s = ScenarioRegistry::instance().find("test_state_probe");
  EXPECT_NE(s, nullptr);
  return *s;
}

SweepOptions three_point_sweep() {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3"}}};
  return sweep;
}

std::string sweep_output(const SweepOptions& sweep, int expected_rc = 0,
                         std::string* err_out = nullptr) {
  std::ostringstream out, err;
  const int rc = run_sweep(probe(), sweep, out, err);
  EXPECT_EQ(rc, expected_rc) << err.str();
  if (err_out != nullptr) *err_out = err.str();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tfmcc_sweep_state_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os{path, std::ios::binary | std::ios::trunc};
  ASSERT_TRUE(os.is_open()) << path;
  os << content;
}

std::string read_file(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

TEST(SweepManifest, SaveLoadRoundTripPreservesEveryField) {
  SweepOptions sweep = three_point_sweep();
  sweep.replicate = 4;
  sweep.stats = {summary::Stat::kMean, summary::Stat::kMax};
  sweep.base.seed = 77;
  sweep.base.set_param("x", "9");
  sweep.shard_index = 1;
  sweep.shard_count = 2;
  const SweepManifest m = SweepManifest::from(probe(), sweep);
  EXPECT_EQ(m.n_points(), 3u);
  EXPECT_EQ(m.n_tasks(), 12u);

  std::ostringstream os;
  m.save(os);
  std::istringstream is{os.str()};
  SweepManifest back;
  std::string err;
  ASSERT_TRUE(SweepManifest::load(is, back, err)) << err;
  std::ostringstream diag;
  EXPECT_TRUE(m.matches(back, /*ignore_shard_index=*/false, "copy", diag))
      << diag.str();
  EXPECT_EQ(back.scenario, "test_state_probe");
  EXPECT_EQ(back.seed, std::optional<std::uint64_t>{77});
  EXPECT_EQ(back.shard_index, 1);
  EXPECT_EQ(back.params,
            (std::vector<std::pair<std::string, std::string>>{{"x", "9"}}));
}

TEST(SweepManifest, MatchesNamesTheDifferingField) {
  const SweepManifest base = SweepManifest::from(probe(), three_point_sweep());
  auto expect_mismatch = [&](SweepManifest other, std::string_view token) {
    std::ostringstream diag;
    EXPECT_FALSE(base.matches(other, false, "checkpoint", diag));
    EXPECT_NE(diag.str().find(token), std::string::npos) << diag.str();
  };
  SweepManifest rep = base;
  rep.replicate = 5;
  expect_mismatch(rep, "--replicate");
  SweepManifest axis = base;
  axis.axes[0].values.pop_back();
  expect_mismatch(axis, "sweep grid");
  SweepManifest seed = base;
  seed.seed = 3;
  expect_mismatch(seed, "--seed");
  SweepManifest shard = base;
  shard.shard_index = 1;
  shard.shard_count = 2;
  expect_mismatch(shard, "shard count");
}

TEST(SweepManifest, LoadRejectsTruncation) {
  std::ostringstream os;
  SweepManifest::from(probe(), three_point_sweep()).save(os);
  const std::string text = os.str();
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    std::istringstream is{text.substr(0, len)};
    SweepManifest out;
    std::string err;
    EXPECT_FALSE(SweepManifest::load(is, out, err)) << "prefix " << len;
  }
}

TEST(ShardOwnership, RoundRobinByPointIndex) {
  SweepOptions sweep = three_point_sweep();
  sweep.shard_index = 1;
  sweep.shard_count = 2;
  const SweepManifest m = SweepManifest::from(probe(), sweep);
  EXPECT_FALSE(shard_owns_point(m, 0));
  EXPECT_TRUE(shard_owns_point(m, 1));
  EXPECT_FALSE(shard_owns_point(m, 2));
}

/// A checkpoint as run_sweep would write it after folding the first
/// `folded_tasks` tasks of the (unsharded, replicate-1) three-point sweep.
SweepStateFile checkpoint_after(std::size_t folded_tasks) {
  SweepStateFile ck;
  ck.kind = SweepStateFile::Kind::kCheckpoint;
  ck.manifest = SweepManifest::from(probe(), three_point_sweep());
  ck.header = "x,sample";
  ck.folded.assign(3, 0);
  std::ostringstream err;
  for (std::size_t t = 0; t < folded_tasks; ++t) {
    ck.folded[t] = 1;
    summary::ColumnSummary acc{{"x", "sample"}};
    const std::string x = std::to_string(t + 1);
    acc.add_row_unchecked({x, std::to_string(2 * (t + 1))});
    ck.points.emplace_back(t, std::move(acc));
  }
  if (folded_tasks == 0) ck.header.clear();
  return ck;
}

TEST(SweepStateFile, SaveLoadRoundTripIsExact) {
  const SweepStateFile ck = checkpoint_after(2);
  std::ostringstream os;
  ck.save(os);
  std::istringstream is{os.str()};
  SweepStateFile back;
  std::string err;
  ASSERT_TRUE(SweepStateFile::load(is, back, err)) << err;
  std::ostringstream os2;
  back.save(os2);
  EXPECT_EQ(os2.str(), os.str());
  EXPECT_EQ(back.kind, SweepStateFile::Kind::kCheckpoint);
  EXPECT_EQ(back.folded, (std::vector<char>{1, 1, 0}));
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.points[1].first, 1u);
}

TEST(SweepStateFile, LoadEnforcesTheFoldedPrefixInvariant) {
  SweepStateFile ck = checkpoint_after(1);
  ck.folded = {0, 0, 1};  // a fold after a gap cannot happen
  std::ostringstream os;
  ck.save(os);
  std::istringstream is{os.str()};
  SweepStateFile back;
  std::string err;
  EXPECT_FALSE(SweepStateFile::load(is, back, err));
  EXPECT_NE(err.find("prefix"), std::string::npos) << err;
}

TEST(SweepStateFile, LoadRejectsFoldsOnUnownedTasks) {
  SweepStateFile ck = checkpoint_after(1);
  ck.manifest.shard_index = 1;
  ck.manifest.shard_count = 2;
  // Task 0 belongs to shard 0; shard 1 claiming it is corruption.
  std::ostringstream os;
  ck.save(os);
  std::istringstream is{os.str()};
  SweepStateFile back;
  std::string err;
  EXPECT_FALSE(SweepStateFile::load(is, back, err));
  EXPECT_NE(err.find("does not own"), std::string::npos) << err;
}

TEST(SweepStateFile, LoadDiagnosesTruncationAtEveryPrefix) {
  // Every proper prefix except the one missing only the trailing newline
  // after the "end" trailer (token parsing does not need it) must fail.
  std::ostringstream os;
  checkpoint_after(2).save(os);
  const std::string text = os.str();
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    std::istringstream is{text.substr(0, len)};
    SweepStateFile back;
    std::string err;
    EXPECT_FALSE(SweepStateFile::load(is, back, err)) << "prefix " << len;
    EXPECT_FALSE(err.empty());
  }
}

TEST(SweepStateFile, AtomicSaveThenLoadBack) {
  const std::string path = temp_path("atomic.bin");
  std::ostringstream err;
  ASSERT_TRUE(save_state_file_atomic(checkpoint_after(2), path, err))
      << err.str();
  SweepStateFile back;
  ASSERT_TRUE(load_state_file(path, back, err)) << err.str();
  EXPECT_EQ(back.points.size(), 2u);
  std::remove(path.c_str());
}

TEST(SweepStateFile, LoadMissingFileIsDiagnosed) {
  SweepStateFile back;
  std::ostringstream err;
  EXPECT_FALSE(load_state_file(temp_path("nonexistent.bin"), back, err));
  EXPECT_NE(err.str().find("cannot open"), std::string::npos) << err.str();
}

// --- checkpoint progress header (campaign liveness poll) ------------------

TEST(CheckpointProgress, HeartbeatRoundTripsThroughSaveAndLoad) {
  SweepStateFile ck = checkpoint_after(2);
  ck.heartbeat = 41;
  std::ostringstream os;
  ck.save(os);
  std::istringstream is{os.str()};
  SweepStateFile back;
  std::string err;
  ASSERT_TRUE(SweepStateFile::load(is, back, err)) << err;
  EXPECT_EQ(back.heartbeat, 41u);
  // The header is the literal second line, cheap to read without touching
  // the accumulators: heartbeat, folded count, owned task count.
  std::istringstream lines{os.str()};
  std::string magic_line, progress_line;
  ASSERT_TRUE(std::getline(lines, magic_line));
  ASSERT_TRUE(std::getline(lines, progress_line));
  EXPECT_EQ(progress_line, "progress 41 2 3");
}

TEST(CheckpointProgress, ReadProgressPollsWithoutLoadingState) {
  SweepStateFile ck = checkpoint_after(2);
  ck.heartbeat = 7;
  const std::string path = temp_path("progress.bin");
  std::ostringstream werr;
  ASSERT_TRUE(save_state_file_atomic(ck, path, werr)) << werr.str();
  CheckpointProgress p;
  std::string err;
  ASSERT_TRUE(read_checkpoint_progress(path, p, err)) << err;
  EXPECT_EQ(p.heartbeat, 7u);
  EXPECT_EQ(p.folded_tasks, 2u);
  EXPECT_EQ(p.owned_tasks, 3u);
  std::remove(path.c_str());
}

TEST(CheckpointProgress, ReadProgressRefusesMissingGarbageAndPartials) {
  CheckpointProgress p;
  std::string err;
  EXPECT_FALSE(read_checkpoint_progress(temp_path("no_ckpt.bin"), p, err));

  const std::string garbage = temp_path("garbage_ckpt.bin");
  write_file(garbage, "not a checkpoint at all\n");
  EXPECT_FALSE(read_checkpoint_progress(garbage, p, err));
  EXPECT_NE(err.find("not a sweep checkpoint"), std::string::npos) << err;

  const std::string truncated = temp_path("truncated_ckpt.bin");
  write_file(truncated, "TFMCC-SWEEP-CKPT 2\nprogress 9");
  EXPECT_FALSE(read_checkpoint_progress(truncated, p, err));

  // A shard partial has no progress header; polling one must fail loudly
  // rather than invent liveness.
  SweepStateFile part = checkpoint_after(0);
  part.kind = SweepStateFile::Kind::kPartial;
  part.folded.clear();
  const std::string ppath = temp_path("part_as_progress.bin");
  std::ostringstream werr;
  ASSERT_TRUE(save_state_file_atomic(part, ppath, werr));
  EXPECT_FALSE(read_checkpoint_progress(ppath, p, err));

  std::remove(garbage.c_str());
  std::remove(truncated.c_str());
  std::remove(ppath.c_str());
}

TEST(CheckpointProgress, LoadRejectsAHeaderDisagreeingWithTheBitmap) {
  SweepStateFile ck = checkpoint_after(2);
  std::ostringstream os;
  ck.save(os);
  // Tamper: claim 3 folded tasks while the bitmap carries 2.
  std::string text = os.str();
  const std::string good = "progress 0 2 3";
  const auto at = text.find(good);
  ASSERT_NE(at, std::string::npos) << text;
  text.replace(at, good.size(), "progress 0 3 3");
  std::istringstream is{text};
  SweepStateFile back;
  std::string err;
  EXPECT_FALSE(SweepStateFile::load(is, back, err));
  EXPECT_NE(err.find("disagrees"), std::string::npos) << err;
}

// --- checkpoint/resume through run_sweep ---------------------------------

TEST(Resume, CheckpointCoveringOnlyTaskZeroYieldsIdenticalOutput) {
  const std::string full = sweep_output(three_point_sweep());
  const std::string path = temp_path("task0.bin");
  std::ostringstream err;
  ASSERT_TRUE(save_state_file_atomic(checkpoint_after(1), path, err));
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  EXPECT_EQ(sweep_output(resumed), full);
  std::remove(path.c_str());
}

TEST(Resume, CheckpointCoveringAllButTheLastTaskYieldsIdenticalOutput) {
  const std::string full = sweep_output(three_point_sweep());
  const std::string path = temp_path("all_but_last.bin");
  std::ostringstream err;
  ASSERT_TRUE(save_state_file_atomic(checkpoint_after(2), path, err));
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  EXPECT_EQ(sweep_output(resumed), full);
  std::remove(path.c_str());
}

TEST(Resume, FullyFoldedCheckpointRunsNothingAndReEmits) {
  const std::string full = sweep_output(three_point_sweep());
  const std::string path = temp_path("complete.bin");
  std::ostringstream err;
  ASSERT_TRUE(save_state_file_atomic(checkpoint_after(3), path, err));
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  EXPECT_EQ(sweep_output(resumed), full);
  std::remove(path.c_str());
}

TEST(Resume, WritingACheckpointThenResumingItIsIdentical) {
  const std::string path = temp_path("own.bin");
  SweepOptions sweep = three_point_sweep();
  sweep.replicate = 3;
  sweep.checkpoint_path = path;
  sweep.checkpoint_every = 1;
  const std::string full = sweep_output(sweep);
  SweepOptions resumed = three_point_sweep();
  resumed.replicate = 3;
  resumed.resume_path = path;
  EXPECT_EQ(sweep_output(resumed), full);
  std::remove(path.c_str());
}

TEST(Resume, RefusesAGridMismatch) {
  const std::string path = temp_path("mismatch.bin");
  std::ostringstream werr;
  ASSERT_TRUE(save_state_file_atomic(checkpoint_after(1), path, werr));
  SweepOptions resumed;
  resumed.axes = {{"x", {"1", "2"}}};
  resumed.resume_path = path;
  std::string err;
  sweep_output(resumed, 2, &err);
  EXPECT_NE(err.find("does not match"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(Resume, RefusesACorruptCheckpoint) {
  const std::string path = temp_path("corrupt.bin");
  write_file(path,
             "TFMCC-SWEEP-CKPT 2\nprogress 1 1 3\nmanifest 2\n"
             "scenario 3:zzz");
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  std::string err;
  sweep_output(resumed, 2, &err);
  EXPECT_NE(err.find("cannot load"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(Resume, RefusesAnOlderFormatVersion) {
  const std::string path = temp_path("oldver.bin");
  write_file(path, "TFMCC-SWEEP-CKPT 1\nmanifest 1\nscenario 3:zzz");
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  std::string err;
  sweep_output(resumed, 2, &err);
  EXPECT_NE(err.find("unsupported sweep state version"), std::string::npos)
      << err;
  std::remove(path.c_str());
}

TEST(Resume, RefusesAShardPartialFile) {
  SweepStateFile part = checkpoint_after(0);
  part.kind = SweepStateFile::Kind::kPartial;
  part.folded.clear();
  const std::string path = temp_path("partial_as_ckpt.bin");
  std::ostringstream werr;
  ASSERT_TRUE(save_state_file_atomic(part, path, werr));
  SweepOptions resumed = three_point_sweep();
  resumed.resume_path = path;
  std::string err;
  sweep_output(resumed, 2, &err);
  EXPECT_NE(err.find("shard partial"), std::string::npos) << err;
  std::remove(path.c_str());
}

// --- sharding and merge ---------------------------------------------------

TEST(Shard, IndexOutOfRangeIsRefused) {
  SweepOptions sweep = three_point_sweep();
  sweep.shard_index = 5;
  sweep.shard_count = 3;
  std::string err;
  sweep_output(sweep, 2, &err);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
  sweep.shard_index = -1;
  sweep_output(sweep, 2, &err);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

int run_merge(const std::vector<std::string>& args, std::string* err_out) {
  std::vector<std::string> owned = args;
  std::vector<char*> argv;
  for (auto& a : owned) argv.push_back(a.data());
  std::ostringstream err;
  const int rc =
      merge_main(static_cast<int>(argv.size()), argv.data(), err);
  if (err_out != nullptr) *err_out = err.str();
  return rc;
}

/// Runs the probe sweep sharded n ways, writes each partial to a temp
/// file, merges with the CLI entry point, and returns the merged CSV.
std::string shard_and_merge(SweepOptions base, int n_shards,
                            const std::string& tag) {
  std::vector<std::string> args;
  const std::string out_path = temp_path(tag + "_merged.csv");
  args.push_back("--output");
  args.push_back(out_path);
  std::vector<std::string> part_paths;
  for (int s = 0; s < n_shards; ++s) {
    SweepOptions sharded = base;
    sharded.shard_index = s;
    sharded.shard_count = n_shards;
    const std::string part = sweep_output(sharded);
    const std::string path =
        temp_path(tag + "_part" + std::to_string(s) + ".bin");
    write_file(path, part);
    part_paths.push_back(path);
    args.push_back(path);
  }
  std::string err;
  EXPECT_EQ(run_merge(args, &err), 0) << err;
  const std::string merged = read_file(out_path);
  std::remove(out_path.c_str());
  for (const auto& p : part_paths) std::remove(p.c_str());
  return merged;
}

TEST(ShardMerge, RawSweepMergesByteIdenticalToUnsharded) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3", "4", "5"}}};
  const std::string full = sweep_output(sweep);
  EXPECT_EQ(shard_and_merge(sweep, 3, "raw"), full);
}

TEST(ShardMerge, ReplicatedSweepMergesByteIdenticalToUnsharded) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2", "3", "4"}}};
  sweep.replicate = 3;
  sweep.stats = {summary::Stat::kMean, summary::Stat::kMin,
                 summary::Stat::kMax};
  const std::string full = sweep_output(sweep);
  EXPECT_EQ(shard_and_merge(sweep, 2, "rep"), full);
}

TEST(ShardMerge, MoreShardsThanPointsLeavesSomeShardsEmpty) {
  SweepOptions sweep;
  sweep.axes = {{"x", {"1", "2"}}};
  const std::string full = sweep_output(sweep);
  EXPECT_EQ(shard_and_merge(sweep, 4, "sparse"), full);
}

TEST(MergeCli, NoArgumentsPrintsUsage) {
  std::string err;
  EXPECT_EQ(run_merge({}, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos) << err;
}

TEST(MergeCli, IncompleteShardSetIsRefused) {
  SweepOptions sweep = three_point_sweep();
  sweep.shard_index = 0;
  sweep.shard_count = 2;
  const std::string path = temp_path("lonely_part.bin");
  write_file(path, sweep_output(sweep));
  std::string err;
  EXPECT_EQ(run_merge({path}, &err), 2);
  EXPECT_NE(err.find("sharded 2 ways but 1"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(MergeCli, DuplicateShardIsRefused) {
  SweepOptions sweep = three_point_sweep();
  sweep.shard_index = 0;
  sweep.shard_count = 2;
  const std::string path = temp_path("dup_part.bin");
  write_file(path, sweep_output(sweep));
  std::string err;
  EXPECT_EQ(run_merge({path, path}, &err), 2);
  EXPECT_NE(err.find("more than once"), std::string::npos) << err;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tfmcc
