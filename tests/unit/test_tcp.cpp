#include "tcp/tcp.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

struct TcpFixture {
  TcpFixture(double bottleneck_bps, SimTime delay, std::size_t qlen = 50)
      : sim{11}, topo{sim} {
    LinkConfig bn;
    bn.rate_bps = bottleneck_bps;
    bn.delay = delay;
    bn.queue_limit_packets = qlen;
    LinkConfig acc;
    acc.rate_bps = 1e9;
    acc.delay = 1_ms;
    dumbbell = make_dumbbell(topo, 2, 2, bn, acc);
  }
  Simulator sim;
  Topology topo;
  Dumbbell dumbbell;
};

TEST(Tcp, TransfersDataAndMeasuresRtt) {
  TcpFixture f{10e6, 20_ms};
  TcpFlow flow{f.sim, f.topo, f.dumbbell.left_hosts[0],
               f.dumbbell.right_hosts[0], 0};
  flow.start(SimTime::zero());
  f.sim.run_until(5_sec);
  EXPECT_GT(flow.sink->delivered_packets(), 100);
  // Path RTT = 2*(1+20+1) ms = 44 ms plus queueing.
  EXPECT_GE(flow.sender->srtt(), 44_ms);
  EXPECT_LT(flow.sender->srtt(), 200_ms);
}

TEST(Tcp, SlowStartDoublesWindow) {
  TcpFixture f{100e6, 50_ms};
  TcpFlow flow{f.sim, f.topo, f.dumbbell.left_hosts[0],
               f.dumbbell.right_hosts[0], 0};
  flow.start(SimTime::zero());
  // After ~3 RTTs with no loss, cwnd should have grown far beyond initial.
  f.sim.run_until(400_ms);
  EXPECT_GT(flow.sender->cwnd(), 8.0);
  EXPECT_EQ(flow.sender->timeouts(), 0);
}

TEST(Tcp, UtilisesBottleneck) {
  TcpFixture f{2e6, 20_ms};
  TcpFlow flow{f.sim, f.topo, f.dumbbell.left_hosts[0],
               f.dumbbell.right_hosts[0], 0};
  flow.start(SimTime::zero());
  f.sim.run_until(30_sec);
  // Goodput over the last 20 s should be close to 2 Mbit/s = 2000 kbit/s.
  const double kbps = flow.mean_kbps(10_sec, 30_sec);
  EXPECT_GT(kbps, 1600.0);
  EXPECT_LE(kbps, 2050.0);
}

TEST(Tcp, RecoversFromLossViaFastRetransmit) {
  TcpFixture f{2e6, 20_ms, 10};  // small queue forces drops
  TcpFlow flow{f.sim, f.topo, f.dumbbell.left_hosts[0],
               f.dumbbell.right_hosts[0], 0};
  flow.start(SimTime::zero());
  f.sim.run_until(20_sec);
  EXPECT_GT(flow.sender->retransmits(), 0);
  // Fast retransmit should handle most losses without timeouts.
  EXPECT_LT(flow.sender->timeouts(), flow.sender->retransmits());
  // The flow keeps making progress.
  EXPECT_GT(flow.mean_kbps(10_sec, 20_sec), 1000.0);
}

TEST(Tcp, TwoFlowsShareFairly) {
  TcpFixture f{4e6, 20_ms};
  TcpFlow a{f.sim, f.topo, f.dumbbell.left_hosts[0],
            f.dumbbell.right_hosts[0], 0};
  TcpFlow b{f.sim, f.topo, f.dumbbell.left_hosts[1],
            f.dumbbell.right_hosts[1], 1};
  a.start(SimTime::zero());
  b.start(100_ms);
  f.sim.run_until(60_sec);
  const double rate_a = a.mean_kbps(20_sec, 60_sec);
  const double rate_b = b.mean_kbps(20_sec, 60_sec);
  // Long-term shares within a factor ~1.7 of each other.
  EXPECT_GT(rate_a / rate_b, 1.0 / 1.7);
  EXPECT_LT(rate_a / rate_b, 1.7);
  // Together they fill the pipe.
  EXPECT_GT(rate_a + rate_b, 3300.0);
}

TEST(Tcp, SurvivesAckLoss) {
  Simulator sim{12};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  LinkConfig fwd;
  fwd.rate_bps = 2e6;
  fwd.delay = 10_ms;
  LinkConfig rev = fwd;
  rev.loss_rate = 0.2;  // 20% ACK loss
  topo.add_link(a, b, fwd);
  topo.add_link(b, a, rev);
  topo.compute_routes();
  TcpFlow flow{sim, topo, a, b, 0};
  flow.start(SimTime::zero());
  sim.run_until(30_sec);
  // Cumulative ACKs make TCP robust to reverse loss (paper fig. 19).
  EXPECT_GT(flow.mean_kbps(10_sec, 30_sec), 1200.0);
}

TEST(Tcp, StopHaltsTransmission) {
  TcpFixture f{10e6, 10_ms};
  TcpFlow flow{f.sim, f.topo, f.dumbbell.left_hosts[0],
               f.dumbbell.right_hosts[0], 0};
  flow.start(SimTime::zero());
  f.sim.run_until(2_sec);
  flow.stop();
  const auto sent_at_stop = flow.sender->packets_sent();
  f.sim.run_until(4_sec);
  EXPECT_LE(flow.sender->packets_sent(), sent_at_stop + 1);
}

TEST(Tcp, TimeoutOnTotalBlackout) {
  Simulator sim{13};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  LinkConfig cfg;
  cfg.rate_bps = 1e6;
  cfg.delay = 10_ms;
  auto [ab, ba] = topo.add_duplex_link(a, b, cfg);
  topo.compute_routes();
  TcpFlow flow{sim, topo, a, b, 0};
  flow.start(SimTime::zero());
  sim.run_until(1_sec);
  ab->set_loss_rate(1.0);  // forward path dies
  sim.run_until(10_sec);
  EXPECT_GT(flow.sender->timeouts(), 0);
}

}  // namespace
}  // namespace tfmcc
