#include <gtest/gtest.h>

#include <memory>

#include "mcast/session.hpp"
#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/receiver.hpp"
#include "util/stats.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// White-box receiver tests: craft data packets and inspect the receiver's
/// measurement and suppression state directly.
struct ReceiverFixture {
  ReceiverFixture() : sim{41}, topo{sim} {
    LinkConfig cfg;
    cfg.rate_bps = 1e9;
    cfg.delay = 1_ms;
    star = make_star(topo, cfg, {cfg});
    session = std::make_unique<MulticastSession>(topo, star.sender,
                                                 kTfmccDataPort);
    receiver = std::make_unique<TfmccReceiver>(sim, *session, star.leaves[0],
                                               0, TfmccConfig{},
                                               sim.make_rng(66));
    receiver->join();
  }

  /// Deliver a crafted data packet directly to the receiver.
  void deliver(TfmccDataHeader h, SimTime age = SimTime::millis(20)) {
    Packet p;
    p.uid = sim.next_uid();
    p.src = star.sender;
    p.group = session->group();
    p.dport = kTfmccDataPort;
    p.size_bytes = kDataPacketBytes;
    if (h.send_ts == SimTime::zero()) h.send_ts = sim.now() - age;
    if (h.fb_deadline == SimTime::zero()) h.fb_deadline = 2_sec;
    p.header = h;
    receiver->handle_packet(p);
  }

  TfmccDataHeader data(std::int64_t seqno, double rate_kbps = 1000.0) {
    TfmccDataHeader h;
    h.seqno = seqno;
    h.send_rate_Bps = Bps_from_kbps(rate_kbps);
    h.round = round;
    return h;
  }

  /// Advance the sim clock without other side effects.
  void advance(SimTime d) { sim.run_until(sim.now() + d); }

  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<MulticastSession> session;
  std::unique_ptr<TfmccReceiver> receiver;
  std::int32_t round{1};
};

TEST(TfmccReceiverUnit, CleanStreamMeansNoLoss) {
  ReceiverFixture f;
  for (int i = 0; i < 50; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  EXPECT_FALSE(f.receiver->has_loss());
  EXPECT_DOUBLE_EQ(f.receiver->loss_event_rate(), 0.0);
  EXPECT_EQ(f.receiver->packets_received(), 50);
}

TEST(TfmccReceiverUnit, GapTriggersLossAndHistoryInit) {
  ReceiverFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(25));  // packets 20..24 lost
  EXPECT_TRUE(f.receiver->has_loss());
  EXPECT_EQ(f.receiver->packets_lost(), 5);
  // Appendix B: the first interval is synthesised from the receive rate,
  // so p is moderate — not 4/25.
  EXPECT_GT(f.receiver->loss_event_rate(), 0.0);
  EXPECT_LT(f.receiver->loss_event_rate(), 0.1);
}

TEST(TfmccReceiverUnit, DuplicatePacketIsIgnored) {
  ReceiverFixture f;
  f.deliver(f.data(0));
  f.advance(10_ms);
  f.deliver(f.data(1));
  f.advance(10_ms);
  f.deliver(f.data(1));  // duplicate
  EXPECT_EQ(f.receiver->packets_received(), 2);
}

TEST(TfmccReceiverUnit, EchoYieldsRttMeasurement) {
  ReceiverFixture f;
  EXPECT_EQ(f.receiver->rtt(), 500_ms);  // initial value
  auto h = f.data(0);
  h.echo.receiver = 0;
  h.echo.ts = f.sim.now() - 80_ms;  // our feedback left 80 ms ago
  h.echo.delay = 30_ms;             // sender held it 30 ms
  f.deliver(h);
  ASSERT_TRUE(f.receiver->has_rtt_measurement());
  EXPECT_EQ(f.receiver->rtt(), 50_ms);  // 80 - 30
}

TEST(TfmccReceiverUnit, EchoForOtherReceiverIsNotARttSample) {
  ReceiverFixture f;
  auto h = f.data(0);
  h.echo.receiver = 7;  // someone else
  h.echo.ts = f.sim.now() - 80_ms;
  f.deliver(h);
  EXPECT_FALSE(f.receiver->has_rtt_measurement());
}

TEST(TfmccReceiverUnit, SubsequentEchoesAreSmoothed) {
  ReceiverFixture f;
  auto h = f.data(0);
  h.echo.receiver = 0;
  h.echo.ts = f.sim.now() - 100_ms;
  f.deliver(h);
  ASSERT_EQ(f.receiver->rtt(), 100_ms);
  f.advance(10_ms);
  auto h2 = f.data(1);
  h2.echo.receiver = 0;
  h2.echo.ts = f.sim.now() - 200_ms;
  f.deliver(h2);
  // Non-CLR EWMA weight 0.5: estimate moves halfway towards the new
  // sample (the one-way-delay adjustment path is skipped for real
  // samples).
  EXPECT_GT(f.receiver->rtt(), 140_ms);
  EXPECT_LT(f.receiver->rtt(), 160_ms);
}

TEST(TfmccReceiverUnit, EligibleReceiverSendsFeedbackWithinRound) {
  ReceiverFixture f;
  // Create loss so a finite calc rate exists, below the sending rate.
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(30));
  f.advance(10_ms);
  // New round at a high advertised sending rate -> eligible -> timer.
  f.round = 2;
  auto h = f.data(31, 100000.0);
  f.deliver(h);
  f.advance(5_sec);  // let the timer fire
  EXPECT_GE(f.receiver->feedback_sent(), 1);
}

TEST(TfmccReceiverUnit, NoLossAndNoSlowstartMeansNoFeedback) {
  ReceiverFixture f;
  for (int i = 0; i < 30; ++i) {
    f.deliver(f.data(i));  // steady, lossless, not slowstart
    f.advance(10_ms);
  }
  f.round = 2;
  f.deliver(f.data(30));
  f.advance(5_sec);
  EXPECT_EQ(f.receiver->feedback_sent(), 0);
}

TEST(TfmccReceiverUnit, SuppressionByLowerEchoedRate) {
  ReceiverFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(30));
  f.advance(10_ms);
  f.round = 2;
  f.deliver(f.data(31, 100000.0));  // timer armed
  // Another receiver's much lower rate is echoed: our report is redundant.
  auto h = f.data(32, 100000.0);
  h.supp_rate_Bps = 1.0;  // ~nothing
  f.deliver(h);
  f.advance(5_sec);
  EXPECT_EQ(f.receiver->feedback_sent(), 0);
}

TEST(TfmccReceiverUnit, MuchLowerOwnRateIsNotSuppressed) {
  ReceiverFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(30));
  f.advance(10_ms);
  f.round = 2;
  auto h = f.data(31, 100000.0);
  h.supp_rate_Bps = Bps_from_kbps(90000.0);  // echo far above our rate
  f.deliver(h);
  f.advance(5_sec);
  EXPECT_GE(f.receiver->feedback_sent(), 1);
}

TEST(TfmccReceiverUnit, ClrReportsPeriodicallyWithoutSuppression) {
  ReceiverFixture f;
  auto h = f.data(0);
  h.echo.receiver = 0;
  h.echo.ts = f.sim.now() - 50_ms;
  h.clr = 0;  // we are the CLR
  f.deliver(h);
  EXPECT_TRUE(f.receiver->is_clr());
  f.advance(1_sec);
  // ~1 report per RTT (50 ms): expect on the order of 20, certainly > 5.
  EXPECT_GT(f.receiver->feedback_sent(), 5);
}

TEST(TfmccReceiverUnit, ClrDemotionStopsPeriodicReports) {
  ReceiverFixture f;
  auto h = f.data(0);
  h.echo.receiver = 0;
  h.echo.ts = f.sim.now() - 50_ms;
  h.clr = 0;
  f.deliver(h);
  f.advance(500_ms);
  auto h2 = f.data(1);
  h2.clr = 3;  // someone else took over
  f.deliver(h2);
  EXPECT_FALSE(f.receiver->is_clr());
  const auto sent = f.receiver->feedback_sent();
  f.advance(2_sec);
  EXPECT_EQ(f.receiver->feedback_sent(), sent);
}

TEST(TfmccReceiverUnit, LeaveSendsLeaveReportAndDetaches) {
  ReceiverFixture f;
  f.deliver(f.data(0));
  f.receiver->leave();
  EXPECT_FALSE(f.receiver->joined());
  EXPECT_EQ(f.receiver->feedback_sent(), 1);  // the leave report
  EXPECT_FALSE(f.session->is_member(f.star.leaves[0]));
}

TEST(TfmccReceiverUnit, LeaveKeepsFinalMembershipStateInspectable) {
  ReceiverFixture f;
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  f.deliver(f.data(25));  // loss event
  f.receiver->leave();
  // The reset happens on rejoin, not on leave: post-run harnesses read the
  // final membership's measurements after tearing the session down.
  EXPECT_TRUE(f.receiver->has_loss());
  EXPECT_EQ(f.receiver->packets_lost(), 5);
}

TEST(TfmccReceiverUnit, RejoinStartsFreshMembershipState) {
  ReceiverFixture f;
  // First membership: accumulate loss, a measured RTT, and CLR duty.
  for (int i = 0; i < 20; ++i) {
    f.deliver(f.data(i));
    f.advance(10_ms);
  }
  auto h = f.data(25);  // packets 20..24 lost
  h.echo.receiver = 0;
  h.echo.ts = f.sim.now() - 80_ms;
  h.echo.delay = 30_ms;
  h.clr = 0;
  f.deliver(h);
  ASSERT_TRUE(f.receiver->has_loss());
  ASSERT_TRUE(f.receiver->has_rtt_measurement());
  ASSERT_TRUE(f.receiver->is_clr());
  f.receiver->leave();
  f.advance(10_sec);  // absent while the stream moves on

  f.receiver->join();
  // The new membership starts from constructed state: no loss history, no
  // RTT measurement (back to the initial estimate), no CLR duty, fresh
  // sequence space and round.
  EXPECT_FALSE(f.receiver->has_loss());
  EXPECT_DOUBLE_EQ(f.receiver->loss_event_rate(), 0.0);
  EXPECT_FALSE(f.receiver->has_rtt_measurement());
  EXPECT_EQ(f.receiver->rtt(), 500_ms);
  EXPECT_FALSE(f.receiver->is_clr());
  EXPECT_EQ(f.receiver->packets_received(), 0);
  EXPECT_EQ(f.receiver->packets_lost(), 0);

  // The stream resumed far ahead while we were away: the first packet of
  // the new membership re-baselines the sequence space instead of reading
  // the absence gap as a phantom loss burst.
  f.round = 5;
  f.deliver(f.data(1000));
  EXPECT_FALSE(f.receiver->has_loss());
  EXPECT_EQ(f.receiver->packets_received(), 1);
  EXPECT_EQ(f.receiver->packets_lost(), 0);
}

TEST(TfmccReceiverUnit, RejoinSurvivesLifetimeFeedbackCounter) {
  ReceiverFixture f;
  f.deliver(f.data(0));
  f.receiver->leave();  // leave report = 1 lifetime feedback
  f.receiver->join();
  // feedback_sent is a lifetime counter (harnesses sum it across a run),
  // so it is the one piece of state a rejoin must NOT clear.
  EXPECT_EQ(f.receiver->feedback_sent(), 1);
}

}  // namespace
}  // namespace tfmcc
