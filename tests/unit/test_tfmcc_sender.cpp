#include <gtest/gtest.h>

#include <memory>

#include "mcast/session.hpp"
#include "net/builders.hpp"
#include "sim/simulator.hpp"
#include "tfmcc/sender.hpp"
#include "util/stats.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

/// White-box sender tests: craft receiver reports and inspect the sender's
/// reaction directly, without the full feedback loop.
struct SenderFixture {
  SenderFixture() : sim{31}, topo{sim} {
    LinkConfig cfg;
    cfg.rate_bps = 1e9;
    cfg.delay = 1_ms;
    star = make_star(topo, cfg, {cfg, cfg, cfg});
    session = std::make_unique<MulticastSession>(topo, star.sender,
                                                 kTfmccDataPort);
    sender = std::make_unique<TfmccSender>(sim, *session, TfmccConfig{},
                                           sim.make_rng(55));
    sender->start(SimTime::zero());
    sim.run_until(100_ms);
  }

  /// Deliver a crafted report to the sender as if it arrived from the net.
  void inject(TfmccFeedbackHeader f) {
    Packet p;
    p.uid = sim.next_uid();
    p.src = star.leaves[0];
    p.dst = star.sender;
    p.dport = kTfmccSenderPort;
    p.size_bytes = kFeedbackPacketBytes;
    if (f.ts == SimTime::zero()) f.ts = sim.now();
    p.header = f;
    sender->handle_packet(p);
  }

  static TfmccFeedbackHeader report(std::int32_t receiver, double rate_kbps,
                                    double p_loss = 0.01,
                                    double recv_kbps = 0.0) {
    TfmccFeedbackHeader f;
    f.receiver = receiver;
    f.calc_rate_Bps = Bps_from_kbps(rate_kbps);
    f.recv_rate_Bps =
        Bps_from_kbps(recv_kbps > 0.0 ? recv_kbps : rate_kbps);
    f.loss_event_rate = p_loss;
    f.has_rtt = true;
    f.rtt = SimTime::millis(50);
    f.has_loss = true;
    return f;
  }

  Simulator sim;
  Topology topo;
  Star star;
  std::unique_ptr<MulticastSession> session;
  std::unique_ptr<TfmccSender> sender;
};

TEST(TfmccSenderUnit, FirstLossReportEndsSlowstartAndSetsClr) {
  SenderFixture f;
  ASSERT_TRUE(f.sender->in_slowstart());
  f.inject(SenderFixture::report(0, 500.0));
  EXPECT_FALSE(f.sender->in_slowstart());
  EXPECT_EQ(f.sender->clr(), 0);
}

TEST(TfmccSenderUnit, LowerReportSwitchesClrAndDropsRateImmediately) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 800.0));  // exits slowstart, CLR = 0
  // A second CLR report lifts the rate from the tiny initial value (the
  // exit kept min(initial, reported)) up to the reported 800 kbit/s.
  f.inject(SenderFixture::report(0, 800.0));
  f.sim.run_until(200_ms);
  ASSERT_GT(f.sender->rate_Bps(), Bps_from_kbps(300.0));
  f.inject(SenderFixture::report(1, 200.0));
  EXPECT_EQ(f.sender->clr(), 1);
  EXPECT_LE(f.sender->rate_Bps(), Bps_from_kbps(200.0) + 1.0);
}

TEST(TfmccSenderUnit, ReportAboveCurrentRateDoesNotSwitchClr) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 100.0));
  f.inject(SenderFixture::report(0, 100.0));
  // Receiver 1 claims 200 kbit/s — *above* the current 100 kbit/s rate, so
  // per §2.2 it must not displace the CLR.
  f.inject(SenderFixture::report(1, 200.0));
  EXPECT_EQ(f.sender->clr(), 0);
}

TEST(TfmccSenderUnit, HigherReportFromNonClrIsIgnored) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 300.0));
  const double rate = f.sender->rate_Bps();
  f.inject(SenderFixture::report(1, 5000.0));
  EXPECT_EQ(f.sender->clr(), 0);
  EXPECT_DOUBLE_EQ(f.sender->rate_Bps(), rate);
}

TEST(TfmccSenderUnit, ClrIncreaseIsBoundedByReceiveRateCap) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 300.0, 0.01, 300.0));
  // The CLR now claims a much higher equation rate but its measured
  // receive rate is still 350 kbit/s: the sender may at most double it.
  f.inject(SenderFixture::report(0, 4000.0, 0.001, 350.0));
  EXPECT_LE(f.sender->rate_Bps(), Bps_from_kbps(700.0) + 1.0);
}

TEST(TfmccSenderUnit, LeaveOfClrPromotesNextWorstReceiver) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 200.0));
  f.inject(SenderFixture::report(1, 400.0));
  f.inject(SenderFixture::report(2, 900.0));
  ASSERT_EQ(f.sender->clr(), 0);
  TfmccFeedbackHeader leave;
  leave.receiver = 0;
  leave.leaving = true;
  f.inject(leave);
  EXPECT_EQ(f.sender->clr(), 1);  // next-lowest known rate
}

TEST(TfmccSenderUnit, RampAfterClrLeaveLimitsIncrease) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 200.0));
  f.inject(SenderFixture::report(1, 2000.0, 0.001, 2000.0));
  TfmccFeedbackHeader leave;
  leave.receiver = 0;
  leave.leaving = true;
  f.inject(leave);
  ASSERT_EQ(f.sender->clr(), 1);
  // Immediately after the switch the rate must still be near the old CLR's
  // 200 kbit/s, not jump to 2000 (increase capped at ~1 pkt/RTT per
  // report).
  EXPECT_LT(f.sender->rate_Bps(), Bps_from_kbps(500.0));
}

TEST(TfmccSenderUnit, LeaveOfLastReceiverReentersSlowstart) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 300.0));
  ASSERT_FALSE(f.sender->in_slowstart());
  TfmccFeedbackHeader leave;
  leave.receiver = 0;
  leave.leaving = true;
  f.inject(leave);
  EXPECT_EQ(f.sender->clr(), kInvalidReceiver);
  EXPECT_TRUE(f.sender->in_slowstart());
}

TEST(TfmccSenderUnit, RoundCounterAdvances) {
  SenderFixture f;
  const auto r0 = f.sender->round();
  f.sim.run_until(10_sec);
  EXPECT_GT(f.sender->round(), r0);
}

TEST(TfmccSenderUnit, RoundDurationUsesMaxRttEstimate) {
  SenderFixture f;
  // Known receiver with a valid 50 ms RTT and a rate high enough that the
  // low-rate guard does not bind: T = 4 * max(RTT).  The initial round ran
  // with T = 2 s (initial RTT + low-rate guard), so the shortened round
  // becomes visible right after it ends — and before the CLR silence
  // timeout (10 * T) would discard our silent receiver.
  f.inject(SenderFixture::report(0, 2000.0));
  f.inject(SenderFixture::report(0, 2000.0));
  f.sim.run_until(SimTime::millis(2100));
  EXPECT_LE(f.sender->round_duration(), 4.0 * 50_ms + 100_ms);
  // A receiver without an RTT measurement forces T back to the initial
  // 500 ms scale (footnote 7).
  TfmccFeedbackHeader no_rtt = SenderFixture::report(1, 1900.0);
  no_rtt.has_rtt = false;
  f.inject(no_rtt);
  f.inject(SenderFixture::report(0, 2000.0));  // keep the CLR alive
  f.sim.run_until(SimTime::millis(2500));
  EXPECT_GE(f.sender->round_duration(), 4.0 * 400_ms);
}

TEST(TfmccSenderUnit, SilentClrTimesOutWithoutAnyTraffic) {
  SenderFixture f;
  f.inject(SenderFixture::report(0, 2000.0));
  f.inject(SenderFixture::report(0, 2000.0));
  ASSERT_EQ(f.sender->clr(), 0);
  // No further reports at all: after 10 feedback delays the sender must
  // declare the CLR dead rather than keep increasing on stale state.
  f.sim.run_until(30_sec);
  EXPECT_NE(f.sender->clr(), 0);
}

TEST(TfmccSenderUnit, LowRateGuardStretchesRound) {
  SenderFixture f;
  // Rate stuck at the slowstart-exit minimum (~2 kB/s): the §2.5.3 guard
  // must stretch the round to (c+1) packet intervals, far beyond 4 RTTs.
  f.inject(SenderFixture::report(0, 500.0));
  f.sim.run_until(5_sec);
  const double pkt_interval_s =
      kDataPacketBytes / std::max(f.sender->rate_Bps(), 1.0);
  EXPECT_GE(f.sender->round_duration(),
            SimTime::seconds(4.0 * pkt_interval_s) - 1_ms);
}

TEST(TfmccSenderUnit, KnownReceiverBookkeeping) {
  SenderFixture f;
  EXPECT_EQ(f.sender->known_receivers(), 0);
  f.inject(SenderFixture::report(0, 500.0));
  f.inject(SenderFixture::report(1, 600.0));
  EXPECT_EQ(f.sender->known_receivers(), 2);
  EXPECT_EQ(f.sender->known_receivers_with_rtt(), 2);
  TfmccFeedbackHeader no_rtt = SenderFixture::report(2, 700.0);
  no_rtt.has_rtt = false;
  f.inject(no_rtt);
  EXPECT_EQ(f.sender->known_receivers_with_rtt(), 2);
  EXPECT_EQ(f.sender->known_receivers(), 3);
}

}  // namespace
}  // namespace tfmcc
