#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(Topology, AddNodesAssignsSequentialIds) {
  Simulator sim{1};
  Topology topo{sim};
  EXPECT_EQ(topo.add_node(), 0);
  EXPECT_EQ(topo.add_node(), 1);
  EXPECT_EQ(topo.add_nodes(3), 2);
  EXPECT_EQ(topo.node_count(), 5);
}

TEST(Topology, RoutesPreferLowerDelay) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  const NodeId c = topo.add_node();
  LinkConfig slow;
  slow.delay = 100_ms;
  LinkConfig fast;
  fast.delay = 1_ms;
  // Direct a->b is slow; a->c->b is fast.
  topo.add_duplex_link(a, b, slow);
  topo.add_duplex_link(a, c, fast);
  topo.add_duplex_link(c, b, fast);
  topo.compute_routes();
  Link* next = topo.node(a).route(b);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->destination().id(), c);
  EXPECT_EQ(topo.path_delay(a, b), 2_ms);
}

TEST(Topology, TieBreaksByHopCount) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  const NodeId c = topo.add_node();
  LinkConfig two_ms;
  two_ms.delay = 2_ms;
  LinkConfig one_ms;
  one_ms.delay = 1_ms;
  topo.add_duplex_link(a, b, two_ms);       // direct: 2 ms, 1 hop
  topo.add_duplex_link(a, c, one_ms);       // via c: 2 ms, 2 hops
  topo.add_duplex_link(c, b, one_ms);
  topo.compute_routes();
  EXPECT_EQ(topo.node(a).route(b)->destination().id(), b);
}

TEST(Topology, PathDelayUnreachableIsInfinite) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.compute_routes();
  EXPECT_TRUE(topo.path_delay(a, b).is_infinite());
}

TEST(Topology, LinkBetweenFindsAdjacency) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  auto [ab, ba] = topo.add_duplex_link(a, b, LinkConfig{});
  EXPECT_EQ(topo.link_between(a, b), ab);
  EXPECT_EQ(topo.link_between(b, a), ba);
  EXPECT_EQ(topo.link_between(a, a), nullptr);
}

TEST(Builders, DumbbellShape) {
  Simulator sim{1};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = 8e6;
  bn.delay = 20_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 3, 4, bn, acc);
  EXPECT_EQ(d.left_hosts.size(), 3u);
  EXPECT_EQ(d.right_hosts.size(), 4u);
  EXPECT_EQ(topo.node_count(), 2 + 3 + 4);
  // All cross traffic passes the bottleneck: path delay = 2+20+2 ms.
  EXPECT_EQ(topo.path_delay(d.left_hosts[0], d.right_hosts[0]), 24_ms);
  ASSERT_NE(d.bottleneck_fwd, nullptr);
  EXPECT_DOUBLE_EQ(d.bottleneck_fwd->config().rate_bps, 8e6);
}

TEST(Builders, StarShapeWithHeterogeneousLeaves) {
  Simulator sim{1};
  Topology topo{sim};
  LinkConfig sender_link;
  sender_link.delay = 5_ms;
  std::vector<LinkConfig> leaves(3);
  leaves[0].delay = 10_ms;
  leaves[1].delay = 20_ms;
  leaves[2].delay = 30_ms;
  const Star s = make_star(topo, sender_link, leaves);
  EXPECT_EQ(s.leaves.size(), 3u);
  EXPECT_EQ(topo.path_delay(s.sender, s.leaves[0]), 15_ms);
  EXPECT_EQ(topo.path_delay(s.sender, s.leaves[2]), 35_ms);
  // Round trips are symmetric.
  EXPECT_EQ(topo.path_delay(s.leaves[2], s.sender), 35_ms);
}

}  // namespace
}  // namespace tfmcc
