#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "sim/simulator.hpp"

namespace tfmcc {
namespace {

using namespace tfmcc::time_literals;

TEST(Topology, AddNodesAssignsSequentialIds) {
  Simulator sim{1};
  Topology topo{sim};
  EXPECT_EQ(topo.add_node(), 0);
  EXPECT_EQ(topo.add_node(), 1);
  EXPECT_EQ(topo.add_nodes(3), 2);
  EXPECT_EQ(topo.node_count(), 5);
}

TEST(Topology, RoutesPreferLowerDelay) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  const NodeId c = topo.add_node();
  LinkConfig slow;
  slow.delay = 100_ms;
  LinkConfig fast;
  fast.delay = 1_ms;
  // Direct a->b is slow; a->c->b is fast.
  topo.add_duplex_link(a, b, slow);
  topo.add_duplex_link(a, c, fast);
  topo.add_duplex_link(c, b, fast);
  topo.compute_routes();
  Link* next = topo.node(a).route(b);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->destination().id(), c);
  EXPECT_EQ(topo.path_delay(a, b), 2_ms);
}

TEST(Topology, TieBreaksByHopCount) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  const NodeId c = topo.add_node();
  LinkConfig two_ms;
  two_ms.delay = 2_ms;
  LinkConfig one_ms;
  one_ms.delay = 1_ms;
  topo.add_duplex_link(a, b, two_ms);       // direct: 2 ms, 1 hop
  topo.add_duplex_link(a, c, one_ms);       // via c: 2 ms, 2 hops
  topo.add_duplex_link(c, b, one_ms);
  topo.compute_routes();
  EXPECT_EQ(topo.node(a).route(b)->destination().id(), b);
}

TEST(Topology, PathDelayUnreachableIsInfinite) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.compute_routes();
  EXPECT_TRUE(topo.path_delay(a, b).is_infinite());
}

TEST(Topology, LinkBetweenFindsAdjacency) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  auto [ab, ba] = topo.add_duplex_link(a, b, LinkConfig{});
  EXPECT_EQ(topo.link_between(a, b), ab);
  EXPECT_EQ(topo.link_between(b, a), ba);
  EXPECT_EQ(topo.link_between(a, a), nullptr);
}

// Count the distribution-tree edges of group g over all nodes.
int tree_edge_count(const Topology& topo, GroupId g) {
  int n = 0;
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    n += static_cast<int>(topo.mcast_out_links(g, node).size());
  }
  return n;
}

TEST(TopologyMembership, GraftAttachesOnlyTheNewBranch) {
  // Chain sender - r - a, plus r - b: joining a attaches {r, a}; joining b
  // afterwards attaches only b (r is shared trunk).
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r = topo.add_node();
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.add_duplex_link(s, r, LinkConfig{});
  topo.add_duplex_link(r, a, LinkConfig{});
  topo.add_duplex_link(r, b, LinkConfig{});
  topo.compute_routes();
  const GroupId g = topo.create_group(s);
  EXPECT_EQ(topo.membership_mode(), MembershipMode::kIncremental);

  topo.join(g, a);
  EXPECT_TRUE(topo.is_attached(g, r));
  EXPECT_TRUE(topo.is_attached(g, a));
  EXPECT_FALSE(topo.is_attached(g, b));
  EXPECT_EQ(tree_edge_count(topo, g), 2);  // s->r, r->a

  topo.join(g, b);
  EXPECT_TRUE(topo.is_attached(g, b));
  EXPECT_EQ(tree_edge_count(topo, g), 3);  // + r->b
}

TEST(TopologyMembership, PruneStopsAtSharedTrunkAndInteriorMembers) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r = topo.add_node();
  const NodeId a = topo.add_node();
  const NodeId b = topo.add_node();
  topo.add_duplex_link(s, r, LinkConfig{});
  topo.add_duplex_link(r, a, LinkConfig{});
  topo.add_duplex_link(r, b, LinkConfig{});
  topo.compute_routes();
  const GroupId g = topo.create_group(s);
  topo.join(g, a);
  topo.join(g, b);

  // b leaves: only the r->b leaf edge goes; r stays attached for a.
  topo.leave(g, b);
  EXPECT_FALSE(topo.is_attached(g, b));
  EXPECT_TRUE(topo.is_attached(g, r));
  EXPECT_EQ(tree_edge_count(topo, g), 2);

  // r is an interior member: a's leave must not prune r's own membership.
  topo.join(g, r);
  topo.leave(g, a);
  EXPECT_TRUE(topo.is_attached(g, r));
  EXPECT_TRUE(topo.is_member(g, r));
  EXPECT_EQ(tree_edge_count(topo, g), 1);  // s->r only

  // Last member leaves: the tree empties completely.
  topo.leave(g, r);
  EXPECT_FALSE(topo.is_attached(g, r));
  EXPECT_EQ(tree_edge_count(topo, g), 0);
}

TEST(TopologyMembership, RejoinAfterLeaveRebuildsTheBranch) {
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r = topo.add_node();
  const NodeId a = topo.add_node();
  topo.add_duplex_link(s, r, LinkConfig{});
  topo.add_duplex_link(r, a, LinkConfig{});
  topo.compute_routes();
  const GroupId g = topo.create_group(s);
  topo.join(g, a);
  topo.leave(g, a);
  topo.join(g, a);
  EXPECT_TRUE(topo.is_member(g, a));
  EXPECT_TRUE(topo.is_attached(g, a));
  EXPECT_EQ(tree_edge_count(topo, g), 2);
}

TEST(TopologyMembership, NodeAddedAfterCreateGroupIsJoinable) {
  // Regression: join() used to grow member_flags for late-added nodes but
  // left out_links at its create_group()-time size, so building the tree
  // through the late node's parent indexed out of bounds.
  Simulator sim{1};
  Topology topo{sim};
  const NodeId s = topo.add_node();
  const NodeId r = topo.add_node();
  topo.add_duplex_link(s, r, LinkConfig{});
  const GroupId g = topo.create_group(s);

  const NodeId late = topo.add_node();
  topo.add_duplex_link(r, late, LinkConfig{});
  topo.compute_routes();

  topo.join(g, late);
  EXPECT_TRUE(topo.is_member(g, late));
  EXPECT_TRUE(topo.is_attached(g, late));
  EXPECT_EQ(tree_edge_count(topo, g), 2);  // s->r, r->late
  topo.leave(g, late);
  EXPECT_EQ(tree_edge_count(topo, g), 0);

  // Same robustness on the full-rebuild oracle path.
  const NodeId later = topo.add_node();
  topo.add_duplex_link(r, later, LinkConfig{});
  topo.compute_routes();
  topo.set_membership_mode(MembershipMode::kFullRebuild);
  topo.join(g, later);
  EXPECT_TRUE(topo.is_attached(g, later));
  EXPECT_EQ(tree_edge_count(topo, g), 2);
}

TEST(TopologyMembership, RebuildOracleMatchesIncrementalTree) {
  // A public rebuild_tree() recomputes from the member set and must land on
  // the same edges (order aside, and in ascending-join order even the order
  // matches) as the incremental maintenance produced.
  Simulator sim{1};
  Topology topo{sim};
  LinkConfig link;
  const Dumbbell d = make_dumbbell(topo, 1, 6, link, link);
  topo.compute_routes();
  const GroupId g = topo.create_group(d.left_hosts[0]);
  for (std::size_t i = 0; i < d.right_hosts.size(); i += 2) {
    topo.join(g, d.right_hosts[i]);
  }
  std::vector<std::vector<Link*>> incremental;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    incremental.push_back(topo.mcast_out_links(g, n));
  }
  topo.rebuild_tree(g);
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    EXPECT_EQ(topo.mcast_out_links(g, n),
              incremental[static_cast<std::size_t>(n)])
        << "fan-out differs at node " << n;
  }
}

TEST(Builders, DumbbellShape) {
  Simulator sim{1};
  Topology topo{sim};
  LinkConfig bn;
  bn.rate_bps = 8e6;
  bn.delay = 20_ms;
  LinkConfig acc;
  acc.rate_bps = 100e6;
  acc.delay = 2_ms;
  const Dumbbell d = make_dumbbell(topo, 3, 4, bn, acc);
  EXPECT_EQ(d.left_hosts.size(), 3u);
  EXPECT_EQ(d.right_hosts.size(), 4u);
  EXPECT_EQ(topo.node_count(), 2 + 3 + 4);
  // All cross traffic passes the bottleneck: path delay = 2+20+2 ms.
  EXPECT_EQ(topo.path_delay(d.left_hosts[0], d.right_hosts[0]), 24_ms);
  ASSERT_NE(d.bottleneck_fwd, nullptr);
  EXPECT_DOUBLE_EQ(d.bottleneck_fwd->config().rate_bps, 8e6);
}

TEST(Builders, StarShapeWithHeterogeneousLeaves) {
  Simulator sim{1};
  Topology topo{sim};
  LinkConfig sender_link;
  sender_link.delay = 5_ms;
  std::vector<LinkConfig> leaves(3);
  leaves[0].delay = 10_ms;
  leaves[1].delay = 20_ms;
  leaves[2].delay = 30_ms;
  const Star s = make_star(topo, sender_link, leaves);
  EXPECT_EQ(s.leaves.size(), 3u);
  EXPECT_EQ(topo.path_delay(s.sender, s.leaves[0]), 15_ms);
  EXPECT_EQ(topo.path_delay(s.sender, s.leaves[2]), 35_ms);
  // Round trips are symmetric.
  EXPECT_EQ(topo.path_delay(s.leaves[2], s.sender), 35_ms);
}

}  // namespace
}  // namespace tfmcc
