// Unit tests for the compact per-run trace (sim/trace.hpp): commentary
// stripping, cell/row access, byte-identical row re-joining, and the
// length-prefixed binary encoding's round trip and corruption diagnostics.

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tfmcc {
namespace {

constexpr const char* kSampleText =
    "# figure header commentary\n"
    "\n"
    "flow,time_s,kbps\n"
    "alpha,0.5,120\n"
    "CHECK throughput within bounds\n"
    "beta,1.5,240.25\n"
    "NOTE: run complete\n";

TEST(RunTrace, ParsesHeaderAndRowsDroppingCommentary) {
  const RunTrace t = RunTrace::parse_text(kSampleText);
  ASSERT_TRUE(t.has_header());
  EXPECT_EQ(t.header_line(), "flow,time_s,kbps");
  EXPECT_EQ(t.header_cells(), 3u);
  ASSERT_EQ(t.n_rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(0, 2), "120");
  EXPECT_EQ(t.cell(1, 1), "1.5");
  EXPECT_EQ(t.row_cells(1),
            (std::vector<std::string>{"beta", "1.5", "240.25"}));
}

TEST(RunTrace, RowLineReproducesTheEmittedLineByteForByte) {
  const RunTrace t = RunTrace::parse_text(kSampleText);
  EXPECT_EQ(t.row_line(0), "alpha,0.5,120");
  EXPECT_EQ(t.row_line(1), "beta,1.5,240.25");
}

TEST(RunTrace, EmptyCellsAndRaggedRowsSurvive) {
  const RunTrace t = RunTrace::parse_text("a,b\n1,,3\n,\n");
  ASSERT_EQ(t.n_rows(), 2u);
  EXPECT_EQ(t.row_size(0), 3u);
  EXPECT_EQ(t.cell(0, 1), "");
  EXPECT_EQ(t.row_line(0), "1,,3");
  EXPECT_EQ(t.row_size(1), 2u);
  EXPECT_EQ(t.row_line(1), ",");
}

TEST(RunTrace, CommentaryOnlyOutputYieldsEmptyTrace) {
  const RunTrace t = RunTrace::parse_text("# nothing\nNOTE: but talk\n\n");
  EXPECT_FALSE(t.has_header());
  EXPECT_EQ(t.n_rows(), 0u);
  EXPECT_EQ(t.header_line(), "");
}

TEST(RunTrace, LastLineWithoutTrailingNewlineIsKept) {
  const RunTrace t = RunTrace::parse_text("h1,h2\n5,6");
  ASSERT_EQ(t.n_rows(), 1u);
  EXPECT_EQ(t.row_line(0), "5,6");
}

TEST(RunTrace, IsCommentaryMatchesTheScenarioConventions) {
  EXPECT_TRUE(RunTrace::is_commentary(""));
  EXPECT_TRUE(RunTrace::is_commentary("# fig07"));
  EXPECT_TRUE(RunTrace::is_commentary("CHECK cov < 0.2"));
  EXPECT_TRUE(RunTrace::is_commentary("NOTE: warming up"));
  EXPECT_FALSE(RunTrace::is_commentary("flow,kbps"));
  EXPECT_FALSE(RunTrace::is_commentary("CHECKED,1"));
}

TEST(RunTraceBinary, EncodeDecodeRoundTripIsExact) {
  const RunTrace original = RunTrace::parse_text(kSampleText);
  std::string blob;
  original.encode(blob);
  RunTrace decoded;
  std::string err;
  ASSERT_TRUE(RunTrace::decode(blob, decoded, err)) << err;
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.row_line(1), "beta,1.5,240.25");
}

TEST(RunTraceBinary, EmptyTraceRoundTrips) {
  const RunTrace original = RunTrace::parse_text("");
  std::string blob;
  original.encode(blob);
  RunTrace decoded;
  std::string err;
  ASSERT_TRUE(RunTrace::decode(blob, decoded, err)) << err;
  EXPECT_FALSE(decoded.has_header());
  EXPECT_EQ(decoded, original);
}

TEST(RunTraceBinary, BadMagicIsDiagnosed) {
  RunTrace out;
  std::string err;
  EXPECT_FALSE(RunTrace::decode("NOPE\x01more-bytes", out, err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(RunTraceBinary, TruncationAtEveryPrefixIsDiagnosedNotCrashed) {
  std::string blob;
  RunTrace::parse_text(kSampleText).encode(blob);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    RunTrace out;
    std::string err;
    EXPECT_FALSE(
        RunTrace::decode(std::string_view{blob}.substr(0, len), out, err))
        << "prefix of length " << len << " decoded successfully";
    EXPECT_FALSE(err.empty());
  }
}

TEST(RunTraceBinary, TrailingBytesAreRejected) {
  std::string blob;
  RunTrace::parse_text("a,b\n1,2\n").encode(blob);
  blob += "x";
  RunTrace out;
  std::string err;
  EXPECT_FALSE(RunTrace::decode(blob, out, err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

}  // namespace
}  // namespace tfmcc
