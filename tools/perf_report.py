#!/usr/bin/env python3
"""Hot-path performance report: micro benchmarks + scenario wall-clocks.

Measures the simulator's perf trajectory and writes/updates the
``BENCH_hotpath.json`` tracked at the repo root:

* micro benchmarks (google-benchmark, ``BM_SchedulerChurn`` and friends)
  reported as ns/op and items/s;
* wall-clock runs of the heavyweight paper scenarios — fig07 (full
  Monte-Carlo ladder), fig12 and fig13 (both dominated by the
  1000-receiver packet simulations) — best-of-N to shed scheduler noise.

Usage:
  tools/perf_report.py --build-dir build                 # measure, update "current"
  tools/perf_report.py --build-dir build --label NAME    # ... with a custom label
  tools/perf_report.py --build-dir build --set-baseline  # measure into "baseline"
  tools/perf_report.py --build-dir build \
      --check BENCH_hotpath.json --tolerance 0.25        # CI: fail on regression

The JSON keeps two measurement sets: ``baseline`` (the pre-optimisation
reference, captured once per perf PR from the pre-PR tree) and
``current`` (the tree as committed).  Perf PRs must refresh both — see
README "Performance".  ``--check`` re-measures the working tree and fails
when any scenario wall-clock is more than ``--tolerance`` (default 25%)
slower than the committed ``current`` entry, or any micro benchmark is
more than ``--micro-tolerance`` (default 60%) slower ns/op — both after
machine-speed normalisation.
"""

import argparse
import json
import os
import subprocess
import sys
import time

SCENARIOS = [
    # (entry name, scenario, extra args) — defaults reproduce the paper
    # figures: fig07 runs the full receiver ladder, fig12/fig13 include the
    # 1000-receiver configurations that dominate full-duration CI runs.
    ("fig07_scaling_full_ladder", "fig07_scaling", []),
    ("fig12_rtt_acquisition_1000rx", "fig12_rtt_acquisition", []),
    ("fig13_rtt_change_1000rx", "fig13_rtt_change", []),
    # Large-n legs of the hybrid full/model receiver tier: the fig07 ladder
    # extended to n = 10^5 (analytic Monte-Carlo), and the fig12-class
    # packet simulation at 10^5 receivers on modeled SoA blocks — the
    # regression probe for the batched fan-out path.
    ("fig07_scaling_100k_ladder", "fig07_scaling",
     ["--set", "n_max=100000"]),
    ("scale_hybrid_100k", "scale_hybrid_receivers", []),
    # Dynamic-membership stress: 2000 receivers, >10k join/leave events on
    # the incremental graft/prune path — the wall-clock regression probe for
    # membership maintenance (BM_MembershipChurn gates the per-event cost).
    ("churn_flash_crowd_2000rx", "churn_flash_crowd", []),
]

MICRO_FILTER = ("BM_SchedulerChurn|BM_EquationFull|BM_EquationBatch|"
                "BM_LossHistoryReceive|BM_MembershipChurn")


def run_micro(build_dir, min_time):
    """Runs the google-benchmark suite, returns {name: {ns_per_op, items_per_s}}."""
    binary = os.path.join(build_dir, "bench", "micro_benchmarks")
    if not os.path.exists(binary):
        print(f"perf_report: {binary} not built (google-benchmark missing?); "
              "skipping micro benchmarks", file=sys.stderr)
        return {}
    out_json = os.path.join(build_dir, "perf_report_micro.json")
    base = [binary, f"--benchmark_filter={MICRO_FILTER}",
            f"--benchmark_out={out_json}", "--benchmark_out_format=json"]
    # Older google-benchmark rejects the unit-suffixed min_time spelling.
    for min_time_arg in (f"--benchmark_min_time={min_time}s",
                         f"--benchmark_min_time={min_time}"):
        try:
            subprocess.run(base + [min_time_arg], check=True,
                           stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            break
        except subprocess.CalledProcessError:
            continue
    else:
        print("perf_report: micro benchmark run failed", file=sys.stderr)
        return {}
    with open(out_json) as f:
        data = json.load(f)
    metrics = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        entry = {"ns_per_op": round(bench["real_time"], 3)}
        if "items_per_second" in bench:
            entry["items_per_s"] = round(bench["items_per_second"])
        metrics[name] = entry
    return metrics


def run_scenarios(build_dir, repeats):
    """Times each scenario end to end; best-of-N wall-clock seconds."""
    binary = os.path.join(build_dir, "bench", "tfmcc_sim")
    if not os.path.exists(binary):
        sys.exit(f"perf_report: {binary} not built")
    metrics = {}
    for entry_name, scenario, extra in SCENARIOS:
        best = None
        for _ in range(repeats):
            t0 = time.monotonic()
            subprocess.run([binary, scenario, "--output", os.devnull, *extra],
                           check=True)
            dt = time.monotonic() - t0
            best = dt if best is None else min(best, dt)
        metrics[entry_name] = {"wall_s": round(best, 3), "best_of": repeats}
        print(f"perf_report: {entry_name}: {best:.2f} s (best of {repeats})")
    return metrics


def load_report(path):
    if os.path.exists(path):
        with open(path) as f:
            return json.load(f)
    return {"schema": "tfmcc-hotpath-bench/1", "unit_notes": {
        "wall_s": "end-to-end scenario wall-clock, best-of-N, seconds",
        "ns_per_op": "google-benchmark real time per operation",
    }}


def check(report, fresh_scenarios, tolerance):
    """Compares fresh wall-clocks against the committed 'current' set.

    The committed numbers come from whatever machine last ran perf_report,
    so raw cross-machine wall-clocks are not comparable.  The gate therefore
    normalises by the smallest measured/committed ratio across scenarios —
    the least-changed scenario acts as the machine-speed proxy (fig07 is
    analytic and insensitive to the packet hot path, so a genuine hot-path
    regression shows up as a spread between scenarios, while a uniformly
    slower runner shifts every ratio together and is factored out).
    """
    committed = report.get("current", {}).get("scenarios", {})
    if not committed:
        sys.exit("perf_report: --check needs a committed 'current' "
                 "measurement set in the report")
    missing = sorted(set(fresh_scenarios) - set(committed))
    if missing:
        sys.exit("perf_report: measured scenarios missing from the committed "
                 f"report (re-run perf_report and commit it): "
                 f"{', '.join(missing)}")
    ratios = {}
    for name, fresh in fresh_scenarios.items():
        old = committed[name]["wall_s"]
        ratios[name] = fresh["wall_s"] / old if old > 0 else float("inf")
    scale = min(ratios.values())
    failures = []
    for name, ratio in sorted(ratios.items()):
        normalised = ratio / scale if scale > 0 else float("inf")
        status = "OK" if normalised <= 1.0 + tolerance else "REGRESSION"
        print(f"perf_report: {name}: committed "
              f"{committed[name]['wall_s']:.2f}s, measured "
              f"{fresh_scenarios[name]['wall_s']:.2f}s "
              f"({ratio:.2f}x raw, {normalised:.2f}x machine-normalised) "
              f"{status}")
        if normalised > 1.0 + tolerance:
            failures.append(name)
    if failures:
        sys.exit(f"perf_report: wall-clock regression beyond "
                 f"{tolerance:.0%} tolerance: {', '.join(failures)}")
    print(f"perf_report: all scenario wall-clocks within {tolerance:.0%} "
          "of the committed baseline (machine-normalised)")


def check_micro(report, fresh_micro, tolerance):
    """Gates micro-benchmark ns/op against the committed 'current' set.

    Same machine-normalisation idea as the scenario gate: the
    least-regressed benchmark is taken as the machine-speed proxy, so a
    uniformly slower runner passes while one benchmark regressing relative
    to its peers fails.  Micro benchmarks are noisier than wall-clocks
    (frequency scaling, cache state), so callers pass a looser tolerance.
    Benchmarks missing from the committed set are reported but don't fail
    the gate — a freshly added bench only gates once it has been committed
    via a perf_report refresh.
    """
    committed = report.get("current", {}).get("micro", {})
    if not fresh_micro:
        print("perf_report: no micro benchmarks measured; skipping micro gate")
        return
    if not committed:
        print("perf_report: committed report has no micro set; "
              "skipping micro gate")
        return
    common = sorted(set(fresh_micro) & set(committed))
    for name in sorted(set(fresh_micro) - set(committed)):
        print(f"perf_report: {name}: not in committed report (new bench, "
              "not gated)")
    if not common:
        print("perf_report: no overlapping micro benchmarks; "
              "skipping micro gate")
        return
    ratios = {}
    for name in common:
        old = committed[name]["ns_per_op"]
        ratios[name] = (fresh_micro[name]["ns_per_op"] / old
                        if old > 0 else float("inf"))
    scale = min(ratios.values())
    failures = []
    for name, ratio in sorted(ratios.items()):
        normalised = ratio / scale if scale > 0 else float("inf")
        status = "OK" if normalised <= 1.0 + tolerance else "REGRESSION"
        print(f"perf_report: {name}: committed "
              f"{committed[name]['ns_per_op']:.1f} ns/op, measured "
              f"{fresh_micro[name]['ns_per_op']:.1f} ns/op "
              f"({ratio:.2f}x raw, {normalised:.2f}x machine-normalised) "
              f"{status}")
        if normalised > 1.0 + tolerance:
            failures.append(name)
    if failures:
        sys.exit(f"perf_report: micro benchmark regression beyond "
                 f"{tolerance:.0%} tolerance: {', '.join(failures)}")
    print(f"perf_report: all micro benchmarks within {tolerance:.0%} "
          "of the committed baseline (machine-normalised)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--output", default="BENCH_hotpath.json",
                    help="report path (default: BENCH_hotpath.json)")
    ap.add_argument("--label", default=None,
                    help="label recorded with the measurement set")
    ap.add_argument("--set-baseline", action="store_true",
                    help="write the measurements into 'baseline' instead of "
                         "'current'")
    ap.add_argument("--repeats", type=int, default=3,
                    help="scenario repetitions, best-of (default 3)")
    ap.add_argument("--min-time", type=float, default=0.5,
                    help="google-benchmark min time per bench, seconds")
    ap.add_argument("--check", metavar="REPORT",
                    help="compare a fresh measurement against REPORT's "
                         "'current' set and fail on regression; does not "
                         "write anything")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional wall-clock slowdown for --check "
                         "(default 0.25)")
    ap.add_argument("--micro-tolerance", type=float, default=0.60,
                    help="allowed fractional ns/op slowdown for --check's "
                         "micro gate; looser than the scenario gate because "
                         "ns-scale benches are noisier (default 0.60)")
    args = ap.parse_args()

    scenarios = run_scenarios(args.build_dir, args.repeats)
    micro = run_micro(args.build_dir, args.min_time)

    if args.check:
        report = load_report(args.check)
        check(report, scenarios, args.tolerance)
        check_micro(report, micro, args.micro_tolerance)
        return

    report = load_report(args.output)
    measurement = {
        "label": args.label or ("baseline" if args.set_baseline else "current"),
        "scenarios": scenarios,
        "micro": micro,
    }
    report["baseline" if args.set_baseline else "current"] = measurement

    base = report.get("baseline", {}).get("scenarios", {})
    cur = report.get("current", {}).get("scenarios", {})
    if base and cur:
        speedups = {}
        for name in cur:
            if name in base and cur[name]["wall_s"] > 0:
                speedups[name] = round(base[name]["wall_s"] / cur[name]["wall_s"], 2)
        mb = report.get("baseline", {}).get("micro", {})
        mc = report.get("current", {}).get("micro", {})
        for name in mc:
            if name in mb and mc[name]["ns_per_op"] > 0:
                speedups[name] = round(mb[name]["ns_per_op"] / mc[name]["ns_per_op"], 2)
        report["speedup_vs_baseline"] = speedups

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"perf_report: wrote {args.output}")


if __name__ == "__main__":
    main()
